// Multi-ADC chaos soak (§3.2 hardening capstone): adversarial and crashing
// tenants share the adaptor with well-behaved ones. The firmware's typed
// descriptor validation plus the kernel's AdcSupervisor must contain every
// misbehaviour to the offending channel — the good tenants see byte-exact,
// in-order delivery throughout.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>

#include "adc/adc.h"
#include "adc/supervisor.h"
#include "fault/fault.h"
#include "osiris/node.h"
#include "proto/message.h"

namespace osiris {
namespace {

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

// Payload carrying a sequence number so the sink can verify order AND
// content: byte i of message k is (k * 31 + i * 7) mod 256, with the
// sequence in the first 4 bytes.
std::vector<std::uint8_t> seq_payload(std::uint32_t seq, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seq * 31 + i * 7);
  }
  std::memcpy(v.data(), &seq, sizeof(seq));
  return v;
}

struct GoodTenant {
  std::unique_ptr<adc::Adc> tx, rx;
  std::uint32_t next_expected = 0;
  std::uint64_t received = 0;
  bool corrupt = false;
};

TEST(AdcIsolation, ChaosSoakAdversariesBesideWellBehaved) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;

  const std::size_t base_free_a = tb.a.frames.free_frames();
  const std::size_t base_free_b = tb.b.frames.free_frames();

  // Kernel-side supervision on the sender node, where the adversaries live.
  adc::AdcSupervisor sup(tb.a.eng, tb.a.txp, tb.a.rxp);

  // --- Two well-behaved tenants (pairs 1, 2) -------------------------
  constexpr std::size_t kMsgBytes = 2000;
  constexpr std::uint32_t kMsgs = 12;
  std::map<int, GoodTenant> good;
  for (int pair = 1; pair <= 2; ++pair) {
    const auto vci = static_cast<std::uint16_t>(800 + pair);
    GoodTenant t;
    t.tx = std::make_unique<adc::Adc>(deps_of(tb.a), pair,
                                      std::vector<atm::Vci>{vci}, 1, sc);
    t.rx = std::make_unique<adc::Adc>(deps_of(tb.b), pair,
                                      std::vector<atm::Vci>{vci}, 1, sc);
    good.emplace(pair, std::move(t));
  }
  for (auto& [pair, t] : good) {
    GoodTenant* gt = &t;
    t.rx->set_sink([gt](sim::Tick, std::uint16_t,
                        std::vector<std::uint8_t>&& d) {
      std::uint32_t seq = 0;
      std::memcpy(&seq, d.data(), sizeof(seq));
      if (seq != gt->next_expected || d != seq_payload(seq, d.size())) {
        gt->corrupt = true;
      }
      ++gt->next_expected;
      ++gt->received;
    });
    adc::AdcSupervisor::Budget generous;
    generous.max_violations = 4;  // good tenants never violate anyway
    sup.watch(*t.tx, generous);
  }

  // --- Adversarial tenant (pair 3): floods forged descriptors --------
  fault::FaultPlane adversary(0xBAD);
  adversary.arm(fault::Point::kAdcGarbageDescriptor,
                {1.0, 0, ~0ull});  // every "send" posts garbage
  auto attacker = std::make_unique<adc::Adc>(
      deps_of(tb.a), 3, std::vector<atm::Vci>{810}, 3, sc);  // higher prio
  attacker->set_fault_plane(&adversary);
  adc::AdcSupervisor::Budget tight;
  tight.max_violations = 4;
  sup.watch(*attacker, tight);

  // --- Crashing tenant (pair 4): dies mid-send -----------------------
  fault::FaultPlane crasher(0xDEAD);
  crasher.arm(fault::Point::kAdcAppDeath, {0.0, 3, 1});  // dies on send #3
  auto dier = std::make_unique<adc::Adc>(deps_of(tb.a), 4,
                                         std::vector<atm::Vci>{811}, 1, sc);
  auto dier_rx = std::make_unique<adc::Adc>(
      deps_of(tb.b), 4, std::vector<atm::Vci>{811}, 1, sc);
  dier->set_fault_plane(&crasher);
  sup.watch(*dier, tight);

  // --- Free-list poisoner (pair 5, on the RECEIVE node) --------------
  // Its driver corrupts every descriptor it recycles; node b's receive
  // firmware must reject them without ever DMAing at a poisoned address.
  adc::AdcSupervisor sup_b(tb.b.eng, tb.b.txp, tb.b.rxp);
  fault::FaultPlane poisoner(0xF01);
  poisoner.arm(fault::Point::kAdcFreeListPoison, {1.0, 0, 64});
  auto poison_tx = std::make_unique<adc::Adc>(
      deps_of(tb.a), 5, std::vector<atm::Vci>{812}, 1, sc);
  auto poison_rx = std::make_unique<adc::Adc>(
      deps_of(tb.b), 5, std::vector<atm::Vci>{812}, 1, sc);
  poison_rx->set_fault_plane(&poisoner);
  sup_b.watch(*poison_rx, tight);

  sup.start(sim::us(200), sim::ms(50));
  sup_b.start(sim::us(200), sim::ms(50));

  // --- The soak ------------------------------------------------------
  std::map<int, proto::Message> msgs;
  std::map<int, std::vector<std::vector<std::uint8_t>>> payloads;
  for (auto& [pair, t] : good) {
    for (std::uint32_t k = 0; k < kMsgs; ++k) {
      payloads[pair].push_back(seq_payload(k, kMsgBytes));
    }
  }
  proto::Message junk =
      proto::Message::from_payload(attacker->space(), seq_payload(0, 256));
  attacker->authorize(junk.scatter());
  proto::Message dm =
      proto::Message::from_payload(dier->space(), seq_payload(0, 1500));
  dier->authorize(dm.scatter());
  proto::Message pm =
      proto::Message::from_payload(poison_tx->space(), seq_payload(0, 3000));
  poison_tx->authorize(pm.scatter());

  sim::Tick t = 0;
  sim::Tick ta = 0, td = 0, tp = 0;
  for (std::uint32_t k = 0; k < kMsgs; ++k) {
    for (auto& [pair, gt] : good) {
      const auto vci = static_cast<std::uint16_t>(800 + pair);
      proto::Message m =
          proto::Message::from_payload(gt.tx->space(), payloads[pair][k]);
      gt.tx->authorize(m.scatter());
      t = gt.tx->send(t, vci, m);
      msgs.emplace(static_cast<int>(k) * 16 + pair, std::move(m));
    }
    // The attacker floods twice per round; the crasher and the poisoned
    // path send normally (the crasher dies on its 3rd send).
    ta = attacker->send(ta, 810, junk);
    ta = attacker->send(ta, 810, junk);
    td = dier->send(td, 811, dm);
    // Four sends per round: the poisoned free list only bites once the
    // initial (clean) 32-buffer pool has been consumed and the firmware
    // starts popping recycled — corrupted — descriptors.
    for (int r = 0; r < 4; ++r) tp = poison_tx->send(tp, 812, pm);
  }
  tb.run();

  // --- Well-behaved tenants: byte-exact, in-order, complete ----------
  for (auto& [pair, gt] : good) {
    EXPECT_EQ(gt.received, kMsgs) << "tenant pair " << pair;
    EXPECT_FALSE(gt.corrupt) << "tenant pair " << pair
                             << " saw out-of-order or corrupted data";
  }

  // --- Attacker: typed violations counted, then quarantined ----------
  EXPECT_GT(sup.violations(attacker->pair()), tight.max_violations);
  EXPECT_TRUE(sup.quarantined(attacker->pair()));
  EXPECT_FALSE(sup.quarantined(1));
  EXPECT_FALSE(sup.quarantined(2));
  EXPECT_FALSE(tb.a.txp.queue_attached(attacker->pair()));
  EXPECT_TRUE(tb.a.txp.queue_attached(1));
  EXPECT_TRUE(tb.a.txp.queue_attached(2));
  // The flood exercised several distinct firmware checks.
  const std::uint64_t typed =
      tb.a.txp.violations(board::Violation::kZeroLength) +
      tb.a.txp.violations(board::Violation::kOversizedLength) +
      tb.a.txp.violations(board::Violation::kBadVci) +
      tb.a.txp.violations(board::Violation::kUnauthorizedPage);
  EXPECT_GT(typed, 0u);

  // --- Crasher: dead, its truncated chain never wedged the board -----
  EXPECT_TRUE(dier->dead());
  EXPECT_FALSE(tb.a.txp.stalled());

  // --- Poisoner: rejected at the free list, never used for DMA -------
  EXPECT_GT(tb.b.rxp.violations(board::Violation::kFreeListPoison) +
                tb.b.rxp.violations(board::Violation::kUnauthorizedPage),
            0u);
  EXPECT_GT(sup_b.violations(poison_rx->pair()), 0u);

  // --- Crash-safe teardown of everyone, frames exactly to baseline ---
  attacker->close();
  dier->close();
  dier_rx->close();
  poison_tx->close();
  poison_rx->close();
  for (auto& [pair, gt] : good) {
    gt.tx->close();
    gt.rx->close();
    EXPECT_EQ(gt.tx->driver().wiring().wired_frames(), 0u);
    EXPECT_EQ(gt.rx->driver().wiring().wired_frames(), 0u);
  }
  tb.run();  // drain whatever teardown scheduled
  // Messages are views over space-owned frames, so destroying every Adc
  // (each owns its tenant's address space) must return BOTH nodes' frame
  // allocators exactly to their pre-soak level — nothing wedged in rings,
  // nothing leaked by quarantine, nothing pinned by the dead tenant.
  msgs.clear();
  good.clear();
  attacker.reset();
  dier.reset();
  dier_rx.reset();
  poison_tx.reset();
  poison_rx.reset();
  EXPECT_EQ(tb.a.frames.free_frames(), base_free_a);
  EXPECT_EQ(tb.b.frames.free_frames(), base_free_b);
}

TEST(AdcIsolation, ConsumptionBudgetQuarantinesWellFormedFlooder) {
  // A tenant can starve neighbours without a single malformed descriptor:
  // sheer volume. The supervisor's polled consumption budget catches it.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::AdcSupervisor sup(tb.a.eng, tb.a.txp, tb.a.rxp);

  adc::Adc flooder(deps_of(tb.a), 1, {820}, 1, sc);
  adc::Adc flooder_rx(deps_of(tb.b), 1, {820}, 1, sc);
  adc::AdcSupervisor::Budget cap;
  cap.max_violations = 0;            // violations alone never trip it
  cap.max_tx_bytes_per_poll = 16 * 1024;  // ~half the wire rate per window
  sup.watch(flooder, cap);
  // 500 us windows: at 600 Mbit/s the flood moves ~37 KB per window, far
  // over budget, while a couple of PDUs still complete before the first
  // non-empty window is inspected.
  sup.start(sim::us(500), sim::ms(20));

  std::uint64_t delivered = 0;
  flooder_rx.set_sink([&](sim::Tick, std::uint16_t,
                          std::vector<std::uint8_t>&&) { ++delivered; });

  proto::Message m = proto::Message::from_payload(
      flooder.space(), std::vector<std::uint8_t>(8000, 0x5A));
  flooder.authorize(m.scatter());
  sim::Tick t = 0;
  for (int i = 0; i < 40; ++i) t = flooder.send(t, 820, m);
  tb.run();

  EXPECT_TRUE(sup.quarantined(flooder.pair()));
  EXPECT_LT(delivered, 40u) << "quarantine should have cut the flood short";
  EXPECT_GT(delivered, 0u) << "traffic before the budget tripped flows";
}

}  // namespace
}  // namespace osiris
