// Odds and ends: API edges not covered by the focused suites.
#include <gtest/gtest.h>

#include "atm/sar.h"
#include "host/driver.h"
#include "mem/paging.h"
#include "osiris/node.h"
#include "osiris/stats.h"
#include "proto/message.h"
#include "sim/resource.h"

namespace osiris {
namespace {

TEST(Misc, UnmapPageInvalidatesTranslation) {
  mem::PhysicalMemory pm(1 << 20);
  mem::FrameAllocator fa(1 << 20);
  mem::AddressSpace as(pm, fa, "t");
  const mem::VirtAddr va = as.alloc(100);
  EXPECT_TRUE(as.mapped(va));
  as.unmap_page(va);
  EXPECT_FALSE(as.mapped(va));
  EXPECT_THROW((void)as.translate(va), std::out_of_range);
  EXPECT_THROW(as.unmap_page(va), std::logic_error);
}

TEST(Misc, AllocRejectsBadArguments) {
  mem::PhysicalMemory pm(1 << 20);
  mem::FrameAllocator fa(1 << 20);
  mem::AddressSpace as(pm, fa, "t");
  EXPECT_THROW(as.alloc(0), std::invalid_argument);
  EXPECT_THROW(as.alloc(10, mem::kPageSize), std::invalid_argument);
  EXPECT_THROW(as.map_frame(123), std::invalid_argument);  // unaligned
}

TEST(Misc, MessagePopBytesAcrossSegments) {
  mem::PhysicalMemory pm(1 << 22);
  mem::FrameAllocator fa(1 << 22, true, 5);
  mem::AddressSpace as(pm, fa, "t");
  std::vector<std::uint8_t> data(100);
  for (std::size_t i = 0; i < 100; ++i) data[i] = static_cast<std::uint8_t>(i);
  proto::Message m = proto::Message::from_payload(as, data);
  const std::vector<std::uint8_t> h1{0xAA, 0xBB}, h2{0xCC};
  m.push_header(h1);
  m.push_header(h2);  // segments: [CC][AA BB][data]
  m.pop_bytes(2);     // removes CC and AA, splitting the second segment
  auto out = m.gather();
  ASSERT_EQ(out.size(), 101u);
  EXPECT_EQ(out[0], 0xBB);
  EXPECT_EQ(out[1], 0x00);
  EXPECT_THROW(m.pop_bytes(1000), std::out_of_range);
  EXPECT_THROW(m.slice(0, 5000), std::out_of_range);
}

TEST(Misc, RxPduViewRangeChecks) {
  mem::PhysicalMemory pm(1 << 16);
  host::RxPduView v;
  v.bufs.push_back({0, 100, 0});
  v.pdu_len = 92;
  v.wire_len = 100;
  std::vector<std::uint8_t> buf(200);
  EXPECT_THROW(v.read_raw(pm, 0, buf), std::out_of_range);
  std::vector<std::uint8_t> ok(50);
  EXPECT_NO_THROW(v.read_raw(pm, 50, ok));
}

TEST(Misc, ResourceResetStatsKeepsCalendar) {
  sim::Engine eng;
  sim::Resource r(eng, "r");
  r.reserve_at(sim::us(10), sim::us(5));
  r.reset_stats();
  EXPECT_EQ(r.busy_total(), 0u);
  EXPECT_EQ(r.reservations(), 0u);
  // The booked interval still blocks.
  EXPECT_EQ(r.reserve_at(sim::us(10), sim::us(5)), sim::us(20));
}

TEST(Misc, ResourceZeroHoldIsFree) {
  sim::Engine eng;
  sim::Resource r(eng, "r");
  EXPECT_EQ(r.reserve_at(sim::us(3), 0), sim::us(3));
  EXPECT_EQ(r.reserve_at(sim::us(3), 0), sim::us(3));  // no serialization
}

TEST(Misc, RouterStatsExposeInflight) {
  auto r = atm::make_router("seq");
  std::vector<atm::Placement> pl;
  std::vector<atm::Completion> dn;
  const auto cells = atm::segment(std::vector<std::uint8_t>(500, 1), 7, 0);
  r->on_cell(0, cells[0], pl, dn);
  EXPECT_EQ(r->inflight(), 1u);
  for (std::size_t i = 1; i < cells.size(); ++i) r->on_cell(0, cells[i], pl, dn);
  EXPECT_EQ(r->inflight(), 0u);
}

TEST(Misc, NodeRejectsMappingWithoutStack) {
  // A node without an attached stack still delivers at driver level.
  sim::Engine eng;
  Node n(eng, make_3000_600_config());
  n.out.set_sink([&](int lane, const atm::Cell& c) { n.rxp.on_cell(lane, c); });
  n.map_kernel_vci(1200);
  // No rx handler at all: the driver recycles buffers and counts the PDU.
  const mem::VirtAddr va = n.kernel_space.alloc(500);
  n.driver.send(0, 1200, n.kernel_space.scatter(va, 500));
  eng.run();
  EXPECT_EQ(n.driver.pdus_received(), 1u);
}

TEST(Misc, SummaryOfFormatStatsOnQuietNode) {
  sim::Engine eng;
  Node n(eng, make_5000_200_config());
  const NodeStats s = snapshot(n);
  EXPECT_EQ(s.pdus_sent, 0u);
  EXPECT_EQ(s.interrupts_per_pdu(), 0.0);
  EXPECT_EQ(s.host_accesses_per_pdu(), 0.0);
  EXPECT_FALSE(format_stats(s).empty());
}

TEST(Misc, TrailerOnlyPduRoundTrip) {
  // Zero-byte user PDU: one trailer-only cell end to end.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  std::uint64_t got = 0;
  std::size_t got_len = 99;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    got_len = d.size();
    ++got;
  });
  // Smallest possible driver PDU: 1 byte (empty messages have no buffers).
  proto::Message m = proto::Message::from_payload(
      tb.a.kernel_space, std::vector<std::uint8_t>{0x7E});
  sa->send(0, vci, m);
  tb.run();
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(got_len, 1u);
}

}  // namespace
}  // namespace osiris
