// ADC tests: user-space data path, authorization, latency parity (§3.2).
#include <gtest/gtest.h>

#include "adc/adc.h"
#include "osiris/node.h"
#include "proto/message.h"

namespace osiris {
namespace {

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t s) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 13 + s);
  return v;
}

TEST(Adc, UserToUserRoundTrip) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::Adc ca(deps_of(tb.a), 1, {500}, 1, sc);
  adc::Adc cb(deps_of(tb.b), 1, {500}, 1, sc);

  std::vector<std::uint8_t> got;
  cb.set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    got = std::move(d);
  });
  const auto data = pattern(3000, 1);
  proto::Message m = proto::Message::from_payload(ca.space(), data);
  ca.authorize(m.scatter());
  ca.send(0, 500, m);
  tb.run();
  EXPECT_EQ(got, data);
}

TEST(Adc, UnauthorizedTransmitBufferRaisesViolation) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::Adc ca(deps_of(tb.a), 2, {501}, 1, sc);
  adc::Adc cb(deps_of(tb.b), 2, {501}, 1, sc);
  std::uint64_t delivered = 0;
  cb.set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    ++delivered;
  });
  bool exception_raised = false;
  ca.set_violation_handler([&](sim::Tick) { exception_raised = true; });

  proto::Message m = proto::Message::from_payload(ca.space(), pattern(500, 2));
  // Deliberately NOT authorized.
  ca.send(0, 501, m);
  tb.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_TRUE(exception_raised);
  EXPECT_EQ(ca.violations(), 1u);
}

TEST(Adc, KernelAndAdcTrafficCoexist) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const std::uint16_t kvci = tb.open_kernel_path();
  auto ks_a = tb.a.make_stack(proto::StackConfig{});
  auto ks_b = tb.b.make_stack(proto::StackConfig{});

  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::Adc ca(deps_of(tb.a), 3, {502}, 2, sc);
  adc::Adc cb(deps_of(tb.b), 3, {502}, 2, sc);

  std::uint64_t kernel_got = 0, adc_got = 0;
  ks_b->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    ++kernel_got;
  });
  cb.set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    ++adc_got;
  });

  proto::Message km =
      proto::Message::from_payload(tb.a.kernel_space, pattern(4000, 3));
  proto::Message am = proto::Message::from_payload(ca.space(), pattern(4000, 4));
  ca.authorize(am.scatter());

  sim::Tick t = 0;
  for (int i = 0; i < 5; ++i) {
    t = ks_a->send(t, kvci, km);
    t = ca.send(t, 502, am);
  }
  tb.run();
  EXPECT_EQ(kernel_got, 5u);
  EXPECT_EQ(adc_got, 5u);
}

TEST(Adc, LatencyMatchesKernelPathWithinMargin) {
  // §4: "user-to-user performance using ADCs ... within the error margins
  // of the kernel-to-kernel case".
  auto rtt_kernel = [] {
    Testbed tb(make_3000_600_config(), make_3000_600_config());
    proto::StackConfig sc;
    sc.mode = proto::StackMode::kRawAtm;
    const atm::Vci vci = tb.open_kernel_path();
    auto sa = tb.a.make_stack(sc);
    auto sb = tb.b.make_stack(sc);
    const auto data = pattern(1024, 5);
    proto::Message ma = proto::Message::from_payload(tb.a.kernel_space, data);
    proto::Message mb = proto::Message::from_payload(tb.b.kernel_space, data);
    sim::Tick t_done = 0;
    sb->set_sink([&](sim::Tick at, std::uint16_t v, std::vector<std::uint8_t>&&) {
      sb->send(at, v, mb);
    });
    sa->set_sink([&](sim::Tick at, std::uint16_t, std::vector<std::uint8_t>&&) {
      t_done = at;
    });
    sa->send(0, vci, ma);
    tb.run();
    return t_done;
  };
  auto rtt_adc = [] {
    Testbed tb(make_3000_600_config(), make_3000_600_config());
    proto::StackConfig sc;
    sc.mode = proto::StackMode::kRawAtm;
    adc::Adc ca(deps_of(tb.a), 1, {503}, 1, sc);
    adc::Adc cb(deps_of(tb.b), 1, {503}, 1, sc);
    const auto data = pattern(1024, 5);
    proto::Message ma = proto::Message::from_payload(ca.space(), data);
    proto::Message mb = proto::Message::from_payload(cb.space(), data);
    ca.authorize(ma.scatter());
    cb.authorize(mb.scatter());
    sim::Tick t_done = 0;
    cb.set_sink([&](sim::Tick at, std::uint16_t v, std::vector<std::uint8_t>&&) {
      cb.send(at, v, mb);
    });
    ca.set_sink([&](sim::Tick at, std::uint16_t, std::vector<std::uint8_t>&&) {
      t_done = at;
    });
    ca.send(0, 503, ma);
    tb.run();
    return t_done;
  };
  const double k = sim::to_us(rtt_kernel());
  const double a = sim::to_us(rtt_adc());
  EXPECT_NEAR(a, k, k * 0.10) << "ADC path must match kernel path closely";
}

}  // namespace
}  // namespace osiris
