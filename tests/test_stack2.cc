// Second protocol-stack suite: MTU sweeps, header arenas, reassembly
// bookkeeping, and checksum interaction with fragmentation.
#include <gtest/gtest.h>

#include "osiris/node.h"
#include "proto/message.h"
#include "proto/stack.h"

namespace osiris {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t s) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 31 + s);
  return v;
}

struct MtuCase {
  std::uint32_t mtu;
  std::uint32_t msg;
  bool cksum;
};

class MtuSweep : public ::testing::TestWithParam<MtuCase> {};

TEST_P(MtuSweep, IntegrityAcrossFragmentationRegimes) {
  const auto [mtu, msg, cksum] = GetParam();
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.ip_mtu = mtu;
  sc.udp_checksum = cksum;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  const auto want = pattern(msg, static_cast<std::uint8_t>(mtu));
  std::uint64_t ok = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    EXPECT_EQ(d, want);
    ++ok;
  });
  proto::Message m = proto::Message::from_payload(tb.a.kernel_space, want, 33);
  sim::Tick t = 0;
  for (int i = 0; i < 2; ++i) t = sa->send(t, vci, m);
  tb.run();
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(sb->checksum_failures(), 0u);
  EXPECT_EQ(sb->reassembly_drops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Mtus, MtuSweep,
    ::testing::Values(MtuCase{proto::kIpHeader + 1, 30, false},  // 1-byte frags!
                      MtuCase{proto::kIpHeader + 1, 30, true},
                      MtuCase{64, 2000, false},
                      MtuCase{512, 5000, true},
                      MtuCase{4096, 16 * 1024, false},
                      MtuCase{4096 + 28, 16 * 1024, true},
                      MtuCase{16 * 1024 + 28, 64 * 1024, true},
                      MtuCase{64 * 1024, 200000, false}));

TEST(Stack2, ExtremeFragmentationOverloadShedsAtTheBoard) {
  // A large message at a 1-byte MTU floods the receiver with hundreds of
  // tiny PDUs faster than it can recycle buffers: the board sheds load
  // (§3.1) and the message never completes — by design, not by accident.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.ip_mtu = proto::kIpHeader + 1;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  std::uint64_t ok = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++ok; });
  proto::Message m =
      proto::Message::from_payload(tb.a.kernel_space, pattern(2000, 8));
  sa->send(0, vci, m);
  tb.run();
  EXPECT_EQ(ok, 0u);
  EXPECT_GT(tb.b.rxp.pdus_dropped_nobuf() + tb.b.rxp.pdus_dropped_recvfull(),
            0u);
}

TEST(Stack2, TooSmallMtuRejectedAtConstruction) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.ip_mtu = proto::kIpHeader;  // no room for any data
  EXPECT_THROW(tb.a.make_stack(sc), std::invalid_argument);
}

TEST(Stack2, HeaderArenaProducesIdenticalBytes) {
  // The same message sent with and without the registered header arena
  // must deliver identical payloads (the arena changes where headers live,
  // not what they say).
  auto run = [](bool arena) {
    Testbed tb(make_3000_600_config(), make_3000_600_config());
    const atm::Vci vci = tb.open_kernel_path();
    proto::StackConfig sc;
    sc.udp_checksum = true;
    auto sa = tb.a.make_stack(sc);
    auto sb = tb.b.make_stack(sc);
    if (arena) sa->use_header_arena(tb.a.kernel_space);
    std::vector<std::uint8_t> got;
    sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
      got = std::move(d);
    });
    proto::Message m =
        proto::Message::from_payload(tb.a.kernel_space, pattern(30000, 9), 500);
    sa->send(0, vci, m);
    tb.run();
    return got;
  };
  const auto plain = run(false);
  const auto arena = run(true);
  EXPECT_EQ(plain, arena);
  EXPECT_EQ(plain, pattern(30000, 9));
}

TEST(Stack2, HeaderArenaSlotsReusedSafelyAcrossDrainedSends) {
  // The ring cycles across many sends, as long as reuse respects the
  // registered-memory discipline (a slot is free once its PDU has left).
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.ip_mtu = 1024 + proto::kIpHeader;  // 40 fragments per message
  sc.udp_checksum = true;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  sa->use_header_arena(tb.a.kernel_space, 256);
  std::uint64_t ok = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++ok; });
  proto::Message m =
      proto::Message::from_payload(tb.a.kernel_space, pattern(40000, 4));
  for (int i = 0; i < 12; ++i) {  // ~492 headers through 256 slots
    sa->send(tb.now(), vci, m);
    tb.run();  // each message drains before the next is queued
  }
  EXPECT_EQ(ok, 12u);
  EXPECT_EQ(sb->checksum_failures(), 0u);
}

TEST(Stack2, HeaderArenaOverrunCorruptsInFlightHeaders) {
  // The negative control: blasting more outstanding fragments than the
  // arena has slots overwrites headers the board has not yet transmitted.
  // The end-to-end checksum catches the damage; nothing corrupt is
  // delivered — but messages are lost. Registered memory demands the
  // discipline, exactly as on RDMA hardware.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.ip_mtu = 1024 + proto::kIpHeader;
  sc.udp_checksum = true;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  sa->use_header_arena(tb.a.kernel_space, 32);  // far too few slots
  std::uint64_t ok = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    EXPECT_EQ(d, pattern(40000, 4)) << "nothing corrupt may be delivered";
    ++ok;
  });
  proto::Message m =
      proto::Message::from_payload(tb.a.kernel_space, pattern(40000, 4));
  sim::Tick t = 0;
  for (int i = 0; i < 6; ++i) t = sa->send(t, vci, m);
  tb.run();
  EXPECT_LT(ok, 6u);
}

TEST(Stack2, BuffersPerPduStatisticTracksScatter) {
  Testbed tb(make_5000_200_config(), make_5000_200_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  sb->set_sink([](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {});
  proto::Message m =
      proto::Message::from_payload(tb.a.kernel_space, pattern(10000, 2), 77);
  sa->send(0, vci, m);
  tb.run();
  // hdr + udp hdr + 3-4 data pages (unaligned 10 KB).
  EXPECT_GE(sa->buffers_per_pdu().mean(), 4.0);
  EXPECT_LE(sa->buffers_per_pdu().mean(), 7.0);
}

TEST(Stack2, InterleavedMessagesOnOneVciReassembleById) {
  // Two multi-fragment messages sent back to back share the VCI; distinct
  // IP ids keep their fragments separate.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.ip_mtu = 2048 + proto::kIpHeader;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  std::vector<std::vector<std::uint8_t>> got;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    got.push_back(std::move(d));
  });
  const auto m1 = pattern(9000, 1);
  const auto m2 = pattern(7000, 2);
  proto::Message a = proto::Message::from_payload(tb.a.kernel_space, m1);
  proto::Message b = proto::Message::from_payload(tb.a.kernel_space, m2);
  const sim::Tick t = sa->send(0, vci, a);
  sa->send(t, vci, b);
  tb.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], m1);
  EXPECT_EQ(got[1], m2);
}

}  // namespace
}  // namespace osiris
