// Full-stack integrity matrix: machine pair x reassembly strategy x
// message size x alignment x checksum. Every combination must deliver the
// exact payload end to end through segmentation, striping, DMA, the
// driver, IP-like reassembly and UDP-like verification.
#include <gtest/gtest.h>

#include <tuple>

#include "osiris/node.h"
#include "proto/message.h"

namespace osiris {
namespace {

struct MatrixCase {
  bool alpha_a;
  bool alpha_b;
  const char* strategy;
  std::uint32_t bytes;
  std::uint32_t offset;
  bool checksum;
};

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  const MatrixCase& c = info.param;
  std::string s;
  s += c.alpha_a ? "A3000" : "A5000";
  s += c.alpha_b ? "B3000" : "B5000";
  s += "_";
  s += c.strategy;
  s += "_" + std::to_string(c.bytes) + "B_off" + std::to_string(c.offset);
  s += c.checksum ? "_cs" : "_nocs";
  return s;
}

class E2EMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(E2EMatrix, PayloadIntegrity) {
  const MatrixCase& c = GetParam();
  NodeConfig ca = c.alpha_a ? make_3000_600_config() : make_5000_200_config();
  NodeConfig cb = c.alpha_b ? make_3000_600_config() : make_5000_200_config();
  ca.board.reassembly = c.strategy;
  cb.board.reassembly = c.strategy;
  Testbed tb(std::move(ca), std::move(cb));
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.udp_checksum = c.checksum;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);

  std::vector<std::uint8_t> want(c.bytes);
  for (std::uint32_t i = 0; i < c.bytes; ++i) {
    want[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  std::uint64_t delivered = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t v, std::vector<std::uint8_t>&& d) {
    EXPECT_EQ(v, vci);
    ASSERT_EQ(d.size(), want.size());
    EXPECT_EQ(d, want);
    ++delivered;
  });

  proto::Message m =
      proto::Message::from_payload(tb.a.kernel_space, want, c.offset);
  sim::Tick t = 0;
  for (int i = 0; i < 3; ++i) t = sa->send(t, vci, m);
  tb.run();
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(sb->checksum_failures(), 0u);
  EXPECT_EQ(sb->reassembly_drops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, E2EMatrix,
    ::testing::Values(
        // size sweep on the homogeneous fast pair, quad strategy
        MatrixCase{true, true, "quad", 1, 0, false},
        MatrixCase{true, true, "quad", 43, 0, false},
        MatrixCase{true, true, "quad", 44, 0, false},
        MatrixCase{true, true, "quad", 45, 0, false},
        MatrixCase{true, true, "quad", 4096, 0, false},
        MatrixCase{true, true, "quad", 16384, 0, false},
        MatrixCase{true, true, "quad", 16385, 0, false},  // 2 fragments
        MatrixCase{true, true, "quad", 100000, 0, false},
        // seq strategy over the same edge sizes
        MatrixCase{true, true, "seq", 1, 0, false},
        MatrixCase{true, true, "seq", 44, 0, false},
        MatrixCase{true, true, "seq", 16385, 0, false},
        MatrixCase{true, true, "seq", 100000, 0, false},
        // unaligned application buffers (Figure 1 territory)
        MatrixCase{true, true, "quad", 10000, 1, false},
        MatrixCase{true, true, "quad", 10000, 4095, false},
        MatrixCase{true, true, "quad", 10000, 2048, true},
        MatrixCase{true, true, "seq", 10000, 3000, true},
        // heterogeneous machine pairs, both directions
        MatrixCase{false, true, "quad", 30000, 100, false},
        MatrixCase{true, false, "quad", 30000, 100, false},
        MatrixCase{false, false, "quad", 30000, 100, true},
        MatrixCase{false, true, "seq", 30000, 100, true},
        // checksum on the big sizes
        MatrixCase{true, true, "quad", 100000, 777, true},
        MatrixCase{true, true, "seq", 65536, 777, true}),
    case_name);

// Same matrix but over a skewed link: the hard mode.
class E2ESkewMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(E2ESkewMatrix, PayloadIntegrityUnderSkew) {
  const MatrixCase& c = GetParam();
  NodeConfig ca = make_3000_600_config();
  NodeConfig cb = make_3000_600_config();
  ca.board.reassembly = c.strategy;
  cb.board.reassembly = c.strategy;
  ca.link = link::skewed_config(35.0, 0xC0FFEE + c.bytes);
  Testbed tb(std::move(ca), std::move(cb));
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.udp_checksum = c.checksum;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);

  std::vector<std::uint8_t> want(c.bytes);
  for (std::uint32_t i = 0; i < c.bytes; ++i) {
    want[i] = static_cast<std::uint8_t>(i * 48271u >> 7);
  }
  std::uint64_t delivered = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    EXPECT_EQ(d, want);
    ++delivered;
  });
  proto::Message m =
      proto::Message::from_payload(tb.a.kernel_space, want, c.offset);
  sim::Tick t = 0;
  for (int i = 0; i < 3; ++i) t = sa->send(t, vci, m);
  tb.run();
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(sb->checksum_failures(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Skewed, E2ESkewMatrix,
    ::testing::Values(MatrixCase{true, true, "quad", 50, 0, false},
                      MatrixCase{true, true, "quad", 4000, 17, false},
                      MatrixCase{true, true, "quad", 20000, 1000, true},
                      MatrixCase{true, true, "quad", 70000, 0, true},
                      MatrixCase{true, true, "seq", 50, 0, false},
                      MatrixCase{true, true, "seq", 4000, 17, false},
                      MatrixCase{true, true, "seq", 20000, 1000, true},
                      MatrixCase{true, true, "seq", 70000, 0, true}),
    case_name);

}  // namespace
}  // namespace osiris
