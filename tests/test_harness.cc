// Harness self-tests: the synthetic fragment builder must be
// byte-compatible with what the real protocol stack emits, and the
// measurement helpers must behave.
#include <gtest/gtest.h>

#include "atm/sar.h"
#include "osiris/harness.h"
#include "osiris/node.h"
#include "proto/message.h"

namespace osiris {
namespace {

TEST(Harness, SyntheticFragmentsParseThroughTheRealStack) {
  // Drive the generator with make_udp_fragments and verify the full stack
  // delivers the exact payload, for sizes spanning one to many fragments.
  for (const std::uint32_t msg : {1u, 1024u, 16 * 1024u, 40000u, 200000u}) {
    sim::Engine eng;
    Node n(eng, make_3000_600_config());
    proto::StackConfig sc;
    sc.udp_checksum = true;  // exercises the checksum in the synthetic path
    auto stack = n.make_stack(sc);
    n.map_kernel_vci(800);

    std::vector<std::uint8_t> got;
    stack->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
      got = std::move(d);
    });
    const auto frags = harness::make_udp_fragments(msg, sc.ip_mtu, true);
    n.rxp.start_generator_multi(800, frags, 1, 0);
    eng.run();

    ASSERT_EQ(got.size(), msg) << "msg size " << msg;
    for (std::uint32_t i = 0; i < msg; ++i) {
      ASSERT_EQ(got[i], static_cast<std::uint8_t>(i * 131 + 3)) << "at " << i;
    }
    EXPECT_EQ(stack->checksum_failures(), 0u);
  }
}

TEST(Harness, FragmentCountMatchesMtuArithmetic) {
  const std::uint32_t mtu = 4096 + proto::kIpHeader;
  const auto frags = harness::make_udp_fragments(10000, mtu, false);
  // UDP packet = 10008 bytes; 3 fragments of <= 4096 data.
  EXPECT_EQ(frags.size(), 3u);
  EXPECT_EQ(frags[0].size(), 4096u + proto::kIpHeader);
  EXPECT_EQ(frags[2].size(), 10008u - 2 * 4096u + proto::kIpHeader);
}

TEST(Harness, PingPongIterationsAndStability) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  const auto r = harness::ping_pong(tb, *sa, *sb, vci, 512, 30);
  EXPECT_EQ(r.iterations, 30u);
  EXPECT_GT(r.rtt_us_min, 0.0);
  EXPECT_GE(r.rtt_us_max, r.rtt_us_mean);
  EXPECT_GE(r.rtt_us_mean, r.rtt_us_min);
}

TEST(Harness, LatencyMonotonicInMessageSize) {
  auto rtt = [](std::uint32_t bytes) {
    Testbed tb(make_3000_600_config(), make_3000_600_config());
    const atm::Vci vci = tb.open_kernel_path();
    proto::StackConfig sc;
    sc.mode = proto::StackMode::kRawAtm;
    auto sa = tb.a.make_stack(sc);
    auto sb = tb.b.make_stack(sc);
    return harness::ping_pong(tb, *sa, *sb, vci, bytes, 6).rtt_us_mean;
  };
  const double r1 = rtt(64);
  const double r2 = rtt(2048);
  const double r3 = rtt(16384);
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
}

TEST(Harness, ThroughputScalesWithMessageSizeThenPlateaus) {
  auto tp = [](std::uint32_t bytes) {
    sim::Engine eng;
    Node n(eng, make_3000_600_config());
    proto::StackConfig sc;
    auto stack = n.make_stack(sc);
    return harness::receive_throughput(n, *stack, 801, bytes, 30, sc).mbps;
  };
  const double small = tp(2048);
  const double mid = tp(16 * 1024);
  const double big = tp(128 * 1024);
  EXPECT_LT(small, mid);
  EXPECT_NEAR(mid, big, big * 0.1) << "plateau reached by 16 KB";
}

TEST(Harness, TransmitThroughputConservesMessages) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  const auto r =
      harness::transmit_throughput(tb, tb.a, *sa, *sb, vci, 8 * 1024, 100);
  EXPECT_EQ(r.messages, 100u);
  EXPECT_GT(r.mbps, 0.0);
}

}  // namespace
}  // namespace osiris
