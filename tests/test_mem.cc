// Unit tests for physical memory, paging, the cache model, and wiring.
#include <gtest/gtest.h>

#include <numeric>

#include "mem/cache.h"
#include "mem/paging.h"
#include "mem/phys.h"
#include "mem/wiring.h"

namespace osiris::mem {
namespace {

TEST(PhysicalMemory, ReadWriteRoundTrip) {
  PhysicalMemory pm(1 << 16);
  std::vector<std::uint8_t> data(100);
  std::iota(data.begin(), data.end(), 0);
  pm.write(1000, data);
  std::vector<std::uint8_t> out(100);
  pm.read(1000, out);
  EXPECT_EQ(data, out);
}

TEST(PhysicalMemory, BoundsChecked) {
  PhysicalMemory pm(4096);
  std::vector<std::uint8_t> buf(10);
  EXPECT_THROW(pm.read(4090, buf), std::out_of_range);
  EXPECT_THROW(pm.write(4096, buf), std::out_of_range);
  EXPECT_NO_THROW(pm.read(4086, buf));
}

TEST(FrameAllocator, InterleavedFramesAreDiscontiguous) {
  // The §2.2 premise: virtually contiguous pages are generally not
  // physically contiguous.
  FrameAllocator fa(1 << 22, /*interleave=*/true, /*seed=*/7);
  int adjacent = 0;
  PhysAddr prev = fa.alloc();
  for (int i = 0; i < 100; ++i) {
    const PhysAddr cur = fa.alloc();
    if (cur == prev + kPageSize) ++adjacent;
    prev = cur;
  }
  EXPECT_LT(adjacent, 10);
}

TEST(FrameAllocator, SequentialModeIsContiguous) {
  FrameAllocator fa(1 << 20, /*interleave=*/false);
  PhysAddr prev = fa.alloc();
  for (int i = 0; i < 10; ++i) {
    const PhysAddr cur = fa.alloc();
    EXPECT_EQ(cur, prev + kPageSize);
    prev = cur;
  }
}

TEST(FrameAllocator, ContiguousAllocationBestEffort) {
  FrameAllocator fa(1 << 20, /*interleave=*/true, 3);
  const auto base = fa.alloc_contiguous(4);
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(*base % kPageSize, 0u);
  // The run must actually be reserved: allocating everything else never
  // returns those frames.
  const std::size_t rest = fa.free_frames();
  for (std::size_t i = 0; i < rest; ++i) {
    const PhysAddr f = fa.alloc();
    EXPECT_TRUE(f < *base || f >= *base + 4 * kPageSize);
  }
}

TEST(FrameAllocator, FreeAndReuse) {
  FrameAllocator fa(16 * kPageSize, false);
  std::vector<PhysAddr> all;
  for (int i = 0; i < 16; ++i) all.push_back(fa.alloc());
  EXPECT_THROW(fa.alloc(), std::runtime_error);
  fa.free(all[5]);
  EXPECT_EQ(fa.alloc(), all[5]);
  EXPECT_THROW(fa.free(123456u * 0 + all[0] + kPageSize * 100), std::logic_error);
}

TEST(AddressSpace, TranslateAndScatter) {
  PhysicalMemory pm(1 << 22);
  FrameAllocator fa(1 << 22, true, 11);
  AddressSpace as(pm, fa, "t");
  const VirtAddr va = as.alloc(3 * kPageSize);
  // Contiguous virtually; scatter yields >= 1 physically contiguous runs
  // covering all bytes.
  const auto sc = as.scatter(va, 3 * kPageSize);
  std::uint32_t total = 0;
  for (const auto& pb : sc) total += pb.len;
  EXPECT_EQ(total, 3 * kPageSize);
  EXPECT_GE(sc.size(), 1u);
  EXPECT_LE(sc.size(), 3u);
}

TEST(AddressSpace, UnalignedBufferScatterMatchesPaperFigure1) {
  // A data portion not aligned with page boundaries occupies
  // ceil((n-1)/page)+1 pages (paper §2.2).
  PhysicalMemory pm(1 << 22);
  FrameAllocator fa(1 << 22, true, 13);
  AddressSpace as(pm, fa, "t");
  const std::uint32_t off = 100;
  const std::uint32_t len = 2 * kPageSize;  // 2 pages of data, unaligned
  const VirtAddr va = as.alloc(len, off);
  const auto sc = as.scatter(va, len);
  // Spans 3 pages; with an interleaved allocator that is almost surely 3
  // physical buffers.
  std::uint32_t total = 0;
  for (const auto& pb : sc) total += pb.len;
  EXPECT_EQ(total, len);
  EXPECT_EQ(sc.size(), 3u);
}

TEST(AddressSpace, WriteReadThroughPageTable) {
  PhysicalMemory pm(1 << 22);
  FrameAllocator fa(1 << 22, true, 17);
  AddressSpace as(pm, fa, "t");
  const VirtAddr va = as.alloc(10000, 123);
  std::vector<std::uint8_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  as.write(va, data);
  std::vector<std::uint8_t> out(10000);
  as.read(va, out);
  EXPECT_EQ(data, out);
}

TEST(AddressSpace, UnmappedTranslateThrows) {
  PhysicalMemory pm(1 << 20);
  FrameAllocator fa(1 << 20);
  AddressSpace as(pm, fa, "t");
  EXPECT_THROW(as.translate(0x100), std::out_of_range);
  EXPECT_FALSE(as.mapped(0x100));
}

TEST(AddressSpace, MapFrameSharesPhysicalPage) {
  PhysicalMemory pm(1 << 20);
  FrameAllocator fa(1 << 20);
  AddressSpace a(pm, fa, "a");
  AddressSpace b(pm, fa, "b");
  const PhysAddr frame = fa.alloc();
  const VirtAddr va = a.map_frame(frame);
  const VirtAddr vb = b.map_frame(frame);
  std::vector<std::uint8_t> data{1, 2, 3, 4};
  a.write(va, data);
  std::vector<std::uint8_t> out(4);
  b.read(vb, out);
  EXPECT_EQ(out, data);
  fa.free(frame);
}

TEST(AddressSpace, PreferContiguousFallsBack) {
  FrameAllocator fa(8 * kPageSize, false);
  PhysicalMemory pm(8 * kPageSize);
  AddressSpace as(pm, fa, "t");
  bool contig = false;
  as.alloc_prefer_contiguous(3 * kPageSize, &contig);
  EXPECT_TRUE(contig);
  // Exhaust so no run of 4 remains, then ask again.
  while (fa.free_frames() > 3) fa.alloc();
  bool contig2 = true;
  as.alloc_prefer_contiguous(3 * kPageSize, &contig2);
  EXPECT_TRUE(contig2);  // 3 sequential frames remain in order
}

// ---------------------------------------------------------------- cache

CacheConfig small_cache(DmaCoherence c) { return {1024, 16, c}; }

TEST(DataCache, ReadMissFillsLine) {
  PhysicalMemory pm(1 << 16);
  DataCache dc(pm, small_cache(DmaCoherence::kNonCoherent));
  std::vector<std::uint8_t> data{9, 8, 7, 6};
  pm.write(64, data);
  std::vector<std::uint8_t> out(4);
  auto c1 = dc.cpu_read(64, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(c1.misses, 1u);
  EXPECT_EQ(c1.mem_words, 4u);  // 16-byte line fill
  auto c2 = dc.cpu_read(64, out);
  EXPECT_EQ(c2.hits, 1u);
  EXPECT_EQ(c2.misses, 0u);
}

TEST(DataCache, NonCoherentDmaLeavesStaleData) {
  // The paper's §2.3 scenario: cached bytes survive a DMA overwrite.
  PhysicalMemory pm(1 << 16);
  DataCache dc(pm, small_cache(DmaCoherence::kNonCoherent));
  std::vector<std::uint8_t> v1{1, 1, 1, 1}, v2{2, 2, 2, 2};
  pm.write(128, v1);
  std::vector<std::uint8_t> out(4);
  dc.cpu_read(128, out);  // cache the line
  dc.dma_write(128, v2);  // memory now v2, cache still v1
  EXPECT_TRUE(dc.is_stale(128, 4));
  dc.cpu_read(128, out);
  EXPECT_EQ(out, v1);  // stale!
  EXPECT_GE(dc.stale_reads(), 1u);
  EXPECT_GE(dc.dma_stale_lines(), 1u);
  // Invalidation recovers.
  const auto words = dc.invalidate(128, 4);
  EXPECT_EQ(words, 1u);
  dc.cpu_read(128, out);
  EXPECT_EQ(out, v2);
}

TEST(DataCache, UpdateCoherenceRefreshesCache) {
  // DEC 3000/600 behaviour: DMA writes update the cache.
  PhysicalMemory pm(1 << 16);
  DataCache dc(pm, small_cache(DmaCoherence::kUpdate));
  std::vector<std::uint8_t> v1{1, 1, 1, 1}, v2{2, 2, 2, 2};
  pm.write(128, v1);
  std::vector<std::uint8_t> out(4);
  dc.cpu_read(128, out);
  dc.dma_write(128, v2);
  EXPECT_FALSE(dc.is_stale(128, 4));
  dc.cpu_read(128, out);
  EXPECT_EQ(out, v2);
  EXPECT_EQ(dc.stale_reads(), 0u);
}

TEST(DataCache, WriteThroughUpdatesMemoryAndHitLines) {
  PhysicalMemory pm(1 << 16);
  DataCache dc(pm, small_cache(DmaCoherence::kNonCoherent));
  std::vector<std::uint8_t> out(4);
  dc.cpu_read(256, out);  // cache the line
  std::vector<std::uint8_t> v{5, 6, 7, 8};
  dc.cpu_write(256, v);
  EXPECT_EQ(pm.byte(256), 5);  // memory updated immediately
  dc.cpu_read(256, out);
  EXPECT_EQ(out, v);  // and the cached copy as well
  EXPECT_FALSE(dc.is_stale(256, 4));
}

TEST(DataCache, DirectMappedConflictEviction) {
  PhysicalMemory pm(1 << 16);
  DataCache dc(pm, small_cache(DmaCoherence::kNonCoherent));  // 64 lines
  std::vector<std::uint8_t> out(4);
  dc.cpu_read(0, out);
  auto c = dc.cpu_read(0 + 1024, out);  // same index, different tag
  EXPECT_EQ(c.misses, 1u);
  c = dc.cpu_read(0, out);  // evicted: miss again
  EXPECT_EQ(c.misses, 1u);
}

TEST(DataCache, InvalidateAllCostsNothingButCausesMisses) {
  PhysicalMemory pm(1 << 16);
  DataCache dc(pm, small_cache(DmaCoherence::kNonCoherent));
  std::vector<std::uint8_t> out(16);
  dc.cpu_read(0, out);
  dc.invalidate_all();
  auto c = dc.cpu_read(0, out);
  EXPECT_EQ(c.misses, 1u);
}

TEST(DataCache, ReadSpanningLines) {
  PhysicalMemory pm(1 << 16);
  DataCache dc(pm, small_cache(DmaCoherence::kNonCoherent));
  std::vector<std::uint8_t> data(100);
  std::iota(data.begin(), data.end(), 0);
  pm.write(8, data);  // unaligned, spans 7 lines
  std::vector<std::uint8_t> out(100);
  auto c = dc.cpu_read(8, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(c.misses, 7u);
}

// --------------------------------------------------------------- wiring

TEST(PageWiring, WireUnwireCounts) {
  PageWiring w;
  w.wire(0x5000);
  w.wire(0x5100);  // same page
  EXPECT_TRUE(w.is_wired(0x5abc));
  EXPECT_EQ(w.wired_frames(), 1u);
  w.unwire(0x5000);
  EXPECT_TRUE(w.is_wired(0x5abc));  // still one wiring left
  w.unwire(0x5000);
  EXPECT_FALSE(w.is_wired(0x5abc));
  EXPECT_EQ(w.wire_ops(), 2u);
  EXPECT_EQ(w.unwire_ops(), 2u);
}

TEST(PageWiring, UnwireUnwiredThrows) {
  PageWiring w;
  EXPECT_THROW(w.unwire(0x1000), std::logic_error);
}

TEST(PageWiring, BufferSpanningPages) {
  PageWiring w;
  std::vector<PhysBuffer> bufs{{kPageSize - 100, 300}};  // spans 2 pages
  w.wire_buffers(bufs);
  EXPECT_TRUE(w.is_wired(0));
  EXPECT_TRUE(w.is_wired(kPageSize));
  EXPECT_EQ(w.wired_frames(), 2u);
  w.unwire_buffers(bufs);
  EXPECT_EQ(w.wired_frames(), 0u);
}

}  // namespace
}  // namespace osiris::mem
