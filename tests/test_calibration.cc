// Calibration tests: the simulated system must land near the paper's
// headline measurements (§2.5.1 bus bounds exactly; §4 results in shape).
// Tolerances here are intentionally loose — EXPERIMENTS.md records the
// precise paper-vs-measured numbers.
#include <gtest/gtest.h>

#include "osiris/harness.h"
#include "osiris/node.h"
#include "tc/turbochannel.h"

namespace osiris {
namespace {

TEST(Calibration, TurboChannelDmaBoundsMatchPaperExactly) {
  sim::Engine eng;
  tc::TurboChannel bus(eng, tc::BusConfig{});
  // §2.5.1: 44-byte transfers -> 367 (read) / 463 (write) Mbps;
  //         88-byte transfers -> 503 / 587 Mbps.
  const auto rate = [&](sim::Duration per, std::uint32_t bytes) {
    return static_cast<double>(bytes) * 8.0 / (sim::to_ns(per));  // Gbps
  };
  EXPECT_NEAR(rate(bus.dma_read_cost(44), 44) * 1000, 367, 1.0);
  EXPECT_NEAR(rate(bus.dma_write_cost(44), 44) * 1000, 463, 1.0);
  EXPECT_NEAR(rate(bus.dma_read_cost(88), 88) * 1000, 503, 1.0);
  EXPECT_NEAR(rate(bus.dma_write_cost(88), 88) * 1000, 587, 1.0);
}

TEST(Calibration, InterruptServiceCostsMatchPaper) {
  const auto m5 = host::decstation_5000_200();
  EXPECT_EQ(m5.interrupt_service, sim::us(75));  // §2.1.2
}

struct LatencyCase {
  bool alpha;       // 3000/600 vs 5000/200
  bool udp;         // UDP/IP vs raw ATM
  std::uint32_t bytes;
  double paper_rtt_us;
  double tolerance;  // fraction
};

class Table1Test : public ::testing::TestWithParam<LatencyCase> {};

TEST_P(Table1Test, RoundTripNearPaper) {
  const auto p = GetParam();
  NodeConfig c = p.alpha ? make_3000_600_config() : make_5000_200_config();
  Testbed tb(c, p.alpha ? make_3000_600_config() : make_5000_200_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.mode = p.udp ? proto::StackMode::kUdpIp : proto::StackMode::kRawAtm;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  const auto r = harness::ping_pong(tb, *sa, *sb, vci, p.bytes, 10);
  EXPECT_NEAR(r.rtt_us_mean, p.paper_rtt_us, p.paper_rtt_us * p.tolerance)
      << (p.alpha ? "3000/600" : "5000/200") << (p.udp ? " UDP" : " ATM")
      << " " << p.bytes << "B";
}

// Fixed (1-byte) latencies should match closely; the slope for larger
// messages is dominated by the per-cell pipeline bottleneck, which this
// model underestimates relative to the paper (see EXPERIMENTS.md), hence
// wider tolerances at 4 KB.
INSTANTIATE_TEST_SUITE_P(
    Table1, Table1Test,
    ::testing::Values(LatencyCase{false, false, 1, 353, 0.15},
                      LatencyCase{false, true, 1, 598, 0.15},
                      LatencyCase{true, false, 1, 154, 0.15},
                      LatencyCase{true, true, 1, 316, 0.15},
                      LatencyCase{false, false, 4096, 778, 0.45},
                      LatencyCase{true, false, 4096, 449, 0.45},
                      LatencyCase{false, true, 4096, 1011, 0.45},
                      LatencyCase{true, true, 4096, 619, 0.45}));

TEST(Calibration, Fig2ReceivePlateaus5000_200) {
  // Paper: single-cell DMA ~340 Mbps, double-cell ~379, eager
  // invalidation ~250 (16 KB messages and up).
  auto run = [](bool double_dma, bool eager) {
    NodeConfig c = make_5000_200_config();
    c.board.double_cell_dma_rx = double_dma;
    c.driver.eager_invalidate = eager;
    sim::Engine eng;
    Node n(eng, c);
    proto::StackConfig sc;
    auto stack = n.make_stack(sc);
    return harness::receive_throughput(n, *stack, 700, 64 * 1024, 40, sc).mbps;
  };
  EXPECT_NEAR(run(false, false), 340, 45);
  EXPECT_NEAR(run(true, false), 379, 45);
  EXPECT_NEAR(run(false, true), 250, 40);
}

TEST(Calibration, Fig3ReceivePlateaus3000_600) {
  // Paper: double-cell approaches the 516 Mbps link payload bandwidth;
  // with UDP checksumming it drops to ~438 Mbps.
  auto run = [](bool double_dma, bool cksum) {
    NodeConfig c = make_3000_600_config();
    c.board.double_cell_dma_rx = double_dma;
    sim::Engine eng;
    Node n(eng, c);
    proto::StackConfig sc;
    sc.udp_checksum = cksum;
    auto stack = n.make_stack(sc);
    return harness::receive_throughput(n, *stack, 701, 64 * 1024, 40, sc).mbps;
  };
  const double plain = run(true, false);
  const double cs = run(true, true);
  EXPECT_NEAR(plain, 505, 35);  // approaches 516
  EXPECT_NEAR(cs, 438, 50);
  EXPECT_LT(cs, plain);
}

TEST(Calibration, Fig4TransmitPlateau) {
  // Paper: ~325 Mbps, limited by single-cell DMA TURBOchannel overhead.
  auto run = [](NodeConfig sender_cfg) {
    Testbed tb(std::move(sender_cfg), make_3000_600_config());
    const atm::Vci vci = tb.open_kernel_path();
    auto sa = tb.a.make_stack(proto::StackConfig{});
    auto sb = tb.b.make_stack(proto::StackConfig{});
    return harness::transmit_throughput(tb, tb.a, *sa, *sb, vci, 64 * 1024, 40)
        .mbps;
  };
  const double alpha = run(make_3000_600_config());
  const double mips = run(make_5000_200_config());
  EXPECT_NEAR(alpha, 325, 45);
  EXPECT_LT(mips, alpha);
  EXPECT_GT(mips, 180);
}

TEST(Calibration, CpuTouchingDataCollapsesThroughputOn5000_200) {
  // §4: reading the data (UDP checksum) on the DECstation drops receive
  // throughput to ~80 Mbps due to limited memory bandwidth.
  NodeConfig c = make_5000_200_config();
  sim::Engine eng;
  Node n(eng, c);
  proto::StackConfig sc;
  sc.udp_checksum = true;
  auto stack = n.make_stack(sc);
  const double mbps =
      harness::receive_throughput(n, *stack, 702, 64 * 1024, 25, sc).mbps;
  EXPECT_NEAR(mbps, 80, 30);
}

}  // namespace
}  // namespace osiris
