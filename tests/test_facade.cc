// Facade-level tests: path management (abundant VCIs), statistics
// snapshots, and the RPC protocol configured above the stack.
#include <gtest/gtest.h>

#include "osiris/paths.h"
#include "osiris/stats.h"
#include "proto/rpc.h"

namespace osiris {
namespace {

TEST(Paths, OpenBindsBothEnds) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  PathManager pm(tb);
  const atm::Vci vci = pm.open();
  EXPECT_TRUE(pm.is_open(vci));
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  std::uint64_t got = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++got; });
  proto::Message m = proto::Message::from_payload(
      tb.a.kernel_space, std::vector<std::uint8_t>(100, 1));
  sa->send(0, vci, m);
  tb.run();
  EXPECT_EQ(got, 1u);
}

TEST(Paths, HundredsOfPathsAreCheap) {
  // "potentially hundreds of paths (connections) on a given host" (§3.1).
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  PathManager pm(tb);
  std::vector<atm::Vci> vcis;
  for (int i = 0; i < 400; ++i) vcis.push_back(pm.open());
  EXPECT_EQ(pm.open_count(), 400u);
  // All distinct.
  std::sort(vcis.begin(), vcis.end());
  EXPECT_EQ(std::adjacent_find(vcis.begin(), vcis.end()), vcis.end());
  // Traffic flows on an arbitrary one.
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  std::uint64_t got = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++got; });
  proto::Message m = proto::Message::from_payload(
      tb.a.kernel_space, std::vector<std::uint8_t>(64, 2));
  sa->send(0, vcis[250], m);
  tb.run();
  EXPECT_EQ(got, 1u);
}

TEST(Paths, CloseUnbindsAndTrafficIsDropped) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  PathManager pm(tb);
  const atm::Vci vci = pm.open();
  pm.close(vci);
  EXPECT_FALSE(pm.is_open(vci));
  EXPECT_THROW(pm.close(vci), std::invalid_argument);

  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  std::uint64_t got = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++got; });
  proto::Message m = proto::Message::from_payload(
      tb.a.kernel_space, std::vector<std::uint8_t>(64, 3));
  sa->send(0, vci, m);
  tb.run();
  EXPECT_EQ(got, 0u) << "cells on a closed VCI are discarded at the board";
}

TEST(Paths, VciReuseAfterCloseWorks) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  PathManager pm(tb, 2000);
  const std::uint16_t v1 = pm.open();
  pm.close(v1);
  // The allocator moves forward, but an explicit re-open of the same
  // numeric VCI via map_kernel_vci also works.
  tb.a.map_kernel_vci(v1);
  tb.b.map_kernel_vci(v1);
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  std::uint64_t got = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++got; });
  proto::Message m = proto::Message::from_payload(
      tb.a.kernel_space, std::vector<std::uint8_t>(64, 4));
  sa->send(0, v1, m);
  tb.run();
  EXPECT_EQ(got, 1u);
}

TEST(Stats, SnapshotReflectsTraffic) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  sb->set_sink([](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {});
  proto::Message m = proto::Message::from_payload(
      tb.a.kernel_space, std::vector<std::uint8_t>(5000, 5));
  sim::Tick t = 0;
  for (int i = 0; i < 4; ++i) t = sa->send(t, vci, m);
  tb.run();

  const NodeStats a = snapshot(tb.a);
  const NodeStats b = snapshot(tb.b);
  EXPECT_EQ(a.pdus_sent, 4u);
  EXPECT_EQ(b.pdus_completed, 4u);
  EXPECT_EQ(b.driver_pdus_received, 4u);
  EXPECT_GT(a.cells_sent, 4 * 100u);
  EXPECT_EQ(a.cells_sent, b.cells_received);
  EXPECT_GT(b.interrupts, 0u);
  EXPECT_GT(a.dpram_host_accesses, 0u);
  EXPECT_GT(b.combine_fraction, 0.5);
  EXPECT_GT(a.bus_utilization, 0.0);
  // The formatter produces something human-shaped.
  const std::string text = format_stats(b);
  EXPECT_NE(text.find("PDUs reassembled"), std::string::npos);
  EXPECT_NE(text.find(b.machine), std::string::npos);
}

TEST(Stats, DpramAccessesPerPduAreSmall) {
  // §2.1 goal 1: "minimizing the number of load and store operations
  // required to communicate". A send is ~2 descriptor pushes + doorbell +
  // reaping; a receive is ~2 pops + recycles: tens of accesses, not
  // hundreds.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  sb->set_sink([](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {});
  proto::Message m = proto::Message::from_payload(
      tb.a.kernel_space, std::vector<std::uint8_t>(16000, 6));
  sim::Tick t = 0;
  for (int i = 0; i < 20; ++i) t = sa->send(t, vci, m);
  tb.run();
  const NodeStats b = snapshot(tb.b);
  EXPECT_GT(b.host_accesses_per_pdu(), 5.0);
  EXPECT_LT(b.host_accesses_per_pdu(), 60.0);
}

// ------------------------------------------------------------------- RPC

struct RpcNet {
  Testbed tb{make_3000_600_config(), make_3000_600_config()};
  atm::Vci vci;
  std::unique_ptr<proto::ProtoStack> sa, sb;
  std::unique_ptr<proto::RpcEndpoint> client, server;

  RpcNet() {
    vci = tb.open_kernel_path();
    proto::StackConfig sc;
    sc.udp_checksum = true;
    sa = tb.a.make_stack(sc);
    sb = tb.b.make_stack(sc);
    client = std::make_unique<proto::RpcEndpoint>(
        tb.a.eng, *sa, tb.a.kernel_space, tb.a.cpu, tb.a.cfg.machine);
    server = std::make_unique<proto::RpcEndpoint>(
        tb.b.eng, *sb, tb.b.kernel_space, tb.b.cpu, tb.b.cfg.machine);
  }
};

TEST(Rpc, EchoCall) {
  RpcNet net;
  net.server->serve([](std::vector<std::uint8_t> req) {
    std::reverse(req.begin(), req.end());
    return req;
  });
  std::optional<std::vector<std::uint8_t>> got;
  net.client->call(0, net.vci, {1, 2, 3, 4},
                   [&](sim::Tick, std::optional<std::vector<std::uint8_t>> r) {
                     got = std::move(r);
                   });
  net.tb.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{4, 3, 2, 1}));
  EXPECT_EQ(net.client->responses(), 1u);
  EXPECT_EQ(net.server->served(), 1u);
  EXPECT_EQ(net.client->timeouts(), 0u);
}

TEST(Rpc, ManyOutstandingCallsMatchById) {
  RpcNet net;
  net.server->serve([](std::vector<std::uint8_t> req) {
    for (auto& b : req) b = static_cast<std::uint8_t>(b + 1);
    return req;
  });
  int completed = 0;
  sim::Tick t = 0;
  for (std::uint8_t i = 0; i < 50; ++i) {
    t = net.client->call(
        t, net.vci, std::vector<std::uint8_t>(10, i),
        [&completed, i](sim::Tick, std::optional<std::vector<std::uint8_t>> r) {
          ASSERT_TRUE(r.has_value());
          EXPECT_EQ((*r)[0], static_cast<std::uint8_t>(i + 1));
          ++completed;
        });
  }
  net.tb.run();
  EXPECT_EQ(completed, 50);
}

TEST(Rpc, TimeoutFiresWhenServerIsDeaf) {
  RpcNet net;
  // No serve(): requests are swallowed as stray.
  bool timed_out = false;
  net.client->call(0, net.vci, {9, 9},
                   [&](sim::Tick, std::optional<std::vector<std::uint8_t>> r) {
                     timed_out = !r.has_value();
                   },
                   sim::ms(5));
  net.tb.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(net.client->timeouts(), 1u);
  EXPECT_EQ(net.server->stray(), 1u);
}

TEST(Rpc, LateResponseAfterTimeoutIsStray) {
  RpcNet net;
  net.server->serve([](std::vector<std::uint8_t> req) { return req; });
  bool timed_out = false;
  // Timeout far shorter than the ~150 us round trip.
  net.client->call(0, net.vci, std::vector<std::uint8_t>(2000, 7),
                   [&](sim::Tick, std::optional<std::vector<std::uint8_t>> r) {
                     timed_out = !r.has_value();
                   },
                   sim::us(10));
  net.tb.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(net.client->stray(), 1u) << "the late response must not crash";
}

TEST(Rpc, LargePayloadsFragmentAndReturn) {
  RpcNet net;
  net.server->serve([](std::vector<std::uint8_t> req) {
    return std::vector<std::uint8_t>(req.size() * 2, req.empty() ? 0 : req[0]);
  });
  std::size_t got_len = 0;
  net.client->call(0, net.vci, std::vector<std::uint8_t>(40000, 3),
                   [&](sim::Tick, std::optional<std::vector<std::uint8_t>> r) {
                     if (r) got_len = r->size();
                   });
  net.tb.run();
  EXPECT_EQ(got_len, 80000u);
}

}  // namespace
}  // namespace osiris
