// Determinism and edge-case coverage for the calendar-queue engine.
//
// The engine's contract is exact: events fire in (tick, schedule-sequence)
// order, cancelled timers never fire, and a whole-system run — tx, rx,
// wire loss, injected faults, watchdog — replays bit-identically. The
// calendar internals (bucket wrap, far-heap spill, window re-basing,
// tombstoned cancellations) must be invisible through that contract; these
// tests poke each mechanism and check the contract held.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "osiris/node.h"
#include "proto/message.h"
#include "proto/stack.h"
#include "sim/engine.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace osiris {
namespace {

// ------------------------------------------------------ calendar mechanics

TEST(EngineCalendar, ScheduleAtNowPreservesFifo) {
  sim::Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eng.schedule(0, [&order, i] { order.push_back(i); });
  }
  // An event scheduled at the current tick *from inside* an event at that
  // tick still runs this pass, after everything already queued.
  eng.schedule(0, [&] {
    eng.schedule(0, [&order] { order.push_back(100); });
  });
  eng.run();
  ASSERT_EQ(order.size(), 9u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(order.back(), 100);
}

TEST(EngineCalendar, BucketWrapBeyondWindowKeepsTimeOrder) {
  // The wheel spans ~268 us; delays straddling several windows force both
  // bucket wrap-around and window advances. Interleave short and long
  // delays so insertion order fights time order.
  sim::Engine eng;
  std::vector<sim::Tick> at;
  for (int i = 0; i < 200; ++i) {
    const sim::Duration d =
        (i % 2 == 0) ? sim::us(3.0 * i) : sim::us(900.0 - 4.0 * i);
    eng.schedule(d, [&at, &eng] { at.push_back(eng.now()); });
  }
  eng.run();
  ASSERT_EQ(at.size(), 200u);
  for (std::size_t i = 1; i < at.size(); ++i) EXPECT_LE(at[i - 1], at[i]);
  EXPECT_GE(eng.stats().rewindows, 1u);
}

TEST(EngineCalendar, FarFutureSpillsPreserveOrder) {
  // Millisecond-scale timers take the overflow heap and spill into the
  // wheel as the window advances; dispatch order must stay (at, seq).
  sim::Engine eng;
  std::vector<std::pair<sim::Tick, int>> fired;
  std::uint64_t lcg = 42;
  for (int i = 0; i < 300; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const sim::Duration d = (lcg >> 33) % sim::ms(8);
    eng.schedule(d, [&fired, &eng, i] { fired.emplace_back(eng.now(), i); });
  }
  eng.run();
  ASSERT_EQ(fired.size(), 300u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
  }
  const sim::Engine::Stats st = eng.stats();
  EXPECT_GE(st.far_scheduled, 1u);
  EXPECT_GE(st.spills, 1u);
  EXPECT_EQ(st.dispatched, 300u);
}

TEST(EngineCalendar, EqualTickFifoSpansWheelAndFarHeap) {
  // Events landing on one tick from different structures (far heap first,
  // wheel later) still fire in scheduling order.
  sim::Engine eng;
  const sim::Tick t = sim::ms(3);
  std::vector<int> order;
  eng.schedule_at(t, [&order] { order.push_back(0); });  // far heap
  eng.schedule_at(t, [&order] { order.push_back(1); });  // far heap
  eng.run_until(sim::ms(2.9));                           // window advances
  eng.schedule_at(t, [&order] { order.push_back(2); });  // wheel
  eng.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(EngineCalendar, CancelSemantics) {
  sim::Engine eng;
  int fires = 0;

  // Default-constructed handle: harmless no-op.
  sim::TimerHandle empty;
  EXPECT_FALSE(eng.cancel(empty));

  // Cancel before firing: true once, then stale.
  sim::TimerHandle h = eng.schedule_timer(sim::us(1), [&] { ++fires; });
  sim::TimerHandle dup = h;
  EXPECT_TRUE(eng.cancel(h));
  EXPECT_FALSE(eng.cancel(h));    // handle was cleared
  EXPECT_FALSE(eng.cancel(dup));  // copy is stale too
  EXPECT_EQ(eng.pending(), 0u);

  // Cancel after firing: stale.
  sim::TimerHandle h2 = eng.schedule_timer(sim::us(1), [&] { ++fires; });
  eng.run();
  EXPECT_FALSE(eng.cancel(h2));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(eng.stats().cancelled, 1u);
}

TEST(EngineCalendar, CancelledHeadDoesNotBlockRunUntil) {
  sim::Engine eng;
  int fired = 0;
  sim::TimerHandle head = eng.schedule_timer_at(sim::us(1), [&] { ++fired; });
  eng.schedule_at(sim::us(2), [&] { fired += 10; });
  EXPECT_TRUE(eng.cancel(head));
  EXPECT_EQ(eng.pending(), 1u);  // tombstone not counted
  eng.run_until(sim::us(1));
  EXPECT_EQ(fired, 0);
  eng.run_until(sim::us(2));
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(eng.now(), sim::us(2));
}

TEST(EngineCalendar, CancelFarFutureTimer) {
  // Cancellation must also reach nodes still parked in the overflow heap.
  sim::Engine eng;
  int fired = 0;
  sim::TimerHandle far = eng.schedule_timer(sim::ms(50), [&] { ++fired; });
  eng.schedule(sim::us(1), [&] { fired += 100; });
  EXPECT_TRUE(eng.cancel(far));
  eng.run();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(eng.now(), sim::us(1));  // drained without waiting 50 ms
}

// A randomized workload that re-derives the dispatch contract from the
// outside: every schedule call gets a test-side sequence number (mirroring
// the engine's internal one), and at the end the observed firing order
// must be exactly lexicographic (tick, seq), with each event either fired
// or successfully cancelled — never both, never neither.
struct RandomCtx {
  sim::Engine eng;
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
  std::uint64_t next_seq = 0;
  std::vector<std::pair<sim::Tick, std::uint64_t>> fired;
  std::vector<char> cancelled;  // by seq
  std::deque<std::pair<std::uint64_t, sim::TimerHandle>> open_timers;

  std::uint64_t rnd() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 29;
  }
  sim::Duration rnd_delay() {
    switch (rnd() % 5) {
      case 0: return 0;                              // same tick
      case 1: return rnd() % sim::us(1);             // same bucket-ish
      case 2: return rnd() % sim::us(260);           // across the wheel
      case 3: return sim::us(260) + rnd() % sim::us(40);  // window edge
      default: return rnd() % sim::ms(4);            // far heap
    }
  }
  std::uint64_t claim_seq() {
    cancelled.push_back(0);
    return next_seq++;
  }
  void record(std::uint64_t seq) { fired.emplace_back(eng.now(), seq); }
};

void driver_step(RandomCtx& ctx, int iter, std::uint64_t seq) {
  ctx.record(seq);
  for (int k = 0; k < 3; ++k) {
    const std::uint64_t s = ctx.claim_seq();
    ctx.eng.schedule(ctx.rnd_delay(), [&ctx, s] { ctx.record(s); });
  }
  if (iter % 3 == 0) {
    const std::uint64_t s = ctx.claim_seq();
    sim::TimerHandle h = ctx.eng.schedule_timer(ctx.rnd_delay(),
                                                [&ctx, s] { ctx.record(s); });
    if (ctx.rnd() % 2 == 0) {
      EXPECT_TRUE(ctx.eng.cancel(h));
      ctx.cancelled[s] = 1;
    } else {
      ctx.open_timers.emplace_back(s, h);
    }
  }
  if (iter % 2 == 0 && !ctx.open_timers.empty()) {
    auto [s, h] = ctx.open_timers.front();
    ctx.open_timers.pop_front();
    if (ctx.eng.cancel(h)) ctx.cancelled[s] = 1;  // false = already fired
  }
  if (iter < 1200) {
    const std::uint64_t s = ctx.claim_seq();
    ctx.eng.schedule(ctx.rnd() % sim::us(30),
                     [&ctx, iter, s] { driver_step(ctx, iter + 1, s); });
  }
}

TEST(EngineCalendar, RandomizedDispatchMatchesContract) {
  RandomCtx ctx;
  const std::uint64_t s0 = ctx.claim_seq();
  ctx.eng.schedule(0, [&ctx, s0] { driver_step(ctx, 0, s0); });
  ctx.eng.run();

  // Exactly lexicographic (tick, seq) order.
  for (std::size_t i = 1; i < ctx.fired.size(); ++i) {
    const auto& [pa, ps] = ctx.fired[i - 1];
    const auto& [ca, cs] = ctx.fired[i];
    ASSERT_TRUE(pa < ca || (pa == ca && ps < cs))
        << "out of order at index " << i;
  }

  // Every scheduled event fired XOR was cancelled.
  std::vector<char> seen(ctx.next_seq, 0);
  for (const auto& [at, seq] : ctx.fired) {
    ASSERT_LT(seq, ctx.next_seq);
    EXPECT_EQ(seen[seq], 0) << "event " << seq << " fired twice";
    seen[seq] = 1;
    EXPECT_EQ(ctx.cancelled[seq], 0) << "cancelled event " << seq << " fired";
  }
  for (std::uint64_t s = 0; s < ctx.next_seq; ++s) {
    EXPECT_EQ(seen[s] + ctx.cancelled[s], 1) << "event " << s << " lost";
  }

  const sim::Engine::Stats st = ctx.eng.stats();
  EXPECT_EQ(st.dispatched, ctx.fired.size());
  EXPECT_GE(st.far_scheduled, 1u);  // workload reached the far heap
  EXPECT_GE(st.spills, 1u);
  EXPECT_GE(st.rewindows, 1u);
}

// --------------------------------------------------- whole-system replay

std::uint64_t fnv(std::uint64_t h, std::uint64_t x) {
  h ^= x;
  return h * 1099511628211ull;
}

std::uint64_t fnv_str(std::uint64_t h, const char* s) {
  for (; *s != '\0'; ++s) h = fnv(h, static_cast<std::uint64_t>(*s));
  return h;
}

/// One full mixed run — bidirectional traffic over a lossy wire with DMA
/// faults, lost interrupts, and the watchdog armed — reduced to a single
/// hash over the trace, the delivered bytes, and the engine counters.
std::uint64_t mixed_run_hash() {
  sim::Trace trace{1 << 14};
  fault::FaultPlane fp{0xFA177};
  fp.arm(fault::Point::kDmaError, {.probability = 0.001, .budget = 4});
  fp.arm(fault::Point::kIrqLost, {.after = 3, .budget = 2});

  NodeConfig ca = make_3000_600_config();
  ca.board.reassembly = "seq";
  ca.link.cell_loss_p = 0.002;
  ca.link.seed = 7;
  NodeConfig cb = make_3000_600_config();
  cb.board.reassembly = "seq";
  cb.trace = &trace;
  cb.faults = &fp;

  Testbed tb(ca, cb);
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.udp_checksum = true;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);

  std::uint64_t h = 1469598103934665603ull;
  auto sink = [&h](sim::Tick at, std::uint16_t v,
                   std::vector<std::uint8_t>&& data) {
    h = fnv(h, at);
    h = fnv(h, v);
    for (const std::uint8_t b : data) h = fnv(h, b);
  };
  sa->set_sink(sink);
  sb->set_sink(sink);

  tb.b.start_watchdog(sim::ms(1), sim::ms(5), /*until=*/sim::ms(40));

  sim::Tick ta = 0;
  sim::Tick tbk = sim::us(3);
  for (std::uint32_t i = 0; i < 24; ++i) {
    const std::size_t bytes = 256 + (i * 977) % 6000;
    std::vector<std::uint8_t> payload(bytes);
    for (std::size_t j = 0; j < bytes; ++j) {
      payload[j] = static_cast<std::uint8_t>(j * 31 + i);
    }
    if (i % 3 != 2) {
      ta = sa->send(ta, vci,
                    proto::Message::from_payload(tb.a.kernel_space, payload));
    } else {
      tbk = sb->send(tbk, vci,
                     proto::Message::from_payload(tb.b.kernel_space, payload));
    }
  }
  tb.run();

  for (const sim::TraceEvent& e : trace.events()) {
    h = fnv(h, e.at);
    h = fnv_str(h, e.component);
    h = fnv_str(h, e.event);
    h = fnv(h, e.a);
    h = fnv(h, e.b);
  }
  h = fnv(h, tb.dispatched());
  h = fnv(h, tb.now());
  return h;
}

TEST(SystemDeterminism, MixedFaultWorkloadReplaysBitIdentically) {
  const std::uint64_t first = mixed_run_hash();
  const std::uint64_t second = mixed_run_hash();
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 1469598103934665603ull);  // the run actually did work
}

}  // namespace
}  // namespace osiris
