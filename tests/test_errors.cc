// Fault injection: cell loss, header and payload corruption, and the
// recovery/GC paths (§2.3's condition 1: the network is unreliable and
// detection mechanisms are already in place).
#include <gtest/gtest.h>

#include "osiris/node.h"
#include "proto/message.h"

namespace osiris {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t s) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 19 + s);
  return v;
}

struct Net {
  Testbed tb;
  std::unique_ptr<proto::ProtoStack> sa, sb;
  Net(NodeConfig ca, NodeConfig cb, proto::StackConfig sc)
      : tb(std::move(ca), std::move(cb)) {
    sa = tb.a.make_stack(sc);
    sb = tb.b.make_stack(sc);
  }
};

TEST(Errors, PayloadCorruptionCaughtByChecksumNotMisdeliveredAsStale) {
  NodeConfig ca = make_3000_600_config();
  ca.link.payload_err_p = 0.03;  // ~3% of cells take a bit flip
  ca.link.seed = 99;
  proto::StackConfig sc;
  sc.udp_checksum = true;
  Net net(std::move(ca), make_3000_600_config(), sc);
  const atm::Vci vci = net.tb.open_kernel_path();
  std::uint64_t ok = 0, escapes = 0;
  const auto want = pattern(8000, 1);
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    // The 16-bit one's-complement checksum can be fooled by bit flips
    // that cancel (a genuine protocol weakness); count escapes.
    if (d != want) {
      ++escapes;
    } else {
      ++ok;
    }
  });
  proto::Message m =
      proto::Message::from_payload(net.tb.a.kernel_space, want);
  sim::Tick t = 0;
  for (int i = 0; i < 20; ++i) t = net.sa->send(t, vci, m);
  net.tb.run();
  EXPECT_GT(net.sb->checksum_failures(), 0u) << "most damage must be caught";
  EXPECT_EQ(net.sb->stale_recoveries(), 0u) << "wire damage is not stale cache";
  EXPECT_EQ(ok + escapes + net.sb->checksum_failures(), 20u);
  EXPECT_LT(escapes, net.sb->checksum_failures())
      << "escapes must be the minority";
}

TEST(Errors, HeaderCorruptionDropsCellsAtTheBoard) {
  NodeConfig ca = make_3000_600_config();
  ca.link.header_err_p = 1.0;
  Net net(std::move(ca), make_3000_600_config(), proto::StackConfig{});
  const atm::Vci vci = net.tb.open_kernel_path();
  std::uint64_t delivered = 0;
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    ++delivered;
  });
  proto::Message m =
      proto::Message::from_payload(net.tb.a.kernel_space, pattern(3000, 2));
  net.sa->send(0, vci, m);
  net.tb.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_GT(net.tb.b.rxp.cells_bad_header(), 0u);
}

TEST(Errors, CellLossLeavesIncompletePdusAndGcReclaims) {
  NodeConfig ca = make_3000_600_config();
  ca.board.reassembly = "seq";  // per-cell placement tolerates gaps cleanly
  // A 10 KB message is ~230 cells; 0.2% loss kills roughly a third of the
  // messages while letting most through.
  ca.link.cell_loss_p = 0.002;
  ca.link.seed = 7;
  NodeConfig cb = make_3000_600_config();
  cb.board.reassembly = "seq";
  proto::StackConfig sc;
  sc.udp_checksum = true;
  Net net(std::move(ca), std::move(cb), sc);
  const atm::Vci vci = net.tb.open_kernel_path();
  std::uint64_t delivered = 0;
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    EXPECT_EQ(d, pattern(d.size(), 3));
    ++delivered;
  });
  proto::Message m =
      proto::Message::from_payload(net.tb.a.kernel_space, pattern(10000, 3));
  sim::Tick t = 0;
  for (int i = 0; i < 25; ++i) t = net.sa->send(t, vci, m);
  net.tb.run();
  EXPECT_LT(delivered, 25u) << "2% loss must kill some messages";
  EXPECT_GT(delivered, 0u);
  // Incomplete reassembly state remains on the board; GC reclaims it.
  const std::uint64_t purged = net.tb.b.rxp.purge_incomplete(0);
  EXPECT_GT(purged, 0u);
  EXPECT_EQ(net.tb.b.rxp.purge_incomplete(0), 0u) << "idempotent";
  // Partial buffer accumulations in the driver are reclaimed too.
  net.tb.b.driver.flush_partials(net.tb.now());
  net.tb.run();
}

TEST(Errors, LossyBurstsDoNotPoisonLaterTraffic) {
  // After a lossy interval, new messages on the SAME vci must still work
  // (seq strategy: per-cell placement keyed by pdu id).
  NodeConfig ca = make_3000_600_config();
  ca.board.reassembly = "seq";
  NodeConfig cb = make_3000_600_config();
  cb.board.reassembly = "seq";
  proto::StackConfig sc;
  sc.udp_checksum = true;
  Net net(std::move(ca), std::move(cb), sc);
  const atm::Vci vci = net.tb.open_kernel_path();
  std::uint64_t delivered = 0;
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    ++delivered;
  });
  proto::Message m =
      proto::Message::from_payload(net.tb.a.kernel_space, pattern(5000, 4));
  // Phase 1: drop EVERY cell by corrupting headers at the receiver's rx.
  // (simulate by sending to an unmapped VCI: cells are discarded)
  proto::Message junk =
      proto::Message::from_payload(net.tb.a.kernel_space, pattern(5000, 5));
  net.sa->send(0, 999, junk);  // VCI 999 unmapped at B
  net.tb.run();
  EXPECT_EQ(delivered, 0u);
  // Phase 2: normal traffic flows untouched.
  sim::Tick t = net.tb.now();
  for (int i = 0; i < 5; ++i) t = net.sa->send(t, vci, m);
  net.tb.run();
  EXPECT_EQ(delivered, 5u);
}

TEST(Errors, QuadStrategyIsFragileUnderLossAsPaperImplies) {
  // Strategy B's per-lane counting has no per-cell identity: losing cells
  // desynchronizes lane attribution, so messages after the loss point can
  // be corrupted or lost until state resets. We assert only that the
  // checksum shields the application (nothing corrupt delivered).
  NodeConfig ca = make_3000_600_config();
  ca.link.cell_loss_p = 0.01;
  ca.link.seed = 21;
  proto::StackConfig sc;
  sc.udp_checksum = true;
  Net net(std::move(ca), make_3000_600_config(), sc);
  const atm::Vci vci = net.tb.open_kernel_path();
  std::uint64_t delivered = 0;
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    EXPECT_EQ(d, pattern(d.size(), 6)) << "checksum must shield the app";
    ++delivered;
  });
  proto::Message m =
      proto::Message::from_payload(net.tb.a.kernel_space, pattern(4000, 6));
  sim::Tick t = 0;
  for (int i = 0; i < 20; ++i) t = net.sa->send(t, vci, m);
  net.tb.run();
  EXPECT_LT(delivered, 20u);
}

TEST(Errors, RecvQueueOverflowShedsWholePdus) {
  // A wedged driver thread: the receive queue fills; the board drops
  // complete PDUs at push time and the host pays nothing for them.
  sim::Engine eng;
  NodeConfig cfg = make_3000_600_config();
  Node n(eng, cfg);
  n.map_kernel_vci(500);
  n.driver.set_rx_handler(
      [&](sim::Tick at, host::RxPduView&) { return at + sim::sec(1); });
  std::vector<std::uint8_t> pdu(600, 1);
  n.rxp.start_generator(500, pdu, 400, 0);
  eng.run_until(sim::ms(50));
  EXPECT_GT(n.rxp.pdus_dropped_recvfull() + n.rxp.pdus_dropped_nobuf(), 0u);
}

}  // namespace
}  // namespace osiris
