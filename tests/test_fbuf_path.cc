// End-to-end fbuf data paths (§3.1): early demultiplexing steers a VCI's
// incoming PDUs into that path's preallocated, pre-mapped buffer pool.
#include <gtest/gtest.h>

#include "fbuf/fbuf.h"
#include "osiris/node.h"

namespace osiris {
namespace {

struct Fx {
  sim::Engine eng;
  std::unique_ptr<Node> node;
  std::unique_ptr<fbuf::FbufPool> pool;

  Fx() {
    NodeConfig cfg = make_3000_600_config();
    node = std::make_unique<Node>(eng, cfg);
    node->out.set_sink(
        [this](int lane, const atm::Cell& c) { node->rxp.on_cell(lane, c); });
    pool = std::make_unique<fbuf::FbufPool>(eng, node->cfg.machine, node->cpu,
                                            node->frames,
                                            fbuf::FbufPool::Config{});
  }
};

TEST(FbufPath, IncomingPdusLandInThePathsPool) {
  Fx f;
  Node& n = *f.node;
  const int path = n.open_fbuf_path(*f.pool, 600, {0, 1, 2});
  const auto pool_bufs = f.pool->path_pool(path);
  ASSERT_FALSE(pool_bufs.empty());

  std::vector<std::uint32_t> seen_addrs;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView& pdu) {
    for (const auto& b : pdu.bufs) seen_addrs.push_back(b.pa);
    return at;
  });
  std::vector<std::uint8_t> pdu_bytes(6000, 0x21);
  n.rxp.start_generator(600, pdu_bytes, 3, 0);
  f.eng.run();

  ASSERT_FALSE(seen_addrs.empty());
  for (const std::uint32_t pa : seen_addrs) {
    const bool in_pool =
        std::any_of(pool_bufs.begin(), pool_bufs.end(), [pa](const auto& b) {
          return pa >= b.addr && pa < b.addr + b.len;
        });
    EXPECT_TRUE(in_pool) << "buffer " << pa << " not from the path pool";
  }
}

TEST(FbufPath, RecyclingKeepsThePoolAlive) {
  // Far more PDUs than the pool holds: buffers must cycle back through
  // the per-path free queue.
  Fx f;
  Node& n = *f.node;
  n.open_fbuf_path(*f.pool, 601, {0, 1});
  n.driver.set_rx_handler([](sim::Tick at, host::RxPduView&) { return at; });
  std::vector<std::uint8_t> pdu_bytes(3000, 0x22);
  n.rxp.start_generator(601, pdu_bytes, 200, 0);
  f.eng.run();
  EXPECT_EQ(n.driver.pdus_received(), 200u);
  EXPECT_EQ(n.rxp.pdus_dropped_nobuf(), 0u);
}

TEST(FbufPath, ExhaustedPathFallsBackToKernelPool) {
  // Wedge the consumer so path buffers stay out; the board falls back to
  // the kernel (uncached) pool rather than dropping (§3.1: "if not, it
  // uses a buffer from the queue of uncached fbufs").
  Fx f;
  Node& n = *f.node;
  const int path = n.open_fbuf_path(*f.pool, 602, {0, 1});
  const auto pool_bufs = f.pool->path_pool(path);

  std::uint64_t from_pool = 0, from_kernel = 0;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView& pdu) {
    for (const auto& b : pdu.bufs) {
      const bool in_pool = std::any_of(
          pool_bufs.begin(), pool_bufs.end(), [&](const auto& pb) {
            return b.pa >= pb.addr && b.pa < pb.addr + pb.len;
          });
      (in_pool ? from_pool : from_kernel)++;
    }
    return at + sim::ms(100);  // wedge: buffers held a long time
  });
  std::vector<std::uint8_t> pdu_bytes(16000, 0x23);
  n.rxp.start_generator(602, pdu_bytes, 40, 0);
  f.eng.run();
  EXPECT_GT(from_pool, 0u);
  EXPECT_GT(from_kernel, 0u) << "fallback to the kernel pool must kick in";
}

TEST(FbufPath, MultiplePathsAreIsolated) {
  Fx f;
  Node& n = *f.node;
  const int p1 = n.open_fbuf_path(*f.pool, 603, {0, 1});
  const int p2 = n.open_fbuf_path(*f.pool, 604, {0, 2});
  const auto bufs1 = f.pool->path_pool(p1);
  const auto bufs2 = f.pool->path_pool(p2);

  std::map<std::uint16_t, std::vector<std::uint32_t>> by_vci;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView& pdu) {
    for (const auto& b : pdu.bufs) by_vci[pdu.vci].push_back(b.pa);
    return at;
  });
  std::vector<std::uint8_t> pdu_bytes(2000, 0x24);
  n.rxp.start_generator(603, pdu_bytes, 5, 0);
  f.eng.run();
  n.rxp.start_generator(604, pdu_bytes, 5, 0);
  f.eng.run();

  auto all_in = [](const std::vector<std::uint32_t>& addrs,
                   const std::vector<mem::PhysBuffer>& pool) {
    return std::all_of(addrs.begin(), addrs.end(), [&](std::uint32_t pa) {
      return std::any_of(pool.begin(), pool.end(), [&](const auto& b) {
        return pa >= b.addr && pa < b.addr + b.len;
      });
    });
  };
  EXPECT_TRUE(all_in(by_vci[603], bufs1));
  EXPECT_TRUE(all_in(by_vci[604], bufs2));
}

TEST(FbufPath, OutOfDpramPagesThrows) {
  Fx f;
  Node& n = *f.node;
  for (std::uint16_t i = 0; i < 8; ++i) {
    n.open_fbuf_path(*f.pool, static_cast<std::uint16_t>(610 + i), {0, 1});
  }
  EXPECT_THROW(n.open_fbuf_path(*f.pool, 630, {0, 1}), std::runtime_error);
}

}  // namespace
}  // namespace osiris
