// Wire-format tests: the 53-byte cell codec, the CRC-8 HEC, and the
// byte-accurate link error mode.
#include <gtest/gtest.h>

#include "atm/sar.h"
#include "atm/wire.h"
#include "link/link.h"
#include "osiris/node.h"
#include "proto/message.h"
#include "sim/rng.h"

namespace osiris::atm {
namespace {

Cell make_cell(atm::Vci vci, std::uint16_t pdu_id, std::uint16_t seq,
               std::uint8_t flags, std::uint8_t len) {
  Cell c;
  c.vci = vci;
  c.pdu_id = pdu_id;
  c.seq = seq;
  c.flags = flags;
  c.len = len;
  for (int i = 0; i < len; ++i) {
    c.payload[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(i * 7 + seq);
  }
  seal(c);
  return c;
}

TEST(Wire, RoundTripAllFields) {
  sim::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Cell c = make_cell(
        static_cast<std::uint16_t>(rng.below(65536)),
        static_cast<std::uint16_t>(rng.below(1u << 14)),
        static_cast<std::uint16_t>(rng.below(kMaxCellsPerPdu)),
        static_cast<std::uint8_t>(rng.below(8)),
        static_cast<std::uint8_t>(1 + rng.below(kCellPayload)));
    const auto back = decode_cell(encode_cell(c));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->vci, c.vci);
    EXPECT_EQ(back->pdu_id, c.pdu_id);
    EXPECT_EQ(back->seq, c.seq);
    EXPECT_EQ(back->flags, c.flags);
    EXPECT_EQ(back->len, c.len);
    EXPECT_TRUE(std::equal(c.payload.begin(), c.payload.begin() + c.len,
                           back->payload.begin()));
    EXPECT_TRUE(header_ok(*back));
  }
}

TEST(Wire, FieldWidthLimitsEnforced) {
  Cell c = make_cell(1, 1, 1, 0, 10);
  c.seq = kMaxCellsPerPdu;
  EXPECT_THROW(encode_cell(c), std::invalid_argument);
  c.seq = 1;
  c.pdu_id = 1u << 14;
  EXPECT_THROW(encode_cell(c), std::invalid_argument);
  c.pdu_id = 1;
  c.len = 0;
  EXPECT_THROW(encode_cell(c), std::invalid_argument);
  c.len = kCellPayload + 1;
  EXPECT_THROW(encode_cell(c), std::invalid_argument);
}

TEST(Wire, HecCatchesEveryHeaderBitFlip) {
  const Cell c = make_cell(0x1234, 77, 9, kFlagBom, 44);
  const WireCell w = encode_cell(c);
  for (int byte = 0; byte < 5; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      WireCell bad = w;
      bad[static_cast<std::size_t>(byte)] ^=
          static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(decode_cell(bad).has_value())
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Wire, PayloadDamagePassesHecButBreaksPduCrc) {
  // Payload and AAL bytes are not covered by the HEC (as in real ATM);
  // end-to-end integrity is the AAL CRC / checksum layer's job.
  std::vector<std::uint8_t> pdu(300, 0x5C);
  auto cells = segment(pdu, 9, 0);
  for (auto& c : cells) seal(c);
  PduAssembler asm_ok, asm_bad;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    WireCell w = encode_cell(cells[i]);
    if (i == 1) w[20] ^= 0x04;  // payload bit
    const auto back = decode_cell(w);
    ASSERT_TRUE(back.has_value());
    asm_bad.add(*back);
    asm_ok.add(cells[i]);
  }
  EXPECT_TRUE(asm_ok.finish().has_value());
  EXPECT_FALSE(asm_bad.finish().has_value()) << "CRC-32 must catch it";
}

TEST(Wire, HecHasCosetLeader) {
  // An all-zero header must not produce a zero HEC (ITU I.432 coset).
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  EXPECT_EQ(hec8(zeros), 0x55);
}

TEST(Wire, FullCellLenEncodesAsZero) {
  // len==44 uses the 0 encoding in the 6-bit field; a stray value > 44
  // must be rejected.
  const Cell c = make_cell(5, 5, 5, 0, kCellPayload);
  WireCell w = encode_cell(c);
  EXPECT_EQ(w[8] & 0x3F, 0);
  w[8] = static_cast<std::uint8_t>((w[8] & ~0x3F) | 45);
  EXPECT_FALSE(decode_cell(w).has_value());
}

}  // namespace
}  // namespace osiris::atm

namespace osiris {
namespace {

TEST(WireLink, ByteAccurateModeCleanLinkIsLossless) {
  NodeConfig ca = make_3000_600_config();
  ca.link.wire_ber = 1e-12;  // engages the codec path, negligible errors
  Testbed tb(std::move(ca), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  std::vector<std::uint8_t> want(20000);
  for (std::size_t i = 0; i < want.size(); ++i) {
    want[i] = static_cast<std::uint8_t>(i * 3 + 1);
  }
  std::uint64_t ok = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    EXPECT_EQ(d, want);
    ++ok;
  });
  proto::Message m = proto::Message::from_payload(tb.a.kernel_space, want);
  sim::Tick t = 0;
  for (int i = 0; i < 5; ++i) t = sa->send(t, vci, m);
  tb.run();
  EXPECT_EQ(ok, 5u);
}

TEST(WireLink, BitErrorRateSplitsIntoHecDropsAndChecksumFailures) {
  NodeConfig ca = make_3000_600_config();
  ca.link.wire_ber = 2e-4;  // ~0.08 flips/cell
  ca.link.seed = 13;
  Testbed tb(std::move(ca), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.udp_checksum = true;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  std::uint64_t delivered = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    ++delivered;
  });
  proto::Message m = proto::Message::from_payload(
      tb.a.kernel_space, std::vector<std::uint8_t>(10000, 0x2F));
  sim::Tick t = 0;
  for (int i = 0; i < 20; ++i) t = sa->send(t, vci, m);
  tb.run();
  EXPECT_GT(tb.a.out.cells_corrupted(), 0u);
  EXPECT_GT(tb.a.out.cells_hec_dropped(), 0u) << "some flips hit the header";
  EXPECT_LT(delivered, 20u);
}

}  // namespace
}  // namespace osiris
