// Board firmware tests: transmit segmentation via DMA, receive reassembly
// into host memory, interrupt discipline, DMA combining, authorization.
#include <gtest/gtest.h>

#include "osiris/node.h"

namespace osiris {
namespace {

struct Fixture {
  sim::Engine eng;
  std::unique_ptr<Node> node;

  explicit Fixture(NodeConfig cfg = make_3000_600_config()) {
    cfg.link.base_delay_us = 1.0;
    node = std::make_unique<Node>(eng, cfg);
    // Loop the node's transmit link back into its own receive processor.
    node->out.set_sink(
        [this](int lane, const atm::Cell& c) { node->rxp.on_cell(lane, c); });
  }
};

TEST(Board, LoopbackPduRoundTrip) {
  Fixture f;
  Node& n = *f.node;
  n.map_kernel_vci(200);

  std::vector<std::uint8_t> payload(5000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  std::vector<std::uint8_t> got;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView& pdu) {
    got.resize(pdu.pdu_len);
    pdu.read_raw(n.pm, 0, got);
    return at;
  });

  const mem::VirtAddr va =
      n.kernel_space.alloc(static_cast<std::uint32_t>(payload.size()), 40);
  n.kernel_space.write(va, payload);
  const auto sc =
      n.kernel_space.scatter(va, static_cast<std::uint32_t>(payload.size()));
  n.driver.send(f.eng.now(), 200, sc);
  f.eng.run();

  EXPECT_EQ(got, payload);
  EXPECT_EQ(n.txp.pdus_sent(), 1u);
  EXPECT_EQ(n.rxp.pdus_completed(), 1u);
  EXPECT_EQ(n.driver.pdus_received(), 1u);
}

TEST(Board, ManyPdusKeepDataIntegrity) {
  Fixture f;
  Node& n = *f.node;
  n.map_kernel_vci(201);
  std::vector<std::vector<std::uint8_t>> sent, got;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView& pdu) {
    std::vector<std::uint8_t> d(pdu.pdu_len);
    pdu.read_raw(n.pm, 0, d);
    got.push_back(std::move(d));
    return at;
  });
  sim::Tick t = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    std::vector<std::uint8_t> payload(100 + i * 321);
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::uint8_t>(j + i * 17);
    }
    const mem::VirtAddr va = n.kernel_space.alloc(
        static_cast<std::uint32_t>(payload.size()), (i * 100) % 4096);
    n.kernel_space.write(va, payload);
    t = n.driver.send(
        t, 201,
        n.kernel_space.scatter(va, static_cast<std::uint32_t>(payload.size())));
    sent.push_back(std::move(payload));
  }
  f.eng.run();
  EXPECT_EQ(got, sent);  // in-order, intact
}

TEST(Board, ReceiveInterruptOnlyOnEmptyToNonEmpty) {
  Fixture f;
  Node& n = *f.node;
  n.map_kernel_vci(202);
  n.driver.set_rx_handler(
      [&](sim::Tick at, host::RxPduView&) { return at + sim::us(500); });

  // A burst of PDUs: far fewer interrupts than PDUs (§2.1.2).
  std::vector<std::uint8_t> pdu(2000, 1);
  n.rxp.start_generator(202, pdu, 50, 0);
  f.eng.run();
  EXPECT_EQ(n.driver.pdus_received(), 50u);
  EXPECT_LT(n.intc.raised(), 10u);
  EXPECT_GE(n.intc.raised(), 1u);
}

TEST(Board, DoubleCellDmaCombinesContiguousPayloads) {
  NodeConfig cfg = make_3000_600_config();
  cfg.board.double_cell_dma_rx = true;
  Fixture f(cfg);
  Node& n = *f.node;
  n.map_kernel_vci(203);
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView&) { return at; });
  std::vector<std::uint8_t> pdu(16000, 2);
  n.rxp.start_generator(203, pdu, 5, 0);
  f.eng.run();
  EXPECT_GT(n.rxp.combine_fraction(), 0.8) << "in-order cells should combine";
}

TEST(Board, SingleCellDmaNeverCombines) {
  NodeConfig cfg = make_3000_600_config();
  cfg.board.double_cell_dma_rx = false;
  Fixture f(cfg);
  Node& n = *f.node;
  n.map_kernel_vci(204);
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView&) { return at; });
  std::vector<std::uint8_t> pdu(8000, 3);
  n.rxp.start_generator(204, pdu, 3, 0);
  f.eng.run();
  EXPECT_EQ(n.rxp.combined_dma_ops(), 0u);
}

TEST(Board, TransmitQueueFullSuspendsAndResumes) {
  Fixture f;
  Node& n = *f.node;
  n.map_kernel_vci(205);
  std::uint64_t received = 0;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView&) {
    ++received;
    return at;
  });
  // Push far more PDUs than the 64-entry queue holds, back to back.
  std::vector<std::uint8_t> payload(100, 9);
  const mem::VirtAddr va = n.kernel_space.alloc(100);
  n.kernel_space.write(va, payload);
  const auto sc = n.kernel_space.scatter(va, 100);
  sim::Tick t = 0;
  for (int i = 0; i < 300; ++i) t = n.driver.send(t, 205, sc);
  f.eng.run();
  // Every PDU makes it through the transmit path (suspension + resume on
  // the half-empty interrupt); the receiver may shed load at the free
  // queue (§3.1) but PDUs are conserved.
  EXPECT_EQ(n.txp.pdus_sent(), 300u);
  EXPECT_GE(n.driver.tx_suspensions(), 1u);
  EXPECT_EQ(received + n.rxp.pdus_dropped_nobuf() +
                n.rxp.pdus_dropped_recvfull(),
            300u);
  EXPECT_GT(received, 100u);
}

TEST(Board, FreeQueueExhaustionDropsPdusBeforeHostCycles) {
  // §3.1: when no buffers remain, the board drops the PDU — the host never
  // sees it.
  NodeConfig cfg = make_3000_600_config();
  cfg.driver.rx_buffers = 4;
  Fixture f(cfg);
  Node& n = *f.node;
  n.map_kernel_vci(206);
  // The driver thread is slow: hold each PDU a long time.
  n.driver.set_rx_handler(
      [&](sim::Tick at, host::RxPduView&) { return at + sim::ms(50); });
  std::vector<std::uint8_t> pdu(16000, 4);
  n.rxp.start_generator(206, pdu, 30, 0);
  f.eng.run();
  EXPECT_GT(n.rxp.pdus_dropped_nobuf(), 0u);
  EXPECT_LT(n.driver.pdus_received(), 30u);
}

TEST(Board, TailAdvanceSignalsCompletionWithoutInterrupt) {
  Fixture f;
  Node& n = *f.node;
  n.map_kernel_vci(207);
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView&) { return at; });
  std::vector<std::uint8_t> payload(500, 5);
  const mem::VirtAddr va = n.kernel_space.alloc(500);
  n.kernel_space.write(va, payload);
  const auto sc = n.kernel_space.scatter(va, 500);
  n.driver.send(0, 207, sc);
  f.eng.run();
  // One receive interrupt; no transmit-completion interrupt.
  EXPECT_EQ(n.intc.raised(), 1u);
  // Pages were unwired after a later send reaped the completion.
  n.driver.send(f.eng.now(), 207, sc);
  f.eng.run();
  EXPECT_LE(n.driver.wiring().wired_frames(), 2u);
}

}  // namespace
}  // namespace osiris
