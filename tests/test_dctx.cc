// Double-cell transmit DMA — the hardware change the paper reports as
// "underway" (§4): correctness, and the predicted throughput ordering
// (host-to-host falls between the single-cell transmit bound and the
// double-cell receive curve).
#include <gtest/gtest.h>

#include "osiris/harness.h"
#include "osiris/node.h"
#include "proto/message.h"

namespace osiris {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t s) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 41 + s);
  return v;
}

TEST(DoubleCellTx, DataIntegrityAcrossSizesAndAlignments) {
  NodeConfig ca = make_3000_600_config();
  ca.board.double_cell_dma_tx = true;
  Testbed tb(std::move(ca), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  std::vector<std::vector<std::uint8_t>> got;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    got.push_back(std::move(d));
  });
  std::vector<std::vector<std::uint8_t>> sent;
  sim::Tick t = 0;
  for (std::uint32_t i = 0; i < 12; ++i) {
    auto data = pattern(37 + i * 977, static_cast<std::uint8_t>(i));
    proto::Message m = proto::Message::from_payload(
        tb.a.kernel_space, data, (i * 517) % mem::kPageSize);
    t = sa->send(t, vci, m);
    sent.push_back(std::move(data));
  }
  tb.run();
  EXPECT_EQ(got, sent);
}

TEST(DoubleCellTx, FewerLargerDmaReads) {
  auto count = [](bool dbl) {
    NodeConfig ca = make_3000_600_config();
    ca.board.double_cell_dma_tx = dbl;
    Testbed tb(std::move(ca), make_3000_600_config());
    const atm::Vci vci = tb.open_kernel_path();
    auto sa = tb.a.make_stack(proto::StackConfig{});
    auto sb = tb.b.make_stack(proto::StackConfig{});
    proto::Message m = proto::Message::from_payload(tb.a.kernel_space,
                                                    pattern(16000, 1), 0);
    sa->send(0, vci, m);
    tb.run();
    return tb.a.txp.dma_ops();
  };
  const auto single = count(false);
  const auto dbl = count(true);
  EXPECT_GT(single, dbl);
  EXPECT_NEAR(static_cast<double>(single) / static_cast<double>(dbl), 2.0, 0.25);
}

TEST(DoubleCellTx, ThroughputOrderingMatchesPaperPrediction) {
  // §4: "With double cell DMA transfers on the transmit side, the
  // host-to-host throughput attained is expected to fall between the
  // graphs for single cell DMA and that for double cell DMA on the
  // receive side."
  auto tx_tp = [](bool dbl) {
    NodeConfig ca = make_3000_600_config();
    ca.board.double_cell_dma_tx = dbl;
    Testbed tb(std::move(ca), make_3000_600_config());
    const atm::Vci vci = tb.open_kernel_path();
    auto sa = tb.a.make_stack(proto::StackConfig{});
    auto sb = tb.b.make_stack(proto::StackConfig{});
    return harness::transmit_throughput(tb, tb.a, *sa, *sb, vci, 64 * 1024, 25)
        .mbps;
  };
  const double single = tx_tp(false);
  const double dbl = tx_tp(true);
  EXPECT_GT(dbl, single + 50) << "double-cell transmit must help a lot";
  EXPECT_LT(dbl, 520.0) << "and stay under the link payload bandwidth";
  // Bus arithmetic: single-cell transmit ~326 Mbps incl. setup cycles;
  // double-cell read bound is 503 Mbps.
  EXPECT_NEAR(single, 320, 35);
  EXPECT_GT(dbl, 400);
}

TEST(DoubleCellTx, SkewDoesNotBreakDoubleCellTransmit) {
  NodeConfig ca = make_3000_600_config();
  ca.board.double_cell_dma_tx = true;
  ca.link = link::skewed_config(25.0, 5);
  Testbed tb(std::move(ca), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  std::uint64_t ok = 0;
  const auto want = pattern(20000, 9);
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    EXPECT_EQ(d, want);
    ++ok;
  });
  proto::Message m = proto::Message::from_payload(tb.a.kernel_space, want);
  sim::Tick t = 0;
  for (int i = 0; i < 8; ++i) t = sa->send(t, vci, m);
  tb.run();
  EXPECT_EQ(ok, 8u);
}

}  // namespace
}  // namespace osiris
