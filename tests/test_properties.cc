// Property-style parameterized sweeps over the low-level invariants:
// SAR round-trips across size classes, checksum composition, cache
// configurations, queue capacities, and address-space scatter coverage.
#include <gtest/gtest.h>

#include <numeric>

#include "atm/checksum.h"
#include "atm/sar.h"
#include "dpram/queue.h"
#include "mem/cache.h"
#include "mem/paging.h"
#include "sim/rng.h"

namespace osiris {
namespace {

std::vector<std::uint8_t> rnd_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

// ------------------------------------------------------------------ SAR

class SarSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SarSweep, SegmentAssembleIdentity) {
  const std::uint32_t n = GetParam();
  const auto pdu = rnd_bytes(n, 1000 + n);
  const auto cells = atm::segment(pdu, 3, static_cast<std::uint16_t>(n));
  EXPECT_EQ(cells.size(), atm::cells_for(n));
  atm::PduAssembler a;
  for (const auto& c : cells) {
    EXPECT_TRUE(atm::header_ok(c) || c.hec == 0);  // segment() doesn't seal
    ASSERT_TRUE(a.add(c));
  }
  ASSERT_TRUE(a.complete());
  const auto out = a.finish();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, pdu);
}

TEST_P(SarSweep, ReverseOrderAssembly) {
  const std::uint32_t n = GetParam();
  const auto pdu = rnd_bytes(n, 2000 + n);
  auto cells = atm::segment(pdu, 3, 9);
  std::reverse(cells.begin(), cells.end());
  atm::PduAssembler a;
  for (const auto& c : cells) ASSERT_TRUE(a.add(c));
  EXPECT_EQ(*a.finish(), pdu);
}

TEST_P(SarSweep, FlagInvariants) {
  const std::uint32_t n = GetParam();
  const auto cells = atm::segment(rnd_bytes(n, 3000 + n), 3, 9);
  int boms = 0, lasts = 0, lane_eoms = 0;
  for (const auto& c : cells) {
    boms += c.bom() ? 1 : 0;
    lasts += c.last_cell() ? 1 : 0;
    lane_eoms += c.lane_eom() ? 1 : 0;
  }
  EXPECT_EQ(boms, 1);
  EXPECT_EQ(lasts, 1);
  // Exactly one lane-EOM per lane that carries cells.
  EXPECT_EQ(lane_eoms,
            static_cast<int>(std::min<std::size_t>(cells.size(), atm::kLanes)));
  EXPECT_TRUE(cells.back().last_cell());
  EXPECT_TRUE(cells.front().bom());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SarSweep,
    ::testing::Values(0u, 1u, 35u, 36u, 37u, 43u, 44u, 79u, 80u, 81u, 87u, 88u,
                      89u, 131u, 132u, 175u, 176u, 1000u, 4095u, 4096u, 4097u,
                      16384u, 16392u, 65536u));

// ------------------------------------------------------------- checksums

class ChecksumChunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChecksumChunking, CrcIncrementalEqualsOneShot) {
  const auto data = rnd_bytes(5000, 77);
  const std::size_t chunk = GetParam();
  atm::Crc32 inc;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    inc.update({data.data() + off, std::min(chunk, data.size() - off)});
  }
  EXPECT_EQ(inc.value(), atm::Crc32::of(data));
}

TEST_P(ChecksumChunking, InternetIncrementalEqualsOneShot) {
  const auto data = rnd_bytes(5001, 78);  // odd length
  const std::size_t chunk = GetParam();
  atm::InternetChecksum inc;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    inc.update({data.data() + off, std::min(chunk, data.size() - off)});
  }
  EXPECT_EQ(inc.value(), atm::InternetChecksum::of(data));
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChecksumChunking,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 44u, 100u,
                                           1024u, 4999u));

TEST(ChecksumProperties, SingleBitFlipAlwaysDetectedByCrc) {
  const auto data = rnd_bytes(512, 5);
  const std::uint32_t good = atm::Crc32::of(data);
  sim::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    auto bad = data;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    EXPECT_NE(atm::Crc32::of(bad), good);
  }
}

TEST(ChecksumProperties, SingleBitFlipAlwaysDetectedByInternetChecksum) {
  // One flip always changes the one's-complement sum (it is two cancelling
  // flips that can fool it).
  const auto data = rnd_bytes(512, 7);
  const std::uint16_t good = atm::InternetChecksum::of(data);
  sim::Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    auto bad = data;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    EXPECT_NE(atm::InternetChecksum::of(bad), good);
  }
}

// ----------------------------------------------------------------- cache

struct CacheCase {
  std::uint32_t size;
  std::uint32_t line;
  mem::DmaCoherence coh;
};

class CacheSweep : public ::testing::TestWithParam<CacheCase> {};

TEST_P(CacheSweep, RandomOpsMatchReferenceAfterInvalidate) {
  // Against a reference flat memory: after invalidating everything the
  // cache must agree with memory, whatever mix of CPU/DMA ops ran.
  const auto [size, line, coh] = GetParam();
  mem::PhysicalMemory pm(1 << 18);
  mem::DataCache dc(pm, {size, line, coh});
  sim::Rng rng(size + line);
  std::vector<std::uint8_t> buf(64);
  for (int op = 0; op < 2000; ++op) {
    const auto addr = static_cast<mem::PhysAddr>(rng.below((1 << 18) - 64));
    const auto n = 1 + rng.below(64);
    auto data = rnd_bytes(n, op);
    switch (rng.below(3)) {
      case 0:
        dc.cpu_write(addr, {data.data(), n});
        break;
      case 1:
        dc.dma_write(addr, {data.data(), n});
        break;
      default:
        dc.cpu_read(addr, {buf.data(), n});
        break;
    }
  }
  dc.invalidate_all();
  for (int probe = 0; probe < 200; ++probe) {
    const auto addr = static_cast<mem::PhysAddr>(rng.below((1 << 18) - 64));
    std::vector<std::uint8_t> via_cache(32), truth(32);
    dc.cpu_read(addr, via_cache);
    pm.read(addr, truth);
    ASSERT_EQ(via_cache, truth);
  }
}

TEST_P(CacheSweep, UpdateCoherenceNeverStale) {
  const auto [size, line, coh] = GetParam();
  if (coh != mem::DmaCoherence::kUpdate) GTEST_SKIP();
  mem::PhysicalMemory pm(1 << 16);
  mem::DataCache dc(pm, {size, line, coh});
  sim::Rng rng(99);
  std::vector<std::uint8_t> buf(32);
  for (int op = 0; op < 1000; ++op) {
    const auto addr = static_cast<mem::PhysAddr>(rng.below((1 << 16) - 32));
    auto data = rnd_bytes(16, op);
    if (rng.chance(0.5)) {
      dc.dma_write(addr, {data.data(), 16});
    } else {
      dc.cpu_read(addr, {buf.data(), 16});
    }
    ASSERT_FALSE(dc.is_stale(addr, 16));
  }
  EXPECT_EQ(dc.stale_reads(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CacheSweep,
    ::testing::Values(CacheCase{1024, 16, mem::DmaCoherence::kNonCoherent},
                      CacheCase{1024, 16, mem::DmaCoherence::kUpdate},
                      CacheCase{4096, 32, mem::DmaCoherence::kNonCoherent},
                      CacheCase{4096, 32, mem::DmaCoherence::kUpdate},
                      CacheCase{65536, 16, mem::DmaCoherence::kNonCoherent},
                      CacheCase{65536, 64, mem::DmaCoherence::kUpdate}));

// ---------------------------------------------------------------- queues

class QueueSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QueueSweep, RandomizedFifoConsistency) {
  const std::uint32_t cap = GetParam();
  dpram::DualPortRam ram;
  const dpram::QueueLayout lay{0, cap};
  dpram::QueueWriter w(ram, lay, dpram::Side::kHost);
  dpram::QueueReader r(ram, lay, dpram::Side::kBoard);
  sim::Rng rng(cap);
  std::uint32_t next_push = 0, next_pop = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.chance(0.55)) {
      if (!w.full()) {
        ASSERT_TRUE(w.push({next_push, next_push * 3, 0, 0, next_push}).ok);
        ++next_push;
      }
    } else {
      if (const auto d = r.pop()) {
        ASSERT_EQ(d->addr, next_pop);
        ASSERT_EQ(d->len, next_pop * 3);
        ASSERT_EQ(d->user, next_pop);
        ++next_pop;
      }
    }
    ASSERT_LE(next_push - next_pop, cap - 1);
  }
  EXPECT_GE(next_pop, 1000u);
}

TEST_P(QueueSweep, PeekNeverConsumes) {
  const std::uint32_t cap = GetParam();
  dpram::DualPortRam ram;
  const dpram::QueueLayout lay{0, cap};
  dpram::QueueWriter w(ram, lay, dpram::Side::kHost);
  dpram::QueueReader r(ram, lay, dpram::Side::kBoard);
  for (std::uint32_t i = 0; i < cap - 1; ++i) w.push({i, 0, 0, 0, 0});
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t k = 0; k < cap - 1; ++k) {
      ASSERT_EQ(r.peek_at(k)->addr, k);
    }
  }
  EXPECT_EQ(r.size(), cap - 1);
}

INSTANTIATE_TEST_SUITE_P(Capacities, QueueSweep,
                         ::testing::Values(2u, 3u, 4u, 8u, 64u, 255u));

// ----------------------------------------------------------- addressing

class ScatterSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScatterSweep, ScatterCoversExactlyOnceInOrder) {
  const std::uint32_t len = GetParam();
  mem::PhysicalMemory pm(1 << 22);
  mem::FrameAllocator fa(1 << 22, true, len);
  mem::AddressSpace as(pm, fa, "p");
  const mem::VirtAddr va = as.alloc(len, len % mem::kPageSize);
  const auto sc = as.scatter(va, len);
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < sc.size(); ++i) {
    EXPECT_GT(sc[i].len, 0u);
    if (i > 0) {
      EXPECT_NE(sc[i - 1].addr + sc[i - 1].len, sc[i].addr)
          << "adjacent runs must have been merged";
    }
    total += sc[i].len;
  }
  EXPECT_EQ(total, len);
  // Byte-level identity through the scatter list.
  const auto data = rnd_bytes(len, len);
  as.write(va, data);
  std::vector<std::uint8_t> out;
  for (const auto& pb : sc) {
    const auto v = pm.view(pb.addr, pb.len);
    out.insert(out.end(), v.begin(), v.end());
  }
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ScatterSweep,
                         ::testing::Values(1u, 100u, 4096u, 4097u, 10000u,
                                           65536u, 100001u));

}  // namespace
}  // namespace osiris
