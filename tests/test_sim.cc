// Unit tests for the discrete-event engine, resources, RNG and stats.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/resource.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace osiris::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(ns(1), 1000u);
  EXPECT_EQ(us(1), 1000000u);
  EXPECT_EQ(ms(1), 1000000000u);
  EXPECT_DOUBLE_EQ(to_us(us(123)), 123.0);
  EXPECT_EQ(cycle(25e6), 40000u);  // 40 ns at 25 MHz
  EXPECT_EQ(cycles(10, 25e6), 400000u);
}

TEST(Time, Mbps) {
  // 100 bytes in 1 us = 800 Mbps.
  EXPECT_DOUBLE_EQ(mbps(100, us(1)), 800.0);
  EXPECT_DOUBLE_EQ(mbps(100, 0), 0.0);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(us(3), [&] { order.push_back(3); });
  eng.schedule(us(1), [&] { order.push_back(1); });
  eng.schedule(us(2), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), us(3));
  EXPECT_EQ(eng.dispatched(), 3u);
}

TEST(Engine, EqualTimestampsAreFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule(us(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, EventsMayScheduleEvents) {
  Engine eng;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) eng.schedule(us(1), chain);
  };
  eng.schedule(0, chain);
  eng.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(eng.now(), us(4));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine eng;
  eng.schedule(us(1), [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(0, [] {}), std::logic_error);
}

TEST(Engine, RunUntilLeavesLaterEvents) {
  Engine eng;
  int fired = 0;
  eng.schedule(us(1), [&] { ++fired; });
  eng.schedule(us(10), [&] { ++fired; });
  eng.run_until(us(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), us(5));
  EXPECT_EQ(eng.pending(), 1u);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine eng;
  EXPECT_FALSE(eng.step());
}

TEST(Resource, SerializesReservations) {
  Engine eng;
  Resource r(eng, "r");
  EXPECT_EQ(r.reserve(us(10)), us(10));
  EXPECT_EQ(r.reserve(us(5)), us(15));  // queued behind the first
  EXPECT_EQ(r.free_at(), us(15));
  EXPECT_TRUE(r.busy());
}

TEST(Resource, ReserveAtRespectsFrom) {
  Engine eng;
  Resource r(eng, "r");
  EXPECT_EQ(r.reserve_at(us(100), us(10)), us(110));
  // An earlier request fits in the gap BEFORE the future booking — the
  // calendar models per-transaction bus arbitration, not call order.
  EXPECT_EQ(r.reserve_at(us(50), us(10)), us(60));
  // A request that does not fit in the gap queues behind.
  EXPECT_EQ(r.reserve_at(us(55), us(50)), us(160));
  EXPECT_EQ(r.busy_total(), us(70));
  EXPECT_EQ(r.reservations(), 3u);
}

TEST(Resource, CalendarFillsExactGaps) {
  Engine eng;
  Resource r(eng, "r");
  r.reserve_at(us(10), us(10));  // [10,20)
  r.reserve_at(us(40), us(10));  // [40,50)
  EXPECT_EQ(r.reserve_at(us(20), us(20)), us(40));  // exact fit [20,40)
  EXPECT_EQ(r.reserve_at(us(0), us(10)), us(10));   // exact fit [0,10)
  EXPECT_EQ(r.reserve_at(us(0), us(5)), us(55));    // everything full to 50
}

TEST(Resource, UtilizationTracksBusyFraction) {
  Engine eng;
  Resource r(eng, "r");
  r.reserve(us(10));
  eng.schedule(us(20), [] {});
  eng.run();
  EXPECT_DOUBLE_EQ(r.utilization(), 0.5);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowStaysInBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.3);
}

TEST(Summary, Moments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.118, 1e-3);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Histogram, QuantilesAndClamping) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  h.add(-5.0);   // clamps into first bucket
  h.add(500.0);  // clamps into last bucket
  EXPECT_EQ(h.summary().count(), 102u);
  EXPECT_NEAR(h.quantile(0.5), 45.0, 10.0);
  EXPECT_GT(h.counts().front(), 10u);
  EXPECT_GT(h.counts().back(), 10u);
}

}  // namespace
}  // namespace osiris::sim
