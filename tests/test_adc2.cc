// Second ADC suite: receive-side page authorization, multi-ADC isolation,
// UDP stacks over ADCs, and the registered-memory discipline.
#include <gtest/gtest.h>

#include "adc/adc.h"
#include "dpram/queue.h"
#include "osiris/node.h"
#include "proto/message.h"
#include "proto/rpc.h"

namespace osiris {
namespace {

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t s) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i + s);
  return v;
}

TEST(Adc2, UnauthorizedReceiveBufferIsSkippedWithViolation) {
  // A malicious/buggy app pushes a free-buffer descriptor pointing at
  // memory it does not own; the board skips it (raising the exception)
  // and keeps using legitimate buffers.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::Adc ca(deps_of(tb.a), 1, {960}, 1, sc);
  adc::Adc cb(deps_of(tb.b), 1, {960}, 1, sc);

  // Forge a descriptor for a frame the OS never granted to the ADC, by
  // overwriting the next-to-be-popped free descriptor's address in the
  // dual-port RAM directly (the app owns the mapping, so nothing stops it
  // from doing this — only the board's authorization check does).
  const mem::PhysAddr stolen = tb.b.frames.alloc();
  const dpram::ChannelLayout lay = dpram::channel_layout(1);
  {
    const std::uint32_t tail =
        tb.b.ram.read(dpram::Side::kHost, lay.free.tail_word());
    const std::uint32_t w = lay.free.slot_word(tail);
    tb.b.ram.write(dpram::Side::kHost, w + 0, stolen);
  }

  std::uint64_t delivered = 0;
  cb.set_sink([&](sim::Tick, atm::Vci, std::vector<std::uint8_t>&&) {
    ++delivered;
  });
  bool violation = false;
  cb.set_violation_handler([&](sim::Tick) { violation = true; });

  proto::Message m = proto::Message::from_payload(ca.space(), pattern(2000, 1));
  ca.authorize(m.scatter());
  sim::Tick t = 0;
  for (int i = 0; i < 3; ++i) t = ca.send(t, 960, m);
  tb.run();

  EXPECT_TRUE(violation) << "the forged buffer must raise an exception";
  EXPECT_GE(cb.violations(), 1u);
  EXPECT_EQ(delivered, 3u) << "legitimate traffic continues unharmed";
  // The stolen frame was never written by DMA.
  std::vector<std::uint8_t> probe(64);
  tb.b.pm.read(stolen, probe);
  EXPECT_TRUE(std::all_of(probe.begin(), probe.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(Adc2, UdpStackOverAdcWithChecksum) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.udp_checksum = true;  // full UDP/IP, replicated in the application
  adc::Adc ca(deps_of(tb.a), 1, {961}, 1, sc);
  adc::Adc cb(deps_of(tb.b), 1, {961}, 1, sc);
  const auto want = pattern(30000, 3);  // multi-fragment
  std::uint64_t ok = 0;
  cb.set_sink([&](sim::Tick, atm::Vci, std::vector<std::uint8_t>&& d) {
    EXPECT_EQ(d, want);
    ++ok;
  });
  proto::Message m = proto::Message::from_payload(ca.space(), want);
  ca.authorize(m.scatter());
  sim::Tick t = 0;
  for (int i = 0; i < 4; ++i) t = ca.send(t, 961, m);
  tb.run();
  EXPECT_EQ(ok, 4u);
  EXPECT_EQ(cb.stack().checksum_failures(), 0u);
  EXPECT_EQ(ca.violations() + cb.violations(), 0u)
      << "header arena pages must be pre-authorized";
}

TEST(Adc2, ThreeChannelsShareTheBoardWithoutCrosstalk) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  std::vector<std::unique_ptr<adc::Adc>> tx_chs, rx_chs;
  std::map<atm::Vci, std::vector<std::uint8_t>> got;
  for (int i = 0; i < 3; ++i) {
    const auto vci = static_cast<atm::Vci>(970 + i);
    tx_chs.push_back(
        std::make_unique<adc::Adc>(deps_of(tb.a), i + 1, std::vector{vci}, i, sc));
    rx_chs.push_back(
        std::make_unique<adc::Adc>(deps_of(tb.b), i + 1, std::vector{vci}, i, sc));
    rx_chs.back()->set_sink(
        [&got](sim::Tick, atm::Vci v, std::vector<std::uint8_t>&& d) {
          got[v] = std::move(d);
        });
  }
  sim::Tick t = 0;
  std::map<atm::Vci, std::vector<std::uint8_t>> sent;
  for (int i = 0; i < 3; ++i) {
    const auto vci = static_cast<atm::Vci>(970 + i);
    const auto data = pattern(3000 + static_cast<std::size_t>(i) * 1111,
                              static_cast<std::uint8_t>(i));
    proto::Message m = proto::Message::from_payload(tx_chs[static_cast<std::size_t>(i)]->space(), data);
    tx_chs[static_cast<std::size_t>(i)]->authorize(m.scatter());
    t = tx_chs[static_cast<std::size_t>(i)]->send(t, vci, m);
    sent[vci] = data;
  }
  tb.run();
  EXPECT_EQ(got.size(), 3u);
  for (const auto& [vci, data] : sent) EXPECT_EQ(got[vci], data);
}

TEST(Adc2, RpcArenaMakesUserSpaceRpcViolationFree) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.udp_checksum = true;
  adc::Adc ca(deps_of(tb.a), 1, {980}, 1, sc);
  adc::Adc cb(deps_of(tb.b), 1, {980}, 1, sc);
  proto::RpcEndpoint client(tb.a.eng, ca.stack(), ca.space(), tb.a.cpu,
                            tb.a.cfg.machine);
  proto::RpcEndpoint server(tb.b.eng, cb.stack(), cb.space(), tb.b.cpu,
                            tb.b.cfg.machine);
  ca.authorize(client.arena_buffers());
  cb.authorize(server.arena_buffers());
  server.serve([](std::vector<std::uint8_t> req) { return req; });
  int done = 0;
  sim::Tick t = 0;
  for (int i = 0; i < 10; ++i) {
    t = client.call(t, 980, pattern(500, static_cast<std::uint8_t>(i)),
                    [&](sim::Tick, std::optional<std::vector<std::uint8_t>> r) {
                      EXPECT_TRUE(r.has_value());
                      ++done;
                    });
  }
  tb.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(ca.violations() + cb.violations(), 0u);
  EXPECT_EQ(client.timeouts(), 0u);
}

TEST(Adc2, WithoutArenaAuthorizationRpcViolates) {
  // The negative control for the registered-memory discipline: skip
  // authorizing the client's frame arena and the board refuses its sends.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::Adc ca(deps_of(tb.a), 1, {981}, 1, sc);
  adc::Adc cb(deps_of(tb.b), 1, {981}, 1, sc);
  proto::RpcEndpoint client(tb.a.eng, ca.stack(), ca.space(), tb.a.cpu,
                            tb.a.cfg.machine);
  proto::RpcEndpoint server(tb.b.eng, cb.stack(), cb.space(), tb.b.cpu,
                            tb.b.cfg.machine);
  cb.authorize(server.arena_buffers());
  server.serve([](std::vector<std::uint8_t> req) { return req; });
  bool timed_out = false;
  client.call(0, 981, pattern(100, 1),
              [&](sim::Tick, std::optional<std::vector<std::uint8_t>> r) {
                timed_out = !r.has_value();
              },
              sim::ms(2));
  tb.run();
  EXPECT_TRUE(timed_out);
  EXPECT_GE(ca.violations(), 1u);
}

}  // namespace
}  // namespace osiris
