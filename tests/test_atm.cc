// Unit tests for cells, checksums, segmentation and the reference assembler.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "atm/cell.h"
#include "atm/checksum.h"
#include "atm/sar.h"
#include "sim/rng.h"

namespace osiris::atm {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 37 + seed);
  return v;
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE).
  const std::string s = "123456789";
  EXPECT_EQ(Crc32::of({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}),
            0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = pattern(1000);
  Crc32 inc;
  inc.update({data.data(), 123});
  inc.update({data.data() + 123, 456});
  inc.update({data.data() + 579, data.size() - 579});
  EXPECT_EQ(inc.value(), Crc32::of(data));
}

TEST(Crc32, DetectsSingleBitError) {
  auto data = pattern(64);
  const auto good = Crc32::of(data);
  data[13] ^= 0x10;
  EXPECT_NE(Crc32::of(data), good);
}

TEST(InternetChecksum, MatchesManualComputation) {
  // Two words: 0x0102, 0x0304 -> sum 0x0406 -> ~ = 0xFBF9.
  const std::vector<std::uint8_t> d{0x01, 0x02, 0x03, 0x04};
  EXPECT_EQ(InternetChecksum::of(d), 0xFBF9);
}

TEST(InternetChecksum, OddLengthAndChunkingAgree) {
  const auto data = pattern(777);
  InternetChecksum a;
  a.update({data.data(), 100});
  a.update({data.data() + 100, 1});
  a.update({data.data() + 101, data.size() - 101});
  EXPECT_EQ(a.value(), InternetChecksum::of(data));
}

TEST(InternetChecksum, LeadingZerosDoNotChangeSum) {
  // Zero bytes contribute nothing; an even number preserves word parity.
  const auto data = pattern(100);
  std::vector<std::uint8_t> padded(8, 0);
  padded.insert(padded.end(), data.begin(), data.end());
  EXPECT_EQ(InternetChecksum::of(padded), InternetChecksum::of(data));
}

TEST(Cell, SealAndVerify) {
  Cell c;
  c.vci = 42;
  c.seq = 7;
  c.len = 44;
  seal(c);
  EXPECT_TRUE(header_ok(c));
  c.vci ^= 0x100;
  EXPECT_FALSE(header_ok(c));
}

TEST(Trailer, EncodeDecodeRoundTrip) {
  const Trailer t{123456, 0xDEADBEEF};
  const auto bytes = encode_trailer(t);
  std::vector<std::uint8_t> wire(100, 0);
  std::copy(bytes.begin(), bytes.end(), wire.end() - 8);
  const auto back = decode_trailer(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->pdu_len, t.pdu_len);
  EXPECT_EQ(back->crc, t.crc);
}

TEST(Trailer, TooShortReturnsNullopt) {
  std::vector<std::uint8_t> tiny(4);
  EXPECT_FALSE(decode_trailer(tiny).has_value());
}

TEST(Sar, CellsForBoundaries) {
  // wire = pdu + 8, cells = ceil(wire/44).
  EXPECT_EQ(cells_for(0), 1u);
  EXPECT_EQ(cells_for(36), 1u);   // 44 wire bytes exactly
  EXPECT_EQ(cells_for(37), 2u);
  EXPECT_EQ(cells_for(80), 2u);   // 88 exactly
  EXPECT_EQ(cells_for(81), 3u);
}

TEST(Sar, HeaderFlags) {
  // 6-cell PDU: BOM on 0; lane-EOM on cells 2..5 (seq+4 >= 6); LAST on 5.
  const std::uint32_t wire = 6 * kCellPayload;
  for (std::uint32_t s = 0; s < 6; ++s) {
    const Cell c = make_cell_header(1, 0, s, 6, wire);
    EXPECT_EQ(c.bom(), s == 0);
    EXPECT_EQ(c.lane_eom(), s + 4 >= 6);
    EXPECT_EQ(c.last_cell(), s == 5);
    EXPECT_EQ(c.len, kCellPayload);
  }
}

TEST(Sar, SegmentAssembleRoundTrip) {
  for (const std::size_t n : {0u, 1u, 36u, 37u, 44u, 100u, 4096u, 16384u}) {
    const auto pdu = pattern(n);
    const auto cells = segment(pdu, /*vci=*/5, /*pdu_id=*/1);
    EXPECT_EQ(cells.size(), cells_for(static_cast<std::uint32_t>(n)));
    PduAssembler asmbl;
    for (const Cell& c : cells) EXPECT_TRUE(asmbl.add(c));
    ASSERT_TRUE(asmbl.complete());
    const auto out = asmbl.finish();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, pdu);
  }
}

TEST(Sar, AssembleOutOfOrder) {
  const auto pdu = pattern(1000);
  auto cells = segment(pdu, 5, 2);
  sim::Rng rng(4);
  for (std::size_t i = cells.size(); i > 1; --i) {
    std::swap(cells[i - 1], cells[rng.below(i)]);
  }
  PduAssembler asmbl;
  for (const Cell& c : cells) EXPECT_TRUE(asmbl.add(c));
  ASSERT_TRUE(asmbl.complete());
  EXPECT_EQ(*asmbl.finish(), pdu);
}

TEST(Sar, CorruptedPayloadFailsCrc) {
  const auto pdu = pattern(500);
  auto cells = segment(pdu, 5, 3);
  cells[3].payload[10] ^= 0x40;
  PduAssembler asmbl;
  for (const Cell& c : cells) asmbl.add(c);
  ASSERT_TRUE(asmbl.complete());
  EXPECT_FALSE(asmbl.finish().has_value());
}

TEST(Sar, DuplicateIdenticalCellAccepted) {
  const auto pdu = pattern(300);
  const auto cells = segment(pdu, 5, 4);
  PduAssembler asmbl;
  for (const Cell& c : cells) asmbl.add(c);
  EXPECT_TRUE(asmbl.add(cells[1]));  // identical duplicate
  EXPECT_EQ(*asmbl.finish(), pdu);
}

TEST(Sar, IncompleteIsNotComplete) {
  const auto pdu = pattern(300);
  const auto cells = segment(pdu, 5, 5);
  PduAssembler asmbl;
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) asmbl.add(cells[i]);
  EXPECT_FALSE(asmbl.complete());
  EXPECT_FALSE(asmbl.finish().has_value());
}

TEST(Sar, TrailerSpansTwoCellsWhenPduLenNearBoundary) {
  // pdu_len = 40: wire = 48 -> 2 cells; trailer bytes 40..47 straddle the
  // cell boundary at 44.
  const auto pdu = pattern(40);
  const auto cells = segment(pdu, 9, 6);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].len, kCellPayload);
  EXPECT_EQ(cells[1].len, 4);
  PduAssembler asmbl;
  for (const Cell& c : cells) asmbl.add(c);
  EXPECT_EQ(*asmbl.finish(), pdu);
}

TEST(Sar, SegmentsAreDataBytesPlusTrailerExactly) {
  const auto pdu = pattern(200);
  const auto cells = segment(pdu, 1, 7);
  std::vector<std::uint8_t> wire;
  for (const Cell& c : cells) {
    wire.insert(wire.end(), c.payload.begin(), c.payload.begin() + c.len);
  }
  EXPECT_EQ(wire.size(), wire_len(200));
  EXPECT_TRUE(std::equal(pdu.begin(), pdu.end(), wire.begin()));
  const auto t = decode_trailer(wire);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->pdu_len, 200u);
  EXPECT_EQ(t->crc, Crc32::of(pdu));
}

}  // namespace
}  // namespace osiris::atm
