// Second board-level suite: transmit priority scheduling, tail-publish
// ordering, the event trace, firmware instruction budgets (the paper's
// OC-12 reassembly claim), and generator throttling.
#include <gtest/gtest.h>

#include "adc/adc.h"
#include "osiris/harness.h"
#include "osiris/node.h"
#include "proto/message.h"
#include "sim/trace.h"

namespace osiris {
namespace {

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

TEST(Board2, HigherPriorityAdcTransmitsFirst) {
  // Two ADCs queue PDUs at the same instant; the transmit processor serves
  // the higher-priority queue's PDUs first (§3.2: "The priority is used by
  // the transmit processor to determine the order of transmissions").
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::Adc lo_tx(deps_of(tb.a), 1, {910}, /*priority=*/1, sc);
  adc::Adc hi_tx(deps_of(tb.a), 2, {911}, /*priority=*/5, sc);
  adc::Adc lo_rx(deps_of(tb.b), 1, {910}, 1, sc);
  adc::Adc hi_rx(deps_of(tb.b), 2, {911}, 5, sc);

  std::vector<int> order;  // 0 = low, 1 = high
  lo_rx.set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    order.push_back(0);
  });
  hi_rx.set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    order.push_back(1);
  });

  std::vector<std::uint8_t> data(8000, 0x42);
  proto::Message ml = proto::Message::from_payload(lo_tx.space(), data);
  proto::Message mh = proto::Message::from_payload(hi_tx.space(), data);
  lo_tx.authorize(ml.scatter());
  hi_tx.authorize(mh.scatter());

  // Queue 4 low-priority PDUs first, then 4 high-priority ones — all before
  // the board's poll latency elapses, so the firmware picks by priority.
  sim::Tick t = 0;
  for (int i = 0; i < 4; ++i) t = lo_tx.send(t, 910, ml);
  sim::Tick t2 = 0;
  for (int i = 0; i < 4; ++i) t2 = hi_tx.send(t2, 911, mh);
  tb.run();

  ASSERT_EQ(order.size(), 8u);
  // The first PDU may already be in flight, but among the rest the high-
  // priority channel must dominate the front.
  int hi_in_first_four = 0;
  for (int i = 0; i < 4; ++i) hi_in_first_four += order[static_cast<size_t>(i)];
  EXPECT_GE(hi_in_first_four, 3);
}

TEST(Board2, TraceRecordsTheLifeOfAPdu) {
  sim::Trace trace;
  NodeConfig cfg = make_3000_600_config();
  cfg.trace = &trace;
  sim::Engine eng;
  Node n(eng, cfg);
  n.out.set_sink([&](int lane, const atm::Cell& c) { n.rxp.on_cell(lane, c); });
  n.map_kernel_vci(920);
  n.driver.set_rx_handler([](sim::Tick at, host::RxPduView&) { return at; });
  std::vector<std::uint8_t> data(3000, 1);
  const mem::VirtAddr va = n.kernel_space.alloc(3000);
  n.kernel_space.write(va, data);
  n.driver.send(0, 920, n.kernel_space.scatter(va, 3000));
  eng.run();

  const auto is = [](const char* c, const char* e) {
    return [c, e](const sim::TraceEvent& ev) {
      return std::string_view(ev.component) == c &&
             std::string_view(ev.event) == e;
    };
  };
  EXPECT_EQ(trace.count(is("tx", "pdu_start")), 1u);
  EXPECT_EQ(trace.count(is("tx", "pdu_done")), 1u);
  EXPECT_EQ(trace.count(is("rx", "pdu_done")), 1u);
  EXPECT_EQ(trace.count(is("rx", "irq_nonempty")), 1u);
  EXPECT_EQ(trace.count(is("drv", "deliver")), 1u);
  // Events appear in causal order.
  sim::Tick tx_start = 0, drv_deliver = 0;
  for (const auto& e : trace.events()) {
    if (is("tx", "pdu_start")(e)) tx_start = e.at;
    if (is("drv", "deliver")(e)) drv_deliver = e.at;
  }
  EXPECT_LT(tx_start, drv_deliver);
  EXPECT_FALSE(trace.dump().empty());
}

TEST(Board2, TraceRingOverwritesOldest) {
  sim::Trace trace(8);
  for (std::uint64_t i = 0; i < 20; ++i) trace.record(i, "t", "e", i, 0);
  const auto evs = trace.events();
  ASSERT_EQ(evs.size(), 8u);
  EXPECT_EQ(evs.front().a, 12u);
  EXPECT_EQ(evs.back().a, 19u);
  EXPECT_EQ(trace.recorded(), 20u);
}

TEST(Board2, ReassemblyMeetsTheOc12InstructionBudget) {
  // §5: "we were still able to reassemble ATM cells in the common case and
  // in the absence of misordering at approximately OC-12 speeds in
  // software". At full link rate the receive i960 must not saturate.
  sim::Engine eng;
  Node n(eng, make_3000_600_config());
  proto::StackConfig sc;
  auto stack = n.make_stack(sc);
  const auto r = harness::receive_throughput(n, *stack, 930, 64 * 1024, 30, sc);
  EXPECT_GT(r.mbps, 500.0) << "the host absorbs at ~link speed";
  const double i960_util = n.rxp.i960().utilization();
  EXPECT_LT(i960_util, 1.0);
  EXPECT_GT(i960_util, 0.25) << "the budget is tight, as the paper says";
}

TEST(Board2, GeneratorThrottlesInsteadOfDropping) {
  // The fictitious-PDU generator models "as fast as the host can absorb":
  // against a slow host it must stall, not overflow the FIFO.
  sim::Engine eng;
  NodeConfig cfg = make_5000_200_config();
  cfg.board.double_cell_dma_rx = false;
  Node n(eng, cfg);
  proto::StackConfig sc;
  auto stack = n.make_stack(sc);
  const auto r = harness::receive_throughput(n, *stack, 931, 64 * 1024, 20, sc);
  EXPECT_EQ(r.messages, 20u);
  EXPECT_EQ(n.rxp.cells_fifo_dropped(), 0u);
}

TEST(Board2, TailPublishesFollowBufferCompletionOrder) {
  // The host-visible tail pointer advances buffer by buffer, in order, as
  // transmission completes — the §2.1.2 completion-signalling mechanism.
  sim::Engine eng;
  Node n(eng, make_3000_600_config());
  n.out.set_sink([&](int lane, const atm::Cell& c) { n.rxp.on_cell(lane, c); });
  n.map_kernel_vci(940);
  n.driver.set_rx_handler([](sim::Tick at, host::RxPduView&) { return at; });

  // Watch the tail word of the kernel transmit queue.
  const dpram::QueueLayout lay = n.kernel_layout.tx;
  std::vector<std::uint32_t> tail_values;
  std::function<void()> poll = [&] {
    const std::uint32_t t = n.ram.read(dpram::Side::kHost, lay.tail_word());
    if (tail_values.empty() || tail_values.back() != t) tail_values.push_back(t);
    if (eng.pending() > 0) eng.schedule(sim::us(5), poll);
  };
  eng.schedule(0, poll);

  // A 3-buffer chain.
  std::vector<mem::PhysBuffer> chain;
  for (int i = 0; i < 3; ++i) {
    const mem::VirtAddr va = n.kernel_space.alloc(4000);
    const auto sc = n.kernel_space.scatter(va, 4000);
    chain.insert(chain.end(), sc.begin(), sc.end());
  }
  n.driver.send(0, 940, chain);
  eng.run();

  // The tail must have advanced monotonically (mod capacity) through every
  // descriptor.
  ASSERT_GE(tail_values.size(), 2u);
  EXPECT_EQ(tail_values.back(),
            static_cast<std::uint32_t>(chain.size()) % lay.capacity);
  for (std::size_t i = 1; i < tail_values.size(); ++i) {
    EXPECT_GT(tail_values[i], tail_values[i - 1]);
  }
}

TEST(Board2, DpramAccessCountsScaleWithDescriptors) {
  sim::Engine eng;
  Node n(eng, make_3000_600_config());
  n.out.set_sink([&](int lane, const atm::Cell& c) { n.rxp.on_cell(lane, c); });
  n.map_kernel_vci(950);
  n.driver.set_rx_handler([](sim::Tick at, host::RxPduView&) { return at; });
  n.ram.reset_stats();

  const mem::VirtAddr va = n.kernel_space.alloc(1000);
  n.driver.send(0, 950, n.kernel_space.scatter(va, 1000));
  eng.run();
  const std::uint64_t one_buf = n.ram.host_accesses();

  n.ram.reset_stats();
  std::vector<mem::PhysBuffer> chain;
  for (int i = 0; i < 4; ++i) {
    const mem::VirtAddr v2 = n.kernel_space.alloc(1000);
    const auto sc = n.kernel_space.scatter(v2, 1000);
    chain.insert(chain.end(), sc.begin(), sc.end());
  }
  n.driver.send(eng.now(), 950, chain);
  eng.run();
  const std::uint64_t four_buf = n.ram.host_accesses();

  EXPECT_GT(four_buf, one_buf);
  EXPECT_LT(four_buf, one_buf * 4) << "fixed costs amortize across the chain";
}

}  // namespace
}  // namespace osiris
