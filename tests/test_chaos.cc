// Chaos orchestration (DESIGN.md §12): schedule serialization and
// generation, the runner's invariant checking, fingerprint stability
// across worker-thread counts, and delta-debugging shrink + replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "chaos/runner.h"
#include "chaos/schedule.h"
#include "chaos/shrink.h"
#include "fault/fault.h"
#include "sim/time.h"

namespace osiris::chaos {
namespace {

// A quick runner shape for tests: same traffic mix, less of it.
RunnerConfig quick_config(int threads = 1) {
  RunnerConfig cfg;
  cfg.threads = threads;
  cfg.horizon = sim::ms(12);
  cfg.arq_msgs = 40;
  cfg.dgram_msgs = 16;
  cfg.rpc_calls = 6;
  cfg.adc_msgs = 10;
  return cfg;
}

// ------------------------------------------------------------ Schedules

TEST(ChaosSchedule, TextRoundTripIsExact) {
  const Schedule s = generate(7);
  ASSERT_FALSE(s.actions.empty());
  const auto back = Schedule::parse(s.to_text());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
}

TEST(ChaosSchedule, ParserIgnoresArtifactPostmortem) {
  const Schedule s = generate(11);
  std::string text = s.to_text();
  text += "\n# ---- postmortem ----\nviolation: something awful\n"
          "arbitrary non-schedule garbage # not even a comment\n";
  const auto back = Schedule::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
}

TEST(ChaosSchedule, ParserRejectsMalformedInput) {
  EXPECT_FALSE(Schedule::parse("").has_value());
  EXPECT_FALSE(Schedule::parse("osiris-chaos-schedule v1\nseed 1\n")
                   .has_value());  // missing end
  EXPECT_FALSE(Schedule::parse("osiris-chaos-schedule v2\nseed 1\nend\n")
                   .has_value());  // wrong version
  EXPECT_FALSE(
      Schedule::parse("osiris-chaos-schedule v1\nseed 1\n"
                      "action node=a point=no_such_point start=0 end=0 p=0 "
                      "after=1 budget=1 wfrom=0 wuntil=0\nend\n")
          .has_value());
}

TEST(ChaosSchedule, GenerationIsDeterministic) {
  const Schedule a = generate(42);
  const Schedule b = generate(42);
  EXPECT_EQ(a, b);
  const Schedule c = generate(43);
  EXPECT_NE(a, c);
  EXPECT_GE(a.actions.size(), 2u);
  EXPECT_LE(a.actions.size(), 6u);
}

TEST(ChaosSchedule, GeneratorHonorsEligiblePoints) {
  GenOptions opt;
  opt.eligible = {fault::Point::kDmaError, fault::Point::kIrqLost};
  opt.min_actions = 4;
  opt.max_actions = 8;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Schedule s = generate(seed, opt);
    for (const Action& a : s.actions) {
      EXPECT_TRUE(a.point == fault::Point::kDmaError ||
                  a.point == fault::Point::kIrqLost)
          << fault::point_name(a.point);
    }
  }
}

// --------------------------------------------------------------- Runner

TEST(ChaosRunner, EmptyScheduleRunsClean) {
  const Report r = run_schedule(Schedule{}, quick_config());
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_EQ(r.arq_delivered, r.arq_sent);
  EXPECT_EQ(r.rpc_completed, r.rpc_issued);
  EXPECT_EQ(r.dgram_delivered, r.dgram_sent);
  EXPECT_EQ(r.resets_a + r.resets_b, 0u);
  EXPECT_EQ(r.faults_fired, 0u);
}

TEST(ChaosRunner, SeedSweepCleanAndFingerprintsMatchAcrossThreads) {
  // Every seed runs serial and threaded; the async EOT protocol makes the
  // worker interleaving different on every threaded run, so a couple of
  // seeds also run threaded twice — a timing-dependent divergence that
  // happens to miss the serial fingerprint once still has to reproduce
  // itself exactly to pass.
  GenOptions gopt;
  gopt.horizon = sim::ms(12);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Schedule s = generate(seed, gopt);
    const Report serial = run_schedule(s, quick_config(1));
    EXPECT_TRUE(serial.ok())
        << "seed " << seed << ": "
        << (serial.violations.empty() ? "" : serial.violations[0]);
    const Report threaded = run_schedule(s, quick_config(2));
    EXPECT_TRUE(threaded.ok()) << "seed " << seed;
    EXPECT_EQ(serial.fingerprint, threaded.fingerprint)
        << "seed " << seed << " diverged between 1 and 2 worker threads";
    if (seed <= 2) {
      const Report again = run_schedule(s, quick_config(2));
      EXPECT_EQ(threaded.fingerprint, again.fingerprint)
          << "seed " << seed << " diverged between two 2-thread runs";
    }
  }
}

TEST(ChaosRunner, OverloadFaultsAtTenThousandVcisStayDeterministic) {
  // Buffer exhaustion and tenant bursts against a flow table populated
  // with 10^4 mapped VCIs: recovery must stay violation-free and the
  // fingerprint bit-identical between serial and 2-thread runs, proving
  // the table's growth/rehash machinery is schedule-deterministic.
  GenOptions gopt;
  gopt.horizon = sim::ms(12);
  gopt.eligible = {fault::Point::kRxBufferExhausted,
                   fault::Point::kTenantBurst};
  RunnerConfig cfg = quick_config(1);
  cfg.bulk_vcis = 10000;
  for (std::uint64_t seed = 3; seed <= 4; ++seed) {
    const Schedule s = generate(seed, gopt);
    const Report serial = run_schedule(s, cfg);
    EXPECT_TRUE(serial.ok())
        << "seed " << seed << ": "
        << (serial.violations.empty() ? "" : serial.violations[0]);
    RunnerConfig threaded_cfg = cfg;
    threaded_cfg.threads = 2;
    const Report threaded = run_schedule(s, threaded_cfg);
    EXPECT_TRUE(threaded.ok()) << "seed " << seed;
    EXPECT_EQ(serial.fingerprint, threaded.fingerprint)
        << "seed " << seed << " diverged between 1 and 2 worker threads";
  }
}

TEST(ChaosRunner, WatchdogResetConvergesAndRecoveryIsMeasured) {
  // One deterministic transmit-processor wedge on the ARQ sender's board.
  // The watchdog must reset the adaptor, the ARQ session must
  // resynchronize across the reset, and the run must end violation-free
  // with the reset-to-redelivery latency sampled.
  Schedule s;
  Action wedge;
  wedge.node = 0;
  wedge.point = fault::Point::kBoardTxStall;
  wedge.start = sim::ms(2);
  wedge.spec.probability = 0.0;
  wedge.spec.after = 40;
  wedge.spec.budget = 1;
  s.actions.push_back(wedge);

  const Report r = run_schedule(s, quick_config());
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_GE(r.resets_a, 1u);
  EXPECT_GE(r.arq_resyncs, 1u);
  EXPECT_EQ(r.arq_delivered, r.arq_sent);
  ASSERT_FALSE(r.recovery_us.empty());
  for (double us : r.recovery_us) EXPECT_GT(us, 0.0);
}

// -------------------------------------------------------------- Shrinker

// A sender-side wedge is lethal when the retry budget is too small to
// outlast the watchdog rescue.
RunnerConfig fragile_config() {
  RunnerConfig cfg = quick_config();
  cfg.arq_max_retries = 2;
  cfg.arq_rto = sim::us(400);
  cfg.arq_max_rto = sim::ms(1);
  return cfg;
}

Schedule known_bad_schedule() {
  Schedule s;
  s.seed = 999;
  Action wedge;
  wedge.node = 0;
  wedge.point = fault::Point::kBoardTxStall;
  wedge.start = sim::ms(1);
  wedge.spec.probability = 0.0;
  wedge.spec.after = 30;
  wedge.spec.budget = 1;

  Action decoy1;  // benign: a couple of dropped cells, ARQ shrugs it off
  decoy1.node = 1;
  decoy1.point = fault::Point::kBoardRxCellDrop;
  decoy1.start = sim::ms(1);
  decoy1.spec.probability = 0.001;
  decoy1.spec.budget = 2;

  Action decoy2;  // benign: one spurious interrupt
  decoy2.node = 1;
  decoy2.point = fault::Point::kIrqSpurious;
  decoy2.start = sim::ms(2);
  decoy2.spec.probability = 0.0;
  decoy2.spec.after = 5;
  decoy2.spec.budget = 1;

  Action decoy3;  // benign: a lost interrupt the watchdog poll recovers
  decoy3.node = 1;
  decoy3.point = fault::Point::kIrqLost;
  decoy3.start = sim::ms(3);
  decoy3.spec.probability = 0.0;
  decoy3.spec.after = 3;
  decoy3.spec.budget = 1;

  s.actions = {decoy1, wedge, decoy2, decoy3};
  return s;
}

TEST(ChaosShrink, KnownBadScheduleShrinksAndReplaysDeterministically) {
  const Schedule bad = known_bad_schedule();
  const RunnerConfig cfg = fragile_config();

  const Report direct = run_schedule(bad, cfg);
  ASSERT_FALSE(direct.ok()) << "seeded schedule must fail to be shrinkable";

  const ShrinkResult r = shrink(bad, cfg);
  EXPECT_TRUE(r.reproduced);
  EXPECT_GT(r.trials, 0);
  ASSERT_FALSE(r.minimal.actions.empty());
  EXPECT_LE(r.minimal.actions.size(), 3u);
  // The lethal wedge must have survived the shrink.
  EXPECT_TRUE(std::any_of(r.minimal.actions.begin(), r.minimal.actions.end(),
                          [](const Action& a) {
                            return a.point == fault::Point::kBoardTxStall;
                          }));

  // The minimal schedule replays to the same violation and fingerprint.
  const Report again = run_schedule(r.minimal, cfg);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.violations, r.report.violations);
  EXPECT_EQ(again.fingerprint, r.report.fingerprint);
}

TEST(ChaosShrink, ArtifactRoundTripsThroughParser) {
  const Schedule bad = known_bad_schedule();
  const ShrinkResult r = shrink(bad, fragile_config());
  ASSERT_TRUE(r.reproduced);

  const std::string path = "chaos_repro_test_artifact.txt";
  ASSERT_TRUE(write_artifact(path, r));
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  std::remove(path.c_str());
  EXPECT_NE(text.find("postmortem"), std::string::npos);
  const auto back = Schedule::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r.minimal);
}

}  // namespace
}  // namespace osiris::chaos
