// TURBOchannel model tests: transaction costing and calendar contention.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "tc/turbochannel.h"

namespace osiris::tc {
namespace {

TEST(TurboChannel, WordRounding) {
  sim::Engine eng;
  TurboChannel bus(eng, BusConfig{});
  EXPECT_EQ(bus.words(1), 1u);
  EXPECT_EQ(bus.words(4), 1u);
  EXPECT_EQ(bus.words(5), 2u);
  EXPECT_EQ(bus.words(44), 11u);
  EXPECT_EQ(bus.words(88), 22u);
}

TEST(TurboChannel, DmaCostsMatchCycleArithmetic) {
  sim::Engine eng;
  TurboChannel bus(eng, BusConfig{});
  // 25 MHz => 40 ns/cycle. Read: 13 + n cycles; write: 8 + n cycles.
  EXPECT_EQ(bus.dma_read_cost(44), sim::cycles(24, 25e6));
  EXPECT_EQ(bus.dma_write_cost(44), sim::cycles(19, 25e6));
  EXPECT_EQ(bus.dma_read_cost(88), sim::cycles(35, 25e6));
  EXPECT_EQ(bus.dma_write_cost(88), sim::cycles(30, 25e6));
}

TEST(TurboChannel, PaperBandwidthBounds) {
  sim::Engine eng;
  TurboChannel bus(eng, BusConfig{});
  const auto mbps = [](std::uint32_t bytes, sim::Duration d) {
    return static_cast<double>(bytes) * 8.0 * 1e6 / static_cast<double>(d);
  };
  EXPECT_NEAR(mbps(44, bus.dma_read_cost(44)), 366.7, 0.5);
  EXPECT_NEAR(mbps(44, bus.dma_write_cost(44)), 463.2, 0.5);
  EXPECT_NEAR(mbps(88, bus.dma_read_cost(88)), 502.9, 0.5);
  EXPECT_NEAR(mbps(88, bus.dma_write_cost(88)), 586.7, 0.5);
}

TEST(TurboChannel, TransactionsSerialize) {
  sim::Engine eng;
  TurboChannel bus(eng, BusConfig{});
  const sim::Tick t1 = bus.dma_write(0, 44);
  const sim::Tick t2 = bus.dma_write(0, 44);
  EXPECT_EQ(t2, 2 * t1);
  EXPECT_EQ(bus.dma_transactions(), 2u);
  EXPECT_EQ(bus.dma_bytes(), 88u);
}

TEST(TurboChannel, CpuMemoryContendsOnSerialBus) {
  sim::Engine eng;
  TurboChannel bus(eng, BusConfig{});
  const sim::Tick dma_done = bus.dma_write(0, 4096);
  // CPU memory traffic requested at t=0 must wait for the transfer.
  const sim::Tick mem_done = bus.cpu_memory(0, 100);
  EXPECT_GE(mem_done, dma_done);
}

TEST(TurboChannel, PioCosts) {
  sim::Engine eng;
  TurboChannel bus(eng, BusConfig{});
  EXPECT_EQ(bus.pio_read_cost(1), sim::cycles(15, 25e6));
  EXPECT_EQ(bus.pio_write_cost(1), sim::cycles(4, 25e6));
  EXPECT_EQ(bus.pio_read_cost(10), 10 * bus.pio_read_cost(1));
}

TEST(TurboChannel, LaterTransactionFitsEarlierGap) {
  // The calendar property that makes host/board interleaving honest.
  sim::Engine eng;
  TurboChannel bus(eng, BusConfig{});
  bus.bus().reserve_at(sim::us(100), sim::us(10));  // future booking
  const sim::Tick t = bus.dma_write(0, 44);         // slots in before it
  EXPECT_LT(t, sim::us(100));
}

}  // namespace
}  // namespace osiris::tc
