// Unit tests for the dual-port RAM and both queue disciplines.
#include <gtest/gtest.h>

#include "dpram/dpram.h"
#include "dpram/lockq.h"
#include "dpram/queue.h"
#include "sim/engine.h"

namespace osiris::dpram {
namespace {

TEST(DualPortRam, ReadWriteAndAccessCounting) {
  DualPortRam ram;
  ram.write(Side::kHost, 10, 0xABCD);
  EXPECT_EQ(ram.read(Side::kBoard, 10), 0xABCDu);
  EXPECT_EQ(ram.host_accesses(), 1u);
  EXPECT_EQ(ram.board_accesses(), 1u);
  EXPECT_THROW(ram.read(Side::kHost, kDpramWords), std::out_of_range);
}

TEST(ChannelLayout, SixteenPairsFitTheDualPortRam) {
  for (std::uint32_t i = 0; i < kPagesPerHalf; ++i) {
    const ChannelLayout cl = channel_layout(i);
    EXPECT_LE(cl.tx.base_word + cl.tx.words(), (i + 1) * kPageWords);
    EXPECT_GE(cl.free.base_word, kPagesPerHalf * kPageWords);
    EXPECT_LE(cl.recv.base_word + cl.recv.words(), kDpramWords);
    EXPECT_EQ(cl.tx.capacity, 64u);
  }
  EXPECT_THROW(channel_layout(16), std::out_of_range);
}

TEST(ChannelLayout, CapacityClampedToPage)
{
  const ChannelLayout cl = channel_layout(0, 100000, 100000);
  EXPECT_LE(cl.tx.words(), kPageWords);
  EXPECT_LE(cl.free.words(), kPageWords / 2);
  EXPECT_LE(cl.recv.words(), kPageWords / 2);
}

TEST(LockFreeQueue, PushPopRoundTrip) {
  DualPortRam ram;
  const QueueLayout lay = channel_layout(0).tx;
  QueueWriter w(ram, lay, Side::kHost);
  QueueReader r(ram, lay, Side::kBoard);
  EXPECT_TRUE(r.empty());
  const Descriptor d{0x1000, 256, 42, kDescEop, 7};
  EXPECT_TRUE(w.push(d).ok);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(w.size(), 1u);
  const auto got = r.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, d);
  EXPECT_TRUE(r.empty());
}

TEST(LockFreeQueue, FullSemanticsHoldCapacityMinusOne) {
  DualPortRam ram;
  const QueueLayout lay{0, 8};
  QueueWriter w(ram, lay, Side::kHost);
  QueueReader r(ram, lay, Side::kBoard);
  int pushed = 0;
  while (!w.full()) {
    EXPECT_TRUE(w.push({static_cast<std::uint32_t>(pushed), 1, 0, 0, 0}).ok);
    ++pushed;
  }
  EXPECT_EQ(pushed, 7);  // capacity - 1
  EXPECT_FALSE(w.push({99, 1, 0, 0, 0}).ok);
  EXPECT_TRUE(r.pop().has_value());
  EXPECT_FALSE(w.full());
}

TEST(LockFreeQueue, FifoOrderAcrossWraparound) {
  DualPortRam ram;
  const QueueLayout lay{0, 5};
  QueueWriter w(ram, lay, Side::kHost);
  QueueReader r(ram, lay, Side::kBoard);
  std::uint32_t next_push = 0, next_pop = 0;
  for (int round = 0; round < 23; ++round) {
    while (!w.full()) w.push({next_push++, 4, 0, 0, 0});
    while (const auto d = r.pop()) EXPECT_EQ(d->addr, next_pop++);
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(LockFreeQueue, AccessCountsMatchPaperGoal) {
  // §2.1: minimize loads/stores. A push is 6 accesses (tail read, 4
  // descriptor words, head write); a pop likewise.
  DualPortRam ram;
  const QueueLayout lay{0, 16};
  QueueWriter w(ram, lay, Side::kHost);
  QueueReader r(ram, lay, Side::kBoard);
  const auto pr = w.push({1, 2, 3, 0, 4});
  EXPECT_EQ(pr.ram_accesses, 6u);
  OpResult res;
  r.pop(&res);
  EXPECT_EQ(res.ram_accesses, 6u);
}

TEST(LockFreeQueue, PeekAtAndDeferredAdvance) {
  DualPortRam ram;
  const QueueLayout lay{0, 8};
  QueueWriter w(ram, lay, Side::kHost);
  QueueReader r(ram, lay, Side::kBoard);
  for (std::uint32_t i = 0; i < 3; ++i) w.push({i, 1, 0, 0, 0});
  EXPECT_EQ(r.peek_at(0)->addr, 0u);
  EXPECT_EQ(r.peek_at(2)->addr, 2u);
  EXPECT_FALSE(r.peek_at(3).has_value());
  // consume() moves the reader's view; publish() moves the host's.
  const std::uint32_t t1 = r.consume(2);
  EXPECT_EQ(r.peek_at(0)->addr, 2u);
  EXPECT_EQ(w.size(), 3u);  // host still sees 3 outstanding
  r.publish(t1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(LockFreeQueue, ConcurrentInterleavingIsConsistent) {
  // Simulated concurrency: interleave pushes and pops arbitrarily; the
  // one-reader-one-writer discipline guarantees consistency.
  DualPortRam ram;
  const QueueLayout lay{0, 4};
  QueueWriter w(ram, lay, Side::kHost);
  QueueReader r(ram, lay, Side::kBoard);
  std::uint32_t pushed = 0, popped = 0;
  for (int i = 0; i < 1000; ++i) {
    if (i % 3 != 0) {
      if (!w.full()) w.push({pushed++, 1, 0, 0, 0});
    } else {
      if (const auto d = r.pop()) EXPECT_EQ(d->addr, popped++);
    }
  }
  while (const auto d = r.pop()) EXPECT_EQ(d->addr, popped++);
  EXPECT_EQ(pushed, popped);
}

TEST(LockedQueue, PushPopUnderLock) {
  sim::Engine eng;
  DualPortRam ram;
  TestAndSetLock lock(eng, "tas");
  const QueueLayout lay{0, 8};
  LockedQueue q(ram, lay, lock);
  const sim::Duration acc = sim::ns(100);
  sim::Tick done = 0;
  const auto rel = q.push(Side::kHost, 0, acc, {5, 6, 0, 0, 0});
  ASSERT_TRUE(rel.has_value());
  const auto d = q.pop(Side::kBoard, 0, acc, &done);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->addr, 5u);
  // The pop had to wait for the push's critical section.
  EXPECT_GE(done, *rel);
}

TEST(LockedQueue, ContentionSerializes) {
  // Two sides hammering the lock at the same instant: total time is the
  // sum of critical sections — the §2.1.1 argument for lock-free queues.
  sim::Engine eng;
  DualPortRam ram;
  TestAndSetLock lock(eng, "tas");
  const QueueLayout lay{0, 64};
  LockedQueue q(ram, lay, lock);
  const sim::Duration acc = sim::ns(200);
  sim::Tick last = 0;
  for (int i = 0; i < 10; ++i) {
    const auto r = q.push(Side::kHost, 0, acc, {1, 1, 0, 0, 0});
    ASSERT_TRUE(r.has_value());
    last = *r;
  }
  // 10 pushes all requested at t=0: each waits for the previous.
  EXPECT_EQ(last, 10 * acc * (3 + 6));
}

TEST(LockedQueue, FullAndEmptyStillCostALockRound) {
  sim::Engine eng;
  DualPortRam ram;
  TestAndSetLock lock(eng, "tas");
  const QueueLayout lay{0, 2};  // holds 1 entry
  LockedQueue q(ram, lay, lock);
  const sim::Duration acc = sim::ns(100);
  ASSERT_TRUE(q.push(Side::kHost, 0, acc, {1, 1, 0, 0, 0}).has_value());
  sim::Tick fail_at = 0;
  EXPECT_FALSE(q.push(Side::kHost, 0, acc, {2, 1, 0, 0, 0}, &fail_at).has_value());
  EXPECT_GT(fail_at, 0u);
  sim::Tick done = 0;
  EXPECT_TRUE(q.pop(Side::kBoard, 0, acc, &done).has_value());
  EXPECT_FALSE(q.pop(Side::kBoard, 0, acc, &done).has_value());
}

}  // namespace
}  // namespace osiris::dpram
