// Fault injection, watchdog/reset recovery, and the ARQ retry layer.
//
// The adaptor and driver must degrade gracefully — not hang, not corrupt,
// not deliver duplicates — under board firmware stalls, DMA failures,
// descriptor corruption, lost interrupts and wire-level cell loss, and an
// ARQ protocol configured on top must turn that lossy service into
// exactly-once in-order delivery (the paper's layering argument, §1).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "atm/reassembly.h"
#include "atm/sar.h"
#include "fault/fault.h"
#include "osiris/audit.h"
#include "osiris/node.h"
#include "osiris/stats.h"
#include "proto/arq.h"
#include "proto/rpc.h"
#include "sim/trace.h"

namespace osiris {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint32_t tag) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 29 + tag * 101 + 13);
  }
  return v;
}

/// Message with a recoverable index: 4-byte big-endian tag then pattern.
std::vector<std::uint8_t> tagged(std::size_t n, std::uint32_t tag) {
  std::vector<std::uint8_t> v = pattern(n, tag);
  v[0] = static_cast<std::uint8_t>(tag >> 24);
  v[1] = static_cast<std::uint8_t>(tag >> 16);
  v[2] = static_cast<std::uint8_t>(tag >> 8);
  v[3] = static_cast<std::uint8_t>(tag);
  return v;
}

std::uint32_t tag_of(const std::vector<std::uint8_t>& v) {
  return (static_cast<std::uint32_t>(v[0]) << 24) |
         (static_cast<std::uint32_t>(v[1]) << 16) |
         (static_cast<std::uint32_t>(v[2]) << 8) | v[3];
}

// ------------------------------------------------------------- FaultPlane

TEST(FaultPlane, DeterministicAfterFiresOnceWithinBudget) {
  fault::FaultPlane fp;
  fp.arm(fault::Point::kDmaError, {.probability = 0.0, .after = 3, .budget = 1});
  EXPECT_FALSE(fp.fires(fault::Point::kDmaError));
  EXPECT_FALSE(fp.fires(fault::Point::kDmaError));
  EXPECT_TRUE(fp.fires(fault::Point::kDmaError));  // 3rd consultation
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fp.fires(fault::Point::kDmaError));
  EXPECT_EQ(fp.consulted(fault::Point::kDmaError), 13u);
  EXPECT_EQ(fp.fired(fault::Point::kDmaError), 1u);
  EXPECT_EQ(fp.total_fired(), 1u);
}

TEST(FaultPlane, ProbabilityIsRoughlyHonored) {
  fault::FaultPlane fp(123);
  fp.arm(fault::Point::kIrqLost, {.probability = 0.5});
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (fp.fires(fault::Point::kIrqLost)) ++fired;
  }
  EXPECT_GT(fired, 400);
  EXPECT_LT(fired, 600);
}

TEST(FaultPlane, BudgetBoundsProbabilisticFiring) {
  fault::FaultPlane fp(9);
  fp.arm(fault::Point::kBoardRxCellDrop, {.probability = 1.0, .budget = 4});
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (fp.fires(fault::Point::kBoardRxCellDrop)) ++fired;
  }
  EXPECT_EQ(fired, 4);
}

TEST(FaultPlane, ZeroBudgetNeverFires) {
  // budget == 0 means "armed but inert": useful for keeping a schedule's
  // shape while disabling a point. It must never fire — not via
  // probability, not via the deterministic `after` trigger.
  fault::FaultPlane fp(4);
  fp.arm(fault::Point::kIrqLost, {.probability = 1.0, .after = 1, .budget = 0});
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(fp.fires(fault::Point::kIrqLost));
  EXPECT_EQ(fp.consulted(fault::Point::kIrqLost), 50u);
  EXPECT_EQ(fp.fired(fault::Point::kIrqLost), 0u);
}

TEST(FaultPlane, EveryPointHasAName) {
  // point_name() is also checked at compile time (static_assert in
  // fault.h); this keeps the property visible in the test report and
  // guards the names' uniqueness too.
  std::set<std::string> seen;
  for (int i = 0; i < static_cast<int>(fault::Point::kCount); ++i) {
    const char* n = fault::point_name(static_cast<fault::Point>(i));
    ASSERT_NE(n, nullptr);
    EXPECT_STRNE(n, "?") << "Point " << i << " missing a point_name case";
    EXPECT_TRUE(seen.insert(n).second) << "duplicate point name " << n;
  }
}

TEST(FaultPlane, DisarmAndNullPlaneAreSafe) {
  fault::FaultPlane fp;
  fp.arm(fault::Point::kDescCorrupt, {.probability = 1.0});
  EXPECT_TRUE(fp.fires(fault::Point::kDescCorrupt));
  fp.disarm(fault::Point::kDescCorrupt);
  EXPECT_FALSE(fp.armed(fault::Point::kDescCorrupt));
  EXPECT_FALSE(fp.fires(fault::Point::kDescCorrupt));
  // The null-safe hook every layer uses when no plane is attached.
  EXPECT_FALSE(fault::fires(nullptr, fault::Point::kDmaError));
  EXPECT_FALSE(fp.summary().empty());
}

TEST(FaultPlane, DisarmPreservesLedgerResetStatsClearsIt) {
  fault::FaultPlane fp;
  fp.arm(fault::Point::kDmaError, {.probability = 1.0, .budget = 2});
  EXPECT_TRUE(fp.fires(fault::Point::kDmaError));
  EXPECT_TRUE(fp.fires(fault::Point::kDmaError));
  ASSERT_EQ(fp.ledger().size(), 2u);
  EXPECT_EQ(fp.ledger()[0].point, fault::Point::kDmaError);
  EXPECT_EQ(fp.ledger()[0].consultation, 1u);
  EXPECT_EQ(fp.ledger()[1].consultation, 2u);

  // Disarming mid-scenario must not destroy the accounting of what the
  // point already did: the ledger and lifetime counters survive.
  fp.disarm(fault::Point::kDmaError);
  EXPECT_FALSE(fp.armed(fault::Point::kDmaError));
  EXPECT_EQ(fp.ledger().size(), 2u);
  EXPECT_EQ(fp.lifetime_fired(fault::Point::kDmaError), 2u);
  EXPECT_EQ(fp.lifetime_consulted(fault::Point::kDmaError), 2u);

  // Re-arming restarts per-spec counters (so `after` is relative to the
  // new arm) but keeps appending to the same lifetime ledger.
  fp.arm(fault::Point::kDmaError, {.probability = 0.0, .after = 1, .budget = 1});
  EXPECT_TRUE(fp.fires(fault::Point::kDmaError));
  EXPECT_EQ(fp.ledger().size(), 3u);
  EXPECT_EQ(fp.ledger()[2].consultation, 1u);  // counted since the re-arm
  EXPECT_EQ(fp.lifetime_fired(fault::Point::kDmaError), 3u);

  // reset_stats() is the between-phases clean slate: every statistic goes,
  // armed specs stay armed.
  fp.arm(fault::Point::kIrqLost, {.probability = 0.0, .after = 2, .budget = 1});
  fp.reset_stats();
  EXPECT_TRUE(fp.armed(fault::Point::kDmaError));
  EXPECT_TRUE(fp.armed(fault::Point::kIrqLost));
  EXPECT_TRUE(fp.ledger().empty());
  EXPECT_EQ(fp.lifetime_fired(fault::Point::kDmaError), 0u);
  EXPECT_EQ(fp.lifetime_consulted(fault::Point::kDmaError), 0u);
  EXPECT_EQ(fp.consulted(fault::Point::kDmaError), 0u);
  EXPECT_EQ(fp.fired(fault::Point::kDmaError), 0u);
}

TEST(FaultPlane, ConsultationWindowGatesFiring) {
  fault::FaultPlane fp;
  // Eligible only on consultations 3..5 (1-based, since arm).
  fp.arm(fault::Point::kIrqLost, {.probability = 1.0,
                                  .window_from = 3,
                                  .window_until = 5});
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (fp.fires(fault::Point::kIrqLost)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  ASSERT_EQ(fp.ledger().size(), 3u);
  EXPECT_EQ(fp.ledger()[0].consultation, 3u);
  EXPECT_EQ(fp.ledger()[2].consultation, 5u);
}

TEST(FaultPlane, CorruptWordFlipsExactlyOneBit) {
  fault::FaultPlane fp(77);
  for (int i = 0; i < 50; ++i) {
    const std::uint32_t v = 0xDEADBEEF + static_cast<std::uint32_t>(i);
    const std::uint32_t c = fp.corrupt_word(v);
    EXPECT_EQ(std::popcount(v ^ c), 1);
  }
}

// ------------------------------------------------------- Trace (postmortem)

TEST(Trace, DroppedEventsAndStreamDump) {
  sim::Trace t(4);
  EXPECT_EQ(t.dropped_events(), 0u);
  for (std::uint64_t i = 0; i < 10; ++i) t.record(sim::us(1) * i, "c", "e", i);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped_events(), 6u);  // ring of 4 kept only the tail
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().a, 6u);
  EXPECT_EQ(evs.back().a, 9u);

  std::ostringstream os;
  t.dump(os, 2);
  const std::string s = os.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
  EXPECT_NE(s.find("c.e(9"), std::string::npos);
  EXPECT_EQ(t.dump(100), t.dump(4));  // only 4 survive
}

// ------------------------------------------- Reassembly GC (lost EOM cells)

TEST(ReassemblyGc, SeqRouterPurgeReclaimsLostEom) {
  atm::SeqRouter r;
  const auto p1 = pattern(150, 1);
  auto cells = atm::segment(p1, /*vci=*/7, /*pdu_id=*/1);
  ASSERT_GT(cells.size(), 2u);
  std::vector<atm::Placement> place;
  std::vector<atm::Completion> done;
  // Feed everything except the last cell — the EOM was lost on the wire.
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    r.on_cell(static_cast<int>(cells[i].seq % atm::kLanes), cells[i], place, done);
  }
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(r.inflight(), 1u);

  EXPECT_EQ(r.purge(), 1u);
  EXPECT_EQ(r.inflight(), 0u);
  EXPECT_EQ(r.dropped(), cells.size() - 1);  // the fed cells are accounted

  // The router keeps working: a fresh PDU completes normally.
  const auto p2 = pattern(100, 2);
  const auto cells2 = atm::segment(p2, 7, /*pdu_id=*/2);
  place.clear();
  done.clear();
  std::uint64_t key1 = 0;
  for (const atm::Cell& c : cells2) {
    r.on_cell(static_cast<int>(c.seq % atm::kLanes), c, place, done);
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].wire_bytes, atm::wire_len(100));
  // PDU keys stay monotonic across the purge (no aliasing with stale state).
  key1 = done[0].pdu;
  EXPECT_GE(key1, 1u);
}

TEST(ReassemblyGc, SeqRouterReplacementBomReclaimsStaleId) {
  atm::SeqRouter r;
  const auto p1 = pattern(200, 3);
  auto cells = atm::segment(p1, 7, /*pdu_id=*/5);
  std::vector<atm::Placement> place;
  std::vector<atm::Completion> done;
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    r.on_cell(0, cells[i], place, done);
  }
  const std::uint64_t fed = cells.size() - 1;
  EXPECT_EQ(r.inflight(), 1u);

  // The 16-bit id space wrapped and a new PDU reuses id 5. Its BOM must
  // evict the stale reassembly instead of being treated as a duplicate.
  const auto p2 = pattern(200, 4);
  const auto cells2 = atm::segment(p2, 7, /*pdu_id=*/5);
  place.clear();
  done.clear();
  for (const atm::Cell& c : cells2) r.on_cell(0, c, place, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].wire_bytes, atm::wire_len(200));
  EXPECT_EQ(r.dropped(), fed);
  EXPECT_EQ(r.inflight(), 0u);
}

TEST(ReassemblyGc, QuadRouterPurgeReclaimsLostEom) {
  atm::QuadRouter r;
  const auto p1 = pattern(240, 5);  // 6 cells: every lane carries one
  auto cells = atm::segment(p1, 7, 0);
  ASSERT_EQ(cells.size(), 6u);
  std::vector<atm::Placement> place;
  std::vector<atm::Completion> done;
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    r.on_cell(static_cast<int>(cells[i].seq % atm::kLanes), cells[i], place, done);
  }
  EXPECT_TRUE(done.empty());
  EXPECT_GE(r.inflight() + r.queued(), 1u);

  EXPECT_GE(r.purge(), 1u);
  EXPECT_EQ(r.inflight(), 0u);
  EXPECT_EQ(r.queued(), 0u);
  EXPECT_GT(r.dropped(), 0u);

  // A complete PDU after the purge reassembles byte-exactly.
  const auto p2 = pattern(100, 6);
  const auto cells2 = atm::segment(p2, 7, 1);
  place.clear();
  done.clear();
  for (const atm::Cell& c : cells2) {
    r.on_cell(static_cast<int>(c.seq % atm::kLanes), c, place, done);
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].wire_bytes, atm::wire_len(100));
  std::vector<std::uint8_t> wire(done[0].wire_bytes);
  for (const atm::Placement& pl : place) {
    if (pl.pdu != done[0].pdu) continue;
    std::copy_n(pl.cell.payload.begin(), pl.cell.len, wire.begin() + pl.offset);
  }
  EXPECT_TRUE(std::equal(p2.begin(), p2.end(), wire.begin()));
}

// ------------------------------------------------------------- End to end

/// Two-node testbed with stacks, a sink collecting node B's deliveries,
/// and (optionally) a fault plane on node B.
struct FaultNet {
  sim::Trace trace{2048};
  fault::FaultPlane fp{0xFA177};
  Testbed tb;
  atm::Vci vci;
  std::unique_ptr<proto::ProtoStack> sa, sb;
  std::vector<std::vector<std::uint8_t>> received;

  static NodeConfig node_a(double cell_loss) {
    NodeConfig c = make_3000_600_config();
    // Per-cell identity (strategy A) tolerates lost cells cleanly; the
    // quad strategy desynchronizes under loss (see test_errors.cc).
    c.board.reassembly = "seq";
    c.link.cell_loss_p = cell_loss;
    c.link.seed = 7;
    return c;
  }

  NodeConfig node_b(bool with_faults) {
    NodeConfig c = make_3000_600_config();
    c.board.reassembly = "seq";
    c.trace = &trace;
    if (with_faults) c.faults = &fp;
    return c;
  }

  explicit FaultNet(bool faults_on_b = true, double a_cell_loss = 0.0,
                    bool faults_on_a = false, std::size_t trace_cap = 2048)
      : trace(trace_cap),
        tb(faults_on_a ? with_fault_plane(node_a(a_cell_loss), &fp)
                       : node_a(a_cell_loss),
           node_b(faults_on_b)) {
    vci = tb.open_kernel_path();
    proto::StackConfig sc;
    sc.udp_checksum = true;
    sa = tb.a.make_stack(sc);
    sb = tb.b.make_stack(sc);
    sb->set_sink([this](sim::Tick, std::uint16_t,
                        std::vector<std::uint8_t>&& data) {
      received.push_back(std::move(data));
    });
  }

  static NodeConfig with_fault_plane(NodeConfig c, fault::FaultPlane* f) {
    c.faults = f;
    return c;
  }

  sim::Tick send_tagged(sim::Tick t, std::uint32_t tag, std::size_t bytes) {
    const proto::Message m =
        proto::Message::from_payload(tb.a.kernel_space, tagged(bytes, tag));
    return sa->send(t, vci, m);
  }
};

TEST(FaultE2E, DmaErrorIsCaughtByChecksum) {
  // The second transmit DMA read on node A fails: the board sends the cell
  // with zero-filled bytes (consistent AAL CRC), so only the end-to-end UDP
  // checksum can catch it — the paper's argument for end-to-end checks.
  FaultNet net(/*faults_on_b=*/false, 0.0, /*faults_on_a=*/true);
  net.fp.arm(fault::Point::kDmaError, {.after = 2, .budget = 1});
  sim::Tick t = 0;
  for (std::uint32_t i = 0; i < 5; ++i) t = net.send_tagged(t, i, 1024);
  net.tb.run();

  EXPECT_EQ(net.received.size(), 4u);  // exactly the corrupted one is dropped
  for (const auto& msg : net.received) {
    const std::uint32_t tag = tag_of(msg);
    EXPECT_EQ(msg, tagged(1024, tag));
  }
  EXPECT_EQ(net.fp.fired(fault::Point::kDmaError), 1u);
  EXPECT_GE(snapshot(net.tb.a).dma_errors, 1u);
  EXPECT_GE(net.sb->checksum_failures(), 1u);
}

TEST(FaultE2E, LostInterruptRecoveredByWatchdogPoll) {
  FaultNet net;
  net.fp.arm(fault::Point::kIrqLost, {.after = 1, .budget = 1});
  net.tb.b.start_watchdog(sim::ms(1), sim::ms(5), /*until=*/sim::ms(20));
  net.send_tagged(0, 1, 2000);
  net.tb.run();

  ASSERT_EQ(net.received.size(), 1u);
  EXPECT_EQ(net.received[0], tagged(2000, 1));
  const NodeStats b = snapshot(net.tb.b);
  EXPECT_EQ(b.irqs_lost, 1u);
  EXPECT_GE(b.watchdog_polls, 1u);  // the poll recovered the lost burst
  EXPECT_EQ(b.watchdog_resets, 0u);
}

TEST(FaultE2E, ForceResetRepostsBuffersAndTrafficResumes) {
  FaultNet net(/*faults_on_b=*/false);
  std::ostringstream pm;
  net.tb.b.driver.set_postmortem_stream(&pm);
  sim::Tick t = 0;
  for (std::uint32_t i = 0; i < 3; ++i) t = net.send_tagged(t, i, 4000);
  net.tb.b.eng.schedule_at(sim::ms(5), [&] {
    net.tb.b.driver.force_reset(net.tb.b.eng.now());
  });
  net.tb.a.eng.schedule_at(sim::ms(6), [&] {
    sim::Tick t2 = net.tb.a.eng.now();
    for (std::uint32_t i = 3; i < 6; ++i) t2 = net.send_tagged(t2, i, 4000);
  });
  net.tb.run();

  // All six arrive: the pool re-post after the reset left a working board.
  ASSERT_EQ(net.received.size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(net.received[i], tagged(4000, i));
  }
  EXPECT_EQ(net.tb.b.driver.generation(), 1u);
  EXPECT_EQ(net.tb.b.driver.watchdog_resets(), 1u);
  EXPECT_EQ(net.tb.b.rxp.epoch(), 1u);
  EXPECT_EQ(net.tb.b.txp.epoch(), 1u);
  // The reset postmortem (the trace tail) was captured and streamed.
  EXPECT_FALSE(net.tb.b.driver.last_postmortem().empty());
  EXPECT_FALSE(pm.str().empty());
}

TEST(FaultE2E, BoardStallTriggersWatchdogReset) {
  FaultNet net;
  // Wedge the receive firmware on its 40th cell (mid-message), as if the
  // i960 receive loop hit an infinite loop.
  net.fp.arm(fault::Point::kBoardRxStall, {.after = 40, .budget = 1});
  net.tb.b.start_watchdog(sim::ms(1), sim::ms(2), /*until=*/sim::ms(40));
  std::ostringstream pm;
  net.tb.b.driver.set_postmortem_stream(&pm);

  // One 1 KB message every 500 us for 20 ms. No ARQ here: messages sent
  // into the wedge are simply lost; the point is that the watchdog brings
  // the adaptor back and later traffic flows.
  for (std::uint32_t i = 0; i < 40; ++i) {
    net.tb.a.eng.schedule_at(sim::us(500) * i, [&net, i] {
      net.send_tagged(net.tb.a.eng.now(), i, 1024);
    });
  }
  net.tb.run();

  const NodeStats b = snapshot(net.tb.b);
  EXPECT_EQ(b.board_stalls, 1u);
  EXPECT_GE(b.watchdog_resets, 1u);
  EXPECT_GE(b.generation, 1u);
  EXPECT_GE(net.tb.b.rxp.epoch(), 1u);
  EXPECT_GE(net.tb.b.rxp.cells_stalled(), 1u);

  // Most of the stream survives; the wedge window (stall -> deadline ->
  // reset, ~3 ms = ~6 messages) is lost.
  EXPECT_GE(net.received.size(), 25u);
  EXPECT_LT(net.received.size(), 40u);
  std::set<std::uint32_t> seen;
  for (const auto& msg : net.received) {
    const std::uint32_t tag = tag_of(msg);
    EXPECT_EQ(msg, tagged(1024, tag));              // no corruption
    EXPECT_TRUE(seen.insert(tag).second) << tag;    // no duplicates
  }

  // Observability: the wedge and the reset are in the trace, and the
  // watchdog dumped the trace tail as a postmortem.
  EXPECT_GE(net.trace.count([](const sim::TraceEvent& e) {
    return std::string_view(e.event) == "wedge";
  }), 1u);
  EXPECT_GE(net.trace.count([](const sim::TraceEvent& e) {
    return std::string_view(e.component) == "drv" &&
           std::string_view(e.event) == "reset";
  }), 1u);
  EXPECT_FALSE(net.tb.b.driver.last_postmortem().empty());
  EXPECT_NE(pm.str().find("reset"), std::string::npos);
}

// ---------------------------------------------------------- RPC retries

TEST(Rpc, RetrySucceedsAfterLostRequest) {
  // The first request is corrupted by a transmit DMA error on the client
  // and dropped by the server's checksum; the client's retry policy
  // re-sends it after the timeout and the call completes.
  FaultNet net(/*faults_on_b=*/false, 0.0, /*faults_on_a=*/true);
  net.fp.arm(fault::Point::kDmaError, {.after = 2, .budget = 1});
  proto::RpcEndpoint client(net.tb.a.eng, *net.sa, net.tb.a.kernel_space,
                            net.tb.a.cpu, net.tb.a.cfg.machine);
  proto::RpcEndpoint server(net.tb.b.eng, *net.sb, net.tb.b.kernel_space,
                            net.tb.b.cpu, net.tb.b.cfg.machine);
  server.serve([](std::vector<std::uint8_t> req) {
    std::reverse(req.begin(), req.end());
    return req;
  });
  std::optional<std::vector<std::uint8_t>> got;
  client.call(0, net.vci, {1, 2, 3, 4},
              [&](sim::Tick, std::optional<std::vector<std::uint8_t>> r) {
                got = std::move(r);
              },
              /*timeout=*/sim::ms(1), proto::RpcRetryPolicy{.retries = 2});
  net.tb.run();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{4, 3, 2, 1}));
  EXPECT_EQ(client.retransmissions(), 1u);
  EXPECT_EQ(client.timeouts(), 0u);
  EXPECT_EQ(server.served(), 1u);
  EXPECT_EQ(net.fp.fired(fault::Point::kDmaError), 1u);
}

// ------------------------------------------------------------------- ARQ

TEST(Arq, InOrderExactlyOnceUnderCellLoss) {
  FaultNet net(/*faults_on_b=*/false, /*a_cell_loss=*/0.02);
  proto::ArqConfig ac;
  ac.window = 8;
  ac.rto = sim::us(500);
  ac.max_rto = sim::ms(5);
  ac.max_retries = 20;
  proto::ArqEndpoint arq_a(net.tb.a.eng, *net.sa, net.tb.a.kernel_space,
                           net.tb.a.cpu, net.tb.a.cfg.machine, ac);
  proto::ArqEndpoint arq_b(net.tb.b.eng, *net.sb, net.tb.b.kernel_space,
                           net.tb.b.cpu, net.tb.b.cfg.machine, ac);
  arq_a.bind(net.vci);
  arq_b.bind(net.vci);
  std::vector<std::vector<std::uint8_t>> got;
  arq_b.set_sink([&](sim::Tick, std::uint16_t,
                     std::vector<std::uint8_t>&& data) {
    got.push_back(std::move(data));
  });

  sim::Tick t = 0;
  for (std::uint32_t i = 0; i < 200; ++i) {
    t = arq_a.send(t, net.vci, tagged(300, i));
  }
  net.tb.run();

  ASSERT_EQ(got.size(), 200u);
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(got[i], tagged(300, i)) << "message " << i;
  }
  EXPECT_GT(arq_a.retransmissions(), 0u);  // ~2% cell loss cost something
  EXPECT_TRUE(arq_a.idle());
  EXPECT_FALSE(arq_a.dead(net.vci));
  EXPECT_EQ(arq_b.misrouted(), 0u);
}

TEST(Arq, GiveUpIsTerminalWhenPeerUnreachable) {
  FaultNet net(/*faults_on_b=*/false, /*a_cell_loss=*/1.0);
  proto::ArqConfig ac;
  ac.rto = sim::us(200);
  ac.max_rto = sim::ms(1);
  ac.max_retries = 3;
  proto::ArqEndpoint arq_a(net.tb.a.eng, *net.sa, net.tb.a.kernel_space,
                           net.tb.a.cpu, net.tb.a.cfg.machine, ac);
  arq_a.bind(net.vci);
  arq_a.send(0, net.vci, tagged(100, 1));
  net.tb.run();  // must drain: the retry budget bounds the schedule

  EXPECT_TRUE(arq_a.dead(net.vci));
  EXPECT_GE(arq_a.gave_up(), 1u);
  EXPECT_EQ(arq_a.retransmissions(), 3u);
  EXPECT_TRUE(net.received.empty());
  // Further sends on the dead VCI are refused, not queued forever.
  arq_a.send(net.tb.now(), net.vci, tagged(100, 2));
  net.tb.run();
  EXPECT_GE(arq_a.gave_up(), 2u);
}

TEST(Arq, BacksOffAndDrainsAgainstRateLimitedPeer) {
  // Sustained overload: the sender's kernel transmit queue is capped by a
  // board-side token bucket far below the offered rate. The ARQ must back
  // off and drain — retransmissions are fine, livelock is not: every
  // message still arrives exactly once, the endpoint ends idle (no frame
  // stuck waiting forever), and the VCI never goes terminal.
  FaultNet net(/*faults_on_b=*/false);
  net.tb.a.txp.set_rate_limit(/*channel=*/0, /*bytes_per_sec=*/2e6,
                              /*burst_bytes=*/4096);
  proto::ArqConfig ac;
  ac.window = 8;
  ac.rto = sim::ms(5);  // above the per-frame pacing delay at 2 MB/s
  ac.max_rto = sim::ms(50);
  ac.max_retries = 30;
  proto::ArqEndpoint arq_a(net.tb.a.eng, *net.sa, net.tb.a.kernel_space,
                           net.tb.a.cpu, net.tb.a.cfg.machine, ac);
  proto::ArqEndpoint arq_b(net.tb.b.eng, *net.sb, net.tb.b.kernel_space,
                           net.tb.b.cpu, net.tb.b.cfg.machine, ac);
  arq_a.bind(net.vci);
  arq_b.bind(net.vci);
  std::vector<std::uint32_t> got;
  arq_b.set_sink([&](sim::Tick, std::uint16_t,
                     std::vector<std::uint8_t>&& data) {
    got.push_back(tag_of(data));
  });

  constexpr std::uint32_t kMessages = 100;
  sim::Tick t = 0;
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    t = arq_a.send(t, net.vci, tagged(400, i));
  }
  net.tb.run();  // must terminate: pacing + bounded retries, no livelock

  ASSERT_EQ(got.size(), kMessages);
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got[i], i) << "out of order under overload";
  }
  EXPECT_TRUE(arq_a.idle());
  EXPECT_FALSE(arq_a.dead(net.vci));
  EXPECT_GT(net.tb.a.txp.rate_deferrals(), 0u) << "the limit never bit";
  // ~100 x ~450 wire bytes at 2 MB/s: the cap, not the link, set the pace.
  EXPECT_GT(net.tb.now(), sim::ms(15));
}

// ------------------------------------------------- The acceptance soak

TEST(Arq, ResyncSurvivesForceResetRacingRetransmitTimer) {
  // Deterministic reproduction of the nastiest recovery interleaving: the
  // sender's transmit firmware wedges with ARQ frames unacked (so a
  // retransmit timer is in flight), the watchdog force-resets the adaptor
  // under that timer, and the session must resynchronize — re-posting the
  // window through the reborn adaptor — without ever delivering a
  // duplicate or reordering, and without the pending timer double-sending.
  FaultNet net(/*faults_on_b=*/false, /*a_cell_loss=*/0.0,
               /*faults_on_a=*/true);
  net.fp.arm(fault::Point::kBoardTxStall, {.probability = 0.0,
                                           .after = 25,
                                           .budget = 1});
  net.tb.a.start_watchdog(sim::ms(1), sim::ms(2), /*until=*/sim::sec(5));

  proto::ArqConfig ac;
  ac.window = 8;
  ac.rto = sim::us(500);  // shorter than the watchdog rescue: the timer
  ac.max_rto = sim::ms(4);  // fires into the wedge before the reset lands
  ac.max_retries = 20;
  proto::ArqEndpoint arq_a(net.tb.a.eng, *net.sa, net.tb.a.kernel_space,
                           net.tb.a.cpu, net.tb.a.cfg.machine, ac);
  proto::ArqEndpoint arq_b(net.tb.b.eng, *net.sb, net.tb.b.kernel_space,
                           net.tb.b.cpu, net.tb.b.cfg.machine, ac);
  arq_a.bind(net.vci);
  arq_b.bind(net.vci);

  constexpr std::uint32_t kMessages = 30;
  constexpr std::size_t kBytes = 200;
  std::uint32_t delivered = 0;
  std::uint64_t order_errors = 0, payload_errors = 0;
  arq_b.set_sink([&](sim::Tick, std::uint16_t,
                     std::vector<std::uint8_t>&& data) {
    if (data.size() != kBytes || tag_of(data) != delivered) ++order_errors;
    if (data != tagged(kBytes, tag_of(data))) ++payload_errors;
    ++delivered;
  });
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    net.tb.a.eng.schedule_at(
        static_cast<sim::Tick>(i) * sim::us(100), [&net, &arq_a, i] {
          arq_a.send(net.tb.a.eng.now(), net.vci, tagged(kBytes, i));
        });
  }
  net.tb.run();

  // The wedge bit, the watchdog rescued it, and the session resynced.
  EXPECT_EQ(net.fp.fired(fault::Point::kBoardTxStall), 1u);
  EXPECT_GE(net.tb.a.driver.watchdog_resets(), 1u);
  EXPECT_GE(arq_a.resyncs(), 1u);
  EXPECT_GT(arq_a.retransmissions(), 0u);

  // Exactly-once, in-order, byte-exact — and prompt convergence: the
  // sender is idle, not wedged behind a dead timer or a stale window.
  EXPECT_EQ(delivered, kMessages);
  EXPECT_EQ(order_errors, 0u);
  EXPECT_EQ(payload_errors, 0u);
  EXPECT_TRUE(arq_a.idle());
  EXPECT_FALSE(arq_a.dead(net.vci));
}

TEST(FaultSoak, MultiLayerFaultScheduleSurvives) {
  // 5000 ARQ messages through 1% cell loss, probabilistic DMA errors on
  // the receiver, and a mid-run receive-firmware wedge that only the
  // watchdog can clear. Required outcome: at least one adaptor reset, and
  // 100% in-order, exactly-once, byte-exact delivery.
  // A 16 K trace ring: deep enough that the mid-run reset record survives
  // to the end, shallow enough that the run demonstrably overflows it.
  FaultNet net(/*faults_on_b=*/true, /*a_cell_loss=*/0.01,
               /*faults_on_a=*/false, /*trace_cap=*/16384);
  net.fp.arm(fault::Point::kBoardRxStall, {.after = 20000, .budget = 1});
  net.fp.arm(fault::Point::kDmaError, {.probability = 0.0008, .budget = 10});
  net.tb.b.start_watchdog(sim::ms(1), sim::ms(3), /*until=*/sim::sec(10));

  proto::ArqConfig ac;
  ac.window = 16;
  ac.rto = sim::ms(2);
  ac.max_rto = sim::ms(20);
  ac.max_retries = 30;
  proto::ArqEndpoint arq_a(net.tb.a.eng, *net.sa, net.tb.a.kernel_space,
                           net.tb.a.cpu, net.tb.a.cfg.machine, ac);
  proto::ArqEndpoint arq_b(net.tb.b.eng, *net.sb, net.tb.b.kernel_space,
                           net.tb.b.cpu, net.tb.b.cfg.machine, ac);
  arq_a.bind(net.vci);
  arq_b.bind(net.vci);

  constexpr std::uint32_t kMessages = 5000;
  constexpr std::size_t kBytes = 200;
  std::uint32_t delivered = 0;
  std::uint64_t order_errors = 0, payload_errors = 0;
  arq_b.set_sink([&](sim::Tick, std::uint16_t,
                     std::vector<std::uint8_t>&& data) {
    if (data.size() != kBytes || tag_of(data) != delivered) ++order_errors;
    if (data != tagged(kBytes, tag_of(data))) ++payload_errors;
    ++delivered;
  });

  // Pace the application at one message per 300 us. Issuing all 5000
  // sends in one back-to-back burst would book the sending CPU solid for
  // the whole run, and every ack — hence every window advance — would
  // serialize behind that reservation backlog.
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    net.tb.a.eng.schedule_at(
        static_cast<sim::Tick>(i) * sim::us(300), [&net, &arq_a, i] {
          arq_a.send(net.tb.a.eng.now(), net.vci, tagged(kBytes, i));
        });
  }
  net.tb.run();  // no hang: every timer in the schedule is bounded

  // Graceful degradation: zero duplicates, zero corruption, full delivery.
  EXPECT_EQ(delivered, kMessages);
  EXPECT_EQ(order_errors, 0u);
  EXPECT_EQ(payload_errors, 0u);
  EXPECT_TRUE(arq_a.idle());
  EXPECT_FALSE(arq_a.dead(net.vci));

  // The fault schedule actually bit, and recovery actually ran.
  const NodeStats b = snapshot(net.tb.b);
  EXPECT_EQ(net.fp.fired(fault::Point::kBoardRxStall), 1u);
  EXPECT_GE(b.board_stalls, 1u);
  EXPECT_GE(b.watchdog_resets, 1u);
  EXPECT_GE(b.generation, 1u);
  EXPECT_GT(arq_a.retransmissions(), 0u);
  EXPECT_GE(net.trace.count([](const sim::TraceEvent& e) {
    return std::string_view(e.component) == "drv" &&
           std::string_view(e.event) == "reset";
  }), 1u);
  EXPECT_FALSE(net.tb.b.driver.last_postmortem().empty());
  // The long run overflowed the bounded trace ring — the dropped-event
  // counter says so instead of pretending the tail is the whole story.
  EXPECT_GT(net.trace.dropped_events(), 0u);

  // The stats formatter surfaces the fault/recovery lines.
  const std::string text = format_stats(b);
  EXPECT_NE(text.find("faults:"), std::string::npos);
  EXPECT_NE(text.find("recovery:"), std::string::npos);

  // After the carnage, independently-maintained counters must still
  // balance: every sealed cell hit the wire, every wire cell is delivered
  // or accounted as lost, delivery never exceeds reassembly.
  const std::vector<std::string> violations = osiris::obs::audit(net.tb);
  for (const std::string& v : violations) ADD_FAILURE() << "audit: " << v;
}

}  // namespace
}  // namespace osiris
