// Per-VCI QoS and overload management (DESIGN.md §10):
//  * deficit-round-robin weights actually apportion the link;
//  * board-side token buckets cap a tenant without wedging its queue
//    (the firmware re-arms itself at the refill time);
//  * a dry bucket is work-conserving — neighbours keep the link busy;
//  * per-VCI buffer quotas drop the hot VCI's PDUs, reclaim (never leak)
//    the buffers they already held, and leave neighbours untouched;
//  * the kRxFreeLow backpressure interrupt reaches the channel driver;
//  * the overload soak: incast + injected faults (queue wedges, buffer
//    exhaustion, tenant bursts) with rate limits and quotas must end with
//    every tenant served, the run drained, and zero leaked frames.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "adc/adc.h"
#include "adc/supervisor.h"
#include "fault/fault.h"
#include "osiris/audit.h"
#include "osiris/node.h"
#include "proto/message.h"

namespace osiris {
namespace {

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t s) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 13 + s);
  return v;
}

/// One tenant: an ADC pair (tx on node a, rx on node b) on its own VCI.
struct Tenant {
  std::unique_ptr<adc::Adc> tx, rx;
  std::vector<sim::Tick> deliveries;

  Tenant(Testbed& tb, int pair, atm::Vci vci, int priority,
         const proto::StackConfig& sc) {
    tx = std::make_unique<adc::Adc>(deps_of(tb.a), pair,
                                    std::vector<atm::Vci>{vci}, priority, sc);
    rx = std::make_unique<adc::Adc>(deps_of(tb.b), pair,
                                    std::vector<atm::Vci>{vci}, priority, sc);
    rx->set_sink([this](sim::Tick at, std::uint16_t,
                        std::vector<std::uint8_t>&&) {
      deliveries.push_back(at);
    });
  }
};

proto::StackConfig raw_atm() {
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  return sc;
}

TEST(Qos, DrrWeightsApportionTheLink) {
  // Two equal-priority tenants, weights 3:1, both backlogged from t=0.
  // Deficit round robin must serve the heavy tenant ~3x as often while
  // both stay backlogged — not strictly first (that's what priority is
  // for), and not 1:1 (that's what the old FIFO scan did).
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const auto sc = raw_atm();
  Tenant heavy(tb, 1, 901, 1, sc);
  Tenant light(tb, 2, 902, 1, sc);
  tb.a.txp.set_queue_weight(1, 3);
  tb.a.txp.set_queue_weight(2, 1);

  std::vector<int> order;  // 1 = heavy, 2 = light
  heavy.rx->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    order.push_back(1);
  });
  light.rx->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    order.push_back(2);
  });

  const auto data = pattern(8000, 1);
  proto::Message mh = proto::Message::from_payload(heavy.tx->space(), data);
  proto::Message ml = proto::Message::from_payload(light.tx->space(), data);
  heavy.tx->authorize(mh.scatter());
  light.tx->authorize(ml.scatter());
  sim::Tick th = 0, tl = 0;
  for (int i = 0; i < 12; ++i) {
    th = heavy.tx->send(th, 901, mh);
    tl = light.tx->send(tl, 902, ml);
  }
  tb.run();

  ASSERT_EQ(order.size(), 24u);
  int heavy_in_first_8 = 0;
  for (int i = 0; i < 8; ++i) {
    if (order[static_cast<std::size_t>(i)] == 1) ++heavy_in_first_8;
  }
  EXPECT_GE(heavy_in_first_8, 5) << "weight 3 tenant should dominate ~3:1";
  EXPECT_LE(heavy_in_first_8, 7) << "weight 1 tenant must not starve";
}

TEST(Qos, RateLimitCapsATenantWithoutWedging) {
  // A lone rate-limited tenant: the bucket runs dry mid-burst and NOTHING
  // else kicks the firmware — the scheduler must re-arm itself at the
  // refill time, pace the queue at the configured rate, and drain fully.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const auto sc = raw_atm();
  Tenant t(tb, 1, 903, 1, sc);
  // 5 MB/s with a 4 KB burst: each 8000 B PDU (~8.9 KB on the wire)
  // overdraws the bucket, so every send after the first waits on refill.
  tb.a.txp.set_rate_limit(1, 5e6, 4096);
  ASSERT_TRUE(tb.a.txp.rate_limited(1));

  const auto data = pattern(8000, 2);
  proto::Message m = proto::Message::from_payload(t.tx->space(), data);
  t.tx->authorize(m.scatter());
  sim::Tick tick = 0;
  for (int i = 0; i < 6; ++i) tick = t.tx->send(tick, 903, m);
  tb.run();

  EXPECT_EQ(t.deliveries.size(), 6u) << "a dry bucket must never wedge";
  EXPECT_GT(tb.a.txp.rate_deferrals(), 0u);
  // ~53 KB of wire bytes at 5 MB/s is ~10 ms; without the limit this
  // drains in well under a millisecond.
  EXPECT_GT(tb.now(), sim::ms(8));
}

TEST(Qos, DryBucketIsWorkConserving) {
  // Tenant L is throttled hard; tenant N is not. N's PDUs must flow at
  // link speed while L's bucket refills — an ineligible queue donates the
  // link instead of blocking the scheduler pass.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const auto sc = raw_atm();
  Tenant limited(tb, 1, 904, 1, sc);
  Tenant normal(tb, 2, 905, 1, sc);
  tb.a.txp.set_rate_limit(1, 1e6, 2048);  // 1 MB/s: ~9 ms per 8000 B PDU

  const auto data = pattern(8000, 3);
  proto::Message m1 = proto::Message::from_payload(limited.tx->space(), data);
  proto::Message m2 = proto::Message::from_payload(normal.tx->space(), data);
  limited.tx->authorize(m1.scatter());
  normal.tx->authorize(m2.scatter());
  sim::Tick t1 = 0, t2 = 0;
  for (int i = 0; i < 3; ++i) t1 = limited.tx->send(t1, 904, m1);
  for (int i = 0; i < 6; ++i) t2 = normal.tx->send(t2, 905, m2);
  tb.run();

  ASSERT_EQ(normal.deliveries.size(), 6u);
  ASSERT_EQ(limited.deliveries.size(), 3u);
  // All of N's traffic lands before L's throttled second PDU: the link
  // never idled waiting on L's bucket.
  EXPECT_LT(normal.deliveries.back(), limited.deliveries[1]);
}

TEST(Qos, VciQuotaDropsHotVciAndReclaimsItsBuffers) {
  // The hot VCI gets a 1-buffer quota; its multi-buffer PDUs hit the cap
  // mid-reassembly and are dropped — but the buffer each one already held
  // must come back as an aborted descriptor (recycled by the driver), not
  // leak. A neighbour VCI on its own channel is untouched.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const auto sc = raw_atm();
  Tenant hot(tb, 1, 906, 1, sc);
  Tenant cool(tb, 2, 907, 1, sc);
  tb.b.rxp.set_vci_quota(906, 1);  // 8000 B needs 2-3 page buffers

  const auto data = pattern(8000, 4);
  proto::Message mh = proto::Message::from_payload(hot.tx->space(), data);
  proto::Message mc = proto::Message::from_payload(cool.tx->space(), data);
  hot.tx->authorize(mh.scatter());
  cool.tx->authorize(mc.scatter());
  sim::Tick t1 = 0, t2 = 0;
  // 20 hot PDUs want ~60 buffers; the channel pool only has 32. If drops
  // leaked their held buffer the pool would be gone by PDU ~30 and the
  // later sends (and the quota accounting) would wedge.
  for (int i = 0; i < 20; ++i) t1 = hot.tx->send(t1, 906, mh);
  for (int i = 0; i < 8; ++i) t2 = cool.tx->send(t2, 907, mc);
  tb.run();

  EXPECT_EQ(hot.deliveries.size(), 0u);
  EXPECT_EQ(cool.deliveries.size(), 8u) << "neighbour must be untouched";
  EXPECT_GE(tb.b.rxp.pdus_dropped_quota(), 20u);
  EXPECT_EQ(tb.b.rxp.vci_buffers_held(906), 0u) << "quota accounting leaked";
  EXPECT_EQ(tb.b.rxp.vci_buffers_held(907), 0u);
}

TEST(Qos, BackpressureIrqReachesTheChannelDriver) {
  // Injected free-queue exhaustion: pops fail despite supply, the free
  // source goes dry mid-reassembly, and the firmware must raise the
  // kRxFreeLow edge toward the host instead of dropping silently. The
  // channel driver fields it and forces an immediate drain/recycle pass.
  fault::FaultPlane fb(0xB0B);
  fb.arm(fault::Point::kRxBufferExhausted, {.probability = 1.0, .budget = 8});
  NodeConfig cb = make_3000_600_config();
  cb.faults = &fb;
  Testbed tb(make_3000_600_config(), std::move(cb));
  const auto sc = raw_atm();
  Tenant t(tb, 1, 908, 1, sc);

  const auto data = pattern(8000, 5);
  proto::Message m = proto::Message::from_payload(t.tx->space(), data);
  t.tx->authorize(m.scatter());
  sim::Tick tick = 0;
  for (int i = 0; i < 10; ++i) tick = t.tx->send(tick, 908, m);
  tb.run();

  EXPECT_GT(tb.b.rxp.backpressure_irqs(), 0u);
  EXPECT_GT(t.rx->driver().backpressure_events(), 0u);
  // The budget bounds the fault: once it stops firing, traffic flows.
  EXPECT_GT(t.deliveries.size(), 0u);
  EXPECT_EQ(fb.fired(fault::Point::kRxBufferExhausted), 8u);
}

TEST(Qos, OverloadSoakNoStarvationNoLeaks) {
  // The acceptance soak: 4-tenant incast with rate limits, quotas, the
  // drop-incomplete-first policy, AND the chaos plane — transmit queues
  // wedged at random, free-queue pops failing, one tenant bursting.
  // Required outcome: every tenant delivers (no starvation), the run
  // drains (no deadlock, every schedule bounded), and teardown returns
  // every frame (no leaks, even for PDUs dropped mid-reassembly).
  fault::FaultPlane fa(0xA11CE);
  fa.arm(fault::Point::kTxQueueWedge, {.probability = 0.02});
  fault::FaultPlane fb(0xB0B2);
  fb.arm(fault::Point::kRxBufferExhausted, {.probability = 0.05, .budget = 200});
  fault::FaultPlane ft(0x7E4A47);
  ft.arm(fault::Point::kTenantBurst, {.probability = 0.1, .budget = 40});

  NodeConfig ca = make_3000_600_config();
  ca.faults = &fa;
  NodeConfig cb = make_3000_600_config();
  cb.faults = &fb;
  cb.board.rx_drop_policy = board::RxDropPolicy::kDropIncompleteFirst;
  Testbed tb(std::move(ca), std::move(cb));
  const auto sc = raw_atm();

  const std::size_t base_free_a = tb.a.frames.free_frames();
  const std::size_t base_free_b = tb.b.frames.free_frames();

  {
    std::map<int, std::unique_ptr<Tenant>> tenants;
    for (int pair = 1; pair <= 4; ++pair) {
      const auto vci = static_cast<std::uint16_t>(920 + pair);
      tenants.emplace(pair, std::make_unique<Tenant>(tb, pair, vci, 1, sc));
      tb.b.rxp.set_vci_quota(vci, 8);
    }
    // Tenant 1 is the burster (its application, not the hardware, is the
    // fault domain) and gets a board-side rate limit that contains it.
    tenants[1]->tx->set_fault_plane(&ft);
    tb.a.txp.set_rate_limit(1, 20e6, 16 * 1024);
    tb.a.txp.set_rate_limit(2, 20e6, 16 * 1024);

    const auto data = pattern(4000, 6);
    std::map<int, sim::Tick> clock;
    for (int k = 0; k < 50; ++k) {
      for (auto& [pair, t] : tenants) {
        const auto vci = static_cast<std::uint16_t>(920 + pair);
        proto::Message m = proto::Message::from_payload(t->tx->space(), data);
        t->tx->authorize(m.scatter());
        // ~5 Mbps offered per tenant plus whatever the burster adds.
        const auto due = static_cast<sim::Tick>(k) * sim::us(200);
        clock[pair] = t->tx->send(std::max(clock[pair], due), vci, m);
      }
    }
    tb.run();  // must drain: every fault budget and rate timer is bounded

    for (auto& [pair, t] : tenants) {
      EXPECT_GT(t->deliveries.size(), 0u) << "tenant " << pair << " starved";
    }
    // Dropped reassemblies returned their buffers: nothing is still held.
    for (int pair = 1; pair <= 4; ++pair) {
      const auto vci = static_cast<std::uint16_t>(920 + pair);
      EXPECT_EQ(tb.b.rxp.vci_buffers_held(vci), 0u) << "vci " << vci;
    }
    // The chaos actually bit.
    EXPECT_GT(fa.fired(fault::Point::kTxQueueWedge), 0u);
    EXPECT_GT(fb.fired(fault::Point::kRxBufferExhausted), 0u);
    EXPECT_GT(ft.fired(fault::Point::kTenantBurst), 0u);
    EXPECT_EQ(tb.a.txp.wedge_skips(), fa.fired(fault::Point::kTxQueueWedge));

    for (auto& [pair, t] : tenants) {
      t->tx->close();
      t->rx->close();
      EXPECT_EQ(t->tx->driver().wiring().wired_frames(), 0u);
      EXPECT_EQ(t->rx->driver().wiring().wired_frames(), 0u);
    }
    tb.run();  // drain teardown
  }
  // Zero leaked frames, on both the overloaded receiver and the sender.
  EXPECT_EQ(tb.a.frames.free_frames(), base_free_a);
  EXPECT_EQ(tb.b.frames.free_frames(), base_free_b);

  // Cross-counter conservation still holds after quota drops, evictions
  // and wedges: the books must balance even when the data path degrades.
  const std::vector<std::string> violations = osiris::obs::audit(tb);
  for (const std::string& v : violations) ADD_FAILURE() << "audit: " << v;
}

TEST(Qos, QuarantineReclaimsSchedulerAndLimiterState) {
  // A quarantined tenant's DRR deficit, weight, and token bucket must be
  // released with its queue — a later tenant reusing the pair index starts
  // fresh instead of inheriting a drained bucket or stale credit.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const auto sc = raw_atm();
  adc::AdcSupervisor sup(tb.a.eng, tb.a.txp, tb.a.rxp);

  fault::FaultPlane hostile(0xEB11);
  hostile.arm(fault::Point::kAdcGarbageDescriptor, {.probability = 1.0});
  auto bad = std::make_unique<adc::Adc>(deps_of(tb.a), 3,
                                        std::vector<atm::Vci>{930}, 1, sc);
  bad->set_fault_plane(&hostile);
  adc::AdcSupervisor::Budget b;
  b.max_violations = 4;
  b.tx_weight = 7;
  b.tx_bytes_per_sec = 1e6;
  b.tx_burst_bytes = 2048;
  sup.watch(*bad, b);
  ASSERT_TRUE(tb.a.txp.rate_limited(3));

  proto::Message junk = proto::Message::from_payload(
      bad->space(), std::vector<std::uint8_t>(256, 0xEE));
  bad->authorize(junk.scatter());
  sim::Tick t = 0;
  for (int i = 0; i < 12; ++i) t = bad->send(t, 930, junk);
  tb.run();

  ASSERT_TRUE(sup.quarantined(3));
  EXPECT_FALSE(tb.a.txp.queue_attached(3));
  EXPECT_FALSE(tb.a.txp.rate_limited(3)) << "quarantine leaked the bucket";
}

}  // namespace
}  // namespace osiris
