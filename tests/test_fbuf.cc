// fbuf tests: path caching, LRU, transfer cost gap (§3.1).
#include <gtest/gtest.h>

#include "fbuf/fbuf.h"
#include "osiris/node.h"

namespace osiris::fbuf {
namespace {

struct Fx {
  sim::Engine eng;
  host::MachineConfig mc = host::decstation_5000_200();
  mem::PhysicalMemory pm{1 << 24};
  mem::FrameAllocator frames{1 << 24, true, 2};
  tc::TurboChannel bus{eng, mc.bus};
  host::HostCpu cpu{eng, mc, bus};
  FbufPool pool{eng, mc, cpu, frames, FbufPool::Config{}};
};

TEST(Fbuf, FirstAllocationInstallsPath) {
  Fx f;
  const int p = f.pool.create_path({0, 1, 2});
  EXPECT_FALSE(f.pool.is_path_cached(p));
  auto [b, t] = f.pool.alloc(0, p);
  EXPECT_FALSE(b.cached);  // install happens for future allocations
  EXPECT_TRUE(f.pool.is_path_cached(p));
  EXPECT_GT(t, 0u);  // installation took time
  auto [b2, t2] = f.pool.alloc(t, p);
  EXPECT_TRUE(b2.cached);
}

TEST(Fbuf, CachedTransferIsOrderOfMagnitudeCheaper) {
  Fx f;
  const int p = f.pool.create_path({0, 1});
  auto [uncached, t0] = f.pool.alloc(0, p);
  auto [cached, t1] = f.pool.alloc(t0, p);
  const sim::Tick c0 = f.pool.transfer(t1, uncached) - t1;
  const sim::Tick base = f.cpu.resource().free_at();
  const sim::Tick c1 = f.pool.transfer(base, cached) - base;
  EXPECT_GE(c0, 10 * c1) << "paper: order of magnitude difference";
}

TEST(Fbuf, LruEvictsOldestPath) {
  Fx f;
  std::vector<int> paths;
  for (int i = 0; i < 18; ++i) paths.push_back(f.pool.create_path({0, 1}));
  sim::Tick t = 0;
  for (const int p : paths) {
    auto [b, t2] = f.pool.alloc(t, p);
    t = t2;
  }
  // 18 installs into a 16-entry cache: the first two are evicted.
  EXPECT_EQ(f.pool.evictions(), 2u);
  EXPECT_FALSE(f.pool.is_path_cached(paths[0]));
  EXPECT_FALSE(f.pool.is_path_cached(paths[1]));
  EXPECT_TRUE(f.pool.is_path_cached(paths[17]));
}

TEST(Fbuf, MruTouchPreventsEviction) {
  Fx f;
  std::vector<int> paths;
  for (int i = 0; i < 16; ++i) paths.push_back(f.pool.create_path({0, 1}));
  sim::Tick t = 0;
  for (const int p : paths) t = f.pool.alloc(t, p).second;
  // Touch path 0 so it is MRU, then install a 17th.
  t = f.pool.alloc(t, paths[0]).second;
  const int extra = f.pool.create_path({0, 1});
  t = f.pool.alloc(t, extra).second;
  EXPECT_TRUE(f.pool.is_path_cached(paths[0]));
  EXPECT_FALSE(f.pool.is_path_cached(paths[1]));  // LRU victim
}

TEST(Fbuf, FreeReturnsToTheRightPool) {
  Fx f;
  const int p = f.pool.create_path({0, 1});
  sim::Tick t = f.pool.alloc(0, p).second;  // install
  // Drain the cached pool.
  std::vector<Fbuf> held;
  for (std::size_t i = 0; i < FbufPool::Config{}.bufs_per_path; ++i) {
    auto [b, t2] = f.pool.alloc(t, p);
    t = t2;
    EXPECT_TRUE(b.cached);
    held.push_back(b);
  }
  auto [spill, t3] = f.pool.alloc(t, p);
  EXPECT_FALSE(spill.cached) << "pool exhausted -> uncached";
  f.pool.free(t3, held[0]);
  auto [back, t4] = f.pool.alloc(t3, p);
  EXPECT_TRUE(back.cached);
  EXPECT_EQ(back.pa, held[0].pa);
}

TEST(Fbuf, DeliverChargesPerHop) {
  Fx f;
  const int p = f.pool.create_path({0, 1, 2, 3});
  sim::Tick t = f.pool.alloc(0, p).second;
  auto [b, t1] = f.pool.alloc(t, p);
  const sim::Tick one = f.pool.transfer(t1, b) - t1;
  const sim::Tick base = f.cpu.resource().free_at();
  const sim::Tick three = f.pool.deliver(base, b, 3) - base;
  EXPECT_EQ(three, 3 * one);
}

TEST(Fbuf, PathPoolExportsPhysicalBuffers) {
  Fx f;
  const int p = f.pool.create_path({0, 1});
  const auto bufs = f.pool.path_pool(p);
  EXPECT_EQ(bufs.size(), FbufPool::Config{}.bufs_per_path);
  for (const auto& b : bufs) EXPECT_EQ(b.len, mem::kPageSize);
}

}  // namespace
}  // namespace osiris::fbuf
