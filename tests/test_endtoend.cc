// End-to-end integration: two machines, skewed striped link, both
// reassembly strategies, integrity under stress.
#include <gtest/gtest.h>

#include "osiris/harness.h"
#include "osiris/node.h"
#include "proto/message.h"

namespace osiris {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t s) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 23 + s);
  return v;
}

struct SkewCase {
  const char* strategy;
  double skew_us;
};

class SkewE2E : public ::testing::TestWithParam<SkewCase> {};

TEST_P(SkewE2E, IntegrityUnderSkew) {
  const auto [strategy, skew] = GetParam();
  NodeConfig ca = make_3000_600_config();
  NodeConfig cb = make_3000_600_config();
  ca.board.reassembly = strategy;
  cb.board.reassembly = strategy;
  ca.link = link::skewed_config(skew, 17);
  cb.link = link::skewed_config(skew, 18);
  Testbed tb(std::move(ca), std::move(cb));
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});

  std::vector<std::vector<std::uint8_t>> got;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    got.push_back(std::move(d));
  });

  std::vector<std::vector<std::uint8_t>> sent;
  sim::Tick t = 0;
  for (std::uint32_t i = 0; i < 15; ++i) {
    const auto data = pattern(50 + i * 700, static_cast<std::uint8_t>(i));
    proto::Message m = proto::Message::from_payload(
        tb.a.kernel_space, data, (i * 321) % mem::kPageSize);
    t = sa->send(t, vci, m);
    sent.push_back(data);
  }
  tb.run();
  ASSERT_EQ(got.size(), sent.size());
  // Delivery may complete out of order under skew across messages with
  // different sizes; compare as multisets.
  std::sort(got.begin(), got.end());
  std::sort(sent.begin(), sent.end());
  EXPECT_EQ(got, sent);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SkewE2E,
    ::testing::Values(SkewCase{"seq", 0.0}, SkewCase{"seq", 20.0},
                      SkewCase{"seq", 80.0}, SkewCase{"quad", 0.0},
                      SkewCase{"quad", 20.0}, SkewCase{"quad", 80.0}));

TEST(EndToEnd, MixedMachinePairWorks) {
  Testbed tb(make_5000_200_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  std::uint64_t n = 0;
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++n; });
  proto::Message m =
      proto::Message::from_payload(tb.a.kernel_space, pattern(20000, 9));
  sim::Tick t = 0;
  for (int i = 0; i < 5; ++i) t = sa->send(t, vci, m);
  tb.run();
  EXPECT_EQ(n, 5u);
}

TEST(EndToEnd, PingPongHarnessConverges) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  const auto r = harness::ping_pong(tb, *sa, *sb, vci, 1024, 20);
  EXPECT_EQ(r.iterations, 20u);
  EXPECT_GT(r.rtt_us_mean, 10.0);
  EXPECT_LT(r.rtt_us_max - r.rtt_us_min, r.rtt_us_mean * 0.5)
      << "steady-state ping-pong should be stable";
}

TEST(EndToEnd, GeneratorThroughputHarness) {
  sim::Engine eng;
  Node n(eng, make_3000_600_config());
  proto::StackConfig sc;
  auto stack = n.make_stack(sc);
  const auto r = harness::receive_throughput(n, *stack, 600, 16 * 1024, 50, sc);
  EXPECT_EQ(r.messages, 50u);
  EXPECT_GT(r.mbps, 100.0);
  EXPECT_LT(r.mbps, 600.0);
  // Never worse than the traditional one interrupt per PDU (§2.1.2).
  EXPECT_LE(r.interrupts_per_pdu, 1.0);
}

TEST(EndToEnd, InterruptsBatchUnderBursts) {
  // Closely spaced small PDUs arrive faster than the slow machine's
  // per-PDU service time, so several PDUs are drained per interrupt —
  // "much lower than the traditional one-per-PDU" (§2.1.2). Under this
  // deliberate overload the board may also shed PDUs at the free queue.
  sim::Engine eng;
  NodeConfig cfg = make_5000_200_config();
  cfg.board.double_cell_dma_rx = false;
  Node n(eng, cfg);
  proto::StackConfig sc;
  auto stack = n.make_stack(sc);
  const auto r = harness::receive_throughput(n, *stack, 601, 2048, 100, sc);
  EXPECT_GT(r.messages, 20u);
  EXPECT_LT(r.interrupts_per_pdu, 0.5);
}

TEST(EndToEnd, TransmitThroughputHarness) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  const auto r =
      harness::transmit_throughput(tb, tb.a, *sa, *sb, vci, 16 * 1024, 40);
  EXPECT_EQ(r.messages, 40u);
  EXPECT_GT(r.mbps, 100.0);
  EXPECT_LT(r.mbps, 500.0);
}

}  // namespace
}  // namespace osiris
