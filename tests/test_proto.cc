// Protocol stack tests: messages, fragmentation, checksums, reassembly.
#include <gtest/gtest.h>

#include "osiris/node.h"
#include "proto/message.h"
#include "proto/stack.h"

namespace osiris {
namespace {

using proto::Message;

struct Net {
  sim::Engine eng_holder;  // unused; Testbed owns its own engine
  Testbed tb;
  std::unique_ptr<proto::ProtoStack> sa, sb;
  Net(proto::StackConfig sc, NodeConfig ca = make_3000_600_config(),
      NodeConfig cb = make_3000_600_config())
      : tb(std::move(ca), std::move(cb)) {
    sa = tb.a.make_stack(sc);
    sb = tb.b.make_stack(sc);
  }
};

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t s = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 11 + s);
  return v;
}

TEST(Message, HeaderAndSliceAndGather) {
  mem::PhysicalMemory pm(1 << 22);
  mem::FrameAllocator fa(1 << 22, true, 3);
  mem::AddressSpace as(pm, fa, "t");
  const auto data = pattern(5000);
  Message m = Message::from_payload(as, data, 77);
  EXPECT_EQ(m.length(), 5000u);
  const std::vector<std::uint8_t> hdr{1, 2, 3, 4};
  m.push_header(hdr);
  EXPECT_EQ(m.length(), 5004u);
  auto all = m.gather();
  EXPECT_TRUE(std::equal(hdr.begin(), hdr.end(), all.begin()));
  EXPECT_TRUE(std::equal(data.begin(), data.end(), all.begin() + 4));

  Message s = m.slice(4, 100);
  EXPECT_EQ(s.gather(), std::vector<std::uint8_t>(data.begin(), data.begin() + 100));
  m.pop_bytes(4);
  EXPECT_EQ(m.gather(), data);
}

TEST(Message, ScatterCountsPhysicalBuffers) {
  // Figure 1: header + unaligned data over n pages -> n+2 physical buffers
  // (with an interleaved frame allocator).
  mem::PhysicalMemory pm(1 << 22);
  mem::FrameAllocator fa(1 << 22, true, 5);
  mem::AddressSpace as(pm, fa, "t");
  Message m = Message::from_payload(as, pattern(2 * mem::kPageSize), 100);
  m.push_header(pattern(20, 9));
  const auto sc = m.scatter();
  EXPECT_EQ(sc.size(), 4u);  // 1 header + 3 data pages
}

TEST(Stack, UdpRoundTripSmall) {
  Net net{proto::StackConfig{}};
  const atm::Vci vci = net.tb.open_kernel_path();
  std::vector<std::uint8_t> got;
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    got = std::move(d);
  });
  const auto data = pattern(1);
  Message m = Message::from_payload(net.tb.a.kernel_space, data);
  net.sa->send(0, vci, m);
  net.tb.run();
  EXPECT_EQ(got, data);
}

TEST(Stack, UdpRoundTripFragmented) {
  proto::StackConfig sc;
  sc.ip_mtu = 4096 + proto::kIpHeader;  // force fragmentation
  Net net{sc};
  const atm::Vci vci = net.tb.open_kernel_path();
  std::vector<std::uint8_t> got;
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    got = std::move(d);
  });
  const auto data = pattern(40000, 3);
  Message m = Message::from_payload(net.tb.a.kernel_space, data, 123);
  net.sa->send(0, vci, m);
  net.tb.run();
  EXPECT_EQ(got.size(), data.size());
  EXPECT_EQ(got, data);
  EXPECT_EQ(net.sb->delivered(), 1u);
}

TEST(Stack, ChecksumVerifiesCleanPath) {
  proto::StackConfig sc;
  sc.udp_checksum = true;
  Net net{sc};
  const atm::Vci vci = net.tb.open_kernel_path();
  std::vector<std::uint8_t> got;
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    got = std::move(d);
  });
  const auto data = pattern(10000, 5);
  Message m = Message::from_payload(net.tb.a.kernel_space, data, 8);
  net.sa->send(0, vci, m);
  net.tb.run();
  EXPECT_EQ(got, data);
  EXPECT_EQ(net.sb->checksum_failures(), 0u);
}

TEST(Stack, ChecksumCatchesWireCorruption) {
  proto::StackConfig sc;
  sc.udp_checksum = true;
  NodeConfig ca = make_3000_600_config();
  ca.link.payload_err_p = 1.0;  // corrupt every cell a->b
  Net net{sc, std::move(ca)};
  const atm::Vci vci = net.tb.open_kernel_path();
  std::uint64_t delivered = 0;
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    ++delivered;
  });
  Message m = Message::from_payload(net.tb.a.kernel_space, pattern(5000, 6));
  net.sa->send(0, vci, m);
  net.tb.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.sb->checksum_failures(), 1u);
  EXPECT_EQ(net.sb->stale_recoveries(), 0u) << "wire damage is not stale cache";
}

TEST(Stack, RawAtmRoundTrip) {
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  Net net{sc};
  const atm::Vci vci = net.tb.open_kernel_path();
  std::vector<std::uint8_t> got;
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    got = std::move(d);
  });
  const auto data = pattern(4096, 7);
  Message m = Message::from_payload(net.tb.a.kernel_space, data);
  net.sa->send(0, vci, m);
  net.tb.run();
  EXPECT_EQ(got, data);
}

TEST(Stack, BidirectionalTraffic) {
  Net net{proto::StackConfig{}};
  const atm::Vci vci = net.tb.open_kernel_path();
  std::uint64_t at_a = 0, at_b = 0;
  net.sa->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++at_a; });
  net.sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++at_b; });
  Message ma = Message::from_payload(net.tb.a.kernel_space, pattern(2000, 1));
  Message mb = Message::from_payload(net.tb.b.kernel_space, pattern(3000, 2));
  sim::Tick ta = 0, tb2 = 0;
  for (int i = 0; i < 10; ++i) {
    ta = net.sa->send(ta, vci, ma);
    tb2 = net.sb->send(tb2, vci, mb);
  }
  net.tb.run();
  EXPECT_EQ(at_a, 10u);
  EXPECT_EQ(at_b, 10u);
}

TEST(Stack, MultipleVcisAreIndependent) {
  Net net{proto::StackConfig{}};
  const std::uint16_t v1 = net.tb.open_kernel_path();
  const std::uint16_t v2 = net.tb.open_kernel_path();
  std::map<std::uint16_t, std::uint64_t> count;
  net.sb->set_sink([&](sim::Tick, std::uint16_t v, std::vector<std::uint8_t>&&) {
    ++count[v];
  });
  Message m = Message::from_payload(net.tb.a.kernel_space, pattern(1500, 3));
  sim::Tick t = 0;
  for (int i = 0; i < 5; ++i) {
    t = net.sa->send(t, v1, m);
    t = net.sa->send(t, v2, m);
  }
  net.tb.run();
  EXPECT_EQ(count[v1], 5u);
  EXPECT_EQ(count[v2], 5u);
}

}  // namespace
}  // namespace osiris
