// Unit tests for the striped link: striping, bandwidth, skew, errors.
#include <gtest/gtest.h>

#include <map>

#include "atm/sar.h"
#include "link/link.h"

namespace osiris::link {
namespace {

struct Capture {
  struct Arrival {
    sim::Tick at;
    int lane;
    atm::Cell cell;
  };
  std::vector<Arrival> arrivals;
};

std::vector<atm::Cell> make_cells(std::uint32_t pdu_len, atm::Vci vci = 1) {
  std::vector<std::uint8_t> pdu(pdu_len, 0x5A);
  auto cells = atm::segment(pdu, vci, 0);
  for (auto& c : cells) atm::seal(c);
  return cells;
}

TEST(StripedLink, RoundRobinStartsAtLaneZeroPerPdu) {
  sim::Engine eng;
  StripedLink link(eng, LinkConfig{});
  Capture cap;
  link.set_sink([&](int lane, const atm::Cell& c) {
    cap.arrivals.push_back({eng.now(), lane, c});
  });
  sim::Tick t = 0;
  for (int pdu = 0; pdu < 3; ++pdu) {
    for (const auto& c : make_cells(200)) t = link.submit(t, c);
  }
  eng.run();
  for (const auto& a : cap.arrivals) {
    EXPECT_EQ(a.lane, a.cell.seq % atm::kLanes);
  }
}

TEST(StripedLink, CellTimeMatches155MbpsLane) {
  sim::Engine eng;
  StripedLink link(eng, LinkConfig{});
  // 53 bytes at 155.52 Mbps = 2.726 us.
  EXPECT_NEAR(sim::to_us(link.cell_time()), 2.726, 0.01);
}

TEST(StripedLink, AggregateBandwidthIsFourLanes) {
  // A long PDU must clock out at ~4 cells per cell time (~622 Mbps raw).
  sim::Engine eng;
  StripedLink link(eng, LinkConfig{});
  std::uint64_t n = 0;
  sim::Tick last = 0;
  link.set_sink([&](int, const atm::Cell&) {
    ++n;
    last = eng.now();
  });
  const auto cells = make_cells(44000);  // ~1000 cells
  // Offer all cells immediately: each lane clocks its share back to back.
  for (const auto& c : cells) link.submit(0, c);
  eng.run();
  ASSERT_EQ(n, cells.size());
  const double raw_mbps =
      static_cast<double>(n) * atm::kCellWire * 8 / sim::to_us(last) ;
  EXPECT_NEAR(raw_mbps, 622.0, 15.0);
}

TEST(StripedLink, NoSkewPreservesGlobalOrderPerLane) {
  sim::Engine eng;
  StripedLink link(eng, LinkConfig{});
  std::map<int, std::uint16_t> last_seq;
  link.set_sink([&](int lane, const atm::Cell& c) {
    if (last_seq.count(lane) != 0) {
      EXPECT_GT(c.seq, last_seq[lane]);
    }
    last_seq[lane] = c.seq;
  });
  sim::Tick t = 0;
  for (const auto& c : make_cells(10000)) t = link.submit(t, c);
  eng.run();
}

TEST(StripedLink, SkewReordersAcrossLanesButNotWithin) {
  sim::Engine eng;
  StripedLink link(eng, skewed_config(/*skew_us=*/30, /*seed=*/3));
  std::map<int, sim::Tick> last_at;
  std::map<int, std::uint16_t> last_seq;
  bool cross_lane_misorder = false;
  std::uint16_t max_seq_seen = 0;
  link.set_sink([&](int lane, const atm::Cell& c) {
    // Within a lane: arrival times and seqs strictly increase.
    if (last_at.count(lane) != 0) {
      EXPECT_GT(eng.now(), last_at[lane]);
      EXPECT_GT(c.seq, last_seq[lane]);
    }
    last_at[lane] = eng.now();
    last_seq[lane] = c.seq;
    if (c.seq < max_seq_seen) cross_lane_misorder = true;
    max_seq_seen = std::max(max_seq_seen, c.seq);
  });
  sim::Tick t = 0;
  for (const auto& c : make_cells(44 * 400)) t = link.submit(t, c);
  eng.run();
  EXPECT_TRUE(cross_lane_misorder) << "30 us of skew must reorder cells";
}

TEST(StripedLink, CellLossDropsCells) {
  sim::Engine eng;
  LinkConfig cfg;
  cfg.cell_loss_p = 0.5;
  cfg.seed = 7;
  StripedLink link(eng, cfg);
  std::uint64_t n = 0;
  link.set_sink([&](int, const atm::Cell&) { ++n; });
  const auto cells = make_cells(44 * 200);
  sim::Tick t = 0;
  for (const auto& c : cells) t = link.submit(t, c);
  eng.run();
  EXPECT_EQ(n + link.cells_lost(), cells.size());
  EXPECT_GT(link.cells_lost(), cells.size() / 4);
  EXPECT_LT(link.cells_lost(), cells.size() * 3 / 4);
}

TEST(StripedLink, PayloadErrorsBreakCrcButNotHeader) {
  sim::Engine eng;
  LinkConfig cfg;
  cfg.payload_err_p = 1.0;  // corrupt every cell
  StripedLink link(eng, cfg);
  std::uint64_t bad_header = 0, total = 0;
  atm::PduAssembler asmbl;
  link.set_sink([&](int, const atm::Cell& c) {
    ++total;
    if (!atm::header_ok(c)) ++bad_header;
    asmbl.add(c);
  });
  sim::Tick t = 0;
  for (const auto& c : make_cells(300)) t = link.submit(t, c);
  eng.run();
  EXPECT_EQ(bad_header, 0u);
  ASSERT_TRUE(asmbl.complete());
  EXPECT_FALSE(asmbl.finish().has_value()) << "CRC must catch payload damage";
  EXPECT_EQ(link.cells_corrupted(), total);
}

TEST(StripedLink, HeaderErrorsAreDetectable) {
  sim::Engine eng;
  LinkConfig cfg;
  cfg.header_err_p = 1.0;
  StripedLink link(eng, cfg);
  std::uint64_t bad = 0, total = 0;
  link.set_sink([&](int, const atm::Cell& c) {
    ++total;
    if (!atm::header_ok(c)) ++bad;
  });
  sim::Tick t = 0;
  for (const auto& c : make_cells(300)) t = link.submit(t, c);
  eng.run();
  EXPECT_EQ(bad, total);
}

TEST(StripedLink, BackpressureViaReturnedDeparture) {
  sim::Engine eng;
  StripedLink link(eng, LinkConfig{});
  link.set_sink([](int, const atm::Cell&) {});
  const auto cells = make_cells(44 * 8);  // 8 cells, 2 per lane
  sim::Tick t = 0;
  std::vector<sim::Tick> departures;
  for (const auto& c : cells) {
    t = link.submit(t, c);
    departures.push_back(t);
  }
  // Cell 4 uses lane 0 again: its departure is >= one cell time after
  // cell 0's.
  EXPECT_GE(departures[4], departures[0] + link.cell_time());
}

TEST(SkewedConfig, SpreadsAllThreeCauses) {
  const LinkConfig cfg = skewed_config(40.0);
  EXPECT_DOUBLE_EQ(cfg.path_offset_us[0], 0.0);
  EXPECT_DOUBLE_EQ(cfg.path_offset_us[3], 20.0);
  EXPECT_DOUBLE_EQ(cfg.mux_jitter_us, 10.0);
  EXPECT_DOUBLE_EQ(cfg.queue_jitter_us, 10.0);
}

}  // namespace
}  // namespace osiris::link
