// Parallel conservative DES (DESIGN.md §9 and §14): serial-vs-parallel
// equivalence on fig2/fig3-shaped workloads, EOT monotonicity and
// skip-ahead behavior of the async protocol, lookahead edge cases, batch
// dispatch, and the raw EngineGroup machinery. Also the binary ci.sh runs
// under ThreadSanitizer: every cross-thread handoff in the group protocol
// is exercised here.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/spans.h"
#include "osiris/harness.h"
#include "osiris/node.h"
#include "sim/engine.h"
#include "sim/group.h"
#include "sim/spsc.h"
#include "sim/trace.h"

namespace {

using namespace osiris;

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t fnv_str(std::uint64_t h, const char* s) {
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t trace_hash(const sim::Trace& t) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const sim::TraceEvent& e : t.events()) {
    h = fnv(h, e.at);
    h = fnv_str(h, e.component);
    h = fnv_str(h, e.event);
    h = fnv(h, e.a);
    h = fnv(h, e.b);
  }
  return fnv(h, t.recorded());
}

// ------------------------------------------------ engine batch dispatch

TEST(StepTick, FiresWholeTickIncludingSameTickFollowups) {
  sim::Engine eng;
  std::vector<int> order;
  eng.schedule_at(100, [&] {
    order.push_back(1);
    // Scheduled *during* the batch, at the same tick: still part of it.
    eng.schedule_at(100, [&] { order.push_back(3); });
  });
  eng.schedule_at(100, [&] { order.push_back(2); });
  eng.schedule_at(200, [&] { order.push_back(4); });

  EXPECT_EQ(eng.step_tick(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 100u);
  EXPECT_EQ(eng.step_tick(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(eng.step_tick(), 0u);
}

TEST(StepTick, NextEventTimeSeesThroughCancelledTombstones) {
  sim::Engine eng;
  auto h = eng.schedule_timer_at(50, [] {});
  eng.schedule_at(70, [] {});
  ASSERT_EQ(eng.next_event_time(), std::optional<sim::Tick>{50});
  eng.cancel(h);
  EXPECT_EQ(eng.next_event_time(), std::optional<sim::Tick>{70});
  eng.run();
  EXPECT_EQ(eng.next_event_time(), std::nullopt);
}

// ------------------------------------------------ EngineGroup machinery

TEST(EngineGroup, ZeroLookaheadRejected) {
  sim::EngineGroup g(2);
  EXPECT_THROW(g.connect(0, 1, 0), std::logic_error);
  EXPECT_THROW(g.connect(0, 0, 10), std::logic_error);  // self-channel
  EXPECT_THROW(g.connect(0, 2, 10), std::logic_error);  // out of range
}

TEST(EngineGroup, ScheduleRemoteEnforcesLookahead) {
  sim::EngineGroup g(2);
  g.connect(0, 1, 100);
  // No channel declared in this direction.
  EXPECT_THROW(g.schedule_remote(1, 0, 1000, [] {}), std::logic_error);
  // Violates the declared lookahead: at < now + 100.
  EXPECT_THROW(g.schedule_remote(0, 1, 99, [] {}), std::logic_error);
  // Exactly at the bound is legal.
  g.schedule_remote(0, 1, 100, [] {});
  g.run(1);
  EXPECT_EQ(g.stats().remote_events, 1u);
}

TEST(EngineGroup, CrossPartitionOrderingIsConservative) {
  // Partition 0 sends a burst; partition 1 has local events interleaved
  // between the arrival times. The dispatch order on partition 1 must be
  // globally (tick, import-order) sorted regardless of thread count: the
  // consumer never runs past min(inbound EOT) - 1, and imports merge at
  // exactly the tick they carry. (Fused-round counts are timing-dependent
  // at two threads, so only dispatch order is compared.)
  for (const int threads : {1, 2}) {
    sim::EngineGroup g(2);
    g.connect(0, 1, 50);
    std::vector<std::uint64_t> order;
    for (int i = 0; i < 8; ++i) {
      const sim::Tick at = 100 + 100 * static_cast<sim::Tick>(i);
      g.partition(1).schedule_at(at + 10, [&order, at] { order.push_back(at + 10); });
      g.partition(0).schedule_at(at, [&g, &order, at] {
        g.schedule_remote(0, 1, at + 50, [&order, at] { order.push_back(at + 50); });
      });
    }
    g.run(threads);
    ASSERT_EQ(order.size(), 16u) << "threads=" << threads;
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_LT(order[i - 1], order[i]) << "threads=" << threads;
    }
    EXPECT_GE(g.stats().rounds, 1u);  // at least the priming round ran
    EXPECT_EQ(g.stats().remote_events, 8u);
  }
}

TEST(EngineGroup, EotIsMonotoneUnderCancelledTimers) {
  // The published EOT must never move backwards, even when far-future
  // timers are retracted mid-run: a cancelled tombstone must not let the
  // idle null-message (min of local next event and horizon) dip below a
  // value already promised to the consumer.
  for (const int threads : {1, 2}) {
    sim::EngineGroup g(2);
    g.connect(0, 1, 25);
    sim::Engine& src = g.partition(0);
    auto wd1 = src.schedule_timer_at(5'000, [] { ADD_FAILURE(); });
    auto wd2 = src.schedule_timer_at(9'000, [] { ADD_FAILURE(); });
    // Sampled on partition 0's owner thread, the only EOT writer.
    std::vector<sim::Tick> samples;
    int delivered = 0;
    for (int i = 0; i < 12; ++i) {
      const sim::Tick at = 100 + 40 * static_cast<sim::Tick>(i);
      src.schedule_at(at, [&g, &samples, at] {
        samples.push_back(g.eot(0, 1));
        g.schedule_remote(0, 1, at + 25, [] {});
      });
    }
    g.partition(1).schedule_at(600, [&delivered] { ++delivered; });
    src.schedule_at(460, [&] {
      src.cancel(wd1);  // retract while idle EOT may be tracking them
      src.cancel(wd2);
    });
    g.run(threads);
    ASSERT_EQ(samples.size(), 12u) << "threads=" << threads;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      EXPECT_LE(samples[i - 1], samples[i]) << "threads=" << threads;
    }
    EXPECT_EQ(delivered, 1) << "threads=" << threads;
    EXPECT_EQ(g.stats().remote_events, 12u) << "threads=" << threads;
    // After the run the channel promise covers everything that happened.
    EXPECT_GE(g.eot(0, 1), g.now()) << "threads=" << threads;
  }
}

TEST(EngineGroup, SkipAheadCrossesEmptyStretchesInFewRounds) {
  // Events live millions of ticks apart with lookahead 1 — the worst case
  // for lookahead-sized windows, which would need ~1e6 rounds per gap.
  // The fused round's skip-ahead must jump each channel's EOT straight
  // past the global next event, so the whole run costs a handful of
  // rounds. Far-future watchdogs are armed on both partitions and
  // retracted by the last real event: cancelled tombstones must neither
  // fire nor stall the jump target.
  for (const int threads : {1, 2}) {
    sim::EngineGroup g(2);
    g.connect(0, 1, 1);
    g.connect(1, 0, 1);
    sim::Engine& a = g.partition(0);
    sim::Engine& b = g.partition(1);
    auto wd_a = a.schedule_timer_at(50'000'000, [] { ADD_FAILURE(); });
    auto wd_b = b.schedule_timer_at(50'000'000, [] { ADD_FAILURE(); });
    int got = 0;
    for (int i = 1; i <= 3; ++i) {
      const sim::Tick at = 1'000'000 * static_cast<sim::Tick>(i);
      a.schedule_at(at, [&g, &got, at] {
        g.schedule_remote(0, 1, at + 1, [&got] { ++got; });
      });
    }
    a.schedule_at(3'000'000, [&a, &wd_a] { a.cancel(wd_a); });
    b.schedule_at(3'000'001, [&b, &wd_b] { b.cancel(wd_b); });
    g.run(threads);
    EXPECT_EQ(got, 3) << "threads=" << threads;
    EXPECT_EQ(g.now(), 3'000'001u) << "threads=" << threads;
    // Serial execution has a deterministic round count; threaded runs can
    // only add rounds, and even those stay far below the ~3e6 a
    // window-per-lookahead protocol would need.
    EXPECT_LT(g.stats().rounds, 64u) << "threads=" << threads;
  }
}

TEST(EngineGroup, RingOverflowSpillsAndDelivers) {
  // One source event exports far more envelopes than the SPSC ring holds;
  // the producer-side spill must cap the published EOT at the earliest
  // spilled tick and feed everything back — in order — as the ring drains.
  // Serial (one worker, no concurrent consumer) so the spill is
  // deterministic: 3000 pushes inside one dispatch against a 1024 ring.
  constexpr int kExports = 3000;
  sim::EngineGroup g(2);
  g.connect(0, 1, 10);
  int delivered = 0;
  sim::Tick last = 0;
  g.partition(0).schedule_at(1, [&] {
    for (int i = 0; i < kExports; ++i) {
      const sim::Tick at = 11 + static_cast<sim::Tick>(i);
      g.schedule_remote(0, 1, at, [&delivered, &last, at] {
        EXPECT_GE(at, last);
        last = at;
        ++delivered;
      });
    }
  });
  g.run(1);
  EXPECT_EQ(delivered, kExports);
  EXPECT_EQ(g.stats().remote_events, static_cast<std::uint64_t>(kExports));
  EXPECT_GT(g.stats().ring_overflows, 0u);
}

TEST(EngineGroup, RingOverflowDuringAsyncDrainDelivers) {
  // The same burst with a live consumer thread: the consumer drains the
  // ring asynchronously while the producer is still spilling and
  // re-flushing, so envelopes arrive through an arbitrary ring/overflow
  // interleaving. Delivery must still be complete and in canonical
  // (tick, seq) order. How much actually spills depends on scheduling, so
  // the spill count is reported, not asserted.
  constexpr int kExports = 3000;
  sim::EngineGroup g(2);
  g.connect(0, 1, 10);
  int delivered = 0;
  sim::Tick last = 0;
  for (int burst = 0; burst < 3; ++burst) {
    g.partition(0).schedule_at(1 + burst, [&g, &delivered, &last, burst] {
      for (int i = 0; i < kExports; ++i) {
        const sim::Tick at =
            11 + static_cast<sim::Tick>(burst) + 3 * static_cast<sim::Tick>(i);
        g.schedule_remote(0, 1, at, [&delivered, &last, at] {
          EXPECT_GE(at, last);
          last = at;
          ++delivered;
        });
      }
    });
  }
  g.run(2);
  EXPECT_EQ(delivered, 3 * kExports);
  EXPECT_EQ(g.stats().remote_events,
            static_cast<std::uint64_t>(3 * kExports));
}

TEST(EngineGroup, RepeatedRunsReuseTheGroup) {
  sim::EngineGroup g(2);
  g.connect(0, 1, 5);
  g.connect(1, 0, 5);
  int fired = 0;
  g.partition(0).schedule_at(10, [&] {
    g.schedule_remote(0, 1, 20, [&] { ++fired; });
  });
  g.run(2);
  EXPECT_EQ(fired, 1);
  const sim::Tick t1 = g.now();
  // Second leg, scheduled after the first run drained.
  g.partition(1).schedule_at(t1 + 10, [&] {
    g.schedule_remote(1, 0, t1 + 20, [&] { ++fired; });
  });
  g.run(2);
  EXPECT_EQ(fired, 2);
  EXPECT_GT(g.now(), t1);
}

TEST(EngineGroup, FreeRunningPartitionHasNoInbound) {
  // Partition 0 only sends: it has no inbound channel, so it free-runs to
  // completion instead of marching in windows.
  sim::EngineGroup g(2);
  g.connect(0, 1, 1);  // minimal lookahead: worst case for round count
  int got = 0;
  for (int i = 0; i < 64; ++i) {
    g.partition(0).schedule_at(1000 * (1 + static_cast<sim::Tick>(i)), [&g, &got, i] {
      g.schedule_remote(0, 1, 1000 * (1 + static_cast<sim::Tick>(i)) + 1,
                        [&got] { ++got; });
    });
  }
  g.run(2);
  EXPECT_EQ(got, 64);
}

TEST(SpscRing, PushPopFifoAndFullness) {
  sim::SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  int v = -1;
  EXPECT_FALSE(ring.try_push(int{99}));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));  // empty
  EXPECT_TRUE(ring.empty());
}

// ------------------------------------- serial-vs-parallel equivalence

struct WorkloadOut {
  std::uint64_t stats_hash = 0;
  std::uint64_t trace_hash_a = 0;
  std::uint64_t trace_hash_b = 0;
  std::uint64_t dispatched = 0;
  double rtt_us = 0;
};

// Fig2/fig3-shaped: both boards generate receive traffic concurrently,
// then a ping-pong drives the cross-partition links. Per-node traces are
// attached so the equivalence check covers event-level ordering, not just
// final counters.
WorkloadOut run_testbed_workload(int threads, std::uint32_t msg_bytes,
                                 std::uint64_t n_msgs, int pp_iters) {
  sim::Trace ta(1 << 14), tbb(1 << 14);
  NodeConfig ca = make_5000_200_config();
  NodeConfig cb = make_3000_600_config();
  ca.trace = &ta;
  cb.trace = &tbb;
  Testbed tb(ca, cb, threads);
  proto::StackConfig sc;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);

  std::uint64_t bytes_a = 0, bytes_b = 0;
  const auto frags =
      harness::make_udp_fragments(msg_bytes, sc.ip_mtu, sc.udp_checksum);
  tb.a.map_kernel_vci(700);
  tb.b.map_kernel_vci(701);
  sa->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    bytes_a += d.size();
  });
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    bytes_b += d.size();
  });
  tb.a.rxp.start_generator_multi(700, frags, n_msgs, 0);
  tb.b.rxp.start_generator_multi(701, frags, n_msgs, 0);
  tb.run();

  const atm::Vci vci = tb.open_kernel_path();
  const harness::LatencyResult lat =
      harness::ping_pong(tb, *sa, *sb, vci, 512, pp_iters);

  WorkloadOut out;
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (Node* n : {&tb.a, &tb.b}) {
    h = fnv(h, n->eng.dispatched());
    h = fnv(h, n->eng.now());
    h = fnv(h, n->rxp.cells_received());
    h = fnv(h, n->rxp.pdus_completed());
    h = fnv(h, n->rxp.push_batches());
    h = fnv(h, n->rxp.pushes_coalesced());
    h = fnv(h, n->driver.pdus_received());
    h = fnv(h, n->intc.raised());
  }
  h = fnv(h, bytes_a);
  h = fnv(h, bytes_b);
  h = fnv(h, lat.iterations);
  h = fnv(h, static_cast<std::uint64_t>(lat.rtt_us_mean * 1e3));
  out.stats_hash = h;
  out.trace_hash_a = trace_hash(ta);
  out.trace_hash_b = trace_hash(tbb);
  out.dispatched = tb.dispatched();
  out.rtt_us = lat.rtt_us_mean;
  EXPECT_EQ(bytes_a, static_cast<std::uint64_t>(msg_bytes) * n_msgs);
  EXPECT_EQ(bytes_b, static_cast<std::uint64_t>(msg_bytes) * n_msgs);
  return out;
}

TEST(ParallelEquivalence, Fig2Fig3WorkloadBitIdenticalAcrossThreadCounts) {
  // Simulation-visible state — stats, per-node traces, dispatch counts,
  // measured RTTs — must be bit-identical. Fused-round and spill counts
  // are deliberately absent: they describe how the OS interleaved the
  // workers, not what the simulation computed.
  const WorkloadOut serial = run_testbed_workload(1, 8 * 1024, 12, 8);
  const WorkloadOut parallel = run_testbed_workload(2, 8 * 1024, 12, 8);
  EXPECT_EQ(serial.stats_hash, parallel.stats_hash);
  EXPECT_EQ(serial.trace_hash_a, parallel.trace_hash_a);
  EXPECT_EQ(serial.trace_hash_b, parallel.trace_hash_b);
  EXPECT_EQ(serial.dispatched, parallel.dispatched);
  EXPECT_EQ(serial.rtt_us, parallel.rtt_us);
  EXPECT_GT(serial.dispatched, 3000u);  // the workload is non-trivial
}

// Four partitions in a ring (both directions), cascading remote traffic:
// every dispatch is logged as (tick, tag) on the owning worker's thread,
// and the concatenated logs are hashed. The Testbed tops out at two
// partitions, so this is where >2-thread schedules get their equivalence
// coverage.
std::uint64_t four_partition_fingerprint(int threads) {
  constexpr std::size_t kParts = 4;
  sim::EngineGroup g(kParts);
  for (std::size_t p = 0; p < kParts; ++p) {
    g.connect(p, (p + 1) % kParts, 7);
    g.connect(p, (p + 3) % kParts, 13);
  }
  // Thread-confined: logs[p] is touched only by partition p's events.
  std::array<std::vector<std::pair<sim::Tick, std::uint64_t>>, kParts> logs;
  // Each arrival logs itself, then forwards clockwise (always) and
  // counter-clockwise (on a tag-derived subset) until its hop budget is
  // spent. Runs on the destination's thread, so the re-send is a legal
  // single-producer push on the destination's outbound channels.
  std::function<void(std::size_t, sim::Tick, std::uint64_t, int)> arrive =
      [&](std::size_t p, sim::Tick at, std::uint64_t tag, int hops) {
        logs[p].push_back({at, tag});
        if (hops == 0) return;
        const std::size_t cw = (p + 1) % kParts;
        const sim::Tick t_cw = at + 7 + tag % 5;
        g.schedule_remote(p, cw, t_cw, [&arrive, cw, t_cw, tag, hops] {
          arrive(cw, t_cw, tag * 31 + 1, hops - 1);
        });
        if (tag % 3 == 0) {
          const std::size_t ccw = (p + 3) % kParts;
          const sim::Tick t_ccw = at + 13;
          g.schedule_remote(p, ccw, t_ccw, [&arrive, ccw, t_ccw, tag, hops] {
            arrive(ccw, t_ccw, tag * 31 + 2, hops - 1);
          });
        }
      };
  for (std::size_t p = 0; p < kParts; ++p) {
    for (int k = 0; k < 10; ++k) {
      const sim::Tick at = 20 + 15 * static_cast<sim::Tick>(k) +
                           static_cast<sim::Tick>(p);
      const std::uint64_t tag = 1000 + 100 * p + static_cast<std::uint64_t>(k);
      g.partition(p).schedule_at(at, [&arrive, p, at, tag] {
        arrive(p, at, tag, 3);
      });
    }
  }
  g.run(threads);
  std::uint64_t h = 0xcbf29ce484222325ull;
  std::size_t total = 0;
  for (std::size_t p = 0; p < kParts; ++p) {
    for (const auto& [at, tag] : logs[p]) {
      h = fnv(h, at);
      h = fnv(h, tag);
    }
    total += logs[p].size();
  }
  EXPECT_GT(total, 40u * 4u) << "threads=" << threads;  // cascades fired
  return fnv(h, total);
}

TEST(ParallelEquivalence, FourPartitionsBitIdenticalUpToFourThreads) {
  const std::uint64_t serial = four_partition_fingerprint(1);
  for (const int threads : {2, 3, 4}) {
    EXPECT_EQ(serial, four_partition_fingerprint(threads))
        << "threads=" << threads;
  }
}

TEST(ParallelEquivalence, RunIsDeterministicPerThreadCount) {
  const WorkloadOut one = run_testbed_workload(2, 4 * 1024, 6, 4);
  const WorkloadOut two = run_testbed_workload(2, 4 * 1024, 6, 4);
  EXPECT_EQ(one.stats_hash, two.stats_hash);
  EXPECT_EQ(one.trace_hash_a, two.trace_hash_a);
  EXPECT_EQ(one.trace_hash_b, two.trace_hash_b);
}

TEST(ParallelEquivalence, ShardedSpansAndMetricsUnderTwoThreads) {
  // The sharded-observability contract under real partition threads (this
  // binary runs under TSan in CI): each node records spans and metrics on
  // its own worker thread; after run() drains, aggregation on the main
  // thread sees a consistent union, and 2-thread results equal 1-thread.
  auto run_once = [](int threads) {
    obs::PduSpans spans_a, spans_b;
    NodeConfig ca = make_5000_200_config();
    NodeConfig cb = make_3000_600_config();
    ca.spans = &spans_a;
    cb.spans = &spans_b;
    Testbed tb(ca, cb, threads);
    tb.group.enable_profiling();
    proto::StackConfig sc;
    sc.mode = proto::StackMode::kRawAtm;
    auto sa = tb.a.make_stack(sc);
    auto sb = tb.b.make_stack(sc);
    const atm::Vci vci = tb.open_kernel_path();
    harness::ping_pong(tb, *sa, *sb, vci, 2048, 12);

    // Aggregate the two shards by name: counts sum, histograms merge.
    obs::Registry ra, rb;
    spans_a.register_into(ra, "span.");
    spans_b.register_into(rb, "span.");
    const obs::Snapshot s = obs::aggregate({&ra, &rb});
    std::uint64_t e2e_count = 0, e2e_sum = 0;
    for (const auto& h : s.hists) {
      if (h.name == "span.e2e") {
        e2e_count = h.count;
        e2e_sum = h.sum;
      }
    }
    // Profiling ran on the worker threads and merged cleanly.
    const sim::EngineGroup::PhaseProfile prof = tb.group.profile();
    EXPECT_GT(prof.dispatch_ns.count(), 0u);
    return std::pair<std::uint64_t, std::uint64_t>{e2e_count, e2e_sum};
  };

  const auto serial = run_once(1);
  const auto parallel = run_once(2);
  EXPECT_EQ(serial.first, 24u);  // 12 round trips = 24 PDUs
  // Span stamps are simulated ticks, so the aggregated distribution is
  // bit-identical across thread counts.
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelEquivalence, SharedTraceRejectedForMultiThreadRuns) {
  sim::Trace shared;
  NodeConfig ca = make_5000_200_config();
  NodeConfig cb = make_5000_200_config();
  ca.trace = &shared;
  cb.trace = &shared;
  Testbed tb(ca, cb);  // fine at the default 1 thread
  EXPECT_THROW(tb.set_threads(2), std::logic_error);
  ca.trace = nullptr;
  cb.trace = nullptr;
  Testbed tb2(ca, cb, 2);  // per-node (here: absent) traces are fine
  EXPECT_EQ(tb2.threads(), 2);
}

}  // namespace
