// Flow-table subsystem tests: the cache-line-bucketed open-addressed
// table behind early demultiplexing (collision handling, incremental
// rehash, slab-order iteration), the flat OpenMap it pairs with, and the
// board-level guarantees that ride on them — quarantine state surviving
// growth, unmapping a VCI mid-reassembly, and schedule determinism with
// 10^5 mapped VCIs.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "chaos/runner.h"
#include "chaos/schedule.h"
#include "flow/openmap.h"
#include "flow/table.h"
#include "osiris/node.h"

namespace osiris {
namespace {

struct Val {
  std::uint32_t payload = 0;
  std::uint32_t flags = 0;
};

// ------------------------------------------------------------ FlowTable

TEST(FlowTable, CollisionsFillBucketThenGrowthKeepsEveryEntry) {
  // A 1-bucket table funnels every key into the same 8-way bucket; the
  // 9th insert finds the target bucket full and must grow instead of
  // dropping or looping.
  flow::FlowTable<Val> t(/*initial_buckets=*/1);
  for (std::uint32_t k = 1; k <= 32; ++k) {
    auto [v, fresh] = t.insert(k);
    ASSERT_TRUE(fresh) << k;
    v->payload = k * 100;
  }
  EXPECT_EQ(t.size(), 32u);
  EXPECT_GT(t.stats().rehashes, 0u);
  for (std::uint32_t k = 1; k <= 32; ++k) {
    Val* v = t.find(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(v->payload, k * 100);
  }
  EXPECT_EQ(t.find(999), nullptr);
}

TEST(FlowTable, IncrementalRehashUnderLiveTraffic) {
  // Inserts force several growths while finds and erases interleave, so
  // lookups constantly hit keys on both sides of the migration cursor.
  flow::FlowTable<Val> t;
  std::set<std::uint32_t> live;
  std::uint32_t next = 1;
  for (int round = 0; round < 2000; ++round) {
    const std::uint32_t k = next++;
    t.insert(k).first->payload = k;
    live.insert(k);
    if (round % 3 == 0 && live.size() > 10) {
      const std::uint32_t victim = *live.begin();
      EXPECT_TRUE(t.erase(victim));
      live.erase(victim);
    }
    // Every live key must be findable mid-migration.
    if (round % 97 == 0) {
      for (const std::uint32_t v : live) {
        Val* p = t.find(v);
        ASSERT_NE(p, nullptr) << "round " << round << " key " << v;
        EXPECT_EQ(p->payload, v);
      }
    }
  }
  EXPECT_EQ(t.size(), live.size());
  EXPECT_GT(t.stats().rehashes, 1u);
  EXPECT_GT(t.stats().migrated_buckets, 0u);
}

TEST(FlowTable, EntryFlagsSurviveRehash) {
  // Entries live in the slab; growth moves bucket metadata only, so a bit
  // set before several rehashes must read back identically after them
  // (the board's quarantine bit relies on exactly this).
  flow::FlowTable<Val> t;
  t.insert(7).first->flags = 0x2;  // "quarantined"
  for (std::uint32_t k = 1000; k < 5000; ++k) t.insert(k);
  EXPECT_GT(t.stats().rehashes, 0u);
  Val* v = t.find(7);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->flags, 0x2u);
}

TEST(FlowTable, ForEachWalksSlabOrderAndSupportsErase) {
  // Iteration order is slab (insertion) order, independent of the hash —
  // the determinism anchor for serial-vs-threaded fingerprints.
  flow::FlowTable<Val> t;
  const std::uint32_t keys[] = {900001, 3, 500, 123456, 42};
  for (const std::uint32_t k : keys) t.insert(k);
  std::vector<std::uint32_t> seen;
  t.for_each([&](std::uint32_t k, Val&) { seen.push_back(k); });
  EXPECT_EQ(seen, std::vector<std::uint32_t>(std::begin(keys),
                                             std::end(keys)));
  // Erasing the current key mid-iteration is allowed.
  t.for_each([&](std::uint32_t k, Val&) {
    if (k == 500 || k == 42) t.erase(k);
  });
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.find(500), nullptr);
  ASSERT_NE(t.find(123456), nullptr);
}

TEST(FlowTable, FreedSlotsAreReusedWithoutGrowth) {
  flow::FlowTable<Val> t;
  for (std::uint32_t k = 1; k <= 64; ++k) t.insert(k);
  const std::size_t cap = t.capacity();
  for (int round = 0; round < 500; ++round) {
    const auto k = static_cast<std::uint32_t>(1000 + round);
    t.insert(k);
    t.erase(k);
  }
  EXPECT_EQ(t.size(), 64u);
  EXPECT_EQ(t.capacity(), cap) << "churn at stable size must not grow";
}

// -------------------------------------------------------------- OpenMap

TEST(OpenMap, EmplaceFindEraseAndTombstoneReuse) {
  flow::OpenMap<Val> m;
  auto [v, fresh] = m.emplace(0x12345678ULL);
  ASSERT_TRUE(fresh);
  v->payload = 9;
  auto [v2, fresh2] = m.emplace(0x12345678ULL);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(v2->payload, 9u);
  EXPECT_TRUE(m.erase(0x12345678ULL));
  EXPECT_EQ(m.find(0x12345678ULL), nullptr);
  // Reinserting after erase lands on a fresh default-constructed value.
  auto [v3, fresh3] = m.emplace(0x12345678ULL);
  ASSERT_TRUE(fresh3);
  EXPECT_EQ(v3->payload, 0u);
}

TEST(OpenMap, SurvivesGrowthAndEraseIf) {
  flow::OpenMap<Val> m;
  for (std::uint64_t k = 1; k <= 3000; ++k) m.emplace(k).first->payload = 1;
  EXPECT_EQ(m.size(), 3000u);
  for (std::uint64_t k = 1; k <= 3000; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
  }
  const std::size_t removed =
      m.erase_if([](std::uint64_t k, const Val&) { return k % 2 == 0; });
  EXPECT_EQ(removed, 1500u);
  EXPECT_EQ(m.size(), 1500u);
  EXPECT_EQ(m.find(2), nullptr);
  EXPECT_NE(m.find(3), nullptr);
}

// ------------------------------------------------- board-level behavior

struct Fixture {
  sim::Engine eng;
  std::unique_ptr<Node> node;

  explicit Fixture(NodeConfig cfg = make_3000_600_config()) {
    cfg.link.base_delay_us = 1.0;
    node = std::make_unique<Node>(eng, cfg);
    node->out.set_sink(
        [this](int lane, const atm::Cell& c) { node->rxp.on_cell(lane, c); });
  }
};

TEST(FlowBoard, QuarantineSurvivesTableGrowth) {
  // Quarantine one VCI, then map thousands more (several rehashes), then
  // offer traffic on the quarantined VCI: every cell must still drop.
  Fixture f;
  Node& n = *f.node;
  n.rxp.quarantine_vci(77);
  for (atm::Vci v = 100000; v < 105000; ++v) n.map_kernel_vci(v);
  EXPECT_GT(n.rxp.flow_stats().rehashes, 0u);

  std::vector<std::uint8_t> pdu(256, 0xAB);
  n.rxp.start_generator(77, pdu, 5, 0);
  f.eng.run();
  EXPECT_GT(n.rxp.quarantine_drops(), 0u);
  EXPECT_EQ(n.rxp.pdus_completed(), 0u);
}

TEST(FlowBoard, UnmapDuringReassemblyDropsCleanlyAndReleasesState) {
  // A large PDU is in flight when its VCI is unmapped: the tail cells must
  // be dropped as unmapped traffic (no delivery, no crash) and every held
  // buffer must be released once the abort settles.
  Fixture f;
  Node& n = *f.node;
  const atm::Vci vci = 300;
  n.map_kernel_vci(vci);

  std::uint64_t delivered = 0;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView&) {
    ++delivered;
    return at;
  });

  std::vector<std::uint8_t> payload(20000, 0x5C);  // ~420 cells
  const mem::VirtAddr va =
      n.kernel_space.alloc(static_cast<std::uint32_t>(payload.size()), 41);
  n.kernel_space.write(va, payload);
  const auto sc =
      n.kernel_space.scatter(va, static_cast<std::uint32_t>(payload.size()));
  n.driver.send(f.eng.now(), vci, sc);
  // Unmap roughly mid-PDU (the transfer spans hundreds of microseconds).
  f.eng.schedule(sim::us(60), [&] { n.rxp.unmap_vci(vci); });
  f.eng.run();

  EXPECT_EQ(delivered, 0u);
  EXPECT_GT(n.rxp.cells_bad_header(), 0u) << "tail cells land unmapped";
  EXPECT_EQ(n.rxp.vci_buffers_held(vci), 0u);
}

TEST(FlowBoard, FingerprintStableAcrossThreadsWithHundredThousandVcis) {
  // The chaos runner's end-to-end fingerprint, with the flow tables grown
  // to 10^5 mapped VCIs, must be bit-identical between serial and
  // 2-thread runs: growth, incremental migration and iteration order are
  // all schedule-deterministic.
  chaos::Schedule s;  // no faults; the population is the stressor
  s.seed = 12;
  chaos::RunnerConfig cfg;
  cfg.horizon = sim::ms(6);
  cfg.arq_msgs = 20;
  cfg.dgram_msgs = 8;
  cfg.rpc_calls = 4;
  cfg.adc_msgs = 6;
  cfg.bulk_vcis = 100000;
  const chaos::Report serial = chaos::run_schedule(s, cfg);
  EXPECT_TRUE(serial.ok()) << (serial.violations.empty()
                                   ? ""
                                   : serial.violations[0]);
  chaos::RunnerConfig threaded = cfg;
  threaded.threads = 2;
  const chaos::Report t2 = chaos::run_schedule(s, threaded);
  EXPECT_TRUE(t2.ok());
  EXPECT_EQ(serial.fingerprint, t2.fingerprint);
}

}  // namespace
}  // namespace osiris
