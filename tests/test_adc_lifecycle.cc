// ADC lifecycle and protection-scoping tests (§3.2 hardening):
//  * 64-bit authorization math (the addr+len-1 wrap regression);
//  * violation interrupts scoped to the offending channel, and dropped
//    once the channel is closed;
//  * open -> traffic -> close -> reopen on the same pair index with every
//    frame, wired page, and dpram registration back to baseline.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "adc/adc.h"
#include "osiris/node.h"
#include "proto/message.h"

namespace osiris {
namespace {

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t s) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 7 + s);
  return v;
}

TEST(AdcLifecycle, AllowedRejectsWrappingRanges) {
  // Regression: `page_of(addr + len - 1)` wrapped at the top of the 32-bit
  // physical space, making the page loop vacuous — any [addr, addr+len)
  // crossing 2^32 was ALLOWED. The check must do 64-bit end math.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::Adc ca(deps_of(tb.a), 1, {700}, 1, sc);

  // A wrapping range is never allowed, no matter what pages are granted.
  EXPECT_FALSE(ca.allowed(0xFFFFFFF0u, 0x20u));
  EXPECT_FALSE(ca.allowed(0xFFFFFFFFu, 2u));
  EXPECT_FALSE(ca.allowed(0x10u, 0xFFFFFFF0u));

  // The topmost page itself is grantable: authorize() must not wrap
  // either when computing the buffer's last page.
  ca.authorize({mem::PhysBuffer{0xFFFFF000u, 0x1000u}});
  EXPECT_TRUE(ca.allowed(0xFFFFF000u, 0x1000u));
  EXPECT_TRUE(ca.allowed(0xFFFFFFFFu, 1u));
  EXPECT_FALSE(ca.allowed(0xFFFFF000u, 0x1001u));
}

TEST(AdcLifecycle, ViolationHandlerScopedToOffendingChannel) {
  // Channel A's violation must invoke A's handler only — never B's, even
  // though both handlers hang off the same kAccessViolation interrupt.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::Adc ca(deps_of(tb.a), 1, {701}, 1, sc);
  adc::Adc cx(deps_of(tb.a), 2, {702}, 1, sc);  // bystander, same node
  adc::Adc cb(deps_of(tb.b), 1, {701}, 1, sc);

  int a_exceptions = 0, x_exceptions = 0;
  ca.set_violation_handler([&](sim::Tick) { ++a_exceptions; });
  cx.set_violation_handler([&](sim::Tick) { ++x_exceptions; });

  proto::Message m = proto::Message::from_payload(ca.space(), pattern(600, 1));
  // Deliberately NOT authorized: the board rejects A's descriptors.
  ca.send(0, 701, m);
  tb.run();

  EXPECT_GE(a_exceptions, 1);
  EXPECT_EQ(x_exceptions, 0) << "bystander channel saw A's violation";
  EXPECT_GE(ca.violations(), 1u);
  EXPECT_EQ(cx.violations(), 0u);
}

TEST(AdcLifecycle, ViolationAfterCloseIsDropped) {
  // An access-violation interrupt already raised — but not yet serviced —
  // when the channel closes must NOT run the (dead) channel's handler:
  // the interrupt controller resolves handlers at service time.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::Adc ca(deps_of(tb.a), 1, {703}, 1, sc);

  int exceptions = 0;
  ca.set_violation_handler([&](sim::Tick) { ++exceptions; });

  tb.a.intc.raise(board::Irq::kAccessViolation, ca.pair());
  ca.close();  // in-flight delivery: raised before, serviced after
  tb.run();
  EXPECT_EQ(exceptions, 0) << "violation delivered to a closed channel";
  EXPECT_EQ(ca.violations(), 0u);

  // And close() is idempotent.
  ca.close();
  EXPECT_TRUE(ca.closed());
}

TEST(AdcLifecycle, OpenTrafficCloseReopenRestoresBaseline) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;

  const std::size_t base_free_a = tb.a.frames.free_frames();
  const std::size_t base_free_b = tb.b.frames.free_frames();
  const auto data = pattern(5000, 9);

  auto run_once = [&](int round) {
    auto ca = std::make_unique<adc::Adc>(deps_of(tb.a), 4,
                                         std::vector<atm::Vci>{704}, 1, sc);
    auto cb = std::make_unique<adc::Adc>(deps_of(tb.b), 4,
                                         std::vector<atm::Vci>{704}, 1, sc);
    std::uint64_t got = 0;
    cb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
      EXPECT_EQ(d, data) << "round " << round;
      ++got;
    });
    proto::Message m = proto::Message::from_payload(ca->space(), data);
    ca->authorize(m.scatter());
    sim::Tick t = tb.now();  // round 2 starts after round 1's clock
    for (int i = 0; i < 4; ++i) t = ca->send(t, 704, m);
    tb.run();
    EXPECT_EQ(got, 4u) << "round " << round;

    ca->close();
    cb->close();
    // Teardown must leave no wired pages behind on either side.
    EXPECT_EQ(ca->driver().wiring().wired_frames(), 0u) << "round " << round;
    EXPECT_EQ(cb->driver().wiring().wired_frames(), 0u) << "round " << round;
    tb.run();  // drain anything teardown scheduled
  };

  run_once(1);
  // After destruction (close + address-space teardown), every frame the
  // channel pair consumed — driver pool, header arena, message payload —
  // is back in the allocators.
  EXPECT_EQ(tb.a.frames.free_frames(), base_free_a);
  EXPECT_EQ(tb.b.frames.free_frames(), base_free_b);

  // Reopening the SAME pair index must work identically: queue slots,
  // VCI mappings and interrupt handlers from round 1 must be fully gone.
  run_once(2);
  EXPECT_EQ(tb.a.frames.free_frames(), base_free_a);
  EXPECT_EQ(tb.b.frames.free_frames(), base_free_b);
}

TEST(AdcLifecycle, CloseReleasesSchedulerAndRateLimiterState) {
  // A channel carrying a DRR weight and a token-bucket rate limit closes;
  // a fresh tenant reusing the pair index must start with clean scheduler
  // state — no inherited weight, no drained (or banked) bucket. The
  // regression this guards: remove_queue() once detached the queue but
  // left the limiter installed, so the reused pair ran throttled forever.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  const auto data = pattern(8000, 5);

  {
    adc::Adc ca(deps_of(tb.a), 7, {720}, 1, sc);
    adc::Adc cb(deps_of(tb.b), 7, {720}, 1, sc);
    tb.a.txp.set_queue_weight(7, 9);
    tb.a.txp.set_rate_limit(7, /*bytes_per_sec=*/1e6, /*burst_bytes=*/2048);
    ASSERT_TRUE(tb.a.txp.rate_limited(7));
    std::uint64_t got = 0;
    cb.set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
      ++got;
    });
    proto::Message m = proto::Message::from_payload(ca.space(), data);
    ca.authorize(m.scatter());
    sim::Tick t = tb.now();
    for (int i = 0; i < 2; ++i) t = ca.send(t, 720, m);
    tb.run();
    EXPECT_EQ(got, 2u);
    EXPECT_GT(tb.a.txp.rate_deferrals(), 0u) << "the 1 MB/s cap never bit";
  }  // close() via destructors

  EXPECT_FALSE(tb.a.txp.rate_limited(7)) << "remove_queue leaked the bucket";

  // The reused pair runs at full speed: 4 x 8000 B in far less time than
  // the old 1 MB/s cap (~36 ms) would have allowed.
  const std::uint64_t deferrals_before = tb.a.txp.rate_deferrals();
  adc::Adc ca2(deps_of(tb.a), 7, {720}, 1, sc);
  adc::Adc cb2(deps_of(tb.b), 7, {720}, 1, sc);
  std::uint64_t got2 = 0;
  cb2.set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    ++got2;
  });
  proto::Message m2 = proto::Message::from_payload(ca2.space(), data);
  ca2.authorize(m2.scatter());
  const sim::Tick start = tb.now();
  sim::Tick t2 = start;
  for (int i = 0; i < 4; ++i) t2 = ca2.send(t2, 720, m2);
  tb.run();
  EXPECT_EQ(got2, 4u);
  EXPECT_EQ(tb.a.txp.rate_deferrals(), deferrals_before);
  EXPECT_LT(tb.now() - start, sim::ms(5)) << "reused pair still throttled";
}

TEST(AdcLifecycle, CloseMidTrafficLeavesOtherChannelsUnharmed) {
  // The harsher variant: close the receiving channel while PDUs are still
  // in flight toward it. Completions already scheduled for the dead
  // channel must be dropped (accounted), and a neighbour channel's
  // traffic must still arrive byte-exact.
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  auto dying_tx = std::make_unique<adc::Adc>(
      deps_of(tb.a), 5, std::vector<atm::Vci>{710}, 1, sc);
  auto dying_rx = std::make_unique<adc::Adc>(
      deps_of(tb.b), 5, std::vector<atm::Vci>{710}, 1, sc);
  adc::Adc good_tx(deps_of(tb.a), 6, {711}, 1, sc);
  adc::Adc good_rx(deps_of(tb.b), 6, {711}, 1, sc);

  const auto want = pattern(4000, 3);
  std::uint64_t good_got = 0;
  good_rx.set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    EXPECT_EQ(d, want);
    ++good_got;
  });
  std::uint64_t dead_got = 0;
  dying_rx->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {
    ++dead_got;
  });

  proto::Message md = proto::Message::from_payload(dying_tx->space(), want);
  dying_tx->authorize(md.scatter());
  proto::Message mg = proto::Message::from_payload(good_tx.space(), want);
  good_tx.authorize(mg.scatter());

  sim::Tick t = 0;
  for (int i = 0; i < 6; ++i) {
    t = dying_tx->send(t, 710, md);
    t = good_tx.send(t, 711, mg);
  }
  // Kill the receiver while the burst is mid-flight.
  tb.b.eng.schedule(sim::us(100), [&] {
    dying_rx->close();
    dying_rx.reset();
  });
  tb.run();

  EXPECT_EQ(good_got, 6u) << "neighbour channel was perturbed by teardown";
  EXPECT_LT(dead_got, 6u) << "close mid-flight should have cut delivery";
}

}  // namespace
}  // namespace osiris
