// Soak tests: long randomized runs that grind the reassembly strategies,
// the queue machinery and the end-to-end path harder than the unit suites.
// Deterministic seeds; each test stays around a second of wall time.
#include <gtest/gtest.h>

#include <map>

#include "atm/reassembly.h"
#include "atm/sar.h"
#include "osiris/node.h"
#include "proto/message.h"
#include "sim/rng.h"

namespace osiris {
namespace {

TEST(Soak, QuadRouterThousandsOfMixedPdusUnderRandomSkew) {
  // 2000 PDUs of adversarially mixed sizes (heavy on the <4-cell cases
  // that force lane-attribution reasoning), random interleaving.
  sim::Rng rng(0xBADC0DE);
  std::vector<std::uint32_t> sizes;
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t n = rng.chance(0.6)
                                ? static_cast<std::uint32_t>(1 + rng.below(170))
                                : static_cast<std::uint32_t>(1 + rng.below(20000));
    sizes.push_back(n);
    total_bytes += n;
  }

  // Stripe all PDUs into per-lane streams.
  std::array<std::vector<std::pair<atm::Cell, std::uint32_t>>, atm::kLanes> lanes;
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    std::vector<std::uint8_t> pdu(sizes[p]);
    for (std::size_t i = 0; i < pdu.size(); ++i) {
      pdu[i] = static_cast<std::uint8_t>(i * 131 + p * 17);
    }
    for (const atm::Cell& c : atm::segment(pdu, 5, static_cast<std::uint16_t>(p))) {
      lanes[c.seq % atm::kLanes].push_back({c, static_cast<std::uint32_t>(p)});
    }
  }

  // Random merge preserving per-lane order; reassemble; verify every PDU.
  atm::QuadRouter router;
  std::map<std::uint64_t, std::vector<std::uint8_t>> bytes;
  std::uint64_t completed = 0;
  std::array<std::size_t, atm::kLanes> pos{};
  std::size_t remaining = 0;
  for (const auto& l : lanes) remaining += l.size();
  std::vector<atm::Placement> places;
  std::vector<atm::Completion> dones;
  while (remaining > 0) {
    const int lane = static_cast<int>(rng.below(atm::kLanes));
    auto& l = lanes[static_cast<std::size_t>(lane)];
    auto& p = pos[static_cast<std::size_t>(lane)];
    if (p >= l.size()) continue;
    places.clear();
    dones.clear();
    router.on_cell(lane, l[p].first, places, dones);
    ++p;
    --remaining;
    for (const auto& pl : places) {
      auto& buf = bytes[pl.pdu];
      if (buf.size() < pl.offset + pl.cell.len) buf.resize(pl.offset + pl.cell.len);
      std::copy_n(pl.cell.payload.begin(), pl.cell.len, buf.begin() + pl.offset);
    }
    for (const auto& d : dones) {
      const auto it = bytes.find(d.pdu);
      ASSERT_NE(it, bytes.end());
      const auto tr = atm::decode_trailer(it->second);
      ASSERT_TRUE(tr.has_value());
      ASSERT_EQ(atm::Crc32::of({it->second.data(), tr->pdu_len}), tr->crc)
          << "pdu " << d.pdu;
      bytes.erase(it);
      ++completed;
    }
  }
  EXPECT_EQ(completed, sizes.size());
  EXPECT_EQ(router.inflight(), 0u);
  EXPECT_EQ(router.queued(), 0u);
  EXPECT_EQ(router.dropped(), 0u);
}

TEST(Soak, LongDuplexRunConservesEverything) {
  // Sustained bidirectional traffic with mixed sizes over a mildly skewed
  // link; at the end every PDU is accounted for: delivered, or dropped for
  // a counted reason.
  NodeConfig ca = make_3000_600_config();
  NodeConfig cb = make_5000_200_config();
  ca.link = link::skewed_config(8.0, 3);
  Testbed tb(std::move(ca), std::move(cb));
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.udp_checksum = true;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  std::uint64_t a_got = 0, b_got = 0;
  sa->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++a_got; });
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++b_got; });

  sim::Rng rng(44);
  sim::Tick ta = 0, tb2 = 0;
  constexpr int kMsgs = 120;
  for (int i = 0; i < kMsgs; ++i) {
    const auto na = static_cast<std::uint32_t>(1 + rng.below(20000));
    const auto nb = static_cast<std::uint32_t>(1 + rng.below(20000));
    proto::Message ma = proto::Message::from_payload(
        tb.a.kernel_space, std::vector<std::uint8_t>(na, static_cast<std::uint8_t>(i)),
        static_cast<std::uint32_t>(rng.below(4096)));
    proto::Message mb = proto::Message::from_payload(
        tb.b.kernel_space, std::vector<std::uint8_t>(nb, static_cast<std::uint8_t>(i)),
        static_cast<std::uint32_t>(rng.below(4096)));
    ta = sa->send(ta, vci, ma);
    tb2 = sb->send(tb2, vci, mb);
  }
  tb.run();

  // The slower 5000/200 may shed load under this pressure; conservation
  // must hold exactly on both sides.
  const auto b_shed = tb.b.rxp.pdus_dropped_nobuf() + tb.b.rxp.pdus_dropped_recvfull();
  const auto a_shed = tb.a.rxp.pdus_dropped_nobuf() + tb.a.rxp.pdus_dropped_recvfull();
  EXPECT_EQ(a_got, static_cast<std::uint64_t>(kMsgs)) << "fast side loses nothing";
  EXPECT_GT(b_got, 0u);
  if (b_shed == 0) {
    EXPECT_EQ(b_got, static_cast<std::uint64_t>(kMsgs));
  }
  EXPECT_EQ(sa->checksum_failures(), 0u);
  EXPECT_EQ(sb->checksum_failures(), 0u);
  (void)a_shed;
  // No leaked reassembly state on either board.
  EXPECT_EQ(tb.a.rxp.purge_incomplete(0), 0u);
}

TEST(Soak, QueueWraparoundMillionsOfOps) {
  dpram::DualPortRam ram;
  const dpram::QueueLayout lay{0, 7};  // tiny: wraps constantly
  dpram::QueueWriter w(ram, lay, dpram::Side::kHost);
  dpram::QueueReader r(ram, lay, dpram::Side::kBoard);
  sim::Rng rng(7);
  std::uint32_t next_push = 0, next_pop = 0;
  for (int i = 0; i < 1000000; ++i) {
    if (rng.chance(0.5)) {
      if (!w.full()) w.push({next_push, next_push ^ 0x5A5A, 0, 0, 0}), ++next_push;
    } else if (const auto d = r.pop()) {
      ASSERT_EQ(d->addr, next_pop);
      ASSERT_EQ(d->len, next_pop ^ 0x5A5A);
      ++next_pop;
    }
  }
  EXPECT_GT(next_pop, 200000u);
}

}  // namespace
}  // namespace osiris
