// Property and unit tests for the two §2.6 skew-reassembly strategies.
//
// Cells are striped lane = seq % 4 with each PDU restarting at lane 0
// (what the transmit firmware does). Skew means: per-lane order is
// preserved, cross-lane interleaving is arbitrary. Both routers must
// reassemble correctly under ANY such interleaving.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "atm/reassembly.h"
#include "atm/sar.h"
#include "sim/rng.h"

namespace osiris::atm {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint32_t tag) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 29 + tag * 101 + 13);
  }
  return v;
}

struct LanedCell {
  int lane;
  Cell cell;
};

/// Stripes a sequence of PDUs into per-lane streams.
std::array<std::vector<Cell>, kLanes> stripe(const std::vector<std::vector<std::uint8_t>>& pdus) {
  std::array<std::vector<Cell>, kLanes> lanes;
  std::uint16_t pdu_id = 0;
  for (const auto& p : pdus) {
    const auto cells = segment(p, /*vci=*/7, pdu_id++);
    for (const Cell& c : cells) lanes[c.seq % kLanes].push_back(c);
  }
  return lanes;
}

/// Random merge of the lane streams preserving per-lane order — i.e. an
/// arbitrary bounded-skew interleaving.
std::vector<LanedCell> random_merge(const std::array<std::vector<Cell>, kLanes>& lanes,
                                    std::uint64_t seed) {
  sim::Rng rng(seed);
  std::array<std::size_t, kLanes> pos{};
  std::size_t total = 0;
  for (const auto& l : lanes) total += l.size();
  std::vector<LanedCell> out;
  out.reserve(total);
  while (out.size() < total) {
    const int lane = static_cast<int>(rng.below(kLanes));
    const auto li = static_cast<std::size_t>(lane);
    if (pos[li] < lanes[li].size()) {
      out.push_back({lane, lanes[li][pos[li]++]});
    }
  }
  return out;
}

/// Runs a router over the interleaving; returns reassembled PDUs in
/// completion order.
std::vector<std::vector<std::uint8_t>> run_router(CellRouter& r,
                                                  const std::vector<LanedCell>& seq) {
  std::map<std::uint64_t, std::vector<std::uint8_t>> bytes;
  std::vector<std::vector<std::uint8_t>> completed;
  std::vector<Placement> places;
  std::vector<Completion> dones;
  for (const LanedCell& lc : seq) {
    places.clear();
    dones.clear();
    r.on_cell(lc.lane, lc.cell, places, dones);
    for (const Placement& p : places) {
      auto& buf = bytes[p.pdu];
      if (buf.size() < p.offset + p.cell.len) buf.resize(p.offset + p.cell.len);
      std::copy_n(p.cell.payload.begin(), p.cell.len, buf.begin() + p.offset);
    }
    for (const Completion& d : dones) {
      auto it = bytes.find(d.pdu);
      EXPECT_TRUE(it != bytes.end()) << "completion for unknown pdu";
      if (it == bytes.end()) continue;
      EXPECT_EQ(it->second.size(), d.wire_bytes);
      // Strip the trailer and verify the CRC: end-to-end correctness.
      const auto t = decode_trailer(it->second);
      EXPECT_TRUE(t.has_value());
      if (!t || t->pdu_len + kTrailerBytes != d.wire_bytes) {
        ADD_FAILURE() << "bad trailer for pdu " << d.pdu;
        bytes.erase(it);
        continue;
      }
      std::vector<std::uint8_t> pdu(it->second.begin(),
                                    it->second.begin() + t->pdu_len);
      EXPECT_EQ(Crc32::of(pdu), t->crc);
      completed.push_back(std::move(pdu));
      bytes.erase(it);
    }
  }
  return completed;
}

void expect_same_multiset(std::vector<std::vector<std::uint8_t>> got,
                          std::vector<std::vector<std::uint8_t>> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

class RouterParamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RouterParamTest, InOrderDelivery) {
  std::vector<std::vector<std::uint8_t>> pdus;
  for (std::uint32_t i = 0; i < 10; ++i) pdus.push_back(pattern(500 + i * 77, i));
  const auto lanes = stripe(pdus);
  // In-order = strict round robin.
  std::vector<LanedCell> seq;
  std::array<std::size_t, kLanes> pos{};
  bool more = true;
  while (more) {
    more = false;
    for (int l = 0; l < kLanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      if (pos[li] < lanes[li].size()) {
        seq.push_back({l, lanes[li][pos[li]++]});
        more = true;
      }
    }
  }
  // NOTE: strict per-slot round robin is not quite arrival order for
  // mixed-size PDUs, but it is a valid bounded-skew interleaving.
  auto r = make_router(GetParam());
  expect_same_multiset(run_router(*r, seq), pdus);
  EXPECT_EQ(r->dropped(), 0u);
}

TEST_P(RouterParamTest, RandomSkewManySeeds) {
  std::vector<std::vector<std::uint8_t>> pdus;
  for (std::uint32_t i = 0; i < 20; ++i) pdus.push_back(pattern(1 + i * 137 % 3000, i));
  const auto lanes = stripe(pdus);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto r = make_router(GetParam());
    expect_same_multiset(run_router(*r, random_merge(lanes, seed)), pdus);
    EXPECT_EQ(r->inflight(), 0u) << "leftover state, seed " << seed;
  }
}

TEST_P(RouterParamTest, ShortPdusUnderSkew) {
  // PDUs of 1..5 cells are the hard case for the quad strategy (lanes with
  // zero cells must be skipped via bounds).
  std::vector<std::vector<std::uint8_t>> pdus;
  for (std::uint32_t i = 0; i < 40; ++i) {
    pdus.push_back(pattern((i % 5) * kCellPayload + 10, i));
  }
  const auto lanes = stripe(pdus);
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    auto r = make_router(GetParam());
    expect_same_multiset(run_router(*r, random_merge(lanes, seed)), pdus);
  }
}

TEST_P(RouterParamTest, SingleCellPdus) {
  std::vector<std::vector<std::uint8_t>> pdus;
  for (std::uint32_t i = 0; i < 10; ++i) pdus.push_back(pattern(20, i));
  const auto lanes = stripe(pdus);
  auto r = make_router(GetParam());
  expect_same_multiset(run_router(*r, random_merge(lanes, 5)), pdus);
}

TEST_P(RouterParamTest, AdversarialLaneZeroLast) {
  // All of lanes 1-3 arrive before any lane-0 cell: maximal skew against
  // the lane that anchors attribution.
  std::vector<std::vector<std::uint8_t>> pdus;
  for (std::uint32_t i = 0; i < 8; ++i) pdus.push_back(pattern(300 + i * 50, i));
  const auto lanes = stripe(pdus);
  std::vector<LanedCell> seq;
  for (int l = 1; l < kLanes; ++l) {
    for (const Cell& c : lanes[static_cast<std::size_t>(l)]) seq.push_back({l, c});
  }
  for (const Cell& c : lanes[0]) seq.push_back({0, c});
  auto r = make_router(GetParam());
  expect_same_multiset(run_router(*r, seq), pdus);
}

TEST_P(RouterParamTest, LargePduAcrossManyCells) {
  std::vector<std::vector<std::uint8_t>> pdus{pattern(64 * 1024, 1)};
  const auto lanes = stripe(pdus);
  auto r = make_router(GetParam());
  expect_same_multiset(run_router(*r, random_merge(lanes, 9)), pdus);
}

INSTANTIATE_TEST_SUITE_P(Strategies, RouterParamTest,
                         ::testing::Values("seq", "quad"));

TEST(SeqRouter, DuplicateCellDropped) {
  const auto pdu = pattern(500, 1);
  const auto cells = segment(pdu, 7, 0);
  SeqRouter r;
  std::vector<Placement> pl;
  std::vector<Completion> dn;
  r.on_cell(0, cells[0], pl, dn);
  r.on_cell(0, cells[0], pl, dn);  // duplicate
  EXPECT_EQ(r.dropped(), 1u);
}

TEST(SeqRouter, PduIdReuseAfterCompletionIsSafe) {
  // 16-bit pdu_id wraps; reuse after completion must start fresh state.
  const auto p1 = pattern(100, 1);
  const auto p2 = pattern(200, 2);
  SeqRouter r;
  std::vector<Placement> pl;
  std::vector<Completion> dn;
  for (const Cell& c : segment(p1, 7, 42)) r.on_cell(0, c, pl, dn);
  ASSERT_EQ(dn.size(), 1u);
  const auto key1 = dn[0].pdu;
  pl.clear();
  dn.clear();
  for (const Cell& c : segment(p2, 7, 42)) r.on_cell(0, c, pl, dn);
  ASSERT_EQ(dn.size(), 1u);
  EXPECT_NE(dn[0].pdu, key1);  // fresh key despite the same pdu_id
}

TEST(QuadRouter, MakeRouterUnknownStrategyThrows) {
  EXPECT_THROW(make_router("nope"), std::invalid_argument);
}

TEST(QuadRouter, NoSequenceNumbersAreConsulted) {
  // Strategy B must work even when seq/pdu_id fields are zeroed (they are
  // not on the wire in this strategy).
  std::vector<std::vector<std::uint8_t>> pdus;
  for (std::uint32_t i = 0; i < 12; ++i) pdus.push_back(pattern(100 + i * 333, i));
  auto lanes = stripe(pdus);
  std::array<std::vector<Cell>, kLanes> scrubbed;
  for (int l = 0; l < kLanes; ++l) {
    for (Cell c : lanes[static_cast<std::size_t>(l)]) {
      const std::uint16_t keep_seq = c.seq;  // only used to compute lane above
      (void)keep_seq;
      c.pdu_id = 0;
      c.seq = 0;
      scrubbed[static_cast<std::size_t>(l)].push_back(c);
    }
  }
  for (std::uint64_t seed = 7; seed < 17; ++seed) {
    QuadRouter r;
    expect_same_multiset(run_router(r, random_merge(scrubbed, seed)), pdus);
  }
}

TEST(QuadRouter, TwoCellPduLastCellArrivesFirst) {
  // The circular-looking case: the 2-cell PDU's LAST cell (lane 1) arrives
  // before its BOM (lane 0). Attribution of the lane-1 cell needs a lower
  // bound proving the PDU has a second cell — which only the lane-0 cell
  // provides (it carries no LAST flag, so ncells >= 2).
  const auto pdu = pattern(50, 1);  // wire 58 -> 2 cells
  auto lanes = stripe({pdu});
  ASSERT_EQ(lanes[0].size(), 1u);
  ASSERT_EQ(lanes[1].size(), 1u);
  QuadRouter r;
  std::vector<Placement> pl;
  std::vector<Completion> dn;
  r.on_cell(1, lanes[1][0], pl, dn);  // LAST cell first
  EXPECT_TRUE(pl.empty()) << "must wait: the PDU might have had one cell";
  r.on_cell(0, lanes[0][0], pl, dn);
  EXPECT_EQ(pl.size(), 2u);
  ASSERT_EQ(dn.size(), 1u);
  EXPECT_EQ(dn[0].wire_bytes, 58u);
}

TEST(QuadRouter, ThreeCellPduMiddleCellUnlocksLaneTwo) {
  // ncells = 3: the LAST cell is on lane 2 and cannot attribute until the
  // lane-1 cell (no LAST flag => ncells >= 3) has been placed.
  const auto pdu = pattern(100, 2);  // wire 108 -> 3 cells
  auto lanes = stripe({pdu});
  QuadRouter r;
  std::vector<Placement> pl;
  std::vector<Completion> dn;
  r.on_cell(2, lanes[2][0], pl, dn);  // LAST first: ambiguous
  EXPECT_TRUE(pl.empty());
  r.on_cell(0, lanes[0][0], pl, dn);  // min_cells -> 2: still ambiguous
  EXPECT_EQ(pl.size(), 1u);
  EXPECT_EQ(r.queued(), 1u);
  r.on_cell(1, lanes[1][0], pl, dn);  // min_cells -> 3: unlocks lane 2
  EXPECT_EQ(pl.size(), 3u);
  EXPECT_EQ(dn.size(), 1u);
  EXPECT_EQ(r.queued(), 0u);
}

TEST(QuadRouter, ShortPduSkippedOnHigherLanesViaExactCount) {
  // PDU A has 1 cell (lane 0 only); PDU B has 5. B's lane-1 cell can reach
  // the router before A's single cell; it must be attributed to B, not A —
  // provable only once A's LAST cell fixes ncells(A) = 1.
  const auto a = pattern(20, 3);   // 1 cell
  const auto b = pattern(200, 4);  // 5 cells
  auto lanes = stripe({a, b});
  ASSERT_EQ(lanes[1].size(), 1u);  // only B has a lane-1 cell
  QuadRouter r;
  std::vector<Placement> pl;
  std::vector<Completion> dn;
  r.on_cell(1, lanes[1][0], pl, dn);  // B's cell 1, before anything else
  EXPECT_TRUE(pl.empty()) << "could belong to A if A had 2+ cells";
  r.on_cell(0, lanes[0][0], pl, dn);  // A's only cell: LAST -> ncells(A)=1
  EXPECT_EQ(dn.size(), 1u);  // A completes
  // Lane 1 now skips A, but its head is STILL ambiguous: it could belong
  // to B or (if B were single-cell too) to a later PDU. Only B's lane-0
  // cell (no LAST flag -> ncells(B) >= 2) resolves it.
  EXPECT_EQ(pl.size(), 1u);
  EXPECT_EQ(r.queued(), 1u);
  r.on_cell(0, lanes[0][1], pl, dn);  // B's cell 0
  EXPECT_EQ(pl.size(), 3u) << "B's queued lane-1 cell resolves";
  EXPECT_EQ(r.queued(), 0u);
  // Feed the rest of B.
  r.on_cell(2, lanes[2][0], pl, dn);
  r.on_cell(3, lanes[3][0], pl, dn);
  r.on_cell(0, lanes[0][2], pl, dn);
  ASSERT_EQ(dn.size(), 2u);
  EXPECT_EQ(dn[1].wire_bytes, 208u);
  EXPECT_EQ(r.inflight(), 0u);
}

TEST(QuadRouter, QueuedCellsAwaitAttribution) {
  // A lane-1 cell arriving before anything else must wait (ambiguous).
  const auto pdu = pattern(200, 3);  // 5 cells
  auto lanes = stripe({pdu});
  QuadRouter r;
  std::vector<Placement> pl;
  std::vector<Completion> dn;
  r.on_cell(1, lanes[1][0], pl, dn);
  EXPECT_TRUE(pl.empty());
  EXPECT_EQ(r.queued(), 1u);
  // Lane 0's first cell resolves it.
  r.on_cell(0, lanes[0][0], pl, dn);
  EXPECT_EQ(pl.size(), 2u);
  EXPECT_EQ(r.queued(), 0u);
}

}  // namespace
}  // namespace osiris::atm
