// Driver-level tests: wiring, eager/lazy invalidation, recycling.
#include <gtest/gtest.h>

#include "osiris/node.h"

namespace osiris {
namespace {

struct Loop {
  sim::Engine eng;
  std::unique_ptr<Node> node;
  explicit Loop(NodeConfig cfg = make_5000_200_config()) {
    node = std::make_unique<Node>(eng, cfg);
    node->out.set_sink(
        [this](int lane, const atm::Cell& c) { node->rxp.on_cell(lane, c); });
  }
};

TEST(Driver, PagesWiredDuringDmaUnwiredAfter) {
  Loop f;
  Node& n = *f.node;
  n.map_kernel_vci(300);
  n.driver.set_rx_handler([](sim::Tick at, host::RxPduView&) { return at; });
  const mem::VirtAddr va = n.kernel_space.alloc(10000, 50);
  const auto sc = n.kernel_space.scatter(va, 10000);
  n.driver.send(0, 300, sc);
  EXPECT_GT(n.driver.wiring().wired_frames(), 0u);  // wired at send time
  f.eng.run();
  // Reap happens on the next send.
  n.driver.send(f.eng.now(), 300, sc);
  f.eng.run();
  n.driver.send(f.eng.now(), 300, sc);
  f.eng.run();
  EXPECT_LE(n.driver.wiring().wired_frames(), 3u);
}

TEST(Driver, SlowWiringCostsMore) {
  // §2.4: Mach's standard wiring vs the low-level fast path.
  auto run = [](mem::WiringMode mode) {
    NodeConfig cfg = make_5000_200_config();
    cfg.driver.wiring = mode;
    Loop f(cfg);
    Node& n = *f.node;
    n.map_kernel_vci(301);
    n.driver.set_rx_handler([](sim::Tick at, host::RxPduView&) { return at; });
    const mem::VirtAddr va = n.kernel_space.alloc(16384);
    const auto sc = n.kernel_space.scatter(va, 16384);
    const sim::Tick done = n.driver.send(0, 301, sc);
    return done;
  };
  EXPECT_GT(run(mem::WiringMode::kMachStandard),
            run(mem::WiringMode::kFastPath) + sim::us(100));
}

TEST(Driver, EagerInvalidationActuallyInvalidates) {
  NodeConfig cfg = make_5000_200_config();
  cfg.driver.eager_invalidate = true;
  Loop f(cfg);
  Node& n = *f.node;
  n.map_kernel_vci(302);
  bool saw = false;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView& pdu) {
    // After eager invalidation, a cached read returns fresh memory.
    std::vector<std::uint8_t> cached(pdu.pdu_len);
    mem::AccessCost cost;
    pdu.read_cached(n.cache, 0, cached, cost);
    std::vector<std::uint8_t> raw(pdu.pdu_len);
    pdu.read_raw(n.pm, 0, raw);
    EXPECT_EQ(cached, raw);
    saw = true;
    return at;
  });
  std::vector<std::uint8_t> pdu_bytes(3000, 6);
  n.rxp.start_generator(302, pdu_bytes, 2, 0);
  f.eng.run();
  EXPECT_TRUE(saw);
}

TEST(Driver, LazyModeCanServeStaleBytesUntilRecovered) {
  // The §2.3 mechanism end-to-end at driver level: prime the cache with a
  // buffer's old contents, let DMA overwrite it, observe the stale read,
  // then recover_stale() and observe fresh data.
  NodeConfig cfg = make_5000_200_config();
  cfg.driver.rx_buffers = 1;  // reuse the same buffer every PDU
  Loop f(cfg);
  Node& n = *f.node;
  n.map_kernel_vci(303);

  int round = 0;
  bool found_stale = false;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView& pdu) {
    std::vector<std::uint8_t> cached(pdu.pdu_len);
    mem::AccessCost cost;
    pdu.read_cached(n.cache, 0, cached, cost);  // primes the cache
    std::vector<std::uint8_t> raw(pdu.pdu_len);
    pdu.read_raw(n.pm, 0, raw);
    if (cached != raw) {
      found_stale = true;
      n.driver.recover_stale(at, pdu);
      std::vector<std::uint8_t> again(pdu.pdu_len);
      mem::AccessCost c2;
      pdu.read_cached(n.cache, 0, again, c2);
      EXPECT_EQ(again, raw) << "recovery must reveal fresh memory";
    }
    ++round;
    return at;
  });

  // Distinct contents per PDU so reuse of the buffer makes cached bytes
  // visibly stale.
  for (int i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> pdu_bytes(3000, static_cast<std::uint8_t>(0x10 + i));
    n.rxp.start_generator(303, pdu_bytes, 1, 0);
    f.eng.run();
  }
  EXPECT_EQ(round, 4);
  EXPECT_TRUE(found_stale) << "non-coherent cache must go stale on reuse";
}

TEST(Driver, RecycledBuffersAreReused) {
  NodeConfig cfg = make_3000_600_config();
  cfg.driver.rx_buffers = 3;
  Loop f(cfg);
  Node& n = *f.node;
  n.map_kernel_vci(304);
  n.driver.set_rx_handler([](sim::Tick at, host::RxPduView&) { return at; });
  std::vector<std::uint8_t> pdu_bytes(8000, 7);
  n.rxp.start_generator(304, pdu_bytes, 40, 0);
  f.eng.run();
  EXPECT_EQ(n.driver.pdus_received(), 40u) << "3 buffers suffice when recycled";
}

}  // namespace
}  // namespace osiris
