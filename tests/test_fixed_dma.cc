// §2.5.2: the original fixed-length DMA controller vs the page-boundary-
// stop modification.
//
// With fixed-length transfers, a buffer ending mid-cell keeps the DMA
// running into adjacent physical memory: bytes that do not belong to the
// sending application go out on the wire (the paper's NFS-page security
// example), and multi-buffer PDUs acquire padding in the middle that
// breaks reassembly for standard receivers.
#include <gtest/gtest.h>

#include "osiris/node.h"
#include "proto/message.h"

namespace osiris {
namespace {

struct Loop {
  sim::Engine eng;
  std::unique_ptr<Node> node;
  explicit Loop(NodeConfig cfg) {
    node = std::make_unique<Node>(eng, cfg);
    node->out.set_sink(
        [this](int lane, const atm::Cell& c) { node->rxp.on_cell(lane, c); });
  }
};

NodeConfig fixed_cfg() {
  NodeConfig cfg = make_3000_600_config();
  cfg.board.fixed_length_dma_tx = true;
  return cfg;
}

TEST(FixedDma, LeaksAdjacentMemoryOntoTheWire) {
  // Plant a secret in the physical page following the message buffer and
  // watch it appear in a transmitted cell.
  sim::Engine eng;
  NodeConfig cfg = fixed_cfg();
  cfg.interleave_frames = false;  // make "the next page" predictable
  Node n(eng, cfg);

  std::vector<atm::Cell> wire_cells;
  n.out.set_sink([&](int, const atm::Cell& c) { wire_cells.push_back(c); });
  n.map_kernel_vci(400);  // not used; cells only captured

  // A 100-byte message: its single buffer ends mid-cell.
  std::vector<std::uint8_t> data(100, 0x11);
  const mem::VirtAddr va = n.kernel_space.alloc(100);
  n.kernel_space.write(va, data);
  const auto sc = n.kernel_space.scatter(va, 100);

  // The secret lives directly after the buffer in physical memory.
  const std::vector<std::uint8_t> secret{0xDE, 0xAD, 0xBE, 0xEF};
  n.pm.write(sc[0].addr + sc[0].len, secret);

  n.driver.send(0, 400, sc);
  eng.run();

  ASSERT_GE(wire_cells.size(), 3u);  // 3 data cells + trailer
  EXPECT_GE(n.txp.leaked_cells(), 1u);
  EXPECT_GE(n.txp.leaked_bytes(), 32u);  // 132 - 100
  // Cell 2 holds bytes 88..131 of the "stream": 12 real + 32 leaked.
  const atm::Cell& last_data = wire_cells[2];
  EXPECT_EQ(last_data.payload[12], 0xDE);
  EXPECT_EQ(last_data.payload[13], 0xAD);
  EXPECT_EQ(last_data.payload[14], 0xBE);
  EXPECT_EQ(last_data.payload[15], 0xEF);
}

TEST(FixedDma, PageBoundaryStopModeNeverLeaks) {
  sim::Engine eng;
  NodeConfig cfg = make_3000_600_config();  // modified controller
  cfg.interleave_frames = false;
  Node n(eng, cfg);
  std::vector<atm::Cell> wire_cells;
  n.out.set_sink([&](int, const atm::Cell& c) { wire_cells.push_back(c); });
  n.map_kernel_vci(401);

  std::vector<std::uint8_t> data(100, 0x11);
  const mem::VirtAddr va = n.kernel_space.alloc(100);
  n.kernel_space.write(va, data);
  const auto sc = n.kernel_space.scatter(va, 100);
  const std::vector<std::uint8_t> secret{0xDE, 0xAD, 0xBE, 0xEF};
  n.pm.write(sc[0].addr + sc[0].len, secret);
  n.driver.send(0, 401, sc);
  eng.run();

  EXPECT_EQ(n.txp.leaked_cells(), 0u);
  for (const auto& c : wire_cells) {
    for (std::size_t i = 0; i + 1 < c.len; ++i) {
      EXPECT_FALSE(c.payload[i] == 0xDE && c.payload[i + 1] == 0xAD)
          << "secret escaped";
    }
  }
}

TEST(FixedDma, SingleBufferPduStillDeliversWithTrailingGarbage) {
  // The padding sits between the user bytes and the trailer; the PDU's
  // own length field lets the consumer trim it — but the leaked bytes ARE
  // in the delivered buffer.
  Loop f(fixed_cfg());
  Node& n = *f.node;
  n.map_kernel_vci(402);

  std::vector<std::uint8_t> got;
  std::uint32_t got_pdu_len = 0;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView& pdu) {
    got.resize(pdu.pdu_len);
    pdu.read_raw(n.pm, 0, got);
    got_pdu_len = pdu.pdu_len;
    return at;
  });

  std::vector<std::uint8_t> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  const mem::VirtAddr va = n.kernel_space.alloc(100);
  n.kernel_space.write(va, data);
  n.driver.send(0, 402, n.kernel_space.scatter(va, 100));
  f.eng.run();

  // Delivered length is padded up to whole cells (132 = 3 x 44).
  EXPECT_EQ(got_pdu_len, 132u);
  ASSERT_GE(got.size(), 100u);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), got.begin()))
      << "user bytes intact before the padding";
}

TEST(FixedDma, MultiBufferPduGarblesMidStream) {
  // Buffers of non-cell-multiple length put padding in the MIDDLE of the
  // PDU; a standard reassembler produces a different byte stream — the
  // paper's "makes interoperating with other systems impossible".
  Loop f(fixed_cfg());
  Node& n = *f.node;
  n.map_kernel_vci(403);

  std::vector<std::uint8_t> got;
  n.driver.set_rx_handler([&](sim::Tick at, host::RxPduView& pdu) {
    got.resize(pdu.pdu_len);
    pdu.read_raw(n.pm, 0, got);
    return at;
  });

  // Two buffers of 100 bytes each (chain of 2, EOP on the second).
  std::vector<std::uint8_t> data(100, 0xAA);
  const mem::VirtAddr v1 = n.kernel_space.alloc(100);
  const mem::VirtAddr v2 = n.kernel_space.alloc(100);
  n.kernel_space.write(v1, data);
  n.kernel_space.write(v2, data);
  auto sc = n.kernel_space.scatter(v1, 100);
  const auto sc2 = n.kernel_space.scatter(v2, 100);
  sc.insert(sc.end(), sc2.begin(), sc2.end());
  n.driver.send(0, 403, sc);
  f.eng.run();

  // 200 true bytes became 6 cells + trailer = 264 padded bytes, with
  // garbage at offsets 100..131 (mid-PDU).
  ASSERT_EQ(got.size(), 264u);
  EXPECT_FALSE(std::equal(data.begin(), data.end(), got.begin() + 100))
      << "second buffer's bytes must NOT sit at offset 100 (padding does)";
  EXPECT_TRUE(std::equal(data.begin(), data.end(), got.begin() + 132))
      << "second buffer lands at the next cell boundary instead";
}

TEST(FixedDma, UdpStackToleratesEndPaddingButCatchesMidStreamGarble) {
  // End-padding (single-buffer fragments) is trimmed via the IP length;
  // mid-stream padding shifts real bytes and fails the UDP checksum.
  auto run = [](std::uint32_t payload_bytes, std::uint32_t offset_in_page) {
    NodeConfig ca = fixed_cfg();
    NodeConfig cb = make_3000_600_config();
    Testbed tb(std::move(ca), std::move(cb));
    const atm::Vci vci = tb.open_kernel_path();
    proto::StackConfig sc;
    sc.udp_checksum = true;
    auto sa = tb.a.make_stack(sc);
    auto sb = tb.b.make_stack(sc);
    std::uint64_t ok = 0;
    sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++ok; });
    std::vector<std::uint8_t> data(payload_bytes, 0x3C);
    proto::Message m =
        proto::Message::from_payload(tb.a.kernel_space, data, offset_in_page);
    sa->send(0, vci, m);
    tb.run();
    return std::pair{ok, sb->checksum_failures()};
  };
  // Small message: header buffer + payload buffer -> mid-stream padding
  // between them -> checksum failure, nothing delivered.
  const auto [ok, fails] = run(500, 64);
  EXPECT_EQ(ok, 0u);
  EXPECT_EQ(fails, 1u);
}

}  // namespace
}  // namespace osiris
