// Observability subsystem: Log2Histogram edges, the metrics registry and
// sharded aggregation, PDU lifecycle spans end to end (including under ARQ
// retransmission), Chrome trace export, and the cross-counter audit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "osiris/audit.h"
#include "osiris/harness.h"
#include "osiris/node.h"
#include "osiris/stats.h"
#include "proto/arq.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace osiris {
namespace {

// ------------------------------------------------------------ histogram

TEST(Log2Histogram, EmptyIsAllZeros) {
  sim::Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Log2Histogram, SingleSampleEveryQuantileIsTheSample) {
  sim::Log2Histogram h;
  h.record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234u);
  EXPECT_EQ(h.max(), 1234u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1234.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1234.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 1234.0);
}

TEST(Log2Histogram, QuantilesAreClampedToObservedRange) {
  sim::Log2Histogram h;
  for (std::uint64_t v = 100; v <= 200; ++v) h.record(v);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double est = h.quantile(q);
    EXPECT_GE(est, 100.0) << "q=" << q;
    EXPECT_LE(est, 200.0) << "q=" << q;
  }
  // A log2 estimate should still land in the right ballpark.
  EXPECT_NEAR(h.quantile(0.5), 150.0, 64.0);
}

TEST(Log2Histogram, OverflowBucketHoldsHugeValues) {
  sim::Log2Histogram h;
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max();
  h.record(0);  // bit_width(0) == 0: the zero bucket
  h.record(huge);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), huge);
  // The top bucket's upper edge is the observed max, not 2^64.
  EXPECT_LE(h.quantile(1.0), static_cast<double>(huge));
  EXPECT_GE(h.quantile(1.0), h.quantile(0.0));
}

TEST(Log2Histogram, MergeMatchesUnionOfSamples) {
  sim::Log2Histogram a, b, u;
  for (std::uint64_t v = 1; v <= 64; ++v) {
    (v % 2 == 0 ? a : b).record(v * 17);
    u.record(v * 17);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), u.count());
  EXPECT_EQ(a.sum(), u.sum());
  EXPECT_EQ(a.min(), u.min());
  EXPECT_EQ(a.max(), u.max());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), u.quantile(0.5));
}

// ---------------------------------------------------------------- trace

TEST(Trace, ZeroCapacityIsClampedToOne) {
  sim::Trace t(0);  // regression: used to divide by ring size 0
  t.record(10, "x", "a");
  t.record(20, "x", "b");
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_STREQ(evs[0].event, "b");
  EXPECT_EQ(t.recorded(), 2u);
  EXPECT_EQ(t.dropped_events(), 1u);
}

// ------------------------------------------------------------- registry

TEST(Registry, CountersGaugesAndHistogramsSnapshot) {
  obs::Registry r;
  std::uint64_t hits = 0;
  r.counter("cache.hits", &hits);
  r.gauge("load", [] { return 0.75; });
  sim::Log2Histogram* lat = r.histogram("latency", "ns");
  hits = 41;
  ++hits;
  lat->record(100);
  lat->record(300);

  const obs::Snapshot s = r.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].name, "cache.hits");
  EXPECT_EQ(s.counters[0].value, 42u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].value, 0.75);
  ASSERT_EQ(s.hists.size(), 1u);
  EXPECT_EQ(s.hists[0].count, 2u);
  EXPECT_EQ(s.hists[0].unit, "ns");

  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"cache.hits\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.to_text().find("cache.hits"), std::string::npos);
}

TEST(Registry, ReRegisteringANameReplaces) {
  obs::Registry r;
  std::uint64_t a = 1, b = 2;
  r.counter("c", &a);
  r.counter("c", &b);
  const obs::Snapshot s = r.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].value, 2u);
}

TEST(Registry, AggregateSumsCountersAndMergesHistograms) {
  obs::Registry shard0, shard1;
  std::uint64_t c0 = 10, c1 = 32;
  shard0.counter("events", &c0);
  shard1.counter("events", &c1);
  shard0.histogram("lat")->record(8);
  shard1.histogram("lat")->record(1024);
  shard0.gauge("util", [] { return 0.25; });
  shard1.gauge("util", [] { return 0.50; });

  const obs::Snapshot s = obs::aggregate({&shard0, &shard1});
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].value, 42u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].value, 0.75);
  ASSERT_EQ(s.hists.size(), 1u);
  EXPECT_EQ(s.hists[0].count, 2u);
  EXPECT_EQ(s.hists[0].min, 8u);
  EXPECT_EQ(s.hists[0].max, 1024u);
}

TEST(Registry, ShardedRecordingUnderTwoThreadsAggregatesCleanly) {
  // The sharding contract: one registry per thread, no cross-thread
  // writes, aggregate on read after joining. (test_parallel_des covers the
  // same shape under TSan with real engine partitions.)
  obs::Registry shards[2];
  std::uint64_t counts[2] = {0, 0};
  shards[0].counter("n", &counts[0]);
  shards[1].counter("n", &counts[1]);
  sim::Log2Histogram* hists[2] = {shards[0].histogram("v"),
                                  shards[1].histogram("v")};
  std::thread workers[2];
  for (int w = 0; w < 2; ++w) {
    workers[w] = std::thread([w, &counts, &hists] {
      for (std::uint64_t i = 1; i <= 10000; ++i) {
        ++counts[w];
        hists[w]->record(i);
      }
    });
  }
  for (auto& t : workers) t.join();

  const obs::Snapshot s = obs::aggregate({&shards[0], &shards[1]});
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].value, 20000u);
  ASSERT_EQ(s.hists.size(), 1u);
  EXPECT_EQ(s.hists[0].count, 20000u);
  EXPECT_EQ(s.hists[0].min, 1u);
  EXPECT_EQ(s.hists[0].max, 10000u);
}

// ----------------------------------------------------------------- spans

TEST(PduSpans, PingPongStampsEveryStage) {
  obs::PduSpans spans_a, spans_b;
  NodeConfig ca = make_3000_600_config();
  NodeConfig cb = make_3000_600_config();
  ca.spans = &spans_a;
  cb.spans = &spans_b;
  Testbed tb(ca, cb);
  const atm::Vci vci = tb.open_kernel_path();
  spans_b.enable_vci(vci);
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  const auto lat = harness::ping_pong(tb, *sa, *sb, vci, 1024, 20);
  ASSERT_EQ(lat.iterations, 20u);

  obs::PduSpans merged;
  merged.merge_stages(spans_a);
  merged.merge_stages(spans_b);
  // 20 round trips = 20 PDUs a->b plus 20 b->a (the first send included).
  const sim::Log2Histogram& e2e = merged.stage(obs::Stage::kEndToEnd);
  EXPECT_EQ(e2e.count(), 40u);
  for (const obs::Stage st :
       {obs::Stage::kEnqueueToDpram, obs::Stage::kSegment, obs::Stage::kWire,
        obs::Stage::kReassemble, obs::Stage::kRxDma, obs::Stage::kDeliver}) {
    EXPECT_GT(merged.stage(st).count(), 0u) << obs::stage_name(st);
  }
  // Stages nest inside the end-to-end span, so their medians must not
  // exceed its max.
  EXPECT_LE(merged.stage(obs::Stage::kWire).quantile(0.5),
            static_cast<double>(e2e.max()));
  // The per-VCI family on the b side saw the a->b half.
  const sim::Log2Histogram* fam = spans_b.vci_e2e(vci);
  ASSERT_NE(fam, nullptr);
  EXPECT_EQ(fam->count(), 20u);
  // e2e is bounded by the measured round trip.
  EXPECT_LT(e2e.quantile(0.999) / 1e6, lat.rtt_us_max);
  // The span ledger kept the completed spans for export.
  EXPECT_EQ(spans_b.spans_recorded(), 20u);
  EXPECT_EQ(spans_b.completed_spans().size(), 20u);
}

TEST(PduSpans, ArqRetransmissionsKeepLedgerConsistent) {
  // 1% cell loss forces ARQ retransmits: the same logical payload crosses
  // more than once, tags wrap, and some PDUs abort (AAL CRC fails on a
  // PDU missing a cell). The ledger must absorb all of it — every
  // delivered PDU gets an e2e sample, aborted ones contribute nothing.
  obs::PduSpans spans_a, spans_b;
  NodeConfig ca = make_3000_600_config();
  ca.board.reassembly = "seq";
  ca.link.cell_loss_p = 0.01;
  ca.link.seed = 7;
  ca.spans = &spans_a;
  NodeConfig cb = make_3000_600_config();
  cb.board.reassembly = "seq";
  cb.spans = &spans_b;
  Testbed tb(ca, cb);
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});

  proto::ArqConfig ac;
  ac.window = 8;
  ac.rto = sim::ms(2);
  ac.max_retries = 20;
  proto::ArqEndpoint arq_a(tb.a.eng, *sa, tb.a.kernel_space, tb.a.cpu,
                           tb.a.cfg.machine, ac);
  proto::ArqEndpoint arq_b(tb.b.eng, *sb, tb.b.kernel_space, tb.b.cpu,
                           tb.b.cfg.machine, ac);
  arq_a.bind(vci);
  arq_b.bind(vci);

  constexpr std::uint32_t kMessages = 400;
  std::uint32_t delivered = 0;
  arq_b.set_sink(
      [&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) { ++delivered; });
  std::vector<std::uint8_t> payload(200, 0x5A);
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    tb.a.eng.schedule_at(static_cast<sim::Tick>(i) * sim::us(150),
                         [&tb, &arq_a, &payload, vci] {
                           arq_a.send(tb.a.eng.now(), vci, payload);
                         });
  }
  tb.run();
  ASSERT_EQ(delivered, kMessages);
  EXPECT_GT(arq_a.retransmissions(), 0u);

  // Every PDU the b driver delivered (data + ARQ acks toward a) carries a
  // span; retransmitted copies are distinct wire PDUs, so counts can
  // exceed kMessages but never the driver's own delivery count.
  const sim::Log2Histogram& e2e_b = spans_b.stage(obs::Stage::kEndToEnd);
  EXPECT_GE(e2e_b.count(), static_cast<std::uint64_t>(kMessages));
  EXPECT_LE(e2e_b.count(), tb.b.driver.pdus_received());
  const sim::Log2Histogram& e2e_a = spans_a.stage(obs::Stage::kEndToEnd);
  EXPECT_GT(e2e_a.count(), 0u);  // the ack stream back to a
  EXPECT_LE(e2e_a.count(), tb.a.driver.pdus_received());
  // Loss means some tx stamps never completed; the ledger stays bounded
  // (7-bit tag space per VCI) instead of growing with the loss count.
  EXPECT_EQ(spans_b.stage(obs::Stage::kDeliver).count(), e2e_b.count());
}

TEST(PduSpans, SharedSpansRejectedForMultiThreadRuns) {
  obs::PduSpans shared;
  NodeConfig ca = make_3000_600_config();
  NodeConfig cb = make_3000_600_config();
  ca.spans = &shared;
  cb.spans = &shared;
  Testbed tb(ca, cb);
  EXPECT_THROW(tb.set_threads(2), std::logic_error);
}

// ---------------------------------------------------------------- export

TEST(ChromeTrace, ExportsInstantsAndSpans) {
  sim::Trace trace(64);
  trace.record(sim::us(1), "drv", "irq", 3, 0);

  obs::PduSpans spans;
  spans.rx_pushed(42, 1, /*origin=*/sim::us(10), /*pushed=*/sim::us(14));
  spans.rx_delivered(42, 1, /*at=*/sim::us(15));

  std::ostringstream os;
  obs::write_chrome_trace(os, {{"a", &trace, &spans}, {"b", nullptr, nullptr}});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"drv.irq\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("pdu vci=42"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("a/pdu"), std::string::npos);
  // Balanced JSON (crude but catches missed commas/brackets).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ----------------------------------------------------------------- audit

TEST(Audit, CleanRunBalances) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  harness::ping_pong(tb, *sa, *sb, vci, 2048, 10);
  const std::vector<std::string> violations = obs::audit(tb);
  for (const std::string& v : violations) ADD_FAILURE() << v;
}

TEST(Audit, NodeStatsRegistryRendersWholeNode) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  harness::ping_pong(tb, *sa, *sb, vci, 1024, 5);

  obs::Registry reg;
  register_metrics(reg, tb.a, "a.");
  register_metrics(reg, tb.b, "b.");
  const obs::Snapshot s = reg.snapshot();
  double a_sent = -1, b_received = -1;
  for (const auto& g : s.gauges) {
    if (g.name == "a.tx.pdus_sent") a_sent = g.value;
    if (g.name == "b.host.pdus_received") b_received = g.value;
  }
  EXPECT_GT(a_sent, 0.0);
  EXPECT_GT(b_received, 0.0);
  EXPECT_NE(s.to_json().find("a.tx.pdus_sent"), std::string::npos);
}

}  // namespace
}  // namespace osiris
