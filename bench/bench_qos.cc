// Per-VCI QoS under incast: fairness and goodput vs offered load.
//
// N tenants on node A each stream fixed-size messages over their own ADC
// to node B — the classic incast shape, with the striped link as the
// shared bottleneck. The transmit firmware arbitrates the tenants' queues
// by deficit round robin over equal weights (board/tx.cc), so as offered
// load sweeps from half capacity to 10:1 oversubscription the per-tenant
// goodputs should stay near-equal (Jain fairness index ~1) and the
// aggregate should hold at link capacity instead of collapsing.
//
// A second scenario gives four tenants 4:2:1:1 weights at 2x load and
// reports the measured goodput ratios — the DRR quantum in action.
//
// Results go to stdout and to BENCH_qos.json. CI checks the 10x row's
// Jain index (>= 0.9) and the aggregate-goodput retention vs the 0.9x
// row (>= 0.8).
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "adc/adc.h"
#include "bench_json.h"
#include "obs/spans.h"
#include "osiris/node.h"
#include "proto/message.h"
#include "sim/time.h"

namespace {

using namespace osiris;

constexpr std::size_t kBytes = 2000;        // message payload
constexpr double kCapacityMbps = 300.0;     // ~ the paper's sustained tx rate
constexpr double kDurationMs = 20.0;        // posting window (simulated)

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

struct RunResult {
  std::vector<double> goodput_mbps;  // per tenant
  std::vector<std::uint64_t> delivered;
  std::vector<double> latency_us_p50;  // per tenant, e2e PDU spans
  std::vector<double> latency_us_p99;
  double aggregate_mbps = 0.0;
  double jain = 1.0;
  std::uint64_t rate_deferrals = 0;
  std::uint64_t rx_drops = 0;
  std::uint64_t events = 0;
};

double jain_index(const std::vector<double>& x) {
  double sum = 0.0, sq = 0.0;
  for (const double v : x) {
    sum += v;
    sq += v * v;
  }
  if (sq <= 0.0) return 0.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sq);
}

/// Runs one incast: `weights.size()` tenants, aggregate offered load of
/// `multiplier` x kCapacityMbps split evenly, DRR weights as given.
/// `bytes` sizes the messages — larger PDUs push the bottleneck from the
/// host posting path onto the link, where the DRR arbitrates.
RunResult run_incast(double multiplier, const std::vector<std::uint32_t>& weights,
                     std::size_t bytes = kBytes) {
  // PDU lifecycle spans: one per node. The tenants' ADC channel drivers
  // stamp their own sends (per-channel FIFO on node A) and deliveries
  // (keyed by VCI on node B), so per-tenant latency falls out of the
  // per-VCI end-to-end families.
  obs::PduSpans spans_a, spans_b;
  NodeConfig ca = make_3000_600_config();
  NodeConfig cb = make_3000_600_config();
  ca.spans = &spans_a;
  cb.spans = &spans_b;
  Testbed tb(ca, cb);
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;

  const int n = static_cast<int>(weights.size());
  const auto horizon = static_cast<sim::Tick>(kDurationMs * 1e9);
  struct Tenant {
    std::unique_ptr<adc::Adc> tx, rx;
    std::uint64_t delivered = 0;    // everything (backlog drains after the
                                    // window; used for loss accounting)
    std::uint64_t in_window = 0;    // delivered before the horizon — the
                                    // tenant's actual service share under
                                    // contention
  };
  std::map<int, Tenant> tenants;
  for (int pair = 1; pair <= n; ++pair) {
    const auto vci = static_cast<std::uint16_t>(900 + pair);
    Tenant t;
    t.tx = std::make_unique<adc::Adc>(deps_of(tb.a), pair,
                                      std::vector<atm::Vci>{vci}, 1, sc);
    t.rx = std::make_unique<adc::Adc>(deps_of(tb.b), pair,
                                      std::vector<atm::Vci>{vci}, 1, sc);
    tb.a.txp.set_queue_weight(pair, weights[static_cast<std::size_t>(pair - 1)]);
    spans_b.enable_vci(vci);
    t.tx->driver().set_spans(&spans_a, /*tx_channel=*/pair);
    t.rx->driver().set_spans(&spans_b);
    tenants.emplace(pair, std::move(t));
  }
  for (auto& [pair, t] : tenants) {
    Tenant* tp = &t;
    t.rx->set_sink([tp, horizon](sim::Tick at, std::uint16_t,
                                 std::vector<std::uint8_t>&&) {
      ++tp->delivered;
      if (at <= horizon) ++tp->in_window;
    });
  }

  // Equal per-tenant offered load: message interval such that the sum over
  // tenants is multiplier x capacity. Posting is closed-loop — send()
  // returns the host-side post completion time, so a backlogged queue
  // throttles its poster instead of growing without bound.
  const double per_tenant_bps = multiplier * kCapacityMbps * 1e6 / n;
  const double interval_ps = static_cast<double>(bytes) * 8.0 / per_tenant_bps * 1e12;

  std::vector<std::uint8_t> payload(bytes, 0x51);
  std::map<int, sim::Tick> clock;
  for (std::uint32_t k = 0;; ++k) {
    const auto due = static_cast<sim::Tick>(static_cast<double>(k) * interval_ps);
    if (due >= horizon) break;
    for (auto& [pair, t] : tenants) {
      const auto vci = static_cast<std::uint16_t>(900 + pair);
      std::memcpy(payload.data(), &k, sizeof(k));
      proto::Message m = proto::Message::from_payload(t.tx->space(), payload);
      t.tx->authorize(m.scatter());
      clock[pair] = t.tx->send(std::max(clock[pair], due), vci, m);
    }
  }
  tb.run();

  RunResult r;
  for (auto& [pair, t] : tenants) {
    r.delivered.push_back(t.delivered);
    r.goodput_mbps.push_back(sim::mbps(t.in_window * bytes, horizon));
    r.aggregate_mbps += r.goodput_mbps.back();
    const auto vci = static_cast<std::uint16_t>(900 + pair);
    const sim::Log2Histogram* h = spans_b.vci_e2e(vci);
    // Tick = picoseconds, so quantile/1e6 is microseconds.
    r.latency_us_p50.push_back(h != nullptr ? h->quantile(0.50) / 1e6 : 0.0);
    r.latency_us_p99.push_back(h != nullptr ? h->quantile(0.99) / 1e6 : 0.0);
  }
  r.jain = jain_index(r.goodput_mbps);
  r.rate_deferrals = tb.a.txp.rate_deferrals();
  r.rx_drops = tb.b.rxp.pdus_dropped_nobuf() + tb.b.rxp.pdus_dropped_quota();
  r.events = tb.dispatched();
  return r;
}

void emit_row(const char* scenario, double multiplier, const RunResult& r,
              benchjson::Writer& json) {
  double lo = r.goodput_mbps.empty() ? 0.0 : r.goodput_mbps[0];
  double hi = lo;
  for (const double g : r.goodput_mbps) {
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  std::printf("  %-9s | %5.1fx | %7.1f | %6.4f | %7.1f | %7.1f | %8llu\n",
              scenario, multiplier, r.aggregate_mbps, r.jain, lo, hi,
              static_cast<unsigned long long>(r.rx_drops));
  json.open_object();
  json.field("scenario", std::string(scenario));
  json.field("offered_multiplier", multiplier);
  json.field("tenants", static_cast<std::uint64_t>(r.goodput_mbps.size()));
  json.field("aggregate_goodput_mbps", r.aggregate_mbps);
  json.field("jain", r.jain);
  json.open_array("tenant_goodput_mbps");
  for (std::size_t i = 0; i < r.goodput_mbps.size(); ++i) {
    json.open_object();
    json.field("mbps", r.goodput_mbps[i]);
    if (i < r.latency_us_p50.size()) {
      json.field("latency_us_p50", r.latency_us_p50[i]);
      json.field("latency_us_p99", r.latency_us_p99[i]);
    }
    json.close_object();
  }
  json.close_array();
  json.field("rate_deferrals", r.rate_deferrals);
  json.field("rx_drops", r.rx_drops);
  json.close_object();
}

}  // namespace

int main() {
  std::puts("Per-VCI QoS under incast: DRR fairness and goodput vs offered");
  std::printf("  load; 8 tenants x %zu B messages, %.0f ms window, link as\n"
              "  bottleneck (simulated time)\n\n",
              kBytes, kDurationMs);
  std::puts("  scenario  | offer  | agg Mb  | Jain   | min Mb  | max Mb  | rx drops");
  std::puts("  ----------+--------+---------+--------+---------+---------+---------");

  benchjson::WallTimer wall;
  const std::vector<std::uint32_t> equal(8, 1);
  const std::vector<double> sweep{0.5, 0.9, 2.0, 10.0};

  benchjson::Writer json;
  json.open_object();
  json.field("bench", std::string("qos"));
  json.field("bytes", static_cast<std::uint64_t>(kBytes));
  json.field("capacity_mbps_nominal", kCapacityMbps);
  json.open_array("rows");

  double baseline_agg = 0.0, incast_agg = 0.0, incast_jain = 0.0;
  std::uint64_t events = 0;
  for (const double m : sweep) {
    const RunResult r = run_incast(m, equal);
    emit_row("equal", m, r, json);
    events += r.events;
    if (m == 0.9) baseline_agg = r.aggregate_mbps;
    if (m == 10.0) {
      incast_agg = r.aggregate_mbps;
      incast_jain = r.jain;
    }
  }

  // Weighted scenario: 4:2:1:1 at 2x oversubscription. Heavier tenants
  // outrun lighter ones (capped by their own posting rate — DRR is
  // work-conserving, so a tenant that can't fill its share donates it).
  // Bigger messages keep four posters ahead of the link, so the DRR — not
  // the host posting path — decides who sends.
  const RunResult w = run_incast(2.0, {4, 2, 1, 1}, /*bytes=*/8000);
  emit_row("weighted", 2.0, w, json);
  events += w.events;

  json.close_array();
  const double retention = baseline_agg > 0 ? incast_agg / baseline_agg : 0.0;
  json.field("jain_incast", incast_jain);
  json.field("goodput_retention", retention);
  if (!w.goodput_mbps.empty() && w.goodput_mbps[3] > 0) {
    json.field("weighted_ratio_4_to_1", w.goodput_mbps[0] / w.goodput_mbps[3]);
  }
  benchjson::perf_fields(json, wall.seconds(), events, 1);
  json.close_object();

  std::printf("\n  10x incast: Jain=%.4f (want >= 0.9), goodput retention vs"
              " 0.9x = %.2f (want >= 0.8)\n\n",
              incast_jain, retention);
  json.dump("qos");
  return 0;
}
