// §2.4 ablation: page wiring on the transmit path.
//
// Every page handed to the board for DMA must be wired first. Mach's
// standard wiring service protects the page-table pages too — far more
// than DMA needs — which the paper found "surprisingly" expensive; the
// driver switched to a low-level fast path. This bench shows the effect on
// both the per-send latency and sustained transmit throughput.
#include <cstdio>

#include "osiris/harness.h"
#include "osiris/node.h"
#include "proto/message.h"

namespace {

using namespace osiris;

double send_latency_us(bool alpha, mem::WiringMode mode, std::uint32_t bytes) {
  NodeConfig cfg = alpha ? make_3000_600_config() : make_5000_200_config();
  cfg.driver.wiring = mode;
  Testbed tb(std::move(cfg),
             alpha ? make_3000_600_config() : make_5000_200_config());
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  sb->set_sink([](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {});
  proto::Message m = proto::Message::from_payload(
      tb.a.kernel_space, std::vector<std::uint8_t>(bytes, 0x31));
  const sim::Tick done = sa->send(0, vci, m);
  tb.run();
  return sim::to_us(done);
}

double tx_mbps(bool alpha, mem::WiringMode mode) {
  NodeConfig cfg = alpha ? make_3000_600_config() : make_5000_200_config();
  cfg.driver.wiring = mode;
  Testbed tb(std::move(cfg), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  return harness::transmit_throughput(tb, tb.a, *sa, *sb, vci, 64 * 1024, 20)
      .mbps;
}

}  // namespace

int main() {
  std::puts("Page wiring: Mach standard service vs low-level fast path");
  std::puts("(paper 2.4: wiring sits on the driver's critical path)");
  std::puts("");
  std::puts("machine    msg size   send CPU time, fast   send CPU time, Mach std");
  for (const bool alpha : {false, true}) {
    for (const std::uint32_t bytes : {4096u, 16 * 1024u, 64 * 1024u}) {
      std::printf("%-9s  %5u KB       %7.1f us             %7.1f us\n",
                  alpha ? "3000/600" : "5000/200", bytes / 1024,
                  send_latency_us(alpha, mem::WiringMode::kFastPath, bytes),
                  send_latency_us(alpha, mem::WiringMode::kMachStandard, bytes));
    }
  }
  std::puts("");
  std::puts("Sustained transmit throughput (64 KB messages):");
  for (const bool alpha : {false, true}) {
    std::printf("  %-9s fast path %6.1f Mbps;  Mach standard %6.1f Mbps\n",
                alpha ? "3000/600" : "5000/200",
                tx_mbps(alpha, mem::WiringMode::kFastPath),
                tx_mbps(alpha, mem::WiringMode::kMachStandard));
  }
  std::puts("");
  std::puts("The standard service wires page-table pages as well — stronger");
  std::puts("guarantees than DMA needs; the low-level interface restores the");
  std::puts("critical path (paper: \"acceptable performance\").");
  return 0;
}
