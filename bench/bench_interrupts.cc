// §2.1.2 ablation: the interrupt discipline.
//   * one interrupt per burst of incoming PDUs (empty -> non-empty only),
//   * no transmit-completion interrupts (tail-pointer watching),
//   * 75 us interrupt service vs 200 us PDU service on the 5000/200.
// Reports interrupts per PDU across arrival regimes.
#include <cstdio>

#include "osiris/harness.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

harness::ThroughputResult rx_run(bool alpha, std::uint32_t msg_bytes,
                                 std::uint64_t msgs) {
  NodeConfig c = alpha ? make_3000_600_config() : make_5000_200_config();
  sim::Engine eng;
  Node n(eng, c);
  proto::StackConfig sc;
  auto stack = n.make_stack(sc);
  return harness::receive_throughput(n, *stack, 700, msg_bytes, msgs, sc);
}

}  // namespace

int main() {
  std::puts("Interrupt discipline (paper 2.1.2)");
  std::puts("");
  std::puts("Receive side: interrupts asserted only on the receive queue's");
  std::puts("empty -> non-empty transition; one per burst, not one per PDU.");
  std::puts("");
  std::puts("machine    msg size   PDUs   interrupts   irq/PDU");
  struct Case {
    bool alpha;
    const char* name;
    std::uint32_t bytes;
    std::uint64_t msgs;
  };
  const Case cases[] = {
      {false, "5000/200", 2 * 1024, 150},   // closely spaced small PDUs
      {false, "5000/200", 16 * 1024, 60},   // MTU-sized PDUs
      {false, "5000/200", 64 * 1024, 30},   // fragment trains
      {true, "3000/600", 2 * 1024, 150},
      {true, "3000/600", 16 * 1024, 60},
      {true, "3000/600", 64 * 1024, 30},
  };
  for (const Case& c : cases) {
    const auto r = rx_run(c.alpha, c.bytes, c.msgs);
    std::printf("%-9s  %5u KB   %4llu     %5llu      %.3f\n", c.name,
                c.bytes / 1024, static_cast<unsigned long long>(r.pdus),
                static_cast<unsigned long long>(r.interrupts),
                r.interrupts_per_pdu);
  }

  std::puts("");
  std::puts("Transmit side: completion signalled by the tail pointer advance;");
  std::puts("interrupts only when a full queue drains to half empty.");
  {
    Testbed tb(make_3000_600_config(), make_3000_600_config());
    const atm::Vci vci = tb.open_kernel_path();
    auto sa = tb.a.make_stack(proto::StackConfig{});
    auto sb = tb.b.make_stack(proto::StackConfig{});
    tb.a.intc.reset_stats();
    const auto r =
        harness::transmit_throughput(tb, tb.a, *sa, *sb, vci, 16 * 1024, 200);
    std::printf("  200 PDUs sent; sender interrupts: %llu (all tx-half-empty), "
                "suspensions: %llu, delivered: %llu\n",
                static_cast<unsigned long long>(tb.a.intc.raised()),
                static_cast<unsigned long long>(tb.a.driver.tx_suspensions()),
                static_cast<unsigned long long>(r.messages));
  }
  std::puts("");
  std::puts("Cost context (5000/200): interrupt service 75 us vs UDP/IP PDU");
  std::puts("service ~200 us — suppressing interrupts matters.");
  return 0;
}
