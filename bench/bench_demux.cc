// Early-demultiplexing scaling: one flow-table probe vs the five-map
// baseline, 10^2 to 10^6 active VCIs.
//
// The paper's early demultiplexing (§3.1) keys every arriving cell by its
// VCI. Before the flow table, the receive processor's per-cell decision
// consulted five separate containers (quarantine set, VCI->channel map,
// per-VCI router map, quota map, held-buffer map); now it is a single
// probe into a cache-line-bucketed flow table whose entry consolidates all
// of that state. This bench measures the demultiplexing decision alone,
// with the surrounding firmware stripped away, across table populations
// from 10^2 to 10^6 VCIs.
//
// Workload model: cells of one PDU arrive back-to-back on the same VCI
// (the transmit side segments a PDU into a burst of cells), with a bounded
// number of PDUs interleaved in flight at once — even a host with 10^6
// open paths sees only tens of concurrently arriving PDUs. Each stream
// interleaves kInflight active VCIs round-robin, retiring one after
// kBurst cells and replacing it with a fresh VCI drawn from the full
// population. The baseline replays the exact same cell sequence against
// the five-map layout.
//
// Emitted gates (bench/floors.tsv):
//   demux_ns_per_cell   flow-table ns/cell at 10^4 VCIs      (ceiling)
//   demux_flatness      max/min flow ns/cell over the sweep  (ceiling <= 2)
//   demux_speedup_1e4   baseline/flow ns-per-cell at 10^4    (floor >= 2)
#include <cstdint>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_json.h"
#include "flow/table.h"

namespace {

// The receive processor's consolidated per-VCI state (board/rx.h VciState
// without the owning router pointer; a raw pointer stands in for it here).
struct DemuxState {
  std::int32_t free_id = -1;
  std::int32_t fallback = -1;
  std::int32_t recv_idx = -1;
  std::uint32_t flags = 0;
  std::uint32_t quota = 0;
  std::uint32_t held = 0;
  void* router = nullptr;
};

// The pre-consolidation layout: the same state scattered over the five
// containers the old per-cell path consulted.
struct FiveMapBaseline {
  std::unordered_set<std::uint32_t> quarantined;
  struct Mapping {
    std::int32_t free_id = -1;
    std::int32_t fallback = -1;
    std::int32_t recv_idx = -1;
  };
  std::unordered_map<std::uint32_t, Mapping> vci_map;
  std::unordered_map<std::uint32_t, void*> routers;
  std::unordered_map<std::uint32_t, std::uint32_t> quota;
  std::unordered_map<std::uint32_t, std::uint32_t> held;
};

constexpr int kInflight = 32;  // VCIs with a PDU concurrently arriving
constexpr int kBurst = 21;     // cells per PDU (~one 9KB PDU at 48B/cell)

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4B9F9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// N distinct 24-bit VCIs, deterministic.
std::vector<std::uint32_t> make_population(std::size_t n) {
  std::vector<std::uint32_t> vcis;
  vcis.reserve(n);
  std::vector<bool> used(1u << 24, false);
  std::uint64_t rng = 0x0512CA4EULL + n;
  while (vcis.size() < n) {
    const auto v = static_cast<std::uint32_t>(splitmix(rng) & 0xFFFFFF);
    if (v == 0 || used[v]) continue;
    used[v] = true;
    vcis.push_back(v);
  }
  return vcis;
}

/// The interleaved-burst cell stream: index sequence into `pop`.
std::vector<std::uint32_t> make_stream(const std::vector<std::uint32_t>& pop,
                                       std::size_t cells) {
  std::vector<std::uint32_t> stream;
  stream.reserve(cells);
  std::uint64_t rng = 0xD0E5ULL + pop.size();
  struct Slot {
    std::uint32_t vci;
    int left;
  };
  std::vector<Slot> inflight;
  for (int i = 0; i < kInflight; ++i) {
    inflight.push_back({pop[splitmix(rng) % pop.size()], kBurst});
  }
  std::size_t turn = 0;
  while (stream.size() < cells) {
    Slot& s = inflight[turn % inflight.size()];
    stream.push_back(s.vci);
    if (--s.left == 0) {
      s = {pop[splitmix(rng) % pop.size()], kBurst};
    }
    ++turn;
  }
  return stream;
}

struct Timing {
  double ns_per_cell = 0;
  std::uint64_t checksum = 0;  // defeats dead-code elimination
};

Timing time_flow(osiris::flow::FlowTable<DemuxState>& table,
                 const std::vector<std::uint32_t>& stream) {
  benchjson::WallTimer t;
  std::uint64_t sum = 0;
  for (const std::uint32_t vci : stream) {
    // The accept_cell decision: one probe yields everything.
    DemuxState* st = table.find(vci);
    if (st == nullptr || (st->flags & 2u) != 0) continue;  // drop
    sum += st->quota + st->held +
           static_cast<std::uint32_t>(st->free_id + st->recv_idx) +
           (st->router != nullptr ? 1 : 0);
    ++st->held;
    --st->held;
  }
  return {t.seconds() * 1e9 / static_cast<double>(stream.size()), sum};
}

Timing time_maps(FiveMapBaseline& b, const std::vector<std::uint32_t>& stream) {
  benchjson::WallTimer t;
  std::uint64_t sum = 0;
  for (const std::uint32_t vci : stream) {
    // The old accept_cell + quota path: five independent lookups.
    if (b.quarantined.count(vci) != 0) continue;
    const auto mit = b.vci_map.find(vci);
    if (mit == b.vci_map.end()) continue;
    const auto rit = b.routers.find(vci);
    const auto qit = b.quota.find(vci);
    auto hit = b.held.find(vci);
    sum += (qit != b.quota.end() ? qit->second : 0) +
           (hit != b.held.end() ? hit->second : 0) +
           static_cast<std::uint32_t>(mit->second.free_id +
                                      mit->second.recv_idx) +
           (rit != b.routers.end() ? 1 : 0);
    if (hit != b.held.end()) {
      ++hit->second;
      --hit->second;
    }
  }
  return {t.seconds() * 1e9 / static_cast<double>(stream.size()), sum};
}

}  // namespace

int main() {
  using osiris::flow::FlowTable;

  constexpr std::size_t kCells = 2'000'000;
  // The five-map baseline stops at 10^5: five node-based containers at
  // 10^6 entries cost hundreds of MB for a number the 10^4 gate already
  // establishes. The flow table runs the full sweep.
  constexpr std::size_t kBaselineMax = 100'000;
  const std::size_t sizes[] = {100, 1'000, 10'000, 100'000, 1'000'000};

  benchjson::WallTimer wall;
  benchjson::Writer w;
  w.open_object();
  w.open_array("sweep");

  double ns_at_1e4 = 0, maps_at_1e4 = 0;
  double ns_min = 1e30, ns_max = 0;
  std::uint64_t total_cells = 0;

  std::printf("%10s %14s %14s %9s %12s\n", "vcis", "flow ns/cell",
              "maps ns/cell", "speedup", "probe/find");
  for (const std::size_t n : sizes) {
    const std::vector<std::uint32_t> pop = make_population(n);
    const std::vector<std::uint32_t> stream = make_stream(pop, kCells);

    FlowTable<DemuxState> table;
    for (const std::uint32_t vci : pop) {
      DemuxState& st = *table.insert(vci).first;
      st.flags = 1;  // mapped
      st.free_id = 0;
      st.recv_idx = 0;
      st.quota = 64;
      st.router = &table;  // stand-in for the owned CellRouter
    }
    const auto lookups0 = table.stats().lookups;
    const auto probed0 = table.stats().probed_buckets;
    const Timing ft = time_flow(table, stream);
    const double probe_per_find =
        static_cast<double>(table.stats().probed_buckets - probed0) /
        static_cast<double>(table.stats().lookups - lookups0);

    Timing mt{};
    if (n <= kBaselineMax) {
      FiveMapBaseline base;
      for (const std::uint32_t vci : pop) {
        base.vci_map[vci] = {0, -1, 0};
        base.routers[vci] = &base;
        base.quota[vci] = 64;
        base.held[vci] = 0;
      }
      mt = time_maps(base, stream);
      if (mt.checksum != ft.checksum) {
        std::fprintf(stderr, "checksum mismatch at %zu vcis\n", n);
        return 1;
      }
    }

    if (n == 10'000) {
      ns_at_1e4 = ft.ns_per_cell;
      maps_at_1e4 = mt.ns_per_cell;
    }
    ns_min = std::min(ns_min, ft.ns_per_cell);
    ns_max = std::max(ns_max, ft.ns_per_cell);
    total_cells += (n <= kBaselineMax ? 2 : 1) * kCells;

    std::printf("%10zu %14.2f %14.2f %9.2f %12.3f\n", n, ft.ns_per_cell,
                mt.ns_per_cell,
                ft.ns_per_cell > 0 ? mt.ns_per_cell / ft.ns_per_cell : 0.0,
                probe_per_find);

    w.open_object();
    w.field("vcis", static_cast<std::uint64_t>(n));
    w.field("flow_ns_per_cell", ft.ns_per_cell);
    if (n <= kBaselineMax) w.field("maps_ns_per_cell", mt.ns_per_cell);
    w.field("probe_per_find", probe_per_find);
    w.field("occupancy", static_cast<std::uint64_t>(table.size()));
    w.field("capacity", static_cast<std::uint64_t>(table.capacity()));
    w.field("rehashes", table.stats().rehashes);
    w.close_object();
  }
  w.close_array();

  const double flatness = ns_min > 0 ? ns_max / ns_min : 0.0;
  const double speedup = ns_at_1e4 > 0 ? maps_at_1e4 / ns_at_1e4 : 0.0;
  w.field("demux_ns_per_cell", ns_at_1e4);
  w.field("demux_flatness", flatness);
  w.field("demux_speedup_1e4", speedup);
  benchjson::perf_fields(w, wall.seconds(), total_cells, 1);
  w.close_object();

  std::printf("\nns/cell @1e4 %.2f   flatness %.2fx   speedup @1e4 %.2fx\n",
              ns_at_1e4, flatness, speedup);
  if (!w.dump("demux")) return 1;
  return 0;
}
