// Robustness ablation: what reliability costs above an unreliable adaptor.
//
// The paper's layering argument (§1) puts reliability in a protocol above
// the driver, not in the device. This bench quantifies that choice two
// ways:
//   * simulated time: goodput and retransmission overhead of the ARQ
//     layer as wire cell loss sweeps from 0 to 5% (graceful degradation,
//     not a cliff);
//   * wall clock: the cost of a FaultPlane hook — one pointer compare
//     when no plane is attached, one branchy counter update when armed —
//     i.e. what always-on fault instrumentation costs the simulator.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "fault/fault.h"
#include "osiris/node.h"
#include "proto/arq.h"
#include "sim/time.h"

namespace {

using namespace osiris;

constexpr std::uint32_t kMessages = 1000;
constexpr std::size_t kBytes = 200;
constexpr sim::Duration kGap = sim::us(50);

void arq_loss_row(double loss, benchjson::Writer& json) {
  NodeConfig ca = make_3000_600_config();
  ca.board.reassembly = "seq";  // loss-tolerant reassembly (see §2.6 tests)
  ca.link.cell_loss_p = loss;
  ca.link.seed = 7;
  NodeConfig cb = make_3000_600_config();
  cb.board.reassembly = "seq";
  Testbed tb(ca, cb);
  // The receiver's watchdog heartbeat also drives reassembly GC; without
  // it, partial PDUs from lost EOM cells pin 16 KB receive buffers until
  // the pool runs dry and the link collapses (the cliff this table would
  // otherwise show at 2%).
  tb.b.start_watchdog(sim::ms(1), sim::ms(5), /*until=*/sim::sec(1));
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.udp_checksum = true;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);

  proto::ArqConfig ac;
  ac.window = 16;
  ac.rto = sim::ms(1);
  ac.max_rto = sim::ms(10);
  ac.max_retries = 30;
  proto::ArqEndpoint arq_a(tb.a.eng, *sa, tb.a.kernel_space, tb.a.cpu,
                           tb.a.cfg.machine, ac);
  proto::ArqEndpoint arq_b(tb.b.eng, *sb, tb.b.kernel_space, tb.b.cpu,
                           tb.b.cfg.machine, ac);
  arq_a.bind(vci);
  arq_b.bind(vci);

  std::uint64_t delivered = 0;
  sim::Tick last = 0;
  std::vector<double> latencies_us;  // per-message send-to-deliver time
  arq_b.set_sink([&](sim::Tick at, std::uint16_t,
                     std::vector<std::uint8_t>&& d) {
    // The first four payload bytes carry the send index; the send time is
    // exactly index * kGap, so latency needs no side table.
    std::uint32_t idx = 0;
    std::memcpy(&idx, d.data(), sizeof(idx));
    const sim::Tick sent = static_cast<sim::Tick>(idx) * kGap;
    latencies_us.push_back(sim::to_us(at - sent));
    ++delivered;
    last = at;
  });

  std::vector<std::uint8_t> payload(kBytes, 0x5A);
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    tb.a.eng.schedule_at(static_cast<sim::Tick>(i) * kGap, [&, i] {
      std::memcpy(payload.data(), &i, sizeof(i));
      arq_a.send(tb.a.eng.now(), vci, payload);
    });
  }
  tb.run();

  const double goodput =
      last > 0 ? sim::mbps(delivered * kBytes, last) : 0.0;
  const double p50 = benchjson::quantile(latencies_us, 0.50);
  const double p99 = benchjson::quantile(latencies_us, 0.99);
  std::printf("  %4.1f%% | %5llu/%u | %6llu | %9.1f | %7.1f | %7.1f | %s\n",
              loss * 100.0, static_cast<unsigned long long>(delivered),
              kMessages, static_cast<unsigned long long>(arq_a.retransmissions()),
              goodput, p50, p99, arq_a.dead(vci) ? "DEAD" : "alive");

  json.open_object();
  json.field("loss", loss);
  json.field("delivered", delivered);
  json.field("sent", static_cast<std::uint64_t>(kMessages));
  json.field("retransmissions", arq_a.retransmissions());
  json.field("goodput_mbps", goodput);
  json.field("p50_latency_us", p50);
  json.field("p99_latency_us", p99);
  json.field("dead", arq_a.dead(vci));
  json.close_object();
}

void arq_loss_table() {
  std::puts("ARQ goodput vs wire cell loss (simulated time)");
  std::printf("  1000 x %zu B messages, one per %.0f us; window 16, "
              "rto 1 ms, 30 retries\n\n",
              kBytes, sim::to_us(kGap));
  std::puts("   loss | delivered |    rtx | Mbit/s    |  p50 us |  p99 us | vci");
  std::puts("  ------+-----------+--------+-----------+---------+---------+------");
  benchjson::Writer json;
  json.open_object();
  json.field("bench", std::string("fault"));
  json.field("messages", static_cast<std::uint64_t>(kMessages));
  json.field("bytes", static_cast<std::uint64_t>(kBytes));
  json.field("gap_us", sim::to_us(kGap));
  json.open_array("rows");
  for (const double loss : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    arq_loss_row(loss, json);
  }
  json.close_array();
  json.close_object();
  std::puts("");
  json.dump("fault");
}

// Wall-clock cost of the injection hooks themselves.
void BM_HookNoPlane(benchmark::State& state) {
  fault::FaultPlane* plane = nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::fires(plane, fault::Point::kDmaError));
  }
}
BENCHMARK(BM_HookNoPlane);

void BM_HookUnarmed(benchmark::State& state) {
  fault::FaultPlane plane(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::fires(&plane, fault::Point::kDmaError));
  }
}
BENCHMARK(BM_HookUnarmed);

void BM_HookArmedProbabilistic(benchmark::State& state) {
  fault::FaultPlane plane(1);
  plane.arm(fault::Point::kDmaError, {.probability = 0.001});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::fires(&plane, fault::Point::kDmaError));
  }
}
BENCHMARK(BM_HookArmedProbabilistic);

}  // namespace

int main(int argc, char** argv) {
  arq_loss_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
