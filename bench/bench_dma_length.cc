// §2.5.1 ablation: DMA transaction length vs achievable TURBOchannel
// bandwidth. Reproduces the paper's arithmetic exactly —
//   reads  (transmit): n/(n+13) * 800 Mbps   44 B -> 367, 88 B -> 503
//   writes (receive):  n/(n+8)  * 800 Mbps   44 B -> 463, 88 B -> 587
// — and demonstrates the diminishing returns beyond double-cell DMA, plus
// the measured end-to-end effect of the DMA-length choice.
#include <cstdio>

#include "osiris/harness.h"
#include "osiris/node.h"
#include "tc/turbochannel.h"

namespace {

using namespace osiris;

double measured_rx(bool double_dma) {
  NodeConfig c = make_3000_600_config();
  c.board.double_cell_dma_rx = double_dma;
  sim::Engine eng;
  Node n(eng, c);
  proto::StackConfig sc;
  auto stack = n.make_stack(sc);
  return harness::receive_throughput(n, *stack, 700, 64 * 1024, 24, sc).mbps;
}

}  // namespace

int main() {
  std::puts("DMA length sweep (paper 2.5.1): TURBOchannel transaction bounds");
  std::puts("");
  std::puts("cells  bytes   read (transmit) Mbps   write (receive) Mbps   overhead(read)");
  sim::Engine eng;
  tc::TurboChannel bus(eng, tc::BusConfig{});
  for (std::uint32_t cells = 1; cells <= 8; ++cells) {
    const std::uint32_t bytes = cells * 44;
    const double rd = static_cast<double>(bytes) * 8.0 /
                      sim::to_ns(bus.dma_read_cost(bytes)) * 1000.0;
    const double wr = static_cast<double>(bytes) * 8.0 /
                      sim::to_ns(bus.dma_write_cost(bytes)) * 1000.0;
    const double ov = 13.0 / (13.0 + static_cast<double>(bus.words(bytes))) * 100;
    std::printf("  %u    %4u         %6.1f                 %6.1f            %5.1f%%\n",
                cells, bytes, rd, wr, ov);
  }
  std::puts("");
  std::puts("Paper checkpoints: 44 B -> 367/463; 88 B -> 503/587 Mbps; the");
  std::puts("biggest gain is the first doubling (overhead 42% -> 26%).");
  std::puts("");
  std::printf("End-to-end receive throughput (3000/600, 64 KB messages):\n");
  std::printf("  single-cell DMA: %6.1f Mbps\n", measured_rx(false));
  std::printf("  double-cell DMA: %6.1f Mbps\n", measured_rx(true));
  return 0;
}
