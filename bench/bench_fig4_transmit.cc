// Reproduces Figure 4: transmit-side UDP/IP throughput. Transmit DMA is
// single-cell only (the paper's double-cell transmit change was still
// underway), so the TURBOchannel per-transaction overhead caps throughput
// near 325 Mbps on the 3000/600; the 5000/200 is lower because its host
// memory traffic shares the bus with DMA.
#include <cstdio>

#include "osiris/harness.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

double run(std::uint32_t msg_bytes, bool alpha_sender, bool cksum) {
  Testbed tb(alpha_sender ? make_3000_600_config() : make_5000_200_config(),
             make_3000_600_config());
  const std::uint16_t vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.udp_checksum = cksum;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  const std::uint64_t msgs = msg_bytes >= 65536 ? 20 : (msg_bytes >= 8192 ? 40 : 80);
  return harness::transmit_throughput(tb, tb.a, *sa, *sb, vci, msg_bytes, msgs).mbps;
}

}  // namespace

int main() {
  std::puts("Figure 4: UDP/IP/OSIRIS transmit-side throughput (Mbps)");
  std::puts("(single-cell transmit DMA; receiver: DEC 3000/600)");
  std::puts("");
  std::puts("Msg size   3000/600   3000/600+UDP-CS   5000/200");
  for (std::uint32_t kb = 1; kb <= 256; kb *= 2) {
    const std::uint32_t bytes = kb * 1024;
    std::printf("%4u KB     %6.1f       %6.1f         %6.1f\n", kb,
                run(bytes, true, false), run(bytes, true, true),
                run(bytes, false, false));
  }
  std::puts("");
  std::puts("Paper: maximal transmit throughput ~325 Mbps, limited entirely by");
  std::puts("TURBOchannel contention from single-cell DMA transfers.");
  return 0;
}
