// Reproduces Figure 4: transmit-side UDP/IP throughput. Transmit DMA is
// single-cell only (the paper's double-cell transmit change was still
// underway), so the TURBOchannel per-transaction overhead caps throughput
// near 325 Mbps on the 3000/600; the 5000/200 is lower because its host
// memory traffic shares the bus with DMA.
//
// Emits BENCH_fig4_transmit.json: the per-size rows plus the standard
// perf-trajectory fields (wall_seconds, engine_events, events_per_sec).
#include <cstdio>

#include "bench_json.h"
#include "osiris/harness.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

struct RunOut {
  double mbps = 0;
  std::uint64_t events = 0;  // engine events dispatched by this run
};

RunOut run(std::uint32_t msg_bytes, bool alpha_sender, bool cksum) {
  Testbed tb(alpha_sender ? make_3000_600_config() : make_5000_200_config(),
             make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.udp_checksum = cksum;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  const std::uint64_t msgs = msg_bytes >= 65536 ? 20 : (msg_bytes >= 8192 ? 40 : 80);
  const double mbps =
      harness::transmit_throughput(tb, tb.a, *sa, *sb, vci, msg_bytes, msgs).mbps;
  return RunOut{mbps, tb.dispatched()};
}

}  // namespace

int main() {
  const benchjson::WallTimer wall;
  std::uint64_t events = 0;

  std::puts("Figure 4: UDP/IP/OSIRIS transmit-side throughput (Mbps)");
  std::puts("(single-cell transmit DMA; receiver: DEC 3000/600)");
  std::puts("");
  std::puts("Msg size   3000/600   3000/600+UDP-CS   5000/200");

  benchjson::Writer w;
  w.open_object();
  w.open_array("rows");
  for (std::uint32_t kb = 1; kb <= 256; kb *= 2) {
    const std::uint32_t bytes = kb * 1024;
    const RunOut alpha = run(bytes, true, false);
    const RunOut alpha_cs = run(bytes, true, true);
    const RunOut dec = run(bytes, false, false);
    events += alpha.events + alpha_cs.events + dec.events;
    std::printf("%4u KB     %6.1f       %6.1f         %6.1f\n", kb, alpha.mbps,
                alpha_cs.mbps, dec.mbps);
    w.open_object();
    w.field("msg_kb", static_cast<std::uint64_t>(kb));
    w.field("alpha_mbps", alpha.mbps);
    w.field("alpha_cksum_mbps", alpha_cs.mbps);
    w.field("dec5000_mbps", dec.mbps);
    w.close_object();
  }
  w.close_array();

  const double secs = wall.seconds();
  benchjson::perf_fields(w, secs, events, /*threads=*/1);
  w.close_object();
  w.dump("fig4_transmit");

  std::puts("");
  std::puts("Paper: maximal transmit throughput ~325 Mbps, limited entirely by");
  std::puts("TURBOchannel contention from single-cell DMA transfers.");
  return 0;
}
