// Reproduces Table 1: round-trip latencies (us) between kernel test
// programs over back-to-back OSIRIS boards, for the raw ATM and UDP/IP
// configurations on both machines. IP MTU 16 KB, UDP checksumming off —
// the paper's setup.
//
// Emits BENCH_table1_latency.json: one row per machine/protocol pair plus
// the standard perf-trajectory fields (wall_seconds, engine_events,
// events_per_sec).
#include <cstdio>

#include "bench_json.h"
#include "obs/spans.h"
#include "osiris/harness.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

struct RunOut {
  double rtt_us = 0;
  std::uint64_t events = 0;  // engine events dispatched by this run
};

RunOut rtt(bool alpha, bool udp, std::uint32_t bytes, int threads) {
  Testbed tb(alpha ? make_3000_600_config() : make_5000_200_config(),
             alpha ? make_3000_600_config() : make_5000_200_config(), threads);
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.mode = udp ? proto::StackMode::kUdpIp : proto::StackMode::kRawAtm;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  const double us = harness::ping_pong(tb, *sa, *sb, vci, bytes, 12).rtt_us_mean;
  return RunOut{us, tb.dispatched()};
}

double us_of(double ticks) { return ticks / 1e6; }  // Tick = picoseconds

/// One span-instrumented ping-pong (raw ATM, 1024 B, 5000/200) feeding the
/// per-stage latency histograms; both directions merged so the
/// distribution covers every PDU of the run.
std::uint64_t span_run(benchjson::Writer& w, int threads) {
  obs::PduSpans spans_a, spans_b;  // one per node: spans are thread-confined
  NodeConfig ca = make_5000_200_config();
  NodeConfig cb = make_5000_200_config();
  ca.spans = &spans_a;
  cb.spans = &spans_b;
  Testbed tb(ca, cb, threads);
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  harness::ping_pong(tb, *sa, *sb, vci, 1024, 200);

  obs::PduSpans merged;
  merged.merge_stages(spans_a);
  merged.merge_stages(spans_b);

  const sim::Log2Histogram& e2e = merged.stage(obs::Stage::kEndToEnd);
  w.open_object("pdu_latency");
  w.field("pdus", e2e.count());
  w.field("e2e_us_p50", us_of(e2e.quantile(0.50)));
  w.field("e2e_us_p90", us_of(e2e.quantile(0.90)));
  w.field("e2e_us_p99", us_of(e2e.quantile(0.99)));
  w.field("e2e_us_p999", us_of(e2e.quantile(0.999)));
  w.open_object("stage_us_p50");
  for (const obs::Stage s :
       {obs::Stage::kEnqueueToDpram, obs::Stage::kSegment, obs::Stage::kWire,
        obs::Stage::kReassemble, obs::Stage::kRxDma, obs::Stage::kDeliver}) {
    w.field(obs::stage_name(s), us_of(merged.stage(s).quantile(0.50)));
  }
  w.close_object();
  w.close_object();

  std::printf("\nPDU lifecycle (raw ATM 1024 B, %llu PDUs): e2e p50 %.1f us, "
              "p99 %.1f us, p999 %.1f us\n",
              static_cast<unsigned long long>(e2e.count()),
              us_of(e2e.quantile(0.50)), us_of(e2e.quantile(0.99)),
              us_of(e2e.quantile(0.999)));
  return tb.dispatched();
}

}  // namespace

int main(int argc, char** argv) {
  // Results are bit-identical across thread counts (DESIGN.md §9);
  // --threads only changes who runs each node's calendar queue.
  const int threads = harness::parse_threads(argc, argv, 1);
  const benchjson::WallTimer wall;
  std::uint64_t events = 0;

  std::puts("Table 1: Round-Trip Latencies (us)  [paper value in brackets]");
  std::puts("");
  std::puts("Machine        Protocol    1 B          1024 B       2048 B       4096 B");

  struct Row {
    const char* machine;
    bool alpha;
    const char* proto;
    bool udp;
    int paper[4];
  };
  const Row rows[] = {
      {"5000/200", false, "ATM   ", false, {353, 417, 486, 778}},
      {"5000/200", false, "UDP/IP", true, {598, 659, 725, 1011}},
      {"3000/600", true, "ATM   ", false, {154, 215, 283, 449}},
      {"3000/600", true, "UDP/IP", true, {316, 376, 446, 619}},
  };
  const std::uint32_t sizes[] = {1, 1024, 2048, 4096};
  static const char* const size_keys[] = {"rtt_us_1b", "rtt_us_1024b",
                                          "rtt_us_2048b", "rtt_us_4096b"};

  benchjson::Writer w;
  w.open_object();
  w.open_array("rows");
  for (const Row& r : rows) {
    std::printf("%-14s %-8s", r.machine, r.proto);
    w.open_object();
    w.field("machine", std::string(r.machine));
    w.field("proto", std::string(r.udp ? "udp_ip" : "raw_atm"));
    for (int i = 0; i < 4; ++i) {
      const RunOut out = rtt(r.alpha, r.udp, sizes[i], threads);
      events += out.events;
      std::printf("  %5.0f [%4d]", out.rtt_us, r.paper[i]);
      w.field(size_keys[i], out.rtt_us);
    }
    w.close_object();
    std::printf("\n");
  }
  w.close_array();

  events += span_run(w, threads);

  const double secs = wall.seconds();
  benchjson::perf_fields(w, secs, events,
                         static_cast<std::uint64_t>(threads));
  w.close_object();
  w.dump("table1_latency");

  std::puts("");
  std::puts("Note: fixed (small-message) latencies match the paper closely;");
  std::puts("the per-byte slope is set by the simulated per-cell pipeline");
  std::puts("bottleneck, which underestimates the paper's at 4 KB (see");
  std::puts("EXPERIMENTS.md).");
  return 0;
}
