// Machine-readable bench output: each robustness bench appends its rows to
// a BENCH_<name>.json file in the working directory so CI (and plots) can
// consume results without scraping the human tables. Deliberately tiny —
// the benches only need objects/arrays of numbers and booleans.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace benchjson {

/// Wall-clock stopwatch for the standard perf-trajectory fields.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Exact quantile of `v` (copied, sorted), q in [0, 1]. 0 when empty.
inline double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

class Writer;

/// The standard perf-trajectory fields every bench emits, so
/// tools/bench_trend.py can fold all BENCH_*.json files into one table:
/// wall_seconds, engine_events, events_per_sec, threads (worker threads the
/// simulation ran on; 1 for serial benches).
void perf_fields(Writer& w, double wall_seconds, std::uint64_t events,
                 std::uint64_t threads);

/// Incremental JSON builder; the caller supplies structure via the
/// open/close calls and the builder handles commas.
class Writer {
 public:
  void open_object() { sep(); out_ += '{'; fresh_ = true; }
  void open_object(const std::string& key) {
    sep();
    out_ += '"' + key + "\":{";
    fresh_ = true;
  }
  void close_object() { out_ += '}'; fresh_ = false; }
  void open_array(const std::string& key) {
    sep();
    out_ += '"' + key + "\":[";
    fresh_ = true;
  }
  void close_array() { out_ += ']'; fresh_ = false; }

  void field(const std::string& key, double v) {
    sep();
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"%s\":%.6g", key.c_str(), v);
    out_ += buf;
  }
  void field(const std::string& key, std::uint64_t v) {
    sep();
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"%s\":%llu", key.c_str(),
                  static_cast<unsigned long long>(v));
    out_ += buf;
  }
  void field(const std::string& key, bool v) {
    sep();
    out_ += '"' + key + "\":" + (v ? "true" : "false");
  }
  void field(const std::string& key, const std::string& v) {
    sep();
    out_ += '"' + key + "\":\"" + v + '"';
  }

  /// Writes the accumulated document to BENCH_<name>.json.
  bool dump(const std::string& name) const {
    const std::string path = "BENCH_" + name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs(out_.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), out_.size() + 1);
    return true;
  }

 private:
  void sep() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }
  std::string out_;
  bool fresh_ = true;
};

inline void perf_fields(Writer& w, double wall_seconds, std::uint64_t events,
                        std::uint64_t threads) {
  w.field("wall_seconds", wall_seconds);
  w.field("engine_events", events);
  w.field("events_per_sec",
          wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0.0);
  w.field("threads", threads);
}

}  // namespace benchjson
