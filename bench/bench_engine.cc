// Engine microbenchmark: the calendar-queue scheduler against the seed's
// std::priority_queue + std::function design, on a workload shaped like the
// real experiments — dense near-future event chains (cell times, firmware
// costs), same-tick bursts (interrupt fan-out), and millisecond-scale
// protocol timers that are almost always cancelled (ARQ retransmits, RPC
// timeouts, the driver watchdog).
//
// Both engines run the *identical* logical workload, so three things can be
// checked at once:
//   * throughput: events dispatched per wall-clock second, and the speedup
//     of the calendar engine over the baseline;
//   * determinism: two runs of the calendar engine produce bit-identical
//     dispatch-order hashes;
//   * equivalence: the baseline's dispatch-order hash matches the calendar
//     engine's (cancelled timers fire as guarded no-ops in the baseline and
//     are simply absent in the calendar engine; neither contributes to the
//     hash).
//
// Results land in BENCH_engine.json; ci.sh compares events_per_sec against
// the checked-in floor in bench/engine_events_per_sec.floor.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "sim/engine.h"
#include "sim/time.h"

namespace {

using osiris::sim::Duration;
using osiris::sim::Tick;

constexpr int kChains = 64;
constexpr std::uint64_t kTargetFires = 1'000'000;  // chain firings per run

// Chain step delays cycle through a mix of sub-cell and multi-cell gaps so
// events land across many calendar buckets.
constexpr Duration kDelays[] = {osiris::sim::ns(50), osiris::sim::ns(700),
                                osiris::sim::ns(90), osiris::sim::ns(1300),
                                osiris::sim::ns(250)};
constexpr std::size_t kNumDelays = sizeof(kDelays) / sizeof(kDelays[0]);

/// Shared workload state: termination counter plus an FNV-1a hash over the
/// dispatch order of every event that does work.
struct Mix {
  std::uint64_t fired = 0;   // chain firings (drives termination)
  std::uint64_t timers = 0;  // far-future timers scheduled so far
  std::uint64_t hash = 1469598103934665603ull;
  void mix(std::uint64_t x) {
    hash ^= x;
    hash *= 1099511628211ull;
  }
};

/// The seed's scheduler, reproduced: a std::priority_queue of std::function
/// events ordered by (tick, seq). Cancellation is the old generation-guard
/// pattern — dead timers stay queued and fire as no-ops.
class LegacyEngine {
 public:
  using Fn = std::function<void()>;

  [[nodiscard]] Tick now() const { return now_; }
  void schedule(Duration d, Fn fn) { schedule_at(now_ + d, std::move(fn)); }
  void schedule_at(Tick t, Fn fn) {
    q_.push(Item{t, next_seq_++, std::move(fn)});
  }
  Tick run() {
    while (!q_.empty()) {
      Item it = std::move(const_cast<Item&>(q_.top()));
      q_.pop();
      now_ = it.at;
      ++dispatched_;
      it.fn();
    }
    return now_;
  }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Item {
    Tick at;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> q_;
};

// One chain step. Every 7th step emits a burst of four same-tick events;
// every 11th schedules a 2 ms timer, cancelled 4 times out of 5 (the ARQ /
// RPC pattern: the ack usually arrives first).
void legacy_chain(LegacyEngine& eng, Mix& mx, std::vector<char>& dead,
                  int chain, std::uint64_t count) {
  mx.mix(eng.now());
  mx.mix(static_cast<std::uint64_t>(chain));
  ++mx.fired;
  if (count % 7 == 0) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      eng.schedule(0, [&mx, chain, i] {
        mx.mix(static_cast<std::uint64_t>(chain) * 16 + i);
      });
    }
  }
  if (count % 11 == 0) {
    const std::uint64_t id = mx.timers++;
    dead.push_back(count % 5 != 0 ? 1 : 0);
    eng.schedule(osiris::sim::ms(2), [&mx, &dead, id] {
      if (dead[id] == 0) mx.mix(0x5eedull + id);
    });
  }
  if (mx.fired < kTargetFires) {
    const Duration d =
        kDelays[(static_cast<std::uint64_t>(chain) + count) % kNumDelays];
    eng.schedule(d, [&eng, &mx, &dead, chain, count] {
      legacy_chain(eng, mx, dead, chain, count + 1);
    });
  }
}

void fast_chain(osiris::sim::Engine& eng, Mix& mx, int chain,
                std::uint64_t count) {
  mx.mix(eng.now());
  mx.mix(static_cast<std::uint64_t>(chain));
  ++mx.fired;
  if (count % 7 == 0) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      eng.schedule(0, [&mx, chain, i] {
        mx.mix(static_cast<std::uint64_t>(chain) * 16 + i);
      });
    }
  }
  if (count % 11 == 0) {
    const std::uint64_t id = mx.timers++;
    osiris::sim::TimerHandle h = eng.schedule_timer(
        osiris::sim::ms(2), [&mx, id] { mx.mix(0x5eedull + id); });
    if (count % 5 != 0) eng.cancel(h);
  }
  if (mx.fired < kTargetFires) {
    const Duration d =
        kDelays[(static_cast<std::uint64_t>(chain) + count) % kNumDelays];
    eng.schedule(d, [&eng, &mx, chain, count] {
      fast_chain(eng, mx, chain, count + 1);
    });
  }
}

struct RunResult {
  double secs = 0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
  osiris::sim::Engine::Stats stats;
};

RunResult run_legacy() {
  LegacyEngine eng;
  Mix mx;
  std::vector<char> dead;
  dead.reserve(kTargetFires / 11 + kChains);
  const benchjson::WallTimer t;
  for (int c = 0; c < kChains; ++c) {
    const Tick start = osiris::sim::ns(10) * static_cast<Tick>(c + 1);
    eng.schedule_at(start, [&eng, &mx, &dead, c] {
      legacy_chain(eng, mx, dead, c, 0);
    });
  }
  eng.run();
  return RunResult{t.seconds(), eng.dispatched(), mx.hash, {}};
}

RunResult run_fast() {
  osiris::sim::Engine eng;
  Mix mx;
  const benchjson::WallTimer t;
  for (int c = 0; c < kChains; ++c) {
    const Tick start = osiris::sim::ns(10) * static_cast<Tick>(c + 1);
    eng.schedule_at(start,
                    [&eng, &mx, c] { fast_chain(eng, mx, c, 0); });
  }
  eng.run();
  return RunResult{t.seconds(), eng.dispatched(), mx.hash, eng.stats()};
}

}  // namespace

int main() {
  std::printf(
      "OSIRIS engine microbench: calendar queue vs priority_queue baseline\n"
      "workload: %d chains, %llu chain firings, same-tick bursts, 2 ms\n"
      "timers 80%% cancelled\n\n",
      kChains, static_cast<unsigned long long>(kTargetFires));

  const RunResult legacy = run_legacy();
  const RunResult fast1 = run_fast();
  const RunResult fast2 = run_fast();

  const double base_eps =
      static_cast<double>(legacy.events) / legacy.secs;
  const double fast_eps = static_cast<double>(fast1.events) / fast1.secs;
  const double speedup = fast_eps / base_eps;
  const bool determinism_ok = fast1.hash == fast2.hash;
  const bool baseline_match = legacy.hash == fast1.hash;

  std::printf("  baseline : %9.0f events/s (%llu events, %.3f s)\n", base_eps,
              static_cast<unsigned long long>(legacy.events), legacy.secs);
  std::printf("  calendar : %9.0f events/s (%llu events, %.3f s)\n", fast_eps,
              static_cast<unsigned long long>(fast1.events), fast1.secs);
  std::printf("  speedup  : %.2fx\n", speedup);
  std::printf("  determinism: %s   baseline-order match: %s\n",
              determinism_ok ? "ok" : "MISMATCH",
              baseline_match ? "ok" : "MISMATCH");

  const osiris::sim::Engine::Stats& st = fast1.stats;
  std::printf(
      "  engine: high_water=%zu far=%llu spills=%llu rewindows=%llu "
      "arena_chunks=%llu boxed=%llu cancelled=%llu\n",
      st.high_water, static_cast<unsigned long long>(st.far_scheduled),
      static_cast<unsigned long long>(st.spills),
      static_cast<unsigned long long>(st.rewindows),
      static_cast<unsigned long long>(st.arena_chunks),
      static_cast<unsigned long long>(st.boxed_events),
      static_cast<unsigned long long>(st.cancelled));

  benchjson::Writer w;
  w.open_object();
  w.field("chains", static_cast<std::uint64_t>(kChains));
  w.field("target_fires", kTargetFires);
  w.field("baseline_wall_seconds", legacy.secs);
  w.field("baseline_events", legacy.events);
  w.field("baseline_events_per_sec", base_eps);
  benchjson::perf_fields(w, fast1.secs, fast1.events, /*threads=*/1);
  w.field("speedup", speedup);
  w.field("determinism_ok", determinism_ok);
  w.field("baseline_order_match", baseline_match);
  w.field("dispatch_hash", fast1.hash);
  w.field("high_water", static_cast<std::uint64_t>(st.high_water));
  w.field("far_scheduled", st.far_scheduled);
  w.field("spills", st.spills);
  w.field("rewindows", st.rewindows);
  w.field("arena_chunks", st.arena_chunks);
  w.field("boxed_events", st.boxed_events);
  w.field("cancelled", st.cancelled);
  w.close_object();
  w.dump("engine");

  if (!determinism_ok || !baseline_match) {
    std::fprintf(stderr, "FAIL: dispatch order not reproducible\n");
    return 1;
  }
  return 0;
}
