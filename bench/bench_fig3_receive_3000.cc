// Reproduces Figure 3: DEC 3000/600 receive-side throughput. The crossbar
// memory system lets DMA and CPU proceed concurrently and the cache is
// DMA-coherent, so double-cell DMA approaches the full 516 Mbps link
// payload bandwidth; UDP checksumming costs ~15% (paper: 438 Mbps).
#include <cstdio>

#include "osiris/harness.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

double run(std::uint32_t msg_bytes, bool double_dma, bool cksum) {
  NodeConfig c = make_3000_600_config();
  c.board.double_cell_dma_rx = double_dma;
  sim::Engine eng;
  Node n(eng, c);
  proto::StackConfig sc;
  sc.udp_checksum = cksum;
  auto stack = n.make_stack(sc);
  const std::uint64_t msgs = msg_bytes >= 65536 ? 24 : (msg_bytes >= 8192 ? 48 : 96);
  return harness::receive_throughput(n, *stack, 701, msg_bytes, msgs, sc).mbps;
}

}  // namespace

int main() {
  std::puts("Figure 3: DEC 3000/600 UDP/IP/OSIRIS receive-side throughput (Mbps)");
  std::puts("");
  std::puts("Msg size   double DMA   double+UDP-CS   single DMA   single+UDP-CS");
  for (std::uint32_t kb = 1; kb <= 256; kb *= 2) {
    const std::uint32_t bytes = kb * 1024;
    std::printf("%4u KB      %6.1f        %6.1f        %6.1f        %6.1f\n", kb,
                run(bytes, true, false), run(bytes, true, true),
                run(bytes, false, false), run(bytes, false, true));
  }
  std::puts("");
  std::puts("Paper: double-cell approaches the 516 Mbps link payload bandwidth");
  std::puts("for 16 KB+ messages; with checksumming it drops to ~438 Mbps (the");
  std::puts("data is read and checksummed at ~90% of link speed).");
  return 0;
}
