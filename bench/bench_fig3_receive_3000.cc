// Reproduces Figure 3: DEC 3000/600 receive-side throughput. The crossbar
// memory system lets DMA and CPU proceed concurrently and the cache is
// DMA-coherent, so double-cell DMA approaches the full 516 Mbps link
// payload bandwidth; UDP checksumming costs ~15% (paper: 438 Mbps).
//
// Emits BENCH_fig3_receive_3000.json: the per-size rows plus the standard
// perf-trajectory fields (wall_seconds, engine_events, events_per_sec).
#include <cstdio>

#include "bench_json.h"
#include "osiris/harness.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

struct RunOut {
  double mbps = 0;
  std::uint64_t events = 0;  // engine events dispatched by this run
};

RunOut run(std::uint32_t msg_bytes, bool double_dma, bool cksum) {
  NodeConfig c = make_3000_600_config();
  c.board.double_cell_dma_rx = double_dma;
  sim::Engine eng;
  Node n(eng, c);
  proto::StackConfig sc;
  sc.udp_checksum = cksum;
  auto stack = n.make_stack(sc);
  const std::uint64_t msgs = msg_bytes >= 65536 ? 24 : (msg_bytes >= 8192 ? 48 : 96);
  const double mbps =
      harness::receive_throughput(n, *stack, 701, msg_bytes, msgs, sc).mbps;
  return RunOut{mbps, eng.dispatched()};
}

}  // namespace

int main() {
  const benchjson::WallTimer wall;
  std::uint64_t events = 0;

  std::puts("Figure 3: DEC 3000/600 UDP/IP/OSIRIS receive-side throughput (Mbps)");
  std::puts("");
  std::puts("Msg size   double DMA   double+UDP-CS   single DMA   single+UDP-CS");

  benchjson::Writer w;
  w.open_object();
  w.open_array("rows");
  for (std::uint32_t kb = 1; kb <= 256; kb *= 2) {
    const std::uint32_t bytes = kb * 1024;
    const RunOut d = run(bytes, true, false);
    const RunOut dc = run(bytes, true, true);
    const RunOut s = run(bytes, false, false);
    const RunOut scs = run(bytes, false, true);
    events += d.events + dc.events + s.events + scs.events;
    std::printf("%4u KB      %6.1f        %6.1f        %6.1f        %6.1f\n", kb,
                d.mbps, dc.mbps, s.mbps, scs.mbps);
    w.open_object();
    w.field("msg_kb", static_cast<std::uint64_t>(kb));
    w.field("double_dma_mbps", d.mbps);
    w.field("double_dma_cksum_mbps", dc.mbps);
    w.field("single_dma_mbps", s.mbps);
    w.field("single_dma_cksum_mbps", scs.mbps);
    w.close_object();
  }
  w.close_array();

  const double secs = wall.seconds();
  benchjson::perf_fields(w, secs, events, /*threads=*/1);
  w.close_object();
  w.dump("fig3_receive_3000");

  std::puts("");
  std::puts("Paper: double-cell approaches the 516 Mbps link payload bandwidth");
  std::puts("for 16 KB+ messages; with checksumming it drops to ~438 Mbps (the");
  std::puts("data is read and checksummed at ~90% of link speed).");
  return 0;
}
