// §2.5.2 ablation: the original fixed-length DMA controller vs the
// page-boundary-stop modification.
//
// Fixed-length transfers force partially-meaningful cells whenever a
// buffer ends mid-cell: adjacent physical memory leaks onto the wire (the
// paper's NFS-page security example), mid-PDU padding breaks standard
// reassembly, and the wire carries dead bytes. The modified controller
// stops at boundaries and takes a second address instead.
#include <cstdio>

#include "osiris/node.h"
#include "proto/message.h"

namespace {

using namespace osiris;

struct Result {
  std::uint64_t delivered = 0;
  std::uint64_t intact = 0;
  std::uint64_t leaked_cells = 0;
  std::uint64_t leaked_bytes = 0;
  std::uint64_t cells = 0;
  double goodput_mbps = 0;
};

Result run(bool fixed, std::uint32_t msg_bytes, std::uint32_t offset) {
  NodeConfig ca = make_3000_600_config();
  ca.board.fixed_length_dma_tx = fixed;
  Testbed tb(std::move(ca), make_3000_600_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.udp_checksum = true;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);

  std::vector<std::uint8_t> want(msg_bytes);
  for (std::uint32_t i = 0; i < msg_bytes; ++i) {
    want[i] = static_cast<std::uint8_t>(i * 11);
  }
  Result r;
  sim::Tick first = 0, last = 0;
  sb->set_sink([&](sim::Tick at, std::uint16_t, std::vector<std::uint8_t>&& d) {
    if (r.delivered == 0) first = at;
    last = at;
    ++r.delivered;
    if (d == want) ++r.intact;
  });
  proto::Message m = proto::Message::from_payload(tb.a.kernel_space, want, offset);
  sim::Tick t = 0;
  constexpr int kMsgs = 15;
  for (int i = 0; i < kMsgs; ++i) t = sa->send(t, vci, m);
  tb.run();

  r.leaked_cells = tb.a.txp.leaked_cells();
  r.leaked_bytes = tb.a.txp.leaked_bytes();
  r.cells = tb.a.txp.cells_sent();
  if (r.delivered >= 2 && last > first) {
    r.goodput_mbps = sim::mbps(
        static_cast<std::uint64_t>(msg_bytes) * (r.delivered - 1), last - first);
  }
  return r;
}

void report(const char* label, const Result& r) {
  std::printf("%s\n", label);
  std::printf("  delivered %llu/15 (intact %llu), cells %llu, leaked cells %llu "
              "(%llu bytes of other memory on the wire), goodput %.1f Mbps\n",
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.intact),
              static_cast<unsigned long long>(r.cells),
              static_cast<unsigned long long>(r.leaked_cells),
              static_cast<unsigned long long>(r.leaked_bytes), r.goodput_mbps);
}

}  // namespace

int main() {
  std::puts("Fixed-length DMA vs page-boundary stop (paper 2.5.2)");
  std::puts("16 KB UDP messages (checksummed), unaligned application buffers.");
  std::puts("");
  report("modified controller (page-boundary stop, second address):",
         run(false, 16 * 1024, 100));
  report("ORIGINAL controller (one fixed 44-byte transfer per cell):",
         run(true, 16 * 1024, 100));
  std::puts("");
  std::puts("Multi-buffer PDUs under the original controller acquire mid-PDU");
  std::puts("padding: the checksum rejects every message (interoperating with");
  std::puts("standard reassembly is impossible, as the paper says) and every");
  std::puts("buffer tail leaks bytes that do not belong to the sender — the");
  std::puts("security risk that motivated the hardware change.");
  return 0;
}
