// Reproduces Figure 2: DECstation 5000/200 receive-side UDP/IP throughput
// vs message size, with the board's fictitious-PDU generator driving the
// host in isolation. Three configurations:
//   * double-cell DMA                 (paper plateau ~379 Mbps)
//   * single-cell DMA                 (paper plateau ~340 Mbps)
//   * single-cell DMA + pessimistic (eager) cache invalidation (~250 Mbps)
//
// Emits BENCH_fig2_receive_5000.json: the per-size rows plus the standard
// perf-trajectory fields (wall_seconds, engine_events, events_per_sec).
#include <cstdio>

#include "bench_json.h"
#include "osiris/harness.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

struct RunOut {
  double mbps = 0;
  std::uint64_t events = 0;  // engine events dispatched by this run
};

RunOut run(std::uint32_t msg_bytes, bool double_dma, bool eager) {
  NodeConfig c = make_5000_200_config();
  c.board.double_cell_dma_rx = double_dma;
  c.driver.eager_invalidate = eager;
  sim::Engine eng;
  Node n(eng, c);
  proto::StackConfig sc;
  auto stack = n.make_stack(sc);
  const std::uint64_t msgs = msg_bytes >= 65536 ? 24 : (msg_bytes >= 8192 ? 48 : 96);
  const double mbps =
      harness::receive_throughput(n, *stack, 700, msg_bytes, msgs, sc).mbps;
  return RunOut{mbps, eng.dispatched()};
}

}  // namespace

int main() {
  const benchjson::WallTimer wall;
  std::uint64_t events = 0;

  std::puts("Figure 2: DEC 5000/200 UDP/IP/OSIRIS receive-side throughput (Mbps)");
  std::puts("(board generates messages as fast as the host absorbs them; MTU 16 KB)");
  std::puts("");
  std::puts("Msg size   double-cell DMA   single-cell DMA   single-cell + cache inval");

  benchjson::Writer w;
  w.open_object();
  w.open_array("rows");
  for (std::uint32_t kb = 1; kb <= 256; kb *= 2) {
    const std::uint32_t bytes = kb * 1024;
    const RunOut dbl = run(bytes, true, false);
    const RunOut sgl = run(bytes, false, false);
    const RunOut inval = run(bytes, false, true);
    events += dbl.events + sgl.events + inval.events;
    std::printf("%4u KB        %6.1f            %6.1f            %6.1f\n", kb,
                dbl.mbps, sgl.mbps, inval.mbps);
    w.open_object();
    w.field("msg_kb", static_cast<std::uint64_t>(kb));
    w.field("double_dma_mbps", dbl.mbps);
    w.field("single_dma_mbps", sgl.mbps);
    w.field("single_dma_inval_mbps", inval.mbps);
    w.close_object();
  }
  w.close_array();

  const double secs = wall.seconds();
  benchjson::perf_fields(w, secs, events, /*threads=*/1);
  w.close_object();
  w.dump("fig2_receive_5000");

  std::puts("");
  std::puts("Paper plateaus (16 KB+): double 379, single 340, invalidated 250 Mbps.");
  return 0;
}
