// Reproduces Figure 2: DECstation 5000/200 receive-side UDP/IP throughput
// vs message size, with the board's fictitious-PDU generator driving the
// host in isolation. Three configurations:
//   * double-cell DMA                 (paper plateau ~379 Mbps)
//   * single-cell DMA                 (paper plateau ~340 Mbps)
//   * single-cell DMA + pessimistic (eager) cache invalidation (~250 Mbps)
#include <cstdio>

#include "osiris/harness.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

double run(std::uint32_t msg_bytes, bool double_dma, bool eager) {
  NodeConfig c = make_5000_200_config();
  c.board.double_cell_dma_rx = double_dma;
  c.driver.eager_invalidate = eager;
  sim::Engine eng;
  Node n(eng, c);
  proto::StackConfig sc;
  auto stack = n.make_stack(sc);
  const std::uint64_t msgs = msg_bytes >= 65536 ? 24 : (msg_bytes >= 8192 ? 48 : 96);
  return harness::receive_throughput(n, *stack, 700, msg_bytes, msgs, sc).mbps;
}

}  // namespace

int main() {
  std::puts("Figure 2: DEC 5000/200 UDP/IP/OSIRIS receive-side throughput (Mbps)");
  std::puts("(board generates messages as fast as the host absorbs them; MTU 16 KB)");
  std::puts("");
  std::puts("Msg size   double-cell DMA   single-cell DMA   single-cell + cache inval");
  for (std::uint32_t kb = 1; kb <= 256; kb *= 2) {
    const std::uint32_t bytes = kb * 1024;
    std::printf("%4u KB        %6.1f            %6.1f            %6.1f\n", kb,
                run(bytes, true, false), run(bytes, false, false),
                run(bytes, false, true));
  }
  std::puts("");
  std::puts("Paper plateaus (16 KB+): double 379, single 340, invalidated 250 Mbps.");
  return 0;
}
