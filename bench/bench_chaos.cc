// Chaos-scenario throughput and recovery latency (DESIGN.md §12).
//
// Runs a fixed block of generated chaos schedules — the same seeds every
// time — through the full ChaosRunner (two nodes, mixed ARQ/datagram/
// RPC/ADC traffic, QoS knobs, watchdogs, invariant audit) and reports:
//
//   scenarios_per_sec        wall-clock scenario throughput
//   recovery_latency_us_p99  p99 of force_reset -> next in-order ARQ
//                            delivery, over every reset the block hit
//   violation_free_fraction  fraction of scenarios with zero invariant
//                            violations (CI floors this at 1.0 — a chaos
//                            regression fails the trend gate, not just
//                            the nightly sweep)
//
// Results go to stdout and BENCH_chaos.json for tools/bench_trend.py.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "chaos/runner.h"
#include "chaos/schedule.h"

namespace {

using namespace osiris;

constexpr std::uint64_t kSeeds = 12;
constexpr std::uint64_t kBaseSeed = 1;

}  // namespace

int main() {
  benchjson::WallTimer wall;
  benchjson::Writer json;
  json.open_object();

  std::uint64_t events = 0, clean = 0, faults = 0, resets = 0;
  std::vector<double> recovery_us;
  json.open_array("rows");
  for (std::uint64_t i = 0; i < kSeeds; ++i) {
    const chaos::Schedule s = chaos::generate(kBaseSeed + i);
    const chaos::Report r = chaos::run_schedule(s);
    events += r.events;
    faults += r.faults_fired;
    resets += r.resets_a + r.resets_b;
    if (r.ok()) ++clean;
    recovery_us.insert(recovery_us.end(), r.recovery_us.begin(),
                       r.recovery_us.end());
    json.open_object();
    json.field("seed", kBaseSeed + i);
    json.field("ok", r.ok());
    json.field("faults_fired", r.faults_fired);
    json.field("resets", r.resets_a + r.resets_b);
    json.field("arq_resyncs", r.arq_resyncs);
    json.close_object();
    std::printf("  seed %2llu: %s  faults=%llu resets=%llu resyncs=%llu\n",
                static_cast<unsigned long long>(kBaseSeed + i),
                r.ok() ? "clean " : "VIOLATED",
                static_cast<unsigned long long>(r.faults_fired),
                static_cast<unsigned long long>(r.resets_a + r.resets_b),
                static_cast<unsigned long long>(r.arq_resyncs));
  }
  json.close_array();

  const double secs = wall.seconds();
  const double scenarios_per_sec =
      secs > 0 ? static_cast<double>(kSeeds) / secs : 0.0;
  const double p99 = benchjson::quantile(recovery_us, 0.99);
  const double violation_free =
      static_cast<double>(clean) / static_cast<double>(kSeeds);

  json.field("scenarios", kSeeds);
  json.field("scenarios_per_sec", scenarios_per_sec);
  json.field("recovery_latency_us_p99", p99);
  json.field("recovery_samples", static_cast<std::uint64_t>(recovery_us.size()));
  json.field("violation_free_fraction", violation_free);
  json.field("faults_fired", faults);
  json.field("adaptor_resets", resets);
  benchjson::perf_fields(json, secs, events, 1);
  json.close_object();

  std::printf("\n  %llu scenarios in %.2fs (%.1f/s), %llu faults, %llu"
              " resets, recovery p99 %.1f us, violation-free %.2f\n\n",
              static_cast<unsigned long long>(kSeeds), secs, scenarios_per_sec,
              static_cast<unsigned long long>(faults),
              static_cast<unsigned long long>(resets), p99, violation_free);
  json.dump("chaos");
  return violation_free == 1.0 ? 0 : 1;
}
