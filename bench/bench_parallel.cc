// Parallel conservative DES: 1-thread vs 2-thread runs of the same
// partitioned testbed workload (DESIGN.md §9 and §14).
//
// The workload is fig2/fig3-shaped: both nodes run the board's
// fictitious-PDU receive generator flat out (node A the DECstation
// 5000/200 of Figure 2, node B the DEC 3000/600 of Figure 3), so the two
// partitions have heavy independent work — the shape the partitioned
// engine is built for. A ping-pong phase follows on the same testbed to
// drive the cross-partition channels.
//
// Determinism is the correctness contract: the per-node stats hash must be
// bit-identical across thread counts. Speedup is the payoff, recorded in
// BENCH_parallel.json; ci.sh gates on it only when the host actually has
// two cores to run on.
#include <cstdio>
#include <thread>

#include "bench_json.h"
#include "osiris/harness.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

constexpr std::uint32_t kMsgBytes = 16 * 1024;
constexpr std::uint64_t kMsgs = 150;  // per node

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

struct RunOut {
  double wall_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;      // per-node stats, order a then b
  std::uint64_t rounds = 0;    // fused fallback rounds (timing-dependent
                               // at >=2 threads: reported, never compared)
  std::uint64_t remote = 0;    // envelopes across partitions
  double rtt_us_mean = 0;
  sim::EngineGroup::PhaseProfile prof;  // where the worker time went
};

std::uint64_t node_receive_setup(Node& n, proto::ProtoStack& stack,
                                 atm::Vci vci,
                                 const proto::StackConfig& sc,
                                 std::uint64_t* delivered) {
  n.map_kernel_vci(vci);
  const auto frags =
      harness::make_udp_fragments(kMsgBytes, sc.ip_mtu, sc.udp_checksum);
  stack.set_sink([&n, delivered](sim::Tick at, std::uint16_t,
                                 std::vector<std::uint8_t>&& d) {
    n.cpu.exec(at, host::Work{n.cfg.machine.app_recv, 0});
    *delivered += d.size();
  });
  n.intc.reset_stats();
  n.rxp.start_generator_multi(vci, frags, kMsgs, 0);
  return kMsgs;
}

RunOut run_workload(int threads) {
  const benchjson::WallTimer wall;
  Testbed tb(make_5000_200_config(), make_3000_600_config(), threads);
  tb.group.enable_profiling();
  proto::StackConfig sc;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);

  // Phase 1: both boards generate fig2/fig3 receive traffic concurrently.
  std::uint64_t bytes_a = 0, bytes_b = 0;
  node_receive_setup(tb.a, *sa, 700, sc, &bytes_a);
  node_receive_setup(tb.b, *sb, 701, sc, &bytes_b);
  tb.run();

  // Phase 2: cross-partition traffic over the striped links.
  const atm::Vci vci = tb.open_kernel_path();
  const harness::LatencyResult lat = harness::ping_pong(tb, *sa, *sb, vci,
                                                        1024, 50);

  RunOut out;
  out.wall_seconds = wall.seconds();
  out.events = tb.dispatched();
  out.rtt_us_mean = lat.rtt_us_mean;

  std::uint64_t h = 0xcbf29ce484222325ull;
  for (Node* n : {&tb.a, &tb.b}) {
    h = fnv(h, n->eng.dispatched());
    h = fnv(h, n->eng.now());
    h = fnv(h, n->rxp.cells_received());
    h = fnv(h, n->rxp.pdus_completed());
    h = fnv(h, n->rxp.push_batches());
    h = fnv(h, n->rxp.pushes_coalesced());
    h = fnv(h, n->driver.pdus_received());
    h = fnv(h, n->intc.raised());
  }
  h = fnv(h, bytes_a);
  h = fnv(h, bytes_b);
  h = fnv(h, static_cast<std::uint64_t>(lat.rtt_us_mean * 1e3));
  h = fnv(h, lat.iterations);
  const sim::EngineGroup::Stats gs = tb.group.stats();
  h = fnv(h, gs.remote_events);
  out.hash = h;
  out.rounds = gs.rounds;
  out.remote = gs.remote_events;
  out.prof = tb.group.profile();
  return out;
}

/// Sum of every phase the worker loop accounts for, in ns.
double profile_total(const sim::EngineGroup::PhaseProfile& p) {
  return static_cast<double>(p.drain_ns.sum() + p.dispatch_ns.sum() +
                             p.stall_ns.sum() + p.barrier_ns.sum());
}

/// Fraction of worker time not spent doing work: retry-backoff stall plus
/// blocked at the fused barrier. This is the number floors.tsv caps.
double stall_fraction(const sim::EngineGroup::PhaseProfile& p) {
  const double total = profile_total(p);
  if (total <= 0) return 0;
  return static_cast<double>(p.stall_ns.sum() + p.barrier_ns.sum()) / total;
}

/// Worker-phase breakdown: total time per phase plus the barrier-stall
/// distribution — the direct answer to "where does 2-thread overhead go".
void emit_phase_profile(benchjson::Writer& w,
                        const sim::EngineGroup::PhaseProfile& p) {
  w.open_object("phase_ns");
  w.field("drain_sum", p.drain_ns.sum());
  w.field("dispatch_sum", p.dispatch_ns.sum());
  w.field("stall_sum", p.stall_ns.sum());
  w.field("barrier_sum", p.barrier_ns.sum());
  w.field("drain_p50", p.drain_ns.quantile(0.50));
  w.field("dispatch_p50", p.dispatch_ns.quantile(0.50));
  w.field("stall_p50", p.stall_ns.quantile(0.50));
  w.field("barrier_p50", p.barrier_ns.quantile(0.50));
  w.field("barrier_p99", p.barrier_ns.quantile(0.99));
  w.field("barrier_spins", p.barrier_spins.sum());
  w.field("barrier_yields", p.barrier_yields.sum());
  w.close_object();
  const double total = profile_total(p);
  w.open_object("phase_share");
  w.field("dispatch", total > 0 ? p.dispatch_ns.sum() / total : 0.0);
  w.field("drain", total > 0 ? p.drain_ns.sum() / total : 0.0);
  w.field("stall", total > 0 ? p.stall_ns.sum() / total : 0.0);
  w.field("barrier", total > 0 ? p.barrier_ns.sum() / total : 0.0);
  w.close_object();
}

}  // namespace

int main(int argc, char** argv) {
  const int max_threads = harness::parse_threads(argc, argv, 2);
  const std::uint64_t cores = std::thread::hardware_concurrency();

  std::puts("Parallel conservative DES: fig2/fig3 workload on both nodes");
  std::printf("host cores: %llu\n\n", static_cast<unsigned long long>(cores));

  const RunOut serial = run_workload(1);
  const RunOut parallel = run_workload(max_threads);

  const double eps1 = serial.wall_seconds > 0
                          ? static_cast<double>(serial.events) / serial.wall_seconds
                          : 0;
  const double eps2 = parallel.wall_seconds > 0
                          ? static_cast<double>(parallel.events) / parallel.wall_seconds
                          : 0;
  // Dispatch order (the hash) and event count are the determinism
  // contract. Fused-round and overflow counts are not: they depend on how
  // the OS interleaved the workers, so comparing them would make the gate
  // flaky without making it stricter.
  const bool identical = serial.hash == parallel.hash &&
                         serial.events == parallel.events;
  const double speedup = eps1 > 0 ? eps2 / eps1 : 0;
  const double stall = stall_fraction(parallel.prof);

  std::printf("threads=1: %.3fs  %llu events  %.0f ev/s  rtt %.1f us\n",
              serial.wall_seconds,
              static_cast<unsigned long long>(serial.events), eps1,
              serial.rtt_us_mean);
  std::printf("threads=%d: %.3fs  %llu events  %.0f ev/s  rtt %.1f us\n",
              max_threads, parallel.wall_seconds,
              static_cast<unsigned long long>(parallel.events), eps2,
              parallel.rtt_us_mean);
  std::printf("identical per-node stats: %s   speedup: %.2fx   "
              "(%llu rounds, %llu cross-partition events)\n",
              identical ? "yes" : "NO", speedup,
              static_cast<unsigned long long>(serial.rounds),
              static_cast<unsigned long long>(serial.remote));
  {
    const sim::EngineGroup::PhaseProfile& pp = parallel.prof;
    const double total = profile_total(pp);
    if (total > 0) {
      std::printf("worker time (threads=%d): dispatch %.0f%%  drain %.0f%%  "
                  "retry stall %.0f%%  barrier %.0f%%  (stall fraction %.2f, "
                  "%llu spins / %llu yields)\n",
                  max_threads,
                  100.0 * static_cast<double>(pp.dispatch_ns.sum()) / total,
                  100.0 * static_cast<double>(pp.drain_ns.sum()) / total,
                  100.0 * static_cast<double>(pp.stall_ns.sum()) / total,
                  100.0 * static_cast<double>(pp.barrier_ns.sum()) / total,
                  stall,
                  static_cast<unsigned long long>(pp.barrier_spins.sum()),
                  static_cast<unsigned long long>(pp.barrier_yields.sum()));
    }
  }

  benchjson::Writer w;
  w.open_object();
  w.field("host_cores", cores);
  w.open_array("runs");
  for (const auto* r : {&serial, &parallel}) {
    w.open_object();
    benchjson::perf_fields(w, r->wall_seconds, r->events,
                           r == &serial ? 1
                                        : static_cast<std::uint64_t>(max_threads));
    w.field("stats_hash", r->hash);
    w.field("rounds", r->rounds);
    w.field("remote_events", r->remote);
    w.field("rtt_us_mean", r->rtt_us_mean);
    emit_phase_profile(w, r->prof);
    w.close_object();
  }
  w.close_array();
  benchjson::perf_fields(w, serial.wall_seconds + parallel.wall_seconds,
                         serial.events + parallel.events,
                         static_cast<std::uint64_t>(max_threads));
  w.field("identical", identical);
  w.field("speedup", speedup);
  w.field("barrier_stall_fraction", stall);
  w.close_object();
  w.dump("parallel");

  if (!identical) {
    std::puts("FAIL: parallel run diverged from the serial run");
    return 1;
  }
  // The >= 1.3x / <= 0.3-stall acceptance bars presume two real cores; on
  // a single-core host the workers can only time-slice (stall is all
  // scheduler wait), so record but don't gate. floors.tsv applies the same
  // gates through the *_mc kinds, with the same core-count condition.
  if (cores >= 2 && max_threads >= 2) {
    if (speedup < 1.3) {
      std::puts(
          "FAIL: 2-thread speedup below the 1.3x floor on a multicore host");
      return 1;
    }
    if (stall > 0.3) {
      std::puts(
          "FAIL: worker stall fraction above 0.3 on a multicore host");
      return 1;
    }
  }
  return 0;
}
