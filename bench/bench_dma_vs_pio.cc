// §2.7 ablation: DMA vs programmed I/O, compared the way the paper argues
// they should be — by how fast an APPLICATION can access the received
// data, not by raw transfer rate.
//
//   * DMA on the 5000/200: data lands in memory uncached; the application
//     pays a cache-miss stream to read it — but still beats PIO because
//     word-sized TURBOchannel reads are so expensive.
//   * DMA on the 3000/600: the crossbar + DMA cache update let the
//     application read at full speed, concurrent with the transfer.
//   * PIO: the CPU moves every word across the TURBOchannel itself
//     (~15 cycles/word read) — the data does end up in the cache.
#include <cstdio>

#include "host/machine.h"
#include "mem/cache.h"
#include "mem/phys.h"
#include "sim/engine.h"
#include "tc/turbochannel.h"

namespace {

using namespace osiris;

struct Rates {
  double transfer_mbps;  // getting the data into host memory
  double access_mbps;    // application reading it afterwards
};

Rates dma_path(const host::MachineConfig& mc, std::uint32_t bytes) {
  sim::Engine eng;
  mem::PhysicalMemory pm(1 << 22);
  mem::DataCache cache(pm, mc.cache);
  tc::TurboChannel bus(eng, mc.bus);
  host::HostCpu cpu(eng, mc, bus);

  // Transfer: 88-byte DMA writes back to back.
  sim::Tick t = 0;
  std::vector<std::uint8_t> chunk(88, 0xAB);
  for (std::uint32_t off = 0; off < bytes; off += 88) {
    t = bus.dma_write(t, 88);
    cache.dma_write(off % (1 << 20), chunk);
  }
  const double transfer = sim::mbps(bytes, t);

  // Application access: read it all through the cache.
  std::vector<std::uint8_t> buf(bytes);
  const mem::AccessCost cost = cache.cpu_read(0, buf);
  const sim::Tick t2 =
      cpu.exec(t, host::Work{mc.cache_cpu_time(cost, bytes, 0.0), cost.mem_words});
  const double access = sim::mbps(bytes, t2 - t);
  return {transfer, access};
}

Rates pio_path(const host::MachineConfig& mc, std::uint32_t bytes) {
  sim::Engine eng;
  mem::PhysicalMemory pm(1 << 22);
  mem::DataCache cache(pm, mc.cache);
  tc::TurboChannel bus(eng, mc.bus);
  host::HostCpu cpu(eng, mc, bus);

  // The CPU reads each word from the adaptor across the TURBOchannel and
  // writes it to the application buffer (which lands in the cache).
  const sim::Tick t = cpu.pio(0, bus.words(bytes), 0);
  const double transfer = sim::mbps(bytes, t);

  // Application access afterwards: the PIO loop stored through the CPU,
  // so the destination lines are resident — model by filling them first.
  std::vector<std::uint8_t> buf(bytes);
  cache.cpu_read(0, buf);  // lines now resident (PIO landed via the CPU)
  const mem::AccessCost cost = cache.cpu_read(0, buf);
  const sim::Tick t2 =
      cpu.exec(t, host::Work{mc.cache_cpu_time(cost, bytes, 0.0), cost.mem_words});
  const double access = sim::mbps(bytes, t2 - t);
  return {transfer, access};
}

}  // namespace

int main() {
  std::puts("DMA vs PIO, by application access rate (paper 2.7)");
  std::puts("");
  const std::uint32_t kBytes = 32 * 1024;
  for (const auto& mc :
       {host::decstation_5000_200(), host::dec_3000_600()}) {
    const Rates dma = dma_path(mc, kBytes);
    const Rates pio = pio_path(mc, kBytes);
    std::printf("%s\n", mc.name.c_str());
    std::printf("  DMA:  transfer %6.1f Mbps, then app reads at %6.1f Mbps\n",
                dma.transfer_mbps, dma.access_mbps);
    std::printf("  PIO:  transfer %6.1f Mbps, then app reads at %6.1f Mbps\n",
                pio.transfer_mbps, pio.access_mbps);
    std::puts("");
  }
  std::puts("Paper: on these DEC machines DMA wins — PIO word reads across the");
  std::puts("TURBOchannel are too slow — but the verdict is machine-dependent:");
  std::puts("PIO leaves data in the cache, DMA (on the 5000/200) does not.");
  return 0;
}
