// §2.2 ablation: physical buffer fragmentation.
//
// Reproduces the paper's compounding example — a 16 KB message through
// UDP/IP with a 4 KB MTU generates up to 14 physical buffers — and its two
// mitigations: page-aligned application messages, and an MTU equal to a
// page multiple plus the header size, so fragment boundaries land on page
// boundaries. Also shows the best-effort contiguous allocation idea.
#include <cstdio>

#include "osiris/node.h"
#include "proto/message.h"
#include "proto/stack.h"

namespace {

using namespace osiris;

struct Result {
  double bufs_per_frag;
  double total_bufs;
  std::uint64_t frags;
};

Result run(std::uint32_t msg_bytes, std::uint32_t mtu, std::uint32_t align_off) {
  Testbed tb(make_5000_200_config(), make_5000_200_config());
  const atm::Vci vci = tb.open_kernel_path();
  proto::StackConfig sc;
  sc.ip_mtu = mtu;
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  sb->set_sink([](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&&) {});

  std::vector<std::uint8_t> data(msg_bytes, 0x42);
  proto::Message m =
      proto::Message::from_payload(tb.a.kernel_space, data, align_off);
  sa->send(0, vci, m);
  tb.run();

  Result r;
  r.frags = sa->buffers_per_pdu().count();
  r.bufs_per_frag = sa->buffers_per_pdu().mean();
  r.total_bufs = sa->buffers_per_pdu().sum();
  return r;
}

}  // namespace

int main() {
  std::puts("Physical buffer fragmentation (paper 2.2)");
  std::puts("16 KB message through UDP/IP; driver processes one descriptor per");
  std::puts("physical buffer, so buffer count is the per-PDU cost driver.");
  std::puts("");
  std::puts("configuration                                  frags  total phys bufs");

  const std::uint32_t kMsg = 16 * 1024;
  struct Case {
    const char* name;
    std::uint32_t mtu;
    std::uint32_t off;
  };
  // MTU 4 KB: fragment data of 4076 B never aligns with pages (the paper's
  // extreme case). MTU 4096+28: fragment boundaries land on page
  // boundaries when the message is page aligned.
  const Case cases[] = {
      {"MTU 4096, message unaligned (worst case)   ", 4096, 100},
      {"MTU 4096, message page-aligned             ", 4096, 0},
      {"MTU 4096+hdrs, message unaligned           ", 4096 + 28, 100},
      {"MTU 4096+hdrs, message page-aligned (fix)  ", 4096 + 28, 0},
      {"MTU 16K+hdrs (no fragmentation), aligned   ", 16 * 1024 + 28, 0},
  };
  for (const Case& c : cases) {
    const Result r = run(kMsg, c.mtu, c.off);
    std::printf("%s   %3llu       %4.0f\n", c.name,
                static_cast<unsigned long long>(r.frags), r.total_bufs);
  }
  std::puts("");
  std::puts("Paper: the 4 KB-MTU worst case costs up to 14 physical buffers for");
  std::puts("a single 16 KB message; aligning messages and choosing MTU = page");
  std::puts("multiple + header size makes fragment boundaries coincide with");
  std::puts("page boundaries.");
  return 0;
}
