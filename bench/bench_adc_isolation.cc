// Tenant isolation under attack (§3.2 hardening): what an adversarial ADC
// tenant costs its neighbours.
//
// Two well-behaved tenants stream fixed-size messages over their own ADCs.
// The baseline row runs them alone; the adversary row adds a tenant that
// floods forged descriptors from a higher-priority queue until the
// AdcSupervisor quarantines it. The per-tenant goodput and latency
// quantiles of the two rows should be close — the paper's protection
// argument is precisely that firmware checks plus OS policy confine a bad
// application without taxing good ones.
//
// Results go to stdout and to BENCH_adc_isolation.json.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "adc/adc.h"
#include "adc/supervisor.h"
#include "bench_json.h"
#include "fault/fault.h"
#include "osiris/node.h"
#include "proto/message.h"
#include "sim/time.h"

namespace {

using namespace osiris;

constexpr std::uint32_t kMessages = 200;
constexpr std::size_t kBytes = 2000;

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

struct TenantResult {
  std::uint64_t delivered = 0;
  double goodput_mbps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct ScenarioResult {
  std::map<int, TenantResult> tenants;
  std::uint64_t attacker_violations = 0;
  bool attacker_quarantined = false;
};

ScenarioResult run_scenario(bool with_adversary) {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::AdcSupervisor sup(tb.a.eng, tb.a.txp, tb.a.rxp);

  struct Tenant {
    std::unique_ptr<adc::Adc> tx, rx;
    std::vector<sim::Tick> sent_at;
    std::vector<double> latencies_us;
    std::uint64_t delivered = 0;
    sim::Tick last = 0;
  };
  std::map<int, Tenant> tenants;
  for (int pair = 1; pair <= 2; ++pair) {
    const auto vci = static_cast<std::uint16_t>(900 + pair);
    Tenant t;
    t.tx = std::make_unique<adc::Adc>(deps_of(tb.a), pair,
                                      std::vector<atm::Vci>{vci}, 1, sc);
    t.rx = std::make_unique<adc::Adc>(deps_of(tb.b), pair,
                                      std::vector<atm::Vci>{vci}, 1, sc);
    tenants.emplace(pair, std::move(t));
  }
  for (auto& [pair, t] : tenants) {
    Tenant* tp = &t;
    t.rx->set_sink([tp](sim::Tick at, std::uint16_t,
                        std::vector<std::uint8_t>&& d) {
      std::uint32_t idx = 0;
      std::memcpy(&idx, d.data(), sizeof(idx));
      if (idx < tp->sent_at.size()) {
        tp->latencies_us.push_back(sim::to_us(at - tp->sent_at[idx]));
      }
      ++tp->delivered;
      tp->last = at;
    });
    adc::AdcSupervisor::Budget b;
    b.max_violations = 8;
    sup.watch(*t.tx, b);
  }

  std::unique_ptr<adc::Adc> attacker;
  fault::FaultPlane adversary(0xBAD);
  if (with_adversary) {
    adversary.arm(fault::Point::kAdcGarbageDescriptor, {1.0, 0, ~0ull});
    attacker = std::make_unique<adc::Adc>(deps_of(tb.a), 3,
                                          std::vector<atm::Vci>{910},
                                          /*priority=*/3, sc);
    attacker->set_fault_plane(&adversary);
    adc::AdcSupervisor::Budget tight;
    tight.max_violations = 8;
    sup.watch(*attacker, tight);
  }
  sup.start(sim::us(200), sim::sec(1));

  std::vector<std::uint8_t> payload(kBytes, 0x77);
  std::map<int, sim::Tick> clock;
  sim::Tick atk_clock = 0;
  std::unique_ptr<proto::Message> junk;
  if (attacker) {
    junk = std::make_unique<proto::Message>(proto::Message::from_payload(
        attacker->space(), std::vector<std::uint8_t>(256, 0xEE)));
    attacker->authorize(junk->scatter());
  }
  for (std::uint32_t k = 0; k < kMessages; ++k) {
    for (auto& [pair, t] : tenants) {
      const auto vci = static_cast<std::uint16_t>(900 + pair);
      std::memcpy(payload.data(), &k, sizeof(k));
      proto::Message m = proto::Message::from_payload(t.tx->space(), payload);
      t.tx->authorize(m.scatter());
      t.sent_at.push_back(clock[pair]);
      // Messages are views; the frames live in the tenant's address space
      // until the Adc is destroyed, so dropping `m` here is safe.
      clock[pair] = t.tx->send(clock[pair], vci, m);
    }
    if (attacker) {
      // Higher-priority garbage, two chains per round: without the
      // firmware checks this queue would drain first and starve pairs 1-2.
      atk_clock = attacker->send(atk_clock, 910, *junk);
      atk_clock = attacker->send(atk_clock, 910, *junk);
    }
  }
  tb.run();

  ScenarioResult r;
  for (auto& [pair, t] : tenants) {
    TenantResult tr;
    tr.delivered = t.delivered;
    tr.goodput_mbps =
        t.last > 0 ? sim::mbps(t.delivered * kBytes, t.last) : 0.0;
    tr.p50_us = benchjson::quantile(t.latencies_us, 0.50);
    tr.p99_us = benchjson::quantile(t.latencies_us, 0.99);
    r.tenants[pair] = tr;
  }
  if (attacker) {
    r.attacker_violations = sup.violations(attacker->pair());
    r.attacker_quarantined = sup.quarantined(attacker->pair());
  }
  return r;
}

void emit(const char* name, const ScenarioResult& r, benchjson::Writer& json) {
  for (const auto& [pair, tr] : r.tenants) {
    std::printf("  %-10s | tenant %d | %4llu/%u | %8.1f | %8.1f | %8.1f\n",
                name, pair, static_cast<unsigned long long>(tr.delivered),
                kMessages, tr.goodput_mbps, tr.p50_us, tr.p99_us);
    json.open_object();
    json.field("scenario", std::string(name));
    json.field("tenant", static_cast<std::uint64_t>(pair));
    json.field("delivered", tr.delivered);
    json.field("sent", static_cast<std::uint64_t>(kMessages));
    json.field("goodput_mbps", tr.goodput_mbps);
    json.field("p50_latency_us", tr.p50_us);
    json.field("p99_latency_us", tr.p99_us);
    json.close_object();
  }
}

}  // namespace

int main() {
  std::puts("ADC tenant isolation: goodput/latency with and without an");
  std::puts("adversarial flooder (simulated time)");
  std::printf("  %u x %zu B messages per tenant; adversary floods forged\n"
              "  descriptors at higher priority until quarantined\n\n",
              kMessages, kBytes);
  std::puts("  scenario   | tenant   | delivrd  | Mbit/s   |  p50 us  |  p99 us");
  std::puts("  -----------+----------+----------+----------+----------+---------");

  const ScenarioResult base = run_scenario(/*with_adversary=*/false);
  const ScenarioResult adv = run_scenario(/*with_adversary=*/true);

  benchjson::Writer json;
  json.open_object();
  json.field("bench", std::string("adc_isolation"));
  json.field("messages", static_cast<std::uint64_t>(kMessages));
  json.field("bytes", static_cast<std::uint64_t>(kBytes));
  json.open_array("rows");
  emit("baseline", base, json);
  emit("adversary", adv, json);
  json.close_array();
  json.field("attacker_violations", adv.attacker_violations);
  json.field("attacker_quarantined", adv.attacker_quarantined);
  json.close_object();

  std::printf("\n  attacker: %llu violations, quarantined=%s\n\n",
              static_cast<unsigned long long>(adv.attacker_violations),
              adv.attacker_quarantined ? "yes" : "no");
  json.dump("adc_isolation");
  return 0;
}
