// §2.1.1 ablation: lock-free one-reader-one-writer queues vs the
// test-and-set spin-lock design the board's hardware invites.
//
// Two dimensions, both in simulated time:
//   * dual-port-RAM accesses per operation (the paper's "minimize loads
//     and stores" goal),
//   * operation latency when host and board hit the queue concurrently
//     (lock contention stalls both; lock-free never does).
// A google-benchmark section also reports wall-clock cost of the queue
// code itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "dpram/dpram.h"
#include "dpram/lockq.h"
#include "dpram/queue.h"
#include "sim/engine.h"

namespace {

using namespace osiris;
using namespace osiris::dpram;

void contention_table() {
  std::puts("Lock-free vs spin-lock queues (paper 2.1.1), simulated time");
  std::puts("");
  // Cost of one 32-bit access: host side pays TURBOchannel PIO (~15 cycles
  // read); use 600 ns as a representative mixed cost.
  const sim::Duration access = sim::ns(600);

  // Scenario: host pushes and board pops N descriptors, all wanting the
  // queue at the same instant.
  constexpr int kOps = 64;

  // Lock-free: each side proceeds independently; per-op time = own accesses.
  {
    DualPortRam ram;
    const QueueLayout lay{0, 128};
    QueueWriter w(ram, lay, Side::kHost);
    QueueReader r(ram, lay, Side::kBoard);
    std::uint64_t host_accesses = 0, board_accesses = 0;
    for (int i = 0; i < kOps; ++i) {
      host_accesses += w.push({1u, 2u, 3, 0, 4u}).ram_accesses;
    }
    for (int i = 0; i < kOps; ++i) {
      OpResult res;
      r.pop(&res);
      board_accesses += res.ram_accesses;
    }
    const double host_time_us =
        sim::to_us(access * host_accesses);  // serial on the host alone
    std::printf("lock-free: %2.0f accesses/op; %d pushes finish in %.1f us "
                "(no cross-side waiting, ever)\n",
                static_cast<double>(host_accesses) / kOps, kOps, host_time_us);
  }

  // Spin-lock: every operation serializes on the lock.
  {
    sim::Engine eng;
    DualPortRam ram;
    TestAndSetLock lock(eng, "tas");
    const QueueLayout lay{0, 128};
    LockedQueue q(ram, lay, lock);
    sim::Tick last_push = 0, last_pop = 0;
    for (int i = 0; i < kOps; ++i) {
      if (const auto t = q.push(Side::kHost, 0, access, {1u, 2u, 3, 0, 4u})) {
        last_push = *t;
      }
    }
    for (int i = 0; i < kOps; ++i) {
      sim::Tick done = 0;
      q.pop(Side::kBoard, 0, access, &done);
      last_pop = done;
    }
    std::printf("spin-lock: %d pushes + %d pops, all requested at t=0, "
                "finish at %.1f us (host and board fully serialized)\n",
                kOps, kOps, sim::to_us(std::max(last_push, last_pop)));
    std::printf("           lock wait time accumulated: %.1f us\n",
                sim::to_us(lock.resource().wait_total()));
  }
  std::puts("");
}

// Wall-clock micro-benchmarks of the queue implementations themselves.
void BM_LockFreePushPop(benchmark::State& state) {
  DualPortRam ram;
  const QueueLayout lay{0, 64};
  QueueWriter w(ram, lay, Side::kHost);
  QueueReader r(ram, lay, Side::kBoard);
  for (auto _ : state) {
    w.push({1, 2, 3, 0, 4});
    benchmark::DoNotOptimize(r.pop());
  }
}
BENCHMARK(BM_LockFreePushPop);

void BM_SpinLockPushPop(benchmark::State& state) {
  sim::Engine eng;
  DualPortRam ram;
  TestAndSetLock lock(eng, "tas");
  const QueueLayout lay{0, 64};
  LockedQueue q(ram, lay, lock);
  const sim::Duration acc = sim::ns(600);
  sim::Tick done = 0;
  sim::Tick t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.push(Side::kHost, t, acc, {1, 2, 3, 0, 4}));
    benchmark::DoNotOptimize(q.pop(Side::kBoard, t, acc, &done));
    t = done;
  }
}
BENCHMARK(BM_SpinLockPushPop);

}  // namespace

int main(int argc, char** argv) {
  contention_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
