// §2.3 ablation: cache coherence strategies on the non-coherent 5000/200.
//
//   * lazy invalidation (the paper's optimization): never invalidate up
//     front; rely on the UDP checksum to catch stale data and recover;
//   * eager (pessimistic) invalidation: invalidate every received byte —
//     ~1 CPU cycle per word plus the induced misses;
//   * staleness microscopy: how often does reusing 64 x 16 KB receive
//     buffers against a 64 KB cache actually produce stale reads?
#include <cstdio>

#include "mem/cache.h"
#include "osiris/harness.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

double rx_mbps(bool eager, bool cksum) {
  NodeConfig c = make_5000_200_config();
  c.board.double_cell_dma_rx = false;
  c.driver.eager_invalidate = eager;
  sim::Engine eng;
  Node n(eng, c);
  proto::StackConfig sc;
  sc.udp_checksum = cksum;
  auto stack = n.make_stack(sc);
  return harness::receive_throughput(n, *stack, 700, 64 * 1024, 24, sc).mbps;
}

void staleness_microscopy() {
  // Condition 2 of §2.3: with 64 buffers in rotation, a cached word must
  // survive 63 intervening buffers' worth of activity to go stale. Count
  // actual stale lines under a sustained checksumming receiver.
  NodeConfig c = make_5000_200_config();
  c.board.double_cell_dma_rx = false;
  sim::Engine eng;
  Node n(eng, c);
  proto::StackConfig sc;
  sc.udp_checksum = true;  // touches every byte through the cache
  auto stack = n.make_stack(sc);
  const auto r = harness::receive_throughput(n, *stack, 702, 16 * 1024, 60, sc);
  std::printf("  sustained checksumming receiver, 60 x 16 KB messages:\n");
  std::printf("    messages delivered:      %llu\n",
              static_cast<unsigned long long>(r.messages));
  std::printf("    lines made stale by DMA: %llu\n",
              static_cast<unsigned long long>(n.cache.dma_stale_lines()));
  std::printf("    stale READS observed:    %llu\n",
              static_cast<unsigned long long>(n.cache.stale_reads()));
  std::printf("    checksum failures:       %llu (stale recoveries: %llu)\n",
              static_cast<unsigned long long>(stack->checksum_failures()),
              static_cast<unsigned long long>(stack->stale_recoveries()));
  std::puts("  (the paper saw no stale data at all in its test applications;");
  std::puts("   the 64 KB cache simply cannot hold a line across 63 buffers)");
}

}  // namespace

int main() {
  std::puts("Cache invalidation strategies on the DEC 5000/200 (paper 2.3)");
  std::puts("");
  std::puts("Receive throughput, 64 KB messages, single-cell DMA:");
  std::printf("  lazy invalidation (paper's choice):   %6.1f Mbps\n",
              rx_mbps(false, false));
  std::printf("  eager invalidation (every buffer):    %6.1f Mbps\n",
              rx_mbps(true, false));
  std::puts("  [paper: 340 vs 250 Mbps — invalidation costs ~26%]");
  std::puts("");
  std::puts("With the CPU actually reading the data (UDP checksum on):");
  std::printf("  lazy:  %6.1f Mbps   eager: %6.1f Mbps\n", rx_mbps(false, true),
              rx_mbps(true, true));
  std::puts("  [paper: ~80 Mbps once the CPU touches the data at all]");
  std::puts("");
  staleness_microscopy();
  return 0;
}
