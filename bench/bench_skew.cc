// §2.6 ablation: cell misordering from link striping.
//
// Sweeps skew across the three causes (path length, mux jitter, switch
// queueing) and reports, for both reassembly strategies:
//   * correctness (messages delivered intact),
//   * the double-cell DMA combining fraction — the §2.6 observation that
//     "once skew is introduced, the probability that two successive cells
//     will be received in order is greatly reduced",
//   * the resulting receive-side throughput effect.
#include <cstdio>

#include "osiris/node.h"
#include "proto/message.h"

namespace {

using namespace osiris;

struct Result {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double combine_fraction = 0;
  double mbps = 0;
};

Result run(const char* strategy, double skew_us) {
  NodeConfig ca = make_3000_600_config();
  NodeConfig cb = make_3000_600_config();
  ca.board.reassembly = strategy;
  cb.board.reassembly = strategy;
  ca.link = link::skewed_config(skew_us, 101);
  Testbed tb(std::move(ca), std::move(cb));
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});

  Result r;
  sim::Tick first = 0, last = 0;
  std::uint64_t bytes = 0;
  sb->set_sink([&](sim::Tick at, std::uint16_t, std::vector<std::uint8_t>&& d) {
    if (r.delivered == 0) first = at;
    last = at;
    bytes += d.size();
    ++r.delivered;
  });

  std::vector<std::uint8_t> data(32 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  proto::Message m = proto::Message::from_payload(tb.a.kernel_space, data);
  sim::Tick t = 0;
  constexpr int kMsgs = 30;
  for (int i = 0; i < kMsgs; ++i) t = sa->send(t, vci, m);
  tb.run();

  r.sent = kMsgs;
  r.combine_fraction = tb.b.rxp.combine_fraction();
  if (r.delivered >= 2 && last > first) {
    r.mbps = sim::mbps(bytes - data.size(), last - first);
  }
  return r;
}

}  // namespace

int main() {
  std::puts("Striping skew vs reassembly strategy (paper 2.6)");
  std::puts("30 x 32 KB messages, 3000/600 pair, double-cell receive DMA.");
  std::puts("");
  std::puts("strategy  skew(us)  delivered  combine-fraction  goodput(Mbps)");
  const double skews[] = {0, 2, 5, 10, 20, 40, 80};
  for (const char* strat : {"seq", "quad"}) {
    for (const double s : skews) {
      const Result r = run(strat, s);
      std::printf("  %-5s    %5.0f      %2llu/30        %5.2f          %7.1f\n",
                  strat, s, static_cast<unsigned long long>(r.delivered),
                  r.combine_fraction, r.mbps);
    }
  }
  std::puts("");
  std::puts("Both strategies deliver every message intact at every skew; the");
  std::puts("combining fraction collapses as skew grows — the paper's \"serious");
  std::puts("disadvantage\" of striping for the double-cell DMA optimization.");
  std::puts("(Goodput is flat above because the transmit side — single-cell");
  std::puts("DMA, ~318 Mbps — is the bottleneck, exactly as in the paper's");
  std::puts("testbed. The cost of the lost combining is what Figure 2's");
  std::puts("double-vs-single columns quantify on a receive-limited path:");
  std::puts("a fully skewed link makes the receive side behave like the");
  std::puts("single-cell controller — ~388 -> ~332 Mbps on the 5000/200;");
  std::puts("see bench_fig2_receive_5000.)");
  return 0;
}
