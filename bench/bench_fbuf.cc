// §3.1 ablation: fbufs — cached vs uncached cross-domain buffer transfer.
//
// A microkernel data path spans driver -> protocol server -> application
// domains. With early demultiplexing the adaptor places each incoming PDU
// directly into an fbuf already mapped along its path ("cached"); without
// it, every page must be remapped at every domain crossing ("uncached") —
// the paper cites an order of magnitude difference.
#include <cstdio>

#include "fbuf/fbuf.h"
#include "osiris/node.h"

namespace {

using namespace osiris;

struct Setup {
  sim::Engine eng;
  host::MachineConfig mc;
  mem::PhysicalMemory pm{1 << 25};
  mem::FrameAllocator frames{1 << 25, true, 9};
  tc::TurboChannel bus;
  host::HostCpu cpu;
  fbuf::FbufPool pool;

  explicit Setup(host::MachineConfig m)
      : mc(std::move(m)),
        bus(eng, mc.bus),
        cpu(eng, mc, bus),
        pool(eng, mc, cpu, frames, fbuf::FbufPool::Config{}) {}
};

// Delivers `n_pages` pages along a path with `hops` crossings; returns
// effective Mbps of cross-domain transfer.
double deliver_rate(Setup& s, int path, std::size_t n_pages, std::size_t hops,
                    bool warm) {
  // Optionally warm the path (install its cached pool).
  sim::Tick t = 0;
  if (warm) {
    auto [b, t2] = s.pool.alloc(t, path);
    s.pool.free(t2, b);
    t = t2;
  }
  const sim::Tick start = t;
  std::uint64_t bytes = 0;
  std::vector<fbuf::Fbuf> held;
  for (std::size_t i = 0; i < n_pages; ++i) {
    auto [b, t2] = s.pool.alloc(t, path);
    t = s.pool.deliver(t2, b, hops);
    bytes += b.bytes;
    held.push_back(b);
    if (held.size() >= 16) {  // application consumes and frees
      for (auto& h : held) s.pool.free(t, h);
      held.clear();
    }
  }
  for (auto& h : held) s.pool.free(t, h);
  return sim::mbps(bytes, t - start);
}

}  // namespace

int main() {
  std::puts("fbufs: cached vs uncached cross-domain transfer (paper 3.1)");
  std::puts("Data path: driver -> protocol server -> application (2 crossings)");
  std::puts("");
  for (const auto& mc : {host::decstation_5000_200(), host::dec_3000_600()}) {
    Setup s(mc);
    const int cached_path = s.pool.create_path({0, 1, 2});
    const int cold_path = s.pool.create_path({0, 1, 2});

    const double warm_mbps = deliver_rate(s, cached_path, 256, 2, true);
    // Cached us per page = page bits / (bits per us).
    const double cached_us = static_cast<double>(mem::kPageSize) * 8.0 / warm_mbps;
    // Uncached: the first allocation on a never-used path delivers an
    // uncached fbuf, remapped at every crossing.
    auto [b, t0] = s.pool.alloc(0, cold_path);
    const sim::Tick t1 = s.pool.deliver(t0, b, 2);
    const double cold_us = sim::to_us(t1 - t0);

    std::printf("%s\n", mc.name.c_str());
    std::printf("  cached fbuf:   %7.1f us per page (2 crossings) -> %7.1f Mbps\n",
                cached_us, warm_mbps);
    std::printf("  uncached fbuf: %7.1f us per page (2 crossings) -> %7.1f Mbps\n",
                cold_us, static_cast<double>(mem::kPageSize) * 8.0 / cold_us);
    std::printf("  cached advantage: %.1fx\n", cold_us / cached_us);
    std::puts("");
  }
  std::puts("Paper: using a cached fbuf vs an uncached one \"can mean an order");
  std::puts("of magnitude difference\" in cross-domain transfer speed.");
  return 0;
}
