// §3.2 / §4 ablation: application device channels.
//
// Three ways for an application to reach the network:
//   * kernel-resident test program (the paper's baseline measurements),
//   * ADC: direct user-space access to a board queue pair — no syscalls,
//     no domain crossings on the data path,
//   * traditional path: user process behind the kernel — every message
//     pays syscalls and domain crossings.
//
// The paper's §4 headline: ADC user-to-user latency matched kernel-to-
// kernel within measurement error.
#include <cstdio>

#include "adc/adc.h"
#include "osiris/node.h"
#include "proto/message.h"

namespace {

using namespace osiris;

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

std::vector<std::uint8_t> payload(std::uint32_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 3);
  return v;
}

double rtt_kernel(bool alpha, std::uint32_t bytes, int extra_crossings) {
  Testbed tb(alpha ? make_3000_600_config() : make_5000_200_config(),
             alpha ? make_3000_600_config() : make_5000_200_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  const atm::Vci vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(sc);
  auto sb = tb.b.make_stack(sc);
  const auto data = payload(bytes);
  proto::Message ma = proto::Message::from_payload(tb.a.kernel_space, data);
  proto::Message mb = proto::Message::from_payload(tb.b.kernel_space, data);
  const host::MachineConfig& mc = tb.a.cfg.machine;
  // extra_crossings == 0: test programs linked into the kernel (the
  // paper's baseline — no toll). Otherwise: a traditional user process
  // paying a syscall plus that many IPC hops per send and per receive.
  const host::Work user_toll{
      extra_crossings == 0
          ? sim::Duration{0}
          : mc.syscall + mc.domain_crossing *
                             static_cast<sim::Duration>(extra_crossings),
      0};

  sim::Summary rtts;
  int remaining = 10;
  sim::Tick started = 0;
  sb->set_sink([&](sim::Tick at, std::uint16_t v, std::vector<std::uint8_t>&&) {
    sim::Tick t = tb.b.cpu.exec(at, user_toll);
    sb->send(t, v, mb);
  });
  sa->set_sink([&](sim::Tick at, std::uint16_t v, std::vector<std::uint8_t>&&) {
    sim::Tick t = tb.a.cpu.exec(at, user_toll);
    rtts.add(sim::to_us(t - started));
    if (--remaining > 0) {
      started = t;
      sa->send(tb.a.cpu.exec(t, user_toll), v, ma);
    }
  });
  started = 0;
  sa->send(tb.a.cpu.exec(0, user_toll), vci, ma);
  tb.run();
  return rtts.mean();
}

double rtt_adc(bool alpha, std::uint32_t bytes) {
  Testbed tb(alpha ? make_3000_600_config() : make_5000_200_config(),
             alpha ? make_3000_600_config() : make_5000_200_config());
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;
  adc::Adc ca(deps_of(tb.a), 1, {900}, 1, sc);
  adc::Adc cb(deps_of(tb.b), 1, {900}, 1, sc);
  const auto data = payload(bytes);
  proto::Message ma = proto::Message::from_payload(ca.space(), data);
  proto::Message mb = proto::Message::from_payload(cb.space(), data);
  ca.authorize(ma.scatter());
  cb.authorize(mb.scatter());

  sim::Summary rtts;
  int remaining = 10;
  sim::Tick started = 0;
  cb.set_sink([&](sim::Tick at, std::uint16_t v, std::vector<std::uint8_t>&&) {
    cb.send(at, v, mb);
  });
  ca.set_sink([&](sim::Tick at, std::uint16_t v, std::vector<std::uint8_t>&&) {
    rtts.add(sim::to_us(at - started));
    if (--remaining > 0) {
      started = at;
      ca.send(at, v, ma);
    }
  });
  ca.send(0, 900, ma);
  tb.run();
  return rtts.mean();
}

}  // namespace

int main() {
  std::puts("Application device channels (paper 3.2 / 4): RTT comparison (us)");
  std::puts("");
  std::puts("machine    size     kernel-kernel   ADC user-user   user via kernel");
  for (const bool alpha : {false, true}) {
    for (const std::uint32_t bytes : {1u, 1024u, 4096u}) {
      const double k = rtt_kernel(alpha, bytes, 0);
      const double a = rtt_adc(alpha, bytes);
      const double u = rtt_kernel(alpha, bytes, 2);
      std::printf("%-9s %5u B     %7.1f         %7.1f         %7.1f\n",
                  alpha ? "3000/600" : "5000/200", bytes, k, a, u);
    }
  }
  std::puts("");
  std::puts("Paper: ADC user-to-user results were within the error margins of");
  std::puts("kernel-to-kernel — no penalty for crossing the kernel/user");
  std::puts("protection boundary. The traditional path pays syscalls + IPC.");
  return 0;
}
