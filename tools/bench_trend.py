#!/usr/bin/env python3
"""Fold BENCH_*.json perf fields into a single trend table.

Every throughput-style bench emits the common perf-trajectory fields
(wall_seconds, engine_events, events_per_sec, threads) via
benchjson::perf_fields.  This script sweeps one or more directories (or
explicit files) for BENCH_*.json, prints an aligned table of those fields,
and optionally appends the rows to a TSV history file so successive CI runs
accumulate a perf trend over commits.

Usage:
    tools/bench_trend.py [paths...] [--append FILE] [--label LABEL]
                         [--floors FILE] [--html FILE]

Paths default to build/bench and build (bench_parallel writes to the build
root).  Files without the perf fields (e.g. the robustness benches, which
report goodput/latency rows instead) are listed with dashes, not errors.
Exits nonzero only if no BENCH_*.json file is found at all.

--floors generalizes the old single-bench engine_events_per_sec.floor: the
file (bench/floors.tsv) holds one row per gated metric —

    bench <TAB> field <TAB> floor <TAB> slack <TAB> kind

`bench` names BENCH_<bench>.json, `field` a top-level numeric field in it,
and the check is  value >= floor * slack  (slack < 1 is the haircut that
absorbs machine-to-machine noise).  kind=perf rows are skipped when
OSIRIS_SANITIZE is set (sanitized binaries are legitimately slower);
kind=quality rows — fairness indices, goodput retention — always apply.
Kinds with an `_mc` suffix (perf_mc, perf_ceiling_mc, ...) additionally
require a multi-core host: they are skipped when the detected core count
(OSIRIS_CI_CORES from ci.sh, else the bench JSON's host_cores, else
os.cpu_count()) is below 2 — the parallel speedup and barrier-stall gates
mean nothing when two worker threads time-slice one core.  Any violated
or uncheckable floor makes the script exit nonzero.

--html renders a self-contained dashboard (inline SVG, no dependencies):
the events/sec trajectory of every bench series across the accumulated
--append history with floor lines and violation markers, the latest PDU
latency percentiles and per-stage medians from BENCH_table1_latency.json,
the QoS quality gates from BENCH_qos.json, and from BENCH_parallel.json
the speedup/stall-fraction trajectory (with the 1.3x floor and 0.3
ceiling drawn in) plus the worker phase breakdown.  Writing the
dashboard never affects the exit status; only --floors gates.
"""

import argparse
import glob
import json
import os
import subprocess
import sys
import time


def find_bench_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(sorted(glob.glob(os.path.join(p, "BENCH_*.json"))))
        elif os.path.isfile(p):
            files.append(p)
    # De-duplicate while preserving order (a file may match twice via
    # overlapping path arguments).
    seen = set()
    out = []
    for f in files:
        key = os.path.abspath(f)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out


def load_rows(files):
    rows = []
    for path in files:
        name = os.path.basename(path)
        if name.startswith("BENCH_"):
            name = name[len("BENCH_"):]
        if name.endswith(".json"):
            name = name[: -len(".json")]
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            rows.append({"bench": name, "error": str(exc)})
            continue
        row = {
            "bench": name,
            "wall_seconds": data.get("wall_seconds"),
            "engine_events": data.get("engine_events"),
            "events_per_sec": data.get("events_per_sec"),
            "threads": data.get("threads", 1),
        }
        # bench_parallel carries per-thread-count runs; surface each so the
        # trend shows serial and parallel throughput side by side.  The
        # run-level speedup and stall fraction ride on the multi-thread
        # subrow so the history TSV carries their trajectory too.
        subruns = []
        for sub in data.get("runs", []):
            if isinstance(sub, dict) and "events_per_sec" in sub:
                subrow = {
                    "bench": "%s/t%s" % (name, sub.get("threads", "?")),
                    "wall_seconds": sub.get("wall_seconds"),
                    "engine_events": sub.get("engine_events"),
                    "events_per_sec": sub.get("events_per_sec"),
                    "threads": sub.get("threads", 1),
                }
                if sub.get("threads", 1) != 1:
                    for key in ("speedup", "barrier_stall_fraction"):
                        if isinstance(data.get(key), (int, float)):
                            subrow[key] = data[key]
                subruns.append(subrow)
        if subruns:
            rows.extend(subruns)
        else:
            rows.append(row)
    return rows


def fmt(value, spec):
    if value is None:
        return "-"
    try:
        return spec % value
    except TypeError:
        return str(value)


def print_table(rows):
    header = ("bench", "threads", "wall_s", "events", "events/sec")
    widths = [max(len(header[0]), max((len(r["bench"]) for r in rows), default=0)),
              7, 9, 12, 13]
    line = "%-*s  %*s  %*s  %*s  %*s"
    print(line % (widths[0], header[0], widths[1], header[1], widths[2],
                  header[2], widths[3], header[3], widths[4], header[4]))
    for r in rows:
        if "error" in r:
            print("%-*s  unreadable: %s" % (widths[0], r["bench"], r["error"]))
            continue
        print(line % (
            widths[0], r["bench"],
            widths[1], fmt(r["threads"], "%d"),
            widths[2], fmt(r["wall_seconds"], "%.3f"),
            widths[3], fmt(r["engine_events"], "%d"),
            widths[4], fmt(r["events_per_sec"], "%.0f"),
        ))


def load_floors(path):
    """Parses the floors TSV into a list of dicts; raises ValueError on a
    malformed row so a typo in the gate file fails loudly, not silently."""
    floors = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if parts[0] == "bench":  # column header
                continue
            if len(parts) != 5:
                raise ValueError("%s:%d: want 5 tab-separated columns, got %d"
                                 % (path, lineno, len(parts)))
            bench, field, floor, slack, kind = parts
            # An `_mc` suffix on any kind marks a multi-core-only gate.
            base_kind = kind[:-len("_mc")] if kind.endswith("_mc") else kind
            if base_kind not in ("perf", "quality",
                                 "perf_ceiling", "quality_ceiling"):
                raise ValueError(
                    "%s:%d: kind must be perf|quality|perf_ceiling|"
                    "quality_ceiling (optionally with an _mc suffix), got %r"
                    % (path, lineno, kind))
            floors.append({
                "bench": bench,
                "field": field,
                "floor": float(floor),
                "slack": float(slack),
                "kind": kind,
            })
    return floors


def host_cores(data_by_bench):
    """Core count for the _mc gates: ci.sh's OSIRIS_CI_CORES wins, then the
    parallel bench's own host_cores record, then os.cpu_count()."""
    env = os.environ.get("OSIRIS_CI_CORES")
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    par = data_by_bench.get("parallel")
    if isinstance(par, dict) and isinstance(par.get("host_cores"), int):
        return par["host_cores"]
    return os.cpu_count() or 1


def check_floors(files, floors):
    """Checks each floor row against its bench's JSON.  Returns the number
    of violations (missing file/field counts as one — a gate that cannot
    run must not pass)."""
    data_by_bench = {}
    for path in files:
        name = os.path.basename(path)
        if name.startswith("BENCH_") and name.endswith(".json"):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    data_by_bench[name[len("BENCH_"):-len(".json")]] = \
                        json.load(fh)
            except (OSError, ValueError):
                pass  # already reported as unreadable in the trend table
    sanitized = bool(os.environ.get("OSIRIS_SANITIZE"))
    cores = host_cores(data_by_bench)
    failures = 0
    for fl in floors:
        tag = "%s.%s" % (fl["bench"], fl["field"])
        kind = fl["kind"]
        multicore_only = kind.endswith("_mc")
        if multicore_only:
            kind = kind[:-len("_mc")]
        ceiling = kind.endswith("_ceiling")
        if kind.startswith("perf") and sanitized:
            print("floor SKIP %-32s (perf gate, OSIRIS_SANITIZE set)" % tag)
            continue
        if multicore_only and cores < 2:
            print("floor SKIP %-32s (multi-core gate, host has %d core%s)"
                  % (tag, cores, "" if cores == 1 else "s"))
            continue
        data = data_by_bench.get(fl["bench"])
        value = data.get(fl["field"]) if isinstance(data, dict) else None
        cut = fl["floor"] * fl["slack"]
        rel = "<=" if ceiling else ">="
        if not isinstance(value, (int, float)):
            print("floor FAIL %-32s missing (want %s %g)" % (tag, rel, cut))
            failures += 1
        elif (value > cut) if ceiling else (value < cut):
            print("floor FAIL %-32s %g not %s %g (bound %g x slack %g)"
                  % (tag, value, rel, cut, fl["floor"], fl["slack"]))
            failures += 1
        else:
            print("floor ok   %-32s %g %s %g" % (tag, value, rel, cut))
    return failures


def run_label():
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        rev = "unknown"
    return "%s@%s" % (rev, time.strftime("%Y-%m-%dT%H:%M:%S"))


def append_history(rows, path, label):
    # The speedup/stall columns arrived after the first histories were
    # written; load_history indexes columns by header name, so a file that
    # predates them simply yields no speedup trajectory (the extra trailing
    # fields on new rows are ignored against the old header).
    fresh = not os.path.exists(path) or os.path.getsize(path) == 0
    with open(path, "a", encoding="utf-8") as fh:
        if fresh:
            fh.write("run\tbench\tthreads\twall_seconds\tengine_events"
                     "\tevents_per_sec\tspeedup\tstall\n")
        for r in rows:
            if "error" in r or r.get("events_per_sec") is None:
                continue
            fh.write("%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n" % (
                label, r["bench"], r["threads"], r["wall_seconds"],
                r["engine_events"], r["events_per_sec"],
                r.get("speedup", "-"),
                r.get("barrier_stall_fraction", "-")))


# --------------------------------------------------------------------------
# HTML dashboard (--html).  Everything below is presentation only: pure
# stdlib, inline SVG, no exit-status effect.

_PALETTE = ["#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed",
            "#0891b2", "#be185d", "#4d7c0f", "#9333ea", "#b91c1c"]


def load_history(path):
    """Reads the --append TSV back as ({bench: [(run_index, label, value)]},
    run labels, {metric: [(run_index, label, value)]}) where the extras dict
    carries the parallel speedup/stall trajectory when the history has those
    columns.  Missing/empty file yields empties — the dashboard then plots
    only the current run."""
    series = {}
    labels = []
    extras = {}
    if not path or not os.path.exists(path):
        return series, labels, extras
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().rstrip("\n").split("\t")
        try:
            i_run = header.index("run")
            i_bench = header.index("bench")
            i_eps = header.index("events_per_sec")
        except ValueError:
            return {}, [], {}
        opt = {}
        for col in ("speedup", "stall"):
            if col in header:
                opt[col] = header.index(col)
        for raw in fh:
            parts = raw.rstrip("\n").split("\t")
            if len(parts) <= max(i_run, i_bench, i_eps):
                continue
            run, bench = parts[i_run], parts[i_bench]
            try:
                eps = float(parts[i_eps])
            except ValueError:
                continue
            if run not in labels:
                labels.append(run)
            series.setdefault(bench, []).append((labels.index(run), run, eps))
            for col, i_col in opt.items():
                if i_col >= len(parts):
                    continue
                try:
                    v = float(parts[i_col])
                except ValueError:
                    continue  # "-" on serial rows and pre-column histories
                extras.setdefault(col, []).append((labels.index(run), run, v))
    return series, labels, extras


def _svg_line_chart(series, labels, floors, width=900, height=320):
    """events/sec trajectories, one polyline per bench series.  Floor rows
    gating events_per_sec draw as dashed lines; points under them get a red
    ring."""
    pad_l, pad_r, pad_t, pad_b = 70, 180, 16, 40
    pw, ph = width - pad_l - pad_r, height - pad_t - pad_b
    all_vals = [v for pts in series.values() for (_, _, v) in pts]
    floor_cuts = {fl["bench"]: fl["floor"] * fl["slack"] for fl in floors
                  if fl["field"] == "events_per_sec"}
    all_vals.extend(floor_cuts.values())
    if not all_vals:
        return "<p>(no events/sec history)</p>"
    vmax = max(all_vals) * 1.08
    nruns = max(len(labels), 1)

    def sx(i):
        return pad_l + (pw * i / max(nruns - 1, 1) if nruns > 1 else pw / 2)

    def sy(v):
        return pad_t + ph * (1 - v / vmax)

    out = ['<svg viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg">'
           % (width, height)]
    # y grid + labels (events/sec, engineering notation)
    for k in range(5):
        v = vmax * k / 4
        y = sy(v)
        out.append('<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" '
                   'stroke="#e5e7eb"/>' % (pad_l, y, width - pad_r, y))
        out.append('<text x="%d" y="%.1f" font-size="11" fill="#6b7280" '
                   'text-anchor="end">%.1fM</text>'
                   % (pad_l - 6, y + 4, v / 1e6))
    # x labels: first/last run label (short rev part)
    for i in (0, nruns - 1):
        if i < len(labels):
            out.append('<text x="%.1f" y="%d" font-size="10" fill="#6b7280" '
                       'text-anchor="middle">%s</text>'
                       % (sx(i), height - pad_b + 16,
                          html_escape(labels[i].split("@")[0])))
    for idx, (bench, pts) in enumerate(sorted(series.items())):
        color = _PALETTE[idx % len(_PALETTE)]
        coords = " ".join("%.1f,%.1f" % (sx(i), sy(v)) for (i, _, v) in pts)
        out.append('<polyline points="%s" fill="none" stroke="%s" '
                   'stroke-width="1.8"/>' % (coords, color))
        cut = floor_cuts.get(bench.split("/")[0])
        for (i, run, v) in pts:
            bad = cut is not None and v < cut
            out.append('<circle cx="%.1f" cy="%.1f" r="%s" fill="%s"%s>'
                       '<title>%s  %s  %.0f ev/s</title></circle>'
                       % (sx(i), sy(v), "4.5" if bad else "3",
                          "#dc2626" if bad else color,
                          ' stroke="#7f1d1d" stroke-width="2"' if bad else "",
                          html_escape(bench), html_escape(run), v))
        # legend
        ly = pad_t + 14 * idx
        out.append('<rect x="%d" y="%d" width="10" height="10" fill="%s"/>'
                   % (width - pad_r + 10, ly, color))
        out.append('<text x="%d" y="%d" font-size="11" fill="#374151">%s'
                   '</text>' % (width - pad_r + 25, ly + 9,
                                html_escape(bench)))
    for bench, cut in floor_cuts.items():
        y = sy(cut)
        out.append('<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" '
                   'stroke="#dc2626" stroke-dasharray="6 4"/>'
                   % (pad_l, y, width - pad_r, y))
        out.append('<text x="%d" y="%.1f" font-size="10" fill="#dc2626">'
                   'floor %s</text>' % (pad_l + 4, y - 4, html_escape(bench)))
    out.append("</svg>")
    return "".join(out)


def _svg_bar_chart(items, unit, width=520, color="#2563eb"):
    """Horizontal bars for (label, value) pairs; linear scale from zero."""
    if not items:
        return "<p>(no data)</p>"
    bar_h, gap, pad_l, pad_r = 20, 8, 150, 90
    height = len(items) * (bar_h + gap) + gap
    vmax = max(v for (_, v) in items) or 1.0
    pw = width - pad_l - pad_r
    out = ['<svg viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg">'
           % (width, height)]
    for i, (label, v) in enumerate(items):
        y = gap + i * (bar_h + gap)
        w = pw * v / vmax
        out.append('<text x="%d" y="%.1f" font-size="11" fill="#374151" '
                   'text-anchor="end">%s</text>'
                   % (pad_l - 8, y + bar_h * 0.7, html_escape(label)))
        out.append('<rect x="%d" y="%d" width="%.1f" height="%d" '
                   'fill="%s" rx="2"/>' % (pad_l, y, max(w, 1), bar_h, color))
        out.append('<text x="%.1f" y="%.1f" font-size="11" fill="#111827">'
                   '%.2f %s</text>'
                   % (pad_l + max(w, 1) + 6, y + bar_h * 0.7, v,
                      html_escape(unit)))
    out.append("</svg>")
    return "".join(out)


def _svg_speedup_chart(extras, labels, floors, width=900, height=260):
    """Parallel speedup and worker-stall trajectories on one panel.  The
    floors.tsv gates draw as dashed markers: the speedup floor must stay
    below the blue line, the stall ceiling above the red one."""
    sp = extras.get("speedup", [])
    st = extras.get("stall", [])
    if not sp and not st:
        return "<p>(no parallel speedup history)</p>"
    cuts = {(fl["bench"], fl["field"]): fl["floor"] * fl["slack"]
            for fl in floors}
    sp_floor = cuts.get(("parallel", "speedup"))
    st_ceil = cuts.get(("parallel", "barrier_stall_fraction"))
    pad_l, pad_r, pad_t, pad_b = 70, 180, 16, 40
    pw, ph = width - pad_l - pad_r, height - pad_t - pad_b
    vals = [v for (_, _, v) in sp + st]
    vals.extend(c for c in (sp_floor, st_ceil) if c is not None)
    vmax = max(vals + [1.0]) * 1.15
    nruns = max(len(labels), 1)

    def sx(i):
        return pad_l + (pw * i / max(nruns - 1, 1) if nruns > 1 else pw / 2)

    def sy(v):
        return pad_t + ph * (1 - v / vmax)

    out = ['<svg viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg">'
           % (width, height)]
    for k in range(5):
        v = vmax * k / 4
        y = sy(v)
        out.append('<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" '
                   'stroke="#e5e7eb"/>' % (pad_l, y, width - pad_r, y))
        out.append('<text x="%d" y="%.1f" font-size="11" fill="#6b7280" '
                   'text-anchor="end">%.2f</text>' % (pad_l - 6, y + 4, v))
    for i in (0, nruns - 1):
        if i < len(labels):
            out.append('<text x="%.1f" y="%d" font-size="10" fill="#6b7280" '
                       'text-anchor="middle">%s</text>'
                       % (sx(i), height - pad_b + 16,
                          html_escape(labels[i].split("@")[0])))
    for idx, (name, pts, color, cut, cut_name) in enumerate((
            ("speedup", sp, "#2563eb", sp_floor, "floor"),
            ("stall fraction", st, "#dc2626", st_ceil, "ceiling"))):
        if pts:
            coords = " ".join("%.1f,%.1f" % (sx(i), sy(v))
                              for (i, _, v) in pts)
            out.append('<polyline points="%s" fill="none" stroke="%s" '
                       'stroke-width="1.8"/>' % (coords, color))
            for (i, run, v) in pts:
                bad = cut is not None and \
                    (v > cut if name.startswith("stall") else v < cut)
                out.append('<circle cx="%.1f" cy="%.1f" r="%s" fill="%s"%s>'
                           '<title>%s  %s = %.3g</title></circle>'
                           % (sx(i), sy(v), "4.5" if bad else "3",
                              "#7f1d1d" if bad else color,
                              ' stroke="#7f1d1d" stroke-width="2"'
                              if bad else "",
                              html_escape(run), html_escape(name), v))
        if cut is not None:
            y = sy(cut)
            out.append('<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" '
                       'stroke="%s" stroke-dasharray="6 4"/>'
                       % (pad_l, y, width - pad_r, y, color))
            out.append('<text x="%d" y="%.1f" font-size="10" fill="%s">'
                       '%s %s %.2g</text>'
                       % (pad_l + 4, y - 4, color, html_escape(name),
                          cut_name, cut))
        ly = pad_t + 14 * idx
        out.append('<rect x="%d" y="%d" width="10" height="10" fill="%s"/>'
                   % (width - pad_r + 10, ly, color))
        out.append('<text x="%d" y="%d" font-size="11" fill="#374151">%s'
                   '</text>' % (width - pad_r + 25, ly + 9, html_escape(name)))
    out.append("</svg>")
    return "".join(out)


def _gate_bullets(data, floors):
    """Quality-gate bullets: measured value vs its floor."""
    rows = []
    for fl in floors:
        if not fl["kind"].startswith("quality"):
            continue
        ceiling = fl["kind"].endswith("_ceiling")
        value = None
        if isinstance(data.get(fl["bench"]), dict):
            value = data[fl["bench"]].get(fl["field"])
        cut = fl["floor"] * fl["slack"]
        ok = isinstance(value, (int, float)) and \
            (value <= cut if ceiling else value >= cut)
        rows.append(
            '<li><span style="color:%s;font-weight:bold">%s</span> '
            "%s.%s = %s (gate %s %g)</li>"
            % ("#059669" if ok else "#dc2626", "PASS" if ok else "FAIL",
               html_escape(fl["bench"]), html_escape(fl["field"]),
               "%.4g" % value if isinstance(value, (int, float)) else "missing",
               "&le;" if ceiling else "&ge;", cut))
    return "<ul>%s</ul>" % "".join(rows) if rows else ""


def html_escape(s):
    return (str(s).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def write_dashboard(path, files, rows, history_path, floors):
    data_by_bench = {}
    for f in files:
        name = os.path.basename(f)
        if name.startswith("BENCH_") and name.endswith(".json"):
            try:
                with open(f, "r", encoding="utf-8") as fh:
                    data_by_bench[name[len("BENCH_"):-len(".json")]] = \
                        json.load(fh)
            except (OSError, ValueError):
                pass
    series, labels, extras = load_history(history_path)
    if not series:  # no history yet: plot the current run as a single point
        for r in rows:
            if r.get("events_per_sec") is not None:
                series[r["bench"]] = [(0, "current", r["events_per_sec"])]
        labels = ["current"]
    if not extras:
        par_now = data_by_bench.get("parallel", {})
        for key, col in (("speedup", "speedup"),
                         ("barrier_stall_fraction", "stall")):
            if isinstance(par_now.get(key), (int, float)):
                extras[col] = [(len(labels) - 1, labels[-1], par_now[key])]

    parts = ["<!DOCTYPE html><html><head><meta charset='utf-8'>"
             "<title>OSIRIS bench trend</title><style>"
             "body{font-family:system-ui,sans-serif;max-width:960px;"
             "margin:24px auto;color:#111827}h2{border-bottom:1px solid "
             "#e5e7eb;padding-bottom:4px}table{border-collapse:collapse}"
             "td,th{padding:3px 10px;border-bottom:1px solid #f3f4f6;"
             "text-align:right}th:first-child,td:first-child{text-align:left}"
             "</style></head><body>",
             "<h1>OSIRIS bench trend</h1>",
             "<p>Generated %s · %d bench files · history: %s</p>"
             % (html_escape(time.strftime("%Y-%m-%d %H:%M:%S")), len(files),
                html_escape(history_path or "(none)"))]

    parts.append("<h2>Events/sec trajectory</h2>")
    parts.append(_svg_line_chart(series, labels, floors))

    lat = data_by_bench.get("table1_latency", {}).get("pdu_latency")
    if isinstance(lat, dict):
        parts.append("<h2>PDU end-to-end latency (latest run)</h2>")
        pct = [(k.replace("e2e_us_", ""), lat[k]) for k in
               ("e2e_us_p50", "e2e_us_p90", "e2e_us_p99", "e2e_us_p999")
               if isinstance(lat.get(k), (int, float))]
        parts.append(_svg_bar_chart(pct, "&#181;s"))
        stages = lat.get("stage_us_p50")
        if isinstance(stages, dict) and stages:
            parts.append("<h3>Per-stage medians</h3>")
            parts.append(_svg_bar_chart(sorted(stages.items()), "&#181;s",
                                        color="#059669"))

    demux = data_by_bench.get("demux", {})
    sweep = [r for r in demux.get("sweep", [])
             if isinstance(r, dict) and
             isinstance(r.get("flow_ns_per_cell"), (int, float))]
    if sweep:
        parts.append("<h2>Demultiplexing scaling (latest run)</h2>")
        items = [("%g VCIs" % r.get("vcis", 0), r["flow_ns_per_cell"])
                 for r in sweep]
        parts.append(_svg_bar_chart(items, "ns/cell"))
        base = [("%g VCIs" % r.get("vcis", 0), r["maps_ns_per_cell"])
                for r in sweep
                if isinstance(r.get("maps_ns_per_cell"), (int, float))]
        if base:
            parts.append("<h3>Five-map baseline (pre-consolidation)</h3>")
            parts.append(_svg_bar_chart(base, "ns/cell", color="#dc2626"))
        bullet = []
        for key, label in (("demux_ns_per_cell", "ns/cell @10^4"),
                           ("demux_flatness", "flatness (max/min)"),
                           ("demux_speedup_1e4", "speedup @10^4")):
            v = demux.get(key)
            if isinstance(v, (int, float)):
                bullet.append("<li>%s = %.3g</li>" % (label, v))
        if bullet:
            parts.append("<ul>%s</ul>" % "".join(bullet))

    if floors:
        parts.append("<h2>Quality gates</h2>")
        parts.append(_gate_bullets(data_by_bench, floors))

    par = data_by_bench.get("parallel", {})
    if extras:
        parts.append("<h2>Parallel speedup &amp; stall trajectory</h2>")
        parts.append(_svg_speedup_chart(extras, labels, floors))
    runs = [r for r in par.get("runs", [])
            if isinstance(r, dict) and isinstance(r.get("phase_ns"), dict)]
    if runs:
        parts.append("<h2>Parallel phase breakdown (worker time)</h2>")
        parts.append("<table><tr><th>threads</th><th>dispatch</th>"
                     "<th>drain</th><th>retry stall</th><th>barrier</th>"
                     "</tr>")
        for r in runs:
            p = r["phase_ns"]
            tot = sum(p.get(k, 0) for k in
                      ("dispatch_sum", "drain_sum", "stall_sum",
                       "barrier_sum")) or 1
            parts.append(
                "<tr><td>%s</td><td>%.1f%%</td><td>%.1f%%</td>"
                "<td>%.1f%%</td><td>%.1f%%</td></tr>"
                % (r.get("threads", "?"),
                   100.0 * p.get("dispatch_sum", 0) / tot,
                   100.0 * p.get("drain_sum", 0) / tot,
                   100.0 * p.get("stall_sum", 0) / tot,
                   100.0 * p.get("barrier_sum", 0) / tot))
        parts.append("</table>")

    parts.append("<h2>Latest run</h2>")
    parts.append("<table><tr><th>bench</th><th>threads</th><th>wall s</th>"
                 "<th>events</th><th>events/sec</th></tr>")
    for r in rows:
        if "error" in r:
            continue
        parts.append("<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td>"
                     "<td>%s</td></tr>"
                     % (html_escape(r["bench"]), fmt(r["threads"], "%d"),
                        fmt(r["wall_seconds"], "%.3f"),
                        fmt(r["engine_events"], "%d"),
                        fmt(r["events_per_sec"], "%.0f")))
    parts.append("</table></body></html>")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(parts))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="directories or BENCH_*.json files to sweep")
    ap.add_argument("--append", metavar="FILE",
                    help="append rows to this TSV history file")
    ap.add_argument("--label", help="run label for --append "
                                    "(default: git rev + timestamp)")
    ap.add_argument("--floors", metavar="FILE",
                    help="TSV of per-bench floors to enforce "
                         "(bench/field/floor/slack/kind)")
    ap.add_argument("--html", metavar="FILE",
                    help="write a self-contained SVG dashboard here")
    args = ap.parse_args(argv)

    paths = args.paths or ["build/bench", "build"]
    files = find_bench_files(paths)
    if not files:
        print("bench_trend: no BENCH_*.json found under %s" % ", ".join(paths),
              file=sys.stderr)
        return 1

    rows = load_rows(files)
    print_table(rows)

    measured = [r for r in rows if r.get("events_per_sec") is not None]
    skipped = [r["bench"] for r in rows
               if "error" not in r and r.get("events_per_sec") is None]
    if skipped:
        print("\n(no perf fields: %s)" % ", ".join(skipped))
    if args.append:
        label = args.label or run_label()
        append_history(measured, args.append, label)
        print("appended %d rows to %s as %s"
              % (len(measured), args.append, label))
    floors = []
    if args.floors:
        try:
            floors = load_floors(args.floors)
        except (OSError, ValueError) as exc:
            print("bench_trend: bad floors file: %s" % exc, file=sys.stderr)
            return 1
    if args.html:
        write_dashboard(args.html, files, rows, args.append, floors)
        print("wrote dashboard to %s" % args.html)
    if args.floors:
        print()
        if check_floors(files, floors):
            print("bench_trend: floor violations", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
