#!/usr/bin/env python3
"""Fold BENCH_*.json perf fields into a single trend table.

Every throughput-style bench emits the common perf-trajectory fields
(wall_seconds, engine_events, events_per_sec, threads) via
benchjson::perf_fields.  This script sweeps one or more directories (or
explicit files) for BENCH_*.json, prints an aligned table of those fields,
and optionally appends the rows to a TSV history file so successive CI runs
accumulate a perf trend over commits.

Usage:
    tools/bench_trend.py [paths...] [--append FILE] [--label LABEL]
                         [--floors FILE]

Paths default to build/bench and build (bench_parallel writes to the build
root).  Files without the perf fields (e.g. the robustness benches, which
report goodput/latency rows instead) are listed with dashes, not errors.
Exits nonzero only if no BENCH_*.json file is found at all.

--floors generalizes the old single-bench engine_events_per_sec.floor: the
file (bench/floors.tsv) holds one row per gated metric —

    bench <TAB> field <TAB> floor <TAB> slack <TAB> kind

`bench` names BENCH_<bench>.json, `field` a top-level numeric field in it,
and the check is  value >= floor * slack  (slack < 1 is the haircut that
absorbs machine-to-machine noise).  kind=perf rows are skipped when
OSIRIS_SANITIZE is set (sanitized binaries are legitimately slower);
kind=quality rows — fairness indices, goodput retention — always apply.
Any violated or uncheckable floor makes the script exit nonzero.
"""

import argparse
import glob
import json
import os
import subprocess
import sys
import time


def find_bench_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(sorted(glob.glob(os.path.join(p, "BENCH_*.json"))))
        elif os.path.isfile(p):
            files.append(p)
    # De-duplicate while preserving order (a file may match twice via
    # overlapping path arguments).
    seen = set()
    out = []
    for f in files:
        key = os.path.abspath(f)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out


def load_rows(files):
    rows = []
    for path in files:
        name = os.path.basename(path)
        if name.startswith("BENCH_"):
            name = name[len("BENCH_"):]
        if name.endswith(".json"):
            name = name[: -len(".json")]
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            rows.append({"bench": name, "error": str(exc)})
            continue
        row = {
            "bench": name,
            "wall_seconds": data.get("wall_seconds"),
            "engine_events": data.get("engine_events"),
            "events_per_sec": data.get("events_per_sec"),
            "threads": data.get("threads", 1),
        }
        # bench_parallel carries per-thread-count runs; surface each so the
        # trend shows serial and parallel throughput side by side.
        subruns = []
        for sub in data.get("runs", []):
            if isinstance(sub, dict) and "events_per_sec" in sub:
                subruns.append(
                    {
                        "bench": "%s/t%s" % (name, sub.get("threads", "?")),
                        "wall_seconds": sub.get("wall_seconds"),
                        "engine_events": sub.get("engine_events"),
                        "events_per_sec": sub.get("events_per_sec"),
                        "threads": sub.get("threads", 1),
                    }
                )
        if subruns:
            rows.extend(subruns)
        else:
            rows.append(row)
    return rows


def fmt(value, spec):
    if value is None:
        return "-"
    try:
        return spec % value
    except TypeError:
        return str(value)


def print_table(rows):
    header = ("bench", "threads", "wall_s", "events", "events/sec")
    widths = [max(len(header[0]), max((len(r["bench"]) for r in rows), default=0)),
              7, 9, 12, 13]
    line = "%-*s  %*s  %*s  %*s  %*s"
    print(line % (widths[0], header[0], widths[1], header[1], widths[2],
                  header[2], widths[3], header[3], widths[4], header[4]))
    for r in rows:
        if "error" in r:
            print("%-*s  unreadable: %s" % (widths[0], r["bench"], r["error"]))
            continue
        print(line % (
            widths[0], r["bench"],
            widths[1], fmt(r["threads"], "%d"),
            widths[2], fmt(r["wall_seconds"], "%.3f"),
            widths[3], fmt(r["engine_events"], "%d"),
            widths[4], fmt(r["events_per_sec"], "%.0f"),
        ))


def load_floors(path):
    """Parses the floors TSV into a list of dicts; raises ValueError on a
    malformed row so a typo in the gate file fails loudly, not silently."""
    floors = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if parts[0] == "bench":  # column header
                continue
            if len(parts) != 5:
                raise ValueError("%s:%d: want 5 tab-separated columns, got %d"
                                 % (path, lineno, len(parts)))
            bench, field, floor, slack, kind = parts
            if kind not in ("perf", "quality"):
                raise ValueError("%s:%d: kind must be perf|quality, got %r"
                                 % (path, lineno, kind))
            floors.append({
                "bench": bench,
                "field": field,
                "floor": float(floor),
                "slack": float(slack),
                "kind": kind,
            })
    return floors


def check_floors(files, floors):
    """Checks each floor row against its bench's JSON.  Returns the number
    of violations (missing file/field counts as one — a gate that cannot
    run must not pass)."""
    data_by_bench = {}
    for path in files:
        name = os.path.basename(path)
        if name.startswith("BENCH_") and name.endswith(".json"):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    data_by_bench[name[len("BENCH_"):-len(".json")]] = \
                        json.load(fh)
            except (OSError, ValueError):
                pass  # already reported as unreadable in the trend table
    sanitized = bool(os.environ.get("OSIRIS_SANITIZE"))
    failures = 0
    for fl in floors:
        tag = "%s.%s" % (fl["bench"], fl["field"])
        if fl["kind"] == "perf" and sanitized:
            print("floor SKIP %-32s (perf floor, OSIRIS_SANITIZE set)" % tag)
            continue
        data = data_by_bench.get(fl["bench"])
        value = data.get(fl["field"]) if isinstance(data, dict) else None
        cut = fl["floor"] * fl["slack"]
        if not isinstance(value, (int, float)):
            print("floor FAIL %-32s missing (want >= %g)" % (tag, cut))
            failures += 1
        elif value < cut:
            print("floor FAIL %-32s %g < %g (floor %g x slack %g)"
                  % (tag, value, cut, fl["floor"], fl["slack"]))
            failures += 1
        else:
            print("floor ok   %-32s %g >= %g" % (tag, value, cut))
    return failures


def run_label():
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        rev = "unknown"
    return "%s@%s" % (rev, time.strftime("%Y-%m-%dT%H:%M:%S"))


def append_history(rows, path, label):
    fresh = not os.path.exists(path) or os.path.getsize(path) == 0
    with open(path, "a", encoding="utf-8") as fh:
        if fresh:
            fh.write("run\tbench\tthreads\twall_seconds\tengine_events"
                     "\tevents_per_sec\n")
        for r in rows:
            if "error" in r or r.get("events_per_sec") is None:
                continue
            fh.write("%s\t%s\t%s\t%s\t%s\t%s\n" % (
                label, r["bench"], r["threads"], r["wall_seconds"],
                r["engine_events"], r["events_per_sec"]))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="directories or BENCH_*.json files to sweep")
    ap.add_argument("--append", metavar="FILE",
                    help="append rows to this TSV history file")
    ap.add_argument("--label", help="run label for --append "
                                    "(default: git rev + timestamp)")
    ap.add_argument("--floors", metavar="FILE",
                    help="TSV of per-bench floors to enforce "
                         "(bench/field/floor/slack/kind)")
    args = ap.parse_args(argv)

    paths = args.paths or ["build/bench", "build"]
    files = find_bench_files(paths)
    if not files:
        print("bench_trend: no BENCH_*.json found under %s" % ", ".join(paths),
              file=sys.stderr)
        return 1

    rows = load_rows(files)
    print_table(rows)

    measured = [r for r in rows if r.get("events_per_sec") is not None]
    skipped = [r["bench"] for r in rows
               if "error" not in r and r.get("events_per_sec") is None]
    if skipped:
        print("\n(no perf fields: %s)" % ", ".join(skipped))
    if args.append:
        label = args.label or run_label()
        append_history(measured, args.append, label)
        print("appended %d rows to %s as %s"
              % (len(measured), args.append, label))
    if args.floors:
        print()
        try:
            floors = load_floors(args.floors)
        except (OSError, ValueError) as exc:
            print("bench_trend: bad floors file: %s" % exc, file=sys.stderr)
            return 1
        if check_floors(files, floors):
            print("bench_trend: floor violations", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
