// Chaos sweep driver: generates and runs N seeded schedules against fresh
// testbeds, and on the first invariant violation shrinks the schedule to a
// minimal action set and writes a replayable artifact.
//
//   $ ./chaos_sweep --seeds 200 --threads 2
//   $ ./chaos_sweep --replay build/chaos_repro.txt
//
// Flags:
//   --seeds N        number of schedules to run (default 25)
//   --base-seed N    first seed (default 1; seeds are base..base+N-1)
//   --threads N      testbed worker threads, 1 or 2 (default 1)
//   --repro-out P    artifact path on failure (default chaos_repro.txt)
//   --replay P       run one schedule from an artifact instead of sweeping
//
// Exit status: 0 when every run's invariants held, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/runner.h"
#include "chaos/schedule.h"
#include "chaos/shrink.h"
#include "osiris/harness.h"

using namespace osiris;

namespace {

int fail_and_shrink(const chaos::Schedule& sch, const chaos::RunnerConfig& cfg,
                    const chaos::Report& rep, const std::string& repro_out) {
  std::fprintf(stderr, "seed %llu: %zu invariant violation(s):\n",
               static_cast<unsigned long long>(sch.seed),
               rep.violations.size());
  for (const std::string& v : rep.violations) {
    std::fprintf(stderr, "  %s\n", v.c_str());
  }
  std::fprintf(stderr, "shrinking %zu-action schedule...\n",
               sch.actions.size());
  const chaos::ShrinkResult sr = chaos::shrink(sch, cfg);
  std::fprintf(stderr, "minimal schedule: %zu action(s) after %d trial(s)\n",
               sr.minimal.actions.size(), sr.trials);
  if (chaos::write_artifact(repro_out, sr)) {
    std::fprintf(stderr, "replay artifact: %s\n", repro_out.c_str());
  } else {
    std::fprintf(stderr, "could not write artifact to %s\n",
                 repro_out.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = harness::parse_threads(argc, argv, 1);
  const std::string replay = harness::parse_string_flag(argc, argv, "--replay");
  const std::string seeds_s = harness::parse_string_flag(argc, argv, "--seeds");
  const std::string base_s =
      harness::parse_string_flag(argc, argv, "--base-seed");
  std::string repro_out = harness::parse_string_flag(argc, argv, "--repro-out");
  if (repro_out.empty()) repro_out = "chaos_repro.txt";

  chaos::RunnerConfig cfg;
  cfg.threads = threads;

  if (!replay.empty()) {
    std::ifstream in(replay);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", replay.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto sch = chaos::Schedule::parse(text.str());
    if (!sch) {
      std::fprintf(stderr, "%s is not a chaos schedule\n", replay.c_str());
      return 2;
    }
    chaos::RunnerConfig verbose = cfg;
    verbose.collect_postmortem = true;
    const chaos::Report rep = chaos::run_schedule(*sch, verbose);
    std::printf("replay seed %llu: fingerprint %016llx, %zu violation(s)\n",
                static_cast<unsigned long long>(sch->seed),
                static_cast<unsigned long long>(rep.fingerprint),
                rep.violations.size());
    for (const std::string& v : rep.violations) {
      std::printf("  %s\n", v.c_str());
    }
    std::fputs(rep.postmortem.c_str(), stdout);
    return rep.ok() ? 0 : 1;
  }

  const int seeds = seeds_s.empty() ? 25 : std::atoi(seeds_s.c_str());
  const std::uint64_t base =
      base_s.empty() ? 1 : std::strtoull(base_s.c_str(), nullptr, 10);
  std::uint64_t total_faults = 0, total_resets = 0, total_resyncs = 0;
  for (int i = 0; i < seeds; ++i) {
    const chaos::Schedule sch = chaos::generate(base + static_cast<std::uint64_t>(i));
    const chaos::Report rep = chaos::run_schedule(sch, cfg);
    total_faults += rep.faults_fired;
    total_resets += rep.resets_a + rep.resets_b;
    total_resyncs += rep.arq_resyncs;
    if (!rep.ok()) return fail_and_shrink(sch, cfg, rep, repro_out);
  }
  std::printf(
      "chaos sweep: %d seeds clean (threads=%d, %llu faults fired, "
      "%llu resets, %llu arq resyncs)\n",
      seeds, threads, static_cast<unsigned long long>(total_faults),
      static_cast<unsigned long long>(total_resets),
      static_cast<unsigned long long>(total_resyncs));
  return 0;
}
