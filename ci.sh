#!/bin/sh
# Builds and tests the tree twice: a plain RelWithDebInfo pass, then an
# AddressSanitizer+UBSan pass (build-asan/). Either failing fails the script.
set -eu

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Multi-core-only gates (the *_mc kinds in bench/floors.tsv: parallel
# speedup and barrier-stall) need at least two real cores to be
# meaningful; export the detected count so bench_trend.py can decide
# instead of skipping them unconditionally.
OSIRIS_CI_CORES="$(nproc 2>/dev/null || echo 1)"
export OSIRIS_CI_CORES
echo "ci host cores: $OSIRIS_CI_CORES"

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== bench smoke (machine-readable output) =="
# The robustness benches must run to completion and emit their JSON result
# files (goodput + latency quantiles per row/tenant) for downstream plots.
( cd build/bench \
  && ./bench_fault --benchmark_min_time=0.01s >/dev/null \
  && ./bench_adc_isolation >/dev/null \
  && ./bench_qos >/dev/null \
  && ./bench_chaos >/dev/null \
  && ./bench_parallel >/dev/null \
  && ./bench_demux >/dev/null )
for f in build/bench/BENCH_fault.json build/bench/BENCH_adc_isolation.json \
         build/bench/BENCH_qos.json build/bench/BENCH_chaos.json \
         build/bench/BENCH_parallel.json build/bench/BENCH_demux.json; do
  [ -s "$f" ] || { echo "missing or empty $f" >&2; exit 1; }
done

echo "== chaos sweep (fixed seeds, serial + 2 worker threads) =="
# Deterministic fault-injection sweep over generated schedules: every run
# must drain with zero invariant violations. On failure the sweep shrinks
# the schedule to a 1-minimal action set and leaves a replayable artifact
# (schedule + postmortem) at build/chaos_repro.txt — attach it to the bug;
# `tools/chaos_sweep --replay build/chaos_repro.txt` reproduces it exactly.
./build/tools/chaos_sweep --seeds 40 --repro-out build/chaos_repro.txt
./build/tools/chaos_sweep --seeds 10 --threads 2 \
  --repro-out build/chaos_repro.txt

echo "== engine determinism smoke =="
# bench_engine self-checks dispatch-order determinism (nonzero exit on
# mismatch) and writes BENCH_engine.json for the floor check below.
( cd build/bench && ./bench_engine )

echo "== perf trend table + per-bench floors =="
# Fold every BENCH_*.json's common perf fields (wall_seconds, engine_events,
# events_per_sec, threads) into one table so throughput trajectories across
# benches — serial and parallel — are visible in a single CI artifact.
# --floors then gates on bench/floors.tsv: engine events/sec (perf floor,
# skipped under OSIRIS_SANITIZE), the demux flow-table gates (single-probe
# speedup floor plus ns/cell and flatness ceilings), the QoS quality
# floors — 10x-incast Jain fairness and aggregate-goodput retention —
# which apply to every build flavor, and on >=2-core hosts
# (OSIRIS_CI_CORES above) the parallel gates: 2-thread speedup >= 1.3x
# and worker stall fraction <= 0.3.  --html renders the accumulated
# history as a self-contained SVG dashboard artifact; it never affects
# gating.
python3 tools/bench_trend.py build/bench --append build/bench_trend.tsv \
  --html build/bench_trend.html --floors bench/floors.tsv
[ -s build/bench_trend.html ] || { echo "missing bench_trend.html" >&2; exit 1; }

echo "== sanitized build (address,undefined) =="
cmake -B build-asan -S . -DOSIRIS_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== chaos sweep under ASan/UBSan =="
# A bounded slice of the sweep re-runs sanitized: recovery paths (adaptor
# reset, ARQ resync, reassembly reconciliation) must be memory-clean, not
# just invariant-clean.
./build-asan/tools/chaos_sweep --seeds 8 --repro-out build/chaos_repro.txt

echo "== sanitized build (thread) =="
# ThreadSanitizer pass over the partitioned-engine and chaos tests: the
# EOT/fused-barrier and SPSC-ring protocol must be clean under TSan, not
# just correct by argument, and the chaos runner's threaded sweeps drive
# the same machinery through a much richer workload. Only these two
# suites run here — TSan's ABI slows the full matrix far beyond CI
# budget, and the data-race surface is confined to sim::EngineGroup.
cmake -B build-tsan -S . -DOSIRIS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_parallel_des --target test_chaos
./build-tsan/tests/test_parallel_des
./build-tsan/tests/test_chaos

echo "== ci.sh: all green =="
