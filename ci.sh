#!/bin/sh
# Builds and tests the tree twice: a plain RelWithDebInfo pass, then an
# AddressSanitizer+UBSan pass (build-asan/). Either failing fails the script.
set -eu

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== bench smoke (machine-readable output) =="
# The robustness benches must run to completion and emit their JSON result
# files (goodput + latency quantiles per row/tenant) for downstream plots.
( cd build/bench \
  && ./bench_fault --benchmark_min_time=0.01s >/dev/null \
  && ./bench_adc_isolation >/dev/null )
for f in build/bench/BENCH_fault.json build/bench/BENCH_adc_isolation.json; do
  [ -s "$f" ] || { echo "missing or empty $f" >&2; exit 1; }
done

echo "== sanitized build (address,undefined) =="
cmake -B build-asan -S . -DOSIRIS_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== ci.sh: all green =="
