#!/bin/sh
# Builds and tests the tree twice: a plain RelWithDebInfo pass, then an
# AddressSanitizer+UBSan pass (build-asan/). Either failing fails the script.
set -eu

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== bench smoke (machine-readable output) =="
# The robustness benches must run to completion and emit their JSON result
# files (goodput + latency quantiles per row/tenant) for downstream plots.
( cd build/bench \
  && ./bench_fault --benchmark_min_time=0.01s >/dev/null \
  && ./bench_adc_isolation >/dev/null \
  && ./bench_parallel >/dev/null )
for f in build/bench/BENCH_fault.json build/bench/BENCH_adc_isolation.json \
         build/bench/BENCH_parallel.json; do
  [ -s "$f" ] || { echo "missing or empty $f" >&2; exit 1; }
done

echo "== engine perf smoke =="
# bench_engine self-checks dispatch-order determinism (nonzero exit on
# mismatch); on top of that, compare its events/sec against the checked-in
# floor so a scheduler regression fails CI. The floor is deliberately
# conservative (about a third of a typical dev-box run); the 30% haircut
# below absorbs machine-to-machine noise on top of that.
( cd build/bench && ./bench_engine )
if [ -n "${OSIRIS_SANITIZE:-}" ]; then
  # Sanitized binaries are legitimately slower; the determinism self-check
  # above still ran, only the throughput floor is skipped.
  echo "OSIRIS_SANITIZE set: skipping engine events/sec floor check"
else
  EPS="$(sed -n 's/.*"events_per_sec":\([0-9.eE+]*\).*/\1/p' build/bench/BENCH_engine.json)"
  FLOOR="$(cat bench/engine_events_per_sec.floor)"
  awk -v eps="$EPS" -v floor="$FLOOR" 'BEGIN {
    if (eps + 0 <= 0 || floor + 0 <= 0) { print "bad eps/floor"; exit 1 }
    if (eps < floor * 0.7) {
      printf "engine perf regression: %.0f events/s < 70%% of floor %.0f\n", eps, floor
      exit 1
    }
    printf "engine perf ok: %.0f events/s (floor %.0f)\n", eps, floor
  }' || { echo "engine perf smoke failed" >&2; exit 1; }
fi

echo "== perf trend table =="
# Fold every BENCH_*.json's common perf fields (wall_seconds, engine_events,
# events_per_sec, threads) into one table so throughput trajectories across
# benches — serial and parallel — are visible in a single CI artifact.
python3 tools/bench_trend.py build/bench --append build/bench_trend.tsv

echo "== sanitized build (address,undefined) =="
cmake -B build-asan -S . -DOSIRIS_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== sanitized build (thread) =="
# ThreadSanitizer pass over the partitioned-engine tests: the barrier and
# SPSC-ring protocol must be clean under TSan, not just correct by argument.
# Only the parallel suite runs here — TSan's ABI slows the full matrix far
# beyond CI budget, and the data-race surface is confined to sim::EngineGroup.
cmake -B build-tsan -S . -DOSIRIS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_parallel_des
./build-tsan/tests/test_parallel_des

echo "== ci.sh: all green =="
