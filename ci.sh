#!/bin/sh
# Builds and tests the tree twice: a plain RelWithDebInfo pass, then an
# AddressSanitizer+UBSan pass (build-asan/). Either failing fails the script.
set -eu

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitized build (address,undefined) =="
cmake -B build-asan -S . -DOSIRIS_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== ci.sh: all green =="
