// Kernel bypass with application device channels (§3.2).
//
// Opens an ADC for a "user process" on each machine: the OS maps one
// transmit/receive queue-pair page of the board's dual-port memory into
// the application, assigns it a VCI set and an authorized page list, and
// from then on the application drives the adaptor directly — the kernel
// only fields interrupts. Also demonstrates the protection story: a
// buffer outside the authorized list triggers an access-violation
// exception rather than letting the app DMA anywhere.
//
//   $ ./kernel_bypass
#include <cstdio>

#include "adc/adc.h"
#include "osiris/node.h"
#include "proto/message.h"

using namespace osiris;

namespace {

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

}  // namespace

int main() {
  Testbed tb(make_3000_600_config(), make_3000_600_config());

  // The OS opens channel pair 1 on each board for the application, with
  // VCI 700 and transmit priority 1 (the kernel's own pair is 0).
  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;  // app links its own protocol stack
  adc::Adc app_a(deps_of(tb.a), /*pair=*/1, {700}, /*priority=*/1, sc);
  adc::Adc app_b(deps_of(tb.b), /*pair=*/1, {700}, /*priority=*/1, sc);

  // Ping-pong entirely in user space.
  std::vector<std::uint8_t> data(2048);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  proto::Message ma = proto::Message::from_payload(app_a.space(), data);
  proto::Message mb = proto::Message::from_payload(app_b.space(), data);
  app_a.authorize(ma.scatter());  // the OS registers the app's pages
  app_b.authorize(mb.scatter());

  int remaining = 5;
  sim::Tick started = 0;
  sim::Summary rtts;
  app_b.set_sink([&](sim::Tick at, std::uint16_t v, std::vector<std::uint8_t>&&) {
    app_b.send(at, v, mb);  // echo, never entering the kernel
  });
  app_a.set_sink([&](sim::Tick at, std::uint16_t v, std::vector<std::uint8_t>&&) {
    rtts.add(sim::to_us(at - started));
    if (--remaining > 0) {
      started = at;
      app_a.send(at, v, ma);
    }
  });
  started = 0;
  app_a.send(0, 700, ma);
  tb.run();

  std::printf("user-to-user ping-pong over ADCs: %llu rounds, mean RTT %.1f us\n",
              static_cast<unsigned long long>(rtts.count()), rtts.mean());
  std::printf("kernel involvement: %llu interrupts fielded, zero syscalls, "
              "zero data copies\n",
              static_cast<unsigned long long>(tb.a.intc.raised() +
                                              tb.b.intc.raised()));

  // Protection: send from a buffer the OS never authorized.
  std::puts("");
  std::puts("now the application tries to transmit from an unauthorized page...");
  bool violation = false;
  app_a.set_violation_handler([&](sim::Tick at) {
    violation = true;
    std::printf("  t=%.1f us: OS raised an access-violation exception in the "
                "process (board refused the DMA)\n",
                sim::to_us(at));
  });
  proto::Message rogue =
      proto::Message::from_payload(app_a.space(), data);  // not authorized!
  app_a.send(tb.now(), 700, rogue);
  tb.run();
  std::printf("violation delivered: %s; ADC violations recorded: %llu\n",
              violation ? "yes" : "no",
              static_cast<unsigned long long>(app_a.violations()));
  return violation ? 0 : 1;
}
