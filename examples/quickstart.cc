// Quickstart: bring up two simulated workstations with OSIRIS boards
// linked back to back, open a path, and exchange messages over the
// UDP/IP-like stack — printing what happened at every layer.
//
//   $ ./quickstart [--stats-json=<path>] [--trace-out=<path>]
//
// Chaos mode (DESIGN.md §12) replaces the demo with a fault-injected run:
//
//   $ ./quickstart --chaos-seed=42            # generated schedule 42
//   $ ./quickstart --chaos-replay=repro.txt   # replay a recorded schedule
//
// Either form runs the full chaos scenario (two nodes, mixed traffic,
// watchdogs, invariant audit) and exits nonzero on any violated invariant.
#include <cstdio>

#include <fstream>
#include <sstream>

#include "chaos/runner.h"
#include "chaos/schedule.h"
#include "obs/spans.h"
#include "osiris/harness.h"
#include "osiris/node.h"
#include "proto/message.h"
#include "sim/trace.h"

using namespace osiris;

namespace {

int run_chaos_mode(const harness::ChaosFlags& flags) {
  chaos::Schedule sch;
  if (!flags.replay.empty()) {
    std::ifstream is(flags.replay);
    if (!is) {
      std::fprintf(stderr, "cannot open %s\n", flags.replay.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    const auto parsed = chaos::Schedule::parse(ss.str());
    if (!parsed) {
      std::fprintf(stderr, "%s is not a chaos schedule\n",
                   flags.replay.c_str());
      return 2;
    }
    sch = *parsed;
    std::printf("replaying %s (seed %llu, %zu actions)\n",
                flags.replay.c_str(),
                static_cast<unsigned long long>(sch.seed),
                sch.actions.size());
  } else {
    sch = chaos::generate(flags.seed);
    std::printf("chaos schedule %llu (%zu actions):\n",
                static_cast<unsigned long long>(flags.seed),
                sch.actions.size());
  }
  std::printf("%s", sch.to_text().c_str());

  chaos::RunnerConfig cfg;
  cfg.collect_postmortem = true;
  const chaos::Report r = chaos::run_schedule(sch, cfg);
  std::printf("\nfingerprint %016llx  faults=%llu resets=%llu "
              "arq %llu/%llu resyncs=%llu rpc %llu/%llu\n",
              static_cast<unsigned long long>(r.fingerprint),
              static_cast<unsigned long long>(r.faults_fired),
              static_cast<unsigned long long>(r.resets_a + r.resets_b),
              static_cast<unsigned long long>(r.arq_delivered),
              static_cast<unsigned long long>(r.arq_sent),
              static_cast<unsigned long long>(r.arq_resyncs),
              static_cast<unsigned long long>(r.rpc_completed),
              static_cast<unsigned long long>(r.rpc_issued));
  if (!r.ok()) {
    std::printf("\n%zu invariant violation(s):\n", r.violations.size());
    for (const std::string& v : r.violations)
      std::printf("  %s\n", v.c_str());
    std::printf("%s", r.postmortem.c_str());
    return 1;
  }
  std::puts("all invariants held");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::ChaosFlags chaos_flags =
      harness::parse_chaos_flags(argc, argv);
  if (chaos_flags.active()) return run_chaos_mode(chaos_flags);

  const harness::OutputFlags out = harness::parse_output_flags(argc, argv);

  // 1. Two machines: a DECstation 5000/200 and a DEC 3000/600, boards
  //    connected by the striped 622 Mbps link. Tracing and PDU lifecycle
  //    spans are attached only when an output sink asked for them.
  sim::Trace trace_a(8192);
  sim::Trace trace_b(8192);
  obs::PduSpans spans_a;
  obs::PduSpans spans_b;
  NodeConfig ca = make_5000_200_config();
  NodeConfig cb = make_3000_600_config();
  if (!out.trace_out.empty()) {
    ca.trace = &trace_a;
    cb.trace = &trace_b;
  }
  if (!out.stats_json.empty() || !out.trace_out.empty()) {
    ca.spans = &spans_a;
    cb.spans = &spans_b;
  }
  Testbed tb(ca, cb);

  // 2. Bind a path: the x-kernel treats VCIs as abundant and dedicates
  //    one per connection (§3.1). open_kernel_path maps it on both ends.
  const std::uint16_t vci = tb.open_kernel_path();

  // 3. Protocol stacks on both hosts (UDP/IP-like, 16 KB MTU).
  proto::StackConfig cfg;
  cfg.udp_checksum = true;  // really computes the Internet checksum
  auto stack_a = tb.a.make_stack(cfg);
  auto stack_b = tb.b.make_stack(cfg);

  // 4. A receiver on machine B.
  std::uint64_t received = 0;
  stack_b->set_sink([&](sim::Tick at, std::uint16_t v,
                        std::vector<std::uint8_t>&& data) {
    ++received;
    std::printf("[B] t=%8.1f us  message %llu on vci %u: %zu bytes "
                "(first byte 0x%02x)\n",
                sim::to_us(at), static_cast<unsigned long long>(received), v,
                data.size(), data[0]);
  });

  // 5. Send three messages of growing size from A. Message data lives in
  //    real (simulated) memory; headers, cells, CRCs and DMA transfers are
  //    all genuine.
  sim::Tick t = 0;
  for (std::uint32_t i = 1; i <= 3; ++i) {
    std::vector<std::uint8_t> data(i * 20000, static_cast<std::uint8_t>(0x40 + i));
    proto::Message m = proto::Message::from_payload(tb.a.kernel_space, data,
                                                    /*offset_in_page=*/i * 100);
    t = stack_a->send(t, vci, m);
    std::printf("[A] t=%8.1f us  queued %zu-byte message (CPU returned)\n",
                sim::to_us(t), data.size());
  }

  // 6. Run the world.
  tb.run();

  std::puts("");
  std::puts("--- what the hardware did ---");
  std::printf("A transmitted %llu PDUs as %llu cells in %llu DMA reads "
              "(%llu split at page boundaries)\n",
              static_cast<unsigned long long>(tb.a.txp.pdus_sent()),
              static_cast<unsigned long long>(tb.a.txp.cells_sent()),
              static_cast<unsigned long long>(tb.a.txp.dma_ops()),
              static_cast<unsigned long long>(tb.a.txp.dma_splits()));
  std::printf("B reassembled %llu PDUs using %llu DMA writes "
              "(%.0f%% double-cell combined), %llu interrupts\n",
              static_cast<unsigned long long>(tb.b.rxp.pdus_completed()),
              static_cast<unsigned long long>(tb.b.rxp.dma_ops()),
              tb.b.rxp.combine_fraction() * 100,
              static_cast<unsigned long long>(tb.b.intc.raised()));
  std::printf("B's stack verified %llu UDP checksums; %llu failures\n",
              static_cast<unsigned long long>(stack_b->delivered()),
              static_cast<unsigned long long>(stack_b->checksum_failures()));
  std::printf("simulated time elapsed: %.1f us\n", sim::to_us(tb.now()));

  // 7. Optional observability sinks (--stats-json / --trace-out).
  if (!out.stats_json.empty()) {
    if (harness::write_stats_json(out.stats_json, tb, &spans_a, &spans_b))
      std::printf("wrote metrics snapshot to %s\n", out.stats_json.c_str());
    else
      std::fprintf(stderr, "failed to write %s\n", out.stats_json.c_str());
  }
  if (!out.trace_out.empty()) {
    if (harness::write_trace_json(out.trace_out, &trace_a, &trace_b, &spans_a,
                                  &spans_b))
      std::printf("wrote Chrome trace to %s (load in ui.perfetto.dev)\n",
                  out.trace_out.c_str());
    else
      std::fprintf(stderr, "failed to write %s\n", out.trace_out.c_str());
  }
  return received == 3 ? 0 : 1;
}
