// RPC entirely in user space, over application device channels.
//
// Combines the two §3 mechanisms the way a real system would: an
// application opens an ADC (kernel-bypass queue pair, §3.2), links its own
// protocol stack, and runs a request/response protocol on top — the kernel
// fields interrupts and nothing else. This is precisely the programming
// model that U-Net, VIA and RDMA verbs later standardized.
//
//   $ ./rpc_over_adc
#include <cstdio>
#include <cstring>
#include <map>

#include "adc/adc.h"
#include "osiris/node.h"
#include "proto/rpc.h"

using namespace osiris;

namespace {

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

}  // namespace

int main() {
  Testbed tb(make_3000_600_config(), make_3000_600_config());

  proto::StackConfig sc;
  sc.udp_checksum = true;
  adc::Adc client_ch(deps_of(tb.a), 1, {850}, 1, sc);
  adc::Adc server_ch(deps_of(tb.b), 1, {850}, 1, sc);

  proto::RpcEndpoint client(tb.a.eng, client_ch.stack(), client_ch.space(),
                            tb.a.cpu, tb.a.cfg.machine);
  proto::RpcEndpoint server(tb.b.eng, server_ch.stack(), server_ch.space(),
                            tb.b.cpu, tb.b.cfg.machine);
  // Register the RPC frame arenas with the OS (RDMA-style memory regions).
  client_ch.authorize(client.arena_buffers());
  server_ch.authorize(server.arena_buffers());

  // A "key-value" server living entirely in user space on machine B.
  std::map<std::vector<std::uint8_t>, std::vector<std::uint8_t>> store;
  server.serve([&store](std::vector<std::uint8_t> req) {
    // [0] op (0 = put, 1 = get), [1] klen, then key, then value.
    if (req.size() < 2) return std::vector<std::uint8_t>{0xFF};
    const std::uint8_t op = req[0];
    const std::size_t klen = req[1];
    if (req.size() < 2 + klen) return std::vector<std::uint8_t>{0xFF};
    std::vector<std::uint8_t> key(req.begin() + 2, req.begin() + 2 + klen);
    if (op == 0) {
      store[key] = {req.begin() + 2 + static_cast<std::ptrdiff_t>(klen), req.end()};
      return std::vector<std::uint8_t>{0};
    }
    const auto it = store.find(key);
    return it == store.end() ? std::vector<std::uint8_t>{0xFF} : it->second;
  });

  // Client: PUT then GET, measuring user-space RPC latency.
  auto make_put = [](const char* k, const char* v) {
    std::vector<std::uint8_t> r{0, static_cast<std::uint8_t>(strlen(k))};
    r.insert(r.end(), k, k + strlen(k));
    r.insert(r.end(), v, v + strlen(v));
    return r;
  };
  auto make_get = [](const char* k) {
    std::vector<std::uint8_t> r{1, static_cast<std::uint8_t>(strlen(k))};
    r.insert(r.end(), k, k + strlen(k));
    return r;
  };

  sim::Tick put_done = 0;
  client.call(0, 850, make_put("osiris", "segmented and reassembled"),
              [&](sim::Tick at, std::optional<std::vector<std::uint8_t>> r) {
                put_done = at;
                std::printf("PUT acknowledged at t=%.1f us (status %u)\n",
                            sim::to_us(at), r ? (*r)[0] : 255);
                client.call(
                    at, 850, make_get("osiris"),
                    [&](sim::Tick at2, std::optional<std::vector<std::uint8_t>> v) {
                      if (v) {
                        std::printf("GET returned \"%.*s\" at t=%.1f us "
                                    "(RPC RTT %.1f us)\n",
                                    static_cast<int>(v->size()),
                                    reinterpret_cast<const char*>(v->data()),
                                    sim::to_us(at2), sim::to_us(at2 - put_done));
                      }
                    });
              });
  tb.run();

  std::printf("\nkernel involvement: %llu interrupts on each side; "
              "0 syscalls, 0 copies, checksums verified end to end\n",
              static_cast<unsigned long long>(tb.b.intc.raised()));
  std::printf("client calls=%llu responses=%llu timeouts=%llu\n",
              static_cast<unsigned long long>(client.calls()),
              static_cast<unsigned long long>(client.responses()),
              static_cast<unsigned long long>(client.timeouts()));
  return client.responses() == 2 ? 0 : 1;
}
