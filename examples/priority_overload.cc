// Prioritized traffic under receiver overload (§3.1).
//
// Early demultiplexing gives each data path its own receive queue and
// buffer pool on the board. When the receiver is overloaded, low-priority
// queues run out of buffers first, so the BOARD drops those packets
// before they consume any host cycles — while the high-priority path
// keeps its service rate. This example builds two paths as separate
// channels (as ADCs with different priorities), overloads the host, and
// shows who got dropped and where.
//
//   $ ./priority_overload
#include <cstdio>

#include "adc/adc.h"
#include "osiris/node.h"
#include "proto/message.h"

using namespace osiris;

namespace {

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

}  // namespace

int main() {
  // Sender: fast Alpha. Receiver: slow DECstation, deliberately starved.
  NodeConfig recv_cfg = make_5000_200_config();
  Testbed tb(make_3000_600_config(), std::move(recv_cfg));

  proto::StackConfig sc;
  sc.mode = proto::StackMode::kRawAtm;

  // Two application channels on the receiver: "video" (high priority, a
  // generous buffer pool) and "bulk" (low priority, small pool). On the
  // sender, matching channels to originate the traffic.
  adc::Adc video_tx(deps_of(tb.a), 1, {800}, 2, sc);
  adc::Adc bulk_tx(deps_of(tb.a), 2, {801}, 1, sc);
  adc::Adc video_rx(deps_of(tb.b), 1, {800}, 2, sc);
  adc::Adc bulk_rx(deps_of(tb.b), 2, {801}, 1, sc);

  // The high-priority consumer keeps up (its thread runs at a higher
  // scheduling priority, modelled as a short service time); the bulk
  // consumer lags badly, so ITS free queue drains and ITS packets are
  // dropped on the board — without stealing anything from video.
  std::uint64_t video_got = 0, bulk_got = 0;
  video_rx.driver().set_rx_handler(
      [&](sim::Tick at, host::RxPduView&) {
        ++video_got;
        return at + sim::us(60);
      });
  bulk_rx.driver().set_rx_handler(
      [&](sim::Tick at, host::RxPduView&) {
        ++bulk_got;
        return at + sim::us(900);
      });

  std::vector<std::uint8_t> data(3000, 0x77);
  proto::Message mv = proto::Message::from_payload(video_tx.space(), data);
  proto::Message mb = proto::Message::from_payload(bulk_tx.space(), data);
  video_tx.authorize(mv.scatter());
  bulk_tx.authorize(mb.scatter());

  constexpr int kMsgs = 60;
  sim::Tick tv = 0, tb2 = 0;
  for (int i = 0; i < kMsgs; ++i) {
    tv = video_tx.send(tv, 800, mv);
    tb2 = bulk_tx.send(tb2, 801, mb);
  }
  tb.run();

  const auto dropped_total =
      tb.b.rxp.pdus_dropped_nobuf() + tb.b.rxp.pdus_dropped_recvfull();
  std::puts("Receiver overload with per-path queues (paper 3.1)");
  std::printf("  video (priority 2): %llu/%d delivered\n",
              static_cast<unsigned long long>(video_got), kMsgs);
  std::printf("  bulk  (priority 1): %llu/%d delivered\n",
              static_cast<unsigned long long>(bulk_got), kMsgs);
  std::printf("  PDUs dropped BY THE BOARD before consuming host cycles: %llu\n",
              static_cast<unsigned long long>(dropped_total));
  std::printf("  host interrupts fielded: %llu (not one per dropped PDU)\n",
              static_cast<unsigned long long>(tb.b.intc.raised()));
  std::puts("");
  std::puts("Early demultiplexing is what makes this possible: the adaptor");
  std::puts("knows each cell's path (VCI) before spending any host resources");
  std::puts("on it, so overload sheds exactly the traffic whose consumers lag.");
  return 0;
}
