// Striping and skew (§2.6): runs the same traffic over a clean link and a
// badly skewed one, with both reassembly strategies, and shows cells being
// reordered across lanes while PDUs still reassemble intact — plus the
// cost: the double-cell DMA combining rate collapses.
//
//   $ ./striping_skew
#include <cstdio>

#include "osiris/node.h"
#include "proto/message.h"

using namespace osiris;

namespace {

void run_case(const char* strategy, double skew_us) {
  NodeConfig ca = make_3000_600_config();
  NodeConfig cb = make_3000_600_config();
  ca.board.reassembly = strategy;
  cb.board.reassembly = strategy;
  if (skew_us > 0) ca.link = link::skewed_config(skew_us, 7);
  Testbed tb(std::move(ca), std::move(cb));
  const std::uint16_t vci = tb.open_kernel_path();
  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});

  std::uint64_t ok = 0, bad = 0;
  std::vector<std::uint8_t> expect(24 * 1024);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect[i] = static_cast<std::uint8_t>(i * 13 + 5);
  }
  sb->set_sink([&](sim::Tick, std::uint16_t, std::vector<std::uint8_t>&& d) {
    (d == expect ? ok : bad)++;
  });

  proto::Message m = proto::Message::from_payload(tb.a.kernel_space, expect);
  sim::Tick t = 0;
  for (int i = 0; i < 10; ++i) t = sa->send(t, vci, m);
  tb.run();

  std::printf("  strategy=%-4s skew=%3.0f us: %llu/10 intact, %llu corrupt, "
              "combine fraction %.2f\n",
              strategy, skew_us, static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(bad),
              tb.b.rxp.combine_fraction());
}

}  // namespace

int main() {
  std::puts("Cell striping over four 155 Mbps lanes, with skew (paper 2.6)");
  std::puts("");
  std::puts("Strategy A (\"seq\"): per-cell sequence numbers in the AAL header.");
  std::puts("Strategy B (\"quad\"): four concurrent per-lane AAL5 reassemblies,");
  std::puts("no sequence numbers, one extra last-cell framing bit.");
  std::puts("");
  std::puts("Clean link:");
  run_case("seq", 0);
  run_case("quad", 0);
  std::puts("Heavily skewed link (path-length offsets + mux and switch jitter):");
  run_case("seq", 60);
  run_case("quad", 60);
  std::puts("");
  std::puts("Skew never corrupts data — cells stay ordered within each lane and");
  std::puts("both strategies place payloads by construction — but successive");
  std::puts("cells rarely arrive adjacent any more, so the 88-byte double-DMA");
  std::puts("optimization (§2.5.1) stops firing. That is the paper's \"serious");
  std::puts("disadvantage\" of striping.");
  return 0;
}
