// Data paths and fast buffers (§3.1): hundreds of connections, each bound
// to its own VCI; the 16 most recently used paths keep preallocated,
// pre-mapped fbuf pools that incoming PDUs land in directly thanks to the
// board's early demultiplexing.
//
//   $ ./fbuf_paths
#include <cstdio>

#include "fbuf/fbuf.h"
#include "osiris/paths.h"
#include "osiris/stats.h"
#include "proto/message.h"

using namespace osiris;

int main() {
  Testbed tb(make_3000_600_config(), make_3000_600_config());
  PathManager pm(tb);

  // A few hundred ordinary connections — VCIs are abundant (§3.1).
  for (int i = 0; i < 300; ++i) pm.open();
  std::printf("%zu kernel-buffered paths open (VCIs bound on both hosts)\n",
              pm.open_count());

  // A handful of hot connections get per-path fbuf pools, pre-mapped into
  // their data path's domains: driver -> protocol server -> application.
  fbuf::FbufPool pool_a(tb.a.eng, tb.a.cfg.machine, tb.a.cpu, tb.a.frames,
                        fbuf::FbufPool::Config{});
  fbuf::FbufPool pool_b(tb.b.eng, tb.b.cfg.machine, tb.b.cpu, tb.b.frames,
                        fbuf::FbufPool::Config{});
  std::vector<std::uint16_t> hot;
  for (int i = 0; i < 4; ++i) {
    hot.push_back(pm.open_fbuf(pool_a, pool_b, {0, 1, 2}));
  }
  std::printf("%d hot paths with per-path cached fbuf pools\n\n",
              static_cast<int>(hot.size()));

  auto sa = tb.a.make_stack(proto::StackConfig{});
  auto sb = tb.b.make_stack(proto::StackConfig{});
  std::map<std::uint16_t, std::uint64_t> per_vci;
  sb->set_sink([&](sim::Tick, std::uint16_t v, std::vector<std::uint8_t>&&) {
    ++per_vci[v];
  });

  // Traffic across the hot paths.
  std::vector<std::uint8_t> data(12 * 1024, 0x66);
  proto::Message m = proto::Message::from_payload(tb.a.kernel_space, data);
  sim::Tick t = 0;
  for (int round = 0; round < 5; ++round) {
    for (const std::uint16_t v : hot) t = sa->send(t, v, m);
  }
  tb.run();

  for (const std::uint16_t v : hot) {
    std::printf("  vci %u: %llu messages, delivered straight into its fbuf pool\n",
                v, static_cast<unsigned long long>(per_vci[v]));
  }

  std::puts("");
  std::puts("--- receiver statistics ---");
  std::fputs(format_stats(snapshot(tb.b)).c_str(), stdout);

  std::puts("");
  std::printf("fbuf pools on B: hot paths are %s; early demux decided the\n",
              pool_b.is_path_cached(0) ? "cached (pre-mapped)" : "uncached");
  std::puts("buffer pool per VCI before a single host cycle was spent on the");
  std::puts("PDU — the property both fbufs and ADCs are built on.");
  return pool_b.is_path_cached(0) ? 0 : 1;
}
