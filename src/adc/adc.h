// Application device channels (ADCs) — §3.2, the paper's most novel idea.
//
// An ADC gives an application restricted but direct access to the network
// adaptor, bypassing the OS kernel on the data path. The dual-port memory
// is partitioned into sixteen page pairs; opening an ADC maps one transmit
// page and one free/receive page pair into the application's address
// space. Linked into the application are (a) an ADC channel driver —
// literally the same driver code as the kernel's, reused here — and (b) a
// replicated protocol stack.
//
// The OS assigns the ADC a set of VCIs, a priority (honoured by the
// transmit processor), and a list of physical pages the channel may use
// for DMA. A queued buffer outside that list makes the on-board processor
// raise an interrupt, which the OS turns into an access-violation
// exception in the offending process.
//
// Host interrupts are still fielded by the kernel (cost: one interrupt
// service); the handler then signals the ADC channel-driver thread
// directly — which is why ADC user-to-user latency matches kernel-to-
// kernel latency within error margins (§4).
//
// Because the application owns the mapped queue pages outright, nothing
// stops it from writing garbage descriptors, poisoning the free list it
// recycles, or dying mid-send. close() (and the destructor) tears the
// channel down crash-safely: board queues detached, VCIs unmapped, the
// interrupt handler unregistered, and every frame/page the channel wired
// or allocated returned — scheduled completions for the dead channel are
// discarded when they fire. See AdcSupervisor for the kernel's runtime
// policing of live-but-misbehaving channels.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "board/rx.h"
#include "board/tx.h"
#include "fault/fault.h"
#include "host/driver.h"
#include "host/interrupts.h"
#include "host/machine.h"
#include "proto/stack.h"

namespace osiris::adc {

class Adc {
 public:
  struct Deps {
    sim::Engine& eng;
    const host::MachineConfig& mc;
    host::HostCpu& cpu;
    host::InterruptController& intc;
    tc::TurboChannel& bus;
    mem::PhysicalMemory& pm;
    mem::DataCache& cache;
    mem::FrameAllocator& frames;
    dpram::DualPortRam& ram;
    board::TxProcessor& txp;
    board::RxProcessor& rxp;
  };

  /// Opens channel pair `pair_index` (1..15) with the given VCIs and
  /// transmit priority. Registers the queues with both board processors,
  /// guarded by this ADC's page-authorization predicate; the board also
  /// enforces the VCI list on transmit.
  Adc(const Deps& d, int pair_index, std::vector<atm::Vci> vcis,
      int priority, proto::StackConfig stack_cfg);

  /// Closes the channel if close() hasn't run yet.
  ~Adc();

  Adc(const Adc&) = delete;
  Adc& operator=(const Adc&) = delete;

  /// Tears the channel down (idempotent): detaches the transmit queue,
  /// unmaps the VCIs, detaches the receive channel, unregisters the
  /// kernel's access-violation handler for this pair, and releases the
  /// channel driver's pool frames. Completions and violations already in
  /// flight for this channel are discarded when they fire. After close()
  /// the pair index and VCIs may be reused by a fresh Adc.
  void close();
  [[nodiscard]] bool closed() const { return closed_; }

  /// The application's protection domain.
  [[nodiscard]] mem::AddressSpace& space() { return *space_; }
  [[nodiscard]] proto::ProtoStack& stack() { return *stack_; }
  [[nodiscard]] host::OsirisDriver& driver() { return *driver_; }
  [[nodiscard]] const std::vector<atm::Vci>& vcis() const { return vcis_; }
  [[nodiscard]] int pair() const { return pair_; }

  /// Grants DMA permission for the pages backing `bufs` (the OS does this
  /// when the application registers its buffers).
  void authorize(const std::vector<mem::PhysBuffer>& bufs);

  [[nodiscard]] bool allowed(std::uint32_t addr, std::uint32_t len) const;

  /// Sends directly from user space: no syscall, no domain crossing. With
  /// a tenant fault plane armed, this is also where the application's
  /// misbehaviour surfaces: kAdcGarbageDescriptor posts a forged
  /// descriptor instead of the message; kAdcAppDeath posts a truncated
  /// chain (no EOP) and kills the application — subsequent sends no-op.
  sim::Tick send(sim::Tick at, atm::Vci vci, const proto::Message& m);

  void set_sink(proto::ProtoStack::Sink s) { stack_->set_sink(std::move(s)); }

  /// Arms tenant-misbehaviour injection (a per-tenant plane, distinct from
  /// the node-level hardware plane): consulted in send() and in the
  /// channel driver's recycle path.
  void set_fault_plane(fault::FaultPlane* f);

  /// True once kAdcAppDeath fired: the process is gone; its channel state
  /// survives until the OS notices and calls close().
  [[nodiscard]] bool dead() const { return dead_; }

  /// Called when the board reports this channel DMAing outside its pages;
  /// models the OS raising an exception in the process.
  void set_violation_handler(std::function<void(sim::Tick)> h) {
    violation_handler_ = std::move(h);
  }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }

 private:
  int pair_;
  std::vector<atm::Vci> vcis_;
  std::unordered_set<std::uint32_t> auth_frames_;
  std::unique_ptr<mem::AddressSpace> space_;
  std::unique_ptr<host::OsirisDriver> driver_;
  std::unique_ptr<proto::ProtoStack> stack_;
  std::function<void(sim::Tick)> violation_handler_;
  std::uint64_t violations_ = 0;

  board::TxProcessor* txp_;
  board::RxProcessor* rxp_;
  host::InterruptController* intc_;
  int irq_token_ = -1;
  bool closed_ = false;
  bool dead_ = false;
  fault::FaultPlane* tenant_faults_ = nullptr;
};

}  // namespace osiris::adc
