#include "adc/supervisor.h"

namespace osiris::adc {

AdcSupervisor::AdcSupervisor(sim::Engine& eng, board::TxProcessor& txp,
                             board::RxProcessor& rxp)
    : eng_(&eng), txp_(&txp), rxp_(&rxp) {
  txp_->set_violation_sink([this](board::Violation v, int ch) {
    on_violation(v, ch);
  });
  rxp_->set_violation_sink([this](board::Violation v, int ch) {
    on_violation(v, ch);
  });
}

AdcSupervisor::~AdcSupervisor() {
  *alive_ = false;
  // The sinks capture `this`; leaving them installed would dangle.
  txp_->set_violation_sink(nullptr);
  rxp_->set_violation_sink(nullptr);
}

void AdcSupervisor::watch(Adc& a, Budget b) {
  Channel ch;
  ch.adc = &a;
  ch.budget = b;
  ch.tx_bytes_base = txp_->channel_bytes(a.pair());
  ch.rx_bufs_base = rxp_->channel_buffers(a.pair());
  *channels_.insert(static_cast<std::uint32_t>(a.pair())).first = std::move(ch);
  // Push the QoS half of the budget down into the firmware. Weight and
  // rate limit key on the channel; the receive quota keys on each VCI the
  // tenant owns.
  txp_->set_queue_weight(a.pair(), b.tx_weight);
  if (b.tx_bytes_per_sec > 0.0) {
    const std::uint64_t burst =
        b.tx_burst_bytes != 0 ? b.tx_burst_bytes : std::uint64_t{16 * 1024};
    txp_->set_rate_limit(a.pair(), b.tx_bytes_per_sec, burst);
  }
  if (b.rx_buffer_quota != 0) {
    for (const atm::Vci vci : a.vcis()) {
      rxp_->set_vci_quota(vci, b.rx_buffer_quota);
    }
  }
}

void AdcSupervisor::unwatch(int pair_index) {
  channels_.erase(static_cast<std::uint32_t>(pair_index));
}

void AdcSupervisor::on_violation(board::Violation v, int channel) {
  ++seen_[static_cast<std::size_t>(v)];
  Channel* chp = channels_.find(static_cast<std::uint32_t>(channel));
  if (chp == nullptr) return;  // kernel queue, or an unwatched pair
  Channel& ch = *chp;
  ++ch.violations;
  sim::trace_event(trace_, eng_->now(), "sup", board::violation_name(v),
                   static_cast<std::uint64_t>(channel), ch.violations);
  if (!ch.quarantined && ch.budget.max_violations != 0 &&
      ch.violations == ch.budget.max_violations + 1) {
    // The sink is invoked synchronously from inside a firmware step, with
    // the processor's own state (the PDU being reassembled, the chain
    // being rejected) live on the stack. Quarantining here would mutate
    // that state out from under it; the kernel reacts on its next
    // scheduling boundary instead, exactly as a real OS handles an
    // interrupt raised by firmware it cannot preempt.
    eng_->schedule(0, [this, channel, alive = alive_] {
      if (*alive) quarantine(channel);
    });
  }
}

void AdcSupervisor::quarantine(int pair_index) {
  Channel* chp = channels_.find(static_cast<std::uint32_t>(pair_index));
  if (chp == nullptr || chp->quarantined) return;
  Channel& ch = *chp;
  ch.quarantined = true;
  ++quarantines_;
  txp_->remove_queue(pair_index);
  for (const atm::Vci vci : ch.adc->vcis()) rxp_->quarantine_vci(vci);
  sim::trace_event(trace_, eng_->now(), "sup", "quarantine",
                   static_cast<std::uint64_t>(pair_index), ch.violations);
}

bool AdcSupervisor::quarantined(int pair_index) const {
  const Channel* ch = channels_.find(static_cast<std::uint32_t>(pair_index));
  return ch != nullptr && ch->quarantined;
}

std::uint64_t AdcSupervisor::violations(int pair_index) const {
  const Channel* ch = channels_.find(static_cast<std::uint32_t>(pair_index));
  return ch == nullptr ? 0 : ch->violations;
}

void AdcSupervisor::start(sim::Duration period, sim::Tick until) {
  poll_period_ = period;
  poll_until_ = until;
  if (!polling_) {
    polling_ = true;
    eng_->schedule(0, [this, alive = alive_] {
      if (*alive) poll();
    });
  }
}

void AdcSupervisor::poll() {
  if (!polling_) return;
  if (eng_->now() >= poll_until_) {
    polling_ = false;
    return;
  }
  channels_.for_each([this](std::uint32_t key, Channel& ch) {
    const int pair = static_cast<int>(key);
    if (ch.quarantined) return;
    const std::uint64_t tx_now = txp_->channel_bytes(pair);
    const std::uint64_t rx_now = rxp_->channel_buffers(pair);
    const std::uint64_t tx_delta = tx_now - ch.tx_bytes_base;
    const std::uint64_t rx_delta = rx_now - ch.rx_bufs_base;
    ch.tx_bytes_base = tx_now;
    ch.rx_bufs_base = rx_now;
    if ((ch.budget.max_tx_bytes_per_poll != 0 &&
         tx_delta > ch.budget.max_tx_bytes_per_poll) ||
        (ch.budget.max_rx_bufs_per_poll != 0 &&
         rx_delta > ch.budget.max_rx_bufs_per_poll)) {
      sim::trace_event(trace_, eng_->now(), "sup", "over_budget",
                       static_cast<std::uint64_t>(pair), tx_delta);
      quarantine(pair);
    }
  });
  eng_->schedule(poll_period_, [this, alive = alive_] {
    if (*alive) poll();
  });
}

}  // namespace osiris::adc
