#include "adc/adc.h"

#include <stdexcept>

namespace osiris::adc {

Adc::Adc(const Deps& d, int pair_index, std::vector<std::uint16_t> vcis,
         int priority, proto::StackConfig stack_cfg)
    : pair_(pair_index), vcis_(std::move(vcis)) {
  if (pair_index < 1 || pair_index >= static_cast<int>(dpram::kPagesPerHalf)) {
    throw std::invalid_argument("Adc: pair index must be 1..15");
  }
  space_ = std::make_unique<mem::AddressSpace>(d.pm, d.frames,
                                               "adc" + std::to_string(pair_index));

  const dpram::ChannelLayout lay =
      dpram::channel_layout(static_cast<std::uint32_t>(pair_index));

  // The ADC channel driver: identical code to the kernel driver, with a
  // page-sized buffer pool (applications cannot allocate physically
  // contiguous multi-page buffers).
  host::OsirisDriver::Config dcfg;
  dcfg.rx_buffers = 32;
  dcfg.rx_buffer_bytes = mem::kPageSize;
  driver_ = std::make_unique<host::OsirisDriver>(
      d.eng, d.mc, d.cpu, d.intc, d.bus, d.pm, d.cache, d.frames, d.ram, d.txp,
      lay, dcfg);
  driver_->attach(pair_index);

  stack_ = std::make_unique<proto::ProtoStack>(d.eng, d.mc, d.cpu, d.cache,
                                               d.pm, *driver_, stack_cfg);
  stack_->attach();
  // Protocol headers must come from registered pages too: give the
  // app-linked stack a header arena and authorize it.
  stack_->use_header_arena(*space_);
  authorize(stack_->header_buffers());

  // The receive pool the driver just allocated belongs to this ADC's
  // authorized page list.
  authorize(driver_->buffer_pool());
  auto auth = [this](std::uint32_t addr, std::uint32_t len) {
    return allowed(addr, len);
  };

  d.txp.add_queue(pair_index, lay.tx, priority, auth);
  const int free_id = d.rxp.add_free_source(lay.free, auth, pair_index);
  const int recv_idx = d.rxp.add_recv_channel(lay.recv, pair_index);
  for (const std::uint16_t vci : vcis_) {
    d.rxp.map_vci(vci, free_id, -1, recv_idx);
  }

  d.intc.add_handler(board::Irq::kAccessViolation,
                     [this](sim::Tick done, int ch) {
                       if (ch != pair_) return;
                       ++violations_;
                       if (violation_handler_) violation_handler_(done);
                     });
}

void Adc::authorize(const std::vector<mem::PhysBuffer>& bufs) {
  for (const auto& b : bufs) {
    if (b.len == 0) continue;
    for (std::uint32_t p = mem::page_of(b.addr);
         p <= mem::page_of(b.addr + b.len - 1); ++p) {
      auth_frames_.insert(p);
    }
  }
}

bool Adc::allowed(std::uint32_t addr, std::uint32_t len) const {
  if (len == 0) return true;
  for (std::uint32_t p = mem::page_of(addr); p <= mem::page_of(addr + len - 1);
       ++p) {
    if (!auth_frames_.contains(p)) return false;
  }
  return true;
}

}  // namespace osiris::adc
