#include "adc/adc.h"

#include <stdexcept>

namespace osiris::adc {

Adc::Adc(const Deps& d, int pair_index, std::vector<atm::Vci> vcis,
         int priority, proto::StackConfig stack_cfg)
    : pair_(pair_index),
      vcis_(std::move(vcis)),
      txp_(&d.txp),
      rxp_(&d.rxp),
      intc_(&d.intc) {
  if (pair_index < 1 || pair_index >= static_cast<int>(dpram::kPagesPerHalf)) {
    throw std::invalid_argument("Adc: pair index must be 1..15");
  }
  space_ = std::make_unique<mem::AddressSpace>(d.pm, d.frames,
                                               "adc" + std::to_string(pair_index));

  const dpram::ChannelLayout lay =
      dpram::channel_layout(static_cast<std::uint32_t>(pair_index));

  // A reused pair index inherits whatever head/tail words the previous
  // tenant left in the dual-port RAM; with them non-zero, fresh endpoint
  // caches (which start at zero) would disagree with the rings. Open
  // re-initializes all three rings before either side attaches. Safe even
  // with the old tenant's completions still in flight: those check the
  // detached flag at fire time and never touch the rings.
  dpram::QueueWriter(d.ram, lay.tx, dpram::Side::kHost).reset();
  dpram::QueueWriter(d.ram, lay.free, dpram::Side::kHost).reset();
  dpram::QueueWriter(d.ram, lay.recv, dpram::Side::kBoard).reset();

  // The ADC channel driver: identical code to the kernel driver, with a
  // page-sized buffer pool (applications cannot allocate physically
  // contiguous multi-page buffers).
  host::OsirisDriver::Config dcfg;
  dcfg.rx_buffers = 32;
  dcfg.rx_buffer_bytes = mem::kPageSize;
  driver_ = std::make_unique<host::OsirisDriver>(
      d.eng, d.mc, d.cpu, d.intc, d.bus, d.pm, d.cache, d.frames, d.ram, d.txp,
      lay, dcfg);
  driver_->attach(pair_index);

  stack_ = std::make_unique<proto::ProtoStack>(d.eng, d.mc, d.cpu, d.cache,
                                               d.pm, *driver_, stack_cfg);
  stack_->attach();
  // Protocol headers must come from registered pages too: give the
  // app-linked stack a header arena and authorize it.
  stack_->use_header_arena(*space_);
  authorize(stack_->header_buffers());

  // The receive pool the driver just allocated belongs to this ADC's
  // authorized page list.
  authorize(driver_->buffer_pool());
  auto auth = [this](std::uint32_t addr, std::uint32_t len) {
    return allowed(addr, len);
  };

  d.txp.add_queue(pair_index, lay.tx, priority, auth, vcis_);
  const int free_id = d.rxp.add_free_source(lay.free, auth, pair_index);
  const int recv_idx = d.rxp.add_recv_channel(lay.recv, pair_index);
  for (const atm::Vci vci : vcis_) {
    d.rxp.map_vci(vci, free_id, -1, recv_idx);
  }

  irq_token_ = d.intc.add_handler(board::Irq::kAccessViolation,
                                  [this](sim::Tick done, int ch) {
                                    if (ch != pair_) return;
                                    ++violations_;
                                    if (violation_handler_) violation_handler_(done);
                                  });
}

Adc::~Adc() { close(); }

void Adc::close() {
  if (closed_) return;
  closed_ = true;
  // Order matters: stop the board consuming/producing on the channel's
  // dpram pages and addresses first, then unhook the host-side handlers,
  // then release memory — the firmware must never DMA into freed frames.
  txp_->remove_queue(pair_);
  for (const atm::Vci vci : vcis_) rxp_->unmap_vci(vci);
  rxp_->remove_channel(pair_);
  if (irq_token_ >= 0) {
    intc_->remove_handler(irq_token_);
    irq_token_ = -1;
  }
  // Releases the pool frames, unwires in-flight transmit pages, and makes
  // scheduled driver events inert. The address space frees its own frames
  // (header arena, application buffers) when the Adc is destroyed.
  driver_->detach();
}

void Adc::set_fault_plane(fault::FaultPlane* f) {
  tenant_faults_ = f;
  driver_->set_tenant_fault_plane(f);
}

sim::Tick Adc::send(sim::Tick at, atm::Vci vci, const proto::Message& m) {
  if (dead_ || closed_) return at;
  if (fault::fires(tenant_faults_, fault::Point::kAdcGarbageDescriptor)) {
    // The application forges a descriptor on its mapped transmit page
    // instead of going through the stack. Each flavour violates a
    // different firmware check.
    dpram::Descriptor g;
    g.vci = vci;
    g.flags = dpram::kDescEop;
    switch (tenant_faults_->roll(4)) {
      case 0:  // zero length
        g.addr = 0x1000;
        g.len = 0;
        break;
      case 1:  // absurd length (and wrapping range)
        g.addr = 0xFFFFF000u;
        g.len = 0x00100000u;
        break;
      case 2:  // VCI the channel doesn't own
        g.addr = 0x1000;
        g.len = 64;
        g.vci = (vci + 0x55) & atm::kMaxVci;
        break;
      default:  // page outside the authorized list (beyond physical memory)
        g.addr = 0xFFFF0000u;
        g.len = 64;
        break;
    }
    return driver_->post_raw(at, g);
  }
  if (fault::fires(tenant_faults_, fault::Point::kAdcAppDeath)) {
    // The process dies between pushing a descriptor and pushing the EOP:
    // a truncated chain sits in the queue forever (the firmware never
    // schedules an EOP-less chain), and nothing more comes from this
    // tenant until the OS reaps it with close().
    dpram::Descriptor part;
    part.addr = 0x1000;
    part.len = 64;
    part.vci = vci;
    part.flags = 0;  // no EOP — the chain never completes
    const sim::Tick t = driver_->post_raw(at, part);
    dead_ = true;
    return t;
  }
  if (fault::fires(tenant_faults_, fault::Point::kTenantBurst)) {
    // A misbehaving (or just greedy) application dumps a back-to-back
    // burst instead of pacing one PDU: the extra copies land in the same
    // transmit queue instantly. Board-side token buckets are what keep
    // this from stealing the link from well-behaved tenants.
    sim::Tick t = at;
    for (int i = 0; i < 4; ++i) t = stack_->send(t, vci, m);
    return t;
  }
  return stack_->send(at, vci, m);
}

void Adc::authorize(const std::vector<mem::PhysBuffer>& bufs) {
  for (const auto& b : bufs) {
    if (b.len == 0) continue;
    // 64-bit end math: a buffer ending at the top of the 32-bit physical
    // space must not wrap `addr + len - 1` back to page 0.
    const std::uint64_t last = static_cast<std::uint64_t>(b.addr) + b.len - 1;
    for (std::uint64_t p = mem::page_of(b.addr); p <= (last >> mem::kPageShift);
         ++p) {
      auth_frames_.insert(static_cast<std::uint32_t>(p));
    }
  }
}

bool Adc::allowed(std::uint32_t addr, std::uint32_t len) const {
  if (len == 0) return true;
  const std::uint64_t last = static_cast<std::uint64_t>(addr) + len - 1;
  if (last > 0xFFFFFFFFull) return false;  // range leaves the physical space
  for (std::uint64_t p = mem::page_of(addr); p <= (last >> mem::kPageShift);
       ++p) {
    if (!auth_frames_.contains(static_cast<std::uint32_t>(p))) return false;
  }
  return true;
}

}  // namespace osiris::adc
