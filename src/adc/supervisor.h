// Kernel-side ADC supervision — the OS half of the §3.2 protection story.
//
// The board firmware rejects each individual malformed descriptor (see
// board/tx.cc, board/rx.cc), but rejection alone leaves an adversarial
// tenant free to keep flooding: every garbage chain still costs firmware
// time, and a tenant that legitimately formats its descriptors can still
// starve neighbours by sheer volume. The AdcSupervisor is the kernel
// policy layer on top of the firmware mechanism: it subscribes to both
// processors' typed violation sinks, meters each registered channel
// against a violation budget and a consumption budget (transmit bytes and
// receive buffers per polling window), and QUARANTINES a channel that
// exceeds either — transmit queue detached, VCIs cut off with attributed
// drops — without perturbing any other channel. Quarantine is not
// teardown: the application keeps its memory and may be inspected; only
// its reach into the shared adaptor is revoked. Adc::close() (or a fresh
// Adc on the same pair) lifts the state.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "adc/adc.h"
#include "flow/table.h"
#include "board/board.h"
#include "board/rx.h"
#include "board/tx.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace osiris::adc {

class AdcSupervisor {
 public:
  /// Per-channel limits. Zero disables the corresponding check.
  struct Budget {
    std::uint64_t max_violations = 8;        ///< typed rejections, lifetime
    std::uint64_t max_tx_bytes_per_poll = 0; ///< consumed tx bytes / window
    std::uint64_t max_rx_bufs_per_poll = 0;  ///< free-list pops / window
    // QoS knobs installed on the board at watch() time (the kernel is the
    // policy layer; the firmware DRR/token-bucket is the mechanism).
    std::uint32_t tx_weight = 1;             ///< DRR weight (min 1)
    double tx_bytes_per_sec = 0.0;           ///< token-bucket rate; 0 = none
    std::uint64_t tx_burst_bytes = 0;        ///< bucket depth (0 -> 1 PDU-ish)
    std::uint32_t rx_buffer_quota = 0;       ///< per-VCI held-buffer cap
  };

  /// Installs this supervisor as both processors' violation sink. One
  /// supervisor per adaptor; later sinks would displace it.
  AdcSupervisor(sim::Engine& eng, board::TxProcessor& txp,
                board::RxProcessor& rxp);
  ~AdcSupervisor();

  AdcSupervisor(const AdcSupervisor&) = delete;
  AdcSupervisor& operator=(const AdcSupervisor&) = delete;

  void set_trace(sim::Trace* t) { trace_ = t; }

  /// Registers `a`'s channel for supervision under `b`. The Adc must
  /// outlive the supervisor or be unregistered first.
  void watch(Adc& a, Budget b);

  /// Forgets the channel (e.g. before destroying the Adc). Its quarantine
  /// state on the board, if any, is left as-is.
  void unwatch(int pair_index);

  /// Starts the consumption poll: every `period`, each watched channel's
  /// transmit-byte and receive-buffer appetite over the window is checked
  /// against its budget. Polling stops past `until` (bounded schedules).
  void start(sim::Duration period, sim::Tick until);

  /// Cuts the channel off immediately (also invoked internally when a
  /// budget trips): transmit queue detached, every VCI quarantined with
  /// attributed drops. Idempotent; other channels are untouched.
  void quarantine(int pair_index);

  [[nodiscard]] bool quarantined(int pair_index) const;
  /// Typed violations charged to the channel since watch().
  [[nodiscard]] std::uint64_t violations(int pair_index) const;
  [[nodiscard]] std::uint64_t quarantines() const { return quarantines_; }
  /// All violations seen, by type (both processors).
  [[nodiscard]] std::uint64_t seen(board::Violation v) const {
    return seen_[static_cast<std::size_t>(v)];
  }

 private:
  struct Channel {
    Adc* adc = nullptr;
    Budget budget;
    std::uint64_t violations = 0;
    bool quarantined = false;
    std::uint64_t tx_bytes_base = 0;  // window baselines
    std::uint64_t rx_bufs_base = 0;
  };

  void on_violation(board::Violation v, int channel);
  void poll();

  sim::Engine* eng_;
  board::TxProcessor* txp_;
  board::RxProcessor* rxp_;
  sim::Trace* trace_ = nullptr;
  // Watched channels keyed by pair index. Same cache-conscious flow table
  // as the receive path's VCI state: the violation sink fires from inside
  // firmware cell handling, so the lookup it does per violation should not
  // chase tree or chain pointers.
  flow::FlowTable<Channel> channels_;
  std::array<std::uint64_t, static_cast<std::size_t>(board::Violation::kCount)>
      seen_{};
  std::uint64_t quarantines_ = 0;
  bool polling_ = false;
  sim::Duration poll_period_ = 0;
  sim::Tick poll_until_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace osiris::adc
