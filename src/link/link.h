// The striped 622 Mbps SONET/ATM link (paper §2.6).
//
// Four 155 Mbps physical sublinks ("lanes") are grouped into one logical
// channel with data striped at the cell level. Striping introduces skew:
// cells on one lane stay ordered relative to each other but may be delayed
// relative to other lanes. The paper identifies three causes, all modelled
// here:
//   (1) different physical path lengths        -> fixed per-lane offsets
//   (2) delays from multiplexing equipment     -> bounded random jitter
//   (3) queueing at distinct switch ports      -> bounded random queueing
//       delay (the paper notes this one is essentially unbounded; crank
//       `queue_jitter_us` up to explore that regime)
//
// In-order delivery *within* a lane is enforced: an arrival time is never
// earlier than the previous arrival on the same lane plus one cell time.
//
// The transmitter stripes round-robin and restarts each PDU on lane 0 (so
// cell `seq` always travels on lane `seq % 4`) — the alignment the QuadRouter
// reassembly strategy relies on; see reassembly.h.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "atm/cell.h"
#include "sim/engine.h"
#include "sim/group.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace osiris::link {

struct LinkConfig {
  double lane_mbps = 155.52;    // per-sublink line rate
  double base_delay_us = 2.0;   // propagation, identical on all lanes
  std::array<double, atm::kLanes> path_offset_us{};  // skew cause (1)
  double mux_jitter_us = 0.0;                        // skew cause (2)
  double queue_jitter_us = 0.0;                      // skew cause (3)
  double cell_loss_p = 0.0;     // probability a cell vanishes
  double payload_err_p = 0.0;   // probability one payload bit flips
  double header_err_p = 0.0;    // probability one header field flips
  // Byte-accurate mode: serialize each cell to its 53-byte wire form and
  // flip each of the 424 bits with this probability. Header damage is
  // caught by the real CRC-8 HEC (cell dropped at the framer); payload
  // damage flows through to the AAL CRC / UDP checksum.
  double wire_ber = 0.0;
  std::uint64_t seed = 42;
};

/// One direction of the striped link. The peer board's receive half
/// registers a sink; the transmit firmware submits cells in seq order.
class StripedLink {
 public:
  /// Called at cell arrival time with the arrival lane and the (possibly
  /// corrupted) cell.
  using Sink = std::function<void(int lane, const atm::Cell&)>;

  StripedLink(sim::Engine& eng, LinkConfig cfg);

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Switches delivery to partition-boundary export: arrivals are handed to
  /// partition `dst` of `group` through EngineGroup::schedule_remote instead
  /// of the local engine, carrying the delivered cell by value in the
  /// envelope. The caller must have declared the channel with a lookahead
  /// no larger than min_latency(). Wire before the first submit().
  void set_remote(sim::EngineGroup& group, std::size_t src, std::size_t dst) {
    group_ = &group;
    src_ = src;
    dst_ = dst;
  }

  /// Lower bound on submit-to-arrival latency: one cell serialization time
  /// plus the fixed propagation delay (jitter and per-lane offsets only add
  /// to it). This is the conservative lookahead for the link's channel.
  [[nodiscard]] sim::Duration min_latency() const {
    return cell_time_ + sim::us(cfg_.base_delay_us);
  }

  /// Time to clock one cell onto a lane.
  [[nodiscard]] sim::Duration cell_time() const { return cell_time_; }

  /// Submits a cell for transmission no earlier than `from`. The lane is
  /// chosen by the stripe rotation (reset to lane 0 on a BOM cell).
  /// Returns the time the chosen lane finishes clocking the cell out —
  /// the earliest the transmitter can hand over another cell for that lane;
  /// used by the transmit firmware for pacing.
  sim::Tick submit(sim::Tick from, const atm::Cell& c);

  /// Earliest time the lane the *next* cell would use becomes free.
  [[nodiscard]] sim::Tick next_lane_free_at() const;

  [[nodiscard]] std::uint64_t cells_sent() const { return cells_sent_; }
  [[nodiscard]] std::uint64_t cells_lost() const { return cells_lost_; }
  [[nodiscard]] std::uint64_t cells_corrupted() const { return cells_corrupted_; }
  /// Cells whose wire header failed the HEC at the receiving framer
  /// (byte-accurate mode only).
  [[nodiscard]] std::uint64_t cells_hec_dropped() const { return cells_hec_dropped_; }

 private:
  // In-flight cells parked in a pooled slot so the scheduled delivery
  // event captures only {this, slot} and stays inside Event's inline
  // buffer (a by-value Cell capture would heap-box every delivery).
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
  struct PendingDelivery {
    atm::Cell cell;
    int lane = 0;
    std::uint32_t next_free = kNoSlot;
  };

  std::uint32_t acquire_slot(int lane, const atm::Cell& c);
  void deliver(std::uint32_t slot);

  sim::Engine* eng_;
  sim::EngineGroup* group_ = nullptr;  // non-null: deliveries cross partitions
  std::size_t src_ = 0;
  std::size_t dst_ = 0;
  LinkConfig cfg_;
  sim::Duration cell_time_;
  Sink sink_;
  sim::Rng rng_;
  int next_lane_ = 0;
  std::array<sim::Tick, atm::kLanes> lane_busy_until_{};
  std::array<sim::Tick, atm::kLanes> lane_last_arrival_{};
  std::uint64_t cells_sent_ = 0;
  std::uint64_t cells_lost_ = 0;
  std::uint64_t cells_corrupted_ = 0;
  std::uint64_t cells_hec_dropped_ = 0;
  std::vector<PendingDelivery> pool_;
  std::uint32_t free_slot_ = kNoSlot;
};

/// Convenience: a LinkConfig with a given amount of symmetric skew spread
/// across the three causes (used by benches and tests).
LinkConfig skewed_config(double skew_us, std::uint64_t seed = 42);

}  // namespace osiris::link
