#include "link/link.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "atm/wire.h"

namespace osiris::link {

StripedLink::StripedLink(sim::Engine& eng, LinkConfig cfg)
    : eng_(&eng),
      cfg_(cfg),
      cell_time_(sim::ns(static_cast<double>(atm::kCellWire) * 8.0 * 1e3 /
                         cfg.lane_mbps)),
      rng_(cfg.seed) {
  lane_busy_until_.fill(0);
  lane_last_arrival_.fill(0);
}

sim::Tick StripedLink::next_lane_free_at() const {
  return lane_busy_until_[next_lane_];
}

sim::Tick StripedLink::submit(sim::Tick from, const atm::Cell& c) {
  if (c.bom()) next_lane_ = 0;  // each PDU restarts the stripe rotation
  const int lane = next_lane_;
  next_lane_ = (next_lane_ + 1) % atm::kLanes;

  // Clock the cell onto the lane (serialization).
  const sim::Tick start = std::max(from, lane_busy_until_[lane]);
  const sim::Tick departed = start + cell_time_;
  lane_busy_until_[lane] = departed;
  ++cells_sent_;

  if (cfg_.cell_loss_p > 0.0 && rng_.chance(cfg_.cell_loss_p)) {
    ++cells_lost_;
    return departed;
  }

  // Propagation plus the three skew causes.
  sim::Duration delay = sim::us(cfg_.base_delay_us);
  delay += sim::us(cfg_.path_offset_us[static_cast<std::size_t>(lane)]);
  if (cfg_.mux_jitter_us > 0.0) {
    delay += sim::us(rng_.uniform() * cfg_.mux_jitter_us);
  }
  if (cfg_.queue_jitter_us > 0.0) {
    delay += sim::us(rng_.uniform() * cfg_.queue_jitter_us);
  }

  // In-order within the lane: never earlier than the previous arrival on
  // this lane plus one cell time.
  sim::Tick arrival = departed + delay;
  arrival = std::max(arrival, lane_last_arrival_[lane] + cell_time_);
  lane_last_arrival_[lane] = arrival;

  atm::Cell delivered = c;
  if (cfg_.wire_ber > 0.0) {
    // Byte-accurate path: serialize, flip bits, reparse.
    atm::WireCell w = atm::encode_cell(c);
    bool flipped = false;
    for (std::size_t bit = 0; bit < w.size() * 8; ++bit) {
      if (rng_.chance(cfg_.wire_ber)) {
        w[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        flipped = true;
      }
    }
    if (flipped) ++cells_corrupted_;
    const auto parsed = atm::decode_cell(w);
    if (!parsed) {
      ++cells_hec_dropped_;  // framer discards on HEC failure
      return departed;
    }
    delivered = *parsed;
    // The wire carries only the 53 real bytes; restore the observability
    // sidecar the encode/decode round trip necessarily dropped.
    delivered.t_origin = c.t_origin;
  }
  delivered.t_depart = departed;
  if (cfg_.payload_err_p > 0.0 && rng_.chance(cfg_.payload_err_p)) {
    const auto bit = rng_.below(static_cast<std::uint64_t>(delivered.len) * 8);
    delivered.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ++cells_corrupted_;
  }
  if (cfg_.header_err_p > 0.0 && rng_.chance(cfg_.header_err_p)) {
    delivered.vci ^= atm::Vci{1} << rng_.below(atm::kVciBits);
    ++cells_corrupted_;
  }

  if (!sink_) throw std::logic_error("StripedLink: no sink registered");
  if (group_ != nullptr) {
    // Export across the partition boundary. The envelope carries the cell
    // by value (RemoteEvent's inline budget is sized for exactly this), so
    // the sink runs on the destination partition with no shared state but
    // the immutable sink itself.
    Sink* sinkp = &sink_;
    auto deliver_fn = [sinkp, lane, delivered] { (*sinkp)(lane, delivered); };
    // The cell's observability sidecar (t_origin/t_depart, 16 bytes) is
    // budgeted into RemoteEvent's inline capacity; growing Cell further
    // would silently heap-box every exported cell.
    static_assert(sizeof(deliver_fn) <= sim::RemoteEvent::kInlineBytes,
                  "exported cell envelope must stay inline");
    group_->schedule_remote(src_, dst_, arrival,
                            sim::RemoteEvent(std::move(deliver_fn)));
    return departed;
  }
  const std::uint32_t slot = acquire_slot(lane, delivered);
  eng_->schedule_at(arrival, [this, slot] { deliver(slot); });
  return departed;
}

std::uint32_t StripedLink::acquire_slot(int lane, const atm::Cell& c) {
  std::uint32_t idx;
  if (free_slot_ != kNoSlot) {
    idx = free_slot_;
    free_slot_ = pool_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  pool_[idx].cell = c;
  pool_[idx].lane = lane;
  return idx;
}

void StripedLink::deliver(std::uint32_t slot) {
  // Copy out before releasing the slot: the sink may submit() reentrantly,
  // which can grow the pool and invalidate references into it.
  const atm::Cell cell = pool_[slot].cell;
  const int lane = pool_[slot].lane;
  pool_[slot].next_free = free_slot_;
  free_slot_ = slot;
  sink_(lane, cell);
}

LinkConfig skewed_config(double skew_us, std::uint64_t seed) {
  LinkConfig cfg;
  cfg.seed = seed;
  // Spread the skew over the three causes: fixed per-lane offsets covering
  // [0, skew/2], plus random jitter up to skew/4 from each of the two
  // dynamic causes.
  for (int l = 0; l < atm::kLanes; ++l) {
    cfg.path_offset_us[static_cast<std::size_t>(l)] =
        skew_us / 2.0 * static_cast<double>(l) / (atm::kLanes - 1);
  }
  cfg.mux_jitter_us = skew_us / 4.0;
  cfg.queue_jitter_us = skew_us / 4.0;
  return cfg;
}

}  // namespace osiris::link
