// Transmit processor firmware.
//
// The host queues PDUs as chains of physical-buffer descriptors (last
// buffer flagged EOP) on one of up to 16 transmit queues (queue 0 belongs
// to the kernel driver, others to ADCs, §3.2). The firmware repeatedly
// picks a queue from the highest priority class with a ready PDU — within
// that class, ready queues share the link by deficit round robin over
// per-queue weights, gated by per-channel token-bucket rate limits — reads
// one PDU's descriptor chain, segments it into ATM cells — gathering
// payload from host memory with DMA reads that never cross a page boundary
// (§2.5.2) — computes the AAL trailer CRC incrementally, and clocks cells
// onto the striped link.
//
// Transmit completion is signalled by advancing the queue's tail pointer
// as each buffer finishes (no interrupt); the firmware raises an interrupt
// only when the host has marked the queue's ctrl word after finding the
// queue full, and the queue has drained to half empty (§2.1.2).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "atm/cell.h"
#include "board/board.h"
#include "dpram/dpram.h"
#include "dpram/queue.h"
#include "fault/fault.h"
#include "link/link.h"
#include "mem/phys.h"
#include "obs/spans.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "sim/trace.h"
#include "tc/turbochannel.h"

namespace osiris::board {

class TxProcessor {
 public:
  TxProcessor(sim::Engine& eng, const BoardConfig& cfg, tc::TurboChannel& bus,
              mem::PhysicalMemory& host_mem, dpram::DualPortRam& ram,
              link::StripedLink& link);
  ~TxProcessor();

  /// Registers a transmit queue. Higher `priority` wins; within a priority
  /// class, ready queues share the link by deficit round robin over their
  /// weights (set_queue_weight; default 1). `auth` may be empty (kernel
  /// queue). A non-empty `owned_vcis` makes the firmware reject PDUs posted
  /// on any other VCI (§3.2: the OS assigns an ADC its VCIs; the board
  /// enforces them).
  void add_queue(int channel, const dpram::QueueLayout& lay, int priority,
                 PageAuth auth = nullptr,
                 std::vector<atm::Vci> owned_vcis = {});

  /// DRR weight for every attached queue of `channel` (minimum 1): a queue
  /// with weight w earns w quanta of wire-byte credit per scheduler round,
  /// so two backlogged equal-priority queues with weights 3 and 1 share the
  /// link 3:1.
  void set_queue_weight(int channel, std::uint32_t weight);

  /// Board-side token-bucket rate limit for `channel`: its queues send at
  /// most `bytes_per_sec` of wire bytes sustained, with `burst_bytes` of
  /// credit. A rate of 0 removes the limit. While the bucket is dry the
  /// channel's queues are simply ineligible — lower-priority neighbours
  /// keep the link busy (work-conserving) and the firmware re-arms itself
  /// at the refill time, so a lone rate-limited queue never wedges.
  void set_rate_limit(int channel, double bytes_per_sec,
                      std::uint64_t burst_bytes);

  /// True when `channel` currently has a token-bucket limit installed.
  [[nodiscard]] bool rate_limited(int channel) const {
    return limits_.contains(channel);
  }

  /// Detaches every queue registered for `channel`: the firmware stops
  /// scanning it, an in-progress PDU from it is abandoned, and completion
  /// publishes already scheduled for it are discarded when they fire (the
  /// dpram page may be re-registered by a reopened channel). Scheduler and
  /// rate-limiter bookkeeping (DRR deficit, token bucket, weight) is
  /// released so a reused channel starts fresh. Used by both quarantine and
  /// channel teardown.
  void remove_queue(int channel);

  /// True when `channel` has at least one attached (non-detached) queue.
  [[nodiscard]] bool queue_attached(int channel) const;

  /// Payload bytes of PDUs consumed from `channel`'s queues (accepted or
  /// rejected — a flooder's garbage counts against it too). Feeds the
  /// AdcSupervisor's per-tenant consumption budget.
  [[nodiscard]] std::uint64_t channel_bytes(int channel) const;

  void set_irq_sink(IrqSink sink) { irq_ = std::move(sink); }

  /// Kernel-side sink for typed descriptor violations (see board.h).
  void set_violation_sink(ViolationSink s) { violation_sink_ = std::move(s); }

  /// Rejections by reason, summed over all channels.
  [[nodiscard]] std::uint64_t violations(Violation v) const {
    return violation_counts_[static_cast<std::size_t>(v)];
  }

  /// Attaches an event trace (optional; null disables).
  void set_trace(sim::Trace* t) { trace_ = t; }

  /// Attaches PDU lifecycle spans (optional; null disables). The firmware
  /// matches driver-enqueue stamps to started PDUs per channel and stamps
  /// every outgoing cell with its PDU's origin tick.
  void set_spans(obs::PduSpans* s) { spans_ = s; }

  /// Enables fault injection (not owned). Consults kBoardTxStall once per
  /// descriptor read while assembling a PDU chain, and kTxQueueWedge once
  /// per ready queue per scheduler pass (a firing skips that queue for the
  /// pass).
  void set_fault_plane(fault::FaultPlane* f) { faults_ = f; }

  /// Wedges the transmit firmware loop: kicks are ignored, the in-progress
  /// PDU (if any) never advances, and the heartbeat word stops, until
  /// reset(). Queue tails freeze, which is what the host watchdog sees.
  void stall();
  [[nodiscard]] bool stalled() const { return stalled_; }

  /// Adaptor reset (host-initiated): clears the wedge, abandons the
  /// in-progress PDU, resets the board-side queue cursors, and bumps the
  /// epoch so stale scheduled steps and tail publishes are discarded.
  void reset();

  /// Starts the firmware heartbeat on dpram::kTxHeartbeatWord; see
  /// RxProcessor::start_heartbeat for semantics.
  void start_heartbeat(sim::Duration period, sim::Tick until);

  /// Doorbell: the host calls this after pushing descriptors.
  void kick();

  // Statistics.
  [[nodiscard]] std::uint64_t pdus_sent() const { return pdus_sent_; }
  [[nodiscard]] std::uint64_t cells_sent() const { return cells_sent_; }
  [[nodiscard]] std::uint64_t dma_ops() const { return dma_ops_; }
  [[nodiscard]] std::uint64_t dma_splits() const { return dma_splits_; }
  [[nodiscard]] std::uint64_t auth_violations() const { return auth_violations_; }
  /// Fixed-length-DMA mode only: cells that carried bytes from beyond the
  /// end of their source buffer (the §2.5.2 security leak).
  [[nodiscard]] std::uint64_t leaked_cells() const { return leaked_cells_; }
  [[nodiscard]] std::uint64_t leaked_bytes() const { return leaked_bytes_; }
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }
  [[nodiscard]] std::uint64_t dma_errors() const { return dma_errors_; }
  /// Descriptor chains rejected as nonsensical (e.g. a corrupted length
  /// word implying more cells than the 16-bit seq space can carry).
  [[nodiscard]] std::uint64_t bad_chains() const { return bad_chains_; }
  /// Times a ready queue was held back by its token bucket during a
  /// scheduler pass (the firmware re-arms itself at the refill time).
  [[nodiscard]] std::uint64_t rate_deferrals() const { return rate_deferrals_; }
  /// Ready queues skipped for one pass by an injected kTxQueueWedge.
  [[nodiscard]] std::uint64_t wedge_skips() const { return wedge_skips_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] sim::Resource& i960() { return i960_; }

 private:
  struct TxQueue {
    int channel;
    dpram::QueueReader reader;
    int priority;
    PageAuth auth;
    std::vector<atm::Vci> owned_vcis;  // empty = any (kernel queue)
    std::uint16_t next_pdu_id = 0;
    bool detached = false;
    std::uint64_t bytes_consumed = 0;
    std::uint32_t weight = 1;     // DRR weight within the priority class
    std::uint64_t deficit = 0;    // DRR byte credit (reset when idle)
  };

  // Board-side token bucket (per channel). Tokens are wire bytes; refill
  // is continuous at `bytes_per_sec`, capped at `burst`.
  struct RateLimit {
    double bytes_per_sec = 0.0;
    double burst = 0.0;
    double tokens = 0.0;
    sim::Tick last = 0;  // last refill time
  };

  struct Job;

  void service();
  /// Begins transmitting one PDU from the best queue. Returns false if no
  /// queue had a complete PDU chain; otherwise schedules step_job().
  bool start_pdu();
  /// Consumes `q`'s current chain without transmitting, raising the typed
  /// violation toward the kernel and the access-violation interrupt toward
  /// the application; reschedules service() at `fw_t`.
  void reject_chain(TxQueue& q, std::size_t chain_len, Violation why,
                    std::uint64_t detail, sim::Tick fw_t);
  /// Advances the in-progress PDU by one DMA group (one or two cells).
  void step_job();
  /// Fixed-length-DMA variant: one full-cell transfer from one address.
  void step_job_fixed();
  void finish_job(sim::Tick last_dep);
  int pick_queue();
  /// Wire bytes of the PDU at the head of `q`, or 0 when no complete chain
  /// (EOP) is queued.
  std::uint32_t head_wire_bytes(TxQueue& q);
  /// Refills `channel`'s bucket to now and checks `wire` bytes of credit.
  /// On failure stores the earliest tick the credit will exist into
  /// `*refill_at`.
  bool tokens_available(int channel, std::uint32_t wire, sim::Tick* refill_at);
  void check_half_empty(TxQueue& q, sim::Tick at);
  void heartbeat_step();

  sim::Engine* eng_;
  BoardConfig cfg_;
  tc::TurboChannel* bus_;
  mem::PhysicalMemory* host_mem_;
  dpram::DualPortRam* ram_;
  link::StripedLink* link_;
  sim::Resource i960_;
  IrqSink irq_;
  ViolationSink violation_sink_;
  std::array<std::uint64_t, static_cast<std::size_t>(Violation::kCount)>
      violation_counts_{};
  sim::Trace* trace_ = nullptr;
  obs::PduSpans* spans_ = nullptr;
  fault::FaultPlane* faults_ = nullptr;
  std::vector<TxQueue> queues_;
  std::size_t rr_next_ = 0;
  std::map<int, RateLimit> limits_;   // channel -> token bucket
  sim::Tick rate_defer_tick_ = 0;     // earliest token refill seen by pick
  bool active_ = false;
  bool stalled_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_job_serial_ = 0;
  std::unique_ptr<Job> job_;

  // step_job() scratch, reused across DMA groups so the steady-state
  // transmit loop allocates nothing.
  std::vector<atm::Cell> scratch_cells_;
  std::vector<std::size_t> scratch_completed_;
  std::vector<mem::PhysBuffer> scratch_segs_;  // per-cell gather program
  std::vector<std::uint32_t> scratch_wire_;    // pick_queue head sizes

  // Heartbeat state (see start_heartbeat()).
  bool hb_running_ = false;
  sim::Duration hb_period_ = 0;
  sim::Tick hb_until_ = 0;
  std::uint32_t hb_count_ = 0;

  std::uint64_t pdus_sent_ = 0;
  std::uint64_t cells_sent_ = 0;
  std::uint64_t dma_ops_ = 0;
  std::uint64_t dma_splits_ = 0;
  std::uint64_t auth_violations_ = 0;
  std::uint64_t leaked_cells_ = 0;
  std::uint64_t leaked_bytes_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t dma_errors_ = 0;
  std::uint64_t bad_chains_ = 0;
  std::uint64_t rate_deferrals_ = 0;
  std::uint64_t wedge_skips_ = 0;
};

}  // namespace osiris::board
