#include "board/rx.h"

#include <algorithm>
#include <stdexcept>

#include "atm/sar.h"

namespace osiris::board {

RxProcessor::RxProcessor(sim::Engine& eng, const BoardConfig& cfg,
                         tc::TurboChannel& bus, mem::DataCache& cache,
                         dpram::DualPortRam& ram)
    : eng_(&eng),
      cfg_(cfg),
      bus_(&bus),
      cache_(&cache),
      ram_(&ram),
      i960_(eng, "rx.i960") {}

int RxProcessor::add_free_source(const dpram::QueueLayout& lay, PageAuth auth,
                                 int channel_id) {
  free_sources_.push_back(FreeSource{
      dpram::QueueReader(*ram_, lay, dpram::Side::kBoard), std::move(auth),
      channel_id, false, 0});
  return static_cast<int>(free_sources_.size()) - 1;
}

int RxProcessor::add_recv_channel(const dpram::QueueLayout& lay, int channel_id) {
  recv_channels_.push_back(RecvChannel{
      dpram::QueueWriter(*ram_, lay, dpram::Side::kBoard), channel_id, 0,
      false});
  return static_cast<int>(recv_channels_.size()) - 1;
}

RxProcessor::VciState& RxProcessor::state_insert(atm::Vci vci) {
  return *flows_.insert(vci).first;
}

void RxProcessor::maybe_release(atm::Vci vci, VciState& st) {
  if (st.flags == 0 && st.quota == 0 && st.held == 0 && st.router == nullptr) {
    flows_.erase(vci);
  }
}

void RxProcessor::set_vci_quota(atm::Vci vci, std::uint32_t max_buffers) {
  if (max_buffers == 0) {
    VciState* st = flows_.find(vci);
    if (st != nullptr) {
      st->quota = 0;
      maybe_release(vci, *st);
    }
  } else {
    state_insert(vci).quota = max_buffers;
  }
}

std::uint32_t RxProcessor::quota_for(atm::Vci vci) const {
  const VciState* st = flows_.find(vci);
  return st != nullptr && st->quota != 0 ? st->quota
                                         : cfg_.rx_vci_buffer_quota;
}

void RxProcessor::release_quota(atm::Vci vci, std::size_t held) {
  if (held == 0) return;
  VciState* st = flows_.find(vci);
  if (st == nullptr) return;
  st->held -= std::min<std::uint32_t>(st->held,
                                      static_cast<std::uint32_t>(held));
  if (st->held == 0) maybe_release(vci, *st);
}

void RxProcessor::abort_pdu_buffers(std::uint64_t key, RxPdu& p) {
  // Hand the buffers this PDU is sitting on back to the host: each
  // still-held buffer goes up as an aborted descriptor, which the driver
  // recycles (together with any partial accumulation under the same tag)
  // instead of delivering. Without this, drops under sustained overload
  // would pin the receive pool in dead reassemblies.
  const atm::Vci vci = atm::VciKey::vci_of(key);
  const sim::Tick now = eng_->now();
  for (std::uint32_t i = p.next_push;
       i < static_cast<std::uint32_t>(p.bufs.size()); ++i) {
    push_buffer(p, i, /*eop=*/true, key, vci, now, dpram::kDescAborted);
  }
}

void RxProcessor::remove_channel(int channel_id) {
  for (auto& fs : free_sources_) {
    if (fs.channel_id == channel_id) fs.detached = true;
  }
  for (std::size_t i = 0; i < recv_channels_.size(); ++i) {
    RecvChannel& ch = recv_channels_[i];
    if (ch.channel_id != channel_id || ch.detached) continue;
    ch.detached = true;
    // Discard reassembly state headed for the dead channel; its buffers
    // belong to an address space being torn down, not to the free pool.
    if (pending_.valid) {
      const RxPdu* p = pdus_.find(pending_.key);
      if (p != nullptr && p->recv_idx == static_cast<int>(i)) {
        pending_.valid = false;
      }
    }
    pdus_.erase_if([this, i](std::uint64_t, RxPdu& p) {
      if (p.recv_idx != static_cast<int>(i)) return false;
      release_quota(p.vci, p.bufs.size());
      return true;
    });
    sim::trace_event(trace_, eng_->now(), "rx", "channel_detach",
                     static_cast<std::uint64_t>(channel_id), i);
  }
}

bool RxProcessor::channel_attached(int channel_id) const {
  for (const RecvChannel& ch : recv_channels_) {
    if (ch.channel_id == channel_id && !ch.detached) return true;
  }
  return false;
}

std::uint64_t RxProcessor::channel_buffers(int channel_id) const {
  std::uint64_t n = 0;
  for (const FreeSource& fs : free_sources_) {
    if (fs.channel_id == channel_id) n += fs.buffers_consumed;
  }
  return n;
}

void RxProcessor::quarantine_vci(atm::Vci vci) {
  VciState& st = state_insert(vci);
  st.flags |= VciState::kQuarantined;
  st.router.reset();
  if (pending_.valid && atm::VciKey::vci_of(pending_.key) == vci) {
    pending_.valid = false;
  }
  pdus_.erase_if([this, vci](std::uint64_t key, RxPdu& p) {
    if (atm::VciKey::vci_of(key) != vci) return false;
    // Quarantine revokes the tenant's reach, not its memory: buffers its
    // half-built PDUs hold go back through the (still attached) receive
    // queue as aborted descriptors for the driver to recycle.
    abort_pdu_buffers(key, p);
    release_quota(p.vci, p.bufs.size());
    return true;
  });
  sim::trace_event(trace_, eng_->now(), "rx", "vci_quarantine", vci, 0);
}

void RxProcessor::map_vci(atm::Vci vci, int free_id, int fallback_free_id,
                          int recv_idx) {
  VciState& st = state_insert(vci);
  // A fresh kernel-established mapping lifts any quarantine left from a
  // previous owner of the VCI.
  st.flags = (st.flags | VciState::kMapped) &
             ~static_cast<std::uint32_t>(VciState::kQuarantined);
  st.free_id = free_id;
  st.fallback = fallback_free_id;
  st.recv_idx = recv_idx;
}

void RxProcessor::unmap_vci(atm::Vci vci) {
  VciState* st = flows_.find(vci);
  if (st == nullptr) return;
  st->flags &= ~static_cast<std::uint32_t>(VciState::kMapped);
  st->router.reset();
  maybe_release(vci, *st);
}

atm::CellRouter& RxProcessor::router_for(VciState& st) {
  if (st.router == nullptr) st.router = atm::make_router(cfg_.reassembly.c_str());
  return *st.router;
}

std::size_t RxProcessor::fifo_occupancy() {
  // A cell occupies the on-board FIFO from arrival until its payload's DMA
  // completes (entries are pushed by issue_dma with per-cell completion
  // times). The pending combine slot holds up to two more.
  const sim::Tick now = eng_->now();
  while (!inflight_.empty() && inflight_.front() <= now) inflight_.pop_front();
  std::size_t n = inflight_.size();
  if (pending_.valid) {
    n += (pending_.bytes.size() + atm::kCellPayload - 1) / atm::kCellPayload;
  }
  return n;
}

void RxProcessor::stall() {
  if (stalled_) return;
  stalled_ = true;
  ++stalls_;
  sim::trace_event(trace_, eng_->now(), "rx", "stall", epoch_, 0);
}

void RxProcessor::reset() {
  ++epoch_;
  stalled_ = false;
  pdus_.clear();
  pending_.valid = false;
  pending_.bytes.clear();
  open_batch_ = kNoBatch;  // pre-reset batches die at the epoch check
  eng_->cancel(flush_timer_);
  inflight_.clear();
  gen_active_ = false;
  // Reassembly and held-buffer state die with the reset; mappings, quota
  // overrides and quarantine flags are host-side policy and survive.
  flows_.for_each([this](std::uint32_t vci, VciState& st) {
    st.held = 0;
    st.router.reset();
    maybe_release(vci, st);
  });
  // reset_all, not reset: a stale head word published by a channel driver
  // the firmware cannot see would make the reborn board DMA into free
  // buffers whose owners no longer expect them.
  for (auto& fs : free_sources_) {
    fs.reader.reset_all();
    fs.low_raised = false;
  }
  for (auto& ch : recv_channels_) {
    ch.writer.reset();
    ch.push_horizon = 0;
  }
  sim::trace_event(trace_, eng_->now(), "rx", "reset", epoch_, 0);
}

void RxProcessor::start_heartbeat(sim::Duration period, sim::Tick until) {
  hb_period_ = period;
  hb_until_ = until;
  if (!hb_running_) {
    hb_running_ = true;
    eng_->schedule(0, [this] { heartbeat_step(); });
  }
}

void RxProcessor::heartbeat_step() {
  if (!hb_running_) return;
  if (eng_->now() >= hb_until_) {
    hb_running_ = false;
    return;
  }
  // The timer keeps firing while stalled — only the word freezes (which is
  // all the host watchdog can see) — so beating resumes after reset().
  if (!stalled_) {
    ram_->write(dpram::Side::kBoard, dpram::kRxHeartbeatWord, ++hb_count_);
    // Firmware housekeeping rides the heartbeat: abandon reassemblies
    // whose cells were lost upstream and return their buffers (a stalled
    // firmware can't GC — exactly why the host watchdog must reset it).
    if (cfg_.reassembly_timeout > 0) {
      purge_incomplete(cfg_.reassembly_timeout);
    }
  }
  eng_->schedule(hb_period_, [this] { heartbeat_step(); });
}

void RxProcessor::on_cell(int lane, const atm::Cell& c) {
  ++cells_received_;
  if (fault::fires(faults_, fault::Point::kBoardRxStall)) stall();
  if (stalled_) {
    ++cells_stalled_;
    return;
  }
  if (!atm::header_ok(c)) {
    // Header protection failed (or the cell was corrupted onto an unknown
    // VCI); the cell is discarded here, and the PDU it belonged to will
    // never complete.
    ++cells_bad_header_;
    return;
  }
  if (fifo_occupancy() >= cfg_.rx_fifo_depth) {
    ++cells_fifo_dropped_;
    sim::trace_event(trace_, eng_->now(), "rx", "fifo_drop", c.vci, c.seq);
    return;
  }
  // Wire stage: this cell's departure stamp to its acceptance here
  // (generator cells carry no stamp and contribute nothing).
  if (spans_ != nullptr && c.t_depart > 0 && eng_->now() >= c.t_depart) {
    spans_->record(obs::Stage::kWire, eng_->now() - c.t_depart);
  }
  accept_cell(lane, c);
}

void RxProcessor::accept_cell(int lane, const atm::Cell& c) {
  // Early demultiplexing (§3.1): ONE flow-table probe yields everything
  // the cell path needs — quarantine bit, mapping, and the router.
  VciState* st = flows_.find(c.vci);
  // Quarantined VCI (§3.2 hardening): the supervisor cut this tenant off;
  // its traffic is dropped with attribution, before any buffer is spent.
  if (st != nullptr && st->quarantined()) {
    ++quarantine_drops_;
    return;
  }
  // Unmapped VCI: no reassembly state, no host buffers — drop.
  if (st == nullptr || !st->mapped()) {
    ++cells_bad_header_;
    return;
  }
  if (fault::fires(faults_, fault::Point::kBoardRxCellDrop)) {
    // The SAR loop loses the cell after accepting it (e.g. a firmware
    // buffering bug); its PDU completes only if the sender retries.
    ++cells_sar_dropped_;
    sim::trace_event(trace_, eng_->now(), "rx", "sar_drop", c.vci, c.seq);
    return;
  }
  std::vector<atm::Placement> places;
  std::vector<atm::Completion> dones;
  // The router object is heap-owned, so this reference stays valid even
  // if flow-table inserts below move the VciState slab.
  router_for(*st).on_cell(lane, c, places, dones);
  for (const auto& pl : places) handle_placement(c.vci, pl);
  for (const auto& dn : dones) handle_completion(c.vci, dn);
}

RxProcessor::RxPdu* RxProcessor::pdu_for(atm::Vci vci, std::uint64_t pdu,
                                         std::uint64_t* key_out) {
  const std::uint64_t key = pdu_map_key(vci, pdu);
  if (key_out != nullptr) *key_out = key;
  auto [p, fresh] = pdus_.emplace(key);
  if (fresh) {
    const VciState* st = flows_.find(vci);
    if (st == nullptr || !st->mapped()) {
      // The VCI was unmapped while this payload sat in the combine window;
      // there is nowhere to deliver, so the late cell is dropped.
      pdus_.erase(key);
      return nullptr;
    }
    p->recv_idx = st->recv_idx;
    p->free_id = st->free_id;
    p->fallback = st->fallback;
    p->vci = vci;
    p->started = eng_->now();
  }
  return p;
}

bool RxProcessor::ensure_capacity(RxPdu& p, std::uint64_t need) {
  alloc_fail_quota_ = false;
  const std::uint32_t quota = quota_for(p.vci);
  while (p.alloc_cap < need) {
    if (quota > 0 && vci_buffers_held(p.vci) >= quota) {
      // The VCI, not the pool, is the limit: overload isolation drops this
      // PDU rather than letting one hot VCI drain shared buffers.
      alloc_fail_quota_ = true;
      return false;
    }
    int src = p.free_id;
    std::optional<dpram::Descriptor> d;
    while (src >= 0) {
      FreeSource& fs = free_sources_[static_cast<std::size_t>(src)];
      if (fs.detached) {
        src = (src == p.free_id && p.fallback != p.free_id) ? p.fallback : -1;
        continue;
      }
      if (fault::fires(faults_, fault::Point::kRxBufferExhausted)) {
        // The pop comes back empty as if the host had fallen behind
        // recycling — exercising the same backpressure path as a
        // genuinely dry queue.
        d.reset();
      } else {
        d = fs.reader.pop();
      }
      if (d) {
        fs.low_raised = false;
        ++fs.buffers_consumed;
        // Free-list validation (§3.2): an application recycles buffers by
        // writing descriptors the firmware will later trust for DMA, so a
        // poisoned entry (zero/absurd length, wrapping range) or one
        // pointing outside the channel's authorized pages is rejected here
        // — skipped, counted, and escalated — never used as a DMA target.
        if (fs.auth) {
          Violation why = Violation::kCount;
          if (d->len == 0 || d->len > kMaxAdcDescriptorBytes ||
              static_cast<std::uint64_t>(d->addr) + d->len > (1ull << 32)) {
            why = Violation::kFreeListPoison;
          } else if (!fs.auth(d->addr, d->len)) {
            why = Violation::kUnauthorizedPage;
          }
          if (why != Violation::kCount) {
            ++auth_violations_;
            ++violation_counts_[static_cast<std::size_t>(why)];
            sim::trace_event(trace_, eng_->now(), "rx", violation_name(why),
                             static_cast<std::uint64_t>(fs.channel_id), d->addr);
            if (irq_) irq_(Irq::kAccessViolation, fs.channel_id);
            if (violation_sink_) violation_sink_(why, fs.channel_id);
            d.reset();
            continue;  // try the next descriptor from the same source
          }
        }
        break;
      }
      // Source exhausted: raise the backpressure interrupt toward its
      // owner (edge-triggered — once per empty episode, cleared by the
      // next successful pop) so the host recycles or tops up instead of
      // discovering the shortage as silent PDU drops, then fall back
      // (cached fbuf queue -> uncached, §3.1).
      if (!fs.low_raised) {
        fs.low_raised = true;
        ++backpressure_irqs_;
        sim::trace_event(trace_, eng_->now(), "rx", "free_low",
                         static_cast<std::uint64_t>(fs.channel_id),
                         static_cast<std::uint64_t>(src));
        if (irq_) irq_(Irq::kRxFreeLow, fs.channel_id);
      }
      src = (src == p.free_id && p.fallback != p.free_id) ? p.fallback : -1;
    }
    if (!d) {
      if (cfg_.rx_drop_policy == RxDropPolicy::kDropIncompleteFirst &&
          evict_incomplete(p)) {
        continue;  // the stolen buffers may already cover `need`
      }
      return false;
    }
    i960_.reserve(cfg_.fw_rx_per_dma);  // free-queue pop firmware cost
    p.bufs.push_back(PduBuf{d->addr, d->len, 0, d->user, false});
    p.alloc_cap += d->len;
    ++state_insert(p.vci).held;
  }
  return true;
}

bool RxProcessor::evict_incomplete(RxPdu& keep) {
  // Oldest incomplete reassembly drawing on the same free source, none of
  // whose buffers have reached the host yet (those are the driver's to
  // reclaim): its buffers are re-issued to the arriving PDU directly, no
  // host round-trip. Ties break on the key for deterministic replay.
  std::uint64_t victim_key = 0;
  RxPdu* victim = nullptr;
  pdus_.for_each([&](std::uint64_t key, RxPdu& p) {
    if (&p == &keep || p.complete || p.dropped) return;
    if (p.free_id != keep.free_id) return;
    if (p.next_push != 0 || p.bufs.empty()) return;
    if (victim == nullptr || p.started < victim->started ||
        (p.started == victim->started && key < victim_key)) {
      victim = &p;
      victim_key = key;
    }
  });
  if (victim == nullptr) return false;
  // The buffers may be partially written; they are fully reused, so stale
  // bytes are either overwritten or never delivered (filled counts reset).
  for (const PduBuf& b : victim->bufs) {
    keep.bufs.push_back(PduBuf{b.addr, b.cap, 0, b.user, false});
    keep.alloc_cap += b.cap;
  }
  const std::size_t moved = victim->bufs.size();
  release_quota(victim->vci, moved);
  state_insert(keep.vci).held += static_cast<std::uint32_t>(moved);
  if (pending_.valid && pending_.key == victim_key) pending_.valid = false;
  ++pdus_evicted_;
  sim::trace_event(trace_, eng_->now(), "rx", "evict_incomplete", victim->vci,
                   moved);
  pdus_.erase(victim_key);
  return true;
}

void RxProcessor::handle_placement(atm::Vci vci, const atm::Placement& pl) {
  const std::uint64_t key = pdu_map_key(vci, pl.pdu);

  // Try to combine with the pending payload (§2.5.1): contiguous offsets
  // of the same PDU, up to two cell payloads per DMA.
  if (pending_.valid) {
    const bool mergeable =
        cfg_.double_cell_dma_rx && pending_.key == key &&
        pl.offset == pending_.offset + pending_.bytes.size() &&
        pending_.bytes.size() + pl.cell.len <= 2 * atm::kCellPayload;
    if (mergeable) {
      pending_.bytes.insert(pending_.bytes.end(), pl.cell.payload.begin(),
                            pl.cell.payload.begin() + pl.cell.len);
      flush_pending();  // two payloads: issue the double-length DMA now
      return;
    }
    flush_pending();
  }

  pending_.valid = true;
  pending_.key = key;
  pending_.offset = pl.offset;
  pending_.bytes.assign(pl.cell.payload.begin(),
                        pl.cell.payload.begin() + pl.cell.len);
  pending_.t_origin = pl.cell.t_origin;
  if (!cfg_.double_cell_dma_rx) {
    flush_pending();
  } else {
    schedule_flush_timer();
  }
}

void RxProcessor::schedule_flush_timer() {
  // One live combine-window timer at a time: re-arming cancels the old one
  // (and an early flush_pending() cancels it too), so dead generations are
  // never dispatched.
  eng_->cancel(flush_timer_);
  const auto wait = static_cast<sim::Duration>(cfg_.combine_wait_cell_times *
                                               static_cast<double>(sim::ns(681.6)));
  flush_timer_ = eng_->schedule_timer(wait, [this] {
    if (pending_.valid) flush_pending();
  });
}

void RxProcessor::flush_pending() {
  if (!pending_.valid) return;
  pending_.valid = false;
  eng_->cancel(flush_timer_);
  // Create or find the PDU's reassembly state (key encodes the VCI).
  const atm::Vci vci = atm::VciKey::vci_of(pending_.key);
  const std::uint64_t local = atm::VciKey::sub_of(pending_.key);
  RxPdu* p = pdu_for(vci, local, nullptr);
  if (p == nullptr || p->dropped) return;
  if (p->t_origin == 0) p->t_origin = pending_.t_origin;
  issue_dma(*p, pending_.offset, pending_.bytes);
  if (!p->dropped) try_push(pending_.key, *p);
}

void RxProcessor::issue_dma(RxPdu& p, std::uint32_t offset,
                            const std::vector<std::uint8_t>& bytes) {
  const std::uint64_t need = static_cast<std::uint64_t>(offset) + bytes.size();
  if (!ensure_capacity(p, need)) {
    p.dropped = true;
    if (alloc_fail_quota_) {
      ++pdus_dropped_quota_;
      sim::trace_event(trace_, eng_->now(), "rx", "drop_quota", p.vci, need);
    } else {
      ++pdus_dropped_nobuf_;
      sim::trace_event(trace_, eng_->now(), "rx", "drop_nobuf",
                       static_cast<std::uint64_t>(p.recv_idx), need);
    }
    return;
  }
  // Firmware decision time (one per DMA command).
  sim::Tick t = i960_.reserve(cfg_.fw_rx_per_dma);

  // Split at buffer boundaries (buffers are physically contiguous, so no
  // further page split is needed inside one), collecting the scatter
  // program; the bytes then land in a single dma_scatter with per-segment
  // fault/error semantics — exactly as per-chunk writes behaved.
  scratch_segs_.clear();
  std::uint64_t cursor = offset;
  std::size_t done = 0;
  while (done < bytes.size()) {
    // Locate the buffer containing `cursor`.
    std::uint64_t base = 0;
    std::size_t bi = 0;
    for (; bi < p.bufs.size(); ++bi) {
      if (cursor < base + p.bufs[bi].cap) break;
      base += p.bufs[bi].cap;
    }
    if (bi == p.bufs.size()) throw std::logic_error("RxProcessor: offset beyond buffers");
    PduBuf& b = p.bufs[bi];
    const auto inner = static_cast<std::uint32_t>(cursor - base);
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(bytes.size() - done, b.cap - inner));
    t = bus_->dma_write(t, n);
    scratch_segs_.push_back(mem::PhysBuffer{b.addr + inner, n});
    b.filled += n;
    ++dma_ops_;
    if (n > atm::kCellPayload) ++combined_dma_ops_;
    cursor += n;
    done += n;
  }
  const std::size_t okn =
      cache_->dma_scatter(scratch_segs_, {bytes.data(), bytes.size()});
  if (okn < scratch_segs_.size()) {
    // Failed segments (injected DMA error, or a buffer address from a
    // corrupted descriptor): the firmware doesn't notice — those buffer
    // regions keep whatever bytes they held, and the end-to-end checksum
    // is what catches the damage.
    const std::uint64_t failed = scratch_segs_.size() - okn;
    dma_errors_ += failed;
    sim::trace_event(trace_, eng_->now(), "rx", "dma_error",
                     scratch_segs_.front().addr, failed);
  }
  // The cells covered by this DMA leave the on-board FIFO when it lands.
  const std::size_t cells =
      (bytes.size() + atm::kCellPayload - 1) / atm::kCellPayload;
  for (std::size_t i = 0; i < cells; ++i) inflight_.push_back(t);
  p.last_dma = std::max(p.last_dma, t);
}

void RxProcessor::handle_completion(atm::Vci vci, const atm::Completion& c) {
  const std::uint64_t key = pdu_map_key(vci, c.pdu);
  if (pending_.valid && pending_.key == key) flush_pending();
  RxPdu* pp = pdus_.find(key);
  if (pp == nullptr) return;
  RxPdu& p = *pp;
  if (p.dropped) {
    // The drop decision came mid-PDU: buffers it already held go back to
    // the host as aborted descriptors, not into oblivion.
    abort_pdu_buffers(key, p);
    release_quota(p.vci, p.bufs.size());
    pdus_.erase(key);
    return;
  }
  p.complete = true;
  p.wire_len = c.wire_bytes;
  i960_.reserve(cfg_.fw_rx_per_pdu);
  ++pdus_completed_;
  if (spans_ != nullptr) {
    const sim::Tick now = eng_->now();
    if (now >= p.started) {
      spans_->record(obs::Stage::kReassemble, now - p.started);
    }
    if (p.last_dma >= p.started) {
      spans_->record(obs::Stage::kRxDma, p.last_dma - p.started);
    }
  }
  sim::trace_event(trace_, eng_->now(), "rx", "pdu_done", vci, p.wire_len);
  try_push(key, p);
  release_quota(p.vci, p.bufs.size());
  pdus_.erase(key);
}

void RxProcessor::try_push(std::uint64_t key, RxPdu& p) {
  if (p.dropped) return;
  // Identify, once complete, the last buffer holding data.
  std::size_t last_idx = 0;
  if (p.complete) {
    std::uint64_t base = 0;
    for (std::size_t i = 0; i < p.bufs.size(); ++i) {
      if (p.wire_len - 1 < base + p.bufs[i].cap) {
        last_idx = i;
        break;
      }
      base += p.bufs[i].cap;
    }
  }
  const atm::Vci vci = atm::VciKey::vci_of(key);
  while (p.next_push < p.bufs.size()) {
    const std::uint32_t i = p.next_push;
    PduBuf& b = p.bufs[i];
    const bool is_last = p.complete && i == last_idx;
    if (b.filled == b.cap && !is_last) {
      push_buffer(p, i, /*eop=*/false, key, vci, p.last_dma);
      ++p.next_push;
      continue;
    }
    if (is_last) {
      push_buffer(p, i, /*eop=*/true, key, vci, p.last_dma);
      ++p.next_push;
      continue;
    }
    break;
  }
}

void RxProcessor::push_buffer(RxPdu& p, std::uint32_t idx, bool eop,
                              std::uint64_t pdu_tag, atm::Vci vci,
                              sim::Tick at, std::uint16_t extra_flags) {
  RecvChannel& ch = recv_channels_[static_cast<std::size_t>(p.recv_idx)];
  const PduBuf& b = p.bufs[idx];
  dpram::Descriptor d;
  d.addr = b.addr;
  d.len = b.filled;
  d.vci = vci;
  d.flags = static_cast<std::uint16_t>(rx_desc_flags(eop, pdu_tag) | extra_flags);
  d.user = b.user;

  sim::Tick when = std::max(at, ch.push_horizon);
  if (when < eng_->now()) when = eng_->now();
  ch.push_horizon = when;
  const int recv_idx = p.recv_idx;

  // Publish the span handoff the driver closes at delivery, keyed exactly
  // as the driver demultiplexes: (vci, 5-bit descriptor tag). Aborted
  // descriptors are recycled, never delivered — drop their entry instead.
  if (eop && spans_ != nullptr) {
    const auto tag = static_cast<std::uint8_t>(pdu_tag & dpram::kDescTagMask);
    if ((extra_flags & dpram::kDescAborted) != 0) {
      spans_->rx_aborted(vci, tag);
    } else {
      spans_->rx_pushed(vci, tag, p.t_origin, when);
    }
  }

  // Same-tick coalescing (DESIGN.md §8): a reassembly completion pushes a
  // run of buffers with the same completion time, and the engine's batch
  // dispatch hands the whole tick to us in one event. Append to the still
  // open batch instead of re-entering the scheduler per descriptor.
  if (open_batch_ != kNoBatch) {
    PushBatch& ob = push_batches_[open_batch_];
    if (ob.at == when && ob.recv_idx == recv_idx && ob.epoch == epoch_) {
      ob.descs.push_back(d);
      ++pushes_coalesced_;
      return;
    }
  }
  std::uint32_t bi;
  if (free_batch_ != kNoBatch) {
    bi = free_batch_;
    free_batch_ = push_batches_[bi].next_free;
  } else {
    bi = static_cast<std::uint32_t>(push_batches_.size());
    push_batches_.emplace_back();
  }
  PushBatch& nb = push_batches_[bi];
  nb.at = when;
  nb.recv_idx = recv_idx;
  nb.epoch = epoch_;
  nb.descs.clear();
  nb.descs.push_back(d);
  open_batch_ = bi;
  ++push_batches_scheduled_;
  eng_->schedule_at(when, [this, bi] { fire_push_batch(bi); });
}

void RxProcessor::fire_push_batch(std::uint32_t bi) {
  PushBatch& bt = push_batches_[bi];
  // Take the contents and retire the slot up front: the irq sink can run
  // arbitrary driver code that pushes (and batches) more buffers.
  descs_firing_.clear();
  std::swap(descs_firing_, bt.descs);
  const int recv_idx = bt.recv_idx;
  const std::uint64_t ep = bt.epoch;
  if (open_batch_ == bi) open_batch_ = kNoBatch;
  bt.next_free = free_batch_;
  free_batch_ = bi;

  // Each descriptor re-checks epoch/attachment, exactly as the old
  // one-event-per-descriptor path did: the irq sink can run driver code
  // that detaches the channel or resets the adaptor mid-batch.
  for (const dpram::Descriptor& d : descs_firing_) {
    // A completion scheduled before an adaptor reset must not leak a
    // pre-reset buffer descriptor into the fresh receive queue.
    if (ep != epoch_) break;
    RecvChannel& c = recv_channels_[static_cast<std::size_t>(recv_idx)];
    if (c.detached) {
      // The tenant died between DMA and completion: its dpram page may be
      // someone else's now. Account the drop; nothing is delivered.
      ++dead_channel_drops_;
      continue;
    }
    const bool was_empty = c.writer.size() == 0;
    const auto res = c.writer.push(d);
    if (!res.ok) {
      ++pdus_dropped_recvfull_;
      sim::trace_event(trace_, eng_->now(), "rx", "drop_recvfull",
                       static_cast<std::uint64_t>(recv_idx), d.vci);
      continue;
    }
    if (was_empty && irq_) {
      sim::trace_event(trace_, eng_->now(), "rx", "irq_nonempty",
                       static_cast<std::uint64_t>(c.channel_id), d.vci);
      irq_(Irq::kRxNonEmpty, c.channel_id);
    }
  }
}

std::uint64_t RxProcessor::purge_incomplete(sim::Duration max_age) {
  const sim::Tick now = eng_->now();
  const std::uint64_t purged =
      pdus_.erase_if([this, now, max_age](std::uint64_t key, RxPdu& p) {
        if (p.complete || now < p.started || now - p.started <= max_age) {
          return false;
        }
        if (pending_.valid && pending_.key == key) pending_.valid = false;
        abort_pdu_buffers(key, p);
        release_quota(p.vci, p.bufs.size());
        return true;
      });
  return purged;
}

void RxProcessor::start_generator(atm::Vci vci, std::vector<std::uint8_t> pdu,
                                  std::uint64_t count, sim::Duration cell_period) {
  start_generator_multi(vci, {std::move(pdu)}, count, cell_period);
}

void RxProcessor::start_generator_multi(
    atm::Vci vci, const std::vector<std::vector<std::uint8_t>>& pdus,
    std::uint64_t count, sim::Duration cell_period) {
  gen_trains_.clear();
  for (const auto& p : pdus) {
    gen_trains_.push_back(atm::segment({p.data(), p.size()}, vci, 0));
  }
  gen_vci_ = vci;
  gen_remaining_ = count;
  gen_train_idx_ = 0;
  gen_cell_idx_ = 0;
  gen_pdu_id_ = 0;
  gen_period_ = cell_period == 0 ? sim::ns(681.6) : cell_period;
  if (!gen_active_ && count > 0 && !gen_trains_.empty()) {
    gen_active_ = true;
    eng_->schedule(0, [this] { step_generator(); });
  }
}

void RxProcessor::step_generator() {
  if (gen_remaining_ == 0 || stalled_) {
    gen_active_ = false;
    return;
  }
  if (fifo_occupancy() >= cfg_.rx_fifo_depth) {
    // Host can't absorb yet: stall the generator one cell period.
    eng_->schedule(gen_period_, [this] { step_generator(); });
    return;
  }
  atm::Cell c = gen_trains_[gen_train_idx_][gen_cell_idx_];
  c.pdu_id = gen_pdu_id_;
  atm::seal(c);
  accept_cell(static_cast<int>(c.seq % atm::kLanes), c);
  ++cells_received_;
  ++cells_generated_;
  ++gen_cell_idx_;
  if (gen_cell_idx_ == gen_trains_[gen_train_idx_].size()) {
    gen_cell_idx_ = 0;
    ++gen_pdu_id_;
    ++gen_train_idx_;
    if (gen_train_idx_ == gen_trains_.size()) {
      gen_train_idx_ = 0;
      --gen_remaining_;
      if (gen_remaining_ == 0) {
        gen_active_ = false;
        return;
      }
    }
  }
  eng_->schedule(gen_period_, [this] { step_generator(); });
}

}  // namespace osiris::board
