#include "board/tx.h"

#include <algorithm>
#include <stdexcept>

#include "atm/checksum.h"
#include "atm/sar.h"
#include "mem/paging.h"

namespace osiris::board {

namespace {
// On-board cell FIFO between the DMA engine and the cell generator: how
// many cells the DMA may run ahead of the link.
constexpr std::size_t kTxFifoCells = 32;
}  // namespace

// Per-PDU transmission state. The firmware advances one DMA group (one or
// two cells) per step, booking bus time as it goes, so transmit DMA reads
// interleave with receive DMA writes on the shared TURBOchannel exactly as
// hardware bus arbitration would interleave them.
struct TxProcessor::Job {
  std::size_t queue_idx = 0;
  std::uint64_t serial = 0;  // guards stale step events after an abandon
  std::vector<dpram::Descriptor> chain;
  std::vector<std::uint32_t> tails;      // tail value to publish per buffer
  std::vector<sim::Tick> buf_done;       // when each buffer finished DMA
  std::uint32_t pdu_len = 0;
  std::uint32_t wire = 0;
  std::uint32_t ncells = 0;
  atm::Vci vci = 0;
  std::uint16_t pdu_id = 0;
  // Stream cursor.
  std::size_t di = 0;
  std::uint32_t doff = 0;
  std::uint32_t next_seq = 0;
  sim::Tick handover_floor = 0;  // cell-generator handovers are in order
  atm::Crc32 crc;
  std::array<std::uint8_t, atm::kTrailerBytes> trailer{};
  std::uint32_t trailer_off = 0;
  bool trailer_ready = false;
  std::deque<sim::Tick> departures;
  // Lifecycle span stamps (zero when spans are detached or unmatched).
  sim::Tick t_origin = 0;  // driver-enqueue tick, carried into every cell
  sim::Tick t_start = 0;   // firmware descriptor-handling completion
};

TxProcessor::TxProcessor(sim::Engine& eng, const BoardConfig& cfg,
                         tc::TurboChannel& bus, mem::PhysicalMemory& host_mem,
                         dpram::DualPortRam& ram, link::StripedLink& link)
    : eng_(&eng),
      cfg_(cfg),
      bus_(&bus),
      host_mem_(&host_mem),
      ram_(&ram),
      link_(&link),
      i960_(eng, "tx.i960") {}

TxProcessor::~TxProcessor() = default;

void TxProcessor::add_queue(int channel, const dpram::QueueLayout& lay,
                            int priority, PageAuth auth,
                            std::vector<atm::Vci> owned_vcis) {
  queues_.push_back(TxQueue{channel,
                            dpram::QueueReader(*ram_, lay, dpram::Side::kBoard),
                            priority, std::move(auth), std::move(owned_vcis),
                            0, false, 0});
}

void TxProcessor::set_queue_weight(int channel, std::uint32_t weight) {
  const std::uint32_t w = std::max<std::uint32_t>(1, weight);
  for (TxQueue& q : queues_) {
    if (q.channel == channel && !q.detached) q.weight = w;
  }
}

void TxProcessor::set_rate_limit(int channel, double bytes_per_sec,
                                 std::uint64_t burst_bytes) {
  if (bytes_per_sec <= 0.0) {
    limits_.erase(channel);
  } else {
    RateLimit rl;
    rl.bytes_per_sec = bytes_per_sec;
    rl.burst = static_cast<double>(std::max<std::uint64_t>(1, burst_bytes));
    rl.tokens = rl.burst;  // the bucket starts full
    rl.last = eng_->now();
    limits_[channel] = rl;
  }
  // A loosened (or lifted) limit may make a deferred queue eligible now.
  kick();
}

void TxProcessor::remove_queue(int channel) {
  // Scheduler state is per channel: a reused pair index must not inherit
  // the dead tenant's byte credit or (worse) its rate limit.
  limits_.erase(channel);
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    TxQueue& q = queues_[i];
    if (q.channel != channel || q.detached) continue;
    q.detached = true;
    q.deficit = 0;
    q.weight = 1;
    if (job_ != nullptr && job_->queue_idx == i) {
      // Abandon the in-progress PDU mid-transfer: its remaining cells are
      // never generated and its tail publishes are discarded (the dead
      // tenant's completion signals must not touch a recycled dpram page).
      job_.reset();
      const std::uint64_t ep = epoch_;
      eng_->schedule(0, [this, ep] {
        if (ep == epoch_) service();
      });
    }
    sim::trace_event(trace_, eng_->now(), "tx", "queue_detach",
                     static_cast<std::uint64_t>(channel), i);
  }
}

bool TxProcessor::queue_attached(int channel) const {
  for (const TxQueue& q : queues_) {
    if (q.channel == channel && !q.detached) return true;
  }
  return false;
}

std::uint64_t TxProcessor::channel_bytes(int channel) const {
  std::uint64_t n = 0;
  for (const TxQueue& q : queues_) {
    if (q.channel == channel) n += q.bytes_consumed;
  }
  return n;
}

void TxProcessor::stall() {
  if (stalled_) return;
  stalled_ = true;
  ++stalls_;
  sim::trace_event(trace_, eng_->now(), "tx", "stall", epoch_, 0);
}

void TxProcessor::reset() {
  ++epoch_;
  stalled_ = false;
  active_ = false;
  job_.reset();
  rate_defer_tick_ = 0;
  // reset_all, not reset: trusting a stale head word would replay whatever
  // descriptors a channel driver had queued before the reset (duplicated
  // PDUs on the wire). Channel drivers resynchronize their cached cursors
  // through their own generation check (OsirisDriver::maybe_resync).
  for (TxQueue& q : queues_) {
    q.reader.reset_all();
    q.deficit = 0;
  }
  sim::trace_event(trace_, eng_->now(), "tx", "reset", epoch_, 0);
}

void TxProcessor::start_heartbeat(sim::Duration period, sim::Tick until) {
  hb_period_ = period;
  hb_until_ = until;
  if (!hb_running_) {
    hb_running_ = true;
    eng_->schedule(0, [this] { heartbeat_step(); });
  }
}

void TxProcessor::heartbeat_step() {
  if (!hb_running_) return;
  if (eng_->now() >= hb_until_) {
    hb_running_ = false;
    return;
  }
  // Keeps firing while stalled so beating resumes after reset(); only the
  // word (what the host watchdog reads) freezes.
  if (!stalled_) {
    ram_->write(dpram::Side::kBoard, dpram::kTxHeartbeatWord, ++hb_count_);
  }
  eng_->schedule(hb_period_, [this] { heartbeat_step(); });
}

void TxProcessor::kick() {
  if (active_ || stalled_) return;
  active_ = true;
  const std::uint64_t ep = epoch_;
  eng_->schedule(cfg_.poll_latency, [this, ep] {
    if (ep == epoch_) service();
  });
}

void TxProcessor::service() {
  if (stalled_) {
    active_ = false;
    return;
  }
  if (start_pdu()) return;
  active_ = false;
  if (rate_defer_tick_ > 0) {
    // Every eligible PDU was gated by a token bucket: re-arm at the
    // earliest refill so a lone rate-limited queue drains without another
    // host doorbell.
    const std::uint64_t ep = epoch_;
    const sim::Tick at = std::max(rate_defer_tick_, eng_->now());
    eng_->schedule_at(at, [this, ep] {
      if (ep != epoch_ || stalled_ || active_) return;
      active_ = true;
      service();
    });
  }
}

std::uint32_t TxProcessor::head_wire_bytes(TxQueue& q) {
  // A queue is ready when it holds a complete PDU chain (EOP present).
  // Claimed lengths are clamped like the consumption ledger's: a forged
  // 4 GB word must not distort the scheduler's byte credit either.
  std::uint64_t len = 0;
  for (std::uint32_t k = 0;; ++k) {
    const auto d = q.reader.peek_at(k);
    if (!d) return 0;
    len += std::min(d->len, kMaxAdcDescriptorBytes);
    if ((d->flags & dpram::kDescEop) != 0) break;
  }
  return atm::wire_len(static_cast<std::uint32_t>(
      std::min<std::uint64_t>(len, 0xFFFFFFFFull)));
}

bool TxProcessor::tokens_available(int channel, std::uint32_t wire,
                                   sim::Tick* refill_at) {
  const auto it = limits_.find(channel);
  if (it == limits_.end()) return true;
  RateLimit& rl = it->second;
  const sim::Tick now = eng_->now();
  if (now > rl.last) {
    // Ticks are picoseconds: bytes earned = rate * elapsed / 1e12.
    rl.tokens = std::min(
        rl.burst,
        rl.tokens + rl.bytes_per_sec * (static_cast<double>(now - rl.last) *
                                        1e-12));
    rl.last = now;
  }
  // A PDU larger than the burst could never gather full credit; serving it
  // at a full bucket (tokens go negative) preserves the long-run rate
  // without wedging the queue.
  const double target = std::min(static_cast<double>(wire), rl.burst);
  if (rl.tokens >= target) return true;
  const double secs = (target - rl.tokens) / rl.bytes_per_sec;
  *refill_at = now + static_cast<sim::Tick>(secs * 1e12) + 1;
  return false;
}

int TxProcessor::pick_queue() {
  rate_defer_tick_ = 0;
  if (queues_.empty()) return -1;

  // Pass 1: readiness, head PDU sizes, rate eligibility, and the top
  // priority class among eligible queues. Strict priority between classes
  // is preserved; DRR shares the link only within a class.
  scratch_wire_.assign(queues_.size(), 0);
  int top = 0;
  bool have_top = false;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    TxQueue& q = queues_[i];
    if (q.detached) {
      q.deficit = 0;
      continue;
    }
    const std::uint32_t wire = head_wire_bytes(q);
    if (wire == 0) {
      q.deficit = 0;  // classic DRR: an idle queue forfeits its credit
      continue;
    }
    if (fault::fires(faults_, fault::Point::kTxQueueWedge)) {
      ++wedge_skips_;
      sim::trace_event(trace_, eng_->now(), "tx", "queue_wedge",
                       static_cast<std::uint64_t>(q.channel), i);
      continue;
    }
    sim::Tick refill = 0;
    if (!tokens_available(q.channel, wire, &refill)) {
      ++rate_deferrals_;
      if (rate_defer_tick_ == 0 || refill < rate_defer_tick_) {
        rate_defer_tick_ = refill;
      }
      continue;  // work-conserving: a dry bucket never blocks neighbours
    }
    scratch_wire_[i] = wire;
    if (!have_top || q.priority > top) {
      top = q.priority;
      have_top = true;
    }
  }
  if (!have_top) return -1;

  // Pass 2: closed-form DRR over the top class. Deficits grow by
  // weight * quantum per round, so the queue needing the fewest whole
  // rounds to cover its head PDU is the one DRR would reach first; ties
  // fall to rotation order from rr_next_.
  const std::uint64_t quantum =
      std::max<std::uint32_t>(1, cfg_.drr_quantum_bytes);
  std::uint64_t best_rounds = 0;
  std::size_t best = 0;
  bool found = false;
  for (std::size_t off = 0; off < queues_.size(); ++off) {
    const std::size_t i = (rr_next_ + off) % queues_.size();
    const TxQueue& q = queues_[i];
    if (scratch_wire_[i] == 0 || q.priority != top) continue;
    const std::uint64_t earn = quantum * q.weight;
    const std::uint64_t lack =
        scratch_wire_[i] > q.deficit ? scratch_wire_[i] - q.deficit : 0;
    const std::uint64_t rounds = (lack + earn - 1) / earn;
    if (!found || rounds < best_rounds) {
      found = true;
      best_rounds = rounds;
      best = i;
    }
  }

  // Advance every contender's deficit by the rounds that elapsed, then
  // serve the winner and charge its token bucket (eligibility above
  // guaranteed the credit; an over-burst PDU legitimately goes negative).
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (scratch_wire_[i] == 0 || queues_[i].priority != top) continue;
    queues_[i].deficit += best_rounds * quantum * queues_[i].weight;
  }
  TxQueue& w = queues_[best];
  w.deficit -= std::min<std::uint64_t>(w.deficit, scratch_wire_[best]);
  const auto lit = limits_.find(w.channel);
  if (lit != limits_.end()) {
    lit->second.tokens -= static_cast<double>(scratch_wire_[best]);
  }
  rr_next_ = best + 1;
  return static_cast<int>(best);
}

void TxProcessor::check_half_empty(TxQueue& q, sim::Tick /*at*/) {
  const auto& lay = q.reader.layout();
  const std::uint32_t ctrl = ram_->read(dpram::Side::kBoard, lay.ctrl_word());
  if ((ctrl & dpram::kCtrlWantHalfEmptyIrq) == 0) return;
  const std::uint32_t head = ram_->read(dpram::Side::kBoard, lay.head_word());
  const std::uint32_t tail = ram_->read(dpram::Side::kBoard, lay.tail_word());
  const std::uint32_t used = (head + lay.capacity - tail) % lay.capacity;
  if (used <= lay.capacity / 2) {
    ram_->write(dpram::Side::kBoard, lay.ctrl_word(),
                ctrl & ~dpram::kCtrlWantHalfEmptyIrq);
    if (irq_) irq_(Irq::kTxHalfEmpty, q.channel);
  }
}

void TxProcessor::reject_chain(TxQueue& q, std::size_t chain_len,
                               Violation why, std::uint64_t detail,
                               sim::Tick fw_t) {
  const std::uint32_t tail = q.reader.consume(static_cast<std::uint32_t>(chain_len));
  q.reader.publish(tail);
  ++auth_violations_;
  ++violation_counts_[static_cast<std::size_t>(why)];
  sim::trace_event(trace_, eng_->now(), "tx", violation_name(why),
                   static_cast<std::uint64_t>(q.channel), detail);
  if (irq_) irq_(Irq::kAccessViolation, q.channel);
  if (violation_sink_) violation_sink_(why, q.channel);
  const std::uint64_t ep = epoch_;
  eng_->schedule_at(fw_t, [this, ep] {
    if (ep == epoch_) service();
  });
}

bool TxProcessor::start_pdu() {
  const int qi = pick_queue();
  if (qi < 0) return false;
  TxQueue& q = queues_[static_cast<std::size_t>(qi)];

  auto job = std::make_unique<Job>();
  job->queue_idx = static_cast<std::size_t>(qi);
  for (std::uint32_t k = 0;; ++k) {
    if (fault::fires(faults_, fault::Point::kBoardTxStall)) {
      // Firmware wedges mid-chain, before consuming anything: the queue
      // stays non-empty with a frozen tail, which is the signature the
      // host watchdog looks for.
      stall();
      return false;
    }
    const auto d = q.reader.peek_at(k);
    if (!d) {
      // A glitching dual-port RAM read (kDpramStale) can return a stale
      // head word here, making the queue look shorter than the
      // eligibility scan saw an instant ago. Nothing has been consumed;
      // abandon the pass and re-poll instead of trusting an invariant a
      // flaky RAM read just violated.
      sim::trace_event(trace_, eng_->now(), "tx", "chain_glitch",
                       static_cast<std::uint64_t>(q.channel), k);
      const std::uint64_t ep = epoch_;
      eng_->schedule_at(eng_->now() + cfg_.fw_tx_per_descriptor,
                        [this, ep] {
                          if (ep != epoch_ || stalled_ || active_) return;
                          active_ = true;
                          service();
                        });
      return false;
    }
    job->chain.push_back(*d);
    if ((d->flags & dpram::kDescEop) != 0) break;
  }

  // Firmware time for descriptor handling.
  const sim::Tick fw_t = i960_.reserve(
      cfg_.fw_tx_per_descriptor * static_cast<sim::Duration>(job->chain.size()));

  // Match the driver's enqueue stamp for this channel's oldest posted PDU
  // (FIFO order per channel; rejected chains consume their stamp too).
  if (spans_ != nullptr) {
    job->t_origin = spans_->take_tx_enqueue(q.channel);
    job->t_start = fw_t;
    if (job->t_origin > 0 && fw_t >= job->t_origin) {
      spans_->record(obs::Stage::kEnqueueToDpram, fw_t - job->t_origin);
    }
  }

  // Consumption accounting happens before validation so a flooder's
  // rejected garbage still counts against its budget (claimed lengths
  // clamped — a forged 4 GB word should not distort the ledger).
  for (const auto& d : job->chain) {
    q.bytes_consumed += std::min(d.len, kMaxAdcDescriptorBytes);
  }

  // ADC descriptor validation (§3.2): the firmware polices everything an
  // untrusted application can put in a descriptor before any shared state
  // is touched. A bad buffer aborts the whole PDU and raises a typed
  // access-violation for the OS to turn into an exception.
  if (q.auth) {
    for (const auto& d : job->chain) {
      if (d.len == 0) {
        reject_chain(q, job->chain.size(), Violation::kZeroLength, d.addr, fw_t);
        return true;
      }
      if (d.len > kMaxAdcDescriptorBytes ||
          static_cast<std::uint64_t>(d.addr) + d.len > (1ull << 32)) {
        reject_chain(q, job->chain.size(), Violation::kOversizedLength, d.len,
                     fw_t);
        return true;
      }
      if (!q.owned_vcis.empty() &&
          std::find(q.owned_vcis.begin(), q.owned_vcis.end(), d.vci) ==
              q.owned_vcis.end()) {
        reject_chain(q, job->chain.size(), Violation::kBadVci, d.vci, fw_t);
        return true;
      }
      if (!q.auth(d.addr, d.len)) {
        reject_chain(q, job->chain.size(), Violation::kUnauthorizedPage,
                     d.addr, fw_t);
        return true;
      }
    }
  }

  for (const auto& d : job->chain) job->pdu_len += d.len;
  job->wire = atm::wire_len(job->pdu_len);
  if (cfg_.fixed_length_dma_tx) {
    // Every buffer rounds up to whole cells (padded with leaked adjacent
    // memory); the trailer takes its own final cell.
    job->ncells = 1;
    for (const auto& d : job->chain) {
      job->ncells += (d.len + atm::kCellPayload - 1) / atm::kCellPayload;
    }
  } else {
    job->ncells = atm::cells_for(job->pdu_len);
  }
  if (job->ncells > 0xFFFF) {
    // A corrupted length word can imply millions of cells; the 16-bit
    // cell-sequence space bounds any legitimate PDU. Reject the chain
    // rather than segmenting garbage forever.
    const std::uint32_t tail =
        q.reader.consume(static_cast<std::uint32_t>(job->chain.size()));
    q.reader.publish(tail);
    ++bad_chains_;
    ++violation_counts_[static_cast<std::size_t>(Violation::kBadChain)];
    sim::trace_event(trace_, eng_->now(), "tx", "bad_chain",
                     static_cast<std::uint64_t>(q.channel), job->ncells);
    if (violation_sink_) violation_sink_(Violation::kBadChain, q.channel);
    const std::uint64_t ep = epoch_;
    eng_->schedule_at(fw_t, [this, ep] {
      if (ep == epoch_) service();
    });
    return true;
  }
  job->vci = job->chain[0].vci;
  job->pdu_id = q.next_pdu_id++;
  job->serial = ++next_job_serial_;

  // Consume the chain now (so later peeks see fresh entries); the tail
  // word — the host's completion signal — is published per buffer as its
  // last byte leaves host memory.
  job->tails.resize(job->chain.size());
  for (std::size_t i = 0; i < job->chain.size(); ++i) {
    job->tails[i] = q.reader.consume(1);
  }
  job->buf_done.assign(job->chain.size(), fw_t);

  sim::trace_event(trace_, eng_->now(), "tx", "pdu_start", job->vci,
                   job->ncells);
  job_ = std::move(job);
  const std::uint64_t ep = epoch_;
  const std::uint64_t js = job_->serial;
  if (cfg_.fixed_length_dma_tx) {
    eng_->schedule_at(fw_t, [this, ep, js] {
      if (ep == epoch_ && job_ != nullptr && job_->serial == js) step_job_fixed();
    });
  } else {
    eng_->schedule_at(fw_t, [this, ep, js] {
      if (ep == epoch_ && job_ != nullptr && job_->serial == js) step_job();
    });
  }
  return true;
}

void TxProcessor::step_job() {
  Job& j = *job_;
  const std::uint32_t cells_per_dma = cfg_.double_cell_dma_tx ? 2 : 1;
  const std::uint32_t group = std::min(cells_per_dma, j.ncells - j.next_seq);

  // One firmware decision per DMA transaction group.
  sim::Tick fw_t = i960_.reserve(cfg_.fw_tx_per_dma);
  sim::Tick ready = fw_t;
  if (j.departures.size() >= kTxFifoCells) {
    ready = std::max(ready, j.departures[j.departures.size() - kTxFifoCells]);
  }

  std::vector<atm::Cell>& cells = scratch_cells_;
  cells.clear();
  cells.reserve(group);
  std::vector<std::size_t>& completed = scratch_completed_;  // descriptors finishing in this group
  completed.clear();
  std::uint32_t pending_dma_bytes = 0;
  std::uint64_t pending_end_addr = 0;
  bool have_pending = false;
  const auto flush_dma = [&] {
    if (!have_pending) return;
    ready = bus_->bus().reserve_at(
        ready, bus_->dma_read_cost(pending_dma_bytes) +
                   sim::cycles(cfg_.tx_dma_setup_cycles, bus_->config().clock_hz));
    ++dma_ops_;
    have_pending = false;
    pending_dma_bytes = 0;
  };
  for (std::uint32_t g = 0; g < group; ++g) {
    atm::Cell c = atm::make_cell_header(j.vci, j.pdu_id, j.next_seq + g,
                                        j.ncells, j.wire);
    std::uint32_t filled = 0;
    // User chunks of a cell accumulate into one scatter/gather DMA program,
    // executed in a single dma_gather(): faults still hit per segment
    // exactly as per-chunk reads did, and a failed segment's slice of the
    // cell goes out zero-filled — only the end-to-end checksum can expose
    // the damage. Within a cell user bytes always precede trailer bytes, so
    // the gather covers the payload prefix [0, gathered).
    scratch_segs_.clear();
    std::uint32_t gathered = 0;
    const auto flush_gather = [&] {
      if (scratch_segs_.empty()) return;
      const std::size_t okn =
          host_mem_->dma_gather(scratch_segs_, {c.payload.data(), gathered});
      if (okn < scratch_segs_.size()) {
        const std::uint64_t failed = scratch_segs_.size() - okn;
        dma_errors_ += failed;
        sim::trace_event(trace_, eng_->now(), "tx", "dma_error",
                         scratch_segs_.front().addr, failed);
      }
      j.crc.update({c.payload.data(), gathered});
      scratch_segs_.clear();
    };
    while (filled < c.len) {
      if (j.di < j.chain.size() && j.doff == j.chain[j.di].len) {
        ++j.di;
        j.doff = 0;
        continue;
      }
      if (j.di >= j.chain.size()) {
        // User bytes exhausted: emit trailer bytes (generated on board).
        // The gather must land first — the trailer CRC covers it.
        flush_gather();
        if (!j.trailer_ready) {
          j.trailer = atm::encode_trailer({j.pdu_len, j.crc.value()});
          j.trailer_ready = true;
        }
        const std::uint32_t n = std::min<std::uint32_t>(
            c.len - filled, atm::kTrailerBytes - j.trailer_off);
        std::copy_n(j.trailer.begin() + j.trailer_off, n,
                    c.payload.begin() + filled);
        j.trailer_off += n;
        filled += n;
        continue;
      }
      // Chunk bounded by cell space, buffer end, and the page boundary
      // (§2.5.2's DMA-stop modification).
      const std::uint32_t addr = j.chain[j.di].addr + j.doff;
      std::uint32_t n = std::min(c.len - filled, j.chain[j.di].len - j.doff);
      if (cfg_.page_boundary_stop) {
        const std::uint32_t to_page = mem::kPageSize - mem::page_offset(addr);
        if (to_page < n) n = to_page;
      }
      scratch_segs_.push_back(mem::PhysBuffer{addr, n});
      // One DMA transaction per contiguous address run within the group;
      // every break (buffer end, page boundary) costs a fresh transaction
      // (§2.5.2's second-address mechanism).
      if (have_pending && addr == pending_end_addr) {
        pending_dma_bytes += n;
      } else {
        if (have_pending) {
          flush_dma();
          ++dma_splits_;
        }
        pending_dma_bytes = n;
        have_pending = true;
      }
      pending_end_addr = static_cast<std::uint64_t>(addr) + n;
      filled += n;
      gathered += n;
      j.doff += n;
      if (j.doff == j.chain[j.di].len) completed.push_back(j.di);
    }
    flush_gather();
    cells.push_back(c);
  }
  flush_dma();
  for (const std::size_t idx : completed) j.buf_done[idx] = ready;

  // Hand the cells to the link in order: a cell's handover to the cell
  // generator never precedes an earlier cell's handover (but lanes still
  // clock out in parallel).
  const sim::Tick handover = std::max(ready, j.handover_floor);
  j.handover_floor = handover;
  sim::Tick dep = 0;
  for (auto& c : cells) {
    c.t_origin = j.t_origin;
    atm::seal(c);
    dep = link_->submit(handover, c);
    j.departures.push_back(dep);
    ++cells_sent_;
  }
  j.next_seq += group;

  if (j.next_seq < j.ncells) {
    // The firmware prepares the next DMA command while the current one
    // runs, but the controller's command queue is shallow: allow at most
    // ~two transactions of bus time to be booked ahead.
    const sim::Duration lookahead = 2 * bus_->dma_read_cost(group * atm::kCellPayload);
    sim::Tick next = std::max(fw_t, ready > lookahead ? ready - lookahead : 0);
    next = std::max(next, eng_->now());
    const std::uint64_t ep = epoch_;
    const std::uint64_t js = j.serial;
    eng_->schedule_at(next, [this, ep, js] {
      if (ep == epoch_ && job_ != nullptr && job_->serial == js) step_job();
    });
    return;
  }

  finish_job(dep);
}

void TxProcessor::finish_job(sim::Tick last_dep) {
  // PDU finished: publish tails in order at each buffer's completion.
  Job& j = *job_;
  const std::size_t qidx = j.queue_idx;
  sim::Tick prev_pub = eng_->now();
  for (std::size_t i = 0; i < j.chain.size(); ++i) {
    sim::Tick at = std::max(j.buf_done[i], prev_pub);
    if (at < eng_->now()) at = eng_->now();
    prev_pub = at;
    const std::uint32_t tail_val = j.tails[i];
    const std::uint64_t ep = epoch_;
    eng_->schedule_at(at, [this, qidx, tail_val, ep] {
      // A pre-reset publish would clobber the re-initialized tail word; a
      // publish for a since-detached queue would scribble on a dpram page
      // that a reopened channel may have re-registered.
      if (ep != epoch_ || queues_[qidx].detached) return;
      queues_[qidx].reader.publish(tail_val);
      check_half_empty(queues_[qidx], eng_->now());
    });
  }
  ++pdus_sent_;
  if (spans_ != nullptr && j.t_start > 0 && last_dep >= j.t_start) {
    spans_->record(obs::Stage::kSegment, last_dep - j.t_start);
  }
  sim::trace_event(trace_, eng_->now(), "tx", "pdu_done", j.vci, j.pdu_len);
  job_.reset();
  const std::uint64_t ep = epoch_;
  eng_->schedule_at(std::max({last_dep, prev_pub, eng_->now()}),
                    [this, ep] {
                      if (ep == epoch_) service();
                    });
}

void TxProcessor::step_job_fixed() {
  Job& j = *job_;

  sim::Tick fw_t = i960_.reserve(cfg_.fw_tx_per_dma);
  sim::Tick ready = fw_t;
  if (j.departures.size() >= kTxFifoCells) {
    ready = std::max(ready, j.departures[j.departures.size() - kTxFifoCells]);
  }

  atm::Cell c;
  c.vci = j.vci;
  c.pdu_id = j.pdu_id;
  c.seq = static_cast<std::uint16_t>(j.next_seq);
  c.flags = 0;
  if (j.next_seq == 0) c.flags |= atm::kFlagBom;
  if (j.next_seq + atm::kLanes >= j.ncells) c.flags |= atm::kFlagLaneEom;
  if (j.next_seq + 1 == j.ncells) c.flags |= atm::kFlagLastCell;

  if (j.di < j.chain.size()) {
    // One fixed-length transfer from a single address. If the buffer ends
    // mid-cell the transfer keeps going into whatever physical memory
    // follows it — the §2.5.2 security leak.
    const dpram::Descriptor& buf = j.chain[j.di];
    const std::uint32_t addr = buf.addr + j.doff;
    const std::uint32_t have = buf.len - j.doff;
    const std::uint32_t n = std::min<std::uint32_t>(have, atm::kCellPayload);
    c.len = atm::kCellPayload;
    if (!host_mem_->dma_read(addr, {c.payload.data(), n})) {
      std::fill_n(c.payload.begin(), n, std::uint8_t{0});
      ++dma_errors_;
      sim::trace_event(trace_, eng_->now(), "tx", "dma_error", addr, n);
    }
    j.crc.update({c.payload.data(), n});
    if (n < atm::kCellPayload) {
      const std::uint32_t want = atm::kCellPayload - n;
      const std::uint64_t end = static_cast<std::uint64_t>(buf.addr) + buf.len;
      const auto leak = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          want, host_mem_->size() > end ? host_mem_->size() - end : 0));
      if (leak > 0) {
        host_mem_->read(static_cast<std::uint32_t>(end),
                        {c.payload.data() + n, leak});
      }
      std::fill(c.payload.begin() + n + leak, c.payload.end(), 0);
      ++leaked_cells_;
      leaked_bytes_ += want;
    }
    ready = bus_->bus().reserve_at(
        ready, bus_->dma_read_cost(atm::kCellPayload) +
                   sim::cycles(cfg_.tx_dma_setup_cycles, bus_->config().clock_hz));
    ++dma_ops_;
    j.doff += n;
    if (j.doff == buf.len) {
      j.buf_done[j.di] = ready;
      ++j.di;
      j.doff = 0;
    }
  } else {
    // Trailer cell (board-generated, no DMA).
    const auto trailer = atm::encode_trailer({j.pdu_len, j.crc.value()});
    c.len = atm::kTrailerBytes;
    std::copy(trailer.begin(), trailer.end(), c.payload.begin());
  }

  c.t_origin = j.t_origin;
  atm::seal(c);
  const sim::Tick handover = std::max(ready, j.handover_floor);
  j.handover_floor = handover;
  const sim::Tick dep = link_->submit(handover, c);
  j.departures.push_back(dep);
  ++cells_sent_;
  ++j.next_seq;

  if (j.next_seq < j.ncells) {
    const sim::Duration lookahead = 2 * bus_->dma_read_cost(atm::kCellPayload);
    sim::Tick next = std::max(fw_t, ready > lookahead ? ready - lookahead : 0);
    next = std::max(next, eng_->now());
    const std::uint64_t ep = epoch_;
    const std::uint64_t js = j.serial;
    eng_->schedule_at(next, [this, ep, js] {
      if (ep == epoch_ && job_ != nullptr && job_->serial == js) step_job_fixed();
    });
    return;
  }
  finish_job(dep);
}

}  // namespace osiris::board
