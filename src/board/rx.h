// Receive processor firmware.
//
// Cells arrive (from the striped link, or from the on-board fictitious-PDU
// generator used for receive-side isolation experiments, §4). The firmware
// reads VCI/AAL information, routes each cell through the configured
// skew-reassembly strategy (§2.6) to obtain a byte offset within its PDU,
// allocates host receive buffers from the free queue selected by early
// demultiplexing on the VCI (§3.1), and issues DMA writes to place the
// payload directly into host memory. When the on-board FIFO holds the next
// cell and its payload would land contiguously, two payloads are combined
// into a single 88-byte DMA (§2.5.1).
//
// A filled buffer — or the end of a PDU — is pushed onto the receive
// queue; an interrupt is asserted only when the queue transitions from
// empty to non-empty (§2.1.2). A free-queue underflow or a full receive
// queue drops the PDU before it consumes host cycles, which is exactly the
// overload behaviour §3.1 wants for low-priority traffic.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "atm/cell.h"
#include "atm/reassembly.h"
#include "board/board.h"
#include "dpram/dpram.h"
#include "dpram/queue.h"
#include "fault/fault.h"
#include "flow/openmap.h"
#include "flow/table.h"
#include "mem/cache.h"
#include "obs/spans.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "sim/trace.h"
#include "tc/turbochannel.h"

namespace osiris::board {

/// Descriptor flag bits 3..7 carry a small PDU tag so the driver can
/// demultiplex interleaved PDU buffer streams per VCI (only the low 8 flag
/// bits survive the dpram round-trip; see dpram::Descriptor).
constexpr std::uint16_t rx_desc_flags(bool eop, std::uint64_t pdu_key) {
  return static_cast<std::uint16_t>(
      (eop ? dpram::kDescEop : 0) |
      ((pdu_key & dpram::kDescTagMask) << dpram::kDescTagShift));
}

class RxProcessor {
 public:
  RxProcessor(sim::Engine& eng, const BoardConfig& cfg, tc::TurboChannel& bus,
              mem::DataCache& cache, dpram::DualPortRam& ram);

  void set_irq_sink(IrqSink sink) { irq_ = std::move(sink); }

  /// Kernel-side sink for typed free-list violations (see board.h).
  void set_violation_sink(ViolationSink s) { violation_sink_ = std::move(s); }

  /// Attaches an event trace (optional; null disables).
  void set_trace(sim::Trace* t) { trace_ = t; }

  /// Attaches PDU lifecycle spans (optional; null disables). The firmware
  /// records the wire/reassembly/DMA stages and publishes (vci, tag, origin,
  /// push-tick) entries the driver closes at delivery.
  void set_spans(obs::PduSpans* s) { spans_ = s; }

  /// Enables fault injection (not owned). Consults kBoardRxStall once per
  /// arriving cell, kBoardRxCellDrop inside the SAR loop, and
  /// kRxBufferExhausted once per free-queue pop attempt (a firing makes the
  /// pop come back empty, as if the host had fallen behind recycling).
  void set_fault_plane(fault::FaultPlane* f) { faults_ = f; }

  /// Wedges the receive firmware loop: arriving cells are no longer
  /// serviced and the heartbeat word stops advancing, until reset().
  void stall();
  [[nodiscard]] bool stalled() const { return stalled_; }

  /// Adaptor reset (host-initiated, via the driver's watchdog): clears the
  /// wedge, abandons all reassembly and firmware queue state, resets the
  /// board-side queue cursors, and bumps the epoch so completions already
  /// scheduled from before the reset are discarded when they fire.
  void reset();

  /// Starts the firmware heartbeat: the dpram::kRxHeartbeatWord advances
  /// every `period` until the simulation clock passes `until` (bounded so
  /// the event queue always drains). A stalled firmware stops beating;
  /// beating resumes automatically after reset().
  void start_heartbeat(sim::Duration period, sim::Tick until);

  /// Registers a free-buffer queue; returns its id. `auth` guards ADC
  /// buffers (§3.2); violations raise kAccessViolation and skip the buffer.
  int add_free_source(const dpram::QueueLayout& lay, PageAuth auth = nullptr,
                      int channel_id = 0);

  /// Registers a receive queue; returns its index. `channel_id` identifies
  /// it in interrupts.
  int add_recv_channel(const dpram::QueueLayout& lay, int channel_id);

  /// Detaches every free source and receive channel registered for
  /// `channel_id` and discards reassembly state routed at them. Buffer
  /// pushes already scheduled for a detached channel are dropped when they
  /// fire (counted in dead_channel_drops) — a dead tenant's dpram pages
  /// may already belong to a reopened channel. Indices stay stable so
  /// in-flight lambdas remain valid.
  void remove_channel(int channel_id);

  /// True when `channel_id` still has an attached receive channel.
  [[nodiscard]] bool channel_attached(int channel_id) const;

  /// Free-list buffers consumed on behalf of `channel_id` (its receive
  /// traffic's appetite). Feeds the AdcSupervisor's consumption budget.
  [[nodiscard]] std::uint64_t channel_buffers(int channel_id) const;

  /// Quarantines `vci`: arriving cells are dropped and counted instead of
  /// consuming buffers; existing reassembly state for the VCI is
  /// discarded. Unlike unmap_vci the drop is attributed (see
  /// quarantine_drops) so the supervisor can report it.
  void quarantine_vci(atm::Vci vci);

  /// Early demultiplexing table: incoming PDUs on `vci` take buffers from
  /// `free_id` (falling back to `fallback_free_id` when exhausted; pass -1
  /// for none) and are delivered on `recv_idx`.
  void map_vci(atm::Vci vci, int free_id, int fallback_free_id, int recv_idx);
  void unmap_vci(atm::Vci vci);

  /// Per-VCI buffer quota override (0 restores the BoardConfig default):
  /// once `vci` holds `max_buffers` free-list buffers in incomplete
  /// reassemblies, its new PDUs are dropped (pdus_dropped_quota) instead of
  /// draining the shared pool. Overload isolation for a hot or
  /// skew-damaged VCI.
  void set_vci_quota(atm::Vci vci, std::uint32_t max_buffers);

  /// Free-list buffers currently held by `vci`'s in-progress reassemblies.
  [[nodiscard]] std::uint32_t vci_buffers_held(atm::Vci vci) const {
    const VciState* st = flows_.find(vci);
    return st == nullptr ? 0 : st->held;
  }

  /// Link sink: a cell arrived on `lane`.
  void on_cell(int lane, const atm::Cell& c);

  /// Receive-side isolation mode (§4, Figures 2 and 3): the receive
  /// processor synthesizes `count` copies of `pdu` on `vci`, one cell every
  /// `cell_period` (the link cell rate by default), throttled by the
  /// on-board FIFO — i.e. as fast as the host can absorb them.
  void start_generator(atm::Vci vci, std::vector<std::uint8_t> pdu,
                       std::uint64_t count, sim::Duration cell_period);

  /// Multi-PDU variant: each generated "message" is the given sequence of
  /// PDUs (e.g. the IP fragments of one large UDP message), repeated
  /// `count` times.
  void start_generator_multi(atm::Vci vci,
                             const std::vector<std::vector<std::uint8_t>>& pdus,
                             std::uint64_t count, sim::Duration cell_period);
  [[nodiscard]] bool generator_done() const { return !gen_active_; }

  // Statistics.
  [[nodiscard]] std::uint64_t cells_received() const { return cells_received_; }
  /// Cells synthesized locally by the fictitious-PDU generator (a subset of
  /// cells_received; lets conservation audits separate wire arrivals).
  [[nodiscard]] std::uint64_t cells_generated() const { return cells_generated_; }
  [[nodiscard]] std::uint64_t cells_bad_header() const { return cells_bad_header_; }
  [[nodiscard]] std::uint64_t cells_fifo_dropped() const { return cells_fifo_dropped_; }
  [[nodiscard]] std::uint64_t dma_ops() const { return dma_ops_; }
  [[nodiscard]] std::uint64_t combined_dma_ops() const { return combined_dma_ops_; }
  [[nodiscard]] std::uint64_t pdus_completed() const { return pdus_completed_; }
  [[nodiscard]] std::uint64_t pdus_dropped_nobuf() const { return pdus_dropped_nobuf_; }
  [[nodiscard]] std::uint64_t pdus_dropped_recvfull() const { return pdus_dropped_recvfull_; }
  /// PDUs dropped because their VCI hit its buffer quota.
  [[nodiscard]] std::uint64_t pdus_dropped_quota() const { return pdus_dropped_quota_; }
  /// Incomplete reassemblies evicted to feed an arriving PDU
  /// (RxDropPolicy::kDropIncompleteFirst).
  [[nodiscard]] std::uint64_t pdus_evicted() const { return pdus_evicted_; }
  /// kRxFreeLow backpressure interrupts raised (edge-triggered per free
  /// source: one per empty episode, cleared by the next successful pop).
  [[nodiscard]] std::uint64_t backpressure_irqs() const { return backpressure_irqs_; }
  [[nodiscard]] std::uint64_t auth_violations() const { return auth_violations_; }
  /// Free-list rejections / drops by typed reason (see board.h).
  [[nodiscard]] std::uint64_t violations(Violation v) const {
    return violation_counts_[static_cast<std::size_t>(v)];
  }
  /// Cells dropped because their VCI is quarantined.
  [[nodiscard]] std::uint64_t quarantine_drops() const { return quarantine_drops_; }
  /// Buffer pushes discarded because their channel was detached between
  /// scheduling and firing (tenant death mid-completion).
  [[nodiscard]] std::uint64_t dead_channel_drops() const { return dead_channel_drops_; }
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }
  [[nodiscard]] std::uint64_t cells_stalled() const { return cells_stalled_; }
  [[nodiscard]] std::uint64_t cells_sar_dropped() const { return cells_sar_dropped_; }
  [[nodiscard]] std::uint64_t dma_errors() const { return dma_errors_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] sim::Resource& i960() { return i960_; }

  /// Abandons reassembly state for PDUs that started more than `max_age`
  /// ago and never completed (cells lost upstream). Returns the number of
  /// PDUs discarded. Buffers already filled stay with the host (the
  /// driver reclaims its partial accumulations via flush_partials()).
  std::uint64_t purge_incomplete(sim::Duration max_age);

  /// Receive-queue push events scheduled (each may carry several
  /// descriptors; see pushes_coalesced).
  [[nodiscard]] std::uint64_t push_batches() const { return push_batches_scheduled_; }
  /// Descriptors that rode an already-scheduled same-tick push event
  /// instead of re-entering the scheduler (batch-dispatch win).
  [[nodiscard]] std::uint64_t pushes_coalesced() const { return pushes_coalesced_; }

  /// Early-demux flow-table internals, exported to the obs registry:
  /// occupancy, probe lengths, rehash activity (see flow::TableStats).
  [[nodiscard]] const flow::TableStats& flow_stats() const {
    return flows_.stats();
  }
  [[nodiscard]] std::size_t flow_occupancy() const { return flows_.size(); }
  [[nodiscard]] std::size_t flow_capacity() const { return flows_.capacity(); }

  /// Fraction of DMA operations that moved more than one cell payload —
  /// the §2.6 "combining probability" statistic.
  [[nodiscard]] double combine_fraction() const {
    return dma_ops_ == 0 ? 0.0
                         : static_cast<double>(combined_dma_ops_) /
                               static_cast<double>(dma_ops_);
  }

 private:
  struct FreeSource {
    dpram::QueueReader reader;
    PageAuth auth;
    int channel_id;
    bool detached = false;
    std::uint64_t buffers_consumed = 0;
    bool low_raised = false;  // kRxFreeLow edge state for this source
  };
  struct RecvChannel {
    dpram::QueueWriter writer;
    int channel_id;
    sim::Tick push_horizon = 0;
    bool detached = false;
  };
  /// Everything the Rx hot path touches per VCI, consolidated into one
  /// flow-table entry: demux ids, quarantine bit, quota override, live
  /// held count, and the reassembly router. One bucket probe + one slab
  /// read replaces the five separate map lookups this used to take.
  struct VciState {
    static constexpr std::uint32_t kMapped = 1u << 0;
    static constexpr std::uint32_t kQuarantined = 1u << 1;

    std::int32_t free_id = -1;
    std::int32_t fallback = -1;
    std::int32_t recv_idx = -1;
    std::uint32_t flags = 0;
    std::uint32_t quota = 0;  // 0 = BoardConfig default
    std::uint32_t held = 0;   // free-list buffers held by reassemblies
    std::unique_ptr<atm::CellRouter> router;  // created on first cell

    [[nodiscard]] bool mapped() const { return (flags & kMapped) != 0; }
    [[nodiscard]] bool quarantined() const {
      return (flags & kQuarantined) != 0;
    }
  };
  static_assert(sizeof(VciState) <= 64,
                "per-VCI hot state must stay within one cache line");
  struct PduBuf {
    std::uint32_t addr = 0;
    std::uint32_t cap = 0;
    std::uint32_t filled = 0;
    std::uint32_t user = 0;
    bool pushed = false;
  };
  struct RxPdu {
    int recv_idx = 0;
    int free_id = 0;
    int fallback = -1;
    atm::Vci vci = 0;  // quota accounting
    sim::Tick started = 0;
    std::vector<PduBuf> bufs;
    std::uint64_t alloc_cap = 0;  // sum of buffer capacities
    bool complete = false;
    bool dropped = false;
    std::uint32_t wire_len = 0;
    std::uint32_t next_push = 0;
    sim::Tick last_dma = 0;
    sim::Tick t_origin = 0;  // sender driver-enqueue stamp (0 = unstamped)
  };
  struct PendingDma {
    bool valid = false;
    std::uint64_t key = 0;  // (vci, pdu) key
    std::uint32_t offset = 0;
    std::vector<std::uint8_t> bytes;
    sim::Tick t_origin = 0;  // origin stamp of the cell that opened this DMA
  };
  /// A scheduled receive-queue push carrying every same-tick descriptor
  /// for one channel (same-tick batch dispatch; see push_buffer()).
  /// Pooled: slots are recycled through free_batch_ and keep their
  /// descriptor vectors' capacity.
  struct PushBatch {
    sim::Tick at = 0;
    int recv_idx = 0;
    std::uint64_t epoch = 0;
    std::vector<dpram::Descriptor> descs;
    std::uint32_t next_free = kNoBatch;
  };

  static std::uint64_t pdu_map_key(atm::Vci vci, std::uint64_t pdu) {
    return atm::VciKey::pack(vci, pdu);
  }

  void accept_cell(int lane, const atm::Cell& c);
  /// Entry for `vci`, or null when none exists (never inserts).
  VciState* state_for(atm::Vci vci) { return flows_.find(vci); }
  /// Entry for `vci`, inserting a blank one when absent. NOT for the
  /// per-cell path: an insert may grow the slab and move entries, so no
  /// VciState pointer obtained earlier may be used afterwards (routers
  /// are heap-owned and stay put).
  VciState& state_insert(atm::Vci vci);
  /// Erases `vci`'s entry once nothing references it anymore.
  void maybe_release(atm::Vci vci, VciState& st);
  atm::CellRouter& router_for(VciState& st);
  RxPdu* pdu_for(atm::Vci vci, std::uint64_t pdu, std::uint64_t* key_out);
  /// Ensures buffers cover byte range end `need`; pops from free queues.
  /// On failure sets alloc_fail_quota_ when the VCI's quota (not the pool)
  /// was the limit, so the caller counts the right drop statistic.
  bool ensure_capacity(RxPdu& p, std::uint64_t need);
  /// Effective buffer quota for `vci` (override, else config default).
  [[nodiscard]] std::uint32_t quota_for(atm::Vci vci) const;
  /// Drops `held` buffers from `vci`'s quota count.
  void release_quota(atm::Vci vci, std::size_t held);
  /// kDropIncompleteFirst: evicts the oldest incomplete reassembly sharing
  /// `keep`'s free source whose buffers are all still board-held, moving
  /// those buffers to `keep`. Returns true when something was evicted.
  bool evict_incomplete(RxPdu& keep);
  /// Pushes `p`'s still-held buffers host-ward as aborted descriptors so
  /// the driver recycles them (buffer reclaim for drops and quarantine).
  void abort_pdu_buffers(std::uint64_t key, RxPdu& p);
  void handle_placement(atm::Vci vci, const atm::Placement& pl);
  void handle_completion(atm::Vci vci, const atm::Completion& c);
  void flush_pending();
  void schedule_flush_timer();
  /// DMA-writes `bytes` at PDU offset `offset`; updates fill counts.
  void issue_dma(RxPdu& p, std::uint32_t offset,
                 const std::vector<std::uint8_t>& bytes);
  void try_push(std::uint64_t key, RxPdu& p);
  void push_buffer(RxPdu& p, std::uint32_t idx, bool eop, std::uint64_t pdu_tag,
                   atm::Vci vci, sim::Tick at,
                   std::uint16_t extra_flags = 0);
  void fire_push_batch(std::uint32_t bi);
  void step_generator();
  void heartbeat_step();
  std::size_t fifo_occupancy();

  sim::Engine* eng_;
  BoardConfig cfg_;
  tc::TurboChannel* bus_;
  mem::DataCache* cache_;
  dpram::DualPortRam* ram_;
  sim::Resource i960_;
  IrqSink irq_;
  ViolationSink violation_sink_;
  std::array<std::uint64_t, static_cast<std::size_t>(Violation::kCount)>
      violation_counts_{};
  sim::Trace* trace_ = nullptr;
  obs::PduSpans* spans_ = nullptr;
  fault::FaultPlane* faults_ = nullptr;

  bool stalled_ = false;
  std::uint64_t epoch_ = 0;

  // Heartbeat state (see start_heartbeat()).
  bool hb_running_ = false;
  sim::Duration hb_period_ = 0;
  sim::Tick hb_until_ = 0;
  std::uint32_t hb_count_ = 0;

  std::vector<FreeSource> free_sources_;
  std::vector<RecvChannel> recv_channels_;
  /// The early-demultiplexing flow table (replaces the five per-VCI maps).
  flow::FlowTable<VciState> flows_;
  bool alloc_fail_quota_ = false;  // last ensure_capacity failure cause
  /// In-flight reassemblies keyed VciKey::pack(vci, router-local pdu key).
  flow::OpenMap<RxPdu> pdus_;
  PendingDma pending_;
  static constexpr std::uint32_t kNoBatch = ~std::uint32_t{0};
  std::vector<PushBatch> push_batches_;
  std::uint32_t free_batch_ = kNoBatch;
  std::uint32_t open_batch_ = kNoBatch;
  std::vector<dpram::Descriptor> descs_firing_;  // scratch for fire_push_batch
  sim::TimerHandle flush_timer_;  // combine-window timeout for pending_
  std::vector<mem::PhysBuffer> scratch_segs_;  // per-DMA scatter program
  std::deque<sim::Tick> inflight_;  // decision completion times (FIFO model)
  sim::Tick fw_horizon_ = 0;

  // Generator state.
  std::vector<std::vector<atm::Cell>> gen_trains_;  // one per fragment PDU
  atm::Vci gen_vci_ = 0;
  std::uint64_t gen_remaining_ = 0;  // messages left
  std::size_t gen_train_idx_ = 0;
  std::size_t gen_cell_idx_ = 0;
  std::uint16_t gen_pdu_id_ = 0;
  sim::Duration gen_period_ = 0;
  bool gen_active_ = false;

  std::uint64_t cells_received_ = 0;
  std::uint64_t cells_generated_ = 0;
  std::uint64_t cells_bad_header_ = 0;
  std::uint64_t cells_fifo_dropped_ = 0;
  std::uint64_t dma_ops_ = 0;
  std::uint64_t combined_dma_ops_ = 0;
  std::uint64_t pdus_completed_ = 0;
  std::uint64_t pdus_dropped_nobuf_ = 0;
  std::uint64_t pdus_dropped_recvfull_ = 0;
  std::uint64_t pdus_dropped_quota_ = 0;
  std::uint64_t pdus_evicted_ = 0;
  std::uint64_t backpressure_irqs_ = 0;
  std::uint64_t auth_violations_ = 0;
  std::uint64_t quarantine_drops_ = 0;
  std::uint64_t dead_channel_drops_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t cells_stalled_ = 0;
  std::uint64_t cells_sar_dropped_ = 0;
  std::uint64_t dma_errors_ = 0;
  std::uint64_t push_batches_scheduled_ = 0;
  std::uint64_t pushes_coalesced_ = 0;
};

}  // namespace osiris::board
