// OSIRIS board: shared firmware configuration and interrupt definitions.
//
// The board has two mostly independent halves — send and receive — each
// controlled by an Intel 80960 (paper §1). Software on those processors
// defines the host interface; this module is that software, driven by the
// event engine. Each half owns a sim::Resource modelling its i960, so
// firmware decision time pipelines against DMA and link time exactly as
// the paper describes (e.g. reassembly sustains ~OC-12 in the common
// case, §5).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/time.h"

namespace osiris::board {

/// Receive-side overload discipline: what the firmware does when a PDU
/// needs a buffer and its free queue (plus fallback) is dry.
enum class RxDropPolicy {
  kTailDrop,            // drop the arriving PDU (the classic §3.1 behaviour)
  kDropIncompleteFirst, // evict the oldest incomplete reassembly instead,
                        // reusing its buffers for the arriving PDU
};

struct BoardConfig {
  double i960_hz = 25e6;

  // Firmware instruction budgets, as time per decision. The paper's §5
  // observes reassembly ran at "approximately OC-12 speeds" in software: a
  // 622 Mbps link delivers a cell every ~0.68 us, so per-cell firmware
  // cost must sit just below that.
  sim::Duration fw_tx_per_dma = sim::us(0.50);   // segmentation + DMA cmd
  sim::Duration fw_tx_per_descriptor = sim::us(1.5);
  sim::Duration fw_rx_per_dma = sim::us(0.60);   // reassembly + DMA cmd
  sim::Duration fw_rx_per_pdu = sim::us(2.0);    // completion bookkeeping
  sim::Duration poll_latency = sim::us(2.0);     // doorbell-to-service

  // Extra TURBOchannel cycles per transmit DMA for command/descriptor
  // fetch by the i960. This is why sustained transmit tops out near the
  // paper's 325 Mbps rather than the 367 Mbps pure-DMA bound (§4, Fig 4).
  std::uint32_t tx_dma_setup_cycles = 2;

  // DMA length (§2.5.1): single (44 B) or double (88 B) cell payloads per
  // transaction. The paper's receive-side double-cell change was done; the
  // transmit-side change was "underway" — both are available here.
  bool double_cell_dma_tx = false;
  bool double_cell_dma_rx = true;

  // §2.5.2: the DMA controller stops at page boundaries and accepts a
  // second address to fill the rest of the cell.
  bool page_boundary_stop = true;

  // The ORIGINAL controller design §2.5.2 argues against: every transmit
  // transfer moves exactly one full cell payload from a single address.
  // A buffer that ends mid-cell keeps transferring — leaking whatever
  // physical memory follows the buffer onto the wire (the paper's NFS
  // page example / security risk), and putting partially-meaningful cells
  // in the middle of multi-buffer PDUs (breaking interoperability).
  bool fixed_length_dma_tx = false;

  // Receive reassembly strategy for striping skew (§2.6): "seq" or "quad".
  std::string reassembly = "quad";

  // Firmware reassembly timeout: a PDU stuck incomplete longer than this
  // lost cells upstream and will never finish; the heartbeat housekeeping
  // loop abandons it and hands its buffers back to the host as aborted
  // descriptors (else sustained loss pins the whole receive pool). Active
  // only while the heartbeat runs; 0 disables.
  sim::Duration reassembly_timeout = sim::ms(5);

  // On-board receive header FIFO; overflow drops cells (receiver
  // overload). 192 entries of per-cell header state is ~1.5 KB of
  // hardware; the depth also absorbs the coarse-grained bus-arbitration
  // model's worst-case DMA stall behind a host memory phase (see
  // tc::TurboChannel::cpu_memory).
  std::uint32_t rx_fifo_depth = 192;

  // How long the receive firmware holds a DMA hoping to combine the next
  // contiguous cell into a double-length transfer, in units of cell times.
  double combine_wait_cell_times = 2.0;

  // --- Per-VCI QoS and overload management ---------------------------------

  // Deficit-round-robin quantum: bytes of credit a transmit queue earns per
  // scheduler round, scaled by its weight. One quantum close to the typical
  // PDU wire length keeps latency low without starving large-PDU queues.
  std::uint32_t drr_quantum_bytes = 2048;

  // Receive overload discipline (see RxDropPolicy above).
  RxDropPolicy rx_drop_policy = RxDropPolicy::kTailDrop;

  // Default cap on free-list buffers a single VCI may hold in incomplete
  // reassemblies (0 = unlimited). A hot or skew-damaged VCI past its quota
  // has its new PDUs dropped instead of draining the shared pool.
  // RxProcessor::set_vci_quota overrides per VCI.
  std::uint32_t rx_vci_buffer_quota = 0;
};

/// Interrupts the board can assert (fielded by the kernel, §3.2).
enum class Irq {
  kRxNonEmpty,       // a receive queue went empty -> non-empty
  kTxHalfEmpty,      // a previously-full transmit queue drained to half
  kAccessViolation,  // an ADC posted a descriptor the firmware rejected
  kRxFreeLow,        // a free queue ran dry mid-reassembly (backpressure:
                     // the host should recycle/top up instead of letting
                     // the firmware drop PDUs silently)
};

/// Why the firmware rejected an ADC-posted descriptor. Every rejection
/// raises Irq::kAccessViolation toward the offending application; the
/// typed reason additionally reaches the kernel's ViolationSink so the
/// AdcSupervisor can budget and quarantine per channel (§3.2: the board
/// polices descriptors so one application "cannot affect other
/// applications or the kernel").
enum class Violation {
  kUnauthorizedPage,  // addr/len outside the channel's authorized pages
  kZeroLength,        // zero-length buffer (would wedge the SAR cursor)
  kOversizedLength,   // length beyond any buffer the OS would register
  kBadVci,            // PDU posted on a VCI the channel does not own
  kFreeListPoison,    // malformed free-queue entry (addr+len wraps, etc.)
  kBadChain,          // descriptor chain implies an impossible PDU
  kCount,
};

constexpr const char* violation_name(Violation v) {
  switch (v) {
    case Violation::kUnauthorizedPage: return "unauthorized_page";
    case Violation::kZeroLength: return "zero_length";
    case Violation::kOversizedLength: return "oversized_length";
    case Violation::kBadVci: return "bad_vci";
    case Violation::kFreeListPoison: return "free_list_poison";
    case Violation::kBadChain: return "bad_chain";
    case Violation::kCount: break;
  }
  return "?";
}

/// Largest descriptor length the firmware accepts from an ADC. The OS only
/// registers page-granular pools for applications (Adc's channel driver
/// uses page-sized buffers; the kernel's 16 KB buffers are the biggest
/// anywhere), so anything above this is a corrupted or hostile word.
constexpr std::uint32_t kMaxAdcDescriptorBytes = 64 * 1024;

/// Kernel-side sink for typed descriptor violations: (reason, channel).
using ViolationSink = std::function<void(Violation, int)>;

/// Callback into the host interrupt controller: (irq, channel index).
using IrqSink = std::function<void(Irq, int)>;

/// Authorization predicate for ADC channels: may the channel DMA to/from
/// [addr, addr+len)? The kernel channel has no predicate (everything is
/// allowed).
using PageAuth = std::function<bool(std::uint32_t, std::uint32_t)>;

}  // namespace osiris::board
