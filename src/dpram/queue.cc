#include "dpram/queue.h"

namespace osiris::dpram {
namespace {

void write_descriptor(DualPortRam& ram, Side side, const QueueLayout& lay,
                      std::uint32_t slot, const Descriptor& d) {
  const std::uint32_t w = lay.slot_word(slot);
  ram.write(side, w + 0, d.addr);
  ram.write(side, w + 1, d.len);
  ram.write(side, w + 2,
            (static_cast<std::uint32_t>(d.vci) << 16) | d.flags);
  ram.write(side, w + 3, d.user);
}

Descriptor read_descriptor(const DualPortRam& ram, Side side,
                           const QueueLayout& lay, std::uint32_t slot) {
  const std::uint32_t w = lay.slot_word(slot);
  Descriptor d;
  d.addr = ram.read(side, w + 0);
  d.len = ram.read(side, w + 1);
  const std::uint32_t vf = ram.read(side, w + 2);
  d.vci = static_cast<std::uint16_t>(vf >> 16);
  d.flags = static_cast<std::uint16_t>(vf & 0xFFFF);
  d.user = ram.read(side, w + 3);
  return d;
}

}  // namespace

bool QueueWriter::full() const {
  const std::uint32_t tail = ram_->read(side_, lay_.tail_word());
  return (head_ + 1) % lay_.capacity == tail;
}

std::uint32_t QueueWriter::size() const {
  const std::uint32_t tail = ram_->read(side_, lay_.tail_word());
  return (head_ + lay_.capacity - tail) % lay_.capacity;
}

OpResult QueueWriter::push(const Descriptor& d) {
  OpResult r;
  const std::uint32_t tail = ram_->read(side_, lay_.tail_word());
  ++r.ram_accesses;
  if ((head_ + 1) % lay_.capacity == tail) return r;  // full
  write_descriptor(*ram_, side_, lay_, head_, d);
  ram_->maybe_corrupt(side_, lay_.slot_word(head_), kDescriptorWords);
  r.ram_accesses += kDescriptorWords;
  head_ = (head_ + 1) % lay_.capacity;
  ram_->write(side_, lay_.head_word(), head_);
  ++r.ram_accesses;
  r.ok = true;
  return r;
}

void QueueWriter::reset() {
  head_ = 0;
  ram_->write(side_, lay_.head_word(), 0);
  ram_->write(side_, lay_.tail_word(), 0);
  ram_->write(side_, lay_.ctrl_word(), 0);
}

void QueueReader::reset() {
  tail_ = 0;
  ram_->write(side_, lay_.tail_word(), 0);
}

bool QueueReader::empty() const {
  return ram_->read(side_, lay_.head_word()) == tail_;
}

std::uint32_t QueueReader::size() const {
  const std::uint32_t head = ram_->read(side_, lay_.head_word());
  return (head + lay_.capacity - tail_) % lay_.capacity;
}

std::optional<Descriptor> QueueReader::peek_at(std::uint32_t k, OpResult* res) const {
  OpResult r;
  const std::uint32_t head = ram_->read(side_, lay_.head_word());
  ++r.ram_accesses;
  const std::uint32_t avail = (head + lay_.capacity - tail_) % lay_.capacity;
  if (k >= avail) {
    if (res != nullptr) *res = r;
    return std::nullopt;
  }
  const Descriptor d =
      read_descriptor(*ram_, side_, lay_, (tail_ + k) % lay_.capacity);
  r.ram_accesses += kDescriptorWords;
  r.ok = true;
  if (res != nullptr) *res = r;
  return d;
}

void QueueReader::advance() {
  tail_ = (tail_ + 1) % lay_.capacity;
  ram_->write(side_, lay_.tail_word(), tail_);
}

std::uint32_t QueueReader::consume(std::uint32_t n) {
  tail_ = (tail_ + n) % lay_.capacity;
  return tail_;
}

void QueueReader::publish(std::uint32_t tail_value) {
  ram_->write(side_, lay_.tail_word(), tail_value);
}

std::optional<Descriptor> QueueReader::pop(OpResult* res) {
  OpResult r;
  const std::uint32_t head = ram_->read(side_, lay_.head_word());
  ++r.ram_accesses;
  if (head == tail_) {
    if (res != nullptr) *res = r;
    return std::nullopt;
  }
  Descriptor d = read_descriptor(*ram_, side_, lay_, tail_);
  r.ram_accesses += kDescriptorWords;
  tail_ = (tail_ + 1) % lay_.capacity;
  ram_->write(side_, lay_.tail_word(), tail_);
  ++r.ram_accesses;
  r.ok = true;
  if (res != nullptr) *res = r;
  return d;
}

}  // namespace osiris::dpram
