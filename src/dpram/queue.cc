#include "dpram/queue.h"

namespace osiris::dpram {
namespace {

void write_descriptor(DualPortRam& ram, Side side, const QueueLayout& lay,
                      std::uint32_t slot, const Descriptor& d) {
  const std::uint32_t w = lay.slot_word(slot);
  ram.write(side, w + 0, d.addr);
  ram.write(side, w + 1, d.len);
  // 24-bit VCI in the low bits, 8 flag bits above (see Descriptor docs).
  ram.write(side, w + 2,
            (d.vci & atm::kMaxVci) |
                (static_cast<std::uint32_t>(d.flags & 0xFF) << 24));
  ram.write(side, w + 3, d.user);
}

Descriptor read_descriptor(const DualPortRam& ram, Side side,
                           const QueueLayout& lay, std::uint32_t slot) {
  const std::uint32_t w = lay.slot_word(slot);
  Descriptor d;
  d.addr = ram.read(side, w + 0);
  d.len = ram.read(side, w + 1);
  const std::uint32_t vf = ram.read(side, w + 2);
  d.vci = vf & atm::kMaxVci;
  d.flags = static_cast<std::uint16_t>(vf >> 24);
  d.user = ram.read(side, w + 3);
  return d;
}

}  // namespace

bool QueueWriter::full() const {
  const std::uint32_t tail = ram_->read(side_, lay_.tail_word());
  return (head_ + 1) % lay_.capacity == tail;
}

std::uint32_t QueueWriter::size() const {
  const std::uint32_t tail = ram_->read(side_, lay_.tail_word());
  return (head_ + lay_.capacity - tail) % lay_.capacity;
}

OpResult QueueWriter::push(const Descriptor& d) {
  OpResult r;
  const std::uint32_t tail = ram_->read(side_, lay_.tail_word());
  ++r.ram_accesses;
  if ((head_ + 1) % lay_.capacity == tail) return r;  // full
  Descriptor sealed = d;
  sealed.flags = static_cast<std::uint16_t>(
      (sealed.flags & ~kDescLapSeal) | (lap_odd_ ? 0u : kDescLapSeal));
  write_descriptor(*ram_, side_, lay_, head_, sealed);
  ram_->maybe_corrupt(side_, lay_.slot_word(head_), kDescriptorWords);
  r.ram_accesses += kDescriptorWords;
  head_ = (head_ + 1) % lay_.capacity;
  if (head_ == 0) lap_odd_ = !lap_odd_;
  ram_->write(side_, lay_.head_word(), head_);
  ++r.ram_accesses;
  r.ok = true;
  return r;
}

namespace {

// Reset-time scrub: every word is written TWICE so that a subsequent
// glitched (kDpramStale) read — which returns the value before the most
// recent write — still sees zero, and cannot resurrect pre-reset cursors
// or lap seals.
void scrub_queue(DualPortRam& ram, Side side, const QueueLayout& lay) {
  for (int pass = 0; pass < 2; ++pass) {
    ram.write(side, lay.head_word(), 0);
    ram.write(side, lay.tail_word(), 0);
    ram.write(side, lay.ctrl_word(), 0);
    for (std::uint32_t s = 0; s < lay.capacity; ++s) {
      ram.write(side, lay.slot_word(s) + 2, 0);  // vci/flags word: lap seal
    }
  }
}

}  // namespace

void QueueWriter::reset() {
  head_ = 0;
  lap_odd_ = false;
  scrub_queue(*ram_, side_, lay_);
}

void QueueReader::reset() {
  tail_ = 0;
  lap_odd_ = false;
  ram_->write(side_, lay_.tail_word(), 0);
  ram_->write(side_, lay_.tail_word(), 0);
}

void QueueReader::reset_all() {
  tail_ = 0;
  lap_odd_ = false;
  scrub_queue(*ram_, side_, lay_);
}

bool QueueReader::empty() const {
  return ram_->read(side_, lay_.head_word()) == tail_;
}

std::uint32_t QueueReader::size() const {
  const std::uint32_t head = ram_->read(side_, lay_.head_word());
  return (head + lay_.capacity - tail_) % lay_.capacity;
}

std::optional<Descriptor> QueueReader::peek_at(std::uint32_t k, OpResult* res) const {
  OpResult r;
  const std::uint32_t head = ram_->read(side_, lay_.head_word());
  ++r.ram_accesses;
  const std::uint32_t avail = (head + lay_.capacity - tail_) % lay_.capacity;
  if (k >= avail) {
    if (res != nullptr) *res = r;
    return std::nullopt;
  }
  Descriptor d =
      read_descriptor(*ram_, side_, lay_, (tail_ + k) % lay_.capacity);
  r.ram_accesses += kDescriptorWords;
  // The head word is advisory: a glitched (stale) read near wrap-around
  // can claim entries the writer never published. Only the lap seal
  // stamped into the descriptor itself proves ownership.
  if (((d.flags & kDescLapSeal) != 0) != seal_expected(k)) {
    if (res != nullptr) *res = r;
    return std::nullopt;
  }
  d.flags = static_cast<std::uint16_t>(d.flags & ~kDescLapSeal);
  r.ok = true;
  if (res != nullptr) *res = r;
  return d;
}

void QueueReader::advance() {
  tail_ = (tail_ + 1) % lay_.capacity;
  if (tail_ == 0) lap_odd_ = !lap_odd_;
  ram_->write(side_, lay_.tail_word(), tail_);
}

std::uint32_t QueueReader::consume(std::uint32_t n) {
  if (tail_ + n >= lay_.capacity) lap_odd_ = !lap_odd_;
  tail_ = (tail_ + n) % lay_.capacity;
  return tail_;
}

void QueueReader::publish(std::uint32_t tail_value) {
  ram_->write(side_, lay_.tail_word(), tail_value);
}

std::optional<Descriptor> QueueReader::pop(OpResult* res) {
  OpResult r;
  const std::uint32_t head = ram_->read(side_, lay_.head_word());
  ++r.ram_accesses;
  if (head == tail_) {
    if (res != nullptr) *res = r;
    return std::nullopt;
  }
  Descriptor d = read_descriptor(*ram_, side_, lay_, tail_);
  r.ram_accesses += kDescriptorWords;
  if (((d.flags & kDescLapSeal) != 0) != seal_expected(0)) {
    // Stale head word claimed an entry the writer never published; do not
    // consume — the slot still belongs to the writer.
    if (res != nullptr) *res = r;
    return std::nullopt;
  }
  d.flags = static_cast<std::uint16_t>(d.flags & ~kDescLapSeal);
  tail_ = (tail_ + 1) % lay_.capacity;
  if (tail_ == 0) lap_odd_ = !lap_odd_;
  ram_->write(side_, lay_.tail_word(), tail_);
  ++r.ram_accesses;
  r.ok = true;
  if (res != nullptr) *res = r;
  return d;
}

}  // namespace osiris::dpram
