// Lock-free one-reader-one-writer descriptor queues (paper §2.1.1).
//
// The queue is an array of buffer descriptors plus a head and a tail
// pointer in the dual-port RAM. The head is only modified by the writer,
// the tail only by the reader; status is determined by comparing them:
//
//     head == tail                  -> empty
//     (head + 1) mod size == tail   -> full
//
// Only 32-bit load/store atomicity is assumed, so no locks are needed and
// host/board never contend. Each operation's dual-port-RAM access count is
// reported so callers can charge TURBOchannel PIO costs (host side) or
// on-board cycles (board side).
//
// A test-and-set spin-lock queue with the same interface is provided as
// the baseline design the paper argues against (see lockq.h).
#pragma once

#include <optional>

#include "dpram/dpram.h"

namespace osiris::dpram {

/// Result of a queue operation: whether it succeeded and how many 32-bit
/// dual-port-RAM accesses it performed.
struct OpResult {
  bool ok = false;
  std::uint32_t ram_accesses = 0;
};

class QueueWriter {
 public:
  QueueWriter(DualPortRam& ram, QueueLayout lay, Side side)
      : ram_(&ram), lay_(lay), side_(side) {}

  /// True if the queue has no room for another descriptor. Costs one RAM
  /// access (reads the tail; the head is cached writer-side, as the writer
  /// is its only modifier).
  [[nodiscard]] bool full() const;

  /// Pushes a descriptor. Fails (without writing) when full.
  OpResult push(const Descriptor& d);

  /// Entries currently in the queue (costs one RAM access).
  [[nodiscard]] std::uint32_t size() const;

  /// Adaptor reset: zeroes the cached head and the RAM head/tail/ctrl
  /// words, and scrubs every slot's lap seal (each word written twice, so
  /// even a stale read cannot resurrect pre-reset queue state). Both
  /// endpoints of a queue must be reset together — a cached cursor
  /// surviving a RAM zero would corrupt the fresh queue.
  void reset();

  [[nodiscard]] const QueueLayout& layout() const { return lay_; }

 private:
  DualPortRam* ram_;
  QueueLayout lay_;
  Side side_;
  std::uint32_t head_ = 0;   // writer-owned cached copy
  bool lap_odd_ = false;     // parity of the writer's current ring lap
};

class QueueReader {
 public:
  QueueReader(DualPortRam& ram, QueueLayout lay, Side side)
      : ram_(&ram), lay_(lay), side_(side) {}

  /// True if no descriptor is available (one RAM access: reads the head).
  [[nodiscard]] bool empty() const;

  /// Pops the next descriptor, or nullopt when empty.
  std::optional<Descriptor> pop(OpResult* res = nullptr);

  /// Reads the descriptor `k` entries past the tail without consuming it;
  /// nullopt if fewer than k+1 entries are queued. Used by the transmit
  /// processor to read a whole PDU chain up front while deferring the
  /// tail advance until each buffer has actually been transmitted (the
  /// tail advance is the host's transmit-completion signal, §2.1.2).
  std::optional<Descriptor> peek_at(std::uint32_t k, OpResult* res = nullptr) const;

  /// Advances the tail past one previously peeked descriptor.
  void advance();

  /// Splits advance() for the transmit processor: consume() moves the
  /// reader-side tail immediately (so subsequent peeks see fresh entries)
  /// while the RAM tail word — the host-visible completion signal — is
  /// published later, when the buffer has actually been transmitted.
  /// Returns the tail value to publish after these n entries complete.
  std::uint32_t consume(std::uint32_t n);

  /// Writes a tail value (previously returned by consume) to the RAM word.
  void publish(std::uint32_t tail_value);

  [[nodiscard]] std::uint32_t size() const;

  /// Adaptor reset: zeroes the cached tail and the RAM tail word (the
  /// matching writer's reset zeroes the head).
  void reset();

  /// Firmware-side reset: zeroes the cached tail AND all three RAM words
  /// (head/tail/ctrl). A rebooting board processor must not trust a head
  /// word published by a writer it cannot see — trusting it would replay
  /// whatever stale descriptors are still sitting in the dual-port RAM.
  /// The writer's cached head is then stale; its owner resynchronizes on
  /// its next generation check (OsirisDriver::maybe_resync).
  void reset_all();

  [[nodiscard]] const QueueLayout& layout() const { return lay_; }

 private:
  // Expected kDescLapSeal value for the entry `k` past the cached tail.
  [[nodiscard]] bool seal_expected(std::uint32_t k) const {
    const bool odd = lap_odd_ != (tail_ + k >= lay_.capacity);
    return !odd;  // even laps are sealed, odd laps (and virgin slots) not
  }

  DualPortRam* ram_;
  QueueLayout lay_;
  Side side_;
  std::uint32_t tail_ = 0;   // reader-owned cached copy
  bool lap_odd_ = false;     // parity of the lap the cached tail is on
};

}  // namespace osiris::dpram
