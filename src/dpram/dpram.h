// The 128 KB dual-port memory through which host and board communicate.
//
// From the host's perspective the OSIRIS board looks like a 128 KB region
// of memory; host software and on-board firmware jointly define its
// structure (paper §1). The memory guarantees atomicity of individual
// 32-bit loads and stores only (§2.1.1). Host-side accesses cross the
// TURBOchannel and are expensive; both sides' access counts are tracked so
// the drivers can charge the right costs and the benches can report "loads
// and stores required to communicate" (§2.1 goal 1).
//
// The transmit half is divided into sixteen 4 KB pages, each holding a
// transmit queue; the receive half likewise, each page holding a free
// queue and a receive queue (§3.2). Pair 0 belongs to the kernel driver;
// the rest are available for application device channels.
#pragma once

#include <cstdint>
#include <vector>

#include "atm/cell.h"
#include "fault/fault.h"

namespace osiris::dpram {

constexpr std::uint32_t kDpramBytes = 128 * 1024;
constexpr std::uint32_t kDpramWords = kDpramBytes / 4;
constexpr std::uint32_t kPagesPerHalf = 16;
constexpr std::uint32_t kPageWords = 4096 / 4;

/// Which port an access comes through (for statistics/cost accounting).
enum class Side { kHost, kBoard };

class DualPortRam {
 public:
  DualPortRam() : words_(kDpramWords, 0), prev_words_(kDpramWords, 0) {}

  std::uint32_t read(Side side, std::uint32_t word_index) const;
  void write(Side side, std::uint32_t word_index, std::uint32_t value);

  /// Enables fault injection (not owned). With fault::Point::kDpramStale
  /// armed, a read may return the value the word held before its most
  /// recent write — the memory's 32-bit-atomicity guarantee degrading
  /// under marginal timing. kDescCorrupt is consulted by the queue layer
  /// through maybe_corrupt().
  void set_fault_plane(fault::FaultPlane* plane) { faults_ = plane; }

  /// Fault hook for descriptor writes: with kDescCorrupt armed, flips one
  /// random bit in one of the `nwords` words starting at `first_word`.
  void maybe_corrupt(Side side, std::uint32_t first_word, std::uint32_t nwords);

  [[nodiscard]] std::uint64_t host_accesses() const { return host_accesses_; }
  [[nodiscard]] std::uint64_t board_accesses() const { return board_accesses_; }
  [[nodiscard]] std::uint64_t stale_reads() const { return stale_reads_; }
  [[nodiscard]] std::uint64_t corrupted_words() const { return corrupted_words_; }
  void reset_stats() { host_accesses_ = board_accesses_ = 0; }

 private:
  std::vector<std::uint32_t> words_;
  std::vector<std::uint32_t> prev_words_;  // pre-write values, for kDpramStale
  fault::FaultPlane* faults_ = nullptr;
  mutable std::uint64_t host_accesses_ = 0;
  mutable std::uint64_t board_accesses_ = 0;
  mutable std::uint64_t stale_reads_ = 0;
  std::uint64_t corrupted_words_ = 0;
};

/// A buffer descriptor as passed through the queues: physical address and
/// length of one physical buffer (§2.2), the VCI it belongs to, and flags.
///
/// On the RAM a descriptor is still exactly kDescriptorWords 32-bit words
/// (the push/pop PIO cost contract depends on that): word 2 packs the
/// 24-bit VCI in its low bits and the 8 flag bits above it. Only the low
/// 8 bits of `flags` survive a queue round-trip.
struct Descriptor {
  std::uint32_t addr = 0;
  std::uint32_t len = 0;
  atm::Vci vci = 0;          // 24 significant bits
  std::uint16_t flags = 0;   // low 8 bits are wire-real
  std::uint32_t user = 0;    // opaque cookie echoed back to the host

  friend bool operator==(const Descriptor&, const Descriptor&) = default;
};

enum DescriptorFlags : std::uint16_t {
  kDescEop = 1u << 0,      // last buffer of a PDU
  kDescAborted = 1u << 1,  // reassembly abandoned; recycle, don't deliver
  // Ownership seal, maintained by QueueWriter/QueueReader and invisible to
  // queue clients: the writer stamps each descriptor with the parity of
  // its current lap around the ring, and the reader refuses entries whose
  // seal does not match the lap it expects at that slot. A glitched
  // (stale) read of the head word near wrap-around can otherwise expose
  // previous-lap descriptors as fresh entries.
  kDescLapSeal = 1u << 2,
};

/// Rx PDU tag carried in descriptor flag bits 3..7: distinguishes buffers
/// of interleaved PDUs on the same VCI at the host demux (see
/// board::rx_desc_flags / OsirisDriver::drain_step).
constexpr std::uint32_t kDescTagShift = 3;
constexpr std::uint32_t kDescTagMask = 0x1F;  // 5 bits

constexpr std::uint32_t kDescriptorWords = 4;

/// Where a queue lives inside the dual-port RAM.
struct QueueLayout {
  std::uint32_t base_word = 0;  // [base]=head, [base+1]=tail, [base+2]=ctrl
  std::uint32_t capacity = 0;   // descriptor slots (holds capacity-1 entries)

  [[nodiscard]] std::uint32_t head_word() const { return base_word; }
  [[nodiscard]] std::uint32_t tail_word() const { return base_word + 1; }
  [[nodiscard]] std::uint32_t ctrl_word() const { return base_word + 2; }
  [[nodiscard]] std::uint32_t slot_word(std::uint32_t i) const {
    return base_word + 3 + i * kDescriptorWords;
  }
  /// Words this layout occupies.
  [[nodiscard]] std::uint32_t words() const { return 3 + capacity * kDescriptorWords; }
};

enum CtrlFlags : std::uint32_t {
  // Host sets this after finding the transmit queue full; the transmit
  // processor interrupts once the queue drains to half empty (§2.1.2).
  kCtrlWantHalfEmptyIrq = 1u << 0,
};

/// Firmware heartbeat words (proof-of-life for the host watchdog): the
/// last word of each half's page 0, which no queue layout reaches — a
/// full-page transmit queue uses 3 + 255*4 = 1023 of the 1024 words, and
/// the receive half's page 0 splits into two sub-half-page queues. Each
/// board processor increments its word on a bounded timer; a word that
/// stops advancing means that half's firmware loop is wedged.
constexpr std::uint32_t kTxHeartbeatWord = kPageWords - 1;
constexpr std::uint32_t kRxHeartbeatWord =
    kPagesPerHalf * kPageWords + kPageWords - 1;

/// Queue layouts for one transmit/receive page pair. Pair 0 is the kernel
/// driver's; pairs 1..15 are mappable as application device channels.
struct ChannelLayout {
  QueueLayout tx;    // host -> board: buffers to transmit
  QueueLayout free;  // host -> board: empty receive buffers
  QueueLayout recv;  // board -> host: filled receive buffers
};

/// Computes the layout of pair `index` (0..15). `tx_capacity` and
/// `rx_capacity` default to the paper's 64-entry queues and are clamped to
/// what fits in a page.
ChannelLayout channel_layout(std::uint32_t index, std::uint32_t tx_capacity = 64,
                             std::uint32_t rx_capacity = 64);

}  // namespace osiris::dpram
