// The 128 KB dual-port memory through which host and board communicate.
//
// From the host's perspective the OSIRIS board looks like a 128 KB region
// of memory; host software and on-board firmware jointly define its
// structure (paper §1). The memory guarantees atomicity of individual
// 32-bit loads and stores only (§2.1.1). Host-side accesses cross the
// TURBOchannel and are expensive; both sides' access counts are tracked so
// the drivers can charge the right costs and the benches can report "loads
// and stores required to communicate" (§2.1 goal 1).
//
// The transmit half is divided into sixteen 4 KB pages, each holding a
// transmit queue; the receive half likewise, each page holding a free
// queue and a receive queue (§3.2). Pair 0 belongs to the kernel driver;
// the rest are available for application device channels.
#pragma once

#include <cstdint>
#include <vector>

namespace osiris::dpram {

constexpr std::uint32_t kDpramBytes = 128 * 1024;
constexpr std::uint32_t kDpramWords = kDpramBytes / 4;
constexpr std::uint32_t kPagesPerHalf = 16;
constexpr std::uint32_t kPageWords = 4096 / 4;

/// Which port an access comes through (for statistics/cost accounting).
enum class Side { kHost, kBoard };

class DualPortRam {
 public:
  DualPortRam() : words_(kDpramWords, 0) {}

  std::uint32_t read(Side side, std::uint32_t word_index) const;
  void write(Side side, std::uint32_t word_index, std::uint32_t value);

  [[nodiscard]] std::uint64_t host_accesses() const { return host_accesses_; }
  [[nodiscard]] std::uint64_t board_accesses() const { return board_accesses_; }
  void reset_stats() { host_accesses_ = board_accesses_ = 0; }

 private:
  std::vector<std::uint32_t> words_;
  mutable std::uint64_t host_accesses_ = 0;
  mutable std::uint64_t board_accesses_ = 0;
};

/// A buffer descriptor as passed through the queues: physical address and
/// length of one physical buffer (§2.2), the VCI it belongs to, and flags.
struct Descriptor {
  std::uint32_t addr = 0;
  std::uint32_t len = 0;
  std::uint16_t vci = 0;
  std::uint16_t flags = 0;
  std::uint32_t user = 0;  // opaque cookie echoed back to the host

  friend bool operator==(const Descriptor&, const Descriptor&) = default;
};

enum DescriptorFlags : std::uint16_t {
  kDescEop = 1u << 0,  // last buffer of a PDU
};

constexpr std::uint32_t kDescriptorWords = 4;

/// Where a queue lives inside the dual-port RAM.
struct QueueLayout {
  std::uint32_t base_word = 0;  // [base]=head, [base+1]=tail, [base+2]=ctrl
  std::uint32_t capacity = 0;   // descriptor slots (holds capacity-1 entries)

  [[nodiscard]] std::uint32_t head_word() const { return base_word; }
  [[nodiscard]] std::uint32_t tail_word() const { return base_word + 1; }
  [[nodiscard]] std::uint32_t ctrl_word() const { return base_word + 2; }
  [[nodiscard]] std::uint32_t slot_word(std::uint32_t i) const {
    return base_word + 3 + i * kDescriptorWords;
  }
  /// Words this layout occupies.
  [[nodiscard]] std::uint32_t words() const { return 3 + capacity * kDescriptorWords; }
};

enum CtrlFlags : std::uint32_t {
  // Host sets this after finding the transmit queue full; the transmit
  // processor interrupts once the queue drains to half empty (§2.1.2).
  kCtrlWantHalfEmptyIrq = 1u << 0,
};

/// Queue layouts for one transmit/receive page pair. Pair 0 is the kernel
/// driver's; pairs 1..15 are mappable as application device channels.
struct ChannelLayout {
  QueueLayout tx;    // host -> board: buffers to transmit
  QueueLayout free;  // host -> board: empty receive buffers
  QueueLayout recv;  // board -> host: filled receive buffers
};

/// Computes the layout of pair `index` (0..15). `tx_capacity` and
/// `rx_capacity` default to the paper's 64-entry queues and are clamped to
/// what fits in a page.
ChannelLayout channel_layout(std::uint32_t index, std::uint32_t tx_capacity = 64,
                             std::uint32_t rx_capacity = 64);

}  // namespace osiris::dpram
