// Spin-lock guarded shared queue — the baseline design §2.1.1 rejects.
//
// Each half of the OSIRIS board provides a test-and-set register intended
// to guard arbitrarily complex shared structures in the dual-port RAM. The
// cost: every operation first acquires the lock, serializing host and
// board and adding lock-word traffic; under concurrency, packet delivery
// latency and CPU load suffer from contention. This implementation is kept
// so the bench (`bench_lockfree`) can quantify the difference the paper's
// lock-free queues make.
//
// Arbitration uses a sim::Resource as the lock: an acquisition made while
// the lock is held starts when the holder releases (FIFO), exactly the
// behaviour of a fair spin-lock; the time spent spinning is reported so
// the CPU-load cost can be charged.
#pragma once

#include <optional>

#include "dpram/dpram.h"
#include "dpram/queue.h"
#include "sim/engine.h"
#include "sim/resource.h"

namespace osiris::dpram {

/// The board's test-and-set register, modelled as a FIFO resource.
class TestAndSetLock {
 public:
  TestAndSetLock(sim::Engine& eng, const char* name) : res_(eng, name) {}

  /// Acquires at `from`, holds for `critical_section`. Returns {start of
  /// critical section, release time}. Spin time = start - from.
  struct Grant {
    sim::Tick start;
    sim::Tick release;
  };
  Grant acquire_at(sim::Tick from, sim::Duration critical_section) {
    const sim::Tick release = res_.reserve_at(from, critical_section);
    return {release - critical_section, release};
  }

  [[nodiscard]] sim::Resource& resource() { return res_; }

 private:
  sim::Resource res_;
};

/// A shared circular queue in dual-port RAM in which BOTH pointers may be
/// read and written by both sides, so every operation must hold the lock.
/// Same storage layout as the lock-free queue; different discipline.
class LockedQueue {
 public:
  LockedQueue(DualPortRam& ram, QueueLayout lay, TestAndSetLock& lock)
      : ram_(&ram), lay_(lay), lock_(&lock) {}

  /// Pushes under the lock. `from` is when the caller starts trying;
  /// `access_cost` is the caller-side cost of one 32-bit RAM access (PIO
  /// for the host, on-board cycle for the firmware). Returns the release
  /// time, or nullopt (with the failed-attempt release time in *fail_at)
  /// when the queue is full.
  std::optional<sim::Tick> push(Side side, sim::Tick from,
                                sim::Duration access_cost, const Descriptor& d,
                                sim::Tick* fail_at = nullptr);

  /// Pops under the lock. Returns descriptor and sets *done to the release
  /// time; nullopt when empty.
  std::optional<Descriptor> pop(Side side, sim::Tick from,
                                sim::Duration access_cost, sim::Tick* done);

  [[nodiscard]] std::uint32_t size(Side side) const;

 private:
  DualPortRam* ram_;
  QueueLayout lay_;
  TestAndSetLock* lock_;
};

}  // namespace osiris::dpram
