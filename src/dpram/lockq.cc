#include "dpram/lockq.h"

namespace osiris::dpram {
namespace {

// Lock-held work, in RAM accesses: test-and-set + read head + read tail,
// then on success 4 descriptor words + pointer update + lock clear.
constexpr std::uint32_t kProbeAccesses = 3;
constexpr std::uint32_t kCommitAccesses = kDescriptorWords + 2;

}  // namespace

std::optional<sim::Tick> LockedQueue::push(Side side, sim::Tick from,
                                           sim::Duration access_cost,
                                           const Descriptor& d,
                                           sim::Tick* fail_at) {
  const std::uint32_t head = ram_->read(side, lay_.head_word());
  const std::uint32_t tail = ram_->read(side, lay_.tail_word());
  if ((head + 1) % lay_.capacity == tail) {
    const auto g = lock_->acquire_at(from, access_cost * kProbeAccesses);
    if (fail_at != nullptr) *fail_at = g.release;
    return std::nullopt;
  }
  const auto g =
      lock_->acquire_at(from, access_cost * (kProbeAccesses + kCommitAccesses));
  const std::uint32_t w = lay_.slot_word(head);
  ram_->write(side, w + 0, d.addr);
  ram_->write(side, w + 1, d.len);
  ram_->write(side, w + 2,
              (d.vci & atm::kMaxVci) |
                  (static_cast<std::uint32_t>(d.flags & 0xFF) << 24));
  ram_->write(side, w + 3, d.user);
  ram_->write(side, lay_.head_word(), (head + 1) % lay_.capacity);
  return g.release;
}

std::optional<Descriptor> LockedQueue::pop(Side side, sim::Tick from,
                                           sim::Duration access_cost,
                                           sim::Tick* done) {
  const std::uint32_t head = ram_->read(side, lay_.head_word());
  const std::uint32_t tail = ram_->read(side, lay_.tail_word());
  if (head == tail) {
    const auto g = lock_->acquire_at(from, access_cost * kProbeAccesses);
    if (done != nullptr) *done = g.release;
    return std::nullopt;
  }
  const auto g =
      lock_->acquire_at(from, access_cost * (kProbeAccesses + kCommitAccesses));
  const std::uint32_t w = lay_.slot_word(tail);
  Descriptor d;
  d.addr = ram_->read(side, w + 0);
  d.len = ram_->read(side, w + 1);
  const std::uint32_t vf = ram_->read(side, w + 2);
  d.vci = vf & atm::kMaxVci;
  d.flags = static_cast<std::uint16_t>(vf >> 24);
  d.user = ram_->read(side, w + 3);
  ram_->write(side, lay_.tail_word(), (tail + 1) % lay_.capacity);
  if (done != nullptr) *done = g.release;
  return d;
}

std::uint32_t LockedQueue::size(Side side) const {
  const std::uint32_t head = ram_->read(side, lay_.head_word());
  const std::uint32_t tail = ram_->read(side, lay_.tail_word());
  return (head + lay_.capacity - tail) % lay_.capacity;
}

}  // namespace osiris::dpram
