#include "dpram/dpram.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace osiris::dpram {

std::uint32_t DualPortRam::read(Side side, std::uint32_t word_index) const {
  if (word_index >= kDpramWords) {
    throw std::out_of_range("DualPortRam: read past end: " + std::to_string(word_index));
  }
  (side == Side::kHost ? host_accesses_ : board_accesses_)++;
  if (fault::fires(faults_, fault::Point::kDpramStale) &&
      prev_words_[word_index] != words_[word_index]) {
    ++stale_reads_;
    return prev_words_[word_index];
  }
  return words_[word_index];
}

void DualPortRam::write(Side side, std::uint32_t word_index, std::uint32_t value) {
  if (word_index >= kDpramWords) {
    throw std::out_of_range("DualPortRam: write past end: " + std::to_string(word_index));
  }
  (side == Side::kHost ? host_accesses_ : board_accesses_)++;
  prev_words_[word_index] = words_[word_index];
  words_[word_index] = value;
}

void DualPortRam::maybe_corrupt(Side side, std::uint32_t first_word,
                                std::uint32_t nwords) {
  if (!fault::fires(faults_, fault::Point::kDescCorrupt)) return;
  const auto w = first_word + static_cast<std::uint32_t>(faults_->roll(nwords));
  write(side, w, faults_->corrupt_word(words_[w]));
  ++corrupted_words_;
}

ChannelLayout channel_layout(std::uint32_t index, std::uint32_t tx_capacity,
                             std::uint32_t rx_capacity) {
  if (index >= kPagesPerHalf) {
    throw std::out_of_range("channel_layout: index " + std::to_string(index));
  }
  // Transmit half occupies words [0, 16K), receive half [16K, 32K).
  const std::uint32_t tx_page = index * kPageWords;
  const std::uint32_t rx_page = kPagesPerHalf * kPageWords + index * kPageWords;

  // Max slots that fit: tx uses the whole page; free/recv split the rx page.
  const std::uint32_t tx_max = (kPageWords - 3) / kDescriptorWords;
  const std::uint32_t rx_max = (kPageWords / 2 - 3) / kDescriptorWords;

  ChannelLayout cl;
  cl.tx = {tx_page, std::min(tx_capacity, tx_max)};
  cl.free = {rx_page, std::min(rx_capacity, rx_max)};
  cl.recv = {rx_page + kPageWords / 2, std::min(rx_capacity, rx_max)};
  return cl;
}

}  // namespace osiris::dpram
