// Deterministic chaos schedules (DESIGN.md §12).
//
// A ChaosSchedule is a seeded timeline of arm/disarm actions over any
// subset of the fault points on either node of a two-node testbed. Each
// action carries a full FaultSpec — probabilistic, deterministic-Nth, a
// firing budget, and a consultation window — plus a wall-time window
// [start, end) in simulated ticks during which the point is armed. The
// generator aligns those windows with the runner's traffic phases (warmup
// / steady / drain) so faults land where traffic actually exercises the
// hook points.
//
// Schedules serialize to a line-oriented text format so a failing run is
// a file: record it, attach it to a bug, replay it byte-for-byte. The
// parser stops at the `end` line, so a replay artifact can carry a human
// postmortem appended after the schedule without breaking round-trips.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "sim/time.h"

namespace osiris::chaos {

/// One timed fault action: arm `point` on `node`'s plane at `start` with
/// `spec`, and (when `end` > `start`) disarm it again at `end`. Points in
/// the kAdc*/kTenantBurst range target the node's per-tenant plane (the
/// one handed to its ADC); everything else targets the node-level
/// hardware plane.
struct Action {
  int node = 0;  // 0 = testbed node a, 1 = node b
  fault::Point point = fault::Point::kDmaError;
  sim::Tick start = 0;
  sim::Tick end = 0;  // 0 = stay armed until the run drains
  fault::FaultSpec spec;

  friend bool operator==(const Action&, const Action&) = default;
};

/// True for points consulted on a per-tenant (ADC application) plane
/// rather than the node-level hardware plane.
[[nodiscard]] bool is_tenant_point(fault::Point p);

struct Schedule {
  std::uint64_t seed = 0;  // generator seed; 0 for hand-built schedules
  std::vector<Action> actions;

  friend bool operator==(const Schedule&, const Schedule&) = default;

  /// Portable text serialization (see file comment for the format).
  [[nodiscard]] std::string to_text() const;

  /// Parses to_text() output (ignoring anything after the `end` line, and
  /// `#` comment lines anywhere). Returns nullopt on malformed input.
  static std::optional<Schedule> parse(const std::string& text);
};

/// Generator tuning. The defaults match ChaosRunner's traffic shape.
struct GenOptions {
  sim::Tick horizon = sim::ms(25);  // traffic duration to place windows in
  int min_actions = 2;
  int max_actions = 6;
  /// Points the generator may pick; empty = every point (hardware and
  /// tenant) is eligible.
  std::vector<fault::Point> eligible;
};

/// Deterministically expands `seed` into a schedule: same seed + options,
/// same schedule, on every platform. Specs are always budget-bounded so a
/// generated schedule can never keep a run from draining.
[[nodiscard]] Schedule generate(std::uint64_t seed, const GenOptions& opt = {});

}  // namespace osiris::chaos
