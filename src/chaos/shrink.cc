#include "chaos/shrink.h"

#include <algorithm>
#include <fstream>

namespace osiris::chaos {

namespace {

Schedule with_actions(const Schedule& base, std::vector<Action> actions) {
  Schedule s;
  s.seed = base.seed;
  s.actions = std::move(actions);
  return s;
}

}  // namespace

ShrinkResult shrink(const Schedule& failing, const RunnerConfig& cfg,
                    int max_trials) {
  ShrinkResult res;
  res.minimal = failing;

  RunnerConfig quiet = cfg;
  quiet.collect_postmortem = false;  // only the final rerun pays for it

  auto fails = [&](const std::vector<Action>& actions) {
    ++res.trials;
    return !run_schedule(with_actions(failing, actions), quiet).ok();
  };

  res.reproduced = fails(failing.actions);
  if (res.reproduced) {
    // ddmin (Zeller/Hildebrandt): try dropping complements of ever-finer
    // chunks while the failure persists.
    std::vector<Action> cur = failing.actions;
    std::size_t granularity = 2;
    while (cur.size() >= 2 && res.trials < max_trials) {
      const std::size_t chunk =
          (cur.size() + granularity - 1) / granularity;
      bool reduced = false;
      for (std::size_t off = 0; off < cur.size() && res.trials < max_trials;
           off += chunk) {
        std::vector<Action> complement;
        for (std::size_t i = 0; i < cur.size(); ++i) {
          if (i < off || i >= off + chunk) complement.push_back(cur[i]);
        }
        if (!complement.empty() && fails(complement)) {
          cur = std::move(complement);
          granularity = granularity > 2 ? granularity - 1 : 2;
          reduced = true;
          break;
        }
      }
      if (!reduced) {
        if (granularity >= cur.size()) break;
        granularity = std::min(cur.size(), granularity * 2);
      }
    }
    // Greedy 1-minimality: no single remaining action is removable.
    for (std::size_t i = 0; i < cur.size() && res.trials < max_trials;) {
      std::vector<Action> without = cur;
      without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
      if (!without.empty() && fails(without)) {
        cur = std::move(without);
        i = 0;  // removals can unlock earlier ones
      } else {
        ++i;
      }
    }
    res.minimal = with_actions(failing, cur);
  }

  RunnerConfig verbose = cfg;
  verbose.collect_postmortem = true;
  res.report = run_schedule(res.minimal, verbose);
  return res;
}

bool write_artifact(const std::string& path, const ShrinkResult& r) {
  std::ofstream out(path);
  if (!out) return false;
  out << r.minimal.to_text();
  out << "\n# ---- postmortem (ignored by Schedule::parse) ----\n";
  out << "# shrink: " << r.trials << " trials, "
      << r.minimal.actions.size() << " actions in minimal schedule, input "
      << (r.reproduced ? "reproduced" : "did NOT reproduce") << "\n";
  if (r.report.violations.empty()) {
    out << "# minimal schedule ran clean on the final rerun\n";
  }
  for (const std::string& v : r.report.violations) {
    out << "violation: " << v << "\n";
  }
  out << "fingerprint: " << r.report.fingerprint << "\n";
  out << "arq: sent " << r.report.arq_sent << " delivered "
      << r.report.arq_delivered << " retransmissions "
      << r.report.arq_retransmissions << " resyncs " << r.report.arq_resyncs
      << "\n";
  out << "resets: node_a " << r.report.resets_a << " node_b "
      << r.report.resets_b << "\n";
  out << "faults_fired: " << r.report.faults_fired << "\n";
  out << r.report.postmortem;
  return static_cast<bool>(out);
}

}  // namespace osiris::chaos
