#include "chaos/runner.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>

#include "adc/adc.h"
#include "osiris/audit.h"
#include "osiris/node.h"
#include "osiris/stats.h"
#include "proto/arq.h"
#include "proto/message.h"
#include "proto/rpc.h"
#include "proto/stack.h"
#include "sim/trace.h"

namespace osiris::chaos {

namespace {

constexpr std::uint8_t kDgramMagic0 = 0xD6;  // never an ARQ type byte (1/2)
constexpr std::uint8_t kDgramMagic1 = 0x47;

std::vector<std::uint8_t> tagged(std::size_t bytes, std::uint32_t tag) {
  std::vector<std::uint8_t> v(bytes < 4 ? 4 : bytes);
  v[0] = static_cast<std::uint8_t>(tag >> 24);
  v[1] = static_cast<std::uint8_t>(tag >> 16);
  v[2] = static_cast<std::uint8_t>(tag >> 8);
  v[3] = static_cast<std::uint8_t>(tag);
  for (std::size_t i = 4; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(tag * 31 + i);
  }
  return v;
}

std::vector<std::uint8_t> dgram_payload(std::size_t bytes, std::uint32_t tag) {
  std::vector<std::uint8_t> v = tagged(bytes < 6 ? 6 : bytes, tag);
  // The magic pair displaces the tag so a datagram misrouted onto the ARQ
  // VCI parses as malformed (type 0xD6) instead of as a data frame.
  v.insert(v.begin(), {kDgramMagic0, kDgramMagic1});
  return v;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

adc::Adc::Deps deps_of(Node& n) {
  return adc::Adc::Deps{n.eng,   n.cfg.machine, n.cpu, n.intc, n.bus, n.pm,
                        n.cache, n.frames,      n.ram, n.txp,  n.rxp};
}

NodeConfig chaos_node(sim::Trace* trace, fault::FaultPlane* hw,
                      std::uint64_t seed) {
  NodeConfig c = make_3000_600_config();
  c.board.reassembly = "seq";  // per-cell identity tolerates cell loss
  c.trace = trace;
  c.faults = hw;
  c.seed = seed;
  return c;
}

std::uint64_t plane_fired_total(const fault::FaultPlane& fp) {
  std::uint64_t n = 0;
  for (int i = 0; i < static_cast<int>(fault::Point::kCount); ++i) {
    n += fp.lifetime_fired(static_cast<fault::Point>(i));
  }
  return n;
}

}  // namespace

Report run_schedule(const Schedule& sch, const RunnerConfig& cfg) {
  Report rep;

  // Sinks and recovery state live above the testbed so driver reset hooks
  // (which reference them) die before they do.
  std::vector<std::uint32_t> arq_tags;            // delivery order on vci_arq
  std::vector<sim::Tick> arq_times;               // matching delivery times
  std::vector<std::optional<sim::Tick>> resets;   // open = not yet converged
  std::uint64_t arq_payload_errors = 0;
  std::uint64_t dgram_ok = 0, adc_ok = 0, foreign = 0;
  std::uint64_t rpc_done = 0, rpc_timeo = 0;

  // Four independent planes (one hardware + one tenant per node) keep each
  // partition's RNG stream thread-confined, preserving the parallel DES's
  // bit-identical dispatch guarantee under --threads 2.
  sim::Trace trace_a(4096), trace_b(4096);
  fault::FaultPlane hw_a(sch.seed * 4 + 1), hw_b(sch.seed * 4 + 2);
  fault::FaultPlane tenant_a(sch.seed * 4 + 3), tenant_b(sch.seed * 4 + 4);

  Testbed tb(chaos_node(&trace_a, &hw_a, sch.seed * 2 + 1),
             chaos_node(&trace_b, &hw_b, sch.seed * 2 + 2), cfg.threads);

  const atm::Vci vci_arq = tb.open_kernel_path();
  const atm::Vci vci_dgram = tb.open_kernel_path();
  // Background population: grow the flow tables to cfg.bulk_vcis mapped
  // (idle) channels so every fault-recovery path below runs against the
  // table shape a busy host would have.
  for (int i = 0; i < cfg.bulk_vcis; ++i) tb.open_kernel_path();

  proto::StackConfig sc;
  sc.udp_checksum = true;
  std::unique_ptr<proto::ProtoStack> sa = tb.a.make_stack(sc);
  std::unique_ptr<proto::ProtoStack> sb = tb.b.make_stack(sc);

  proto::ArqConfig ac;
  ac.rto = cfg.arq_rto;
  ac.max_rto = cfg.arq_max_rto;
  ac.max_retries = cfg.arq_max_retries;
  proto::ArqEndpoint arq_a(tb.a.eng, *sa, tb.a.kernel_space, tb.a.cpu,
                           tb.a.cfg.machine, ac);
  proto::ArqEndpoint arq_b(tb.b.eng, *sb, tb.b.kernel_space, tb.b.cpu,
                           tb.b.cfg.machine, ac);
  arq_a.bind(vci_arq);
  arq_b.bind(vci_arq);

  arq_b.set_sink([&](sim::Tick at, atm::Vci vci,
                     std::vector<std::uint8_t>&& data) {
    if (vci == vci_arq) {
      const std::uint32_t want =
          static_cast<std::uint32_t>(arq_tags.size());
      if (data != tagged(cfg.arq_bytes, want)) ++arq_payload_errors;
      std::uint32_t tag = 0;
      if (data.size() >= 4) {
        tag = (static_cast<std::uint32_t>(data[0]) << 24) |
              (static_cast<std::uint32_t>(data[1]) << 16) |
              (static_cast<std::uint32_t>(data[2]) << 8) | data[3];
      }
      arq_tags.push_back(tag);
      arq_times.push_back(at);
      // A reliable in-order delivery is the convergence witness: every
      // reset opened before it has now been recovered from end to end.
      for (auto& r : resets) {
        if (r.has_value()) {
          rep.recovery_us.push_back(sim::to_us(at - *r));
          r.reset();
        }
      }
    } else if (vci == vci_dgram && data.size() >= 2 &&
               data[0] == kDgramMagic0 && data[1] == kDgramMagic1) {
      ++dgram_ok;
    } else {
      ++foreign;  // misrouted onto a VCI it was never sent on
    }
  });

  // Convergence probes: every kernel-driver reset opens a recovery span.
  tb.a.driver.add_reset_hook([&resets](sim::Tick at) {
    resets.emplace_back(at);
  });
  tb.b.driver.add_reset_hook([&resets](sim::Tick at) {
    resets.emplace_back(at);
  });

  // ADC pair 1: user-space RPC on a clean tenant. Pair 2: a raw message
  // stream whose tenant planes carry the adversary points.
  adc::Adc rpc_cli(deps_of(tb.a), 1, {850}, 1, sc);
  adc::Adc rpc_srv(deps_of(tb.b), 1, {850}, 1, sc);
  proto::RpcEndpoint client(tb.a.eng, rpc_cli.stack(), rpc_cli.space(),
                            tb.a.cpu, tb.a.cfg.machine);
  proto::RpcEndpoint server(tb.b.eng, rpc_srv.stack(), rpc_srv.space(),
                            tb.b.cpu, tb.b.cfg.machine);
  rpc_cli.authorize(client.arena_buffers());
  rpc_srv.authorize(server.arena_buffers());
  server.serve([](std::vector<std::uint8_t> req) {
    std::reverse(req.begin(), req.end());
    return req;
  });

  adc::Adc adc_tx(deps_of(tb.a), 2, {860}, 2, sc);
  adc::Adc adc_rx(deps_of(tb.b), 2, {860}, 2, sc);
  adc_tx.set_fault_plane(&tenant_a);
  adc_rx.set_fault_plane(&tenant_b);
  adc_rx.set_sink([&](sim::Tick, std::uint16_t,
                      std::vector<std::uint8_t>&& data) {
    if (data.size() >= 4) ++adc_ok;
  });

  // QoS pressure alongside the faults: kernel traffic outweighs the raw
  // ADC tenant, which is also rate-limited; the datagram VCI gets a
  // receive-side buffer quota.
  tb.a.txp.set_queue_weight(0, 2);
  tb.a.txp.set_queue_weight(2, 1);
  tb.a.txp.set_rate_limit(2, 80e6, 32 * 1024);
  tb.b.rxp.set_vci_quota(vci_dgram, 64);

  // Watchdogs from t=0: any wedge during traffic or the retransmission
  // tail is rescued within wd_deadline.
  const sim::Tick wd_until = cfg.horizon + cfg.drain_tail;
  tb.a.start_watchdog(cfg.wd_period, cfg.wd_deadline, wd_until);
  tb.b.start_watchdog(cfg.wd_period, cfg.wd_deadline, wd_until);

  // Apply the schedule: arm/disarm on the owning node's engine so plane
  // access stays partition-confined.
  for (const Action& a : sch.actions) {
    Node& n = (a.node == 0) ? tb.a : tb.b;
    fault::FaultPlane& plane =
        is_tenant_point(a.point) ? (a.node == 0 ? tenant_a : tenant_b)
                                 : (a.node == 0 ? hw_a : hw_b);
    fault::FaultPlane* pp = &plane;
    n.eng.schedule_at(a.start,
                      [pp, p = a.point, spec = a.spec] { pp->arm(p, spec); });
    if (a.end > a.start) {
      n.eng.schedule_at(a.end, [pp, p = a.point] { pp->disarm(p); });
    }
  }

  // Traffic. All payloads are single-fragment (well under the 16 KB MTU),
  // so a drained run can insist on zero pending reassemblies.
  const sim::Tick arq_gap = cfg.horizon / (cfg.arq_msgs > 0 ? cfg.arq_msgs : 1);
  for (int i = 0; i < cfg.arq_msgs; ++i) {
    tb.a.eng.schedule_at(static_cast<sim::Tick>(i) * arq_gap, [&, i] {
      arq_a.send(tb.a.eng.now(), vci_arq,
                 tagged(cfg.arq_bytes, static_cast<std::uint32_t>(i)));
      ++rep.arq_sent;
    });
  }
  const sim::Tick dg_gap =
      cfg.horizon / (cfg.dgram_msgs > 0 ? cfg.dgram_msgs : 1);
  for (int i = 0; i < cfg.dgram_msgs; ++i) {
    tb.a.eng.schedule_at(static_cast<sim::Tick>(i) * dg_gap + 17, [&, i] {
      arq_a.send(tb.a.eng.now(), vci_dgram,
                 dgram_payload(cfg.dgram_bytes, static_cast<std::uint32_t>(i)));
      ++rep.dgram_sent;
    });
  }
  const sim::Tick rpc_gap =
      cfg.horizon / (cfg.rpc_calls > 0 ? cfg.rpc_calls : 1);
  for (int i = 0; i < cfg.rpc_calls; ++i) {
    tb.a.eng.schedule_at(static_cast<sim::Tick>(i) * rpc_gap + 31, [&, i] {
      ++rep.rpc_issued;
      client.call(
          tb.a.eng.now(), 850, tagged(64, static_cast<std::uint32_t>(i)),
          [&](sim::Tick, std::optional<std::vector<std::uint8_t>> r) {
            ++rpc_done;
            if (!r.has_value()) ++rpc_timeo;
          },
          cfg.rpc_timeout, proto::RpcRetryPolicy{.retries = cfg.rpc_retries});
    });
  }
  const sim::Tick adc_gap = cfg.horizon / (cfg.adc_msgs > 0 ? cfg.adc_msgs : 1);
  for (int i = 0; i < cfg.adc_msgs; ++i) {
    tb.a.eng.schedule_at(static_cast<sim::Tick>(i) * adc_gap + 43, [&, i] {
      const proto::Message m = proto::Message::from_payload(
          adc_tx.space(), tagged(cfg.adc_bytes, static_cast<std::uint32_t>(i)));
      adc_tx.authorize(m.scatter());
      adc_tx.send(tb.a.eng.now(), 860, m);
      ++rep.adc_sent;
    });
  }

  tb.run();
  // Post-drain reconciliation, then run the completions it scheduled.
  tb.a.driver.reclaim_tx(tb.now());
  tb.b.driver.reclaim_tx(tb.now());
  tb.a.driver.flush_partials(tb.now());
  tb.b.driver.flush_partials(tb.now());
  tb.run();

  // ---- invariants ----
  auto violate = [&rep](const std::string& s) { rep.violations.push_back(s); };

  for (const std::string& v : obs::audit(tb)) violate("audit: " + v);

  rep.arq_delivered = arq_tags.size();
  rep.arq_retransmissions = arq_a.retransmissions();
  rep.arq_resyncs = arq_a.resyncs() + arq_b.resyncs();
  rep.dgram_delivered = dgram_ok;
  rep.adc_delivered = adc_ok;
  rep.foreign = foreign;
  rep.rpc_completed = rpc_done;
  rep.rpc_timeouts = rpc_timeo;
  rep.resets_a = tb.a.driver.watchdog_resets();
  rep.resets_b = tb.b.driver.watchdog_resets();
  rep.faults_fired = plane_fired_total(hw_a) + plane_fired_total(hw_b) +
                     plane_fired_total(tenant_a) + plane_fired_total(tenant_b);
  rep.end = tb.now();
  rep.events = tb.dispatched();

  if (arq_a.dead(vci_arq)) {
    violate("arq: sender gave up (vci declared dead after " +
            std::to_string(arq_a.retransmissions()) + " retransmissions)");
  } else if (rep.arq_delivered != rep.arq_sent) {
    violate("arq: goodput floor broken: delivered " +
            std::to_string(rep.arq_delivered) + " of " +
            std::to_string(rep.arq_sent));
  }
  for (std::size_t i = 0; i < arq_tags.size(); ++i) {
    if (arq_tags[i] != i) {
      violate("arq: delivery " + std::to_string(i) + " carried tag " +
              std::to_string(arq_tags[i]) + " (reorder/dup/loss)");
      break;
    }
  }
  if (arq_payload_errors > 0) {
    violate("arq: " + std::to_string(arq_payload_errors) +
            " deliveries with corrupt payload");
  }
  if (!arq_a.dead(vci_arq) && !arq_a.idle()) {
    violate("arq: sender not idle after drain");
  }
  if (rep.dgram_delivered > rep.dgram_sent) {
    violate("dgram: duplicated deliveries (" +
            std::to_string(rep.dgram_delivered) + " > " +
            std::to_string(rep.dgram_sent) + ")");
  }
  // A tenant_burst firing turns one counted send attempt into four stack
  // sends, so each firing legitimately adds up to three extra deliveries.
  const std::uint64_t burst_extra =
      3 * tenant_a.lifetime_fired(fault::Point::kTenantBurst);
  if (rep.adc_delivered > rep.adc_sent + burst_extra) {
    violate("adc: duplicated deliveries (" +
            std::to_string(rep.adc_delivered) + " > " +
            std::to_string(rep.adc_sent) + " sent + " +
            std::to_string(burst_extra) + " burst copies)");
  }
  if (rep.rpc_completed != rep.rpc_issued) {
    violate("rpc: " + std::to_string(rep.rpc_issued - rep.rpc_completed) +
            " calls never completed (lost timer or callback)");
  }

  // Kernel-driver leak checks. ADC channel drivers are exempt: a tenant
  // that died mid-chain legitimately leaves an EOP-less descriptor behind
  // until the OS reaps the channel.
  auto leak_check = [&](const char* name, Node& n,
                        proto::ProtoStack& stack) {
    if (n.driver.wiring().wired_frames() != 0) {
      violate(std::string(name) + ": " +
              std::to_string(n.driver.wiring().wired_frames()) +
              " frames still wired after drain");
    }
    if (n.driver.tx_descs_retired() != n.driver.tx_descs_accepted()) {
      violate(std::string(name) + ": tx descriptors leaked (" +
              std::to_string(n.driver.tx_descs_accepted()) + " accepted, " +
              std::to_string(n.driver.tx_descs_retired()) + " retired)");
    }
    if (n.driver.recv_backlog() != 0) {
      violate(std::string(name) + ": receive backlog not drained");
    }
    if (stack.pending_reassemblies() != 0) {
      violate(std::string(name) + ": " +
              std::to_string(stack.pending_reassemblies()) +
              " reassemblies pending after drain (single-fragment traffic)");
    }
  };
  leak_check("node a", tb.a, *sa);
  leak_check("node b", tb.b, *sb);

  // ---- fingerprint ----
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint32_t t : arq_tags) h = fnv1a(h, t);
  for (const sim::Tick t : arq_times) h = fnv1a(h, t);
  h = fnv1a(h, rep.arq_delivered);
  h = fnv1a(h, rep.dgram_delivered);
  h = fnv1a(h, rep.adc_delivered);
  h = fnv1a(h, rep.foreign);
  h = fnv1a(h, rep.rpc_completed);
  h = fnv1a(h, rep.rpc_timeouts);
  h = fnv1a(h, server.served());
  h = fnv1a(h, rep.resets_a);
  h = fnv1a(h, rep.resets_b);
  h = fnv1a(h, rep.arq_retransmissions);
  h = fnv1a(h, rep.arq_resyncs);
  for (const fault::FaultPlane* fp : {&hw_a, &hw_b, &tenant_a, &tenant_b}) {
    for (int i = 0; i < static_cast<int>(fault::Point::kCount); ++i) {
      h = fnv1a(h, fp->lifetime_fired(static_cast<fault::Point>(i)));
      h = fnv1a(h, fp->lifetime_consulted(static_cast<fault::Point>(i)));
    }
  }
  h = fnv1a(h, rep.end);
  rep.fingerprint = h;

  if (cfg.collect_postmortem) {
    std::ostringstream os;
    os << "== fault planes ==\n";
    os << "[node a hw]\n" << hw_a.summary();
    os << "[node b hw]\n" << hw_b.summary();
    os << "[node a tenant]\n" << tenant_a.summary();
    os << "[node b tenant]\n" << tenant_b.summary();
    os << "== node stats ==\n";
    os << format_stats(osiris::snapshot(tb.a));
    os << format_stats(osiris::snapshot(tb.b));
    os << "== trace tail (node a) ==\n" << trace_a.dump(40);
    os << "== trace tail (node b) ==\n" << trace_b.dump(40);
    rep.postmortem = os.str();
  }
  return rep;
}

}  // namespace osiris::chaos
