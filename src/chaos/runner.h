// ChaosRunner: executes a ChaosSchedule against a fresh two-node testbed
// while driving mixed traffic — a reliable tagged ARQ stream, a
// best-effort datagram stream, RPC over one ADC pair, a raw ADC message
// stream over a second pair (where tenant misbehaviour injects), and QoS
// knobs on the transmit scheduler — then drains and checks invariants:
// the observability audit's conservation identities, zero leaked frames
// and descriptors on the kernel drivers, exactly-once in-order ARQ
// delivery, and convergence of every watchdog reset. Any violated
// invariant becomes one human-readable string in Report::violations, and
// the whole run folds into a fingerprint that must be bit-identical for
// any worker-thread count and across record/replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/schedule.h"
#include "sim/time.h"

namespace osiris::chaos {

struct RunnerConfig {
  int threads = 1;                  // testbed worker threads (1 or 2)
  sim::Tick horizon = sim::ms(25);  // traffic injection window

  // Reliable tagged stream, node a -> node b on a bound ARQ VCI.
  int arq_msgs = 80;
  std::uint32_t arq_bytes = 256;
  std::uint32_t arq_max_retries = 25;
  sim::Duration arq_rto = sim::ms(1);
  sim::Duration arq_max_rto = sim::ms(8);

  // Best-effort datagram stream on an unbound VCI through the same
  // endpoints (passthrough path).
  int dgram_msgs = 40;
  std::uint32_t dgram_bytes = 512;

  // RPC over ADC pair 1 (clean tenant), plus a raw message stream over
  // ADC pair 2 (the tenant planes are attached there).
  int rpc_calls = 12;
  sim::Duration rpc_timeout = sim::ms(3);
  std::uint32_t rpc_retries = 3;
  int adc_msgs = 24;
  std::uint32_t adc_bytes = 384;

  // Watchdogs run on both nodes from t=0 until horizon + drain_tail; the
  // tail must comfortably cover the worst ARQ retransmission span so a
  // late firmware wedge is still rescued before the retry budget burns.
  sim::Duration wd_period = sim::ms(1);
  sim::Duration wd_deadline = sim::ms(3);
  sim::Duration drain_tail = sim::sec(1);

  // Extra kernel-path VCIs mapped on both nodes before traffic starts
  // (none carry traffic). Drives the receive processors' flow tables to
  // realistic occupancy so resets, quarantines and buffer-exhaustion
  // recovery are exercised against a grown, rehashed table rather than a
  // handful of entries.
  int bulk_vcis = 0;

  bool collect_postmortem = false;  // assemble Report::postmortem
};

struct Report {
  /// One string per violated invariant; empty = the run survived.
  std::vector<std::string> violations;
  /// FNV-1a over delivery tags, counters, resets and fault activity.
  /// Identical for serial and --threads 2 runs of the same schedule, and
  /// across record/replay of a serialized schedule.
  std::uint64_t fingerprint = 0;

  std::uint64_t arq_sent = 0, arq_delivered = 0;
  std::uint64_t arq_retransmissions = 0, arq_resyncs = 0;
  std::uint64_t dgram_sent = 0, dgram_delivered = 0;
  std::uint64_t adc_sent = 0, adc_delivered = 0;
  /// Frames that surfaced on the wrong VCI (misrouting made visible).
  std::uint64_t foreign = 0;
  std::uint64_t rpc_issued = 0, rpc_completed = 0, rpc_timeouts = 0;
  std::uint64_t resets_a = 0, resets_b = 0;
  std::uint64_t faults_fired = 0;  // all four planes, lifetime
  std::uint64_t events = 0;        // engine events the run dispatched
  sim::Tick end = 0;
  /// One sample per adaptor reset that a later reliable delivery closed:
  /// microseconds from force_reset to the next in-order ARQ delivery.
  std::vector<double> recovery_us;
  std::string postmortem;  // fault summaries, stats, trace tails

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Builds the testbed, applies `sch`, drives traffic, drains, audits.
Report run_schedule(const Schedule& sch, const RunnerConfig& cfg = {});

}  // namespace osiris::chaos
