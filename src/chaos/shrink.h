// Delta-debugging schedule shrinker.
//
// A failing chaos schedule usually carries several actions that have
// nothing to do with the violation. Because runs are deterministic —
// same schedule, same RunnerConfig, same violations — the schedule can
// be minimized mechanically: ddmin over the action list (complement
// reduction with increasing granularity), then a greedy pass proving
// 1-minimality (removing any single remaining action makes the failure
// disappear). The minimal schedule plus the postmortem of its run is
// written as one replayable artifact: Schedule::parse() reads the
// schedule back out, ignoring the appended postmortem.
#pragma once

#include <cstdint>
#include <string>

#include "chaos/runner.h"
#include "chaos/schedule.h"

namespace osiris::chaos {

struct ShrinkResult {
  Schedule minimal;   // smallest still-failing schedule found
  Report report;      // the minimal schedule's run (with postmortem)
  bool reproduced = false;  // the input schedule failed when re-run
  int trials = 0;     // runs spent shrinking (bounded by max_trials)
};

/// Shrinks `failing` to a 1-minimal action set under `cfg`. When the
/// input does not reproduce a violation, returns it unshrunk with
/// reproduced = false. `max_trials` bounds the total number of runs.
ShrinkResult shrink(const Schedule& failing, const RunnerConfig& cfg,
                    int max_trials = 200);

/// Writes the replay artifact: the minimal schedule's serialization
/// followed by a human postmortem (violations, fault-plane summaries,
/// stats, trace tails) after the `end` line. Returns false when `path`
/// cannot be opened.
bool write_artifact(const std::string& path, const ShrinkResult& r);

}  // namespace osiris::chaos
