#include "chaos/schedule.h"

#include <array>
#include <iomanip>
#include <sstream>

namespace osiris::chaos {

namespace {

std::optional<fault::Point> point_from_name(const std::string& name) {
  for (int i = 0; i < static_cast<int>(fault::Point::kCount); ++i) {
    const auto p = static_cast<fault::Point>(i);
    if (name == fault::point_name(p)) return p;
  }
  return std::nullopt;
}

// "key=value" → value, or nullopt when the token's key differs.
std::optional<std::string> take(const std::string& token, const char* key) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return std::nullopt;
  return token.substr(prefix.size());
}

}  // namespace

bool is_tenant_point(fault::Point p) {
  switch (p) {
    case fault::Point::kAdcGarbageDescriptor:
    case fault::Point::kAdcFreeListPoison:
    case fault::Point::kAdcAppDeath:
    case fault::Point::kAdcRefillStall:
    case fault::Point::kTenantBurst:
      return true;
    default:
      return false;
  }
}

std::string Schedule::to_text() const {
  std::ostringstream os;
  os << "osiris-chaos-schedule v1\n";
  os << "seed " << seed << "\n";
  for (const Action& a : actions) {
    os << "action node=" << (a.node == 0 ? 'a' : 'b')
       << " point=" << fault::point_name(a.point) << " start=" << a.start
       << " end=" << a.end << " p=" << std::setprecision(17)
       << a.spec.probability << " after=" << a.spec.after
       << " budget=" << a.spec.budget << " wfrom=" << a.spec.window_from
       << " wuntil=" << a.spec.window_until << "\n";
  }
  os << "end\n";
  return os.str();
}

std::optional<Schedule> Schedule::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "osiris-chaos-schedule v1") {
    return std::nullopt;
  }
  Schedule sch;
  bool saw_seed = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "end") {
      saw_end = true;
      break;  // anything after `end` is postmortem commentary
    }
    if (word == "seed") {
      if (!(ls >> sch.seed)) return std::nullopt;
      saw_seed = true;
      continue;
    }
    if (word != "action") return std::nullopt;
    Action a;
    bool saw_node = false, saw_point = false;
    std::string tok;
    while (ls >> tok) {
      if (auto v = take(tok, "node")) {
        if (*v != "a" && *v != "b") return std::nullopt;
        a.node = (*v == "a") ? 0 : 1;
        saw_node = true;
      } else if (auto v2 = take(tok, "point")) {
        const auto p = point_from_name(*v2);
        if (!p) return std::nullopt;
        a.point = *p;
        saw_point = true;
      } else if (auto v3 = take(tok, "start")) {
        a.start = std::stoull(*v3);
      } else if (auto v4 = take(tok, "end")) {
        a.end = std::stoull(*v4);
      } else if (auto v5 = take(tok, "p")) {
        a.spec.probability = std::stod(*v5);
      } else if (auto v6 = take(tok, "after")) {
        a.spec.after = std::stoull(*v6);
      } else if (auto v7 = take(tok, "budget")) {
        a.spec.budget = std::stoull(*v7);
      } else if (auto v8 = take(tok, "wfrom")) {
        a.spec.window_from = std::stoull(*v8);
      } else if (auto v9 = take(tok, "wuntil")) {
        a.spec.window_until = std::stoull(*v9);
      } else {
        return std::nullopt;  // unknown key: refuse rather than misreplay
      }
    }
    if (!saw_node || !saw_point) return std::nullopt;
    sch.actions.push_back(a);
  }
  if (!saw_seed || !saw_end) return std::nullopt;
  return sch;
}

Schedule generate(std::uint64_t seed, const GenOptions& opt) {
  // Independent stream from the runner's traffic/fault RNGs: mixing in a
  // tag keeps the schedule shape decoupled from what the planes later draw.
  sim::Rng rng(seed ^ 0xC4A05'5C4EDULL);
  Schedule sch;
  sch.seed = seed;

  std::vector<fault::Point> pool = opt.eligible;
  if (pool.empty()) {
    for (int i = 0; i < static_cast<int>(fault::Point::kCount); ++i) {
      pool.push_back(static_cast<fault::Point>(i));
    }
  }

  const int n = opt.min_actions +
                static_cast<int>(rng.below(static_cast<std::uint64_t>(
                    opt.max_actions - opt.min_actions + 1)));
  for (int i = 0; i < n; ++i) {
    Action a;
    a.node = static_cast<int>(rng.below(2));
    a.point = pool[rng.below(pool.size())];
    // Arm inside the first 70% of the horizon so the fault overlaps live
    // traffic; disarm within ~40% after that (or never, 1 in 4).
    a.start = rng.below(opt.horizon * 7 / 10 + 1);
    a.end = rng.chance(0.25) ? 0
                             : a.start + sim::us(50) +
                                   rng.below(opt.horizon * 4 / 10 + 1);

    // Per-class spec shaping. Every budget is finite: a generated schedule
    // may degrade the run but can never stop it from draining (stall
    // points rely on the watchdog for rescue, so keep their budgets tiny).
    switch (a.point) {
      case fault::Point::kBoardRxStall:
      case fault::Point::kBoardTxStall:
        a.spec.probability = 0.0;
        a.spec.after = 1 + rng.below(400);
        a.spec.budget = 1 + rng.below(2);
        break;
      case fault::Point::kAdcAppDeath:
      case fault::Point::kAdcFreeListPoison:
      case fault::Point::kAdcGarbageDescriptor:
        // Channel-lethal tenant misbehaviour: one shot, late-ish.
        a.spec.probability = 0.0;
        a.spec.after = 1 + rng.below(60);
        a.spec.budget = 1;
        break;
      case fault::Point::kIrqLost:
      case fault::Point::kIrqSpurious:
      case fault::Point::kDpramStale:
      case fault::Point::kDescCorrupt:
        a.spec.probability = 0.002 + 0.02 * rng.uniform();
        a.spec.budget = 1 + rng.below(6);
        break;
      default:
        // Drop/error/overload class: frequent but budgeted.
        a.spec.probability = 0.005 + 0.045 * rng.uniform();
        a.spec.budget = 1 + rng.below(10);
        break;
    }
    // Occasionally add a consultation window on top, exercising the
    // window_from/window_until path.
    if (rng.chance(0.3)) {
      a.spec.window_from = 1 + rng.below(20);
      if (rng.chance(0.5)) {
        a.spec.window_until = a.spec.window_from + 1 + rng.below(200);
      }
    }
    sch.actions.push_back(a);
  }
  return sch;
}

}  // namespace osiris::chaos
