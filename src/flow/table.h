// Cache-conscious flow table for million-VCI early demultiplexing.
//
// The Rx firmware's per-cell work used to be five separate hash-map
// lookups (mapping, quota, held count, router, quarantine). At millions of
// concurrent VCIs those maps are five dependent cache misses per cell. The
// FlowTable replaces them with one open-addressed, fixed-arity, multi-way
// table: each bucket is exactly one 64-byte cache line holding eight
// (key, slot) pairs, so a demux probe touches one line and then reads one
// consolidated entry out of a stable slab (see DESIGN.md §13).
//
//  * Keys are 24-bit VCIs (or any value < 2^32 - 1); the full key is
//    stored in the bucket, so a tag match IS the key match — no secondary
//    verification read.
//  * Entries live in a slab indexed by bucket slots; slots are stable
//    across rehash, so entry state (quarantine bit, held counts, router)
//    survives growth untouched.
//  * Growth is power-of-two with INCREMENTAL rehash: grow() swaps in a
//    double-size bucket array and migrates a couple of old buckets per
//    subsequent operation, so no single cell ever pays an O(n) stall.
//    Because the hash uses top bits, old bucket i splits exactly into new
//    buckets 2i and 2i+1, and a lookup during migration probes at most
//    one extra line.
//  * A full target bucket (ninth colliding key) spills to a small
//    overflow list that is drained at the next growth; lookups scan it
//    only while it is non-empty, and its peak size is exported in stats.
//
// Iteration (for_each) walks the slab in slot order — a deterministic
// order that depends only on the operation history, never on hashing —
// which is what keeps serial and multi-threaded simulations bit-identical.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace osiris::flow {

/// Raw counters, cheap enough to maintain on the hot path; exported via
/// the obs registry (occupancy, probe length, rehash activity).
struct TableStats {
  std::uint64_t lookups = 0;          ///< find/insert/erase key searches
  std::uint64_t probed_buckets = 0;   ///< cache lines examined across lookups
  std::uint64_t max_probe = 0;        ///< worst single-lookup line count
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t rehashes = 0;         ///< growth events
  std::uint64_t migrated_buckets = 0; ///< buckets drained incrementally
  std::uint64_t forced_drains = 0;    ///< migrations finished non-incrementally
  std::uint64_t overflow_peak = 0;    ///< worst overflow-list length
};

template <class Entry>
class FlowTable {
 public:
  static constexpr std::uint32_t kWays = 8;
  static constexpr std::uint32_t kEmptyKey = 0xFFFFFFFFu;

  explicit FlowTable(std::uint32_t initial_buckets = 16) {
    std::uint32_t n = 1;
    unsigned log2 = 0;
    while (n < initial_buckets) {
      n <<= 1;
      ++log2;
    }
    shift_ = 32 - log2;
    buckets_.assign(n, empty_bucket());
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  /// Entry slots the current (new) bucket array can hold.
  [[nodiscard]] std::size_t capacity() const { return buckets_.size() * kWays; }
  [[nodiscard]] double load() const {
    return capacity() == 0 ? 0.0
                           : static_cast<double>(size_) /
                                 static_cast<double>(capacity());
  }
  [[nodiscard]] bool migration_pending() const { return !old_.empty(); }
  [[nodiscard]] std::size_t overflow_size() const { return overflow_.size(); }
  [[nodiscard]] const TableStats& stats() const { return stats_; }

  /// One-probe lookup; advances any pending migration by one bucket so
  /// lookup-heavy phases still converge to a single-table state.
  Entry* find(std::uint32_t key) {
    step_migration(1);
    return locate(key);
  }

  /// Const lookup: probes but never mutates (no migration step).
  const Entry* find(std::uint32_t key) const {
    return const_cast<FlowTable*>(this)->locate(key);
  }

  /// Finds or default-constructs the entry for `key`; second = freshly made.
  std::pair<Entry*, bool> insert(std::uint32_t key) {
    assert(key != kEmptyKey);
    step_migration(2);
    if (Entry* e = locate(key)) return {e, false};
    // Load-factor trigger (~75% of the new array) keeps full buckets rare.
    if ((size_ + 1) * 4 > capacity() * 3) grow();
    for (;;) {
      Bucket& b = buckets_[index_of(mix(key), shift_)];
      for (std::uint32_t w = 0; w < kWays; ++w) {
        if (b.key[w] == kEmptyKey) {
          const std::uint32_t s = alloc_slot(key);
          b.key[w] = key;
          b.slot[w] = s;
          ++size_;
          ++stats_.inserts;
          return {&slab_[s], true};
        }
      }
      grow();  // ninth colliding key: double and retry (overflow only
               // arises for keys displaced DURING a migration)
    }
  }

  bool erase(std::uint32_t key) {
    step_migration(2);
    ++stats_.lookups;
    const std::uint32_t h = mix(key);
    if (erase_from(buckets_[index_of(h, shift_)], key)) return true;
    if (!old_.empty()) {
      const std::uint32_t oi = index_of(h, old_shift_);
      if (oi >= migrate_pos_ && erase_from(old_[oi], key)) return true;
    }
    for (std::size_t i = 0; i < overflow_.size(); ++i) {
      if (overflow_[i].first == key) {
        free_slot(overflow_[i].second);
        overflow_.erase(overflow_.begin() + static_cast<std::ptrdiff_t>(i));
        --size_;
        ++stats_.erases;
        return true;
      }
    }
    return false;
  }

  /// Deterministic iteration in slab-slot order. `f(key, entry)` may erase
  /// the CURRENT key; it must not insert.
  template <class F>
  void for_each(F&& f) {
    for (std::size_t s = 0; s < slab_.size(); ++s) {
      if (slab_key_[s] != kEmptyKey) f(slab_key_[s], slab_[s]);
    }
  }
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t s = 0; s < slab_.size(); ++s) {
      if (slab_key_[s] != kEmptyKey) f(slab_key_[s], slab_[s]);
    }
  }

  /// Control-plane pre-sizing: grows (finishing migrations eagerly) until
  /// `n` entries fit below the load trigger. Not for the per-cell path.
  void reserve(std::size_t n) {
    while ((n + 1) * 4 > capacity() * 3) grow();
    finish_migration();
    old_.clear();
  }

 private:
  struct alignas(64) Bucket {
    std::uint32_t key[kWays];
    std::uint32_t slot[kWays];
  };
  static_assert(sizeof(Bucket) == 64, "bucket must be one cache line");

  static Bucket empty_bucket() {
    Bucket b;
    for (std::uint32_t w = 0; w < kWays; ++w) {
      b.key[w] = kEmptyKey;
      b.slot[w] = 0;
    }
    return b;
  }

  /// Fibonacci multiplicative hash; index from the TOP bits so doubling
  /// splits old bucket i into new buckets 2i / 2i+1.
  static std::uint32_t mix(std::uint32_t k) { return k * 0x9E3779B1u; }
  static std::uint32_t index_of(std::uint32_t h, unsigned shift) {
    return shift >= 32 ? 0 : h >> shift;
  }

  void note_probes(std::uint64_t probes) {
    stats_.probed_buckets += probes;
    if (probes > stats_.max_probe) stats_.max_probe = probes;
  }

  Entry* locate(std::uint32_t key) {
    ++stats_.lookups;
    const std::uint32_t h = mix(key);
    std::uint64_t probes = 1;
    Bucket& b = buckets_[index_of(h, shift_)];
    for (std::uint32_t w = 0; w < kWays; ++w) {
      if (b.key[w] == key) {
        note_probes(probes);
        return &slab_[b.slot[w]];
      }
      if (b.key[w] == kEmptyKey) break;  // ways are prefix-packed
    }
    if (!old_.empty()) {
      const std::uint32_t oi = index_of(h, old_shift_);
      if (oi >= migrate_pos_) {
        ++probes;
        Bucket& ob = old_[oi];
        for (std::uint32_t w = 0; w < kWays; ++w) {
          if (ob.key[w] == key) {
            note_probes(probes);
            return &slab_[ob.slot[w]];
          }
          if (ob.key[w] == kEmptyKey) break;
        }
      }
    }
    if (!overflow_.empty()) {
      ++probes;
      for (const auto& [k, s] : overflow_) {
        if (k == key) {
          note_probes(probes);
          return &slab_[s];
        }
      }
    }
    note_probes(probes);
    return nullptr;
  }

  bool erase_from(Bucket& b, std::uint32_t key) {
    for (std::uint32_t w = 0; w < kWays; ++w) {
      if (b.key[w] != key) continue;
      free_slot(b.slot[w]);
      // Compact so occupied ways stay a prefix (lets lookups early-break).
      std::uint32_t last = w;
      for (std::uint32_t v = w + 1; v < kWays && b.key[v] != kEmptyKey; ++v) {
        last = v;
      }
      b.key[w] = b.key[last];
      b.slot[w] = b.slot[last];
      b.key[last] = kEmptyKey;
      b.slot[last] = 0;
      --size_;
      ++stats_.erases;
      return true;
    }
    return false;
  }

  std::uint32_t alloc_slot(std::uint32_t key) {
    std::uint32_t s;
    if (!free_slots_.empty()) {
      s = free_slots_.back();
      free_slots_.pop_back();
      slab_[s] = Entry{};
    } else {
      s = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
      slab_key_.push_back(kEmptyKey);
    }
    slab_key_[s] = key;
    return s;
  }

  void free_slot(std::uint32_t s) {
    slab_[s] = Entry{};
    slab_key_[s] = kEmptyKey;
    free_slots_.push_back(s);
  }

  void place_new(std::uint32_t key, std::uint32_t slot) {
    Bucket& b = buckets_[index_of(mix(key), shift_)];
    for (std::uint32_t w = 0; w < kWays; ++w) {
      if (b.key[w] == kEmptyKey) {
        b.key[w] = key;
        b.slot[w] = slot;
        return;
      }
    }
    overflow_.emplace_back(key, slot);
    if (overflow_.size() > stats_.overflow_peak) {
      stats_.overflow_peak = overflow_.size();
    }
  }

  void migrate_bucket(std::uint32_t i) {
    Bucket& ob = old_[i];
    for (std::uint32_t w = 0; w < kWays && ob.key[w] != kEmptyKey; ++w) {
      place_new(ob.key[w], ob.slot[w]);
    }
    ob = empty_bucket();
    ++stats_.migrated_buckets;
  }

  void step_migration(std::uint32_t n) {
    if (old_.empty()) return;
    while (n-- > 0 && migrate_pos_ < old_.size()) {
      migrate_bucket(migrate_pos_++);
    }
    if (migrate_pos_ >= old_.size()) {
      old_.clear();
      migrate_pos_ = 0;
      drain_overflow();
    }
  }

  void finish_migration() {
    if (old_.empty()) return;
    if (migrate_pos_ < old_.size()) ++stats_.forced_drains;
    while (migrate_pos_ < old_.size()) migrate_bucket(migrate_pos_++);
    old_.clear();
    migrate_pos_ = 0;
    drain_overflow();
  }

  void drain_overflow() {
    if (overflow_.empty()) return;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> still;
    for (const auto& [key, slot] : overflow_) {
      Bucket& b = buckets_[index_of(mix(key), shift_)];
      bool placed = false;
      for (std::uint32_t w = 0; w < kWays; ++w) {
        if (b.key[w] == kEmptyKey) {
          b.key[w] = key;
          b.slot[w] = slot;
          placed = true;
          break;
        }
      }
      if (!placed) still.emplace_back(key, slot);
    }
    overflow_ = std::move(still);
  }

  void grow() {
    finish_migration();
    old_ = std::move(buckets_);
    old_shift_ = shift_;
    shift_ -= 1;
    buckets_.assign(old_.size() * 2, empty_bucket());
    migrate_pos_ = 0;
    ++stats_.rehashes;
  }

  std::vector<Bucket> buckets_;  // current array; all inserts land here
  unsigned shift_ = 32;          // index = hash >> shift_
  std::vector<Bucket> old_;      // non-empty while a rehash is in flight
  unsigned old_shift_ = 32;
  std::uint32_t migrate_pos_ = 0;
  // Keys displaced into a full new-table bucket during migration (rare).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> overflow_;

  std::vector<Entry> slab_;               // entries, stable slot indices
  std::vector<std::uint32_t> slab_key_;   // kEmptyKey = free slot
  std::vector<std::uint32_t> free_slots_;
  std::size_t size_ = 0;
  TableStats stats_;
};

}  // namespace osiris::flow
