// Open-addressed hash map for the per-PDU side tables (reassembly slots,
// driver accumulators). The hot paths here used to be std::map — an
// ordered red-black tree paying pointer-chasing and rebalancing per cell.
// OpenMap is a flat linear-probe table: power-of-two capacity, one
// contiguous key array + value array + state byte per slot, tombstone
// erase. These tables are small (tens to a few thousand in-flight PDUs),
// so growth rehashes in full — the incremental machinery lives in
// flow::FlowTable where the million-entry case is.
//
// Iteration order is a deterministic function of the operation history
// (hash of keys inserted, in insertion-resolved probe order), identical
// across serial and threaded runs of the same per-node event sequence.
// Callers that need history-independent order (none today) must sort.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace osiris::flow {

template <class V>
class OpenMap {
 public:
  OpenMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  V* find(std::uint64_t key) {
    if (size_ == 0) return nullptr;
    const std::size_t i = probe(key);
    return state_[i] == kFull ? &vals_[i] : nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<OpenMap*>(this)->find(key);
  }

  /// Finds or default-constructs; second = freshly made.
  std::pair<V*, bool> emplace(std::uint64_t key) {
    maybe_grow();
    const std::size_t i = probe(key);
    if (state_[i] == kFull) return {&vals_[i], false};
    if (state_[i] == kEmpty) ++used_;
    state_[i] = kFull;
    keys_[i] = key;
    vals_[i] = V{};
    ++size_;
    return {&vals_[i], true};
  }

  V& operator[](std::uint64_t key) { return *emplace(key).first; }

  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    const std::size_t i = probe(key);
    if (state_[i] != kFull) return false;
    state_[i] = kTomb;
    vals_[i] = V{};
    --size_;
    return true;
  }

  void clear() {
    keys_.clear();
    vals_.clear();
    state_.clear();
    size_ = used_ = 0;
  }

  /// f(key, value). Erasing the CURRENT key from inside f is safe
  /// (tombstones don't move surviving slots); inserting is not.
  template <class F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == kFull) f(keys_[i], vals_[i]);
    }
  }
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == kFull) f(keys_[i], vals_[i]);
    }
  }

  /// Erase every entry where pred(key, value) is true; returns count.
  template <class Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == kFull && pred(keys_[i], vals_[i])) {
        state_[i] = kTomb;
        vals_[i] = V{};
        --size_;
        ++n;
      }
    }
    return n;
  }

 private:
  static constexpr std::uint8_t kEmpty = 0, kFull = 1, kTomb = 2;

  static std::uint64_t mix(std::uint64_t k) {
    // splitmix64 finalizer: strong enough that packed (vci, sub) keys
    // spread even when only a few low/high bits vary.
    k ^= k >> 30;
    k *= 0xBF58476D1CE4E5B9ull;
    k ^= k >> 27;
    k *= 0x94D049BB133111EBull;
    k ^= k >> 31;
    return k;
  }

  /// Index of `key` if present, else of the slot an insert should use
  /// (first tombstone on the probe path, or the terminating empty slot).
  std::size_t probe(std::uint64_t key) const {
    assert(!state_.empty());
    const std::size_t mask = state_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    std::size_t first_tomb = state_.size();  // sentinel: none seen
    for (;;) {
      if (state_[i] == kFull && keys_[i] == key) return i;
      if (state_[i] == kEmpty) {
        return first_tomb != state_.size() ? first_tomb : i;
      }
      if (state_[i] == kTomb && first_tomb == state_.size()) first_tomb = i;
      i = (i + 1) & mask;
    }
  }

  void maybe_grow() {
    if (state_.empty()) {
      rehash(16);
      return;
    }
    // Count tombstones against the load factor so probe chains stay short.
    if ((used_ + 1) * 10 > state_.size() * 7) {
      std::size_t cap = state_.size();
      // Grow only if live entries justify it; otherwise same-size rehash
      // just clears tombstones.
      while ((size_ + 1) * 10 > cap * 5) cap *= 2;
      rehash(cap);
    }
  }

  void rehash(std::size_t cap) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    std::vector<std::uint8_t> old_state = std::move(state_);
    keys_.assign(cap, 0);
    vals_.assign(cap, V{});
    state_.assign(cap, kEmpty);
    used_ = size_;
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i] != kFull) continue;
      std::size_t j = static_cast<std::size_t>(mix(old_keys[i])) & mask;
      while (state_[j] == kFull) j = (j + 1) & mask;
      state_[j] = kFull;
      keys_[j] = old_keys[i];
      vals_[j] = std::move(old_vals[i]);
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<V> vals_;
  std::vector<std::uint8_t> state_;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live + tombstones
};

}  // namespace osiris::flow
