#include "atm/reassembly.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace osiris::atm {

// ---------------------------------------------------------------- SeqRouter

void SeqRouter::on_cell(int /*lane*/, const Cell& c, std::vector<Placement>& place,
                        std::vector<Completion>& done) {
  auto [pp, fresh] = pdus_.emplace(c.pdu_id);
  Pdu& p = *pp;
  if (fresh) {
    p.key = next_key_++;
  } else if (c.bom() && !p.have.empty() && p.have[0]) {
    // Replacement BOM: a fresh PDU's first cell landed on a pdu_id whose
    // previous reassembly never completed (its EOM was lost and the
    // 16-bit id space wrapped). Reclaim the stale state instead of
    // mistaking the new PDU's cells for duplicates.
    dropped_ += p.received;
    p = Pdu{};
    p.key = next_key_++;
  }

  if (p.have.size() <= c.seq) p.have.resize(c.seq + 1, false);
  if (p.have[c.seq]) {
    ++dropped_;  // duplicate seq: corrupted or wrapped id space
    return;
  }
  p.have[c.seq] = true;
  ++p.received;
  if (c.last_cell()) {
    p.ncells = static_cast<std::uint32_t>(c.seq) + 1;
    p.wire_bytes = static_cast<std::uint32_t>(c.seq) * kCellPayload + c.len;
  }

  place.push_back({p.key, static_cast<std::uint32_t>(c.seq) * kCellPayload, c});

  if (p.ncells != 0 && p.received == p.ncells) {
    done.push_back({p.key, p.wire_bytes});
    pdus_.erase(c.pdu_id);
  }
}

std::uint64_t SeqRouter::purge() {
  const auto n = static_cast<std::uint64_t>(pdus_.size());
  pdus_.for_each([this](std::uint64_t, const Pdu& p) { dropped_ += p.received; });
  pdus_.clear();
  return n;
}

// --------------------------------------------------------------- QuadRouter
//
// Lane attribution. Every PDU starts on lane 0 (the transmit firmware
// restarts its stripe rotation for each PDU), so cell `seq` travels on lane
// `seq % 4` and lane 0 carries at least one cell of every PDU. Lane 0's
// stream is therefore a complete, in-order sequence of PDU portions and is
// always attributable. Higher lanes skip short PDUs entirely; a cell at the
// start of a lane-l portion can be attributed to the lane's current PDU
// only once we can prove that PDU has (min bound) or lacks (max bound) a
// cell with seq == l. Bounds come from flags on already-placed cells:
//
//   placed cell seq s:            ncells >= s+1
//   ... without kFlagLastCell:    ncells >= s+2
//   ... with kFlagLastCell:       ncells == s+1 (exact)
//   ... with kFlagLaneEom:        ncells <= s+4 (no further cell on lane)
//   ... without kFlagLaneEom:     ncells >= s+5 (another cell on this lane)

QuadRouter::Pdu& QuadRouter::pdu_state(std::uint64_t idx) {
  // Indices only move forward; retired ones are never revisited.
  while (idx - base_ >= ring_.size()) ring_.emplace_back();
  return ring_[idx - base_];
}

std::size_t QuadRouter::inflight() const {
  std::size_t n = 0;
  for (const Pdu& p : ring_) {
    if (!p.completed && p.received > 0) ++n;
  }
  return n;
}

std::size_t QuadRouter::queued() const {
  std::size_t n = 0;
  for (const Lane& l : lanes_) n += l.queue.size();
  return n;
}

void QuadRouter::place_cell(int lane, const Cell& c, std::uint64_t pdu_idx,
                            std::uint32_t seq, std::vector<Placement>& place,
                            std::vector<Completion>& done) {
  Pdu& p = pdu_state(pdu_idx);
  ++p.received;

  // Tighten ncells bounds from this cell's flags.
  p.min_cells = std::max(p.min_cells, seq + 1);
  if (c.last_cell()) {
    p.ncells = seq + 1;
    p.min_cells = std::max(p.min_cells, p.ncells);
    p.max_cells = std::min(p.max_cells, p.ncells);
    p.wire_bytes = seq * kCellPayload + c.len;
  } else {
    p.min_cells = std::max(p.min_cells, seq + 2);
  }
  if (c.lane_eom()) {
    p.max_cells = std::min(p.max_cells, seq + kLanes);
  } else {
    p.min_cells = std::max(p.min_cells, seq + kLanes + 1);
  }

  place.push_back({pdu_idx, seq * kCellPayload, c});

  if (p.ncells != 0 && p.received == p.ncells) {
    done.push_back({pdu_idx, p.wire_bytes});
    p.completed = true;
  }

  // Advance this lane past the portion if it just ended.
  Lane& l = lanes_[lane];
  if (c.lane_eom()) {
    l.pdu = pdu_idx + 1;
    l.in_lane = 0;
  } else {
    l.in_lane = seq / kLanes + 1;
  }

  // Drop fully completed PDUs that no lane can still reference.
  while (!ring_.empty()) {
    if (!ring_.front().completed) break;
    bool referenced = false;
    for (const Lane& ln : lanes_) {
      if (ln.pdu <= base_) referenced = true;
    }
    if (referenced) break;
    ring_.pop_front();
    ++base_;
  }
}

void QuadRouter::drain(std::vector<Placement>& place, std::vector<Completion>& done) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (int lane = 0; lane < kLanes; ++lane) {
      Lane& l = lanes_[lane];
      while (!l.queue.empty()) {
        const Cell head = l.queue.front();
        if (l.in_lane > 0) {
          // Mid-portion: unambiguous continuation of the current PDU.
          l.queue.pop_front();
          place_cell(lane, head, l.pdu,
                     l.in_lane * kLanes + static_cast<std::uint32_t>(lane),
                     place, done);
          progress = true;
          continue;
        }
        // Portion start: the head is the first lane-`lane` cell of l.pdu
        // only if l.pdu provably has one; skip l.pdu if it provably lacks
        // one; otherwise wait for more information.
        if (lane == 0) {
          // Every PDU has a lane-0 cell; always attributable.
          l.queue.pop_front();
          place_cell(lane, head, l.pdu, static_cast<std::uint32_t>(lane),
                     place, done);
          progress = true;
          continue;
        }
        const Pdu& p = pdu_state(l.pdu);
        if (p.min_cells > static_cast<std::uint32_t>(lane)) {
          l.queue.pop_front();
          place_cell(lane, head, l.pdu, static_cast<std::uint32_t>(lane),
                     place, done);
          progress = true;
        } else if (p.max_cells <= static_cast<std::uint32_t>(lane)) {
          // l.pdu has no cell on this lane; try the next PDU.
          ++l.pdu;
          progress = true;
        } else {
          break;  // ambiguous; wait for bounds to tighten
        }
      }
    }
  }
}

std::uint64_t QuadRouter::purge() {
  std::uint64_t abandoned = 0;
  for (const Pdu& p : ring_) {
    if (!p.completed && p.received > 0) {
      ++abandoned;
      dropped_ += p.received;
    }
  }
  // Skip every lane past all state it might still reference; the next PDU
  // index must exceed any previously used one (placements are keyed by it).
  std::uint64_t next = 0;
  for (const Lane& l : lanes_) next = std::max(next, l.pdu);
  if (!ring_.empty()) next = std::max(next, base_ + ring_.size() - 1);
  ++next;
  for (Lane& l : lanes_) {
    dropped_ += l.queue.size();
    l.queue.clear();
    l.pdu = next;
    l.in_lane = 0;
  }
  ring_.clear();
  base_ = next;
  return abandoned;
}

void QuadRouter::on_cell(int lane, const Cell& c, std::vector<Placement>& place,
                         std::vector<Completion>& done) {
  if (lane < 0 || lane >= kLanes) {
    throw std::invalid_argument("QuadRouter: bad lane " + std::to_string(lane));
  }
  lanes_[lane].queue.push_back(c);
  drain(place, done);
}

std::unique_ptr<CellRouter> make_router(const char* strategy) {
  const std::string s = strategy;
  if (s == "seq") return std::make_unique<SeqRouter>();
  if (s == "quad") return std::make_unique<QuadRouter>();
  throw std::invalid_argument("make_router: unknown strategy " + s);
}

}  // namespace osiris::atm
