#include "atm/checksum.h"

#include <array>

namespace osiris::atm {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) {
  std::uint32_t c = state_;
  for (const std::uint8_t b : data) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

void InternetChecksum::update(std::span<const std::uint8_t> data) {
  for (const std::uint8_t b : data) {
    // Big-endian 16-bit words over the byte stream.
    sum_ += odd_ ? static_cast<std::uint64_t>(b)
                 : static_cast<std::uint64_t>(b) << 8;
    odd_ = !odd_;
  }
}

std::uint16_t InternetChecksum::value() const {
  std::uint64_t s = sum_;
  while ((s >> 16) != 0) s = (s & 0xFFFFu) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xFFFFu);
}

}  // namespace osiris::atm
