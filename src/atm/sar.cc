#include "atm/sar.h"

#include <algorithm>
#include <stdexcept>

namespace osiris::atm {

std::array<std::uint8_t, kTrailerBytes> encode_trailer(const Trailer& t) {
  return {
      static_cast<std::uint8_t>(t.pdu_len >> 24),
      static_cast<std::uint8_t>(t.pdu_len >> 16),
      static_cast<std::uint8_t>(t.pdu_len >> 8),
      static_cast<std::uint8_t>(t.pdu_len),
      static_cast<std::uint8_t>(t.crc >> 24),
      static_cast<std::uint8_t>(t.crc >> 16),
      static_cast<std::uint8_t>(t.crc >> 8),
      static_cast<std::uint8_t>(t.crc),
  };
}

std::optional<Trailer> decode_trailer(std::span<const std::uint8_t> wire_pdu) {
  if (wire_pdu.size() < kTrailerBytes) return std::nullopt;
  const auto t = wire_pdu.subspan(wire_pdu.size() - kTrailerBytes);
  Trailer out;
  out.pdu_len = (static_cast<std::uint32_t>(t[0]) << 24) |
                (static_cast<std::uint32_t>(t[1]) << 16) |
                (static_cast<std::uint32_t>(t[2]) << 8) | t[3];
  out.crc = (static_cast<std::uint32_t>(t[4]) << 24) |
            (static_cast<std::uint32_t>(t[5]) << 16) |
            (static_cast<std::uint32_t>(t[6]) << 8) | t[7];
  return out;
}

std::uint32_t cells_for(std::uint32_t pdu_len) {
  return (wire_len(pdu_len) + kCellPayload - 1) / kCellPayload;
}

Cell make_cell_header(Vci vci, std::uint16_t pdu_id, std::uint32_t seq,
                      std::uint32_t ncells, std::uint32_t wire_bytes) {
  if (seq >= ncells) throw std::invalid_argument("make_cell_header: seq >= ncells");
  Cell c;
  c.vci = vci;
  c.pdu_id = pdu_id;
  c.seq = static_cast<std::uint16_t>(seq);
  c.flags = 0;
  if (seq == 0) c.flags |= kFlagBom;
  if (seq + kLanes >= ncells) c.flags |= kFlagLaneEom;  // last on its lane
  if (seq + 1 == ncells) c.flags |= kFlagLastCell;
  const std::uint32_t offset = seq * kCellPayload;
  c.len = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(kCellPayload, wire_bytes - offset));
  return c;
}

void segment_into(std::span<const std::uint8_t> pdu, Vci vci,
                  std::uint16_t pdu_id, std::vector<Cell>& out) {
  Trailer t;
  t.pdu_len = static_cast<std::uint32_t>(pdu.size());
  t.crc = Crc32::of(pdu);
  const auto trailer = encode_trailer(t);

  // The wire byte stream is the user bytes followed by the trailer; each
  // cell's payload is filled straight from the caller's PDU span (no
  // staging copy of the whole stream).
  const std::uint32_t wire_bytes = wire_len(t.pdu_len);
  const std::uint32_t ncells = cells_for(t.pdu_len);
  out.clear();
  out.reserve(ncells);
  for (std::uint32_t s = 0; s < ncells; ++s) {
    Cell c = make_cell_header(vci, pdu_id, s, ncells, wire_bytes);
    const std::uint32_t offset = s * kCellPayload;
    const std::uint32_t user =
        offset < pdu.size()
            ? std::min<std::uint32_t>(c.len,
                                      static_cast<std::uint32_t>(pdu.size()) - offset)
            : 0;
    std::copy_n(pdu.begin() + offset, user, c.payload.begin());
    if (user < c.len) {  // tail bytes come from the trailer
      const std::uint32_t toff = offset + user - t.pdu_len;
      std::copy_n(trailer.begin() + toff, c.len - user, c.payload.begin() + user);
    }
    out.push_back(c);
  }
}

std::vector<Cell> segment(std::span<const std::uint8_t> pdu, Vci vci,
                          std::uint16_t pdu_id) {
  std::vector<Cell> out;
  segment_into(pdu, vci, pdu_id, out);
  return out;
}

bool PduAssembler::add(const Cell& c) {
  const std::uint32_t offset = static_cast<std::uint32_t>(c.seq) * kCellPayload;
  const std::uint32_t end = offset + c.len;
  if (bytes_.size() < end) bytes_.resize(end);
  if (have_.size() <= c.seq) have_.resize(c.seq + 1, false);
  if (have_[c.seq]) {
    // Duplicate delivery: accept only if identical.
    return std::equal(c.payload.begin(), c.payload.begin() + c.len,
                      bytes_.begin() + offset);
  }
  have_[c.seq] = true;
  ++received_;
  std::copy_n(c.payload.begin(), c.len, bytes_.begin() + offset);
  wire_bytes_ = std::max(wire_bytes_, end);
  if (c.last_cell()) ncells_ = static_cast<std::uint32_t>(c.seq) + 1;
  return true;
}

bool PduAssembler::complete() const {
  return ncells_.has_value() && received_ == *ncells_;
}

std::optional<std::vector<std::uint8_t>> PduAssembler::finish() {
  if (!complete()) return std::nullopt;
  const auto trailer = decode_trailer({bytes_.data(), bytes_.size()});
  if (!trailer) return std::nullopt;
  if (trailer->pdu_len + kTrailerBytes != wire_bytes_) return std::nullopt;
  if (Crc32::of({bytes_.data(), trailer->pdu_len}) != trailer->crc) {
    return std::nullopt;
  }
  bytes_.resize(trailer->pdu_len);  // trim trailer in place, then move out
  wire_bytes_ = 0;
  return std::move(bytes_);
}

}  // namespace osiris::atm
