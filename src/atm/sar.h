// Segmentation and (in-memory) reassembly primitives.
//
// The transmit firmware segments a PDU's byte stream into cells; the
// receive firmware maps cells back to byte offsets (see reassembly.h for
// the skew-tolerant offset logic). This header holds the pure, fully
// testable pieces: cell-boundary planning, trailer encode/decode, a
// reference segmenter, and a reference assembler used by tests and by the
// host-side verification path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "atm/cell.h"
#include "atm/checksum.h"

namespace osiris::atm {

/// AAL trailer carried in the final 8 payload bytes of the last cell.
struct Trailer {
  std::uint32_t pdu_len = 0;  // user PDU bytes (excluding the trailer itself)
  std::uint32_t crc = 0;      // CRC-32 over the user PDU bytes
};

/// Encodes `t` into 8 bytes (big-endian).
std::array<std::uint8_t, kTrailerBytes> encode_trailer(const Trailer& t);

/// Decodes a trailer from the last 8 bytes of `wire_pdu` (the byte stream
/// as it appears on the link: user bytes followed by the trailer).
std::optional<Trailer> decode_trailer(std::span<const std::uint8_t> wire_pdu);

/// Number of cells needed for a PDU of `pdu_len` user bytes (the trailer
/// adds kTrailerBytes to the wire length). `pdu_len` may be 0 (a trailer-
/// only PDU still takes one cell).
std::uint32_t cells_for(std::uint32_t pdu_len);

/// Wire length (user bytes + trailer) of a PDU.
constexpr std::uint32_t wire_len(std::uint32_t pdu_len) {
  return pdu_len + kTrailerBytes;
}

/// Fills in the header of cell `seq` of a PDU with `ncells` cells total:
/// sequence number, flags (BOM / per-lane EOM / last-cell), and payload
/// length for the given wire length. Payload bytes are NOT filled.
Cell make_cell_header(Vci vci, std::uint16_t pdu_id, std::uint32_t seq,
                      std::uint32_t ncells, std::uint32_t wire_bytes);

/// Reference segmenter: turns a user PDU into the full cell train,
/// computing the CRC-32 and appending the trailer. The board's transmit
/// firmware produces an identical train incrementally via DMA; tests
/// compare the two.
std::vector<Cell> segment(std::span<const std::uint8_t> pdu, Vci vci,
                          std::uint16_t pdu_id);

/// Allocation-free variant of segment(): fills `out` (cleared first) so a
/// hot caller can reuse one vector across PDUs. Cell payloads are written
/// straight from `pdu` plus the trailer tail — no staging copy of the wire
/// stream is made.
void segment_into(std::span<const std::uint8_t> pdu, Vci vci,
                  std::uint16_t pdu_id, std::vector<Cell>& out);

/// Reference assembler: collects cells (any order, identified by seq),
/// reconstructs the wire byte stream, verifies the trailer CRC, and
/// returns the user PDU bytes.
class PduAssembler {
 public:
  /// Adds one cell. Returns false if the cell is inconsistent (duplicate
  /// seq with different content, overflow).
  bool add(const Cell& c);

  /// True once every cell of the PDU has arrived.
  [[nodiscard]] bool complete() const;

  /// Extracts the user PDU by moving the assembled buffer out (the trailer
  /// is trimmed in place, not re-copied). Requires complete(); returns
  /// nullopt — leaving the assembler untouched — when the trailer or CRC
  /// check fails. After a successful finish() the assembler holds no bytes.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> finish();

  [[nodiscard]] std::uint32_t cells_received() const { return received_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<bool> have_;            // per-seq arrival bitmap
  std::uint32_t received_ = 0;
  std::optional<std::uint32_t> ncells_;
  std::uint32_t wire_bytes_ = 0;
};

}  // namespace osiris::atm
