// Checksums used in the simulation.
//
//  * CRC-32 (IEEE 802.3 polynomial, as used by AAL5): protects each PDU on
//    the wire; computed incrementally by the transmit firmware and verified
//    wherever the data is touched.
//  * Internet checksum (16-bit one's complement): the UDP-like protocol's
//    checksum, the mechanism the paper's lazy cache invalidation leans on
//    to detect stale cache data (§2.3).
#pragma once

#include <cstdint>
#include <span>

namespace osiris::atm {

/// Incremental IEEE CRC-32 (reflected, init 0xFFFFFFFF, final xor).
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data);
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

  static std::uint32_t of(std::span<const std::uint8_t> data) {
    Crc32 c;
    c.update(data);
    return c.value();
  }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// Incremental 16-bit one's-complement Internet checksum.
class InternetChecksum {
 public:
  /// Feeds bytes. May be called repeatedly; byte-stream position parity is
  /// tracked so odd-length chunks compose correctly.
  void update(std::span<const std::uint8_t> data);

  /// Final checksum value (one's complement of the running sum).
  [[nodiscard]] std::uint16_t value() const;

  void reset() {
    sum_ = 0;
    odd_ = false;
  }

  static std::uint16_t of(std::span<const std::uint8_t> data) {
    InternetChecksum c;
    c.update(data);
    return c.value();
  }

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;
};

}  // namespace osiris::atm
