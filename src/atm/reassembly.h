// Skew-tolerant cell routing — the two reassembly strategies of §2.6.
//
// The OSIRIS link stripes cells over four 155 Mbps sublinks ("lanes").
// Cells stay ordered *within* a lane but may be skewed *across* lanes. The
// receive firmware must compute, for each arriving cell, the byte offset
// within its PDU at which the payload is to be DMAed, and must detect PDU
// completion. Two strategies, as in the paper:
//
//  * Strategy A (SeqRouter): each cell carries an explicit (pdu_id, seq)
//    in its AAL header; placement is trivial, but the sequence-number
//    space is finite — under unbounded skew it can wrap (the drawback the
//    paper calls out).
//
//  * Strategy B (QuadRouter): no sequence numbers. Each PDU is treated as
//    four interleaved sub-packets, one per lane, each delimited AAL5-style
//    by a per-lane end-of-message framing bit, plus one extra ATM-header
//    bit marking the very last cell of the PDU (needed for PDUs shorter
//    than 4 cells). Offsets are derived from per-lane counters. Because a
//    short PDU is simply absent from the higher lanes, attributing a
//    lane's next cell to the right PDU requires constraint propagation
//    over cell-count bounds; this is precisely the complexity the paper
//    says was "difficult to implement in the small instruction budget".
//
// Both routers transform arrivals into Placement directives (write these
// payload bytes at this offset of this PDU) and Completion events. The
// board firmware maps placements to host physical addresses and DMA.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "atm/cell.h"
#include "flow/openmap.h"

namespace osiris::atm {

/// Directive: store `cell`'s payload at byte `offset` of PDU `pdu`.
struct Placement {
  std::uint64_t pdu = 0;  // router-local, monotonically increasing PDU key
  std::uint32_t offset = 0;
  Cell cell;
};

/// Event: PDU `pdu` is fully received; its wire length (user bytes +
/// trailer) is `wire_bytes`.
struct Completion {
  std::uint64_t pdu = 0;
  std::uint32_t wire_bytes = 0;
};

/// Per-VCI cell-routing strategy.
class CellRouter {
 public:
  virtual ~CellRouter() = default;

  /// Feeds one cell arriving on `lane`. Appends any placements that become
  /// determinable and any completions to the output vectors. (Strategy B
  /// may emit placements for previously queued cells of other lanes.)
  virtual void on_cell(int lane, const Cell& c, std::vector<Placement>& place,
                       std::vector<Completion>& done) = 0;

  [[nodiscard]] virtual const char* name() const = 0;

  /// PDUs currently being reassembled (for stats / overload tests).
  [[nodiscard]] virtual std::size_t inflight() const = 0;

  /// Garbage collection: discards all in-progress reassembly state (PDUs
  /// whose EOM cell was lost upstream, queued unattributed cells), counts
  /// the discarded cells into dropped(), and returns the number of
  /// incomplete PDUs abandoned. PDU keys stay monotonic across a purge so
  /// stale placements can never alias fresh ones.
  virtual std::uint64_t purge() = 0;

  /// Cells dropped as inconsistent (duplicates, bad state).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 protected:
  std::uint64_t dropped_ = 0;
};

/// Strategy A: explicit per-cell (pdu_id, seq).
class SeqRouter final : public CellRouter {
 public:
  void on_cell(int lane, const Cell& c, std::vector<Placement>& place,
               std::vector<Completion>& done) override;
  [[nodiscard]] const char* name() const override { return "seq"; }
  [[nodiscard]] std::size_t inflight() const override { return pdus_.size(); }
  std::uint64_t purge() override;

 private:
  struct Pdu {
    std::uint64_t key = 0;
    std::uint32_t received = 0;
    std::uint32_t ncells = 0;  // 0 = unknown (last cell not yet seen)
    std::uint32_t wire_bytes = 0;
    std::vector<bool> have;
  };

  // Active PDUs by 16-bit pdu_id. A flat open-addressed table: the old
  // std::map here was an ordered tree paying pointer chases per cell for
  // an ordering nothing needed.
  flow::OpenMap<Pdu> pdus_;
  std::uint64_t next_key_ = 0;
};

/// Strategy B: four concurrent per-lane AAL5 reassemblies.
class QuadRouter final : public CellRouter {
 public:
  void on_cell(int lane, const Cell& c, std::vector<Placement>& place,
               std::vector<Completion>& done) override;
  [[nodiscard]] const char* name() const override { return "quad"; }
  [[nodiscard]] std::size_t inflight() const override;
  std::uint64_t purge() override;

  /// Cells sitting in per-lane queues awaiting attribution (stats).
  [[nodiscard]] std::size_t queued() const;

 private:
  struct Pdu {
    std::uint32_t received = 0;
    std::uint32_t ncells = 0;      // 0 = unknown
    std::uint32_t min_cells = 1;   // lower bound on ncells
    std::uint32_t max_cells = ~0u; // upper bound on ncells
    std::uint32_t wire_bytes = 0;
    bool completed = false;
  };

  struct Lane {
    std::deque<Cell> queue;     // arrived, not yet attributed
    std::uint64_t pdu = 0;      // PDU index this lane is currently delivering
    std::uint32_t in_lane = 0;  // cells delivered for that PDU on this lane
  };

  Pdu& pdu_state(std::uint64_t idx);
  void place_cell(int lane, const Cell& c, std::uint64_t pdu_idx,
                  std::uint32_t seq, std::vector<Placement>& place,
                  std::vector<Completion>& done);
  /// Attempts to drain lane queues until no further attribution is possible.
  void drain(std::vector<Placement>& place, std::vector<Completion>& done);

  // PDU states live in a contiguous ring indexed by (idx - base_): PDU
  // indices are dense and monotonically increasing (lanes advance by +1,
  // purge jumps all lanes to one fresh index), and completed PDUs retire
  // strictly from the front — exactly a ring, no ordered map needed.
  std::deque<Pdu> ring_;
  std::uint64_t base_ = 0;  // PDU index of ring_.front()
  Lane lanes_[kLanes];
};

/// Factory by strategy name used in configs ("seq" | "quad").
std::unique_ptr<CellRouter> make_router(const char* strategy);

}  // namespace osiris::atm
