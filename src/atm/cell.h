// ATM cell model for the OSIRIS link.
//
// OSIRIS carries 44 bytes of payload per cell: the 48-byte ATM payload
// minus 4 bytes of AAL overhead (paper §2.5). Our AAL header carries, per
// cell: the VCI path (in the ATM header proper), a per-PDU cell sequence
// number and PDU identifier (used by skew strategy A, §2.6), framing flags
// (begin-of-message, per-lane end-of-message used by strategy B's four
// concurrent AAL5 reassemblies, and the ATM-header "very last cell" bit the
// paper proposes for short PDUs), and a payload length for partially filled
// cells.
//
// The last cell of every PDU carries an 8-byte trailer (PDU length +
// CRC-32) inside its payload, AAL5-style, so the trailer consumes real
// link bandwidth.
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>

namespace osiris::atm {

/// Virtual circuit identifier. Real ATM concatenates VPI (8 bits at the
/// UNI) and VCI (16 bits) into a 24-bit demux key; we address the full
/// 24-bit space end-to-end so a million-flow table is actually reachable.
using Vci = std::uint32_t;

/// Significant bits in a Vci. Values above kMaxVci are invalid on the wire.
constexpr unsigned kVciBits = 24;
constexpr Vci kMaxVci = (Vci{1} << kVciBits) - 1;

/// Packs a VCI plus a per-VCI subkey (PDU id, tag, ...) into one uint64
/// map key: vci in the top 24 bits, subkey in the low 40. The template
/// static_asserts that the vci argument arrives as a type wide enough for
/// 24 bits — so a call site still passing a uint16_t (the pre-widening
/// key type, which would silently truncate the VPI byte) fails to compile.
struct VciKey {
  static constexpr unsigned kSubBits = 40;
  static constexpr std::uint64_t kSubMask = (std::uint64_t{1} << kSubBits) - 1;

  template <class V>
  static constexpr std::uint64_t pack(V vci, std::uint64_t sub) {
    static_assert(std::is_unsigned_v<V> && sizeof(V) * 8 >= kVciBits + 1,
                  "vci argument would truncate a 24-bit VCI");
    return (static_cast<std::uint64_t>(vci) << kSubBits) | (sub & kSubMask);
  }
  static constexpr Vci vci_of(std::uint64_t key) {
    return static_cast<Vci>(key >> kSubBits);
  }
  static constexpr std::uint64_t sub_of(std::uint64_t key) {
    return key & kSubMask;
  }
};

/// Data bytes per cell (48-byte ATM payload minus 4 bytes AAL overhead).
constexpr std::uint32_t kCellPayload = 44;

/// Bytes a cell occupies on the wire (5-byte ATM header + 48-byte payload).
constexpr std::uint32_t kCellWire = 53;

/// Number of striped 155 Mbps sublinks forming the 622 Mbps logical link.
constexpr int kLanes = 4;

/// AAL trailer: 32-bit PDU length + CRC-32, carried in the final 8 payload
/// bytes of the last cell.
constexpr std::uint32_t kTrailerBytes = 8;

enum CellFlags : std::uint8_t {
  kFlagBom = 1u << 0,       // first cell of a PDU
  kFlagLaneEom = 1u << 1,   // last cell of this PDU on its lane (strategy B)
  kFlagLastCell = 1u << 2,  // very last cell of the PDU (ATM-header bit)
};

struct Cell {
  Vci vci = 0;  // 24 significant bits (VPI·VCI)
  std::uint16_t pdu_id = 0;  // per-VCI PDU identifier (strategy A)
  std::uint16_t seq = 0;     // cell index within the PDU (strategy A)
  std::uint8_t flags = 0;
  std::uint8_t len = 0;      // valid payload bytes, 1..44
  std::uint8_t hec = 0;      // header checksum, set by seal()
  std::array<std::uint8_t, kCellPayload> payload{};

  // Observability sidecar (simulation metadata, NOT wire bytes): excluded
  // from serialize_header()/encode_cell() and therefore from the HEC and
  // from link bandwidth accounting.  Both are simulated ticks, so they are
  // deterministic across serial and parallel runs.
  std::uint64_t t_origin = 0;  // sender driver-enqueue tick (0 = unstamped)
  std::uint64_t t_depart = 0;  // this cell's wire-departure tick

  [[nodiscard]] bool bom() const { return (flags & kFlagBom) != 0; }
  [[nodiscard]] bool lane_eom() const { return (flags & kFlagLaneEom) != 0; }
  [[nodiscard]] bool last_cell() const { return (flags & kFlagLastCell) != 0; }
};

/// Serializes the header fields (excluding hec) for HEC computation.
std::array<std::uint8_t, 9> serialize_header(const Cell& c);

/// 8-bit header checksum (stand-in for ATM HEC). A cell whose header was
/// corrupted in flight fails this check and is dropped by the receiver.
std::uint8_t header_check(const Cell& c);

/// Stamps the header checksum. Called by the transmit firmware.
inline void seal(Cell& c) { c.hec = header_check(c); }

/// Verifies the header checksum on arrival.
inline bool header_ok(const Cell& c) { return c.hec == header_check(c); }

}  // namespace osiris::atm
