// Byte-accurate 53-byte cell wire format.
//
// Layout (UNI cell format, with the OSIRIS AAL packed into the first four
// payload bytes — the overhead that leaves 44 data bytes per cell, §2.5):
//
//   byte 0   GFC(4) | VPI(4 high)          — GFC/VPI unused, zero
//   byte 1   VPI(4 low) | VCI(4 high)
//   byte 2   VCI(8 mid)
//   byte 3   VCI(4 low) | PTI(3) | CLP(1)
//   byte 4   HEC: CRC-8 (x^8+x^2+x+1) over bytes 0..3
//   byte 5   AAL: pdu_id high 8 (of 14)    — strategy A identity
//   ...      packed: pdu_id(14) seq(12) len(6)
//   byte 9.. 44 bytes of payload
//
// The three framing flags ride the PTI field as a bitfield: bit0 = BOM,
// bit1 = lane-EOM (strategy B's per-lane AAL5 framing), bit2 = last-cell
// (the extra ATM-header bit §2.6 proposes for short PDUs).
//
// Field widths bound what a cell can express: pdu_id wraps at 16384, seq
// at 4096 (a PDU may not exceed 4096 cells ≈ 176 KB), len at 44. encode()
// enforces these.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "atm/cell.h"

namespace osiris::atm {

using WireCell = std::array<std::uint8_t, kCellWire>;

/// Maximum per-PDU cell count expressible on the wire (12-bit seq).
constexpr std::uint32_t kMaxCellsPerPdu = 4096;

/// CRC-8 HEC (polynomial x^8 + x^2 + x + 1) over 4 header bytes.
std::uint8_t hec8(const std::uint8_t* header4);

/// Serializes a cell. Throws std::invalid_argument when a field exceeds
/// its wire width (seq >= 4096, pdu_id >= 16384, len > 44 or len == 0).
WireCell encode_cell(const Cell& c);

/// Parses 53 bytes. Returns nullopt if the HEC does not match (header
/// corrupted in flight) or a field is malformed. The returned cell is
/// sealed (header_ok() holds).
std::optional<Cell> decode_cell(const WireCell& w);

}  // namespace osiris::atm
