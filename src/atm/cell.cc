#include "atm/cell.h"

namespace osiris::atm {

std::array<std::uint8_t, 9> serialize_header(const Cell& c) {
  return {
      static_cast<std::uint8_t>((c.vci >> 16) & 0xFF),
      static_cast<std::uint8_t>((c.vci >> 8) & 0xFF),
      static_cast<std::uint8_t>(c.vci & 0xFF),
      static_cast<std::uint8_t>(c.pdu_id >> 8),
      static_cast<std::uint8_t>(c.pdu_id & 0xFF),
      static_cast<std::uint8_t>(c.seq >> 8),
      static_cast<std::uint8_t>(c.seq & 0xFF),
      c.flags,
      c.len,
  };
}

std::uint8_t header_check(const Cell& c) {
  // Simple xor-rotate over the serialized header; adequate as an error
  // *detector* stand-in for the ATM HEC in a simulation.
  std::uint8_t h = 0x5A;
  for (const std::uint8_t b : serialize_header(c)) {
    h = static_cast<std::uint8_t>(((h << 1) | (h >> 7)) ^ b);
  }
  return h;
}

}  // namespace osiris::atm
