#include "atm/wire.h"

#include <stdexcept>

namespace osiris::atm {

namespace {

constexpr std::uint8_t kPtiBom = 1u << 0;
constexpr std::uint8_t kPtiLaneEom = 1u << 1;
constexpr std::uint8_t kPtiLast = 1u << 2;

constexpr std::array<std::uint8_t, 256> make_hec_table() {
  std::array<std::uint8_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t crc = static_cast<std::uint8_t>(i);
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 0x80) != 0
                ? static_cast<std::uint8_t>((crc << 1) ^ 0x07)  // x^8+x^2+x+1
                : static_cast<std::uint8_t>(crc << 1);
    }
    t[static_cast<std::size_t>(i)] = crc;
  }
  return t;
}

constexpr auto kHecTable = make_hec_table();

}  // namespace

std::uint8_t hec8(const std::uint8_t* header4) {
  std::uint8_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc = kHecTable[static_cast<std::uint8_t>(crc ^ header4[i])];
  }
  // ITU I.432 adds a coset leader so an all-zero header has a non-zero HEC.
  return static_cast<std::uint8_t>(crc ^ 0x55);
}

WireCell encode_cell(const Cell& c) {
  if (c.seq >= kMaxCellsPerPdu) {
    throw std::invalid_argument("encode_cell: seq exceeds 12-bit wire field");
  }
  if (c.pdu_id >= (1u << 14)) {
    throw std::invalid_argument("encode_cell: pdu_id exceeds 14-bit wire field");
  }
  if (c.len == 0 || c.len > kCellPayload) {
    throw std::invalid_argument("encode_cell: bad payload length");
  }
  if (c.vci > kMaxVci) {
    throw std::invalid_argument("encode_cell: vci exceeds 24-bit wire field");
  }

  WireCell w{};
  // ATM UNI header: GFC=0, then the 24-bit VPI·VCI concatenation spanning
  // bytes 0..3, PTI = flag bits, CLP=0.
  w[0] = static_cast<std::uint8_t>((c.vci >> 20) & 0x0F);
  w[1] = static_cast<std::uint8_t>((c.vci >> 12) & 0xFF);
  w[2] = static_cast<std::uint8_t>((c.vci >> 4) & 0xFF);
  std::uint8_t pti = 0;
  if (c.bom()) pti |= kPtiBom;
  if (c.lane_eom()) pti |= kPtiLaneEom;
  if (c.last_cell()) pti |= kPtiLast;
  w[3] = static_cast<std::uint8_t>(((c.vci & 0x0F) << 4) | (pti << 1));
  w[4] = hec8(w.data());

  // OSIRIS AAL header: pdu_id(14) seq(12) len(6), packed big-endian.
  const std::uint32_t aal = (static_cast<std::uint32_t>(c.pdu_id) << 18) |
                            (static_cast<std::uint32_t>(c.seq) << 6) |
                            (c.len == kCellPayload ? 0u : c.len);
  w[5] = static_cast<std::uint8_t>(aal >> 24);
  w[6] = static_cast<std::uint8_t>(aal >> 16);
  w[7] = static_cast<std::uint8_t>(aal >> 8);
  w[8] = static_cast<std::uint8_t>(aal);

  std::copy(c.payload.begin(), c.payload.begin() + c.len, w.begin() + 9);
  return w;
}

std::optional<Cell> decode_cell(const WireCell& w) {
  if (hec8(w.data()) != w[4]) return std::nullopt;

  Cell c;
  c.vci = (static_cast<Vci>(w[0] & 0x0F) << 20) |
          (static_cast<Vci>(w[1]) << 12) | (static_cast<Vci>(w[2]) << 4) |
          ((w[3] >> 4) & 0x0F);
  const std::uint8_t pti = static_cast<std::uint8_t>((w[3] >> 1) & 0x07);
  c.flags = 0;
  if ((pti & kPtiBom) != 0) c.flags |= kFlagBom;
  if ((pti & kPtiLaneEom) != 0) c.flags |= kFlagLaneEom;
  if ((pti & kPtiLast) != 0) c.flags |= kFlagLastCell;

  const std::uint32_t aal = (static_cast<std::uint32_t>(w[5]) << 24) |
                            (static_cast<std::uint32_t>(w[6]) << 16) |
                            (static_cast<std::uint32_t>(w[7]) << 8) | w[8];
  c.pdu_id = static_cast<std::uint16_t>((aal >> 18) & 0x3FFF);
  c.seq = static_cast<std::uint16_t>((aal >> 6) & 0x0FFF);
  const std::uint32_t len6 = aal & 0x3F;
  if (len6 > kCellPayload) return std::nullopt;
  c.len = static_cast<std::uint8_t>(len6 == 0 ? kCellPayload : len6);

  std::copy(w.begin() + 9, w.begin() + 9 + c.len, c.payload.begin());
  seal(c);
  return c;
}

}  // namespace osiris::atm
