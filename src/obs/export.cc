#include "obs/export.h"

#include <fstream>

#include "sim/time.h"

namespace osiris::obs {

namespace {

double us(sim::Tick t) { return sim::to_us(t); }

void write_instant(std::ostream& os, bool& first, const std::string& node,
                   const sim::TraceEvent& e) {
  os << (first ? "" : ",") << "\n  {\"name\": \"" << e.component << "."
     << e.event << "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << us(e.at)
     << ", \"pid\": 1, \"tid\": \"" << node
     << "/trace\", \"args\": {\"a\": " << e.a << ", \"b\": " << e.b << "}}";
  first = false;
}

void write_span(std::ostream& os, bool& first, const std::string& node,
                const PduSpans::Span& s) {
  // Unstamped spans (generator traffic) still show the rx-side window.
  const sim::Tick begin = s.origin > 0 ? s.origin : s.pushed;
  if (begin == 0 || s.delivered < begin) return;
  os << (first ? "" : ",") << "\n  {\"name\": \"pdu vci=" << s.vci
     << " tag=" << static_cast<unsigned>(s.tag)
     << "\", \"ph\": \"X\", \"ts\": " << us(begin)
     << ", \"dur\": " << us(s.delivered - begin)
     << ", \"pid\": 1, \"tid\": \"" << node << "/pdu\", \"args\": {"
     << "\"origin_us\": " << us(s.origin)
     << ", \"pushed_us\": " << us(s.pushed)
     << ", \"delivered_us\": " << us(s.delivered) << "}}";
  first = false;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceSource>& srcs) {
  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  for (const TraceSource& src : srcs) {
    if (src.trace != nullptr) {
      for (const sim::TraceEvent& e : src.trace->events()) {
        write_instant(os, first, src.name, e);
      }
    }
    if (src.spans != nullptr) {
      for (const PduSpans::Span& s : src.spans->completed_spans()) {
        write_span(os, first, src.name, s);
      }
    }
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceSource>& srcs) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f, srcs);
  return f.good();
}

}  // namespace osiris::obs
