// Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
//
// Two sources feed one trace file:
//   - sim::Trace rings become instant events (ph "i"), one per record, on
//     a per-node "trace" thread row;
//   - PduSpans completed spans become duration events (ph "X"), one per
//     delivered PDU, on a per-node "pdu" thread row, with the per-stage
//     split attached as args.
//
// Timestamps are microseconds of simulated time (Chrome's expected unit);
// sub-microsecond precision is kept as fractional ts, which both viewers
// accept.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/spans.h"
#include "sim/trace.h"

namespace osiris::obs {

/// One named source row in the exported trace.
struct TraceSource {
  std::string name;                  // e.g. "node-a"
  const sim::Trace* trace = nullptr; // optional
  const PduSpans* spans = nullptr;   // optional
};

/// Writes a complete Chrome trace-event JSON document.
void write_chrome_trace(std::ostream& os, const std::vector<TraceSource>& srcs);

/// Convenience: writes to `path`; returns false on I/O failure.
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceSource>& srcs);

}  // namespace osiris::obs
