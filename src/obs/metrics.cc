#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace osiris::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Snapshot::Hist summarize(const std::string& name, const std::string& unit,
                         const sim::Log2Histogram& h) {
  Snapshot::Hist out;
  out.name = name;
  out.unit = unit;
  out.count = h.count();
  out.min = h.min();
  out.max = h.max();
  out.sum = h.sum();
  out.mean = h.mean();
  out.p50 = h.quantile(0.50);
  out.p90 = h.quantile(0.90);
  out.p99 = h.quantile(0.99);
  out.p999 = h.quantile(0.999);
  return out;
}

std::string Snapshot::to_text() const {
  std::ostringstream os;
  std::size_t w = 0;
  for (const auto& c : counters) w = std::max(w, c.name.size());
  for (const auto& g : gauges) w = std::max(w, g.name.size());
  for (const auto& h : hists) w = std::max(w, h.name.size());
  const int width = static_cast<int>(w);
  for (const auto& c : counters) {
    os << "  ";
    os.width(width);
    os << std::left << c.name << "  " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    os << "  ";
    os.width(width);
    os << std::left << g.name << "  " << g.value << "\n";
  }
  for (const auto& h : hists) {
    os << "  ";
    os.width(width);
    os << std::left << h.name << "  n=" << h.count;
    if (h.count > 0) {
      os << " p50=" << h.p50 << " p90=" << h.p90 << " p99=" << h.p99
         << " p999=" << h.p999 << " max=" << h.max << " " << h.unit;
    }
    os << "\n";
  }
  return os.str();
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(counters[i].name)
       << "\": " << counters[i].value;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(gauges[i].name)
       << "\": " << gauges[i].value;
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < hists.size(); ++i) {
    const Hist& h = hists[i];
    os << (i ? "," : "") << "\n    \"" << json_escape(h.name) << "\": {"
       << "\"unit\": \"" << json_escape(h.unit) << "\", "
       << "\"count\": " << h.count << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"sum\": " << h.sum
       << ", \"mean\": " << h.mean << ", \"p50\": " << h.p50
       << ", \"p90\": " << h.p90 << ", \"p99\": " << h.p99
       << ", \"p999\": " << h.p999 << "}";
  }
  os << (hists.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void Registry::counter(std::string name, const std::uint64_t* source) {
  for (auto& e : counters_) {
    if (e.name == name) {
      e.source = source;
      return;
    }
  }
  counters_.push_back({std::move(name), source});
}

void Registry::gauge(std::string name, std::function<double()> fn) {
  for (auto& e : gauges_) {
    if (e.name == name) {
      e.fn = std::move(fn);
      return;
    }
  }
  gauges_.push_back({std::move(name), std::move(fn)});
}

sim::Log2Histogram* Registry::histogram(std::string name, std::string unit) {
  for (auto& e : hists_) {
    if (e.name == name && e.owned) return e.owned.get();
  }
  HistEntry e;
  e.name = std::move(name);
  e.unit = std::move(unit);
  e.source = nullptr;
  e.owned = std::make_unique<sim::Log2Histogram>();
  hists_.push_back(std::move(e));
  return hists_.back().owned.get();
}

void Registry::histogram_ref(std::string name, const sim::Log2Histogram* h,
                             std::string unit) {
  for (auto& e : hists_) {
    if (e.name == name) {
      e.source = h;
      e.owned.reset();
      e.unit = std::move(unit);
      return;
    }
  }
  HistEntry e;
  e.name = std::move(name);
  e.unit = std::move(unit);
  e.source = h;
  hists_.push_back(std::move(e));
}

Snapshot Registry::snapshot() const {
  return aggregate({this});
}

Snapshot aggregate(const std::vector<const Registry*>& shards) {
  // std::map keeps the output sorted by name, which makes snapshots
  // diffable across runs regardless of registration order.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  struct MergedHist {
    std::string unit;
    sim::Log2Histogram h;
  };
  std::map<std::string, MergedHist> hists;
  for (const Registry* r : shards) {
    if (r == nullptr) continue;
    for (const auto& c : r->counters()) counters[c.name] += *c.source;
    for (const auto& g : r->gauges()) gauges[g.name] += g.fn ? g.fn() : 0.0;
    for (const auto& h : r->hists()) {
      auto& m = hists[h.name];
      if (m.unit.empty()) m.unit = h.unit;
      m.h.merge(h.get());
    }
  }
  Snapshot out;
  out.counters.reserve(counters.size());
  for (const auto& [name, v] : counters) out.counters.push_back({name, v});
  out.gauges.reserve(gauges.size());
  for (const auto& [name, v] : gauges) out.gauges.push_back({name, v});
  out.hists.reserve(hists.size());
  for (const auto& [name, m] : hists) {
    out.hists.push_back(summarize(name, m.unit, m.h));
  }
  return out;
}

}  // namespace osiris::obs
