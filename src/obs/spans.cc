#include "obs/spans.h"

#include <algorithm>

#include "obs/metrics.h"

namespace osiris::obs {

namespace {
constexpr std::uint64_t rx_key(atm::Vci vci, std::uint8_t tag) {
  return atm::VciKey::pack(vci, tag);
}
}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kEnqueueToDpram: return "enqueue_to_dpram";
    case Stage::kSegment: return "segment";
    case Stage::kWire: return "wire";
    case Stage::kReassemble: return "reassemble";
    case Stage::kRxDma: return "rx_dma";
    case Stage::kDeliver: return "deliver";
    case Stage::kEndToEnd: return "e2e";
    case Stage::kCount: break;
  }
  return "?";
}

void PduSpans::tx_enqueued(int channel, sim::Tick at) {
  auto& fifo = tx_fifo_[channel];
  // Best-effort bound: if the firmware never drains (wedged queue), the
  // oldest stamps are the ones that will never be matched anyway.
  if (fifo.size() >= kTxFifoCap) fifo.pop_front();
  fifo.push_back(at);
}

sim::Tick PduSpans::take_tx_enqueue(int channel) {
  auto it = tx_fifo_.find(channel);
  if (it == tx_fifo_.end() || it->second.empty()) return 0;
  const sim::Tick at = it->second.front();
  it->second.pop_front();
  return at;
}

void PduSpans::rx_pushed(atm::Vci vci, std::uint8_t tag, sim::Tick origin,
                         sim::Tick pushed) {
  rx_pending_[rx_key(vci, tag)] = RxEntry{origin, pushed};
}

void PduSpans::rx_aborted(atm::Vci vci, std::uint8_t tag) {
  rx_pending_.erase(rx_key(vci, tag));
}

void PduSpans::rx_delivered(atm::Vci vci, std::uint8_t tag, sim::Tick at) {
  auto it = rx_pending_.find(rx_key(vci, tag));
  if (it == rx_pending_.end()) return;
  const RxEntry e = it->second;
  rx_pending_.erase(it);
  if (at >= e.pushed && e.pushed > 0) {
    record(Stage::kDeliver, at - e.pushed);
  }
  if (e.origin > 0 && at >= e.origin) {
    const std::uint64_t dt = at - e.origin;
    record(Stage::kEndToEnd, dt);
    auto vit = vci_e2e_.find(vci);
    if (vit != vci_e2e_.end()) vit->second.record(dt);
  }
  ++spans_seen_;
  if (ring_cap_ > 0) {
    if (ring_.size() >= ring_cap_) {
      ring_[spans_seen_ % ring_cap_] = Span{vci, tag, e.origin, e.pushed, at};
    } else {
      ring_.push_back(Span{vci, tag, e.origin, e.pushed, at});
    }
  }
}

void PduSpans::enable_vci(atm::Vci vci) { vci_e2e_.try_emplace(vci); }

const sim::Log2Histogram* PduSpans::vci_e2e(atm::Vci vci) const {
  auto it = vci_e2e_.find(vci);
  return it == vci_e2e_.end() ? nullptr : &it->second;
}

std::vector<PduSpans::Span> PduSpans::completed_spans() const {
  std::vector<Span> out = ring_;
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.delivered < b.delivered;
  });
  return out;
}

void PduSpans::set_span_capacity(std::size_t cap) {
  ring_cap_ = cap;
  if (ring_.size() > cap) ring_.resize(cap);
}

void PduSpans::register_into(Registry& reg, const std::string& prefix) const {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Stage::kCount); ++i) {
    reg.histogram_ref(prefix + stage_name(static_cast<Stage>(i)), &stages_[i],
                      "ticks");
  }
  for (const auto& [vci, hist] : vci_e2e_) {
    reg.histogram_ref(prefix + "e2e.vci" + std::to_string(vci), &hist,
                      "ticks");
  }
}

void PduSpans::merge_stages(const PduSpans& other) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Stage::kCount); ++i) {
    stages_[i].merge(other.stages_[i]);
  }
  for (const auto& [vci, hist] : other.vci_e2e_) {
    vci_e2e_[vci].merge(hist);
  }
}

}  // namespace osiris::obs
