// Metrics registry: named counters, gauges and log2-bucketed histograms.
//
// The registry is a *naming* layer, not a storage layer: hot paths keep
// owning their own counters (a `++member_` stays a `++member_`), and the
// registry holds pointers it reads only at snapshot() time.  Histograms can
// either be owned by the registry (histogram() returns a stable pointer the
// caller records into, allocation-free) or referenced (histogram_ref(), for
// histograms owned elsewhere, e.g. PduSpans stages).
//
// Sharding: under sim::EngineGroup every node's state — including its
// metrics — is thread-confined to the partition that owns it.  Give each
// node its own Registry and aggregate on read with obs::aggregate(), which
// sums counters/gauges and merges histogram buckets by name.  No locks, no
// atomics, no cross-thread writes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace osiris::obs {

/// Point-in-time rendering of a Registry (or an aggregate of several).
struct Snapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    double value = 0;
  };
  struct Hist {
    std::string name;
    std::string unit;
    std::uint64_t count = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    double mean = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    double p999 = 0;
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Hist> hists;

  /// Aligned human-readable table.
  [[nodiscard]] std::string to_text() const;
  /// Single JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;
};

/// Fills a Snapshot::Hist's derived fields from a histogram.
Snapshot::Hist summarize(const std::string& name, const std::string& unit,
                         const sim::Log2Histogram& h);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers a pull-model counter: the pointee is read at snapshot time
  /// and must outlive the registry.  Re-registering a name replaces it.
  void counter(std::string name, const std::uint64_t* source);

  /// Registers a computed gauge (evaluated at snapshot time).
  void gauge(std::string name, std::function<double()> fn);

  /// Creates (or finds) a registry-owned histogram; the returned pointer is
  /// stable for the registry's lifetime and is what hot paths record into.
  sim::Log2Histogram* histogram(std::string name, std::string unit = "ticks");

  /// Registers a histogram owned elsewhere; it must outlive the registry.
  void histogram_ref(std::string name, const sim::Log2Histogram* h,
                     std::string unit = "ticks");

  [[nodiscard]] Snapshot snapshot() const;

  // Entry introspection for aggregate(); values read lazily.
  struct CounterEntry {
    std::string name;
    const std::uint64_t* source;
  };
  struct GaugeEntry {
    std::string name;
    std::function<double()> fn;
  };
  struct HistEntry {
    std::string name;
    std::string unit;
    const sim::Log2Histogram* source;       // set for refs
    std::unique_ptr<sim::Log2Histogram> owned;  // set for owned
    [[nodiscard]] const sim::Log2Histogram& get() const {
      return owned ? *owned : *source;
    }
  };
  [[nodiscard]] const std::vector<CounterEntry>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::vector<GaugeEntry>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::vector<HistEntry>& hists() const { return hists_; }

 private:
  std::vector<CounterEntry> counters_;
  std::vector<GaugeEntry> gauges_;
  std::vector<HistEntry> hists_;
};

/// Aggregates per-shard registries by name: counters and gauges sum,
/// histograms merge bucket-wise (so quantiles reflect the union of samples).
[[nodiscard]] Snapshot aggregate(const std::vector<const Registry*>& shards);

}  // namespace osiris::obs
