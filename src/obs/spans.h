// PDU lifecycle spans: per-stage latency histograms over simulated time.
//
// A span follows one PDU from the moment the driver enqueues it until the
// peer driver hands it to the receive upcall.  The stamps ride the
// simulation's own data path — atm::Cell carries the origin tick through
// segmentation, the wire and reassembly — so spans measure exactly what the
// zero-copy cell path does, and the stamps are simulated ticks (never wall
// clock), which keeps parallel runs bit-identical to serial ones.
//
// Stage boundaries (all durations in ticks):
//   enqueue_to_dpram  driver send()            -> firmware starts the PDU
//   segment           firmware start           -> last cell departs the wire
//   wire              per-cell departure       -> peer board accepts the cell
//   reassemble        first cell accepted      -> PDU completion detected
//   rx_dma            first cell accepted      -> last Rx DMA issued
//   deliver           Rx descriptor pushed     -> driver delivers the PDU
//   e2e               driver send()            -> peer driver delivers
//
// A PduSpans instance is thread-confined, like sim::Trace: attach one per
// node (NodeConfig::spans) and aggregate on read.  All lookups are guarded —
// unmatched or partially-stamped PDUs (generator traffic, aborted or evicted
// PDUs, adaptor resets) simply contribute nothing to the affected stages.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "atm/cell.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace osiris::obs {

class Registry;

enum class Stage : std::uint8_t {
  kEnqueueToDpram = 0,
  kSegment,
  kWire,
  kReassemble,
  kRxDma,
  kDeliver,
  kEndToEnd,
  kCount,
};

[[nodiscard]] const char* stage_name(Stage s);

class PduSpans {
 public:
  PduSpans() = default;
  PduSpans(const PduSpans&) = delete;
  PduSpans& operator=(const PduSpans&) = delete;

  // ---- Tx side -------------------------------------------------------
  /// Driver stamped a send on `channel` at tick `at` (order-preserving
  /// FIFO per channel: firmware starts PDUs of one channel in send order).
  void tx_enqueued(int channel, sim::Tick at);

  /// Firmware is starting the next PDU of `channel`; returns the matching
  /// enqueue tick, or 0 if none is pending (e.g. spans attached mid-run).
  sim::Tick take_tx_enqueue(int channel);

  /// Records a duration sample into a stage histogram.
  void record(Stage s, std::uint64_t dt) {
    stages_[static_cast<std::size_t>(s)].record(dt);
  }

  // ---- Rx side -------------------------------------------------------
  /// Rx firmware pushed the EOP descriptor of PDU (vci, tag) at `pushed`;
  /// `origin` is the sender's driver-enqueue tick carried by its cells
  /// (0 if the PDU was never stamped).
  void rx_pushed(atm::Vci vci, std::uint8_t tag, sim::Tick origin,
                 sim::Tick pushed);

  /// The PDU (vci, tag) was aborted before delivery; drop its entry.
  void rx_aborted(atm::Vci vci, std::uint8_t tag);

  /// Driver delivered PDU (vci, tag) at `at`: records deliver and, when the
  /// origin stamp survived, the end-to-end distribution (plus the per-VCI
  /// family if `vci` was enabled via enable_vci).
  void rx_delivered(atm::Vci vci, std::uint8_t tag, sim::Tick at);

  /// Starts a per-VCI end-to-end histogram family member for `vci`.
  void enable_vci(atm::Vci vci);

  // ---- Read side -----------------------------------------------------
  [[nodiscard]] const sim::Log2Histogram& stage(Stage s) const {
    return stages_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const sim::Log2Histogram* vci_e2e(atm::Vci vci) const;
  [[nodiscard]] const std::unordered_map<atm::Vci, sim::Log2Histogram>&
  vci_families() const {
    return vci_e2e_;
  }

  /// Completed end-to-end spans (bounded ring, oldest dropped) for Chrome
  /// trace-event export.
  struct Span {
    atm::Vci vci = 0;
    std::uint8_t tag = 0;
    sim::Tick origin = 0;     // sender driver enqueue (0 = unstamped)
    sim::Tick pushed = 0;     // Rx EOP descriptor push
    sim::Tick delivered = 0;  // receiver driver delivery
  };
  [[nodiscard]] std::vector<Span> completed_spans() const;
  [[nodiscard]] std::uint64_t spans_recorded() const { return spans_seen_; }
  void set_span_capacity(std::size_t cap);

  /// Registers every stage histogram (and per-VCI families) into `reg`
  /// under `prefix` (e.g. "a.span.").  Refs only; `this` must outlive reads.
  void register_into(Registry& reg, const std::string& prefix) const;

  /// Folds all of `other`'s stage histograms into `this` (for merging the
  /// two directions of a testbed before printing).
  void merge_stages(const PduSpans& other);

 private:
  static constexpr std::size_t kTxFifoCap = 4096;

  sim::Log2Histogram stages_[static_cast<std::size_t>(Stage::kCount)];
  std::unordered_map<int, std::deque<sim::Tick>> tx_fifo_;
  struct RxEntry {
    sim::Tick origin = 0;
    sim::Tick pushed = 0;
  };
  std::unordered_map<std::uint64_t, RxEntry> rx_pending_;
  std::unordered_map<atm::Vci, sim::Log2Histogram> vci_e2e_;
  std::vector<Span> ring_;
  std::size_t ring_cap_ = 4096;
  std::uint64_t spans_seen_ = 0;
};

/// Records only when spans are attached (mirrors sim::trace_event).
inline void span_stage(PduSpans* s, Stage st, std::uint64_t dt) {
  if (s != nullptr) s->record(st, dt);
}

}  // namespace osiris::obs
