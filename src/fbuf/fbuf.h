// Fast buffers (fbufs) — §3.1 and [Druschel & Peterson, SOSP'93].
//
// An fbuf is a page-sized buffer passed across protection-domain
// boundaries by a combination of shared memory and page remapping. An fbuf
// already mapped into every domain of a data path is "cached": handing it
// to the next domain costs only a pointer exchange. An uncached fbuf must
// be remapped into each receiving domain, an order of magnitude more
// expensive.
//
// The pool keeps preallocated cached fbufs for the 16 most recently used
// data paths (LRU) plus a single queue of uncached fbufs — mirroring the
// OSIRIS driver's strategy. Early demultiplexing (the board choosing a
// buffer by VCI) is what makes the cached case possible: the incoming
// packet lands directly in a buffer that is already mapped into the right
// set of domains.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "host/machine.h"
#include "mem/paging.h"
#include "sim/engine.h"

namespace osiris::fbuf {

/// A protection domain identifier (0 = kernel).
using DomainId = int;

struct Fbuf {
  mem::PhysAddr pa = 0;
  std::uint32_t bytes = mem::kPageSize;
  int path = -1;     // -1: uncached
  bool cached = false;
};

class FbufPool {
 public:
  struct Config {
    std::size_t cached_paths = 16;     // paper: 16 MRU data paths
    std::size_t bufs_per_path = 32;    // preallocated cached fbufs per path
    std::size_t uncached_bufs = 64;
  };

  FbufPool(sim::Engine& eng, const host::MachineConfig& mc, host::HostCpu& cpu,
           mem::FrameAllocator& frames, Config cfg);

  /// Registers a data path: the ordered list of domains a PDU traverses
  /// (e.g. {driver, protocol server, application}). Returns the path id.
  int create_path(std::vector<DomainId> domains);

  /// Installs the path into the cached (MRU) set immediately, without
  /// charging time — used at path-open, a setup operation. Evicts the LRU
  /// path if the set is full.
  void precache(int path);

  /// Allocates a buffer for `path`, preferring the path's cached pool.
  /// Promotes the path to most-recently-used; if the path was not among
  /// the cached set, it is installed (evicting the LRU path) and — since
  /// mapping its pool takes time — this first allocation returns an
  /// uncached buffer. Returns the buffer and the completion time.
  std::pair<Fbuf, sim::Tick> alloc(sim::Tick at, int path);

  /// Transfers the fbuf across one domain boundary of its path. Cached:
  /// pointer passing. Uncached: per-page remap into the target domain.
  sim::Tick transfer(sim::Tick at, const Fbuf& f);

  /// Full delivery along a path with `hops` domain crossings.
  sim::Tick deliver(sim::Tick at, const Fbuf& f, std::size_t hops);

  void free(sim::Tick at, Fbuf f);

  /// All physical buffers of a path's cached pool (to prefill a board free
  /// queue for early demultiplexing).
  [[nodiscard]] std::vector<mem::PhysBuffer> path_pool(int path) const;

  [[nodiscard]] bool is_path_cached(int path) const;

  // Statistics.
  [[nodiscard]] std::uint64_t cached_allocs() const { return cached_allocs_; }
  [[nodiscard]] std::uint64_t uncached_allocs() const { return uncached_allocs_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct Path {
    std::vector<DomainId> domains;
    std::vector<mem::PhysAddr> pool;   // frames reserved for this path
    std::deque<mem::PhysAddr> free;    // available cached fbufs
    bool cached = false;
  };

  void install(sim::Tick at, int path, sim::Tick* done);

  sim::Engine* eng_;
  const host::MachineConfig* mc_;
  host::HostCpu* cpu_;
  mem::FrameAllocator* frames_;
  Config cfg_;
  std::vector<Path> paths_;
  std::list<int> mru_;  // front = most recent, members = cached paths
  std::deque<mem::PhysAddr> uncached_free_;

  std::uint64_t cached_allocs_ = 0;
  std::uint64_t uncached_allocs_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace osiris::fbuf
