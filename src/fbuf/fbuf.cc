#include "fbuf/fbuf.h"

#include <algorithm>
#include <stdexcept>

namespace osiris::fbuf {

FbufPool::FbufPool(sim::Engine& eng, const host::MachineConfig& mc,
                   host::HostCpu& cpu, mem::FrameAllocator& frames, Config cfg)
    : eng_(&eng), mc_(&mc), cpu_(&cpu), frames_(&frames), cfg_(cfg) {
  for (std::size_t i = 0; i < cfg_.uncached_bufs; ++i) {
    uncached_free_.push_back(frames_->alloc());
  }
}

int FbufPool::create_path(std::vector<DomainId> domains) {
  Path p;
  p.domains = std::move(domains);
  for (std::size_t i = 0; i < cfg_.bufs_per_path; ++i) {
    const mem::PhysAddr f = frames_->alloc();
    p.pool.push_back(f);
    p.free.push_back(f);
  }
  paths_.push_back(std::move(p));
  return static_cast<int>(paths_.size()) - 1;
}

void FbufPool::precache(int path) {
  Path& p = paths_.at(static_cast<std::size_t>(path));
  if (p.cached) return;
  if (mru_.size() >= cfg_.cached_paths) {
    const int victim = mru_.back();
    mru_.pop_back();
    paths_[static_cast<std::size_t>(victim)].cached = false;
    ++evictions_;
  }
  mru_.push_front(path);
  p.cached = true;
}

bool FbufPool::is_path_cached(int path) const {
  return paths_.at(static_cast<std::size_t>(path)).cached;
}

std::vector<mem::PhysBuffer> FbufPool::path_pool(int path) const {
  const Path& p = paths_.at(static_cast<std::size_t>(path));
  std::vector<mem::PhysBuffer> out;
  out.reserve(p.pool.size());
  for (const mem::PhysAddr a : p.pool) out.push_back({a, mem::kPageSize});
  return out;
}

void FbufPool::install(sim::Tick at, int path, sim::Tick* done) {
  // Map the path's pool into every domain of the path: per page, per
  // domain, one remap cost. Evict the LRU cached path if the set is full.
  Path& p = paths_[static_cast<std::size_t>(path)];
  if (mru_.size() >= cfg_.cached_paths) {
    const int victim = mru_.back();
    mru_.pop_back();
    paths_[static_cast<std::size_t>(victim)].cached = false;
    ++evictions_;
  }
  mru_.push_front(path);
  p.cached = true;
  const auto crossings =
      static_cast<sim::Duration>(p.pool.size() * (p.domains.size() - 1));
  *done = cpu_->exec(at, host::Work{mc_->fbuf_uncached_map_per_page * crossings, 0});
}

std::pair<Fbuf, sim::Tick> FbufPool::alloc(sim::Tick at, int path) {
  Path& p = paths_.at(static_cast<std::size_t>(path));
  sim::Tick t = at;

  if (p.cached) {
    // Promote to MRU.
    mru_.remove(path);
    mru_.push_front(path);
    if (!p.free.empty()) {
      const mem::PhysAddr a = p.free.front();
      p.free.pop_front();
      ++cached_allocs_;
      return {Fbuf{a, mem::kPageSize, path, true}, t};
    }
    // Cached pool exhausted: fall through to the uncached queue.
  } else {
    install(at, path, &t);  // becomes cached for *future* allocations
  }

  if (uncached_free_.empty()) throw std::runtime_error("FbufPool: exhausted");
  const mem::PhysAddr a = uncached_free_.front();
  uncached_free_.pop_front();
  ++uncached_allocs_;
  return {Fbuf{a, mem::kPageSize, path, false}, t};
}

sim::Tick FbufPool::transfer(sim::Tick at, const Fbuf& f) {
  if (f.cached) {
    return cpu_->exec(at, host::Work{mc_->fbuf_cached_transfer, 0});
  }
  const auto pages =
      static_cast<sim::Duration>((f.bytes + mem::kPageSize - 1) / mem::kPageSize);
  return cpu_->exec(at, host::Work{mc_->fbuf_uncached_map_per_page * pages, 0});
}

sim::Tick FbufPool::deliver(sim::Tick at, const Fbuf& f, std::size_t hops) {
  sim::Tick t = at;
  for (std::size_t i = 0; i < hops; ++i) t = transfer(t, f);
  return t;
}

void FbufPool::free(sim::Tick at, Fbuf f) {
  (void)at;
  if (f.path >= 0 && f.cached) {
    paths_[static_cast<std::size_t>(f.path)].free.push_back(f.pa);
  } else {
    uncached_free_.push_back(f.pa);
  }
}

}  // namespace osiris::fbuf
