// Protocol stacks configured on top of the OSIRIS driver.
//
// Mirrors the paper's two measurement configurations (§4):
//  * raw "ATM": test programs directly on the device driver;
//  * "UDP/IP": a UDP-like protocol over an IP-like protocol with
//    fragmentation at a configurable MTU and an optional, genuinely
//    computed 16-bit Internet checksum.
//
// The checksum path reads received data through the machine's data-cache
// model. On the non-coherent DECstation this is where stale data surfaces:
// a checksum mismatch triggers the paper's lazy-invalidation recovery
// (§2.3) — invalidate the affected lines, re-read from memory, re-verify —
// before the message is declared corrupt.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "atm/checksum.h"
#include "host/driver.h"
#include "proto/message.h"
#include "sim/stats.h"

namespace osiris::proto {

enum class StackMode { kRawAtm, kUdpIp };

struct StackConfig {
  StackMode mode = StackMode::kUdpIp;
  // Maximum PDU handed to the driver, including the IP-like header. The
  // paper ran with a 16 KB MTU; see §2.2 for why MTU choice interacts with
  // page alignment. kIpHeader + 8 + 16384 keeps a 16 KB message in one
  // fragment (the configuration the paper's throughput figures imply).
  std::uint32_t ip_mtu = 20 + 8 + 16 * 1024;
  bool udp_checksum = false;
};

constexpr std::uint32_t kIpHeader = 20;
constexpr std::uint32_t kUdpHeader = 8;

class ProtoStack {
 public:
  /// Delivered user data: arrival-completion time, VCI, payload bytes.
  using Sink =
      std::function<void(sim::Tick at, atm::Vci vci,
                         std::vector<std::uint8_t>&& data)>;

  ProtoStack(sim::Engine& eng, const host::MachineConfig& mc, host::HostCpu& cpu,
             mem::DataCache& cache, mem::PhysicalMemory& pm,
             host::OsirisDriver& drv, StackConfig cfg);

  /// Unregisters the reset hook attach() installed (the driver outlives
  /// the stacks built on it; see Node/Adc member ordering).
  ~ProtoStack();

  ProtoStack(const ProtoStack&) = delete;
  ProtoStack& operator=(const ProtoStack&) = delete;

  /// Installs this stack as the driver's receive handler.
  void attach();

  /// Partial reassemblies currently outstanding (a post-drain leak check:
  /// after traffic quiesces and lost fragments age out or are reset away,
  /// this should be zero).
  [[nodiscard]] std::size_t pending_reassemblies() const { return reasm_.size(); }

  /// Switches outgoing protocol headers to a preallocated slot ring in
  /// `space`. Application device channels need this: the board only DMAs
  /// from authorized pages, so headers — like payloads — must come from
  /// registered memory (expose the pages via header_buffers()).
  void use_header_arena(mem::AddressSpace& space, std::size_t slots = 256);

  /// Physical buffers backing the header arena (for ADC authorization).
  [[nodiscard]] std::vector<mem::PhysBuffer> header_buffers() const;

  void set_sink(Sink s) { sink_ = std::move(s); }

  /// Sends `payload` on `vci`. Returns the time the sending CPU is free.
  sim::Tick send(sim::Tick at, atm::Vci vci, const Message& payload);

  /// The driver this stack sits on (e.g. for tx-completion watermarks).
  [[nodiscard]] host::OsirisDriver& driver() { return *drv_; }

  /// Writes `bytes` at `va` as CPU stores — through the data cache — so a
  /// cached copy of a previous occupant never goes stale. Reused transmit
  /// slots (header/frame arenas) MUST be filled this way: a raw physical
  /// write leaves old bytes in the cache, and a later checksum computed
  /// through the cache then disagrees with what the board DMAs from
  /// memory.
  void write_through(mem::AddressSpace& space, mem::VirtAddr va,
                     std::span<const std::uint8_t> bytes);

  // Statistics.
  [[nodiscard]] const sim::Summary& buffers_per_pdu() const { return bufs_per_pdu_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t checksum_failures() const { return cksum_failures_; }
  [[nodiscard]] std::uint64_t stale_recoveries() const { return stale_recoveries_; }
  [[nodiscard]] std::uint64_t reassembly_drops() const { return reassembly_drops_; }
  /// Partially reassembled messages abandoned by an adaptor reset.
  [[nodiscard]] std::uint64_t reset_drops() const { return reset_drops_; }

 private:
  struct Fragment {
    std::uint32_t offset = 0;
    std::vector<std::uint8_t> data;        // bytes as READ (cached if checksumming)
    std::vector<host::RxBuffer> retained;  // buffers held until verification
  };
  struct Reassembly {
    std::map<std::uint32_t, Fragment> frags;  // by offset
    std::uint32_t total = 0;  // 0 until the last fragment arrives
    std::uint32_t have = 0;
  };

  sim::Tick on_pdu(sim::Tick at, host::RxPduView& pdu);
  void on_driver_reset();
  sim::Tick deliver_udp(sim::Tick at, atm::Vci vci, Reassembly&& r);
  sim::Tick checksum_cost(sim::Tick at, const mem::AccessCost& c,
                          std::uint64_t bytes);
  /// Prepends a header, via the arena when configured.
  void add_header(Message& m, std::span<const std::uint8_t> bytes);

  sim::Engine* eng_;
  const host::MachineConfig* mc_;
  host::HostCpu* cpu_;
  mem::DataCache* cache_;
  mem::PhysicalMemory* pm_;
  host::OsirisDriver* drv_;
  StackConfig cfg_;
  Sink sink_;
  int reset_hook_token_ = -1;
  std::uint16_t next_ip_id_ = 1;
  std::map<std::uint64_t, Reassembly> reasm_;  // (vci<<32|ip_id)
  mem::AddressSpace* hdr_space_ = nullptr;
  std::vector<mem::VirtAddr> hdr_slots_;
  std::size_t next_hdr_ = 0;

  sim::Summary bufs_per_pdu_;
  std::uint64_t delivered_ = 0;
  std::uint64_t cksum_failures_ = 0;
  std::uint64_t stale_recoveries_ = 0;
  std::uint64_t reassembly_drops_ = 0;
  std::uint64_t reset_drops_ = 0;
};

}  // namespace osiris::proto
