#include "proto/arq.h"

#include <algorithm>

namespace osiris::proto {

namespace {
constexpr std::uint8_t kTypeData = 1;
constexpr std::uint8_t kTypeAck = 2;

void put32(std::vector<std::uint8_t>& v, std::size_t at, std::uint32_t x) {
  v[at + 0] = static_cast<std::uint8_t>(x >> 24);
  v[at + 1] = static_cast<std::uint8_t>(x >> 16);
  v[at + 2] = static_cast<std::uint8_t>(x >> 8);
  v[at + 3] = static_cast<std::uint8_t>(x);
}

std::uint32_t get32(const std::vector<std::uint8_t>& v, std::size_t at) {
  return (static_cast<std::uint32_t>(v[at + 0]) << 24) |
         (static_cast<std::uint32_t>(v[at + 1]) << 16) |
         (static_cast<std::uint32_t>(v[at + 2]) << 8) | v[at + 3];
}
}  // namespace

ArqEndpoint::ArqEndpoint(sim::Engine& eng, ProtoStack& stack,
                         mem::AddressSpace& space, host::HostCpu& cpu,
                         const host::MachineConfig& mc, ArqConfig cfg)
    : eng_(&eng),
      stack_(&stack),
      space_(&space),
      cpu_(&cpu),
      mc_(&mc),
      cfg_(cfg) {
  for (std::size_t i = 0; i < kSlots; ++i) {
    slots_.push_back(Slot{space_->alloc(kSlotBytes), 0});
  }
  attach();
  reset_hook_token_ = stack_->driver().add_reset_hook(
      [this](sim::Tick at) { on_driver_reset(at); });
}

ArqEndpoint::~ArqEndpoint() {
  if (reset_hook_token_ >= 0) {
    stack_->driver().remove_reset_hook(reset_hook_token_);
  }
  eng_->cancel(resync_timer_);
  for (auto& [vci, s] : tx_) eng_->cancel(s.timer);
}

void ArqEndpoint::attach() {
  stack_->set_sink([this](sim::Tick at, atm::Vci vci,
                          std::vector<std::uint8_t>&& data) {
    on_data(at, vci, std::move(data));
  });
}

void ArqEndpoint::bind(atm::Vci vci) {
  TxState& s = tx_[vci];
  s.cur_rto = cfg_.rto;
  rx_[vci];
}

bool ArqEndpoint::idle() const {
  for (const auto& [vci, s] : tx_) {
    if (!s.window.empty() || !s.queue.empty()) return false;
  }
  return true;
}

bool ArqEndpoint::dead(atm::Vci vci) const {
  const auto it = tx_.find(vci);
  return it != tx_.end() && it->second.dead;
}

std::vector<mem::PhysBuffer> ArqEndpoint::arena_buffers() const {
  std::vector<mem::PhysBuffer> out;
  for (const Slot& s : slots_) {
    const auto sc = space_->scatter(s.va, kSlotBytes);
    out.insert(out.end(), sc.begin(), sc.end());
  }
  return out;
}

std::vector<std::uint8_t> ArqEndpoint::frame(
    std::uint8_t type, atm::Vci vci, std::uint32_t seq, std::uint32_t ack,
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> f(kArqHeader + payload.size());
  f[0] = type;
  f[1] = static_cast<std::uint8_t>(vci >> 16);
  f[2] = static_cast<std::uint8_t>(vci >> 8);
  f[3] = static_cast<std::uint8_t>(vci);
  put32(f, 4, seq);
  put32(f, 8, ack);
  std::copy(payload.begin(), payload.end(), f.begin() + kArqHeader);
  return f;
}

sim::Tick ArqEndpoint::send_frame(sim::Tick at, atm::Vci vci,
                                  const std::vector<std::uint8_t>& framed) {
  host::OsirisDriver& drv = stack_->driver();
  sim::Tick t = at;
  if (framed.size() <= kSlotBytes) {
    // A slot is reusable only once the board has DMAed its previous frame
    // out (driver tx-completion watermark); rewriting it earlier would put
    // torn bytes on the wire. Poll the tail word, then scan for a free
    // slot from the cursor.
    t = drv.reclaim_tx(t);
    const std::uint64_t retired = drv.tx_descs_retired();
    for (std::size_t probe = 0; probe < kSlots; ++probe) {
      const std::size_t idx = (next_slot_ + probe) % kSlots;
      Slot& s = slots_[idx];
      if (s.busy_until > retired) continue;
      next_slot_ = (idx + 1) % kSlots;
      stack_->write_through(*space_, s.va, framed);
      t = stack_->send(
          t, vci,
          Message::view(*space_, s.va,
                        static_cast<std::uint32_t>(framed.size())));
      s.busy_until = drv.tx_descs_accepted();
      return t;
    }
    // Every slot still owned by an in-flight DMA: fall back to a fresh
    // (never reused) allocation rather than stall or corrupt.
    ++arena_overflows_;
  }
  const Message m = Message::from_payload(*space_, framed);
  return stack_->send(t, vci, m);
}

sim::Tick ArqEndpoint::send_ack(sim::Tick at, atm::Vci vci) {
  ++acks_sent_;
  return send_frame(at, vci, frame(kTypeAck, vci, 0, rx_[vci].expect, {}));
}

void ArqEndpoint::arm_timer(atm::Vci vci, TxState& s, sim::Tick at) {
  // One live timer per VCI: re-arming cancels the previous one in the
  // engine, so dead generations are dropped at the queue instead of firing
  // as guarded no-ops.
  eng_->cancel(s.timer);
  s.timer_armed = true;
  s.timer = eng_->schedule_timer_at(at + s.cur_rto,
                                    [this, vci] { on_timeout(vci); });
}

void ArqEndpoint::on_timeout(atm::Vci vci) {
  TxState& s = tx_[vci];
  s.timer_armed = false;  // the armed timer just fired
  if (s.dead || s.window.empty()) return;
  if (s.retries >= cfg_.max_retries) {
    give_up(vci, s);
    return;
  }
  ++s.retries;
  ++retransmissions_;
  const sim::Tick t =
      send_frame(eng_->now(), vci, s.window.front().framed);
  s.cur_rto = static_cast<sim::Duration>(static_cast<double>(s.cur_rto) *
                                         cfg_.backoff);
  if (cfg_.max_rto > 0 && s.cur_rto > cfg_.max_rto) s.cur_rto = cfg_.max_rto;
  arm_timer(vci, s, t);
}

// Session resynchronization after a generation-checked adaptor reset.
//
// A force_reset leaves the sender's ARQ state disagreeing with reality in
// two ways:
//
//  1. The driver credits every lost in-flight chain as retired
//     (tx_descs_retired_ += inflight), then replays parked sends. A frame
//     arena slot whose busy_until watermark predates the reset therefore
//     looks free even when a *replayed* chain still references it — the
//     next send would rewrite it mid-DMA and put a torn frame on the wire
//     (previously only the end-to-end checksum caught this). Every busy
//     slot is re-quarantined to the post-reset accepted watermark, which
//     all replayed chains are at or below.
//
//  2. Frames in the retransmit window were on the board or the wire when
//     the reset discarded them. Waiting out the current (possibly
//     backed-off) RTO — and burning retry budget on a path that is known
//     to have just been rebuilt — delays convergence for no reason.
//     Retries and RTO are reset and the base frame of every live VCI is
//     retransmitted immediately, from a scheduled event: this hook runs
//     inside force_reset(), and transmitting synchronously would re-enter
//     the driver mid-reset.
void ArqEndpoint::on_driver_reset(sim::Tick /*at*/) {
  host::OsirisDriver& drv = stack_->driver();
  const std::uint64_t accepted = drv.tx_descs_accepted();
  for (Slot& s : slots_) {
    if (s.busy_until != 0) s.busy_until = accepted;
  }
  bool live = false;
  for (auto& [vci, s] : tx_) {
    if (s.dead || s.window.empty()) continue;
    s.retries = 0;
    s.cur_rto = cfg_.rto;
    live = true;
  }
  if (!live || resync_pending_) return;
  ++resyncs_;
  resync_pending_ = true;
  resync_timer_ =
      eng_->schedule_timer_at(eng_->now(), [this] { resync_kick(); });
}

void ArqEndpoint::resync_kick() {
  resync_pending_ = false;
  sim::Tick t = eng_->now();
  for (auto& [vci, s] : tx_) {
    if (s.dead || s.window.empty()) continue;
    ++retransmissions_;
    t = send_frame(t, vci, s.window.front().framed);
    arm_timer(vci, s, t);
  }
}

void ArqEndpoint::give_up(atm::Vci /*vci*/, TxState& s) {
  // Terminal: the peer (or the path) is gone beyond what retransmission
  // can fix. Everything pending is dropped and further sends are refused,
  // so the event queue drains instead of backing off forever.
  gave_up_ += s.window.size() + s.queue.size();
  s.window.clear();
  s.queue.clear();
  eng_->cancel(s.timer);
  s.timer_armed = false;
  s.dead = true;
}

sim::Tick ArqEndpoint::pump(atm::Vci vci, TxState& s, sim::Tick at) {
  sim::Tick t = at;
  while (!s.queue.empty() && s.window.size() < cfg_.window && !s.dead) {
    std::vector<std::uint8_t> payload = std::move(s.queue.front());
    s.queue.pop_front();
    const std::uint32_t seq = s.next_seq++;
    Unacked u{seq, frame(kTypeData, vci, seq, rx_[vci].expect, payload)};
    t = send_frame(t, vci, u.framed);
    s.window.push_back(std::move(u));
    if (!s.timer_armed) arm_timer(vci, s, t);
  }
  return t;
}

sim::Tick ArqEndpoint::send(sim::Tick at, atm::Vci vci,
                            std::vector<std::uint8_t> payload) {
  const auto it = tx_.find(vci);
  if (it == tx_.end()) {
    // Unbound VCI: plain datagram.
    const Message m = Message::from_payload(*space_, payload);
    return stack_->send(at, vci, m);
  }
  TxState& s = it->second;
  if (s.dead) {
    ++gave_up_;
    return at;
  }
  s.queue.push_back(std::move(payload));
  return pump(vci, s, at);
}

void ArqEndpoint::handle_ack(atm::Vci vci, TxState& s, std::uint32_t ackno,
                             sim::Tick at) {
  const std::uint32_t advance = ackno - s.base;  // mod 2^32
  if (advance == 0 || advance > s.window.size()) return;  // stale or absurd
  for (std::uint32_t i = 0; i < advance; ++i) s.window.pop_front();
  s.base = ackno;
  s.retries = 0;
  s.cur_rto = cfg_.rto;
  const sim::Tick t = pump(vci, s, at);
  if (s.window.empty()) {
    s.timer_armed = false;
    eng_->cancel(s.timer);  // nothing left to retransmit
  } else {
    arm_timer(vci, s, t);  // fresh timeout for the new base frame
  }
}

void ArqEndpoint::on_data(sim::Tick at, atm::Vci vci,
                          std::vector<std::uint8_t>&& data) {
  const auto txit = tx_.find(vci);
  if (txit == tx_.end()) {
    // Unbound VCI: hand through unframed.
    if (sink_) sink_(at, vci, std::move(data));
    return;
  }
  if (data.size() < kArqHeader) {
    ++malformed_;
    return;
  }
  const std::uint8_t type = data[0];
  const auto evci = static_cast<atm::Vci>(
      (static_cast<atm::Vci>(data[1]) << 16) |
      (static_cast<atm::Vci>(data[2]) << 8) | data[3]);
  if (evci != vci) {
    // A corrupted receive descriptor steered this frame to the wrong
    // channel; treating it as ours would corrupt both sequence spaces.
    ++misrouted_;
    return;
  }
  const std::uint32_t seq = get32(data, 4);
  const std::uint32_t ackno = get32(data, 8);

  // Both frame types carry a cumulative ack (data frames piggyback it).
  handle_ack(vci, txit->second, ackno, at);
  if (type == kTypeAck) return;
  if (type != kTypeData) {
    ++malformed_;
    return;
  }

  RxState& r = rx_[vci];
  std::vector<std::uint8_t> payload(data.begin() + kArqHeader, data.end());
  const std::uint32_t dist = seq - r.expect;  // mod 2^32
  if (dist == 0) {
    ++delivered_;
    ++r.expect;
    if (sink_) sink_(at, vci, std::move(payload));
    // Release any buffered successors that are now in sequence.
    for (auto it = r.ooo.find(r.expect); it != r.ooo.end();
         it = r.ooo.find(r.expect)) {
      std::vector<std::uint8_t> next = std::move(it->second);
      r.ooo.erase(it);
      ++delivered_;
      ++r.expect;
      if (sink_) sink_(at, vci, std::move(next));
    }
  } else if (dist > 0x80000000u) {
    ++duplicates_;  // seq < expect: retransmission of delivered data
  } else if (dist <= 4ull * cfg_.window) {
    if (!r.ooo.emplace(seq, std::move(payload)).second) ++duplicates_;
  }
  // Ack every data frame: the cumulative ack both confirms progress and,
  // when duplicated, tells the sender its own ack was lost.
  send_ack(at, vci);
}

}  // namespace osiris::proto
