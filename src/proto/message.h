// x-kernel-style messages: chains of discontiguous buffer views.
//
// §2.5.2's key lesson was the abstraction mismatch between "the host passes
// contiguous buffers" (the hardware designer's view) and "the host passes a
// PDU consisting of a chain of discontiguous buffers" (what the OS needs).
// Message is that chain: a header portion lives in its own small buffer,
// the data portion references the application's (generally unaligned,
// physically scattered) pages — exactly Figure 1 of the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mem/paging.h"

namespace osiris::proto {

class Message {
 public:
  struct Segment {
    mem::VirtAddr va;
    std::uint32_t len;
  };

  explicit Message(mem::AddressSpace& space) : space_(&space) {}

  /// Allocates backing pages for `data` and returns a message referencing
  /// them. `offset_in_page` controls alignment of the first byte (paper
  /// Figure 1: application data is "typically not aligned with page
  /// boundaries").
  static Message from_payload(mem::AddressSpace& space,
                              std::span<const std::uint8_t> data,
                              std::uint32_t offset_in_page = 0);

  /// A message referencing `len` bytes of already-allocated (e.g.
  /// registered/authorized) memory at `va`. No allocation, no copy.
  static Message view(mem::AddressSpace& space, mem::VirtAddr va,
                      std::uint32_t len) {
    Message m(space);
    m.segs_.push_back({va, len});
    return m;
  }

  /// Prepends a header in a freshly allocated buffer (the "header portion"
  /// of Figure 1 — one extra physical buffer).
  void push_header(std::span<const std::uint8_t> hdr);

  /// Prepends a view over already-allocated memory (e.g. a registered
  /// header slot) without allocating.
  void push_view(mem::VirtAddr va, std::uint32_t len) {
    segs_.insert(segs_.begin(), {va, len});
  }

  /// Removes `n` leading bytes (splitting a segment if needed).
  void pop_bytes(std::uint32_t n);

  /// A sub-range view sharing the same address space (used by IP
  /// fragmentation). No data is copied.
  [[nodiscard]] Message slice(std::uint32_t off, std::uint32_t len) const;

  [[nodiscard]] std::uint32_t length() const;

  /// Physical buffer chain for the driver: one entry per physically
  /// contiguous run. The count of these is the §2.2 fragmentation metric.
  [[nodiscard]] std::vector<mem::PhysBuffer> scatter() const;

  /// Copies the byte stream out (tests / checksum ground truth).
  [[nodiscard]] std::vector<std::uint8_t> gather() const;

  [[nodiscard]] const std::vector<Segment>& segments() const { return segs_; }
  [[nodiscard]] mem::AddressSpace& space() const { return *space_; }

 private:
  mem::AddressSpace* space_;
  std::vector<Segment> segs_;
};

}  // namespace osiris::proto
