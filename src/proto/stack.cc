#include "proto/stack.h"

#include <algorithm>
#include <stdexcept>

namespace osiris::proto {

namespace {

std::array<std::uint8_t, kIpHeader> make_ip_header(std::uint32_t frag_total,
                                                   std::uint16_t id,
                                                   std::uint32_t frag_off,
                                                   bool more_fragments) {
  std::array<std::uint8_t, kIpHeader> h{};
  h[0] = static_cast<std::uint8_t>(frag_total >> 24);
  h[1] = static_cast<std::uint8_t>(frag_total >> 16);
  h[2] = static_cast<std::uint8_t>(frag_total >> 8);
  h[3] = static_cast<std::uint8_t>(frag_total);
  h[4] = static_cast<std::uint8_t>(id >> 8);
  h[5] = static_cast<std::uint8_t>(id);
  h[6] = static_cast<std::uint8_t>(frag_off >> 24);
  h[7] = static_cast<std::uint8_t>(frag_off >> 16);
  h[8] = static_cast<std::uint8_t>(frag_off >> 8);
  h[9] = static_cast<std::uint8_t>(frag_off);
  h[10] = more_fragments ? 1 : 0;
  h[11] = 17;  // "UDP"
  return h;
}

struct IpFields {
  std::uint32_t total;
  std::uint16_t id;
  std::uint32_t off;
  bool mf;
};

IpFields parse_ip_header(std::span<const std::uint8_t> h) {
  IpFields f{};
  f.total = (static_cast<std::uint32_t>(h[0]) << 24) |
            (static_cast<std::uint32_t>(h[1]) << 16) |
            (static_cast<std::uint32_t>(h[2]) << 8) | h[3];
  f.id = static_cast<std::uint16_t>((h[4] << 8) | h[5]);
  f.off = (static_cast<std::uint32_t>(h[6]) << 24) |
          (static_cast<std::uint32_t>(h[7]) << 16) |
          (static_cast<std::uint32_t>(h[8]) << 8) | h[9];
  f.mf = h[10] != 0;
  return f;
}

}  // namespace

ProtoStack::ProtoStack(sim::Engine& eng, const host::MachineConfig& mc,
                       host::HostCpu& cpu, mem::DataCache& cache,
                       mem::PhysicalMemory& pm, host::OsirisDriver& drv,
                       StackConfig cfg)
    : eng_(&eng),
      mc_(&mc),
      cpu_(&cpu),
      cache_(&cache),
      pm_(&pm),
      drv_(&drv),
      cfg_(cfg) {
  if (cfg_.ip_mtu <= kIpHeader) throw std::invalid_argument("MTU too small");
}

ProtoStack::~ProtoStack() {
  if (reset_hook_token_ >= 0) drv_->remove_reset_hook(reset_hook_token_);
}

void ProtoStack::attach() {
  drv_->set_rx_handler(
      [this](sim::Tick at, host::RxPduView& pdu) { return on_pdu(at, pdu); });
  if (reset_hook_token_ >= 0) drv_->remove_reset_hook(reset_hook_token_);
  reset_hook_token_ =
      drv_->add_reset_hook([this](sim::Tick) { on_driver_reset(); });
}

void ProtoStack::on_driver_reset() {
  // The adaptor reset invalidated every receive buffer and the driver
  // re-posts the whole pool itself, so retained buffers must be
  // FORGOTTEN, not released — releasing would double-post them. Partial
  // reassemblies die with their buffers; ARQ (if running) retransmits.
  reset_drops_ += reasm_.size();
  reasm_.clear();
}

void ProtoStack::use_header_arena(mem::AddressSpace& space, std::size_t slots) {
  constexpr std::uint32_t kSlotBytes = 32;  // >= kIpHeader and kUdpHeader
  hdr_space_ = &space;
  hdr_slots_.clear();
  for (std::size_t i = 0; i < slots; ++i) {
    hdr_slots_.push_back(space.alloc(kSlotBytes));
  }
}

std::vector<mem::PhysBuffer> ProtoStack::header_buffers() const {
  std::vector<mem::PhysBuffer> out;
  for (const mem::VirtAddr va : hdr_slots_) {
    const auto sc = hdr_space_->scatter(va, 32);
    out.insert(out.end(), sc.begin(), sc.end());
  }
  return out;
}

void ProtoStack::write_through(mem::AddressSpace& space, mem::VirtAddr va,
                               std::span<const std::uint8_t> bytes) {
  std::size_t done = 0;
  for (const auto& pb :
       space.scatter(va, static_cast<std::uint32_t>(bytes.size()))) {
    cache_->cpu_write(pb.addr, bytes.subspan(done, pb.len));
    done += pb.len;
  }
}

void ProtoStack::add_header(Message& m, std::span<const std::uint8_t> bytes) {
  if (hdr_slots_.empty()) {
    m.push_header(bytes);
    return;
  }
  const mem::VirtAddr slot = hdr_slots_[next_hdr_ % hdr_slots_.size()];
  ++next_hdr_;
  write_through(*hdr_space_, slot, bytes);
  m.push_view(slot, static_cast<std::uint32_t>(bytes.size()));
}

sim::Tick ProtoStack::checksum_cost(sim::Tick at, const mem::AccessCost& c,
                                    std::uint64_t bytes) {
  return cpu_->exec(
      at, host::Work{mc_->cache_cpu_time(c, bytes, mc_->checksum_alu_cycles_per_word),
                     c.mem_words});
}

sim::Tick ProtoStack::send(sim::Tick at, atm::Vci vci, const Message& payload) {
  if (cfg_.mode == StackMode::kRawAtm) {
    const auto sc = payload.scatter();
    bufs_per_pdu_.add(static_cast<double>(sc.size()));
    return drv_->send(at, vci, sc);
  }

  sim::Tick t = at;
  Message pkt = payload;

  // UDP header, with a real checksum over the payload when enabled.
  std::array<std::uint8_t, kUdpHeader> udph{};
  if (cfg_.udp_checksum) {
    std::vector<std::uint8_t> data(pkt.length());
    mem::AccessCost cost;
    std::size_t done = 0;
    for (const auto& pb : pkt.scatter()) {
      cost += cache_->cpu_read(pb.addr, {data.data() + done, pb.len});
      done += pb.len;
    }
    const std::uint16_t ck = atm::InternetChecksum::of(data);
    udph[4] = static_cast<std::uint8_t>(ck >> 8);
    udph[5] = static_cast<std::uint8_t>(ck);
    t = checksum_cost(t, cost, data.size());
  }
  add_header(pkt, udph);
  t = cpu_->exec(t, host::Work{mc_->proto_udp, 0});

  // IP-like fragmentation at the configured MTU.
  const std::uint32_t frag_data = cfg_.ip_mtu - kIpHeader;
  const std::uint32_t total = pkt.length();
  const std::uint16_t id = next_ip_id_++;
  for (std::uint32_t off = 0; off < total; off += frag_data) {
    const std::uint32_t n = std::min(frag_data, total - off);
    Message frag = pkt.slice(off, n);
    const auto iph = make_ip_header(n + kIpHeader, id, off, off + n < total);
    add_header(frag, iph);
    t = cpu_->exec(t, host::Work{mc_->proto_ip, 0});
    const auto sc = frag.scatter();
    bufs_per_pdu_.add(static_cast<double>(sc.size()));
    t = drv_->send(t, vci, sc);
  }
  return t;
}

sim::Tick ProtoStack::on_pdu(sim::Tick at, host::RxPduView& pdu) {
  if (cfg_.mode == StackMode::kRawAtm) {
    std::vector<std::uint8_t> data(pdu.pdu_len);
    pdu.read_raw(*pm_, 0, data);
    ++delivered_;
    if (sink_) sink_(at, pdu.vci, std::move(data));
    return at;
  }

  sim::Tick t = cpu_->exec(at, host::Work{mc_->proto_ip, 0});
  if (pdu.pdu_len < kIpHeader) {
    ++reassembly_drops_;
    return t;
  }
  std::array<std::uint8_t, kIpHeader> iph;
  pdu.read_raw(*pm_, 0, iph);
  const IpFields f = parse_ip_header(iph);
  // The IP length is authoritative: link-level padding beyond it (e.g.
  // from fixed-length DMA, §2.5.2) is tolerated; a PDU SHORTER than its
  // header claims is corrupt.
  if (f.total > pdu.pdu_len || f.total < kIpHeader) {
    ++reassembly_drops_;
    return t;
  }

  Fragment frag;
  frag.offset = f.off;
  frag.data.resize(f.total - kIpHeader);
  if (cfg_.udp_checksum) {
    // Touch the data through the cache: this is where the paper's stale-
    // cache bytes would surface on a non-coherent machine.
    mem::AccessCost cost;
    pdu.read_cached(*cache_, kIpHeader, frag.data, cost);
    t = checksum_cost(t, cost, frag.data.size());
    frag.retained = std::move(pdu.bufs);  // keep until verification
  } else {
    pdu.read_raw(*pm_, kIpHeader, frag.data);
  }

  const std::uint64_t key =
      (static_cast<std::uint64_t>(pdu.vci) << 32) | f.id;
  Reassembly& r = reasm_[key];
  if (!f.mf) r.total = f.off + static_cast<std::uint32_t>(frag.data.size());
  if (r.frags.contains(f.off)) {
    ++reassembly_drops_;  // duplicate fragment
    if (!frag.retained.empty()) t = drv_->release(t, frag.retained);
    return t;
  }
  r.have += static_cast<std::uint32_t>(frag.data.size());
  r.frags.emplace(f.off, std::move(frag));

  if (r.total != 0 && r.have == r.total) {
    Reassembly done = std::move(r);
    reasm_.erase(key);
    t = deliver_udp(t, pdu.vci, std::move(done));
  }
  return t;
}

sim::Tick ProtoStack::deliver_udp(sim::Tick at, atm::Vci vci, Reassembly&& r) {
  sim::Tick t = cpu_->exec(at, host::Work{mc_->proto_udp, 0});

  auto assemble = [&r]() {
    std::vector<std::uint8_t> stream;
    for (const auto& [off, f] : r.frags) {
      stream.insert(stream.end(), f.data.begin(), f.data.end());
    }
    return stream;
  };
  std::vector<std::uint8_t> stream = assemble();
  if (stream.size() < kUdpHeader) {
    ++reassembly_drops_;
    for (auto& [off, f] : r.frags) {
      if (!f.retained.empty()) t = drv_->release(t, f.retained);
    }
    return t;
  }

  bool ok = true;
  if (cfg_.udp_checksum) {
    const std::uint16_t want =
        static_cast<std::uint16_t>((stream[4] << 8) | stream[5]);
    auto compute = [&stream] {
      std::vector<std::uint8_t> tmp = stream;
      tmp[4] = tmp[5] = 0;
      return atm::InternetChecksum::of(tmp);
    };
    if (compute() != want) {
      // Lazy cache invalidation recovery (§2.3): invalidate the buffers,
      // re-read from main memory, and re-evaluate before declaring error.
      for (auto& [off, f] : r.frags) {
        host::RxPduView v;
        v.bufs = f.retained;
        t = drv_->recover_stale(t, v);
        mem::AccessCost cost;
        host::RxPduView v2;
        v2.bufs = f.retained;
        v2.pdu_len = static_cast<std::uint32_t>(f.data.size()) + kIpHeader;
        v2.wire_len = v2.pdu_len + atm::kTrailerBytes;
        v2.read_cached(*cache_, kIpHeader, f.data, cost);
        t = checksum_cost(t, cost, f.data.size());
      }
      stream = assemble();
      if (compute() == want) {
        ++stale_recoveries_;
      } else {
        ok = false;  // genuine corruption (e.g. wire bit error)
        ++cksum_failures_;
      }
    }
  }

  for (auto& [off, f] : r.frags) {
    if (!f.retained.empty()) t = drv_->release(t, f.retained);
  }
  if (!ok) return t;

  stream.erase(stream.begin(), stream.begin() + kUdpHeader);
  ++delivered_;
  if (sink_) sink_(t, vci, std::move(stream));
  return t;
}

}  // namespace osiris::proto
