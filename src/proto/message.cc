#include "proto/message.h"

#include <algorithm>
#include <stdexcept>

namespace osiris::proto {

Message Message::from_payload(mem::AddressSpace& space,
                              std::span<const std::uint8_t> data,
                              std::uint32_t offset_in_page) {
  Message m(space);
  const mem::VirtAddr va =
      space.alloc(static_cast<std::uint32_t>(data.size()), offset_in_page);
  space.write(va, data);
  m.segs_.push_back({va, static_cast<std::uint32_t>(data.size())});
  return m;
}

void Message::push_header(std::span<const std::uint8_t> hdr) {
  const mem::VirtAddr va = space_->alloc(static_cast<std::uint32_t>(hdr.size()));
  space_->write(va, hdr);
  segs_.insert(segs_.begin(), {va, static_cast<std::uint32_t>(hdr.size())});
}

void Message::pop_bytes(std::uint32_t n) {
  while (n > 0) {
    if (segs_.empty()) throw std::out_of_range("Message::pop_bytes");
    Segment& s = segs_.front();
    const std::uint32_t take = std::min(n, s.len);
    s.va += take;
    s.len -= take;
    n -= take;
    if (s.len == 0) segs_.erase(segs_.begin());
  }
}

Message Message::slice(std::uint32_t off, std::uint32_t len) const {
  Message out(*space_);
  std::uint32_t pos = 0;
  for (const Segment& s : segs_) {
    if (len == 0) break;
    if (off < pos + s.len) {
      const std::uint32_t inner = off > pos ? off - pos : 0;
      const std::uint32_t take = std::min(len, s.len - inner);
      out.segs_.push_back({s.va + inner, take});
      off += take;
      len -= take;
    }
    pos += s.len;
  }
  if (len != 0) throw std::out_of_range("Message::slice");
  return out;
}

std::uint32_t Message::length() const {
  std::uint32_t n = 0;
  for (const Segment& s : segs_) n += s.len;
  return n;
}

std::vector<mem::PhysBuffer> Message::scatter() const {
  std::vector<mem::PhysBuffer> out;
  for (const Segment& s : segs_) {
    for (const mem::PhysBuffer& pb : space_->scatter(s.va, s.len)) {
      if (!out.empty() && out.back().addr + out.back().len == pb.addr) {
        out.back().len += pb.len;
      } else {
        out.push_back(pb);
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> Message::gather() const {
  std::vector<std::uint8_t> out(length());
  std::size_t done = 0;
  for (const Segment& s : segs_) {
    space_->read(s.va, {out.data() + done, s.len});
    done += s.len;
  }
  return out;
}

}  // namespace osiris::proto
