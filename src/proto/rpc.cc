#include "proto/rpc.h"

#include <algorithm>

namespace osiris::proto {

namespace {
constexpr std::size_t kRpcHeader = 8;
}  // namespace

RpcEndpoint::RpcEndpoint(sim::Engine& eng, ProtoStack& stack,
                         mem::AddressSpace& space, host::HostCpu& cpu,
                         const host::MachineConfig& mc)
    : eng_(&eng), stack_(&stack), space_(&space), cpu_(&cpu), mc_(&mc) {
  for (std::size_t i = 0; i < kSlots; ++i) {
    slots_.push_back(space_->alloc(kSlotBytes));
  }
  stack_->set_sink([this](sim::Tick at, atm::Vci vci,
                          std::vector<std::uint8_t>&& data) {
    on_data(at, vci, std::move(data));
  });
}

std::vector<mem::PhysBuffer> RpcEndpoint::arena_buffers() const {
  std::vector<mem::PhysBuffer> out;
  for (const mem::VirtAddr va : slots_) {
    const auto sc = space_->scatter(va, kSlotBytes);
    out.insert(out.end(), sc.begin(), sc.end());
  }
  return out;
}

void RpcEndpoint::serve(Handler h) { handler_ = std::move(h); }

void RpcEndpoint::use_arq(ArqEndpoint& arq) {
  arq_ = &arq;
  arq.attach();  // the ARQ layer owns the stack's sink from here on
  arq.set_sink([this](sim::Tick at, atm::Vci vci,
                      std::vector<std::uint8_t>&& data) {
    on_data(at, vci, std::move(data));
  });
}

sim::Tick RpcEndpoint::send_framed(sim::Tick at, atm::Vci vci,
                                   std::uint32_t id, bool response,
                                   const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> framed(kRpcHeader + payload.size());
  framed[0] = static_cast<std::uint8_t>(id >> 24);
  framed[1] = static_cast<std::uint8_t>(id >> 16);
  framed[2] = static_cast<std::uint8_t>(id >> 8);
  framed[3] = static_cast<std::uint8_t>(id);
  framed[4] = response ? 1 : 0;
  std::copy(payload.begin(), payload.end(), framed.begin() + kRpcHeader);
  if (arq_ != nullptr) return arq_->send(at, vci, std::move(framed));
  if (framed.size() <= kSlotBytes) {
    // Write into the next registered slot and send a view over it.
    const mem::VirtAddr slot = slots_[next_slot_];
    next_slot_ = (next_slot_ + 1) % kSlots;
    stack_->write_through(*space_, slot, framed);
    return stack_->send(
        at, vci,
        Message::view(*space_, slot, static_cast<std::uint32_t>(framed.size())));
  }
  // Oversized frame: fall back to a fresh allocation (kernel endpoints
  // only — over an ADC the board would reject the unregistered pages).
  const Message m = Message::from_payload(*space_, framed);
  return stack_->send(at, vci, m);
}

sim::Tick RpcEndpoint::call(sim::Tick at, atm::Vci vci,
                            std::vector<std::uint8_t> request, Callback cb,
                            sim::Duration timeout, RpcRetryPolicy retry) {
  const std::uint32_t id = next_id_++;
  const sim::Tick done = send_framed(at, vci, id, false, request);
  Pending p{std::move(cb), {},            vci,
            {},            retry.retries, retry.backoff,
            timeout};
  if (retry.retries > 0) p.request = std::move(request);
  pending_[id] = std::move(p);
  ++calls_;
  schedule_timeout(id, done + timeout);
  return done;
}

void RpcEndpoint::schedule_timeout(std::uint32_t id, sim::Tick deadline) {
  const auto pit = pending_.find(id);
  if (pit == pending_.end()) return;
  // The handle is cancelled when a response completes the call, so a
  // firing timer always refers to a still-pending id (the find() stays as
  // a defensive guard — ids are never reused).
  pit->second.timer = eng_->schedule_timer_at(deadline, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    Pending& p = it->second;
    if (p.retries_left > 0) {
      // Same id, so a response to ANY attempt — including a late one to
      // the original — completes the call; later duplicates are stray.
      --p.retries_left;
      ++retransmissions_;
      p.cur_timeout = static_cast<sim::Duration>(
          static_cast<double>(p.cur_timeout) * p.backoff);
      const sim::Tick sent =
          send_framed(eng_->now(), p.vci, id, false, p.request);
      schedule_timeout(id, sent + p.cur_timeout);
      return;
    }
    Callback cb2 = std::move(p.cb);
    pending_.erase(it);
    ++timeouts_;
    cb2(eng_->now(), std::nullopt);
  });
}

void RpcEndpoint::on_data(sim::Tick at, atm::Vci vci,
                          std::vector<std::uint8_t>&& data) {
  if (data.size() < kRpcHeader) {
    ++stray_;
    return;
  }
  const std::uint32_t id = (static_cast<std::uint32_t>(data[0]) << 24) |
                           (static_cast<std::uint32_t>(data[1]) << 16) |
                           (static_cast<std::uint32_t>(data[2]) << 8) | data[3];
  const bool is_response = data[4] != 0;
  std::vector<std::uint8_t> payload(data.begin() + kRpcHeader, data.end());

  if (is_response) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) {
      ++stray_;  // late response after timeout
      return;
    }
    Callback cb = std::move(it->second.cb);
    eng_->cancel(it->second.timer);
    pending_.erase(it);
    ++responses_;
    cb(at, std::move(payload));
    return;
  }

  if (!handler_) {
    ++stray_;
    return;
  }
  ++served_;
  std::vector<std::uint8_t> reply = handler_(std::move(payload));
  // A small server-side turnaround cost, then the reply goes out.
  const sim::Tick t = cpu_->exec(at, host::Work{mc_->app_recv + mc_->app_send, 0});
  send_framed(t, vci, id, true, reply);
}

}  // namespace osiris::proto
