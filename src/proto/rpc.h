// A small request/response protocol on top of the stack.
//
// The paper's approach is protocol-independent (§1: the x-kernel supports
// arbitrary protocols). This module demonstrates exactly that: a third
// protocol configured above the UDP/IP-like stack — request/response
// matching with ids and timeouts — without the driver or board knowing
// anything about it. It is also what the ADC story needs to feel real: a
// user-space application doing RPC entirely over its device channel.
//
// Wire format (8-byte header before the user payload):
//   [0..3] request id     [4] type (0 = request, 1 = response)   [5..7] 0
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "host/machine.h"
#include "mem/paging.h"
#include "proto/arq.h"
#include "proto/message.h"
#include "proto/stack.h"
#include "sim/engine.h"

namespace osiris::proto {

/// Client-side retry behaviour for RpcEndpoint::call(). The default (no
/// retries) preserves the historical fire-once semantics.
struct RpcRetryPolicy {
  std::uint32_t retries = 0;  ///< resends after the first timeout
  double backoff = 2.0;       ///< timeout multiplier per retry
};

class RpcEndpoint {
 public:
  /// Server-side handler: consumes the request payload, returns the
  /// response payload.
  using Handler =
      std::function<std::vector<std::uint8_t>(std::vector<std::uint8_t>)>;

  /// Client-side completion: response payload, or nullopt on timeout.
  using Callback = std::function<void(
      sim::Tick at, std::optional<std::vector<std::uint8_t>> response)>;

  /// `space` provides backing memory for outgoing messages (the kernel
  /// space for in-kernel endpoints, the ADC's space for user-space ones).
  /// Outgoing frames are written into a preallocated ring of registered
  /// buffer slots — the pattern an ADC application must follow, since the
  /// board only accepts DMA from its authorized page list; register the
  /// slots via arena_buffers(). Frames larger than a slot fall back to a
  /// fresh allocation (fine in the kernel, rejected over an ADC).
  RpcEndpoint(sim::Engine& eng, ProtoStack& stack, mem::AddressSpace& space,
              host::HostCpu& cpu, const host::MachineConfig& mc);

  /// The physical buffers of the outgoing-frame arena, for ADC page
  /// authorization.
  [[nodiscard]] std::vector<mem::PhysBuffer> arena_buffers() const;

  /// Installs this endpoint as the stack's sink and serves requests.
  void serve(Handler h);

  /// Routes this endpoint's frames through an ARQ endpoint instead of
  /// straight onto the stack: the ARQ layer takes the stack's sink and
  /// this endpoint becomes the ARQ sink. Calls on ARQ-bound VCIs then get
  /// transport-level retransmission; RpcRetryPolicy remains useful for
  /// end-to-end retries (e.g. across an adaptor reset that outlives the
  /// ARQ budget) and for non-bound VCIs.
  void use_arq(ArqEndpoint& arq);

  /// Issues a request on `vci`. The callback fires with the response or,
  /// once `timeout` (grown by `retry.backoff` per attempt) has expired
  /// `retry.retries + 1` times, with nullopt. A retry re-sends the request
  /// with the same id, so a duplicate response is recognized and dropped.
  sim::Tick call(sim::Tick at, atm::Vci vci,
                 std::vector<std::uint8_t> request, Callback cb,
                 sim::Duration timeout = sim::ms(100),
                 RpcRetryPolicy retry = {});

  [[nodiscard]] std::uint64_t calls() const { return calls_; }
  [[nodiscard]] std::uint64_t responses() const { return responses_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t served() const { return served_; }
  [[nodiscard]] std::uint64_t stray() const { return stray_; }
  /// Requests re-sent by the client-side retry policy.
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct Pending {
    Callback cb;
    sim::TimerHandle timer;  // cancelled when the response arrives
    atm::Vci vci = 0;
    std::vector<std::uint8_t> request;  // kept while retries remain
    std::uint32_t retries_left = 0;
    double backoff = 2.0;
    sim::Duration cur_timeout = 0;
  };

  void on_data(sim::Tick at, atm::Vci vci,
               std::vector<std::uint8_t>&& data);
  sim::Tick send_framed(sim::Tick at, atm::Vci vci, std::uint32_t id,
                        bool response, const std::vector<std::uint8_t>& payload);
  void schedule_timeout(std::uint32_t id, sim::Tick deadline);

  sim::Engine* eng_;
  ProtoStack* stack_;
  mem::AddressSpace* space_;
  host::HostCpu* cpu_;
  const host::MachineConfig* mc_;
  ArqEndpoint* arq_ = nullptr;
  Handler handler_;
  // Registered-buffer discipline: a slot must not be rewritten while the
  // board may still DMA from it. The transmit queue holds at most 63
  // descriptors, so a ring deeper than that is safe for any number of
  // outstanding calls.
  static constexpr std::size_t kSlots = 96;
  static constexpr std::uint32_t kSlotBytes = 16 * 1024;
  std::vector<mem::VirtAddr> slots_;
  std::size_t next_slot_ = 0;
  std::uint32_t next_id_ = 1;  // never reused, so an id fully keys a call
  std::map<std::uint32_t, Pending> pending_;

  std::uint64_t calls_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t stray_ = 0;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace osiris::proto
