// A retransmission (ARQ) layer above the UDP/IP-like stack.
//
// The adaptor gives no delivery guarantee, and the fault plane makes that
// concrete: cells are dropped on the wire and inside the SAR loop, DMA
// transfers fail silently, and a watchdog reset throws away everything in
// flight on both halves of the board. Exactly as the paper's layering
// argues (§1: the x-kernel composes arbitrary protocols above the driver),
// reliability is a protocol configured on top, not a device property.
//
// ArqEndpoint provides per-VCI, in-order, exactly-once delivery:
//  * a 12-byte header [type | vci | flags | seq | ack] before the payload;
//    the embedded VCI catches frames misrouted by corrupted descriptors;
//  * a sliding window of unacknowledged frames, cumulative acks, and a
//    single retransmit timer on the oldest unacked frame with exponential
//    backoff and a retry budget (budget exhaustion is terminal: the VCI is
//    declared dead and further sends are refused);
//  * out-of-order frames inside the window are buffered and delivered in
//    sequence; duplicates are acked but dropped.
//
// VCIs not bound with bind() pass through unframed in both directions, so
// an endpoint can carry reliable and datagram traffic side by side.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "atm/cell.h"
#include "host/machine.h"
#include "mem/paging.h"
#include "proto/message.h"
#include "proto/stack.h"
#include "sim/engine.h"

namespace osiris::proto {

constexpr std::size_t kArqHeader = 12;

struct ArqConfig {
  std::uint32_t window = 16;        ///< max unacked data frames per VCI
  sim::Duration rto = sim::ms(2);   ///< initial retransmit timeout
  double backoff = 2.0;             ///< RTO multiplier per retry
  sim::Duration max_rto = sim::ms(50);
  std::uint32_t max_retries = 10;   ///< per-frame budget; exceeding it is
                                    ///< terminal for the VCI
};

class ArqEndpoint {
 public:
  using Sink = ProtoStack::Sink;

  /// `space` backs the outgoing-frame slot ring (same registered-buffer
  /// discipline as RpcEndpoint; expose arena_buffers() for ADC use).
  ArqEndpoint(sim::Engine& eng, ProtoStack& stack, mem::AddressSpace& space,
              host::HostCpu& cpu, const host::MachineConfig& mc,
              ArqConfig cfg = {});

  /// Unregisters the driver reset hook and cancels pending timers.
  ~ArqEndpoint();

  ArqEndpoint(const ArqEndpoint&) = delete;
  ArqEndpoint& operator=(const ArqEndpoint&) = delete;

  /// (Re)installs this endpoint as the stack's sink. The constructor does
  /// this; call again if another layer has since taken the sink.
  void attach();

  /// Marks `vci` reliable: sends are framed and retransmitted, receives
  /// are reordered and deduplicated. Unbound VCIs pass through.
  void bind(atm::Vci vci);

  void set_sink(Sink s) { sink_ = std::move(s); }

  /// Queues `payload` for reliable delivery on a bound `vci` (transmits
  /// immediately when the window allows), or passes it straight to the
  /// stack on an unbound one. Returns when the sending CPU is free.
  sim::Tick send(sim::Tick at, atm::Vci vci,
                 std::vector<std::uint8_t> payload);

  /// No frame is unacknowledged or waiting for window space anywhere.
  [[nodiscard]] bool idle() const;

  /// True once `vci` exhausted its retry budget; its traffic is dropped.
  [[nodiscard]] bool dead(atm::Vci vci) const;

  /// Physical buffers of the outgoing-frame arena (ADC authorization).
  [[nodiscard]] std::vector<mem::PhysBuffer> arena_buffers() const;

  // Statistics.
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  /// Frames whose embedded VCI disagreed with the VCI they arrived on.
  [[nodiscard]] std::uint64_t misrouted() const { return misrouted_; }
  [[nodiscard]] std::uint64_t malformed() const { return malformed_; }
  /// Payloads abandoned when a VCI exhausted its retry budget.
  [[nodiscard]] std::uint64_t gave_up() const { return gave_up_; }
  /// Sends that fell back to a fresh allocation because every arena slot
  /// was still owned by an in-flight transmit DMA.
  [[nodiscard]] std::uint64_t arena_overflows() const {
    return arena_overflows_;
  }
  /// Adaptor resets that found unacked frames and resynchronized: slots
  /// re-quarantined, backoff cleared, base frames retransmitted at once.
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }

 private:
  struct Unacked {
    std::uint32_t seq = 0;
    std::vector<std::uint8_t> framed;  // header + payload, as transmitted
  };
  struct TxState {
    std::uint32_t next_seq = 0;  // next sequence number to assign
    std::uint32_t base = 0;      // oldest unacknowledged
    std::deque<Unacked> window;
    std::deque<std::vector<std::uint8_t>> queue;  // waiting for window
    std::uint32_t retries = 0;   // of the current base frame
    sim::Duration cur_rto = 0;
    sim::TimerHandle timer;      // retransmit timer on the base frame
    bool timer_armed = false;
    bool dead = false;
  };
  struct RxState {
    std::uint32_t expect = 0;
    std::map<std::uint32_t, std::vector<std::uint8_t>> ooo;
  };

  void on_data(sim::Tick at, atm::Vci vci,
               std::vector<std::uint8_t>&& data);
  void handle_ack(atm::Vci vci, TxState& s, std::uint32_t ackno,
                  sim::Tick at);
  /// Transmits queued payloads while the window has room.
  sim::Tick pump(atm::Vci vci, TxState& s, sim::Tick at);
  sim::Tick send_frame(sim::Tick at, atm::Vci vci,
                       const std::vector<std::uint8_t>& framed);
  sim::Tick send_ack(sim::Tick at, atm::Vci vci);
  void arm_timer(atm::Vci vci, TxState& s, sim::Tick at);
  void on_timeout(atm::Vci vci);
  /// Driver reset hook: see the comment block in arq.cc.
  void on_driver_reset(sim::Tick at);
  void resync_kick();
  void give_up(atm::Vci vci, TxState& s);
  std::vector<std::uint8_t> frame(std::uint8_t type, atm::Vci vci,
                                  std::uint32_t seq, std::uint32_t ack,
                                  const std::vector<std::uint8_t>& payload);

  sim::Engine* eng_;
  ProtoStack* stack_;
  mem::AddressSpace* space_;
  host::HostCpu* cpu_;
  const host::MachineConfig* mc_;
  ArqConfig cfg_;
  Sink sink_;

  // Outgoing frames are written into a preallocated slot ring and sent
  // zero-copy (Message::view); the board DMAs straight out of the slot.
  // A slot therefore stays busy until the driver's tx-completion
  // watermark passes the send — rewriting earlier would race the DMA and
  // put torn frames on the wire.
  struct Slot {
    mem::VirtAddr va = 0;
    std::uint64_t busy_until = 0;  // driver tx_descs_accepted() watermark
  };
  static constexpr std::size_t kSlots = 96;
  static constexpr std::uint32_t kSlotBytes = 16 * 1024;
  std::vector<Slot> slots_;
  std::size_t next_slot_ = 0;

  std::map<atm::Vci, TxState> tx_;
  std::map<atm::Vci, RxState> rx_;

  int reset_hook_token_ = -1;
  sim::TimerHandle resync_timer_;
  bool resync_pending_ = false;

  std::uint64_t delivered_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t misrouted_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t gave_up_ = 0;
  std::uint64_t arena_overflows_ = 0;
  std::uint64_t resyncs_ = 0;
};

}  // namespace osiris::proto
