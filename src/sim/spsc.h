// Bounded single-producer/single-consumer ring.
//
// The cross-partition export path (see group.h) moves event envelopes from
// the partition that generated them to the partition that will dispatch
// them. Each directed channel has exactly one producer (the source
// partition's thread) and one consumer (the destination's), so the queue
// needs only two monotone cursors with acquire/release ordering — no CAS,
// no locks, no allocation on the hot path. Producer and consumer each keep
// a cached copy of the other side's cursor so the common push/pop touches
// only one shared cache line when the ring is neither full nor empty.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace osiris::sim {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full (the caller spills
  /// to its overflow list, handed over at the next barrier).
  bool try_push(T&& v) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h - tail_cache_ == slots_.size()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h - tail_cache_ == slots_.size()) return false;
    }
    slots_[h & mask_] = std::move(v);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (head_cache_ == t) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (head_cache_ == t) return false;
    }
    out = std::move(slots_[t & mask_]);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side batch pop: hands every currently-visible element to
  /// `consume` (as an rvalue) and publishes the freed slots with a single
  /// tail store, instead of one release store per element — the async
  /// drain path empties whole bursts per call. Returns the count popped.
  template <typename F>
  std::size_t drain(F&& consume) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_acquire);
    for (std::size_t i = t; i != h; ++i) consume(std::move(slots_[i & mask_]));
    if (h != t) {
      head_cache_ = h;
      tail_.store(h, std::memory_order_release);
    }
    return h - t;
  }

  /// Consumer-side emptiness check (exact only while the producer is
  /// quiesced, which is how the barrier protocol uses it).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer cursor
  std::size_t tail_cache_ = 0;                    // producer's view of tail
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer cursor
  std::size_t head_cache_ = 0;                    // consumer's view of head
};

}  // namespace osiris::sim
