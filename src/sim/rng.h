// Deterministic random number generation for skew/error injection.
//
// A thin wrapper over SplitMix64 + xoshiro256** so that simulation runs are
// reproducible across platforms and standard-library versions (std::
// distributions are not guaranteed to produce identical streams).
#pragma once

#include <cstdint>

namespace osiris::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x05151994u /* SIGCOMM '94 */) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word (xoshiro256**).
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound) {
#if defined(__SIZEOF_INT128__)
    // Multiply-shift bounded draw (Lemire); bias negligible for sim use.
    __extension__ using U128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<U128>(next()) * bound) >> 64);
#else
    return next() % bound;
#endif
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw with probability `p`.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace osiris::sim
