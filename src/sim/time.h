// Simulated time for the OSIRIS testbed.
//
// All simulation timestamps are in picoseconds. Picosecond resolution lets
// us express a single 25 MHz TURBOchannel cycle (40 ns) and a 175 MHz Alpha
// cycle (~5.714 ns) without accumulating rounding error over the billions of
// cycles a throughput run covers: a 64-bit picosecond counter wraps after
// ~213 days of simulated time, far beyond any experiment here.
#pragma once

#include <cstdint>

namespace osiris::sim {

/// Absolute simulated time, in picoseconds since simulation start.
using Tick = std::uint64_t;

/// A duration, in picoseconds.
using Duration = std::uint64_t;

/// Converts nanoseconds to ticks.
constexpr Duration ns(double v) { return static_cast<Duration>(v * 1e3); }

/// Converts microseconds to ticks.
constexpr Duration us(double v) { return static_cast<Duration>(v * 1e6); }

/// Converts milliseconds to ticks.
constexpr Duration ms(double v) { return static_cast<Duration>(v * 1e9); }

/// Converts seconds to ticks.
constexpr Duration sec(double v) { return static_cast<Duration>(v * 1e12); }

/// Converts ticks back to double-precision microseconds (for reporting).
constexpr double to_us(Duration t) { return static_cast<double>(t) / 1e6; }

/// Converts ticks back to double-precision nanoseconds (for reporting).
constexpr double to_ns(Duration t) { return static_cast<double>(t) / 1e3; }

/// Converts ticks back to double-precision seconds (for reporting).
constexpr double to_sec(Duration t) { return static_cast<double>(t) / 1e12; }

/// Duration of one cycle of a clock running at `hz`, in ticks.
constexpr Duration cycle(double hz) {
  return static_cast<Duration>(1e12 / hz);
}

/// Duration of `n` cycles of a clock running at `hz`, in ticks.
constexpr Duration cycles(double n, double hz) {
  return static_cast<Duration>(n * 1e12 / hz);
}

/// Throughput in Mbit/s given a byte count moved over a duration.
constexpr double mbps(std::uint64_t bytes, Duration elapsed) {
  if (elapsed == 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / (static_cast<double>(elapsed) / 1e6);
}

}  // namespace osiris::sim
