#include "sim/engine.h"

#include <stdexcept>
#include <utility>

namespace osiris::sim {

void Engine::schedule_at(Tick t, Event fn) {
  if (t < now_) throw std::logic_error("Engine::schedule_at: time in the past");
  queue_.push(Item{t, next_seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast on the handler
  // only, which is safe because we pop immediately after.
  Item item = std::move(const_cast<Item&>(queue_.top()));
  queue_.pop();
  now_ = item.at;
  ++dispatched_;
  item.fn();
  return true;
}

Tick Engine::run() {
  while (step()) {
  }
  return now_;
}

Tick Engine::run_until(Tick deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace osiris::sim
