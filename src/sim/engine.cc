#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace osiris::sim {

Engine::Engine()
    : wheel_(kBuckets),
      boxed_at_ctor_(Event::boxed_allocations()),
      created_(std::chrono::steady_clock::now()) {}

Engine::~Engine() = default;  // chunks_ destroys queued events with the nodes

Engine::Node* Engine::alloc_node() {
  if (free_ == nullptr) {
    auto chunk = std::make_unique<Node[]>(kChunkNodes);
    for (std::size_t i = 0; i < kChunkNodes; ++i) {
      chunk[i].next = free_;
      free_ = &chunk[i];
    }
    chunks_.push_back(std::move(chunk));
  }
  Node* n = free_;
  free_ = n->next;
  return n;
}

void Engine::recycle(Node* n) {
  n->seq = 0;  // invalidates any outstanding TimerHandle
  n->ev = Event();
  n->next = free_;
  free_ = n;
  --nodes_queued_;
}

void Engine::bucket_append(std::size_t idx, Node* n) {
  Bucket& b = wheel_[idx];
  if (b.head == nullptr) {
    b.head = b.tail = n;
    occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  } else {
    b.tail->next = n;
    b.tail = n;
  }
}

Engine::Node* Engine::insert_node(Tick t, Event fn) {
  if (t < now_) throw std::logic_error("Engine::schedule_at: time in the past");
  if (!fn) throw std::logic_error("Engine::schedule_at: empty event");
  Node* n = alloc_node();
  n->at = t;
  n->seq = ++next_seq_;
  n->next = nullptr;
  n->ev = std::move(fn);
  ++size_;
  ++nodes_queued_;
  if (size_ > high_water_) high_water_ = size_;

  if (t >= base_ + kSpan) {
    far_.push_back(n);
    std::push_heap(far_.begin(), far_.end(), FarLater{});
    ++far_scheduled_;
    return n;
  }
  if (t < base_ || ((t - base_) >> kWidthLog2) <= cur_bucket_) {
    // At or before the bucket currently being drained: merge into the
    // sorted run at its (at, seq) position. Equal-tick events carry the
    // largest seq so far, so they land at the end of their tick's group —
    // the FIFO contract — which for the common schedule-at-now case means
    // an O(1) append.
    const auto it = std::lower_bound(run_.begin() + static_cast<std::ptrdiff_t>(run_pos_),
                                     run_.end(), n, node_less);
    run_.insert(it, n);
    return n;
  }
  bucket_append((t - base_) >> kWidthLog2, n);
  return n;
}

std::size_t Engine::next_occupied(std::size_t from) const {
  if (from >= kBuckets) return kNoBucket;
  std::size_t word = from >> 6;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) {
      return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    }
    if (++word >= occupied_.size()) return kNoBucket;
    bits = occupied_[word];
  }
}

void Engine::rewindow() {
  const Tick t0 = far_.front()->at;
  base_ = (t0 >> kWidthLog2) << kWidthLog2;
  cur_bucket_ = 0;
  scan_from_ = 0;
  ++rewindows_;
  const Tick limit = base_ + kSpan;
  while (!far_.empty() && far_.front()->at < limit) {
    std::pop_heap(far_.begin(), far_.end(), FarLater{});
    Node* n = far_.back();
    far_.pop_back();
    n->next = nullptr;
    bucket_append((n->at - base_) >> kWidthLog2, n);
    ++spills_;
  }
}

bool Engine::ensure_run() {
  if (run_pos_ < run_.size()) return true;
  run_.clear();
  run_pos_ = 0;
  while (true) {
    const std::size_t idx = next_occupied(scan_from_);
    if (idx != kNoBucket) {
      Bucket& b = wheel_[idx];
      for (Node* n = b.head; n != nullptr;) {
        Node* next = n->next;
        run_.push_back(n);
        n = next;
      }
      b.head = b.tail = nullptr;
      occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
      // A bucket mixes direct appends with far-heap spills, so the chain
      // is not globally ordered; one sort per bucket restores (at, seq).
      std::sort(run_.begin(), run_.end(), node_less);
      cur_bucket_ = idx;
      scan_from_ = idx + 1;
      return true;
    }
    if (far_.empty()) return false;
    rewindow();
  }
}

Engine::Node* Engine::peek_live() {
  while (ensure_run()) {
    Node* n = run_[run_pos_];
    if (n->ev) return n;
    ++run_pos_;  // cancelled tombstone: discard without advancing time
    recycle(n);
  }
  return nullptr;
}

void Engine::dispatch_front() {
  Node* n = run_[run_pos_++];
  now_ = n->at;
  ++dispatched_;
  --size_;
  Event ev = std::move(n->ev);
  recycle(n);
  ev();
}

bool Engine::cancel(TimerHandle& h) {
  Node* n = h.node_;
  const std::uint64_t seq = h.seq_;
  h = TimerHandle{};
  if (n == nullptr || seq == 0 || n->seq != seq || !n->ev) return false;
  // The node stays queued as a tombstone (removing it from the middle of a
  // bucket chain or the heap would cost more than skipping it at dispatch);
  // only the callable is destroyed, and seq stays intact so the comparators
  // keep their strict order.
  n->ev = Event();
  --size_;
  ++cancelled_;
  return true;
}

bool Engine::step() {
  if (peek_live() == nullptr) return false;
  dispatch_front();
  return true;
}

std::size_t Engine::step_tick() {
  Node* n = peek_live();
  if (n == nullptr) return 0;
  const Tick t = n->at;
  std::size_t fired = 0;
  // The probe reads the wall clock only when attached, so the detached hot
  // path pays a single predictable branch.
  std::chrono::steady_clock::time_point t0;
  if (step_probe_ != nullptr) t0 = std::chrono::steady_clock::now();
  do {
    dispatch_front();
    ++fired;
    n = peek_live();
  } while (n != nullptr && n->at == t);
  if (step_probe_ != nullptr) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    step_probe_->record(static_cast<std::uint64_t>(ns));
  }
  return fired;
}

std::optional<Tick> Engine::next_event_time() {
  Node* n = peek_live();
  if (n == nullptr) return std::nullopt;
  return n->at;
}

Tick Engine::run() {
  while (step_tick() != 0) {
  }
  return now_;
}

Tick Engine::run_until(Tick deadline) {
  while (true) {
    Node* n = peek_live();
    if (n == nullptr || n->at > deadline) break;
    dispatch_front();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

Engine::Stats Engine::stats() const {
  Stats s;
  s.dispatched = dispatched_;
  s.cancelled = cancelled_;
  s.pending = size_;
  s.high_water = high_water_;
  s.far_scheduled = far_scheduled_;
  s.spills = spills_;
  s.rewindows = rewindows_;
  s.arena_chunks = chunks_.size();
  s.boxed_events = Event::boxed_allocations() - boxed_at_ctor_;
  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - created_)
          .count();
  s.events_per_sec =
      s.wall_seconds > 0 ? static_cast<double>(dispatched_) / s.wall_seconds : 0;
  return s;
}

}  // namespace osiris::sim
