// Lightweight statistics accumulators used throughout the simulator.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace osiris::sim {

/// Running mean / min / max / stddev over double-valued samples.
class Summary {
 public:
  void add(double v) {
    ++n_;
    sum_ += v;
    sum2_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

  [[nodiscard]] double variance() const {
    if (n_ < 2) return 0.0;
    const double m = mean();
    const double v = sum2_ / static_cast<double>(n_) - m * m;
    return v > 0.0 ? v : 0.0;
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Summary{}; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sum2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used for latency distributions in the benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double v) {
    summary_.add(v);
    const double span = hi_ - lo_;
    auto idx = static_cast<std::int64_t>((v - lo_) / span *
                                         static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
  }

  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
  [[nodiscard]] const Summary& summary() const { return summary_; }

  /// Approximate quantile from bucket midpoints, q in [0, 1].
  [[nodiscard]] double quantile(double q) const {
    const std::uint64_t total = summary_.count();
    if (total == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t seen = 0;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  Summary summary_;
};

/// Log2-bucketed histogram over unsigned 64-bit samples.
///
/// Bucket b holds samples whose bit_width is b (bucket 0 = the value 0,
/// bucket b >= 1 = [2^(b-1), 2^b)).  Recording is branch-light and
/// allocation-free — an array index plus four scalar updates — which makes
/// it safe on simulation hot paths.  Quantiles interpolate linearly inside
/// the containing bucket and are clamped to the observed [min, max], so
/// small-count histograms do not report values never seen.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(uint64) in [0, 64]

  void record(std::uint64_t v) {
    ++counts_[static_cast<std::size_t>(std::bit_width(v))];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return counts_;
  }

  /// Approximate quantile, q in [0, 1]; linear interpolation within the
  /// containing power-of-two bucket, clamped to [min, max].
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    if (count_ == 1) return static_cast<double>(min_);
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_ - 1);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      const auto here = static_cast<double>(counts_[b]);
      if (target < static_cast<double>(seen) + here) {
        double lo = 0.0, hi = 1.0;
        if (b >= 1) {
          lo = static_cast<double>(std::uint64_t{1} << (b - 1));
          hi = b >= 64 ? static_cast<double>(max_)
                       : static_cast<double>(std::uint64_t{1} << b);
        }
        const double frac = (target - static_cast<double>(seen)) / here;
        const double v = lo + frac * (hi - lo);
        return std::clamp(v, static_cast<double>(min_),
                          static_cast<double>(max_));
      }
      seen += counts_[b];
    }
    return static_cast<double>(max_);
  }

  /// Folds `other` into this histogram (aggregate-on-read for sharded use).
  void merge(const Log2Histogram& other) {
    if (other.count_ == 0) return;
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void reset() { *this = Log2Histogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace osiris::sim
