// Lightweight statistics accumulators used throughout the simulator.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace osiris::sim {

/// Running mean / min / max / stddev over double-valued samples.
class Summary {
 public:
  void add(double v) {
    ++n_;
    sum_ += v;
    sum2_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

  [[nodiscard]] double variance() const {
    if (n_ < 2) return 0.0;
    const double m = mean();
    const double v = sum2_ / static_cast<double>(n_) - m * m;
    return v > 0.0 ? v : 0.0;
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Summary{}; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sum2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used for latency distributions in the benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double v) {
    summary_.add(v);
    const double span = hi_ - lo_;
    auto idx = static_cast<std::int64_t>((v - lo_) / span *
                                         static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
  }

  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
  [[nodiscard]] const Summary& summary() const { return summary_; }

  /// Approximate quantile from bucket midpoints, q in [0, 1].
  [[nodiscard]] double quantile(double q) const {
    const std::uint64_t total = summary_.count();
    if (total == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t seen = 0;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  Summary summary_;
};

}  // namespace osiris::sim
