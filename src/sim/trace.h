// Lightweight event tracing.
//
// A bounded ring of {time, component, event, a, b} records that the board
// processors, driver and interrupt controller append to when a Trace is
// attached (NodeConfig::trace). Tracing costs nothing when absent and is
// cheap when present; the ring overwrites oldest entries, so it is safe to
// leave on for long runs and inspect the tail after a failure.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/time.h"

namespace osiris::sim {

struct TraceEvent {
  Tick at = 0;
  const char* component = "";  // static strings only
  const char* event = "";
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Trace {
 public:
  // Capacity is clamped to >= 1: a zero-capacity ring would make record()
  // compute head_ % 0.
  explicit Trace(std::size_t capacity = 4096)
      : ring_(capacity == 0 ? 1 : capacity) {}

  void record(Tick at, const char* component, const char* event,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    ring_[head_ % ring_.size()] = TraceEvent{at, component, event, a, b};
    ++head_;
  }

  /// Events in chronological order (oldest surviving first).
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    const std::size_t n = head_ < ring_.size() ? head_ : ring_.size();
    const std::size_t start = head_ < ring_.size() ? 0 : head_ % ring_.size();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  /// Total events recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const { return head_; }

  /// Events the ring has silently overwritten (recorded minus surviving).
  [[nodiscard]] std::uint64_t dropped_events() const {
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
  }

  /// Count of surviving events matching a predicate.
  [[nodiscard]] std::size_t count(
      const std::function<bool(const TraceEvent&)>& pred) const {
    std::size_t n = 0;
    for (const TraceEvent& e : events()) {
      if (pred(e)) ++n;
    }
    return n;
  }

  /// Streams the surviving tail, one event per line.
  void dump(std::ostream& os, std::size_t max_lines = 100) const {
    const auto evs = events();
    const std::size_t start = evs.size() > max_lines ? evs.size() - max_lines : 0;
    for (std::size_t i = start; i < evs.size(); ++i) {
      const TraceEvent& e = evs[i];
      os << to_us(e.at) << "us " << e.component << "." << e.event << "(" << e.a
         << ", " << e.b << ")\n";
    }
  }

  /// Multi-line text dump of the surviving tail.
  [[nodiscard]] std::string dump(std::size_t max_lines = 100) const {
    std::ostringstream os;
    dump(os, max_lines);
    return os.str();
  }

  void clear() { head_ = 0; }

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t head_ = 0;
};

/// Convenience: record only when a trace is attached.
inline void trace_event(Trace* t, Tick at, const char* component,
                        const char* event, std::uint64_t a = 0,
                        std::uint64_t b = 0) {
  if (t != nullptr) t->record(at, component, event, a, b);
}

}  // namespace osiris::sim
