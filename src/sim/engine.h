// Discrete-event simulation engine.
//
// The engine owns a time-ordered queue of events; each event is a callback
// that fires at an absolute tick. Actors (board processors, the host CPU,
// link sublinks, ...) hold a reference to the engine and schedule their own
// continuations. Events at equal ticks fire in scheduling order (stable
// FIFO), which keeps runs fully deterministic.
//
// Every experiment funnels millions of events through this file, so the
// internals are built for throughput (see DESIGN.md §8):
//   * Event is a one-shot type-erased callable with inline small-buffer
//     storage — the common capture ("this" plus a couple of scalars) never
//     touches the heap;
//   * event nodes live in a freelist-backed arena, so steady-state
//     scheduling allocates nothing;
//   * the queue is a calendar: a wheel of fixed-width tick buckets covering
//     a sliding near-future window, backed by a far-future binary heap that
//     spills into the wheel as time advances. Dispatch order is exactly
//     (tick, schedule-sequence) — identical to the old priority queue.
//   * timers scheduled through schedule_timer() return a TimerHandle and
//     can be cancelled, so retransmit/watchdog timers stop firing dead
//     generations.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/stats.h"
#include "sim/time.h"

namespace osiris::sim {

namespace detail {
/// Process-wide boxing counter shared by every BasicEvent instantiation.
struct EventMeter {
  static inline std::uint64_t boxed_allocs = 0;
};
}  // namespace detail

/// One-shot type-erased callable with small-buffer optimization. Unlike
/// std::function, captures up to Inline bytes are stored inline (no heap
/// allocation) and invocation destroys the callable — an event fires once.
///
/// The inline budget is a template parameter because different carriers
/// want different trade-offs: queue nodes (Event) stay lean for cache
/// density, while cross-partition envelopes (RemoteEvent) are sized to
/// carry a delivered ATM cell by value without boxing.
template <std::size_t Inline>
class BasicEvent {
 public:
  /// Inline capture budget. For Event it is sized for the engine's common
  /// case: a `this` pointer plus a handful of scalars (epoch, serial,
  /// tick), with room for a small descriptor. Larger captures are boxed on
  /// the heap (and counted; see boxed_allocations()).
  static constexpr std::size_t kInlineBytes = Inline;

  BasicEvent() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, BasicEvent> &&
                                        std::is_invocable_r_v<void, D&>>>
  BasicEvent(F&& f) {  // NOLINT(google-explicit-constructor): callable adapter
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ++detail::EventMeter::boxed_allocs;
      ops_ = &kBoxedOps<D>;
    }
  }

  BasicEvent(BasicEvent&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  BasicEvent& operator=(BasicEvent&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  BasicEvent(const BasicEvent&) = delete;
  BasicEvent& operator=(const BasicEvent&) = delete;

  ~BasicEvent() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes and destroys the callable. One-shot: the event is empty
  /// afterwards (and stays valid even if the callable throws).
  void operator()() {
    const Ops* o = ops_;
    ops_ = nullptr;
    o->invoke_destroy(buf_);
  }

  /// Process-wide count of events whose captures were too large for the
  /// inline buffer and were heap-boxed. The engine snapshots this to meter
  /// residual allocations.
  [[nodiscard]] static std::uint64_t boxed_allocations() noexcept {
    return detail::EventMeter::boxed_allocs;
  }

 private:
  struct Ops {
    void (*invoke_destroy)(void* self);
    void (*relocate)(void* dst, void* src);  // move into dst, destroy src
    void (*destroy)(void* self);
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  template <typename D>
  static D* stored(void* p) noexcept {
    return std::launder(reinterpret_cast<D*>(p));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* self) {
        D* d = stored<D>(self);
        D local(std::move(*d));
        d->~D();
        local();
      },
      [](void* dst, void* src) {
        D* s = stored<D>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* self) { stored<D>(self)->~D(); },
  };

  template <typename D>
  static constexpr Ops kBoxedOps = {
      [](void* self) {
        std::unique_ptr<D> d(*stored<D*>(self));
        (*d)();
      },
      [](void* dst, void* src) { ::new (dst) D*(*stored<D*>(src)); },
      [](void* self) { delete *stored<D*>(self); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// The engine's queue-node event type.
using Event = BasicEvent<48>;

/// Cross-partition envelope event (see EngineGroup in group.h): sized so a
/// link delivery — sink pointer, lane, and a 53-byte ATM cell by value —
/// travels inline through the export ring without touching the heap.
using RemoteEvent = BasicEvent<88>;

namespace detail {
/// Arena-backed queue node. Nodes are never freed individually; fired and
/// cancelled nodes return to the engine's freelist for reuse.
struct EventNode {
  Tick at = 0;
  std::uint64_t seq = 0;  // unique per scheduling; 0 = recycled
  EventNode* next = nullptr;
  Event ev;
};
}  // namespace detail

/// Handle to a cancellable scheduled event (see Engine::schedule_timer).
/// Valid only against the engine that issued it. Cheap to copy; stale
/// handles (fired or already-cancelled events) are safe no-ops to cancel.
class TimerHandle {
 public:
  TimerHandle() noexcept = default;

 private:
  friend class Engine;
  TimerHandle(detail::EventNode* n, std::uint64_t s) noexcept
      : node_(n), seq_(s) {}
  detail::EventNode* node_ = nullptr;
  std::uint64_t seq_ = 0;
};

class Engine {
 public:
  using Event = sim::Event;

  /// Self-metering snapshot (see stats()).
  struct Stats {
    std::uint64_t dispatched = 0;      ///< events fired
    std::uint64_t cancelled = 0;       ///< timers cancelled before firing
    std::size_t pending = 0;           ///< live events currently queued
    std::size_t high_water = 0;        ///< max pending since construction
    std::uint64_t far_scheduled = 0;   ///< events that took the overflow heap
    std::uint64_t spills = 0;          ///< heap → wheel migrations
    std::uint64_t rewindows = 0;       ///< wheel window advances
    std::uint64_t arena_chunks = 0;    ///< node arena chunks allocated
    std::uint64_t boxed_events = 0;    ///< heap-boxed events since construction
    double wall_seconds = 0;           ///< wall-clock time since construction
    double events_per_sec = 0;         ///< dispatched / wall_seconds
  };

  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedules `fn` to run `delay` ticks from now.
  void schedule(Duration delay, Event fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at absolute time `t`. `t` must not be in the past.
  void schedule_at(Tick t, Event fn) { insert_node(t, std::move(fn)); }

  /// Like schedule()/schedule_at(), but returns a handle the caller can
  /// pass to cancel() to stop the event from firing.
  TimerHandle schedule_timer(Duration delay, Event fn) {
    return schedule_timer_at(now_ + delay, std::move(fn));
  }
  TimerHandle schedule_timer_at(Tick t, Event fn) {
    detail::EventNode* n = insert_node(t, std::move(fn));
    return TimerHandle{n, n->seq};
  }

  /// Cancels a timer if it has not fired yet. Returns true if this call
  /// cancelled it; false for stale handles (already fired or cancelled).
  /// Clears the handle either way.
  bool cancel(TimerHandle& h);

  /// Runs events until the queue drains. Returns the final time.
  Tick run();

  /// Runs events with timestamps <= `deadline`; leaves later events queued.
  /// Advances now() to `deadline` even if the queue drains earlier.
  Tick run_until(Tick deadline);

  /// Advances now() to `t` without dispatching anything (no-op when `t` is
  /// in the past). The partitioned group uses it to equalize the partition
  /// clocks once a parallel run drains, so follow-up scheduling against
  /// any partition sees one consistent time.
  void advance_to(Tick t) {
    if (t > now_) now_ = t;
  }

  /// Fires the single earliest event. Returns false if the queue is empty.
  bool step();

  /// Batch dispatch: fires every event sharing the earliest pending tick —
  /// including events the batch itself schedules at that same tick — in
  /// one call, without re-entering the drain scan between them. Returns
  /// the number of events fired; 0 means the queue is drained. run() and
  /// run_until() are built on this, and callers that coalesce same-tick
  /// work (e.g. the board receive path's burst handling) step the clock
  /// one tick-batch at a time with it.
  std::size_t step_tick();

  /// Timestamp of the earliest live pending event, or nullopt when the
  /// queue is drained. Non-const: looking ahead purges cancelled
  /// tombstones (which is invisible to dispatch order). This is the
  /// per-partition clock a conservative parallel run synchronizes on.
  [[nodiscard]] std::optional<Tick> next_event_time();

  /// Number of live (uncancelled) events currently queued.
  [[nodiscard]] std::size_t pending() const { return size_; }

  /// Total number of events dispatched since construction.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

  [[nodiscard]] Stats stats() const;

  /// Attaches a wall-clock probe to step_tick(): each tick batch's dispatch
  /// time (in nanoseconds) is recorded into `h`. Null (the default)
  /// detaches the probe, leaving only a pointer test on the dispatch path
  /// — bench_engine runs detached, so the hot loop pays nothing else.
  void set_step_probe(Log2Histogram* h) { step_probe_ = h; }

 private:
  // Calendar geometry: 4096 buckets of 2^16 ticks (65.536 ns) cover a
  // ~268 µs sliding window — wide enough that cell times (~682 ns),
  // firmware costs (tens of ns) and DMA/bus bookings land in the wheel;
  // millisecond-scale protocol timers take the far heap, which is rare by
  // construction. Dispatch order is (at, seq) regardless of geometry.
  static constexpr std::size_t kBucketBits = 12;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  static constexpr std::uint32_t kWidthLog2 = 16;
  static constexpr Tick kSpan = Tick{kBuckets} << kWidthLog2;
  static constexpr std::size_t kChunkNodes = 256;
  static constexpr std::size_t kNoBucket = ~std::size_t{0};

  using Node = detail::EventNode;

  struct Bucket {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  static bool node_less(const Node* a, const Node* b) {
    return a->at != b->at ? a->at < b->at : a->seq < b->seq;
  }
  struct FarLater {  // min-heap on (at, seq)
    bool operator()(const Node* a, const Node* b) const { return node_less(b, a); }
  };

  Node* alloc_node();
  void recycle(Node* n);
  Node* insert_node(Tick t, Event fn);
  void bucket_append(std::size_t idx, Node* n);
  [[nodiscard]] std::size_t next_occupied(std::size_t from) const;
  bool ensure_run();      // makes run_[run_pos_] valid; false if drained
  Node* peek_live();      // next live node, purging cancelled ones
  void dispatch_front();  // fires run_[run_pos_]
  void rewindow();        // re-bases the wheel on the far heap's minimum

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t size_ = 0;        // live events queued
  std::size_t nodes_queued_ = 0;  // live + cancelled tombstones
  std::size_t high_water_ = 0;

  // Current-bucket run: sorted by (at, seq), consumed from run_pos_.
  std::vector<Node*> run_;
  std::size_t run_pos_ = 0;

  Tick base_ = 0;               // window start, multiple of bucket width
  std::size_t cur_bucket_ = 0;  // bucket whose content lives in run_
  std::size_t scan_from_ = 1;   // first bucket the drain scan considers
  std::vector<Bucket> wheel_;
  std::array<std::uint64_t, kBuckets / 64> occupied_{};

  std::vector<Node*> far_;  // heap, FarLater

  Node* free_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> chunks_;

  std::uint64_t far_scheduled_ = 0;
  std::uint64_t spills_ = 0;
  std::uint64_t rewindows_ = 0;
  std::uint64_t boxed_at_ctor_ = 0;
  std::chrono::steady_clock::time_point created_;

  Log2Histogram* step_probe_ = nullptr;  // optional step_tick() wall-clock probe
};

}  // namespace osiris::sim
