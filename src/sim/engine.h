// Discrete-event simulation engine.
//
// The engine owns a time-ordered queue of events; each event is a callback
// that fires at an absolute tick. Actors (board processors, the host CPU,
// link sublinks, ...) hold a reference to the engine and schedule their own
// continuations. Events at equal ticks fire in scheduling order (stable
// FIFO), which keeps runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace osiris::sim {

class Engine {
 public:
  using Event = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedules `fn` to run `delay` ticks from now.
  void schedule(Duration delay, Event fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at absolute time `t`. `t` must not be in the past.
  void schedule_at(Tick t, Event fn);

  /// Runs events until the queue drains. Returns the final time.
  Tick run();

  /// Runs events with timestamps <= `deadline`; leaves later events queued.
  /// Advances now() to `deadline` even if the queue drains earlier.
  Tick run_until(Tick deadline);

  /// Fires the single earliest event. Returns false if the queue is empty.
  bool step();

  /// Number of events currently queued.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total number of events dispatched since construction.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Item {
    Tick at;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    Event fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
};

}  // namespace osiris::sim
