// Serial resources with calendar-based arbitration.
//
// A Resource models a unit that serves one request at a time: the
// TURBOchannel, a host CPU, an on-board microprocessor, a link sublink.
// Requests reserve the resource for a duration starting no earlier than a
// given time; the reservation occupies the EARLIEST free interval of
// sufficient length. Keeping a calendar of busy intervals (rather than a
// single FIFO horizon) matters because actors compute their own timelines:
// the host driver may book a dual-port-RAM access far in the future (after
// a long compute phase) while the board's next DMA — issued later in call
// order but earlier in simulated time — must still slot into the gap
// before it, as it would on real hardware.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "sim/engine.h"
#include "sim/time.h"

namespace osiris::sim {

class Resource {
 public:
  Resource(Engine& eng, std::string name) : eng_(&eng), name_(std::move(name)) {}

  /// Reserves the resource for `hold` ticks starting no earlier than now.
  /// Returns the completion time of this reservation.
  Tick reserve(Duration hold) { return reserve_at(eng_->now(), hold); }

  /// Reserves the earliest interval of length `hold` starting at or after
  /// `from`. Returns the completion time.
  Tick reserve_at(Tick from, Duration hold) {
    prune();
    Tick start = from;
    if (hold > 0) {
      // Walk intervals overlapping or following `start` until a gap fits.
      auto it = busy_.upper_bound(start);
      if (it != busy_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > start) start = prev->second;
      }
      while (it != busy_.end() && it->first < start + hold) {
        start = std::max(start, it->second);
        ++it;
      }
      busy_.emplace(start, start + hold);
    }
    busy_until_ = std::max(busy_until_, start + hold);
    busy_total_ += hold;
    wait_total_ += start - from;
    ++reservations_;
    return start + hold;
  }

  /// Latest completion time of any reservation (a new request at that time
  /// is guaranteed to start immediately).
  [[nodiscard]] Tick free_at() const { return busy_until_; }

  /// True if any reservation extends past the current instant.
  [[nodiscard]] bool busy() const { return busy_until_ > eng_->now(); }

  /// Cumulative busy time across all reservations.
  [[nodiscard]] Duration busy_total() const { return busy_total_; }

  /// Cumulative time reservations spent waiting behind earlier ones.
  [[nodiscard]] Duration wait_total() const { return wait_total_; }

  /// Number of reservations made.
  [[nodiscard]] std::uint64_t reservations() const { return reservations_; }

  /// Fraction of time [0, now] the resource has been busy.
  [[nodiscard]] double utilization() const {
    const Tick t = eng_->now();
    return t == 0 ? 0.0 : static_cast<double>(busy_total_) / static_cast<double>(t);
  }

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Forgets accumulated statistics (not the busy calendar).
  void reset_stats() {
    busy_total_ = 0;
    wait_total_ = 0;
    reservations_ = 0;
  }

 private:
  /// Drops intervals that ended before the current simulated time: new
  /// requests always carry from >= the issuing event's time, so nothing
  /// can ever be booked there again.
  void prune() {
    const Tick now = eng_->now();
    auto it = busy_.begin();
    while (it != busy_.end() && it->second < now) it = busy_.erase(it);
  }

  Engine* eng_;
  std::string name_;
  std::map<Tick, Tick> busy_;  // start -> end
  Tick busy_until_ = 0;
  Duration busy_total_ = 0;
  Duration wait_total_ = 0;
  std::uint64_t reservations_ = 0;
};

}  // namespace osiris::sim
