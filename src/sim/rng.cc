#include "sim/rng.h"

#include <cmath>

namespace osiris::sim {

double Rng::exponential(double mean) {
  // Inverse-CDF; clamp away from 0 to avoid log(0).
  double u = uniform();
  if (u < 1e-18) u = 1e-18;
  return -mean * std::log(u);
}

}  // namespace osiris::sim
