#include "sim/group.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace osiris::sim {

EngineGroup::EngineGroup(std::size_t partitions) {
  if (partitions == 0) {
    throw std::invalid_argument("EngineGroup: need at least one partition");
  }
  engines_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    engines_.push_back(std::make_unique<Engine>());
  }
  chan_idx_.assign(partitions * partitions, -1);
  parts_.resize(partitions);
}

EngineGroup::~EngineGroup() = default;

EngineGroup::Channel* EngineGroup::channel(std::size_t src, std::size_t dst) {
  const int idx = chan_idx_[src * partitions() + dst];
  return idx < 0 ? nullptr : channels_[static_cast<std::size_t>(idx)].get();
}

void EngineGroup::connect(std::size_t src, std::size_t dst, Duration lookahead) {
  if (src >= partitions() || dst >= partitions() || src == dst) {
    throw std::logic_error("EngineGroup::connect: bad partition pair");
  }
  if (lookahead == 0) {
    throw std::logic_error(
        "EngineGroup::connect: zero lookahead admits no conservative window");
  }
  Channel* ch = channel(src, dst);
  if (ch == nullptr) {
    auto owned = std::make_unique<Channel>();
    ch = owned.get();
    ch->src = src;
    ch->dst = dst;
    ch->idx = static_cast<std::uint32_t>(channels_.size());
    ch->lookahead = lookahead;
    chan_idx_[src * partitions() + dst] = static_cast<int>(channels_.size());
    channels_.push_back(std::move(owned));
    parts_[dst].inbound.push_back(ch);
    parts_[src].outbound.push_back(ch);
  } else {
    ch->lookahead = std::min(ch->lookahead, lookahead);
  }
}

bool EngineGroup::staged_less(const Staged& a, const Staged& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.ch != b.ch) return a.ch < b.ch;
  return a.seq < b.seq;
}

void EngineGroup::flush_overflow(Channel* ch) {
  // Producer side: move spilled envelopes back into the ring as slots free
  // up. Order across ring and overflow does not matter — the consumer
  // restores the canonical (tick, channel, seq) order from the stamped
  // seqs — but the published EOT stays capped while anything is pending.
  while (ch->overflow_head < ch->overflow.size()) {
    if (!ch->ring.try_push(std::move(ch->overflow[ch->overflow_head]))) return;
    ++ch->overflow_head;
  }
  ch->overflow.clear();
  ch->overflow_head = 0;
  ch->overflow_min = kNoHorizon;
}

void EngineGroup::publish_eot(Channel* ch, Tick ready) {
  Tick val = saturating_add(ready, ch->lookahead);
  // Anything still in the producer-side overflow is invisible to the
  // consumer: the promise cannot extend past the earliest spilled tick.
  val = std::min(val, ch->overflow_min);
  // Single-writer monotone ratchet: only advance, and only touch the
  // shared cache line when the value actually moves.
  if (val > ch->eot.load(std::memory_order_relaxed)) {
    ch->eot.store(val, std::memory_order_release);
  }
}

void EngineGroup::schedule_remote(std::size_t src, std::size_t dst, Tick at,
                                 RemoteEvent ev) {
  Channel* ch = channel(src, dst);
  if (ch == nullptr) {
    throw std::logic_error("EngineGroup::schedule_remote: no channel " +
                           std::to_string(src) + " -> " + std::to_string(dst));
  }
  const Tick earliest = engines_[src]->now() + ch->lookahead;
  if (at < earliest) {
    throw std::logic_error(
        "EngineGroup::schedule_remote: event violates the channel's declared "
        "lookahead (conservative sync would be unsound)");
  }
  if (!ev) {
    throw std::logic_error("EngineGroup::schedule_remote: empty event");
  }
  Envelope e{at, ch->next_seq++, std::move(ev)};
  flush_overflow(ch);
  if (ch->overflow_head < ch->overflow.size() || !ch->ring.try_push(std::move(e))) {
    ch->overflow_min = std::min(ch->overflow_min, at);
    ch->overflow.push_back(std::move(e));
    ++ch->overflowed;
  }
}

void EngineGroup::stage_envelope(std::size_t p, std::uint32_t ch_idx,
                                 Envelope e) {
  Part& pt = parts_[p];
  Inbox& ib = pt.inbox;
  std::uint32_t slot;
  if (!ib.free.empty()) {
    slot = ib.free.back();
    ib.free.pop_back();
    ib.slots[slot] = std::move(e.ev);
  } else {
    slot = static_cast<std::uint32_t>(ib.slots.size());
    ib.slots.push_back(std::move(e.ev));
  }
  pt.stage.push_back(Staged{e.at, ch_idx, e.seq, slot});
  std::push_heap(pt.stage.begin(), pt.stage.end(),
                 [](const Staged& a, const Staged& b) { return staged_less(b, a); });
}

void EngineGroup::inject(std::size_t p, const Staged& s) {
  // The queue node carries only {inbox, slot} — lean enough to stay inline
  // — while the fat envelope waits in the pool until its tick comes up.
  Inbox* ibp = &parts_[p].inbox;
  const std::uint32_t slot = s.slot;
  engines_[p]->schedule_at(s.at, [ibp, slot] {
    RemoteEvent ev = std::move(ibp->slots[slot]);
    ibp->free.push_back(slot);
    ev();
  });
}

void EngineGroup::drain_inbound(std::size_t p) {
  for (Channel* ch : parts_[p].inbound) {
    const std::uint32_t idx = ch->idx;
    const std::size_t got = ch->ring.drain(
        [this, p, idx](Envelope&& e) { stage_envelope(p, idx, std::move(e)); });
    ch->imported += got;
  }
}

bool EngineGroup::pump(std::size_t p, PhaseProfile* prof) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point mark;
  auto lap = [&mark] {
    const auto t = Clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - mark).count();
    mark = t;
    return static_cast<std::uint64_t>(ns);
  };
  if (prof != nullptr) mark = Clock::now();

  Part& pt = parts_[p];
  // Producer duties first: reclaim ring space for spilled exports so the
  // EOT cap can lift without waiting for a barrier.
  for (Channel* ch : pt.outbound) {
    if (ch->overflow_head < ch->overflow.size()) flush_overflow(ch);
  }
  // Safe horizon: read every inbound EOT (acquire), THEN drain the rings.
  // The order matters — an acquire of EOT value E guarantees every
  // envelope with tick < E is already visible in its ring, so after the
  // drain the staged set below the horizon is complete.
  Tick horizon = kNoHorizon;  // no inbound channel: free-run
  for (Channel* ch : pt.inbound) {
    const Tick e = ch->eot.load(std::memory_order_acquire);
    horizon = std::min(horizon, e == 0 ? Tick{0} : e - 1);
  }
  drain_inbound(p);
  if (prof != nullptr) prof->drain_ns.record(lap());

  Engine& eng = *engines_[p];
  const auto staged_min = [&pt]() {
    return pt.stage.empty() ? kNoHorizon : pt.stage.front().at;
  };
  bool progressed = false;
  for (std::size_t batches = 0; batches < kBatchesPerPump; ++batches) {
    const std::optional<Tick> tl = eng.next_event_time();
    Tick t = staged_min();
    if (tl && *tl < t) t = *tl;
    if (t == kNoHorizon || t > horizon) break;
    // Publish before dispatching tick t: every export this batch makes
    // carries at >= t + lookahead, so the promise holds the moment it is
    // visible — and the peer can already run up to it.
    for (Channel* ch : pt.outbound) publish_eot(ch, t);
    // Inject this tick's staged imports in canonical (channel, seq) order.
    // t <= horizon proves the set is complete, and injecting at the moment
    // tick t becomes next-to-dispatch pins their interleave with local
    // events to a point defined by simulation state alone.
    while (!pt.stage.empty() && pt.stage.front().at == t) {
      std::pop_heap(pt.stage.begin(), pt.stage.end(),
                    [](const Staged& a, const Staged& b) {
                      return staged_less(b, a);
                    });
      inject(p, pt.stage.back());
      pt.stage.pop_back();
    }
    eng.step_tick();
    progressed = true;
  }
  // Idle promise: the partition cannot execute anything before its next
  // local event, its earliest staged import, or the first tick a peer
  // could still send (horizon + 1) — so nothing can leave it before that
  // plus the lookahead. This is the null-message that lets an idle
  // neighbor pipeline instead of stalling.
  Tick ready = saturating_add(horizon, 1);
  if (const auto tl = eng.next_event_time()) ready = std::min(ready, *tl);
  ready = std::min(ready, staged_min());
  for (Channel* ch : pt.outbound) publish_eot(ch, ready);
  if (prof != nullptr) prof->dispatch_ns.record(lap());
  return progressed;
}

void EngineGroup::fused_round() {
  ++rounds_;
  // Every worker is quiesced at the barrier (their arrivals happen-before
  // this section), so producer- and consumer-owned state is safe to touch.
  // Hand over everything in flight: ring backlogs, then overflow spills.
  for (auto& chp : channels_) {
    Channel* ch = chp.get();
    const std::size_t dst = ch->dst;
    const std::uint32_t idx = ch->idx;
    ch->imported += ch->ring.drain([this, dst, idx](Envelope&& e) {
      stage_envelope(dst, idx, std::move(e));
    });
    for (std::size_t i = ch->overflow_head; i < ch->overflow.size(); ++i) {
      stage_envelope(dst, idx, std::move(ch->overflow[i]));
      ++ch->imported;
    }
    ch->overflow.clear();
    ch->overflow_head = 0;
    ch->overflow_min = kNoHorizon;
  }
  // Global next event: the earliest tick anything anywhere can execute.
  Tick n = kNoHorizon;
  for (std::size_t p = 0; p < partitions(); ++p) {
    if (const auto t = engines_[p]->next_event_time()) n = std::min(n, *t);
    if (!parts_[p].stage.empty()) n = std::min(n, parts_[p].stage.front().at);
  }
  if (n == kNoHorizon) {
    // Drained. Equalize the partition clocks at the latest dispatched tick
    // so follow-up scheduling against either node sees one consistent
    // "now" (and the value is a pure function of the simulation).
    Tick m = 0;
    for (const auto& eng : engines_) m = std::max(m, eng->now());
    for (auto& eng : engines_) eng->advance_to(m);
    done_ = true;
    return;
  }
  done_ = false;
  // Skip-ahead: no partition can execute before n, so no channel can
  // deliver before n + lookahead. Jumping every EOT there at once crosses
  // dead time (quiet gaps before far-future watchdogs) in a single round
  // instead of creeping lookahead-sized windows — and guarantees the
  // partition owning tick n can dispatch it, so the group always makes
  // progress after a fallback round.
  for (auto& chp : channels_) publish_eot(chp.get(), n);
}

void EngineGroup::worker(int wid, int threads) {
  using Clock = std::chrono::steady_clock;
  PhaseProfile* prof =
      profiling_ && static_cast<std::size_t>(wid) < profiles_.size()
          ? &profiles_[static_cast<std::size_t>(wid)]
          : nullptr;
  int idle = 0;
  while (true) {
    bool progress = false;
    for (std::size_t p = static_cast<std::size_t>(wid); p < partitions();
         p += static_cast<std::size_t>(threads)) {
      progress = pump(p, prof) || progress;
    }
    if (progress) {
      idle = 0;
      continue;
    }
    if (++idle < kIdleRetries) {
      // Bounded backoff before the barrier: a peer may be about to publish
      // an EOT that unblocks us, and re-pumping is far cheaper than a
      // full fused round.
      Clock::time_point t0;
      if (prof != nullptr) t0 = Clock::now();
      for (int i = 0; i < (1 << idle); ++i) detail::cpu_relax();
      if (prof != nullptr) {
        prof->stall_ns.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 t0)
                .count()));
      }
      continue;
    }
    idle = 0;
    Clock::time_point t0;
    if (prof != nullptr) t0 = Clock::now();
    const SyncBarrier::WaitStats ws =
        barrier_->arrive_and_wait([this] { fused_round(); });
    if (prof != nullptr) {
      prof->barrier_ns.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()));
      prof->barrier_spins.record(ws.spins);
      prof->barrier_yields.record(ws.yields);
    }
    if (done_) break;
  }
}

Tick EngineGroup::run(int threads) {
  threads = std::clamp(threads, 1, static_cast<int>(partitions()));
  barrier_ = std::make_unique<SyncBarrier>(threads);
  if (profiling_ && profiles_.size() < static_cast<std::size_t>(threads)) {
    profiles_.resize(static_cast<std::size_t>(threads));
  }
  // Prime: one fused round on the calling thread publishes initial EOTs
  // (or detects an already-empty group) before any worker reads them.
  fused_round();
  if (done_) return now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    pool.emplace_back([this, w, threads] { worker(w, threads); });
  }
  worker(0, threads);
  for (auto& t : pool) t.join();
  return now();
}

Tick EngineGroup::now() const {
  Tick t = 0;
  for (const auto& eng : engines_) t = std::max(t, eng->now());
  return t;
}

Tick EngineGroup::eot(std::size_t src, std::size_t dst) const {
  const int idx = chan_idx_[src * partitions() + dst];
  if (idx < 0) throw std::logic_error("EngineGroup::eot: no such channel");
  return channels_[static_cast<std::size_t>(idx)]->eot.load(
      std::memory_order_acquire);
}

EngineGroup::PhaseProfile EngineGroup::profile() const {
  PhaseProfile out;
  for (const auto& p : profiles_) out.merge(p);
  return out;
}

EngineGroup::Stats EngineGroup::stats() const {
  Stats s;
  s.rounds = rounds_;
  for (const auto& ch : channels_) {
    s.remote_events += ch->imported;
    s.ring_overflows += ch->overflowed;
  }
  for (const auto& eng : engines_) s.dispatched += eng->dispatched();
  return s;
}

}  // namespace osiris::sim
