#include "sim/group.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace osiris::sim {

EngineGroup::EngineGroup(std::size_t partitions) {
  if (partitions == 0) {
    throw std::invalid_argument("EngineGroup: need at least one partition");
  }
  engines_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    engines_.push_back(std::make_unique<Engine>());
  }
  chan_idx_.assign(partitions * partitions, -1);
  inbound_.resize(partitions);
  inboxes_.resize(partitions);
  inbound_window_.assign(partitions, kNoHorizon);
  horizon_.assign(partitions, 0);
}

EngineGroup::~EngineGroup() = default;

EngineGroup::Channel* EngineGroup::channel(std::size_t src, std::size_t dst) {
  const int idx = chan_idx_[src * partitions() + dst];
  return idx < 0 ? nullptr : channels_[static_cast<std::size_t>(idx)].get();
}

void EngineGroup::connect(std::size_t src, std::size_t dst, Duration lookahead) {
  if (src >= partitions() || dst >= partitions() || src == dst) {
    throw std::logic_error("EngineGroup::connect: bad partition pair");
  }
  if (lookahead == 0) {
    throw std::logic_error(
        "EngineGroup::connect: zero lookahead admits no conservative window");
  }
  Channel* ch = channel(src, dst);
  if (ch == nullptr) {
    auto owned = std::make_unique<Channel>();
    ch = owned.get();
    ch->src = src;
    ch->dst = dst;
    ch->lookahead = lookahead;
    chan_idx_[src * partitions() + dst] = static_cast<int>(channels_.size());
    channels_.push_back(std::move(owned));
    inbound_[dst].push_back(ch);
  } else {
    ch->lookahead = std::min(ch->lookahead, lookahead);
  }
  inbound_window_[dst] = std::min(inbound_window_[dst], ch->lookahead);
}

void EngineGroup::schedule_remote(std::size_t src, std::size_t dst, Tick at,
                                  RemoteEvent ev) {
  Channel* ch = channel(src, dst);
  if (ch == nullptr) {
    throw std::logic_error("EngineGroup::schedule_remote: no channel " +
                           std::to_string(src) + " -> " + std::to_string(dst));
  }
  const Tick earliest = engines_[src]->now() + ch->lookahead;
  if (at < earliest) {
    throw std::logic_error(
        "EngineGroup::schedule_remote: event violates the channel's declared "
        "lookahead (conservative sync would be unsound)");
  }
  if (!ev) {
    throw std::logic_error("EngineGroup::schedule_remote: empty event");
  }
  Envelope e{at, std::move(ev)};
  // Once anything has spilled, later envelopes must spill too: the consumer
  // only drains at barriers, and replays ring-then-overflow in push order.
  if (!ch->overflow.empty() || !ch->ring.try_push(std::move(e))) {
    ch->overflow.push_back(std::move(e));
    ++ch->overflowed;
  }
}

void EngineGroup::import_envelope(std::size_t p, Envelope e) {
  Inbox& ib = inboxes_[p];
  std::uint32_t idx;
  if (!ib.free.empty()) {
    idx = ib.free.back();
    ib.free.pop_back();
    ib.slots[idx] = std::move(e.ev);
  } else {
    idx = static_cast<std::uint32_t>(ib.slots.size());
    ib.slots.push_back(std::move(e.ev));
  }
  // The queue node carries only {inbox, slot} — lean enough to stay inline —
  // while the fat envelope waits in the pool until its tick comes up.
  Inbox* ibp = &ib;
  engines_[p]->schedule_at(e.at, [ibp, idx] {
    RemoteEvent ev = std::move(ibp->slots[idx]);
    ibp->free.push_back(idx);
    ev();
  });
}

void EngineGroup::drain_inbound(std::size_t p) {
  for (Channel* ch : inbound_[p]) {
    Envelope e;
    while (ch->ring.try_pop(e)) {
      import_envelope(p, std::move(e));
      ++ch->imported;
    }
    // The producer's overflow list is quiesced here: it was last written
    // before the barrier that ended the previous round.
    for (Envelope& o : ch->overflow) {
      import_envelope(p, std::move(o));
      ++ch->imported;
    }
    ch->overflow.clear();
  }
}

void EngineGroup::compute_round() {
  Tick n = kNoHorizon;
  bool any = false;
  for (auto& eng : engines_) {
    if (const auto t = eng->next_event_time()) {
      n = std::min(n, *t);
      any = true;
    }
  }
  done_ = !any;
  if (done_) return;
  ++rounds_;
  for (std::size_t p = 0; p < partitions(); ++p) {
    const Tick w = inbound_window_[p];
    horizon_[p] =
        (w == kNoHorizon || n >= kNoHorizon - w) ? kNoHorizon : n + w - 1;
  }
}

void EngineGroup::worker(int wid, int threads) {
  // Partitions are owned round-robin by worker id. Ownership only decides
  // *which thread* runs a partition; imports are sequenced per destination,
  // so the dispatch order is the same for every thread count.
  using Clock = std::chrono::steady_clock;
  PhaseProfile* prof =
      profiling_ && static_cast<std::size_t>(wid) < profiles_.size()
          ? &profiles_[static_cast<std::size_t>(wid)]
          : nullptr;
  // Returns nanoseconds since `mark` and advances it, so consecutive phases
  // share one clock read at each boundary.
  Clock::time_point mark;
  auto lap = [&mark] {
    const auto t = Clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - mark).count();
    mark = t;
    return static_cast<std::uint64_t>(ns);
  };
  while (true) {
    if (prof != nullptr) mark = Clock::now();
    for (std::size_t p = static_cast<std::size_t>(wid); p < partitions();
         p += static_cast<std::size_t>(threads)) {
      drain_inbound(p);
    }
    if (prof != nullptr) prof->drain_ns.record(lap());
    barrier_->arrive_and_wait([this] { compute_round(); });
    if (prof != nullptr) prof->barrier_ns.record(lap());
    if (done_) break;
    for (std::size_t p = static_cast<std::size_t>(wid); p < partitions();
         p += static_cast<std::size_t>(threads)) {
      if (horizon_[p] == kNoHorizon) {
        engines_[p]->run();
      } else {
        engines_[p]->run_until(horizon_[p]);
      }
    }
    if (prof != nullptr) prof->dispatch_ns.record(lap());
    barrier_->arrive_and_wait();
    if (prof != nullptr) prof->barrier_ns.record(lap());
  }
}

Tick EngineGroup::run(int threads) {
  threads = std::clamp(threads, 1, static_cast<int>(partitions()));
  barrier_ = std::make_unique<SyncBarrier>(threads);
  if (profiling_ && profiles_.size() < static_cast<std::size_t>(threads)) {
    profiles_.resize(static_cast<std::size_t>(threads));
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    pool.emplace_back([this, w, threads] { worker(w, threads); });
  }
  worker(0, threads);
  for (auto& t : pool) t.join();
  return now();
}

Tick EngineGroup::now() const {
  Tick t = 0;
  for (const auto& eng : engines_) t = std::max(t, eng->now());
  return t;
}

EngineGroup::PhaseProfile EngineGroup::profile() const {
  PhaseProfile out;
  for (const auto& p : profiles_) out.merge(p);
  return out;
}

EngineGroup::Stats EngineGroup::stats() const {
  Stats s;
  s.rounds = rounds_;
  for (const auto& ch : channels_) {
    s.remote_events += ch->imported;
    s.ring_overflows += ch->overflowed;
  }
  for (const auto& eng : engines_) s.dispatched += eng->dispatched();
  return s;
}

}  // namespace osiris::sim
