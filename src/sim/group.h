// Partitioned conservative parallel DES (DESIGN.md §9 and §14).
//
// An EngineGroup owns N calendar engines ("partitions"); each Testbed node
// (and, in principle, each striped-link sublink) gets one. Partition state
// is thread-confined: a partition's events run only on the thread that
// owns it, so the hot dispatch path is exactly the serial engine's.
//
// Partitions interact only through declared channels, each carrying a
// lookahead: a lower bound on the latency between the moment the source
// schedules a cross-partition event and the tick it fires at. For the
// OSIRIS testbed the bound is physical — a submitted cell serializes for
// one cell time and then propagates for the wire's fixed delay before the
// peer can see it — which is exactly the structure conservative parallel
// simulation needs.
//
// Synchronization is mostly asynchronous (DESIGN.md §14). Each channel
// publishes an atomic earliest-output time (EOT): a promise by the
// producer that nothing it has not yet made visible in the channel's ring
// will fire before that tick. A partition reads its inbound EOTs, drains
// the rings, and free-runs its own calendar up to
//   horizon = min(inbound EOTs) - 1
// without synchronizing with anyone; producers re-publish EOT as their
// clock advances, so two busy partitions pipeline with no barrier at all.
// Imported envelopes are staged in a per-destination heap and injected
// into the local calendar in (tick, channel, per-channel seq) order at the
// instant their tick becomes the next to dispatch — a point defined purely
// by simulation state — so dispatch order (and therefore every stat,
// trace, and chaos fingerprint) is bit-identical for every thread count.
//
// Only when a partition cannot advance (next event beyond its horizon)
// does it fall back to a single fused barrier per round: the last arriver
// hands over ring backlogs and producer-side overflow, detects
// termination, and — when events remain — jumps every channel's EOT to
// (global next event + lookahead), so empty stretches of simulated time
// cost one round instead of a creep of lookahead-sized windows.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "sim/engine.h"
#include "sim/spsc.h"
#include "sim/time.h"

namespace osiris::sim {

namespace detail {
/// Polite busy-wait hint: tells the core we are spinning on another
/// thread's store so SMT siblings (and the power budget) get the slot.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}
}  // namespace detail

/// Reusable sense-reversing barrier. The last thread to arrive runs the
/// caller-supplied leader section (with every other participant quiesced)
/// before releasing the phase; release/acquire on the phase word gives the
/// happens-before edges the leader's reads and writes need.
///
/// Waiters spin with exponential backoff (cpu_relax bursts that double up
/// to a cap) before falling back to yield() — the testbed is often run
/// with more threads than cores (not least in CI), where pure spinning
/// would invert the speedup. Each wait reports how it stalled: spins mean
/// "waiting on a peer core", yields mean "waiting on the scheduler", and
/// the profiling histograms keep the two separate.
class SyncBarrier {
 public:
  /// How one arrive_and_wait() stalled (leader returns zeros: it never
  /// waits, it works).
  struct WaitStats {
    std::uint64_t spins = 0;
    std::uint64_t yields = 0;
  };

  explicit SyncBarrier(int parties) : parties_(parties) {}

  template <typename F>
  WaitStats arrive_and_wait(F&& leader) {
    const std::uint32_t ph = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      leader();
      arrived_.store(0, std::memory_order_relaxed);
      phase_.store(ph + 1, std::memory_order_release);
      return {};
    }
    WaitStats ws;
    std::uint32_t burst = kSpinStart;
    while (phase_.load(std::memory_order_acquire) == ph) {
      if (burst < kSpinCap) {
        for (std::uint32_t i = 0; i < burst; ++i) detail::cpu_relax();
        ws.spins += burst;
        burst <<= 1;
      } else {
        std::this_thread::yield();
        ++ws.yields;
      }
    }
    spins_.fetch_add(ws.spins, std::memory_order_relaxed);
    yields_.fetch_add(ws.yields, std::memory_order_relaxed);
    return ws;
  }

  WaitStats arrive_and_wait() {
    return arrive_and_wait([] {});
  }

  /// Cumulative stall counters over every wait at this barrier: relaxed
  /// reads, meant for between-run reporting, not synchronization.
  [[nodiscard]] std::uint64_t total_spins() const {
    return spins_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_yields() const {
    return yields_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kSpinStart = 16;
  static constexpr std::uint32_t kSpinCap = 4096;
  int parties_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint32_t> phase_{0};
  std::atomic<std::uint64_t> spins_{0};
  std::atomic<std::uint64_t> yields_{0};
};

class EngineGroup {
 public:
  /// Aggregate counters for the last / cumulative run()s.
  struct Stats {
    std::uint64_t rounds = 0;          ///< fused fallback barrier rounds
    std::uint64_t remote_events = 0;   ///< envelopes imported
    std::uint64_t ring_overflows = 0;  ///< envelopes that spilled past the ring
    std::uint64_t dispatched = 0;      ///< events fired, summed over partitions
  };

  explicit EngineGroup(std::size_t partitions);
  ~EngineGroup();
  EngineGroup(const EngineGroup&) = delete;
  EngineGroup& operator=(const EngineGroup&) = delete;

  [[nodiscard]] std::size_t partitions() const { return engines_.size(); }
  [[nodiscard]] Engine& partition(std::size_t i) { return *engines_[i]; }

  /// Declares a directed channel src -> dst whose events always carry at
  /// least `lookahead` ticks of latency. The lookahead must be nonzero —
  /// a zero bound admits no conservative window (rejected, not clamped,
  /// so a misconfigured link fails loudly instead of deadlocking).
  /// Redeclaring an existing channel tightens its lookahead downward.
  void connect(std::size_t src, std::size_t dst, Duration lookahead);

  /// Schedules `ev` onto partition `dst`'s engine at absolute tick `at`,
  /// from partition `src`. Must respect the channel's declared lookahead:
  /// at >= src.now() + lookahead. Callable from src's thread only (the
  /// channel ring is single-producer). The event is dispatched on dst's
  /// thread, merged into dst's order at (tick, channel, send order).
  void schedule_remote(std::size_t src, std::size_t dst, Tick at,
                       RemoteEvent ev);

  /// Runs every partition to completion on `threads` OS threads (clamped
  /// to [1, partitions]). threads == 1 executes the identical EOT/pump
  /// protocol in-process, so dispatch order — and therefore every stat and
  /// trace — is independent of the thread count. Returns now().
  Tick run(int threads = 1);

  /// Max of the partition clocks (equalized whenever run() completes).
  [[nodiscard]] Tick now() const;

  /// The EOT currently published on channel src -> dst: a lower bound on
  /// the tick of anything the producer has not yet made visible. Atomic
  /// read, callable from any thread (tests probe monotonicity with it).
  /// Throws if the channel was never declared.
  [[nodiscard]] Tick eot(std::size_t src, std::size_t dst) const;

  [[nodiscard]] Stats stats() const;

  /// Worker-phase wall-clock breakdown, sampled per pump (one pass over a
  /// worker's partitions): time importing envelopes (drain), dispatching
  /// events (dispatch), idling in no-progress retry backoff (stall), and
  /// blocked at the fused fallback barrier (barrier). barrier_spins /
  /// barrier_yields split each barrier wait into spinning on a peer vs
  /// yielding to the scheduler — on an oversubscribed host the yields
  /// dominate, which is a scheduling problem, not a protocol one.
  struct PhaseProfile {
    Log2Histogram drain_ns;
    Log2Histogram dispatch_ns;
    Log2Histogram stall_ns;
    Log2Histogram barrier_ns;
    Log2Histogram barrier_spins;
    Log2Histogram barrier_yields;
    void merge(const PhaseProfile& o) {
      drain_ns.merge(o.drain_ns);
      dispatch_ns.merge(o.dispatch_ns);
      stall_ns.merge(o.stall_ns);
      barrier_ns.merge(o.barrier_ns);
      barrier_spins.merge(o.barrier_spins);
      barrier_yields.merge(o.barrier_yields);
    }
  };

  /// Turns per-pump phase timing on for subsequent run()s. Off (the
  /// default) the worker loop takes no clock reads at all.
  void enable_profiling(bool on = true) { profiling_ = on; }
  [[nodiscard]] bool profiling_enabled() const { return profiling_; }

  /// Phase timings merged over workers; call between run()s, not during.
  [[nodiscard]] PhaseProfile profile() const;

 private:
  struct Envelope {
    Tick at = 0;
    std::uint64_t seq = 0;  // producer-stamped, monotone per channel
    RemoteEvent ev;
  };
  /// One directed src -> dst edge. The producer side (ring pushes, the
  /// overflow spill, next_seq) is touched only by src's thread; the
  /// consumer side (ring pops, imported) only by dst's; eot is the one
  /// cross-thread word, single-writer (src, or the fused-barrier leader
  /// while everyone is quiesced).
  struct Channel {
    std::size_t src = 0;
    std::size_t dst = 0;
    std::uint32_t idx = 0;   // declaration index: the tie-break in
                             // (tick, channel, seq) import order
    Tick lookahead = 0;
    std::atomic<Tick> eot{0};
    SpscRing<Envelope> ring{kRingCapacity};
    // Producer-owned spill for a full ring, drained back into the ring
    // opportunistically and handed over wholesale at fused barriers.
    // While anything is pending here the published EOT is capped at the
    // earliest spilled tick — the consumer cannot see those envelopes yet.
    std::vector<Envelope> overflow;
    std::size_t overflow_head = 0;   // consumed prefix of `overflow`
    // Cached min tick over pending overflow; conservative (a partial
    // flush can leave it low, never high), reset when the spill empties.
    Tick overflow_min = ~Tick{0};
    std::uint64_t next_seq = 0;      // producer-owned
    std::uint64_t overflowed = 0;    // producer-owned counter
    std::uint64_t imported = 0;      // consumer-owned counter
  };
  /// A drained-but-not-yet-injected envelope: the fat RemoteEvent parks in
  /// the destination's inbox pool and the staging heap keys {tick,
  /// channel, seq} so injection order is canonical no matter when the ring
  /// was drained.
  struct Staged {
    Tick at = 0;
    std::uint32_t ch = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };
  /// Destination-owned parking pool for imported envelopes: the engine's
  /// queue nodes only carry lean 48-byte events, so the big envelope waits
  /// in a pooled slot and the scheduled event captures {inbox, slot}.
  struct Inbox {
    std::vector<RemoteEvent> slots;
    std::vector<std::uint32_t> free;
  };
  /// Per-partition consumer-side state, thread-confined to the worker that
  /// owns the partition (the fused-barrier leader touches it only with
  /// everyone quiesced).
  struct Part {
    std::vector<Channel*> inbound;
    std::vector<Channel*> outbound;
    std::vector<Staged> stage;  // min-heap on (at, ch, seq)
    Inbox inbox;
  };

  static constexpr std::size_t kRingCapacity = 1024;
  static constexpr Tick kNoHorizon = ~Tick{0};
  /// Tick batches one pump() dispatches before rotating to the worker's
  /// next partition: keeps co-owned partitions' EOTs advancing (threads <
  /// partitions) without re-reading inbound EOTs per batch.
  static constexpr std::size_t kBatchesPerPump = 256;
  /// No-progress pumps a worker retries (with growing cpu_relax backoff)
  /// before falling back to the fused barrier: enough to ride out a peer
  /// that is about to publish a fresh EOT, few enough that true dead time
  /// reaches the skip-ahead round quickly.
  static constexpr int kIdleRetries = 8;

  Channel* channel(std::size_t src, std::size_t dst);
  static Tick saturating_add(Tick t, Tick d) {
    return t >= kNoHorizon - d ? kNoHorizon : t + d;
  }
  static bool staged_less(const Staged& a, const Staged& b);
  void flush_overflow(Channel* ch);
  void publish_eot(Channel* ch, Tick ready);
  void stage_envelope(std::size_t p, std::uint32_t ch_idx, Envelope e);
  void inject(std::size_t p, const Staged& s);
  void drain_inbound(std::size_t p);
  /// The asynchronous hot loop: refresh horizon, drain rings, dispatch up
  /// to the horizon injecting staged imports tick by tick, publish EOTs.
  /// Returns whether any event was dispatched.
  bool pump(std::size_t p, PhaseProfile* prof);
  /// Fused-barrier leader section (all workers quiesced): hand over ring
  /// backlogs and overflow, detect termination (equalizing the partition
  /// clocks), or jump every channel's EOT past the global next event.
  void fused_round();
  void worker(int wid, int threads);

  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<int> chan_idx_;  // [src * n + dst] -> index or -1
  std::vector<Part> parts_;

  // Written by the fused-barrier leader, read by all workers; the
  // barrier's release/acquire ordering covers both directions.
  bool done_ = false;
  std::unique_ptr<SyncBarrier> barrier_;

  std::uint64_t rounds_ = 0;

  // One slot per worker id (resized in run()); each worker writes only its
  // own slot, so profiling is race-free without synchronization.
  bool profiling_ = false;
  std::vector<PhaseProfile> profiles_;
};

}  // namespace osiris::sim
