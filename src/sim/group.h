// Partitioned conservative parallel DES (DESIGN.md §9).
//
// An EngineGroup owns N calendar engines ("partitions"); each Testbed node
// (and, in principle, each striped-link sublink) gets one. Partition state
// is thread-confined: a partition's events run only on the thread that
// owns it, so the hot dispatch path is exactly the serial engine's.
//
// Partitions interact only through declared channels, each carrying a
// lookahead: a lower bound on the latency between the moment the source
// schedules a cross-partition event and the tick it fires at. For the
// OSIRIS testbed the bound is physical — a submitted cell serializes for
// one cell time and then propagates for the wire's fixed delay before the
// peer can see it — which is exactly the structure conservative parallel
// simulation needs.
//
// Synchronization is a barrier-window protocol. Each round:
//   1. every partition imports the envelopes its inbound rings accumulated
//      (partitions are quiesced, so ring contents are complete and their
//      order is the deterministic order the producer pushed in);
//   2. one thread computes N = the earliest pending tick anywhere and
//      hands each partition p the horizon N + W_p - 1, where W_p is the
//      minimum lookahead over p's inbound channels (a partition with no
//      inbound channel free-runs: nothing can ever reach it);
//   3. every partition dispatches its events up to its horizon.
// Every event a round generates fires at its destination p no earlier than
// N + W_p, i.e. in a later round, so no partition ever runs past what a
// neighbor might still send it — and
// because imports happen only at quiesced barriers and are sequenced in
// (channel index, push order), dispatch order is a pure function of the
// simulation state: a 2-thread run is bit-identical to the 1-thread run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "sim/engine.h"
#include "sim/spsc.h"
#include "sim/time.h"

namespace osiris::sim {

/// Reusable sense-reversing barrier. The last thread to arrive runs the
/// caller-supplied leader section (with every other participant quiesced)
/// before releasing the phase; release/acquire on the phase word gives the
/// happens-before edges the leader's reads and writes need. Spins briefly,
/// then yields — the testbed is often run with more threads than cores
/// (not least in CI), where pure spinning would invert the speedup.
class SyncBarrier {
 public:
  explicit SyncBarrier(int parties) : parties_(parties) {}

  template <typename F>
  void arrive_and_wait(F&& leader) {
    const std::uint32_t ph = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      leader();
      arrived_.store(0, std::memory_order_relaxed);
      phase_.store(ph + 1, std::memory_order_release);
      return;
    }
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == ph) {
      if (++spins > kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  void arrive_and_wait() {
    arrive_and_wait([] {});
  }

 private:
  static constexpr int kSpinLimit = 2048;
  int parties_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint32_t> phase_{0};
};

class EngineGroup {
 public:
  /// Aggregate counters for the last / cumulative run()s.
  struct Stats {
    std::uint64_t rounds = 0;          ///< barrier rounds executed
    std::uint64_t remote_events = 0;   ///< envelopes imported
    std::uint64_t ring_overflows = 0;  ///< envelopes that spilled past the ring
    std::uint64_t dispatched = 0;      ///< events fired, summed over partitions
  };

  explicit EngineGroup(std::size_t partitions);
  ~EngineGroup();
  EngineGroup(const EngineGroup&) = delete;
  EngineGroup& operator=(const EngineGroup&) = delete;

  [[nodiscard]] std::size_t partitions() const { return engines_.size(); }
  [[nodiscard]] Engine& partition(std::size_t i) { return *engines_[i]; }

  /// Declares a directed channel src -> dst whose events always carry at
  /// least `lookahead` ticks of latency. The lookahead must be nonzero —
  /// a zero bound admits no conservative window (rejected, not clamped,
  /// so a misconfigured link fails loudly instead of deadlocking).
  /// Redeclaring an existing channel tightens its lookahead downward.
  void connect(std::size_t src, std::size_t dst, Duration lookahead);

  /// Schedules `ev` onto partition `dst`'s engine at absolute tick `at`,
  /// from partition `src`. Must respect the channel's declared lookahead:
  /// at >= src.now() + lookahead. Callable from src's thread only (the
  /// channel ring is single-producer). The event is dispatched on dst's
  /// thread, interleaved into dst's (tick, seq) order at import time.
  void schedule_remote(std::size_t src, std::size_t dst, Tick at,
                       RemoteEvent ev);

  /// Runs every partition to completion on `threads` OS threads (clamped
  /// to [1, partitions]). threads == 1 executes the identical round
  /// protocol in-process, so dispatch order — and therefore every stat and
  /// trace — is independent of the thread count. Returns now().
  Tick run(int threads = 1);

  /// Max of the partition clocks (they agree at every quiesced point).
  [[nodiscard]] Tick now() const;

  [[nodiscard]] Stats stats() const;

  /// Worker-phase wall-clock breakdown: per barrier round, each worker
  /// records how long it spent importing envelopes (drain), dispatching its
  /// partitions' events (dispatch), and stalled at the two barriers
  /// (barrier — two samples per round). Shows where multi-thread overhead
  /// goes: barrier-heavy rounds mean the lookahead window is too small for
  /// the event density, dispatch-heavy means real work dominates.
  struct PhaseProfile {
    Log2Histogram drain_ns;
    Log2Histogram dispatch_ns;
    Log2Histogram barrier_ns;
    void merge(const PhaseProfile& o) {
      drain_ns.merge(o.drain_ns);
      dispatch_ns.merge(o.dispatch_ns);
      barrier_ns.merge(o.barrier_ns);
    }
  };

  /// Turns per-round phase timing on for subsequent run()s. Off (the
  /// default) the worker loop takes no clock reads at all.
  void enable_profiling(bool on = true) { profiling_ = on; }
  [[nodiscard]] bool profiling_enabled() const { return profiling_; }

  /// Phase timings merged over workers; call between run()s, not during.
  [[nodiscard]] PhaseProfile profile() const;

 private:
  struct Envelope {
    Tick at = 0;
    RemoteEvent ev;
  };
  struct Channel {
    std::size_t src = 0;
    std::size_t dst = 0;
    Tick lookahead = 0;
    SpscRing<Envelope> ring{kRingCapacity};
    std::vector<Envelope> overflow;  // producer-owned; drained at barriers
    std::uint64_t overflowed = 0;    // producer-owned counter
    std::uint64_t imported = 0;      // consumer-owned counter
  };
  /// Destination-owned parking pool for imported envelopes: the engine's
  /// queue nodes only carry lean 48-byte events, so the big envelope waits
  /// in a pooled slot and the scheduled event captures {inbox, slot}.
  struct Inbox {
    std::vector<RemoteEvent> slots;
    std::vector<std::uint32_t> free;
  };

  static constexpr std::size_t kRingCapacity = 1024;
  static constexpr Tick kNoHorizon = ~Tick{0};

  Channel* channel(std::size_t src, std::size_t dst);
  void drain_inbound(std::size_t p);
  void import_envelope(std::size_t p, Envelope e);
  /// Leader section: recomputes per-partition horizons; sets done_ when
  /// every engine has drained (rings are empty at this point — they were
  /// drained on the same side of the barrier).
  void compute_round();
  void worker(int wid, int threads);

  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<int> chan_idx_;                 // [src * n + dst] -> index or -1
  std::vector<std::vector<Channel*>> inbound_;  // per destination
  std::vector<Inbox> inboxes_;
  // Per-destination window: min lookahead over the partition's inbound
  // channels (kNoHorizon when it has none and can free-run).
  std::vector<Tick> inbound_window_;

  // Round state: written by the barrier leader, read by all workers; the
  // barrier's release/acquire ordering covers both directions.
  std::vector<Tick> horizon_;
  bool done_ = false;
  std::unique_ptr<SyncBarrier> barrier_;

  std::uint64_t rounds_ = 0;

  // One slot per worker id (resized in run()); each worker writes only its
  // own slot, so profiling is race-free without synchronization.
  bool profiling_ = false;
  std::vector<PhaseProfile> profiles_;
};

}  // namespace osiris::sim
