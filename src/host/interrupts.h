// Host interrupt dispatch.
//
// Every board interrupt is fielded by the kernel's handler — even those
// destined for application device channels (§3.2): handling one costs
// MachineConfig::interrupt_service of host CPU time (75 us on the
// DECstation 5000/200, §2.1.2), after which the registered handler runs
// (typically: dispatch the driver thread, or signal an ADC channel-driver
// thread).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "board/board.h"
#include "fault/fault.h"
#include "host/machine.h"
#include "sim/engine.h"

namespace osiris::host {

class InterruptController {
 public:
  /// Handler invoked once the interrupt has been serviced; `done` is the
  /// time the service routine finished, `channel` the board channel.
  using Handler = std::function<void(sim::Tick done, int channel)>;

  InterruptController(sim::Engine& eng, const MachineConfig& cfg, HostCpu& cpu)
      : eng_(&eng), cfg_(&cfg), cpu_(&cpu) {}

  /// Registers a handler; several may coexist (e.g. one per ADC), each
  /// filtering on the channel argument. Returns a token for
  /// remove_handler() — a closing ADC MUST unregister, or a violation
  /// delivered after teardown would run a handler over freed state.
  int add_handler(board::Irq irq, Handler h) {
    const int token = next_token_++;
    handlers_[static_cast<int>(irq)].push_back({token, std::move(h)});
    return token;
  }

  /// Unregisters a handler. Interrupts already raised but not yet serviced
  /// resolve their handler list at service time, so removal also drops
  /// those in-flight deliveries.
  void remove_handler(int token) {
    for (auto& [irq, hs] : handlers_) {
      std::erase_if(hs, [token](const Entry& e) { return e.token == token; });
    }
  }

  /// Enables fault injection (not owned): kIrqLost makes a raised
  /// interrupt vanish before the host ever sees it.
  void set_fault_plane(fault::FaultPlane* f) { faults_ = f; }

  /// Board-side entry point (wired as the boards' IrqSink).
  void raise(board::Irq irq, int channel) {
    if (fault::fires(faults_, fault::Point::kIrqLost)) {
      // The interrupt line glitch is silent: no handler runs, no time is
      // charged. Recovery relies on the driver's watchdog poll.
      ++lost_;
      return;
    }
    ++raised_;
    const sim::Tick done = cpu_->exec(eng_->now(), Work{cfg_->interrupt_service, 0});
    // Handlers are looked up when the service routine completes, not
    // captured now: a handler unregistered in between (channel teardown)
    // must not run against freed state.
    eng_->schedule_at(done, [this, irq, done, channel] {
      const auto it = handlers_.find(static_cast<int>(irq));
      if (it == handlers_.end()) return;
      std::vector<int> tokens;
      tokens.reserve(it->second.size());
      for (const Entry& e : it->second) tokens.push_back(e.token);
      for (const int tok : tokens) {
        // Re-resolve per token: a handler may unregister others (e.g. the
        // supervisor quarantining a channel from inside its own handler).
        const auto jt = handlers_.find(static_cast<int>(irq));
        if (jt == handlers_.end()) return;
        for (const Entry& e : jt->second) {
          if (e.token == tok) {
            e.handler(done, channel);
            break;
          }
        }
      }
    });
  }

  [[nodiscard]] std::uint64_t raised() const { return raised_; }
  [[nodiscard]] std::uint64_t lost() const { return lost_; }
  void reset_stats() { raised_ = 0; }

 private:
  struct Entry {
    int token;
    Handler handler;
  };

  sim::Engine* eng_;
  const MachineConfig* cfg_;
  HostCpu* cpu_;
  fault::FaultPlane* faults_ = nullptr;
  std::unordered_map<int, std::vector<Entry>> handlers_;
  int next_token_ = 0;
  std::uint64_t raised_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace osiris::host
