// Host interrupt dispatch.
//
// Every board interrupt is fielded by the kernel's handler — even those
// destined for application device channels (§3.2): handling one costs
// MachineConfig::interrupt_service of host CPU time (75 us on the
// DECstation 5000/200, §2.1.2), after which the registered handler runs
// (typically: dispatch the driver thread, or signal an ADC channel-driver
// thread).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "board/board.h"
#include "fault/fault.h"
#include "host/machine.h"
#include "sim/engine.h"

namespace osiris::host {

class InterruptController {
 public:
  /// Handler invoked once the interrupt has been serviced; `done` is the
  /// time the service routine finished, `channel` the board channel.
  using Handler = std::function<void(sim::Tick done, int channel)>;

  InterruptController(sim::Engine& eng, const MachineConfig& cfg, HostCpu& cpu)
      : eng_(&eng), cfg_(&cfg), cpu_(&cpu) {}

  /// Registers a handler; several may coexist (e.g. one per ADC), each
  /// filtering on the channel argument.
  void add_handler(board::Irq irq, Handler h) {
    handlers_[static_cast<int>(irq)].push_back(std::move(h));
  }

  /// Enables fault injection (not owned): kIrqLost makes a raised
  /// interrupt vanish before the host ever sees it.
  void set_fault_plane(fault::FaultPlane* f) { faults_ = f; }

  /// Board-side entry point (wired as the boards' IrqSink).
  void raise(board::Irq irq, int channel) {
    if (fault::fires(faults_, fault::Point::kIrqLost)) {
      // The interrupt line glitch is silent: no handler runs, no time is
      // charged. Recovery relies on the driver's watchdog poll.
      ++lost_;
      return;
    }
    ++raised_;
    const sim::Tick done = cpu_->exec(eng_->now(), Work{cfg_->interrupt_service, 0});
    const auto it = handlers_.find(static_cast<int>(irq));
    if (it == handlers_.end()) return;
    for (const Handler& h : it->second) {
      eng_->schedule_at(done, [h, done, channel] { h(done, channel); });
    }
  }

  [[nodiscard]] std::uint64_t raised() const { return raised_; }
  [[nodiscard]] std::uint64_t lost() const { return lost_; }
  void reset_stats() { raised_ = 0; }

 private:
  sim::Engine* eng_;
  const MachineConfig* cfg_;
  HostCpu* cpu_;
  fault::FaultPlane* faults_ = nullptr;
  std::unordered_map<int, std::vector<Handler>> handlers_;
  std::uint64_t raised_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace osiris::host
