// Machine models: DECstation 5000/200 and DEC 3000/600.
//
// The simulation does not emulate MIPS or Alpha instruction streams;
// instead, host software (driver, protocols, test programs) is executed as
// work items with costs drawn from this config. Every constant is either
// taken directly from the paper or derived from the paper's measurements;
// see machine.cc for the derivations.
//
// The two machines differ in the three ways the paper leans on (§2.3,
// §2.7, §4):
//  * memory system: on the 5000/200 every memory transaction occupies the
//    TURBOchannel, so CPU memory traffic and DMA serialize; the 3000/600
//    has a crossbar connecting TURBOchannel, memory and cache, so they
//    proceed concurrently;
//  * cache coherence: the 5000/200's cache is not updated by DMA (stale
//    data; software invalidation at ~1 cycle/word); the 3000/600's is;
//  * raw speed: 25 MHz R3000 vs 175 MHz Alpha — software path costs are
//    correspondingly smaller on the 3000/600.
#pragma once

#include <cstdint>
#include <string>

#include "mem/cache.h"
#include "sim/time.h"
#include "tc/turbochannel.h"

namespace osiris::host {

struct MachineConfig {
  std::string name;
  double cpu_hz = 25e6;
  tc::BusConfig bus;
  mem::CacheConfig cache;
  bool crossbar = false;    // DMA concurrent with CPU memory traffic?
  double mem_word_ns = 40;  // CPU main-memory word time when crossbar

  // Cache timing (per 32-bit word / per line).
  double hit_cycles_per_word = 1.0;
  double miss_penalty_cycles_per_line = 16.0;
  double checksum_alu_cycles_per_word = 2.0;
  double copy_cycles_per_word = 2.0;
  double invalidate_cycles_per_word = 1.0;        // paper §2.3
  double invalidate_extra_cycles_per_word = 0.6;  // induced misses (eager mode)

  // Fixed software path costs.
  sim::Duration interrupt_service = 0;  // fielding one interrupt
  sim::Duration thread_dispatch = 0;    // waking the driver/ADC thread
  sim::Duration app_send = 0;           // test program, per message
  sim::Duration app_recv = 0;
  sim::Duration driver_tx_pdu = 0;      // driver, per transmitted PDU
  sim::Duration driver_tx_buffer = 0;   // per physical buffer queued
  sim::Duration driver_rx_pdu = 0;      // driver, per received PDU
  sim::Duration driver_rx_buffer = 0;   // per receive buffer processed
  sim::Duration proto_ip = 0;           // per IP fragment, per side
  sim::Duration proto_udp = 0;          // per UDP PDU, per side (no checksum)
  sim::Duration per_kb_compute = 0;     // size-dependent software cost

  // Per-PDU main-memory traffic of the software path (headers, descriptors,
  // protocol state, buffer bookkeeping) — contends with DMA on serial-bus
  // machines.
  std::uint32_t mem_words_fixed_tx = 0;
  std::uint32_t mem_words_fixed_rx = 0;
  std::uint32_t mem_words_per_kb = 0;

  // Page wiring (§2.4): the Mach standard interface vs the low-level path.
  sim::Duration page_wire_fast = 0;  // per page
  sim::Duration page_wire_slow = 0;  // per page

  // Protection-domain machinery (§3).
  sim::Duration syscall = 0;           // user/kernel crossing
  sim::Duration domain_crossing = 0;   // microkernel IPC hop (control)
  sim::Duration fbuf_cached_transfer = 0;       // per fbuf, mapped case
  sim::Duration fbuf_uncached_map_per_page = 0; // page remap cost

  // Derived helpers ------------------------------------------------------

  [[nodiscard]] sim::Duration cpu_cycles(double n) const {
    return sim::cycles(n, cpu_hz);
  }

  /// CPU time for touching `bytes` of data with the cache behaviour in `c`
  /// (as returned by DataCache::cpu_read/cpu_write) plus `alu_cycles_per_word`
  /// of per-word processing (e.g. checksumming). Excludes the bus occupancy
  /// of c.mem_words, which the caller charges separately so it can contend
  /// with DMA on serial-bus machines.
  [[nodiscard]] sim::Duration cache_cpu_time(const mem::AccessCost& c,
                                             std::uint64_t bytes,
                                             double alu_cycles_per_word) const {
    const double words = static_cast<double>(bytes) / 4.0;
    return cpu_cycles(words * (hit_cycles_per_word + alu_cycles_per_word) +
                      static_cast<double>(c.misses) *
                          miss_penalty_cycles_per_line);
  }
};

/// DECstation 5000/200: 25 MHz MIPS R3000, serial TURBOchannel memory
/// system, 64 KB direct-mapped non-coherent data cache.
MachineConfig decstation_5000_200();

/// DEC 3000/600: 175 MHz Alpha, crossbar memory system, DMA-coherent
/// (update) cache.
MachineConfig dec_3000_600();

/// A unit of host software execution: pure compute plus main-memory word
/// traffic. On serial-bus machines the memory phase occupies the
/// TURBOchannel and therefore contends with DMA.
struct Work {
  sim::Duration compute = 0;
  std::uint64_t mem_words = 0;
};

/// The host CPU: a serial resource executing Work items.
class HostCpu {
 public:
  HostCpu(sim::Engine& eng, const MachineConfig& cfg, tc::TurboChannel& bus)
      : cfg_(&cfg), bus_(&bus), cpu_(eng, cfg.name + ".cpu") {}

  /// Executes `w` starting no earlier than `from`; returns completion time.
  sim::Tick exec(sim::Tick from, const Work& w) {
    const sim::Tick start = std::max(from, cpu_.free_at());
    sim::Tick t = start + w.compute;
    if (w.mem_words > 0) {
      if (cfg_->crossbar) {
        t += static_cast<sim::Duration>(static_cast<double>(w.mem_words) *
                                        cfg_->mem_word_ns * 1e3);
      } else {
        t = bus_->cpu_memory(t, w.mem_words);  // serialize with DMA
      }
    }
    cpu_.reserve_at(start, t - start);
    return t;
  }

  [[nodiscard]] sim::Resource& resource() { return cpu_; }

  /// Programmed I/O to the option slot (dual-port RAM): the CPU stalls and
  /// the TURBOchannel is occupied for the duration on both machines.
  sim::Tick pio(sim::Tick from, std::uint32_t read_words, std::uint32_t write_words) {
    const sim::Tick start = std::max(from, cpu_.free_at());
    const sim::Duration cost =
        bus_->pio_read_cost(read_words) + bus_->pio_write_cost(write_words);
    const sim::Tick done = bus_->bus().reserve_at(start, cost);
    cpu_.reserve_at(start, done - start);
    return done;
  }

 private:
  const MachineConfig* cfg_;
  tc::TurboChannel* bus_;
  sim::Resource cpu_;
};

}  // namespace osiris::host
