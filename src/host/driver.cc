#include "host/driver.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "board/rx.h"

namespace osiris::host {

namespace {
// Dual-port-RAM word accesses per queue operation (see dpram/queue.cc):
// push = 1 read (tail) + 5 writes; pop = 5 reads + 1 write.
constexpr std::uint32_t kPushReads = 1, kPushWrites = 5;
constexpr std::uint32_t kPopReads = 5, kPopWrites = 1;

std::uint32_t kb_of(std::uint32_t bytes) { return (bytes + 1023) / 1024; }
}  // namespace

void RxPduView::read_raw(const mem::PhysicalMemory& pm, std::uint32_t off,
                         std::span<std::uint8_t> out) const {
  std::size_t done = 0;
  std::uint32_t base = 0;
  for (const RxBuffer& b : bufs) {
    if (done == out.size()) break;
    if (off < base + b.len) {
      const std::uint32_t inner = off > base ? off - base : 0;
      const auto n = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          out.size() - done, b.len - inner));
      pm.read(b.pa + inner, out.subspan(done, n));
      done += n;
      off += n;
    }
    base += b.len;
  }
  if (done != out.size()) throw std::out_of_range("RxPduView::read_raw");
}

void RxPduView::read_cached(mem::DataCache& cache, std::uint32_t off,
                            std::span<std::uint8_t> out,
                            mem::AccessCost& cost) const {
  std::size_t done = 0;
  std::uint32_t base = 0;
  for (const RxBuffer& b : bufs) {
    if (done == out.size()) break;
    if (off < base + b.len) {
      const std::uint32_t inner = off > base ? off - base : 0;
      const auto n = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          out.size() - done, b.len - inner));
      cost += cache.cpu_read(b.pa + inner, out.subspan(done, n));
      done += n;
      off += n;
    }
    base += b.len;
  }
  if (done != out.size()) throw std::out_of_range("RxPduView::read_cached");
}

OsirisDriver::OsirisDriver(sim::Engine& eng, const MachineConfig& mc,
                           HostCpu& cpu, InterruptController& intc,
                           tc::TurboChannel& bus, mem::PhysicalMemory& pm,
                           mem::DataCache& cache, mem::FrameAllocator& frames,
                           dpram::DualPortRam& ram, board::TxProcessor& txp,
                           const dpram::ChannelLayout& lay, Config cfg)
    : eng_(&eng),
      mc_(&mc),
      cpu_(&cpu),
      intc_(&intc),
      bus_(&bus),
      pm_(&pm),
      cache_(&cache),
      frames_(&frames),
      ram_(&ram),
      txp_(&txp),
      lay_(lay),
      cfg_(cfg),
      tx_writer_(ram, lay.tx, dpram::Side::kHost),
      free_writer_(ram, lay.free, dpram::Side::kHost),
      recv_reader_(ram, lay.recv, dpram::Side::kHost) {
  board_epoch_ = txp_->epoch();
}

OsirisDriver::~OsirisDriver() {
  *alive_ = false;
  eng_->cancel(wd_timer_);  // the engine outlives the driver; drop the tick
}

void OsirisDriver::attach(int adc_channel) {
  // Allocate the receive buffer pool: physically contiguous buffers when
  // the allocator can provide them (the driver's 16 KB buffers, §2.3),
  // falling back to page-sized buffers otherwise (§2.2's limitation).
  // One-time initialization: no time is charged (it happens at boot /
  // channel-open, outside any measured path).
  const std::uint32_t pages = (cfg_.rx_buffer_bytes + mem::kPageSize - 1) / mem::kPageSize;
  for (std::uint32_t i = 0; i < cfg_.rx_buffers; ++i) {
    if (free_writer_.full()) break;
    if (auto base = frames_->alloc_contiguous(pages)) {
      const auto id = static_cast<std::uint32_t>(buffers_.size());
      buffers_.push_back(BufferInfo{*base, cfg_.rx_buffer_bytes, 0, true});
      free_writer_.push({*base, cfg_.rx_buffer_bytes, 0, 0, id});
    } else {
      for (std::uint32_t p = 0; p < pages && !free_writer_.full(); ++p) {
        const mem::PhysAddr pa = frames_->alloc();
        const auto id = static_cast<std::uint32_t>(buffers_.size());
        buffers_.push_back(BufferInfo{pa, mem::kPageSize, 0, true});
        free_writer_.push({pa, mem::kPageSize, 0, 0, id});
      }
    }
  }
  source_to_writer_[0] = 0;  // default pool recycles to free_writer_

  rx_irq_token_ = intc_->add_handler(
      board::Irq::kRxNonEmpty, [this, adc_channel](sim::Tick done, int ch) {
        if (ch == adc_channel) on_rx_interrupt(done);
      });
  tx_irq_token_ = intc_->add_handler(
      board::Irq::kTxHalfEmpty, [this, adc_channel](sim::Tick done, int ch) {
        if (ch == adc_channel) on_tx_half_empty(done);
      });
  free_low_token_ = intc_->add_handler(
      board::Irq::kRxFreeLow, [this, adc_channel](sim::Tick done, int ch) {
        if (ch != adc_channel) return;
        // The firmware is starving for buffers: drain the receive ring now
        // so recycled buffers reach the free list before more PDUs drop.
        ++backpressure_events_;
        sim::trace_event(trace_, eng_->now(), "drv", "free_low",
                         static_cast<std::uint64_t>(ch), backpressure_events_);
        on_rx_interrupt(done);
      });
}

void OsirisDriver::detach() {
  if (detached_) return;
  detached_ = true;
  wd_running_ = false;
  eng_->cancel(wd_timer_);
  // Unhook first: an interrupt already raised but not yet serviced resolves
  // its handlers at service time, so removal also swallows those.
  if (rx_irq_token_ >= 0) intc_->remove_handler(rx_irq_token_);
  if (tx_irq_token_ >= 0) intc_->remove_handler(tx_irq_token_);
  if (free_low_token_ >= 0) intc_->remove_handler(free_low_token_);
  rx_irq_token_ = tx_irq_token_ = free_low_token_ = -1;
  // Kill in-flight drain steps and stale completions.
  ++generation_;
  draining_ = false;
  tx_suspended_ = false;
  pending_sends_.clear();
  for (const auto& bufs : inflight_tx_) wiring_.unwire_buffers(bufs);
  inflight_tx_.clear();
  accum_.clear();
  // Return the pool frames attach() allocated. Board-side queues must be
  // detached by now, so no DMA can target them.
  for (const BufferInfo& b : buffers_) {
    if (!b.owned) continue;
    const std::uint32_t pages = (b.cap + mem::kPageSize - 1) / mem::kPageSize;
    for (std::uint32_t p = 0; p < pages; ++p) {
      frames_->free(b.pa + p * mem::kPageSize);
    }
  }
  buffers_.clear();
  sim::trace_event(trace_, eng_->now(), "drv", "detach", generation_, 0);
}

void OsirisDriver::add_free_pool(const dpram::QueueLayout& lay, int source_tag,
                                 const std::vector<mem::PhysBuffer>& bufs) {
  extra_free_writers_.emplace_back(*ram_, lay, dpram::Side::kHost);
  source_to_writer_[source_tag] = extra_free_writers_.size();  // 1-based
  auto& w = extra_free_writers_.back();
  // Setup path, like attach(): not charged.
  for (const auto& b : bufs) {
    const auto id = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(BufferInfo{b.addr, b.len, source_tag});
    if (!w.push({b.addr, b.len, 0, 0, id}).ok) {
      throw std::logic_error("add_free_pool: queue overflow");
    }
  }
}

sim::Tick OsirisDriver::reap_tx(sim::Tick at) {
  // "The driver checks for this condition as part of other driver
  // activity" (§2.1.2): tail advances tell us which buffers the board is
  // done with; unwire their pages.
  sim::Tick t = cpu_->pio(at, 1, 0);  // read the tail word
  const std::uint32_t done_descs =
      static_cast<std::uint32_t>(inflight_tx_.size()) -
      std::min<std::uint32_t>(static_cast<std::uint32_t>(inflight_tx_.size()),
                              tx_writer_.size());
  tx_descs_retired_ += done_descs;
  for (std::uint32_t i = 0; i < done_descs; ++i) {
    const auto bufs = std::move(inflight_tx_.front());
    inflight_tx_.pop_front();
    std::uint32_t pages = 0;
    for (const auto& b : bufs) {
      pages += mem::page_of(b.addr + b.len - 1) - mem::page_of(b.addr) + 1;
    }
    wiring_.unwire_buffers(bufs);
    const sim::Duration cost = (cfg_.wiring == mem::WiringMode::kFastPath
                                    ? mc_->page_wire_fast
                                    : mc_->page_wire_slow) *
                               static_cast<sim::Duration>(pages) / 2;
    t = cpu_->exec(t, Work{cost, 0});
  }
  return t;
}

sim::Tick OsirisDriver::push_chain(sim::Tick at, atm::Vci vci,
                                   const std::vector<mem::PhysBuffer>& bufs) {
  sim::Tick t = at;
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    t = cpu_->pio(t, 1, 0);  // read tail: full check
    if (tx_writer_.full()) {
      // §2.1.2: suspend transmit activity, ask for the half-empty irq.
      const std::uint32_t ctrl =
          ram_->read(dpram::Side::kHost, lay_.tx.ctrl_word());
      ram_->write(dpram::Side::kHost, lay_.tx.ctrl_word(),
                  ctrl | dpram::kCtrlWantHalfEmptyIrq);
      t = cpu_->pio(t, 1, 1);
      tx_suspended_ = true;
      ++tx_suspensions_;
      sim::trace_event(trace_, eng_->now(), "drv", "tx_suspend", vci,
                       pending_sends_.size());
      pending_sends_.push_front(
          PendingSend{vci, {bufs.begin() + static_cast<std::ptrdiff_t>(i),
                            bufs.end()}});
      return t;
    }
    dpram::Descriptor d;
    d.addr = bufs[i].addr;
    d.len = bufs[i].len;
    d.vci = vci;
    d.flags = (i + 1 == bufs.size()) ? dpram::kDescEop : 0;
    tx_writer_.push(d);
    t = cpu_->pio(t, kPushReads, kPushWrites);
    inflight_tx_.push_back({bufs[i]});
  }
  // Doorbell.
  t = cpu_->pio(t, 0, 1);
  eng_->schedule_at(t, [this, alive = alive_] {
    if (*alive) txp_->kick();
  });
  return t;
}

sim::Tick OsirisDriver::post_raw(sim::Tick at, const dpram::Descriptor& d) {
  sim::Tick t = cpu_->pio(maybe_resync(at), 1, 0);  // tail read (full check)
  if (tx_writer_.full()) return t;
  tx_writer_.push(d);
  t = cpu_->pio(t, kPushReads, kPushWrites);
  // Keep the completion ledger aligned with the queue: the board consumes
  // the descriptor whether it accepts or rejects it, advancing the tail.
  inflight_tx_.push_back({});
  ++tx_descs_accepted_;
  t = cpu_->pio(t, 0, 1);  // doorbell
  eng_->schedule_at(t, [this, alive = alive_] {
    if (*alive) txp_->kick();
  });
  return t;
}

sim::Tick OsirisDriver::send(sim::Tick at, atm::Vci vci,
                             const std::vector<mem::PhysBuffer>& bufs) {
  sim::Tick t = reap_tx(maybe_resync(at));

  // Wire every page the board will DMA from (§2.4).
  std::uint32_t pages = 0;
  for (const auto& b : bufs) {
    pages += mem::page_of(b.addr + b.len - 1) - mem::page_of(b.addr) + 1;
  }
  wiring_.wire_buffers(bufs);
  const sim::Duration wire_cost =
      (cfg_.wiring == mem::WiringMode::kFastPath ? mc_->page_wire_fast
                                                 : mc_->page_wire_slow) *
      static_cast<sim::Duration>(pages);

  std::uint32_t bytes = 0;
  for (const auto& b : bufs) bytes += b.len;
  const Work w{
      mc_->driver_tx_pdu + wire_cost +
          mc_->driver_tx_buffer * static_cast<sim::Duration>(bufs.size()) +
          mc_->per_kb_compute * kb_of(bytes) / 2,
      mc_->mem_words_fixed_tx +
          static_cast<std::uint64_t>(mc_->mem_words_per_kb) * kb_of(bytes) / 2};
  t = cpu_->exec(t, w);

  ++pdus_sent_;
  // Span origin: the moment the host asked the driver to transmit. Parked
  // sends (full queue) replay in FIFO order, so the stamp still meets its
  // own chain at the firmware.
  if (spans_ != nullptr) spans_->tx_enqueued(span_channel_, at);
  tx_descs_accepted_ += bufs.size();
  if (tx_suspended_) {
    pending_sends_.push_back(PendingSend{vci, bufs});
    return t;
  }
  return push_chain(t, vci, bufs);
}

void OsirisDriver::on_tx_half_empty(sim::Tick at) {
  tx_suspended_ = false;
  sim::Tick t = at;
  while (!pending_sends_.empty() && !tx_suspended_) {
    PendingSend ps = std::move(pending_sends_.front());
    pending_sends_.pop_front();
    t = push_chain(t, ps.vci, ps.bufs);
  }
  if (!tx_suspended_ && tx_resume_) {
    auto cb = std::move(tx_resume_);
    tx_resume_ = nullptr;
    cb(t);
  }
}

void OsirisDriver::on_rx_interrupt(sim::Tick at) {
  at = maybe_resync(at);
  if (draining_) return;  // thread already active
  draining_ = true;
  const sim::Tick t = cpu_->exec(at, Work{mc_->thread_dispatch, 0});
  const std::uint64_t gen = generation_;
  eng_->schedule_at(t, [this, gen, alive = alive_] {
    if (*alive && gen == generation_) drain_step(eng_->now());
  });
}

void OsirisDriver::drain_step(sim::Tick at) {
  sim::Tick t = cpu_->pio(at, kPopReads, kPopWrites);
  const auto d = recv_reader_.pop();
  if (!d) {
    draining_ = false;
    return;
  }
  t = cpu_->exec(t, Work{mc_->driver_rx_buffer, 0});

  // Sanity-check the descriptor against the driver's own buffer table: a
  // corrupted id/addr/len would otherwise send upper layers reading (or
  // the recycler pushing) memory the pool doesn't own.
  const std::uint64_t gen0 = generation_;
  if (d->user >= buffers_.size() ||
      d->addr < buffers_[d->user].pa || d->len > buffers_[d->user].cap ||
      static_cast<std::uint64_t>(d->addr) + d->len >
          static_cast<std::uint64_t>(buffers_[d->user].pa) +
              buffers_[d->user].cap) {
    ++bad_descriptors_;
    sim::trace_event(trace_, eng_->now(), "drv", "bad_desc", d->user, d->addr);
    if (d->user < buffers_.size()) {
      // The id is plausible: return the buffer it names to its pool.
      t = recycle(t, {RxBuffer{buffers_[d->user].pa, 0, d->user}});
    }
    eng_->schedule_at(t, [this, gen0, alive = alive_] {
      if (*alive && gen0 == generation_) drain_step(eng_->now());
    });
    return;
  }

  const auto tag = static_cast<std::uint32_t>((d->flags >> dpram::kDescTagShift) &
                                              dpram::kDescTagMask);
  const std::uint64_t key = atm::VciKey::pack(d->vci, tag);

  if ((d->flags & dpram::kDescAborted) != 0) {
    // The firmware abandoned this reassembly (cells lost upstream and the
    // timeout expired): recycle the buffer — plus whatever partial
    // accumulation already arrived under the same tag — without delivering.
    ++stale_partial_;
    std::vector<RxBuffer> give{RxBuffer{d->addr, 0, d->user}};
    if (Accum* acc = accum_.find(key); acc != nullptr) {
      give.insert(give.end(), acc->bufs.begin(), acc->bufs.end());
      accum_.erase(key);
    }
    t = recycle(t, give);
    eng_->schedule_at(t, [this, gen0, alive = alive_] {
      if (*alive && gen0 == generation_) drain_step(eng_->now());
    });
    return;
  }

  auto [acc, fresh] = accum_.emplace(key);
  if (fresh) acc->seq = ++accum_seq_;
  acc->bufs.push_back(RxBuffer{d->addr, d->len, d->user});
  acc->bytes += d->len;

  if ((d->flags & dpram::kDescEop) != 0) {
    Accum done = std::move(*acc);
    accum_.erase(key);
    t = deliver(t, d->vci, tag, std::move(done));
  } else if (accum_.size() > 64) {
    // Partial PDUs that never completed (dropped upstream): reclaim the
    // oldest (smallest arrival stamp) to avoid leaking the buffer pool.
    std::uint64_t oldest_key = 0;
    std::uint64_t oldest_seq = ~std::uint64_t{0};
    accum_.for_each([&](std::uint64_t k, const Accum& a) {
      if (a.seq < oldest_seq) {
        oldest_seq = a.seq;
        oldest_key = k;
      }
    });
    ++stale_partial_;
    t = recycle(t, accum_.find(oldest_key)->bufs);
    accum_.erase(oldest_key);
  }

  eng_->schedule_at(t, [this, gen0, alive = alive_] {
    if (*alive && gen0 == generation_) drain_step(eng_->now());
  });
}

sim::Tick OsirisDriver::deliver(sim::Tick at, atm::Vci vci,
                                std::uint32_t tag, Accum&& acc) {
  sim::Tick t = at;
  if (acc.bytes < atm::kTrailerBytes) {
    ++crc_failures_;
    if (spans_ != nullptr) {
      spans_->rx_aborted(vci, static_cast<std::uint8_t>(tag));
    }
    return recycle(t, acc.bufs);
  }
  RxPduView view;
  view.vci = vci;
  view.wire_len = acc.bytes;
  view.pdu_len = acc.bytes - atm::kTrailerBytes;
  view.bufs = acc.bufs;

  if (cfg_.eager_invalidate) {
    // Figure 2's pessimistic mode: invalidate every received byte up
    // front. Costs ~1 cycle/word plus the induced misses (§2.3).
    std::uint64_t words = 0;
    for (const auto& b : view.bufs) words += cache_->invalidate(b.pa, b.len);
    t = cpu_->exec(
        t, Work{mc_->cpu_cycles(static_cast<double>(words) *
                                (mc_->invalidate_cycles_per_word +
                                 mc_->invalidate_extra_cycles_per_word)),
                0});
  }

  const std::uint32_t kb = kb_of(view.pdu_len);
  t = cpu_->exec(t, Work{mc_->driver_rx_pdu + mc_->per_kb_compute * kb / 2,
                         mc_->mem_words_fixed_rx +
                             static_cast<std::uint64_t>(mc_->mem_words_per_kb) *
                                 kb / 2});

  ++pdus_received_;
  // Delivery closes the span: deliver stage (push -> here) plus the
  // end-to-end distribution when the origin stamp survived.
  if (spans_ != nullptr) {
    spans_->rx_delivered(vci, static_cast<std::uint8_t>(tag), t);
  }
  sim::trace_event(trace_, eng_->now(), "drv", "deliver", vci, view.pdu_len);
  if (rx_handler_) t = rx_handler_(t, view);
  return recycle(t, view.bufs);  // empty if the handler retained them
}

sim::Tick OsirisDriver::recycle(sim::Tick at, const std::vector<RxBuffer>& bufs) {
  sim::Tick t = at;
  for (const RxBuffer& rb : bufs) {
    if (rb.id >= buffers_.size()) {
      // Corrupted descriptor id: no way to know which buffer this names;
      // count it and press on rather than wedging the driver thread.
      ++bad_descriptors_;
      sim::trace_event(trace_, eng_->now(), "drv", "bad_desc", rb.id, rb.len);
      continue;
    }
    const BufferInfo& info = buffers_[rb.id];
    if (fault::fires(tenant_faults_, fault::Point::kAdcRefillStall)) {
      // The application stops returning receive buffers: this one simply
      // never goes back to the free queue. Sustained, the channel starves
      // itself (drops accounted on the board as drop_nobuf) — and only
      // itself.
      sim::trace_event(trace_, eng_->now(), "drv", "refill_stall", rb.id, 0);
      continue;
    }
    dpram::Descriptor d{info.pa, info.cap, 0, 0, rb.id};
    if (fault::fires(tenant_faults_, fault::Point::kAdcFreeListPoison)) {
      // The application scribbles on the free-queue entry it recycles:
      // either an impossible length or a bit-flipped address. The board's
      // free-list validation must catch it before any DMA is aimed at it.
      if (tenant_faults_->roll(2) == 0) {
        d.len = 0;
      } else {
        d.addr = tenant_faults_->corrupt_word(d.addr) | 0x80000000u;
      }
      sim::trace_event(trace_, eng_->now(), "drv", "free_poison", rb.id,
                       d.addr);
    }
    const std::size_t widx = source_to_writer_.at(info.source_tag);
    dpram::QueueWriter& w =
        widx == 0 ? free_writer_ : extra_free_writers_[widx - 1];
    t = cpu_->pio(t, kPushReads, kPushWrites);
    if (!w.push(d).ok) {
      // Double-release (e.g. a handler returning buffers it retained from
      // before an adaptor reset, after the pool was re-posted wholesale).
      ++bad_descriptors_;
      sim::trace_event(trace_, eng_->now(), "drv", "free_overflow", rb.id, 0);
    }
  }
  return t;
}

void OsirisDriver::start_watchdog(const WatchdogConfig& cfg) {
  wd_cfg_ = cfg;
  wd_tx_hb_ = wd_rx_hb_ = 0;
  wd_tx_seen_ = wd_rx_seen_ = false;
  wd_tx_change_ = wd_rx_change_ = eng_->now();
  wd_txtail_ = 0;
  wd_txtail_change_ = eng_->now();
  if (!wd_running_) {
    wd_running_ = true;
    wd_timer_ = eng_->schedule_timer(0, [this, alive = alive_] {
      if (*alive) watchdog_tick();
    });
  }
}

void OsirisDriver::watchdog_tick() {
  if (!wd_running_) return;
  const sim::Tick now = eng_->now();
  if (now >= wd_cfg_.until) {
    wd_running_ = false;
    return;
  }

  // Four PIO reads over the TURBOchannel: both heartbeat words, the
  // transmit tail, and the receive head (the poll's empty check).
  sim::Tick t = cpu_->pio(now, 4, 0);
  const std::uint32_t txhb =
      ram_->read(dpram::Side::kHost, dpram::kTxHeartbeatWord);
  const std::uint32_t rxhb =
      ram_->read(dpram::Side::kHost, dpram::kRxHeartbeatWord);

  // A heartbeat is only trusted once it has been seen to move: before the
  // firmware's first beat a frozen zero is indistinguishable from boot.
  const auto frozen = [&](std::uint32_t cur, std::uint32_t& last,
                          sim::Tick& change, bool& seen) {
    if (cur != last) {
      last = cur;
      change = now;
      seen = true;
      return false;
    }
    return seen && now - change > wd_cfg_.deadline;
  };
  const bool tx_hb_wedged = frozen(txhb, wd_tx_hb_, wd_tx_change_, wd_tx_seen_);
  const bool rx_hb_wedged = frozen(rxhb, wd_rx_hb_, wd_rx_change_, wd_rx_seen_);

  // Independent wedge signature: descriptors sitting in the transmit
  // queue while the tail stops advancing (catches a firmware that still
  // beats but no longer makes progress, e.g. a corrupted-EOP chain the
  // priority scan can never complete).
  const std::uint32_t txtail =
      ram_->read(dpram::Side::kHost, lay_.tx.tail_word());
  bool tx_tail_wedged = false;
  if (txtail != wd_txtail_ || tx_writer_.size() == 0) {
    wd_txtail_ = txtail;
    wd_txtail_change_ = now;
  } else if (now - wd_txtail_change_ > wd_cfg_.deadline) {
    tx_tail_wedged = true;
  }

  if (fault::fires(faults_, fault::Point::kIrqSpurious)) {
    ++spurious_irqs_;
    sim::trace_event(trace_, now, "drv", "spurious_irq", generation_, 0);
    on_rx_interrupt(t);
  }

  if (tx_hb_wedged || rx_hb_wedged || tx_tail_wedged) {
    sim::trace_event(trace_, now, "drv", "wedge",
                     (tx_hb_wedged ? 1u : 0u) | (rx_hb_wedged ? 2u : 0u) |
                         (tx_tail_wedged ? 4u : 0u),
                     txhb);
    t = force_reset(t);
  } else if (!draining_ && !recv_reader_.empty()) {
    // Descriptors are waiting but no drain thread is running: the
    // empty->non-empty interrupt was lost. Start the drain by hand.
    ++watchdog_polls_;
    sim::trace_event(trace_, now, "drv", "wd_poll", recv_reader_.size(), 0);
    on_rx_interrupt(t);
  }

  wd_timer_ = eng_->schedule_timer(wd_cfg_.period, [this, alive = alive_] {
    if (*alive) watchdog_tick();
  });
}

sim::Tick OsirisDriver::force_reset(sim::Tick at) {
  ++watchdog_resets_;
  ++generation_;
  sim::trace_event(trace_, eng_->now(), "drv", "reset", generation_, 0);
  if (trace_ != nullptr) {
    last_postmortem_ = trace_->dump(wd_cfg_.trace_tail);
    if (postmortem_os_ != nullptr) {
      *postmortem_os_ << "osiris: adaptor reset (generation " << generation_
                      << ", " << trace_->dropped_events()
                      << " trace events dropped); last events:\n"
                      << last_postmortem_;
    }
  }

  // Reset both board halves (all channels' board-side cursors and RAM
  // words are zeroed — other channel drivers on this board resynchronize
  // through their own maybe_resync generation check), then rebuild this
  // driver's host-side state.
  txp_->reset();
  if (rxp_ != nullptr) rxp_->reset();
  board_epoch_ = txp_->epoch();
  const sim::Tick t = resync_host_state(at);

  // Fresh deadline for the rebooted firmware's first beat.
  wd_tx_seen_ = wd_rx_seen_ = false;
  wd_tx_change_ = wd_rx_change_ = wd_txtail_change_ = eng_->now();
  wd_txtail_ = 0;
  return t;
}

sim::Tick OsirisDriver::maybe_resync(sim::Tick at) {
  if (detached_ || txp_->epoch() == board_epoch_) return at;
  // Another driver's watchdog (in practice: the kernel's) reset the board
  // under us. Every cached cursor, in-flight chain and posted free buffer
  // of this channel is stale; completions scheduled before the reset must
  // die at the generation check.
  board_epoch_ = txp_->epoch();
  ++resyncs_observed_;
  ++generation_;
  sim::trace_event(trace_, eng_->now(), "drv", "resync", generation_,
                   board_epoch_);
  return resync_host_state(at);
}

sim::Tick OsirisDriver::resync_host_state(sim::Tick at) {
  // Reinitialize every host-side queue cursor (both ends cache positions
  // in host registers; RAM words and caches must be cleared together or
  // they disagree after the reset).
  tx_writer_.reset();
  free_writer_.reset();
  for (auto& w : extra_free_writers_) w.reset();
  recv_reader_.reset();

  // Every in-flight transmit chain is gone with the board state. Their
  // descriptors will never retire through the tail word, so credit them
  // here or tx-completion watermarks would stall forever.
  tx_descs_retired_ += inflight_tx_.size();
  for (const auto& bufs : inflight_tx_) wiring_.unwire_buffers(bufs);
  inflight_tx_.clear();
  tx_suspended_ = false;
  draining_ = false;
  accum_.clear();

  // Upper layers forget retained buffers and partial reassembly before
  // the pool is re-posted wholesale below.
  for (const auto& [token, hook] : reset_hooks_) hook(at);

  sim::Tick t = cpu_->exec(at, Work{mc_->thread_dispatch, 0});
  for (std::uint32_t id = 0; id < buffers_.size(); ++id) {
    const BufferInfo& info = buffers_[id];
    const std::size_t widx = source_to_writer_.at(info.source_tag);
    dpram::QueueWriter& w =
        widx == 0 ? free_writer_ : extra_free_writers_[widx - 1];
    if (w.full()) continue;
    t = cpu_->pio(t, kPushReads, kPushWrites);
    w.push({info.pa, info.cap, 0, 0, id});
  }

  // Replay sends that were parked behind a full transmit queue. (Chains
  // that were already in the queue are lost — ARQ's problem, not ours.)
  std::deque<PendingSend> replay = std::move(pending_sends_);
  pending_sends_.clear();
  while (!replay.empty() && !tx_suspended_) {
    PendingSend ps = std::move(replay.front());
    replay.pop_front();
    t = push_chain(t, ps.vci, ps.bufs);
  }
  for (auto& ps : replay) pending_sends_.push_back(std::move(ps));
  return t;
}

sim::Tick OsirisDriver::recover_stale(sim::Tick at, const RxPduView& pdu) {
  std::uint64_t words = 0;
  for (const auto& b : pdu.bufs) words += cache_->invalidate(b.pa, b.len);
  ++crc_failures_;
  return cpu_->exec(
      at, Work{mc_->cpu_cycles(static_cast<double>(words) *
                               mc_->invalidate_cycles_per_word),
               0});
}

}  // namespace osiris::host
