#include "host/machine.h"

namespace osiris::host {

// ----------------------------------------------------------------------
// DECstation 5000/200 — 25 MHz MIPS R3000.
//
// Calibration sources, all from the paper (measured reproductions are
// recorded in EXPERIMENTS.md):
//  * interrupt service 75 us (§2.1.2); UDP/IP PDU service ~200 us
//    excluding interrupt handling — spread here over driver_rx, proto_ip,
//    proto_udp plus the per-KB terms at the 16 KB MTU.
//  * Table 1, ATM 1-byte RTT 353 us -> one-way 176.5 us: app_send 6 +
//    driver_tx (15 + 3/buffer) + wiring 2 + tx memory traffic (150 words
//    x 40 ns = 6 us) + dual-port-RAM PIO + board/link pipeline (~8 us) +
//    interrupt 75 + dispatch 8 + driver_rx (18 + 4) + rx memory traffic
//    6 + app_recv 6  ->  measured RTT 359 us.
//  * Table 1, UDP 1-byte RTT 598 us: (598-353)/2 = 122.5 us of protocol
//    per one-way => proto_ip 20 + proto_udp 32 per side plus the extra
//    header buffer's driver cost  ->  measured RTT 607 us.
//  * Figure 2 plateaus: receive-side bus occupancy per 16 KB PDU =
//    373 cells x 19 cycles = 283.5 us (single-cell DMA) plus software
//    memory traffic (150 + 250/KB words -> ~86 us) and PIO -> ~385 us ->
//    measured 340 Mbps (paper: 340). Double-cell: 223.3 us of DMA ->
//    measured 400 (paper: 379). Eager cache invalidation adds 16 KB / 4
//    words x (1 + 0.45) cycles = ~238 us of CPU time, making the CPU the
//    bottleneck: measured ~249 (paper: 250).
//  * UDP checksum reads uncached data: 20-cycle line fill penalty + 1
//    hit-cycle + 2 ALU cycles per word -> measured 79 Mbps (paper: ~80).
// ----------------------------------------------------------------------
MachineConfig decstation_5000_200() {
  MachineConfig m;
  m.name = "DECstation5000/200";
  m.cpu_hz = 25e6;
  m.bus = tc::BusConfig{};  // 25 MHz, 13/8-cycle DMA overheads
  m.cache = mem::CacheConfig{64 * 1024, 16, mem::DmaCoherence::kNonCoherent};
  m.crossbar = false;
  m.mem_word_ns = 40.0;

  m.hit_cycles_per_word = 1.0;
  m.miss_penalty_cycles_per_line = 20.0;
  m.checksum_alu_cycles_per_word = 2.0;
  m.copy_cycles_per_word = 2.0;
  m.invalidate_cycles_per_word = 1.0;
  m.invalidate_extra_cycles_per_word = 0.45;

  m.interrupt_service = sim::us(75);
  m.thread_dispatch = sim::us(8);
  m.app_send = sim::us(6);
  m.app_recv = sim::us(6);
  m.driver_tx_pdu = sim::us(15);
  m.driver_tx_buffer = sim::us(3);
  m.driver_rx_pdu = sim::us(18);
  m.driver_rx_buffer = sim::us(4);
  m.proto_ip = sim::us(20);
  m.proto_udp = sim::us(32);
  m.per_kb_compute = sim::us(2);

  m.mem_words_fixed_tx = 150;
  m.mem_words_fixed_rx = 150;
  m.mem_words_per_kb = 250;

  m.page_wire_fast = sim::us(2);
  m.page_wire_slow = sim::us(40);  // Mach standard: ~order of magnitude worse

  m.syscall = sim::us(20);
  m.domain_crossing = sim::us(40);
  m.fbuf_cached_transfer = sim::us(3);
  m.fbuf_uncached_map_per_page = sim::us(30);
  return m;
}

// ----------------------------------------------------------------------
// DEC 3000/600 — 175 MHz Alpha.
//
//  * Table 1, ATM 1-byte RTT 154 us -> one-way 77 us: interrupt 25 +
//    dispatch 3 + driver costs + board/link ~8 us -> measured RTT 147 us.
//  * Table 1, UDP 1-byte RTT 316 us: (316-154)/2 = 81 us of protocol per
//    one-way => proto_ip 12 + proto_udp 22 per side -> measured 307 us.
//  * Figure 3: the crossbar decouples CPU from DMA; without checksumming
//    the 16 KB software path (~110 us) is far below the link-limited
//    254 us, so throughput approaches 516 Mbps (measured 515). With
//    checksumming, reads cost 4 hit-cycles + 2 ALU cycles per word plus
//    20-cycle line fills on cold buffers, pushing the CPU past 254 us and
//    capping throughput near the paper's 438 Mbps (measured 425).
// ----------------------------------------------------------------------
MachineConfig dec_3000_600() {
  MachineConfig m;
  m.name = "DEC3000/600";
  m.cpu_hz = 175e6;
  m.bus = tc::BusConfig{};  // TURBOchannel timing is the same
  m.cache = mem::CacheConfig{512 * 1024, 32, mem::DmaCoherence::kUpdate};
  m.crossbar = true;
  m.mem_word_ns = 10.0;

  m.hit_cycles_per_word = 4.0;  // effective: DMA updates L2, reads hit L2
  m.miss_penalty_cycles_per_line = 20.0;
  m.checksum_alu_cycles_per_word = 2.0;
  m.copy_cycles_per_word = 2.0;
  m.invalidate_cycles_per_word = 1.0;
  m.invalidate_extra_cycles_per_word = 0.45;

  m.interrupt_service = sim::us(25);
  m.thread_dispatch = sim::us(3);
  m.app_send = sim::us(2.5);
  m.app_recv = sim::us(2.5);
  m.driver_tx_pdu = sim::us(6);
  m.driver_tx_buffer = sim::us(1);
  m.driver_rx_pdu = sim::us(8);
  m.driver_rx_buffer = sim::us(1.5);
  m.proto_ip = sim::us(12);
  m.proto_udp = sim::us(22);
  m.per_kb_compute = sim::us(1);

  m.mem_words_fixed_tx = 150;
  m.mem_words_fixed_rx = 150;
  m.mem_words_per_kb = 150;

  m.page_wire_fast = sim::us(0.7);
  m.page_wire_slow = sim::us(12);

  m.syscall = sim::us(5);
  m.domain_crossing = sim::us(10);
  m.fbuf_cached_transfer = sim::us(1);
  m.fbuf_uncached_map_per_page = sim::us(8);
  return m;
}

}  // namespace osiris::host
