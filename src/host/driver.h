// The OSIRIS device driver (kernel side).
//
// Implements the host half of the §2.1 communication discipline:
//  * lock-free descriptor queues in the dual-port RAM, one transmit queue
//    and one free/receive queue pair for the kernel (channel pair 0);
//  * transmit completion detected by watching the tail pointer advance
//    during other driver activity — no interrupt; when the transmit queue
//    fills, the driver suspends, sets the queue's ctrl flag, and resumes
//    on the half-empty interrupt (§2.1.2);
//  * one receive interrupt per burst: the board interrupts only on the
//    empty -> non-empty transition, and the driver thread drains until the
//    queue is empty;
//  * page wiring before DMA (§2.4), with the fast or the Mach-standard
//    (slow) path;
//  * lazy cache invalidation (§2.3): received data is NOT invalidated
//    up front; a consumer that detects a checksum error calls
//    recover_stale(), which invalidates and lets the data be re-read from
//    memory. Eager invalidation (invalidate every buffer on receipt) is
//    available for the Figure 2 comparison.
//
// The driver is also used, unchanged, as the ADC channel driver linked
// into applications (§3.2) — only the channel pair, the buffer pool, and
// the cost of reaching it differ.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atm/cell.h"
#include "board/tx.h"
#include "fault/fault.h"
#include "flow/openmap.h"
#include "dpram/dpram.h"
#include "dpram/queue.h"
#include "host/interrupts.h"
#include "host/machine.h"
#include "mem/cache.h"
#include "mem/paging.h"
#include "mem/wiring.h"
#include "obs/spans.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace osiris::board {
class RxProcessor;
}  // namespace osiris::board

namespace osiris::host {

/// One receive buffer as handed to upper layers (physical address; data is
/// read through the cache model).
struct RxBuffer {
  std::uint32_t pa = 0;
  std::uint32_t len = 0;     // filled bytes
  std::uint32_t id = 0;      // driver buffer id (for recycling)
};

/// A received PDU: the chain of buffers holding wire bytes (user PDU
/// followed by the 8-byte AAL trailer).
struct RxPduView {
  atm::Vci vci = 0;
  std::uint32_t wire_len = 0;
  std::uint32_t pdu_len = 0;  // wire_len - trailer
  std::vector<RxBuffer> bufs;

  /// Reads `n` bytes starting at PDU offset `off` directly from physical
  /// memory (no cost model; used by tests and for CRC ground truth).
  void read_raw(const mem::PhysicalMemory& pm, std::uint32_t off,
                std::span<std::uint8_t> out) const;

  /// Reads through the data cache, accumulating access costs (used by the
  /// checksum path; may return STALE bytes on a non-coherent machine).
  void read_cached(mem::DataCache& cache, std::uint32_t off,
                   std::span<std::uint8_t> out, mem::AccessCost& cost) const;
};

class OsirisDriver {
 public:
  struct Config {
    std::uint32_t rx_buffers = 64;             // paper §2.3
    std::uint32_t rx_buffer_bytes = 16 * 1024; // paper §2.3
    bool eager_invalidate = false;             // Figure 2's third curve
    mem::WiringMode wiring = mem::WiringMode::kFastPath;
  };

  /// Upper-layer receive hook. Called when a complete PDU has been popped;
  /// returns the time upper processing finishes. The driver recycles
  /// whatever remains in pdu.bufs afterwards — a handler that needs the
  /// buffers to outlive the call (e.g. until an end-to-end checksum has
  /// been verified, §2.3) moves them out and later calls release().
  using RxHandler = std::function<sim::Tick(sim::Tick at, RxPduView& pdu)>;

  OsirisDriver(sim::Engine& eng, const MachineConfig& mc, HostCpu& cpu,
               InterruptController& intc, tc::TurboChannel& bus,
               mem::PhysicalMemory& pm, mem::DataCache& cache,
               mem::FrameAllocator& frames, dpram::DualPortRam& ram,
               board::TxProcessor& txp, const dpram::ChannelLayout& lay,
               Config cfg);

  /// Flips the alive token so scheduled events that outlive the driver
  /// (kicks, drain steps, watchdog ticks) become no-ops when they fire.
  ~OsirisDriver();

  OsirisDriver(const OsirisDriver&) = delete;
  OsirisDriver& operator=(const OsirisDriver&) = delete;

  /// Allocates and queues the receive buffer pool, and hooks interrupts.
  /// `free_source_id` is the board-side id of the default free queue.
  void attach(int adc_channel = 0);

  /// Crash-safe teardown (idempotent): unhooks the interrupt handlers,
  /// stops the watchdog, abandons in-flight drains and sends, unwires
  /// outstanding transmit pages, and frees the frames attach() allocated.
  /// The board-side queues MUST already be detached (TxProcessor::
  /// remove_queue / RxProcessor::remove_channel) — the firmware may not
  /// DMA into frames returned to the allocator.
  void detach();
  [[nodiscard]] bool detached() const { return detached_; }

  void set_rx_handler(RxHandler h) { rx_handler_ = std::move(h); }

  /// Attaches an event trace (optional; null disables).
  void set_trace(sim::Trace* t) { trace_ = t; }

  /// Attaches PDU lifecycle spans (optional; null disables). `tx_channel`
  /// is the board-side transmit channel this driver posts on (the same
  /// number handed to TxProcessor::add_queue), so enqueue stamps meet the
  /// firmware's per-channel FIFO.
  void set_spans(obs::PduSpans* s, int tx_channel = 0) {
    spans_ = s;
    span_channel_ = tx_channel;
  }

  /// Queues one PDU (a chain of physical buffers) for transmission on
  /// `vci`, starting at `at`. Returns the time the host CPU is done (the
  /// board proceeds asynchronously). Handles queue-full suspension.
  sim::Tick send(sim::Tick at, atm::Vci vci,
                 const std::vector<mem::PhysBuffer>& bufs);

  /// Returns retained receive buffers to their free pools. Each push costs
  /// the usual dual-port-RAM PIO.
  sim::Tick release(sim::Tick at, const std::vector<RxBuffer>& bufs) {
    return recycle(maybe_resync(at), bufs);
  }

  /// Reclaims all partial PDU accumulations (buffers received without an
  /// EOP because cells were lost upstream). Returns completion time.
  sim::Tick flush_partials(sim::Tick at) {
    sim::Tick t = maybe_resync(at);
    accum_.for_each([this, &t](std::uint64_t, Accum& acc) {
      ++stale_partial_;
      t = recycle(t, acc.bufs);
    });
    accum_.clear();
    return t;
  }

  /// §2.3 lazy-invalidation recovery: a consumer found a checksum error;
  /// invalidate the PDU's cache lines so a re-read sees memory. Returns
  /// completion time (invalidation costs ~1 cycle/word).
  sim::Tick recover_stale(sim::Tick at, const RxPduView& pdu);

  /// Registers `n` extra buffers of `bytes` each for an additional free
  /// queue (used by the fbuf per-path pools). Returns descriptors pushed.
  void add_free_pool(const dpram::QueueLayout& lay, int source_tag,
                     const std::vector<mem::PhysBuffer>& bufs);

  // ---- Watchdog / adaptor reset --------------------------------------
  //
  // The adaptor has no hardware watchdog; the driver polls two heartbeat
  // words the firmware advances in the dual-port RAM. A frozen heartbeat
  // — or a non-empty transmit queue whose tail has stopped moving — past
  // `deadline` means a wedged board half, and the driver performs a full
  // adaptor reset: both processors and every queue are reinitialized, the
  // receive buffer pool is re-posted, suspended sends are replayed, and a
  // generation counter is bumped so completions scheduled before the
  // reset are discarded when they fire. In-flight PDUs are lost; an upper
  // layer wanting reliability runs ARQ (proto::ArqEndpoint) on top.

  struct WatchdogConfig {
    sim::Duration period = 0;    ///< polling interval
    sim::Duration deadline = 0;  ///< staleness that declares a wedge
    sim::Tick until = 0;         ///< stop polling past this tick (bounded)
    std::size_t trace_tail = 32; ///< trace lines kept as the postmortem
  };

  /// Gives the watchdog reset access to the receive processor (the tx
  /// processor is already a constructor dependency).
  void bind_rx(board::RxProcessor* rxp) { rxp_ = rxp; }

  /// Enables fault injection on the host paths (kIrqSpurious).
  void set_fault_plane(fault::FaultPlane* f) { faults_ = f; }

  /// Arms tenant-misbehaviour injection (kAdcFreeListPoison,
  /// kAdcRefillStall) on this channel driver's recycle path — a separate,
  /// per-tenant plane so one adversarial application doesn't perturb the
  /// node-level hardware fault schedule.
  void set_tenant_fault_plane(fault::FaultPlane* f) { tenant_faults_ = f; }

  /// Posts one raw transmit descriptor, bypassing send()'s scatter/wire
  /// path — exactly what a buggy or malicious application can do with its
  /// mapped queue page (§3.2). The descriptor's contents are NOT checked;
  /// the board firmware is the policeman. Returns host-CPU completion.
  sim::Tick post_raw(sim::Tick at, const dpram::Descriptor& d);

  /// Registers a hook run during force_reset(), after queues are
  /// reinitialized and before buffers are re-posted: upper layers must
  /// forget retained receive buffers (the pool is re-posted wholesale),
  /// discard partial reassembly state, and resynchronize any transmit-side
  /// bookkeeping keyed to pre-reset descriptor watermarks. Several layers
  /// register independently (the stack's reassembly flush, ARQ's session
  /// resync); hooks run in registration order. Returns a token for
  /// remove_reset_hook().
  int add_reset_hook(std::function<void(sim::Tick)> h) {
    const int token = next_reset_hook_token_++;
    reset_hooks_.push_back({token, std::move(h)});
    return token;
  }
  /// Unregisters a hook; stale or already-removed tokens are no-ops.
  void remove_reset_hook(int token) {
    std::erase_if(reset_hooks_,
                  [token](const auto& e) { return e.first == token; });
  }

  /// Optional stream for the human-readable reset postmortem (the trace
  /// tail); also retained in last_postmortem().
  void set_postmortem_stream(std::ostream* os) { postmortem_os_ = os; }

  void start_watchdog(const WatchdogConfig& cfg);
  void stop_watchdog() {
    wd_running_ = false;
    eng_->cancel(wd_timer_);
  }

  /// Immediate adaptor reset (what the watchdog fires; callable directly
  /// by tests). Returns the time the host CPU finished recovery.
  sim::Tick force_reset(sim::Tick at);

  /// Generation check for channel drivers that did NOT initiate an
  /// adaptor reset (many drivers share one board, §3.2): the kernel
  /// watchdog's force_reset() zeroes every channel's board-side cursors
  /// and RAM queue words, leaving this driver's cached cursors, in-flight
  /// accounting and posted free pool stale. Every host-facing entry point
  /// calls this; when the board epoch has moved it rebuilds host-side
  /// state exactly as force_reset() does (reset hooks included) and bumps
  /// generation() so pre-reset completions die at their epoch checks.
  sim::Tick maybe_resync(sim::Tick at);
  /// Board resets this driver observed (via maybe_resync) but did not
  /// initiate.
  [[nodiscard]] std::uint64_t resyncs_observed() const {
    return resyncs_observed_;
  }

  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] std::uint64_t watchdog_resets() const { return watchdog_resets_; }
  /// Receive bursts recovered by the watchdog poll (lost interrupt).
  [[nodiscard]] std::uint64_t watchdog_polls() const { return watchdog_polls_; }
  [[nodiscard]] std::uint64_t spurious_irqs() const { return spurious_irqs_; }
  /// Descriptors rejected as nonsensical (corrupted id/addr/len).
  [[nodiscard]] std::uint64_t bad_descriptors() const { return bad_descriptors_; }
  /// kRxFreeLow interrupts fielded: the firmware ran a free queue dry
  /// mid-reassembly and asked for buffers back. The driver responds by
  /// draining the receive ring immediately (every delivered/aborted PDU
  /// recycles its buffers to the free list) instead of waiting for the
  /// next kRxNonEmpty edge.
  [[nodiscard]] std::uint64_t backpressure_events() const {
    return backpressure_events_;
  }
  [[nodiscard]] const std::string& last_postmortem() const {
    return last_postmortem_;
  }

  /// True while the transmit path is suspended on a full queue (§2.1.2).
  [[nodiscard]] bool tx_suspended() const { return tx_suspended_; }

  /// One-shot callback fired when a suspended transmit path has drained
  /// its pending sends — how a blocking send() unblocks its caller.
  void set_tx_resume(std::function<void(sim::Tick)> cb) {
    tx_resume_ = std::move(cb);
  }

  /// Transmit-completion watermarks (§2.1.2 lazy reclaim): a send's DMA is
  /// finished once tx_descs_retired() reaches the tx_descs_accepted() value
  /// observed just after that send returned. Zero-copy senders (e.g. the
  /// ARQ frame arena) use these to decide when a buffer may be rewritten;
  /// reusing it earlier races the board's DMA reads. A watchdog reset
  /// retires everything outstanding (lost chains never complete; replayed
  /// parked chains are re-accepted), which would let post-reset reuse race
  /// a replayed chain — zero-copy senders must therefore re-quarantine
  /// their slots from a reset hook (ArqEndpoint::on_driver_reset does).
  [[nodiscard]] std::uint64_t tx_descs_accepted() const {
    return tx_descs_accepted_;
  }
  [[nodiscard]] std::uint64_t tx_descs_retired() const {
    return tx_descs_retired_;
  }

  /// Polls the transmit tail word and retires completed descriptors now
  /// (otherwise reclaim happens as a side effect of the next send()).
  sim::Tick reclaim_tx(sim::Tick at) { return reap_tx(maybe_resync(at)); }

  // Statistics.
  [[nodiscard]] std::uint64_t pdus_sent() const { return pdus_sent_; }
  [[nodiscard]] std::uint64_t pdus_received() const { return pdus_received_; }
  [[nodiscard]] std::uint64_t tx_suspensions() const { return tx_suspensions_; }
  [[nodiscard]] std::uint64_t stale_partial_pdus() const { return stale_partial_; }
  [[nodiscard]] std::uint64_t crc_failures() const { return crc_failures_; }
  [[nodiscard]] const mem::PageWiring& wiring() const { return wiring_; }
  [[nodiscard]] const MachineConfig& machine() const { return *mc_; }

  /// Exposes the kernel receive-queue reader fill level (tests).
  [[nodiscard]] std::uint32_t recv_backlog() const { return recv_reader_.size(); }

  /// All buffers this driver has registered (receive pool + extra pools);
  /// used by ADCs to build their authorized-page lists.
  [[nodiscard]] std::vector<mem::PhysBuffer> buffer_pool() const {
    std::vector<mem::PhysBuffer> out;
    out.reserve(buffers_.size());
    for (const auto& b : buffers_) out.push_back({b.pa, b.cap});
    return out;
  }

 private:
  struct BufferInfo {
    std::uint32_t pa = 0;
    std::uint32_t cap = 0;
    int source_tag = 0;   // which free queue it returns to
    bool owned = false;   // frames allocated by attach(); detach() frees
  };
  struct PendingSend {
    atm::Vci vci;
    std::vector<mem::PhysBuffer> bufs;
  };
  struct Accum {
    std::vector<RxBuffer> bufs;
    std::uint32_t bytes = 0;
    std::uint64_t seq = 0;  // arrival order, for oldest-first reclaim
  };

  void on_rx_interrupt(sim::Tick at);
  void on_tx_half_empty(sim::Tick at);
  /// Shared tail of force_reset()/maybe_resync(): rebuilds every piece of
  /// host-side state invalidated by a board reset (cursors, in-flight
  /// accounting, reset hooks, pool re-post, parked-send replay).
  sim::Tick resync_host_state(sim::Tick at);
  void drain_step(sim::Tick at);
  void watchdog_tick();
  sim::Tick deliver(sim::Tick at, atm::Vci vci, std::uint32_t tag,
                    Accum&& acc);
  sim::Tick recycle(sim::Tick at, const std::vector<RxBuffer>& bufs);
  /// Reclaims completed transmit descriptors (tail watch) and unwires.
  sim::Tick reap_tx(sim::Tick at);
  sim::Tick push_chain(sim::Tick at, atm::Vci vci,
                       const std::vector<mem::PhysBuffer>& bufs);

  sim::Engine* eng_;
  const MachineConfig* mc_;
  HostCpu* cpu_;
  InterruptController* intc_;
  tc::TurboChannel* bus_;
  mem::PhysicalMemory* pm_;
  mem::DataCache* cache_;
  mem::FrameAllocator* frames_;
  dpram::DualPortRam* ram_;
  board::TxProcessor* txp_;
  dpram::ChannelLayout lay_;
  Config cfg_;

  dpram::QueueWriter tx_writer_;
  dpram::QueueWriter free_writer_;
  dpram::QueueReader recv_reader_;
  std::vector<dpram::QueueWriter> extra_free_writers_;
  std::map<int, std::size_t> source_to_writer_;  // tag -> index (0 = default)

  RxHandler rx_handler_;
  sim::Trace* trace_ = nullptr;
  obs::PduSpans* spans_ = nullptr;
  int span_channel_ = 0;
  board::RxProcessor* rxp_ = nullptr;
  fault::FaultPlane* faults_ = nullptr;
  fault::FaultPlane* tenant_faults_ = nullptr;
  // Scheduled lambdas capture this token by value and bail once the driver
  // is destroyed — generation checks alone can't help after free.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  int rx_irq_token_ = -1;
  int tx_irq_token_ = -1;
  int free_low_token_ = -1;
  bool detached_ = false;
  std::vector<std::pair<int, std::function<void(sim::Tick)>>> reset_hooks_;
  int next_reset_hook_token_ = 0;
  std::ostream* postmortem_os_ = nullptr;

  // Watchdog state.
  WatchdogConfig wd_cfg_;
  sim::TimerHandle wd_timer_;  // the next scheduled watchdog_tick()
  bool wd_running_ = false;
  std::uint32_t wd_tx_hb_ = 0, wd_rx_hb_ = 0;
  sim::Tick wd_tx_change_ = 0, wd_rx_change_ = 0;
  bool wd_tx_seen_ = false, wd_rx_seen_ = false;
  std::uint32_t wd_txtail_ = 0;
  sim::Tick wd_txtail_change_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t board_epoch_ = 0;       // TxProcessor epoch last seen
  std::uint64_t resyncs_observed_ = 0;  // resets observed, not initiated
  std::string last_postmortem_;
  std::vector<BufferInfo> buffers_;  // by id
  /// Partial PDUs keyed atm::VciKey::pack(vci, pdu_tag).
  flow::OpenMap<Accum> accum_;
  std::uint64_t accum_seq_ = 0;  // monotone arrival stamp for Accum::seq
  std::deque<PendingSend> pending_sends_;
  std::deque<std::vector<mem::PhysBuffer>> inflight_tx_;  // for unwiring
  std::uint64_t tx_descs_accepted_ = 0;  // monotone; counted at send()
  std::uint64_t tx_descs_retired_ = 0;   // monotone; tail-watch in reap_tx
  bool draining_ = false;
  bool tx_suspended_ = false;
  std::function<void(sim::Tick)> tx_resume_;

  std::uint64_t pdus_sent_ = 0;
  std::uint64_t pdus_received_ = 0;
  std::uint64_t tx_suspensions_ = 0;
  std::uint64_t stale_partial_ = 0;
  std::uint64_t crc_failures_ = 0;
  std::uint64_t watchdog_resets_ = 0;
  std::uint64_t watchdog_polls_ = 0;
  std::uint64_t spurious_irqs_ = 0;
  std::uint64_t bad_descriptors_ = 0;
  std::uint64_t backpressure_events_ = 0;
  mem::PageWiring wiring_;
};

}  // namespace osiris::host
