#include "fault/fault.h"

#include <sstream>

namespace osiris::fault {

void FaultPlane::arm(Point p, FaultSpec spec) {
  Slot& s = slot(p);
  s.spec = spec;
  s.armed = true;
  s.consulted = 0;
  s.fired = 0;
}

void FaultPlane::disarm(Point p) { slot(p).armed = false; }

bool FaultPlane::fires(Point p) {
  Slot& s = slot(p);
  if (!s.armed) return false;
  ++s.consulted;
  // budget == 0 is "armed but inert" — it must never fire, including on a
  // spec whose `after` matches the very first consultation.
  if (s.spec.budget == 0 || s.fired >= s.spec.budget) return false;
  const bool hit = (s.spec.after != 0 && s.consulted == s.spec.after) ||
                   (s.spec.probability > 0.0 && rng_.chance(s.spec.probability));
  if (hit) ++s.fired;
  return hit;
}

std::uint32_t FaultPlane::corrupt_word(std::uint32_t v) {
  return v ^ (1u << rng_.below(32));
}

std::uint64_t FaultPlane::total_fired() const {
  std::uint64_t n = 0;
  for (const Slot& s : slots_) n += s.fired;
  return n;
}

std::string FaultPlane::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.armed && s.fired == 0) continue;
    os << point_name(static_cast<Point>(i)) << ": " << s.fired << "/"
       << s.consulted << " fired/consulted\n";
  }
  return os.str();
}

}  // namespace osiris::fault
