#include "fault/fault.h"

#include <sstream>

namespace osiris::fault {

void FaultPlane::arm(Point p, FaultSpec spec) {
  Slot& s = slot(p);
  s.spec = spec;
  s.armed = true;
  s.consulted = 0;
  s.fired = 0;
}

void FaultPlane::disarm(Point p) { slot(p).armed = false; }

bool FaultPlane::fires(Point p) {
  Slot& s = slot(p);
  if (!s.armed) return false;
  ++s.consulted;
  ++s.lifetime_consulted;
  // budget == 0 is "armed but inert" — it must never fire, including on a
  // spec whose `after` matches the very first consultation.
  if (s.spec.budget == 0 || s.fired >= s.spec.budget) return false;
  // Outside the consultation window the dice are not rolled at all, so the
  // RNG draw sequence inside the window is independent of where the window
  // starts (replaying a shrunk schedule stays deterministic).
  if (s.spec.window_from > 0 && s.consulted < s.spec.window_from) return false;
  if (s.spec.window_until > 0 && s.consulted > s.spec.window_until) return false;
  const bool hit = (s.spec.after != 0 && s.consulted == s.spec.after) ||
                   (s.spec.probability > 0.0 && rng_.chance(s.spec.probability));
  if (hit) {
    ++s.fired;
    ++s.lifetime_fired;
    if (ledger_.size() < kLedgerCap) {
      ledger_.push_back(Firing{p, s.consulted});
    } else {
      ++ledger_dropped_;
    }
  }
  return hit;
}

void FaultPlane::reset_stats() {
  for (Slot& s : slots_) {
    s.consulted = 0;
    s.fired = 0;
    s.lifetime_consulted = 0;
    s.lifetime_fired = 0;
  }
  ledger_.clear();
  ledger_dropped_ = 0;
}

FaultPlane::PlaneState FaultPlane::save() const {
  PlaneState st{};
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    st[i] = PointState{slots_[i].spec, slots_[i].armed, slots_[i].consulted,
                       slots_[i].fired};
  }
  return st;
}

void FaultPlane::restore(const PlaneState& st) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].spec = st[i].spec;
    slots_[i].armed = st[i].armed;
    slots_[i].consulted = st[i].consulted;
    slots_[i].fired = st[i].fired;
  }
}

std::uint32_t FaultPlane::corrupt_word(std::uint32_t v) {
  return v ^ (1u << rng_.below(32));
}

std::uint64_t FaultPlane::total_fired() const {
  std::uint64_t n = 0;
  for (const Slot& s : slots_) n += s.fired;
  return n;
}

std::string FaultPlane::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.armed && s.fired == 0) continue;
    os << point_name(static_cast<Point>(i)) << ": " << s.fired << "/"
       << s.consulted << " fired/consulted\n";
  }
  return os.str();
}

}  // namespace osiris::fault
